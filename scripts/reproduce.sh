#!/bin/sh
# Reproduce every figure and ablation of the paper's evaluation and
# store the series under results/ (tables + CSV), then run the test
# suite and the benchmark harness. Stdlib Go only; no network needed.
set -eu

cd "$(dirname "$0")/.."
mkdir -p results

echo "==> formatting, vet, and race-detector checks"
sh scripts/check.sh

echo "==> unit, integration, and property tests"
go test ./... -count=1 | tee results/test.txt

echo "==> figures (10 trials, as in the paper)"
go run ./cmd/dacsim -fig all -trials 10 | tee results/figures.txt
for fig in 7a 7b 8 9; do
    go run ./cmd/dacsim -fig "$fig" -trials 10 -csv > "results/fig$fig.csv"
done

echo "==> figures with ±10% seeded jitter (trial variance)"
go run ./cmd/dacsim -fig all -trials 10 -jitter 0.1 > results/figures-jitter.txt

echo "==> benchmark harness"
go test -bench=. -benchmem -benchtime=1x -count=1 . | tee results/bench.txt

echo "==> done; see results/"
