#!/bin/sh
# Benchmark runner: executes the Go micro/figure benchmarks once (for
# the log) and records the machine-readable virtual-time report the
# CI regression gate compares against BENCH_baseline.json.
#
#   scripts/bench.sh                 # writes BENCH_<date>.json
#   BENCH_OUT=/tmp/b.json scripts/bench.sh
#   scripts/bench.sh compare /tmp/b.json   # gate: candidate vs baseline
#
# Virtual-time series are deterministic, so the ±15% tolerance only
# trips on real behavioural change, never on host speed.
set -eu

cd "$(dirname "$0")/.."

mode="${1:-record}"

case "$mode" in
record)
    out="${BENCH_OUT:-BENCH_$(date -u +%F).json}"
    echo "==> go test -bench (informational)"
    go test -bench=. -benchtime=1x -run='^$' . | tail -n +1
    echo "==> daclint full-repo timing (informational; CI budget 30s in scripts/lint.sh)"
    mkdir -p bin
    go build -o bin/daclint ./cmd/daclint
    ./bin/daclint -json . | sed -n 's/^.*"\(elapsed_ms\|builds\|build_ms\)": \([0-9.]*\).*$/daclint \1 \2/p'
    echo "==> dacbench record -> $out"
    go run ./cmd/dacbench -out "$out"
    ;;
compare)
    candidate="${2:?usage: scripts/bench.sh compare CANDIDATE.json [BASELINE.json]}"
    baseline="${3:-BENCH_baseline.json}"
    echo "==> dacbench compare $candidate vs $baseline"
    # Throughput series are host wall-clock rates and the committed
    # baseline comes from whatever machine last refreshed it, so the
    # drop-only gate gets a runner-speed allowance. Override with
    # THROUGHPUT_TOL=0.15 when comparing two runs of the same host.
    go run ./cmd/dacbench -compare "$baseline" -candidate "$candidate" \
        -throughput-tolerance "${THROUGHPUT_TOL:-0.60}"
    ;;
*)
    echo "usage: scripts/bench.sh [record|compare CANDIDATE.json [BASELINE.json]]" >&2
    exit 2
    ;;
esac
