#!/bin/sh
# Static-analysis gate: builds the daclint vet tool from this module
# and runs it over every package via `go vet -vettool`, then runs
# staticcheck and govulncheck when they are installed (CI installs the
# pinned versions below; local runs skip what is missing so the script
# works offline).
#
# Per-analyzer finding counts are always printed, and appended to
# $GITHUB_STEP_SUMMARY when that file is set (the CI lint job).
set -eu

cd "$(dirname "$0")/.."

# Pinned external tool versions. CI greps these out of this file so
# the workflow and the script can never disagree about what to install.
STATICCHECK_VERSION="v0.5.1"
GOVULNCHECK_VERSION="v1.1.4"

echo "==> build daclint"
mkdir -p bin
go build -o bin/daclint ./cmd/daclint

echo "==> go vet -vettool=daclint"
out=$(mktemp)
trap 'rm -f "$out"' EXIT
status=0
go vet -vettool="$(pwd)/bin/daclint" ./... >"$out" 2>&1 || status=$?
cat "$out"

# Machine-readable report: full standalone run, archived by CI as an
# artifact. Also the source of the per-analyzer counts, CFG-build
# stats, and the runtime guard below.
echo "==> daclint -json (full-repo report)"
json_status=0
./bin/daclint -json . >daclint.json || json_status=$?
if [ "$json_status" -eq 1 ]; then
    echo "daclint -json failed operationally" >&2
    exit 1
fi

json_field() {
    sed -n "s/^.*\"$1\": \([0-9.]*\).*$/\1/p" daclint.json | head -n 1
}
elapsed_ms=$(json_field elapsed_ms)
cfg_builds=$(json_field builds)
cfg_build_ms=$(json_field build_ms)
echo "daclint full-repo run: ${elapsed_ms} ms (${cfg_builds} CFGs built in ${cfg_build_ms} ms)"

# Runtime guard: the flow-sensitive suite must stay interactive. A
# run past 30s means a CFG or fixpoint regression, not a bigger repo.
if [ -n "$elapsed_ms" ] && awk "BEGIN{exit !($elapsed_ms >= 30000)}"; then
    echo "daclint full-repo run took ${elapsed_ms} ms; the budget is 30000 ms" >&2
    exit 1
fi

# Count findings per analyzer. The eleven suite names are pinned by
# TestSuite in internal/lint; "ignore" counts malformed //lint:ignore
# directives reported by the framework itself.
summary=$(
    echo "| analyzer | findings |"
    echo "| --- | ---: |"
    for a in walltime seededrand maporder lockdiscipline vtctx spanbalance metricname poolbalance handlerexhaustive actorown digestdet ignore; do
        n=$(grep -c ": $a: " "$out" || true)
        echo "| $a | $n |"
    done
)
echo "$summary" | sed 's/|/ /g'
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    {
        echo "### daclint"
        echo ""
        echo "$summary"
        echo ""
        echo "Full-repo run: ${elapsed_ms} ms; ${cfg_builds} CFGs built in ${cfg_build_ms} ms (budget 30000 ms)."
        echo ""
        if [ "$status" -eq 0 ]; then
            echo "No unsuppressed findings."
        else
            echo "**daclint failed (exit $status).**"
        fi
    } >>"$GITHUB_STEP_SUMMARY"
fi
if [ "$status" -ne 0 ]; then
    echo "daclint found problems (exit $status)" >&2
    exit "$status"
fi

if command -v staticcheck >/dev/null 2>&1; then
    echo "==> staticcheck (pinned $STATICCHECK_VERSION in CI)"
    staticcheck ./...
else
    echo "==> staticcheck not installed; skipping (CI pins $STATICCHECK_VERSION)"
fi

if command -v govulncheck >/dev/null 2>&1; then
    echo "==> govulncheck (pinned $GOVULNCHECK_VERSION in CI)"
    govulncheck ./...
else
    echo "==> govulncheck not installed; skipping (CI pins $GOVULNCHECK_VERSION)"
fi

echo "==> lint passed"
