#!/bin/sh
# Static and dynamic checks for the whole module: formatting, vet,
# and the full test suite under the race detector. Run from anywhere;
# CI and scripts/reproduce.sh call this before anything else.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> daclint (+ staticcheck/govulncheck when installed)"
sh scripts/lint.sh

echo "==> go test -race -shuffle=on"
go test -race -shuffle=on ./... -count=1

echo "==> checks passed"
