// Throughput: a workload-level comparison between the dynamic batch
// system and the static-only baseline. Phase-structured applications
// that grow their accelerator set only during a demanding middle
// phase are run (a) with runtime AC_Get/AC_Free and (b) as
// static-peak jobs that must reserve their maximum demand for their
// whole lifetime — the contrast motivating dynamic provisioning in
// the paper's introduction. The example also reports the scheduler's
// backfill benefit on a mixed batch workload.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	params := repro.DefaultParams()

	fmt.Println("=== dynamic allocation vs static-peak baseline ===")
	res, err := repro.AblationDynamicVsStatic(params, 4)
	if err != nil {
		log.Fatalf("dynamic-vs-static: %v", err)
	}
	fmt.Printf("4 phase-structured jobs on 2 compute nodes, 4 accelerators\n\n")
	fmt.Printf("%-22s %-14s %-20s %-12s\n", "policy", "makespan", "accelerator-seconds", "energy [kJ]")
	fmt.Printf("%-22s %-14v %-20.3f %-12.2f\n", "static peak (baseline)", res.StaticMakespan.Round(time.Millisecond), res.StaticACSeconds, res.StaticJoules/1000)
	fmt.Printf("%-22s %-14v %-20.3f %-12.2f\n", "dynamic (this paper)", res.DynamicMakespan.Round(time.Millisecond), res.DynamicACSeconds, res.DynamicJoules/1000)
	if res.Rejections > 0 {
		fmt.Printf("dynamic requests rejected: %d (applications continued)\n", res.Rejections)
	}
	fmt.Printf("accelerator reservation saved: %.0f%%\n\n",
		100*(1-res.DynamicACSeconds/res.StaticACSeconds))

	fmt.Println("=== EASY backfill on a mixed workload ===")
	bf, err := repro.AblationBackfill(params, 16, 6)
	if err != nil {
		log.Fatalf("backfill: %v", err)
	}
	fmt.Printf("16 mixed jobs, 2 compute nodes\n")
	fmt.Printf("makespan with backfill:    %v\n", bf.On.Round(time.Millisecond))
	fmt.Printf("makespan without backfill: %v\n", bf.Off.Round(time.Millisecond))

	fmt.Println()
	fmt.Println("=== partial allocation (future-work extension) ===")
	pr, err := repro.AblationPartialAlloc(params)
	if err != nil {
		log.Fatalf("partial: %v", err)
	}
	fmt.Printf("AC_Get(5) with 2 accelerators free:\n")
	fmt.Printf("  paper's policy (reject):  granted %d (rejected=%v)\n", pr.GrantedWithoutPartial, pr.RejectedWithout)
	fmt.Printf("  partial allocation:       granted %d\n", pr.GrantedWithPartial)
}
