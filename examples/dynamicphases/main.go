// Dynamicphases: a phase-structured iterative solver that grows and
// shrinks its accelerator set at runtime — the usage scenario
// motivating the paper's dynamic batch system. The application starts
// on one static accelerator, requests three more for its
// compute-intensive middle phase through AC_Get, distributes Jacobi
// sweeps across the enlarged set, and releases the extra accelerators
// with AC_Free. A second, greedy request demonstrates rejection: the
// application simply continues with what it has.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	params := repro.DefaultParams()
	err := repro.RunCluster(params, func(c *repro.Cluster, client *repro.Client) {
		id, err := client.Submit(repro.JobSpec{
			Name:     "phased-solver",
			Owner:    "bob",
			Nodes:    1,
			PPN:      4,
			ACPN:     1,
			Walltime: time.Minute,
			Script:   func(env *repro.JobEnv) { solver(c, env) },
		})
		if err != nil {
			log.Fatalf("submit: %v", err)
		}
		info, err := client.Wait(id)
		if err != nil {
			log.Fatalf("wait: %v", err)
		}
		fmt.Printf("\njob %s finished after %v\n", id, info.CompletedAt-info.StartedAt)
		for _, rec := range info.DynRecords {
			fmt.Printf("  dynamic request for %d: %-9s (serviced in %v)\n",
				rec.Count, rec.State, (rec.RepliedAt - rec.ArrivedAt).Round(time.Millisecond))
		}
	})
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
}

func solver(c *repro.Cluster, env *repro.JobEnv) {
	now := func() time.Duration { return c.Sim.Now().Round(time.Millisecond) }
	ac, static, err := repro.Init(env)
	if err != nil {
		fmt.Printf("AC_Init: %v\n", err)
		return
	}
	defer ac.Finalize()
	fmt.Printf("[%8v] phase 1: smoothing on %d static accelerator(s)\n", now(), len(static))
	sweep(c.Sim, ac, static, 4)

	// Phase 2 needs more parallelism: ask the batch system for three
	// additional accelerators at runtime.
	clientID, extra, err := ac.Get(3)
	if err != nil {
		fmt.Printf("[%8v] AC_Get(3) rejected (%v); continuing on the static set\n", now(), err)
		sweep(c.Sim, ac, static, 12)
	} else {
		all := append(append([]*repro.Accel(nil), static...), extra...)
		fmt.Printf("[%8v] phase 2: AC_Get granted %d accelerators -> solving on %d devices\n",
			now(), len(extra), len(all))
		sweep(c.Sim, ac, all, 12)
		if err := ac.Free(clientID); err != nil {
			fmt.Printf("AC_Free: %v\n", err)
			return
		}
		fmt.Printf("[%8v] phase 2 done: released dynamic set %d\n", now(), clientID)
	}

	// A greedy request that cannot be satisfied: the application is
	// designed to continue with its existing resources.
	if _, _, err := ac.Get(40); err != nil {
		fmt.Printf("[%8v] AC_Get(40) rejected as expected: batch system has no 40 free accelerators\n", now())
	}

	fmt.Printf("[%8v] phase 3: residual check on the static set\n", now())
	sweep(c.Sim, ac, static, 2)
}

// sweep distributes Jacobi iterations of a 1-D stencil across the
// accelerator set, one domain slab per device, all in flight
// concurrently (the latency-hiding pattern of Section II-C).
func sweep(s *repro.Simulation, ac *repro.AC, devices []*repro.Accel, iters int) {
	const slab = 1 << 14
	wg := s.NewGroup("sweep")
	for _, h := range devices {
		h := h
		// Each offload runs as its own simulation actor; the DAC
		// library multiplexes them over distinct accelerators.
		wg.Go("offload@"+h.Host(), func() {
			in := make([]float64, slab)
			for i := range in {
				in[i] = float64(i % 17)
			}
			a, err := ac.MemAlloc(h, 8*slab)
			if err != nil {
				fmt.Printf("MemAlloc on %s: %v\n", h.Host(), err)
				return
			}
			b, _ := ac.MemAlloc(h, 8*slab)
			if err := ac.MemCpyToDevice(h, a, 0, repro.EncodeFloat64s(in)); err != nil {
				fmt.Printf("copy to %s: %v\n", h.Host(), err)
				return
			}
			src, dst := a, b
			for it := 0; it < iters; it++ {
				if err := ac.KernelRun(h, "jacobi", [3]int{slab / 256}, [3]int{256}, dst, src, slab); err != nil {
					fmt.Printf("jacobi on %s: %v\n", h.Host(), err)
					return
				}
				src, dst = dst, src
			}
			ac.MemFree(h, a)
			ac.MemFree(h, b)
		})
	}
	wg.Wait()
}
