// Operations: a day-in-the-life view of the cluster for an operator.
// A workload trace (Standard Workload Format, the Parallel Workloads
// Archive format) is replayed against the simulated DAC cluster
// alongside a phase-structured DAC application; afterwards the
// example prints the job timeline (Gantt), the TORQUE-style
// accounting log, per-node utilization, and the energy bill under
// both allocation policies' power draw.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/metrics"
	"repro/internal/pbs"
)

// A small SWF fragment (job#, submit, wait, runtime, procs, ... ) —
// the format real archives use; times in seconds, scaled 100x down
// for the simulation.
const swfFragment = `
; Example trace fragment
 1   0  -1  40   8 -1 -1  8  60 -1 1 3 1 -1 1 1 -1 -1
 2  10  -1  20   2 -1 -1  2  30 -1 1 4 1 -1 1 1 -1 -1
 3  15  -1  25  16 -1 -1 16  40 -1 1 3 1 -1 1 1 -1 -1
 4  30  -1  10   2 -1 -1  2  15 -1 1 5 1 -1 1 1 -1 -1
 5  35  -1  30   4 -1 -1  4  45 -1 1 4 1 -1 1 1 -1 -1
`

func main() {
	params := repro.DefaultParams()
	params.ComputeNodes = 2
	params.Accelerators = 3

	entries, err := repro.ParseSWF(strings.NewReader(swfFragment), params.CoresPerNode)
	if err != nil {
		log.Fatalf("parse swf: %v", err)
	}
	entries = repro.ScaleTrace(entries, 0.01) // 40s of trace -> 400ms of simulation

	err = repro.RunCluster(params, func(c *repro.Cluster, client *repro.Client) {
		// One evolving DAC application rides along with the batch
		// workload, growing by two accelerators in its middle phase.
		phases := []repro.Phase{
			{ExtraACs: 0, Compute: 80 * time.Millisecond},
			{ExtraACs: 2, Compute: 120 * time.Millisecond, Stretch: 60 * time.Millisecond},
			{ExtraACs: 0, Compute: 80 * time.Millisecond},
		}
		dacJob, err := client.Submit(repro.JobSpec{
			Name: "dac-solver", Owner: "science", Nodes: 1, PPN: 2, ACPN: 1,
			Walltime: time.Minute, Script: repro.PhasedApp(c.Sim, phases, nil),
		})
		if err != nil {
			log.Fatalf("submit dac job: %v", err)
		}

		ids, err := repro.ReplayTrace(c.Sim, client, entries)
		if err != nil {
			log.Fatalf("replay: %v", err)
		}
		ids = append(ids, dacJob)

		g := metrics.Gantt{Title: "timeline ('.' queued, '#' running)", Width: 58}
		var last time.Duration
		for _, id := range ids {
			info, err := client.Wait(id)
			if err != nil {
				log.Fatalf("wait %s: %v", id, err)
			}
			g.Add(info.Spec.Name, info.SubmittedAt, info.StartedAt, info.CompletedAt)
			if info.CompletedAt > last {
				last = info.CompletedAt
			}
		}
		g.Render(os.Stdout)

		fmt.Println("\naccounting log (TORQUE format):")
		recs := c.Server.AccountingLog()
		for _, r := range recs {
			fmt.Printf("  %s\n", r)
		}

		fmt.Println("\nnode utilization:")
		t := &metrics.Table{Headers: []string{"node", "type", "busy_core_s", "utilization"}}
		for _, u := range c.Server.Usage() {
			t.AddRow(u.Name, u.Type.String(),
				fmt.Sprintf("%.3f", u.BusyCoreSeconds),
				fmt.Sprintf("%.1f%%", 100*u.Utilization(last)))
		}
		t.Render(os.Stdout)

		cu, au := c.Server.ClusterUtilization(last)
		rep := c.Server.Energy(pbs.DefaultPowerModel(), last)
		fmt.Printf("\ncluster: compute %.1f%%, accelerators %.1f%% utilized over %v\n",
			100*cu, 100*au, last.Round(time.Millisecond))
		fmt.Printf("energy: compute %.2f kJ + accelerators %.2f kJ = %.2f kJ\n",
			rep.ComputeJoules/1000, rep.AccelJoules/1000, rep.Total()/1000)
	})
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
}
