// Multinode: a job spanning three compute nodes whose processes
// acquire additional accelerators collectively — the aggregated
// AC_Get of Section III-D. One compute node gathers the per-node
// demands, sends a single pbs_dynget for the total, and either every
// node receives its share or none does; the set carries one client-id
// and is released collectively. The example contrasts this with the
// serialized individual requests that the server would otherwise
// process one at a time.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	params := repro.DefaultParams()
	params.ComputeNodes = 3
	params.Accelerators = 9 // 3 static + 6 for dynamic growth

	err := repro.RunCluster(params, func(c *repro.Cluster, client *repro.Client) {
		id, err := client.Submit(repro.JobSpec{
			Name:     "multinode",
			Owner:    "carol",
			Nodes:    3,
			PPN:      4,
			ACPN:     1,
			Walltime: time.Minute,
			Script:   func(env *repro.JobEnv) { nodeProgram(c, env) },
		})
		if err != nil {
			log.Fatalf("submit: %v", err)
		}
		info, err := client.Wait(id)
		if err != nil {
			log.Fatalf("wait: %v", err)
		}
		fmt.Printf("\njob %s: %d dynamic requests recorded at the server\n", id, len(info.DynRecords))
		for _, rec := range info.DynRecords {
			fmt.Printf("  from %s for %d accelerator(s): %s in %v\n",
				rec.CN, rec.Count, rec.State, (rec.RepliedAt - rec.ArrivedAt).Round(time.Millisecond))
		}
	})
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
}

func nodeProgram(c *repro.Cluster, env *repro.JobEnv) {
	now := func() time.Duration { return c.Sim.Now().Round(time.Millisecond) }
	ac, static, err := repro.Init(env)
	if err != nil {
		fmt.Printf("AC_Init on %s: %v\n", env.Host, err)
		return
	}
	defer ac.Finalize()
	fmt.Printf("[%8v] %s (rank %d): initialized with %d static accelerator(s)\n",
		now(), env.Host, env.Rank, len(static))

	// Collective growth: rank 0 wants 1 extra, the others 2 each.
	want := 2
	if env.Rank == 0 {
		want = 1
	}
	clientID, extra, err := ac.CollectiveGet(want)
	if err != nil {
		fmt.Printf("[%8v] %s: collective AC_Get failed: %v\n", now(), env.Host, err)
		return
	}
	fmt.Printf("[%8v] %s: collective AC_Get -> client-id %d, %d accelerator(s): %v\n",
		now(), env.Host, clientID, len(extra), hostsOf(extra))

	// Use the whole enlarged set: one dgemm per accelerator.
	const n = 64
	a := repro.EncodeFloat64s(identity(n))
	for _, h := range append(append([]*repro.Accel(nil), static...), extra...) {
		ap, err := ac.MemAlloc(h, int64(len(a)))
		if err != nil {
			fmt.Printf("MemAlloc on %s: %v\n", h.Host(), err)
			return
		}
		bp, _ := ac.MemAlloc(h, int64(len(a)))
		cp, _ := ac.MemAlloc(h, int64(len(a)))
		ac.MemCpyToDevice(h, ap, 0, a)
		ac.MemCpyToDevice(h, bp, 0, a)
		if err := ac.KernelRun(h, "dgemm", [3]int{n / 16}, [3]int{16}, cp, ap, bp, n); err != nil {
			fmt.Printf("dgemm on %s: %v\n", h.Host(), err)
			return
		}
	}
	fmt.Printf("[%8v] %s: dgemm done on %d accelerators\n", now(), env.Host, len(static)+len(extra))

	// Collectively obtained sets are released collectively.
	if err := ac.CollectiveFree(clientID); err != nil {
		fmt.Printf("CollectiveFree on %s: %v\n", env.Host, err)
		return
	}
	fmt.Printf("[%8v] %s: released client-id %d\n", now(), env.Host, clientID)
}

func identity(n int) []float64 {
	m := make([]float64, n*n)
	for i := 0; i < n; i++ {
		m[i*n+i] = 1
	}
	return m
}

func hostsOf(hs []*repro.Accel) []string {
	out := make([]string, len(hs))
	for i, h := range hs {
		out[i] = h.Host()
	}
	return out
}
