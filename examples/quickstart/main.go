// Quickstart: bring up the simulated DAC testbed, submit a job with
// two statically allocated network-attached accelerators, offload a
// vector addition to each, and print the batch system's view — the
// minimal end-to-end tour of the reproduced system.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	params := repro.DefaultParams() // 1 compute node, 6 accelerators
	err := repro.RunCluster(params, func(c *repro.Cluster, client *repro.Client) {
		// qsub -l nodes=1:ppn=2:acpn=2 jobscript.sh
		jobID, err := client.Submit(repro.JobSpec{
			Name:     "quickstart",
			Owner:    "alice",
			Nodes:    1,
			PPN:      2,
			ACPN:     2,
			Walltime: time.Minute,
			Script:   jobScript,
		})
		if err != nil {
			log.Fatalf("submit: %v", err)
		}
		fmt.Printf("submitted %s\n", jobID)

		info, err := client.Wait(jobID)
		if err != nil {
			log.Fatalf("wait: %v", err)
		}
		fmt.Printf("job state: %v\n", info.State)
		fmt.Printf("compute nodes: %v\n", info.Hosts)
		fmt.Printf("static accelerators: %v\n", info.AccHosts[info.Hosts[0]])
		fmt.Printf("turnaround: %v\n", info.CompletedAt-info.SubmittedAt)
	})
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
}

// jobScript runs on the compute node: the Listing-1 flow of the
// paper — AC_Init, allocate, copy, launch kernel, copy back, free,
// AC_Finalize.
func jobScript(env *repro.JobEnv) {
	ac, accels, err := repro.Init(env)
	if err != nil {
		fmt.Printf("AC_Init: %v\n", err)
		return
	}
	defer ac.Finalize()
	st := ac.Stats()
	fmt.Printf("AC_Init: waited %v for daemons, %v to connect, %d accelerators\n",
		st.InitWaiting.Round(time.Millisecond), st.InitConnect.Round(time.Millisecond), len(accels))

	const n = 1 << 16
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(2 * i)
	}

	// Offload one vector addition per accelerator.
	for _, h := range accels {
		ap, err := ac.MemAlloc(h, 8*n)
		if err != nil {
			fmt.Printf("acMemAlloc on %s: %v\n", h.Host(), err)
			return
		}
		bp, _ := ac.MemAlloc(h, 8*n)
		cp, _ := ac.MemAlloc(h, 8*n)
		ac.MemCpyToDevice(h, ap, 0, repro.EncodeFloat64s(a))
		ac.MemCpyToDevice(h, bp, 0, repro.EncodeFloat64s(b))
		if err := ac.KernelRun(h, "vecadd", [3]int{n / 256}, [3]int{256}, cp, ap, bp, n); err != nil {
			fmt.Printf("acKernelRun on %s: %v\n", h.Host(), err)
			return
		}
		raw, err := ac.MemCpyFromDevice(h, cp, 0, 8*n)
		if err != nil {
			fmt.Printf("acMemCpy back from %s: %v\n", h.Host(), err)
			return
		}
		out := repro.DecodeFloat64s(raw)
		fmt.Printf("accelerator %s: c[1] = %.0f, c[%d] = %.0f (expect 3 and %d)\n",
			h.Host(), out[1], n-1, out[n-1], 3*(n-1))
		ac.MemFree(h, ap)
		ac.MemFree(h, bp)
		ac.MemFree(h, cp)
	}
}
