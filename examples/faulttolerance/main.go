// Faulttolerance: the paper's outlook (Section VI) made concrete —
// heartbeat-based failure detection, applications surviving the loss
// of a network-attached accelerator, and malleable growth of compute
// nodes. An accelerator host crashes mid-run: the computation API
// surfaces a timeout, the failure detector removes the node from the
// pool, the application re-acquires a replacement through AC_Get, and
// finally grows its compute-node set through the malleable
// pbs_dynget extension.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	params := repro.DefaultParams()
	params.ComputeNodes = 3
	params.Accelerators = 4
	// Enable the fault-tolerance machinery (off in the calibrated
	// defaults so the figure experiments stay untouched).
	params.Mom.HeartbeatEvery = 50 * time.Millisecond
	params.Server.DeadAfter = 250 * time.Millisecond
	params.DAC.OpTimeout = 150 * time.Millisecond

	err := repro.RunCluster(params, func(c *repro.Cluster, client *repro.Client) {
		id, err := client.Submit(repro.JobSpec{
			Name:     "survivor",
			Owner:    "dora",
			Nodes:    1,
			PPN:      4,
			ACPN:     1,
			Walltime: time.Minute,
			Script:   func(env *repro.JobEnv) { survivor(c, env) },
		})
		if err != nil {
			log.Fatalf("submit: %v", err)
		}
		info, err := client.Wait(id)
		if err != nil {
			log.Fatalf("wait: %v", err)
		}
		fmt.Printf("\njob finished in state %v after %v\n", info.State, info.CompletedAt-info.StartedAt)

		nodes, _ := client.Nodes()
		for _, n := range nodes {
			status := "up"
			if n.Down {
				status = "DOWN"
			}
			fmt.Printf("  %-4s %-11s %s\n", n.Name, n.Type, status)
		}
	})
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
}

func survivor(c *repro.Cluster, env *repro.JobEnv) {
	now := func() time.Duration { return c.Sim.Now().Round(time.Millisecond) }
	ac, static, err := repro.Init(env)
	if err != nil {
		fmt.Printf("AC_Init: %v\n", err)
		return
	}
	defer ac.Finalize()
	victim := static[0]
	fmt.Printf("[%8v] working on accelerator %s\n", now(), victim.Host())
	if _, err := ac.MemAlloc(victim, 1<<20); err != nil {
		fmt.Printf("MemAlloc: %v\n", err)
		return
	}

	// The accelerator's host crashes.
	c.Net.SetHostDown(victim.Host(), true)
	fmt.Printf("[%8v] *** %s crashed ***\n", now(), victim.Host())
	if _, err := ac.MemAlloc(victim, 1<<20); err != nil {
		fmt.Printf("[%8v] operation failed as expected: %v\n", now(), err)
	}

	// Wait for the failure detector, then acquire a replacement.
	c.Sim.Sleep(600 * time.Millisecond)
	_, repl, err := ac.Get(1)
	if err != nil {
		fmt.Printf("replacement AC_Get: %v\n", err)
		return
	}
	fmt.Printf("[%8v] replacement accelerator: %s\n", now(), repl[0].Host())
	if _, err := ac.MemAlloc(repl[0], 1<<20); err != nil {
		fmt.Printf("replacement MemAlloc: %v\n", err)
		return
	}
	fmt.Printf("[%8v] computation resumed on %s\n", now(), repl[0].Host())

	// Malleable growth: the job also asks for two more compute nodes
	// (the Section V extension) to spread host-side work.
	cl := repro.NewIFLClient(c.Net, env.Host, env.ServerEP)
	grant, err := cl.DynGetNodes(env.JobID, env.Host, 2, 2)
	if err != nil {
		fmt.Printf("[%8v] malleable growth rejected: %v\n", now(), err)
		return
	}
	fmt.Printf("[%8v] malleable growth: +%d compute nodes %v (client-id %d)\n",
		now(), len(grant.Hosts), grant.Hosts, grant.ClientID)
	c.Sim.Sleep(100 * time.Millisecond) // host-side work on the enlarged set
	if err := cl.DynFree(env.JobID, grant.ClientID); err != nil {
		fmt.Printf("DynFree: %v\n", err)
		return
	}
	fmt.Printf("[%8v] released the extra compute nodes\n", now())
}
