package repro_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

// TestPublicAPIQuickstart drives the complete quickstart flow through
// the facade only: cluster up, qsub with acpn, AC_Init, offload,
// collect, AC_Finalize, qstat.
func TestPublicAPIQuickstart(t *testing.T) {
	params := repro.DefaultParams()
	var mu sync.Mutex
	var sum float64
	err := repro.RunCluster(params, func(c *repro.Cluster, client *repro.Client) {
		spec, err := repro.ParseResourceRequest("nodes=1:ppn=2:acpn=1,walltime=00:01:00")
		if err != nil {
			t.Errorf("ParseResourceRequest: %v", err)
			return
		}
		spec.Name, spec.Owner = "api", "tester"
		spec.Script = func(env *repro.JobEnv) {
			ac, hs, err := repro.Init(env)
			if err != nil {
				t.Errorf("Init: %v", err)
				return
			}
			defer ac.Finalize()
			h := hs[0]
			const n = 32
			in := make([]float64, n)
			for i := range in {
				in[i] = float64(i)
			}
			ip, err := ac.MemAlloc(h, 8*n)
			if err != nil {
				t.Errorf("MemAlloc: %v", err)
				return
			}
			op, _ := ac.MemAlloc(h, 8)
			ac.MemCpyToDevice(h, ip, 0, repro.EncodeFloat64s(in))
			if err := ac.KernelRun(h, "reduce_sum", [3]int{1}, [3]int{n}, op, ip, n); err != nil {
				t.Errorf("KernelRun: %v", err)
				return
			}
			raw, err := ac.MemCpyFromDevice(h, op, 0, 8)
			if err != nil {
				t.Errorf("MemCpyFromDevice: %v", err)
				return
			}
			mu.Lock()
			sum = repro.DecodeFloat64s(raw)[0]
			mu.Unlock()
		}
		id, err := client.Submit(spec)
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		info, err := client.Wait(id)
		if err != nil || info.State != repro.JobCompleted {
			t.Errorf("Wait: %v %v", info.State, err)
		}
	})
	if err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if want := float64(31 * 32 / 2); sum != want {
		t.Fatalf("device sum = %v, want %v", sum, want)
	}
}

// TestPublicAPICustomKernel registers a kernel through the facade and
// launches it remotely.
func TestPublicAPICustomKernel(t *testing.T) {
	repro.RegisterKernel("api.fill7", func(ctx *repro.KernelCtx) (repro.KernelCost, error) {
		p := ctx.Args[0].(repro.DevicePtr)
		n := ctx.Args[1].(int)
		b, err := ctx.Bytes(p)
		if err != nil {
			return repro.KernelCost{}, err
		}
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = 7
		}
		copy(b, repro.EncodeFloat64s(vals))
		return repro.KernelCost{FLOPs: float64(n)}, nil
	})
	err := repro.RunCluster(repro.DefaultParams(), func(c *repro.Cluster, client *repro.Client) {
		id, _ := client.Submit(repro.JobSpec{
			Name: "k", Owner: "t", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Minute,
			Script: func(env *repro.JobEnv) {
				ac, hs, err := repro.Init(env)
				if err != nil {
					t.Errorf("Init: %v", err)
					return
				}
				defer ac.Finalize()
				p, _ := ac.MemAlloc(hs[0], 8*4)
				if err := ac.KernelRun(hs[0], "api.fill7", [3]int{1}, [3]int{4}, p, 4); err != nil {
					t.Errorf("KernelRun: %v", err)
					return
				}
				raw, _ := ac.MemCpyFromDevice(hs[0], p, 0, 8*4)
				for i, v := range repro.DecodeFloat64s(raw) {
					if v != 7 {
						t.Errorf("out[%d] = %v", i, v)
					}
				}
			},
		})
		client.Wait(id)
	})
	if err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
}

// TestPublicAPIWorkloadAndAccounting exercises the workload, trace,
// and accounting surface of the facade.
func TestPublicAPIWorkloadAndAccounting(t *testing.T) {
	params := repro.DefaultParams()
	params.ComputeNodes = 2
	err := repro.RunCluster(params, func(c *repro.Cluster, client *repro.Client) {
		gen := repro.NewWorkloadGenerator(c.Sim, 3, 20*time.Millisecond, repro.DefaultWorkloadClasses())
		trace := repro.RecordTrace(gen, 5)
		var buf strings.Builder
		if err := repro.SaveTrace(&buf, trace); err != nil {
			t.Errorf("SaveTrace: %v", err)
			return
		}
		loaded, err := repro.LoadTrace(strings.NewReader(buf.String()))
		if err != nil || len(loaded) != 5 {
			t.Errorf("LoadTrace: %v %d", err, len(loaded))
			return
		}
		ids, err := repro.ReplayTrace(c.Sim, client, loaded)
		if err != nil {
			t.Errorf("ReplayTrace: %v", err)
			return
		}
		for _, id := range ids {
			if _, err := client.Wait(id); err != nil {
				t.Errorf("Wait: %v", err)
				return
			}
		}
		if len(c.Server.AccountingLog()) < 10 { // Q+S+E per job
			t.Errorf("accounting log too small: %d records", len(c.Server.AccountingLog()))
		}
		cu, _ := c.Server.ClusterUtilization(c.Sim.Now())
		if cu <= 0 {
			t.Errorf("compute utilization = %v", cu)
		}
	})
	if err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
}

// TestPublicAPISWF parses and scales an SWF fragment via the facade.
func TestPublicAPISWF(t *testing.T) {
	entries, err := repro.ParseSWF(strings.NewReader("1 0 0 10 4 -1 -1 4 20 -1 1 2 1 -1 1 1 -1 -1\n"), 8)
	if err != nil || len(entries) != 1 {
		t.Fatalf("ParseSWF: %v %d", err, len(entries))
	}
	scaled := repro.ScaleTrace(entries, 0.1)
	if scaled[0].Runtime != time.Second {
		t.Fatalf("scaled runtime = %v", scaled[0].Runtime)
	}
}

// TestPublicAPIFigureDrivers runs one tiny instance of each figure
// driver through the facade.
func TestPublicAPIFigureDrivers(t *testing.T) {
	p := repro.DefaultParams()
	if pts, err := repro.Fig7a(p, 1, 1); err != nil || len(pts) != 1 {
		t.Fatalf("Fig7a: %v %v", pts, err)
	}
	if pts, err := repro.Fig9(p, 1); err != nil || len(pts) != 3 {
		t.Fatalf("Fig9: %v %v", pts, err)
	}
	pts, err := repro.Fig7b(p, 1, 1)
	if err != nil || len(pts) != 1 {
		t.Fatalf("Fig7b: %v %v", pts, err)
	}
	var b strings.Builder
	if err := repro.Fig7bTable(pts).Render(&b); err != nil || !strings.Contains(b.String(), "dynamic request") {
		t.Fatalf("Fig7bTable: %v", err)
	}
}
