// Benchmarks regenerating every figure of the paper's evaluation
// (Section IV). Each benchmark runs the full experiment per
// iteration and reports the figure's key series values as custom
// metrics in *virtual* milliseconds (suffix _vms) — those are the
// numbers to compare against the paper; the ns/op wall time measures
// the simulator itself. EXPERIMENTS.md records paper-vs-measured for
// every series.
package repro_test

import (
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/kernelbench"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/sim"
)

func vms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// BenchmarkFig7aStaticInit regenerates Figure 7(a): AC_Init()
// completion for 1..6 statically allocated accelerators.
func BenchmarkFig7aStaticInit(b *testing.B) {
	var pts []repro.Fig7aPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = repro.Fig7a(repro.DefaultParams(), 6, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(vms(pts[0].Total), "total(x=1)_vms")
	b.ReportMetric(vms(pts[5].Total), "total(x=6)_vms")
	b.ReportMetric(vms(pts[5].Waiting), "waiting(x=6)_vms")
	b.ReportMetric(vms(pts[5].Connect), "connect(x=6)_vms")
}

// BenchmarkFig7bDynamicGet regenerates Figure 7(b): dynamic request
// completion for 1..6 accelerators.
func BenchmarkFig7bDynamicGet(b *testing.B) {
	var pts []repro.Fig7bPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = repro.Fig7b(repro.DefaultParams(), 6, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(vms(pts[0].Total), "total(y=1)_vms")
	b.ReportMetric(vms(pts[5].Total), "total(y=6)_vms")
	b.ReportMetric(vms(pts[5].Batch), "batch(y=6)_vms")
	b.ReportMetric(vms(pts[5].MPI), "mpi(y=6)_vms")
}

// BenchmarkFig8LoadedScheduler regenerates Figure 8: dynamic
// allocation of one accelerator with 0/16/20 other requests loading
// the scheduler.
func BenchmarkFig8LoadedScheduler(b *testing.B) {
	var pts []repro.Fig8Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = repro.Fig8(repro.DefaultParams(), []int{0, 16, 20}, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(vms(pts[0].Total), "total(load=0)_vms")
	b.ReportMetric(vms(pts[1].Total), "total(load=16)_vms")
	b.ReportMetric(vms(pts[2].Total), "total(load=20)_vms")
}

// BenchmarkFig9ConcurrentRequests regenerates Figure 9: simultaneous
// dynamic requests from compute nodes A, B, C serialized by the
// server.
func BenchmarkFig9ConcurrentRequests(b *testing.B) {
	var pts []repro.Fig9Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = repro.Fig9(repro.DefaultParams(), 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(vms(pts[0].Total), "A_vms")
	b.ReportMetric(vms(pts[1].Total), "B_vms")
	b.ReportMetric(vms(pts[2].Total), "C_vms")
}

// BenchmarkAblationDynPriority compares the paper's top-priority
// policy for dynamic requests against plain FIFO under backlog.
func BenchmarkAblationDynPriority(b *testing.B) {
	var res struct{ top, fifo time.Duration }
	for i := 0; i < b.N; i++ {
		r, err := repro.AblationDynPriority(repro.DefaultParams(), 16, 1)
		if err != nil {
			b.Fatal(err)
		}
		res.top, res.fifo = r.TopPriority, r.PlainFIFO
	}
	b.ReportMetric(vms(res.top), "top_priority_vms")
	b.ReportMetric(vms(res.fifo), "plain_fifo_vms")
}

// BenchmarkAblationCollectiveGet compares one aggregated AC_Get
// against per-node serialized requests on a 3-node job.
func BenchmarkAblationCollectiveGet(b *testing.B) {
	var col, ind time.Duration
	for i := 0; i < b.N; i++ {
		r, err := repro.AblationCollectiveGet(repro.DefaultParams(), 3, 1)
		if err != nil {
			b.Fatal(err)
		}
		col, ind = r.Collective, r.Individual
	}
	b.ReportMetric(vms(col), "collective_vms")
	b.ReportMetric(vms(ind), "individual_vms")
}

// BenchmarkAblationDynamicVsStatic compares makespan and accelerator
// occupancy of phased applications under dynamic allocation versus
// the static-peak baseline.
func BenchmarkAblationDynamicVsStatic(b *testing.B) {
	var dynMs, statMs time.Duration
	var dynAC, statAC float64
	for i := 0; i < b.N; i++ {
		r, err := repro.AblationDynamicVsStatic(repro.DefaultParams(), 4)
		if err != nil {
			b.Fatal(err)
		}
		dynMs, statMs = r.DynamicMakespan, r.StaticMakespan
		dynAC, statAC = r.DynamicACSeconds, r.StaticACSeconds
	}
	b.ReportMetric(vms(dynMs), "dynamic_makespan_vms")
	b.ReportMetric(vms(statMs), "static_makespan_vms")
	b.ReportMetric(dynAC, "dynamic_AC_seconds")
	b.ReportMetric(statAC, "static_AC_seconds")
}

// BenchmarkAblationBackfill compares mixed-workload makespan with
// EASY backfill on and off.
func BenchmarkAblationBackfill(b *testing.B) {
	var on, off time.Duration
	for i := 0; i < b.N; i++ {
		r, err := repro.AblationBackfill(repro.DefaultParams(), 16, 6)
		if err != nil {
			b.Fatal(err)
		}
		on, off = r.On, r.Off
	}
	b.ReportMetric(vms(on), "backfill_on_vms")
	b.ReportMetric(vms(off), "backfill_off_vms")
}

// BenchmarkAblationDoubleBuffer compares chunked offloading with and
// without double buffering (the latency-hiding technique of the
// paper's Section I).
func BenchmarkAblationDoubleBuffer(b *testing.B) {
	var seq, ovl time.Duration
	for i := 0; i < b.N; i++ {
		r, err := repro.AblationDoubleBuffer(repro.DefaultParams(), 8)
		if err != nil {
			b.Fatal(err)
		}
		seq, ovl = r.Sequential, r.Overlapped
	}
	b.ReportMetric(vms(seq), "sequential_vms")
	b.ReportMetric(vms(ovl), "double_buffered_vms")
}

// BenchmarkAblationPartialAlloc measures the future-work partial
// allocation option.
func BenchmarkAblationPartialAlloc(b *testing.B) {
	var with, without int
	for i := 0; i < b.N; i++ {
		r, err := repro.AblationPartialAlloc(repro.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		with, without = r.GrantedWithPartial, r.GrantedWithoutPartial
	}
	b.ReportMetric(float64(with), "granted_with_partial")
	b.ReportMetric(float64(without), "granted_without")
}

// BenchmarkAblationSchedulerPortability compares a workload and a
// dynamic request under Maui and under TORQUE's basic FIFO pbs_sched
// (the paper's Section V portability claim).
func BenchmarkAblationSchedulerPortability(b *testing.B) {
	var mMk, fMk, mDyn, fDyn time.Duration
	for i := 0; i < b.N; i++ {
		r, err := repro.AblationSchedulerPortability(repro.DefaultParams(), 12, 6)
		if err != nil {
			b.Fatal(err)
		}
		mMk, fMk, mDyn, fDyn = r.MauiMakespan, r.FIFOMakespan, r.MauiDynLatency, r.FIFODynLatency
	}
	b.ReportMetric(vms(mMk), "maui_makespan_vms")
	b.ReportMetric(vms(fMk), "fifo_makespan_vms")
	b.ReportMetric(vms(mDyn), "maui_dyn_vms")
	b.ReportMetric(vms(fDyn), "fifo_dyn_vms")
}

// --- simulator micro-benchmarks (real wall time) ---

// The three kernel hot-path benchmarks live in internal/kernelbench so
// cmd/dacbench can also run them via testing.Benchmark and record
// their allocs/op as regression-gated series.

// BenchmarkEventDispatch measures closure-free timer dispatch
// (AfterArg schedule + controller pop + callback).
func BenchmarkEventDispatch(b *testing.B) { kernelbench.EventDispatch(b) }

// BenchmarkSleepWake measures the pooled park/dispatch/wake round trip.
func BenchmarkSleepWake(b *testing.B) { kernelbench.SleepWake(b) }

// BenchmarkNetsimHop measures one arena-backed fabric hop
// (send → deliver → recv → release).
func BenchmarkNetsimHop(b *testing.B) { kernelbench.NetsimHop(b) }

// BenchmarkHistogramRecord measures one streaming-histogram
// observation on the telemetry hot path (pinned at 0 allocs/op).
func BenchmarkHistogramRecord(b *testing.B) { kernelbench.HistogramRecord(b) }

// BenchmarkRegistryScrape measures one windowed scrape cycle over a
// representative telemetry instrument mix.
func BenchmarkRegistryScrape(b *testing.B) { kernelbench.RegistryScrape(b) }

// BenchmarkArrivalsNext measures one open-loop arrival draw (gap +
// weighted shape pick) on the service admission path.
func BenchmarkArrivalsNext(b *testing.B) { kernelbench.ArrivalsNext(b) }

// BenchmarkAuditRecordDisabled measures the recorder-disabled audit
// hot path (nil recorder, pinned at 0 allocs/op).
func BenchmarkAuditRecordDisabled(b *testing.B) { kernelbench.AuditRecordDisabled(b) }

// BenchmarkAuditRecordEnabled measures one in-place ring-slot write
// on the enabled audit hot path.
func BenchmarkAuditRecordEnabled(b *testing.B) { kernelbench.AuditRecordEnabled(b) }

// BenchmarkSimSleepEvents measures the event-queue throughput of the
// virtual-time kernel.
func BenchmarkSimSleepEvents(b *testing.B) {
	s := sim.New()
	err := s.Run(func() {
		for i := 0; i < b.N; i++ {
			s.Sleep(time.Microsecond)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkNetsimMessage measures fabric send+recv round trips.
func BenchmarkNetsimMessage(b *testing.B) {
	s := sim.New()
	n := netsim.New(s, netsim.LinkParams{Latency: time.Microsecond})
	err := s.Run(func() {
		defer n.Close()
		a, c := n.Endpoint("a"), n.Endpoint("c")
		for i := 0; i < b.N; i++ {
			if err := a.Send("c", "t", i, 0); err != nil {
				b.Fatal(err)
			}
			if _, err := c.Recv(); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMPIPingPong measures point-to-point messaging through the
// MPI layer.
func BenchmarkMPIPingPong(b *testing.B) {
	s := sim.New()
	n := netsim.New(s, netsim.LinkParams{Latency: time.Microsecond})
	rt := mpi.NewRuntime(n, mpi.Config{})
	err := s.Run(func() {
		defer n.Close()
		done := s.NewGate("done")
		var finished bool
		rt.LaunchWorld([]string{"h0", "h1"}, "pp", func(p *mpi.Proc) {
			w := p.World()
			if w.Rank() == 0 {
				for i := 0; i < b.N; i++ {
					if err := w.Send(1, 1, i, 0); err != nil {
						return
					}
					if _, err := w.Recv(1, 2); err != nil {
						return
					}
				}
				finished = true
				done.Broadcast()
			} else {
				for i := 0; i < b.N; i++ {
					if _, err := w.Recv(0, 1); err != nil {
						return
					}
					if err := w.Send(0, 2, i, 0); err != nil {
						return
					}
				}
			}
		})
		var mu sync.Mutex
		mu.Lock()
		for !finished {
			done.Wait(&mu)
		}
		mu.Unlock()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkClusterJobTurnaround measures simulating one complete
// batch job through submit, schedule, run, and completion.
func BenchmarkClusterJobTurnaround(b *testing.B) {
	for i := 0; i < b.N; i++ {
		err := repro.RunCluster(repro.DefaultParams(), func(c *repro.Cluster, client *repro.Client) {
			id, err := client.Submit(repro.JobSpec{
				Name: "bench", Owner: "b", Nodes: 1, PPN: 1, Walltime: time.Second,
				Script: func(env *repro.JobEnv) { c.Sim.Sleep(10 * time.Millisecond) },
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := client.Wait(id); err != nil {
				b.Fatal(err)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
