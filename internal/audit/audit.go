// Package audit is the simulator's flight recorder: a bounded ring of
// structured state-delta events emitted from the pbs server, the maui
// scheduler, the netsim fabric, the dac library, and the gpusim
// devices at each state-mutation site, plus an online invariant
// engine and periodic per-component state digests.
//
// The recorder answers the question the span tracer cannot: "what was
// the cluster state at virtual time T, and do both sides agree?". A
// run with the recorder enabled yields a deterministic JSONL
// recording; two recordings are compared with Diff (or the dacaudit
// CLI) down to the first divergent event, which names the responsible
// component and virtual timestamp instead of leaving a whole-figure
// byte diff to eyeball.
//
// Everything is nil-safe in the style of the trace and telemetry
// layers: a nil *Recorder accepts every call as a no-op, so
// instrumentation sites record unconditionally and the disabled hot
// path stays free of branches and allocations.
package audit

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a recorded event.
type Kind uint8

// Event kinds. KindJob through KindCycle are state-delta events from
// the instrumented components; KindDigest and KindBreach are produced
// by the recorder itself (digest captures and invariant breaches).
const (
	KindJob     Kind = iota + 1 // job lifecycle transition (pbs)
	KindAlloc                   // accelerator/core allocation commit
	KindRelease                 // accelerator/core release
	KindNode                    // node free-count change
	KindMsg                     // netsim message commit (delivery)
	KindCycle                   // scheduler cycle boundary
	KindDigest                  // periodic component state digest
	KindBreach                  // invariant breach
)

// kindNames is indexed by Kind; slot 0 is unused.
var kindNames = [...]string{"", "job", "alloc", "release", "node", "msg", "cycle", "digest", "breach"}

// String names the kind as it appears in recordings.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// KindFromString parses the recording representation of a kind; it
// returns 0 for unknown names.
func KindFromString(s string) Kind {
	for i := 1; i < len(kindNames); i++ {
		if kindNames[i] == s {
			return Kind(i)
		}
	}
	return 0
}

// Event is one recorded state delta. The string fields reference
// strings the emitting component already holds (job ids, host names,
// message tags, constant transition labels), so recording an event
// never allocates; A and B carry the two event-specific integers
// (cores, counts, digest sums).
type Event struct {
	Seq    uint64        // recorder-assigned sequence number
	VT     time.Duration // virtual time of the mutation
	Kind   Kind
	Comp   string // emitting component: pbs, maui, netsim, dac, gpusim, audit
	Subj   string // subject: job id, host, pair, digest or invariant name
	Detail string // transition label, message tag, breach description
	A, B   int64
}

// DefaultCapacity is the ring size New uses when given a
// non-positive capacity: large enough to hold every event of a scale
// ladder point, small enough to stay cheap when only the tail
// matters.
const DefaultCapacity = 1 << 18

// Recorder is the flight recorder. All methods are safe on a nil
// receiver (no-ops), and safe for concurrent use.
type Recorder struct {
	clock func() time.Duration // virtual clock; nil until bound

	mu   sync.Mutex
	ring []Event
	n    uint64 // events ever recorded; ring slot is n % cap

	checks   atomic.Int64
	breaches atomic.Int64

	srcMu    sync.Mutex
	sources  map[string]digestSource
	captures atomic.Int64 // digest capture rounds

	// onBreach, when set, runs after a breach event is recorded (used
	// to dump the recording the moment an invariant fails).
	onBreach func(Event)
}

type digestSource struct {
	comp string
	fn   func(*Digest)
}

// New returns a recorder whose ring holds capacity events (the oldest
// are overwritten beyond that); capacity <= 0 selects
// DefaultCapacity.
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		ring:    make([]Event, capacity),
		sources: make(map[string]digestSource),
	}
}

// SetClock binds the virtual clock events are stamped with; the sim
// kernel calls this when the recorder is installed. Events recorded
// before a clock is bound carry VT 0.
func (r *Recorder) SetClock(now func() time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.clock = now
	r.mu.Unlock()
}

// OnBreach registers a callback invoked (synchronously, on the
// breaching actor) after each invariant breach is recorded.
func (r *Recorder) OnBreach(fn func(Event)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.onBreach = fn
	r.mu.Unlock()
}

// Record appends one event to the ring. The signature is fully
// concrete — no interfaces, no variadics, no formatting — so a call
// on the disabled (nil) recorder performs zero allocations.
func (r *Recorder) Record(k Kind, comp, subj, detail string, a, b int64) {
	if r == nil {
		return
	}
	r.record(k, comp, subj, detail, a, b)
}

// record stores one event and returns a copy along with the breach
// callback captured under the same lock, so Check hands OnBreach the
// exact event it recorded even when other actors record concurrently.
func (r *Recorder) record(k Kind, comp, subj, detail string, a, b int64) (Event, func(Event)) {
	r.mu.Lock()
	e := &r.ring[r.n%uint64(len(r.ring))]
	e.Seq = r.n
	if r.clock != nil {
		e.VT = r.clock()
	} else {
		e.VT = 0
	}
	e.Kind = k
	e.Comp = comp
	e.Subj = subj
	e.Detail = detail
	e.A = a
	e.B = b
	r.n++
	ev, fn := *e, r.onBreach
	r.mu.Unlock()
	return ev, fn
}

// Check records the outcome of one invariant evaluation: satisfied
// checks only bump a counter, violations record a KindBreach event
// carrying the invariant name and fire the OnBreach callback.
func (r *Recorder) Check(comp, name, subj string, ok bool, a, b int64) {
	if r == nil {
		return
	}
	r.checks.Add(1)
	if ok {
		return
	}
	r.breaches.Add(1)
	e, fn := r.record(KindBreach, comp, name, subj, a, b)
	if fn != nil {
		fn(e)
	}
}

// Checks reports the number of invariant evaluations so far.
func (r *Recorder) Checks() int64 {
	if r == nil {
		return 0
	}
	return r.checks.Load()
}

// Breaches reports the number of invariant violations so far.
func (r *Recorder) Breaches() int64 {
	if r == nil {
		return 0
	}
	return r.breaches.Load()
}

// Len reports the number of events ever recorded (including any that
// have been overwritten in the ring).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.n)
}

// Dropped reports how many events were overwritten because the ring
// wrapped.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n > uint64(len(r.ring)) {
		return int64(r.n - uint64(len(r.ring)))
	}
	return 0
}

// Events returns a snapshot of the retained events in sequence order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	capN := uint64(len(r.ring))
	count := r.n
	if count > capN {
		count = capN
	}
	out := make([]Event, count)
	start := r.n - count
	for i := uint64(0); i < count; i++ {
		out[i] = r.ring[(start+i)%capN]
	}
	return out
}
