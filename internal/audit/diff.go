package audit

import (
	"fmt"
	"io"
	"time"
)

// Divergence describes the first point where two recordings differ.
type Divergence struct {
	Index int // position of the first divergent event in both streams

	// WindowStart is the stream position of the first event in the
	// surrounding windows (Index clamped back by the diff context).
	WindowStart int

	// Left and Right are the divergent events; one is nil when that
	// recording ended before the other.
	Left, Right *Event

	// WindowLeft and WindowRight are the surrounding events from each
	// recording (up to the diff context before and after Index).
	WindowLeft, WindowRight []Event
}

// Comp names the component responsible for the divergence: the
// component of the first differing event (both sides, when they name
// different ones).
func (d *Divergence) Comp() string {
	switch {
	case d.Left != nil && d.Right != nil && d.Left.Comp != d.Right.Comp:
		return d.Left.Comp + "/" + d.Right.Comp
	case d.Left != nil:
		return d.Left.Comp
	case d.Right != nil:
		return d.Right.Comp
	}
	return "?"
}

// VT returns the virtual timestamp of the divergence (the earlier of
// the two sides when both are present).
func (d *Divergence) VT() time.Duration {
	switch {
	case d.Left != nil && d.Right != nil:
		if d.Right.VT < d.Left.VT {
			return d.Right.VT
		}
		return d.Left.VT
	case d.Left != nil:
		return d.Left.VT
	case d.Right != nil:
		return d.Right.VT
	}
	return 0
}

// sameEvent compares everything that makes two recordings "the same
// run": kind, component, subject, detail, payloads, and virtual
// timestamp. Seq is implied by position and skipped, so recordings
// whose rings wrapped at different depths still align.
func sameEvent(a, b Event) bool {
	return a.Kind == b.Kind && a.Comp == b.Comp && a.Subj == b.Subj &&
		a.Detail == b.Detail && a.A == b.A && a.B == b.B && a.VT == b.VT
}

// Diff walks two recordings to the first divergent event and returns
// it with up to context surrounding events from each side, or nil
// when the recordings are identical. A recording that is a strict
// prefix of the other diverges at the first missing event.
func Diff(a, b []Event, context int) *Divergence {
	if context < 0 {
		context = 0
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	idx := -1
	for i := 0; i < n; i++ {
		if !sameEvent(a[i], b[i]) {
			idx = i
			break
		}
	}
	if idx < 0 {
		if len(a) == len(b) {
			return nil
		}
		idx = n
	}
	lo := idx - context
	if lo < 0 {
		lo = 0
	}
	d := &Divergence{Index: idx, WindowStart: lo}
	if idx < len(a) {
		d.Left = &a[idx]
	}
	if idx < len(b) {
		d.Right = &b[idx]
	}
	d.WindowLeft = window(a, lo, idx+context+1)
	d.WindowRight = window(b, lo, idx+context+1)
	return d
}

func window(ev []Event, lo, hi int) []Event {
	if hi > len(ev) {
		hi = len(ev)
	}
	if lo >= hi {
		return nil
	}
	return ev[lo:hi]
}

// FormatEvent renders one event the way dacaudit prints it.
func FormatEvent(e Event) string {
	return fmt.Sprintf("#%-6d %12.3fms  %-7s %-7s %-14s %-22s a=%d b=%d",
		e.Seq, float64(e.VT)/1e6, e.Kind, e.Comp, e.Subj, e.Detail, e.A, e.B)
}

// WriteDivergence renders a divergence report: responsible component,
// virtual timestamp, the two divergent events, and the surrounding
// window from each recording.
func WriteDivergence(w io.Writer, d *Divergence, nameA, nameB string) error {
	if d == nil {
		_, err := fmt.Fprintln(w, "recordings are identical")
		return err
	}
	side := func(e *Event) string {
		if e == nil {
			return "(recording ended)"
		}
		return FormatEvent(*e)
	}
	if _, err := fmt.Fprintf(w,
		"first divergence at event %d: component %s, virtual time %.3fms\n  %s: %s\n  %s: %s\n",
		d.Index, d.Comp(), float64(d.VT())/1e6,
		nameA, side(d.Left), nameB, side(d.Right)); err != nil {
		return err
	}
	// The divergent event sits min(Index, context) into each window
	// (window slices start at Index-context, clamped to 0).
	emit := func(name string, ev []Event, at int) error {
		if _, err := fmt.Fprintf(w, "window %s:\n", name); err != nil {
			return err
		}
		for i, e := range ev {
			marker := "  "
			if i == at {
				marker = "> "
			}
			if _, err := fmt.Fprintf(w, "%s%s\n", marker, FormatEvent(e)); err != nil {
				return err
			}
		}
		return nil
	}
	at := d.Index - d.WindowStart
	if err := emit(nameA, d.WindowLeft, at); err != nil {
		return err
	}
	return emit(nameB, d.WindowRight, at)
}
