package audit

import (
	"sync"
	"time"
)

// Clock abstracts the virtual clock the digest ticker runs on. It is
// structurally identical to the telemetry scrape clock, so a
// *sim.Simulation satisfies it directly (this package cannot import
// the kernel: the kernel imports it).
type Clock interface {
	// Now returns the current virtual time.
	Now() time.Duration
	// After schedules fn to run once d has elapsed on the clock.
	After(d time.Duration, fn func())
}

// DefaultMaxCaptures caps the digest timer chain, mirroring the
// telemetry scraper: a forgotten Stop must not keep the simulation's
// event queue alive forever.
const DefaultMaxCaptures = 4096

// Ticker captures digests on a fixed virtual-time cadence — the same
// cadence the telemetry scraper uses, so digest rounds line up with
// scrape windows in a combined timeline.
type Ticker struct {
	// MaxCaptures bounds the number of periodic captures; beyond it
	// the timer chain self-disarms (Stop still takes a final
	// capture). Set before Start; defaults to DefaultMaxCaptures.
	MaxCaptures int

	rec      *Recorder
	clock    Clock
	interval time.Duration

	mu      sync.Mutex
	stopped bool
	rounds  int
}

// NewTicker returns a digest ticker for rec driven by clock; call
// Start to arm it. A non-positive interval disables periodic
// captures (Stop still captures once).
func NewTicker(rec *Recorder, clock Clock, interval time.Duration) *Ticker {
	return &Ticker{MaxCaptures: DefaultMaxCaptures, rec: rec, clock: clock, interval: interval}
}

// Start arms the first capture one interval from now.
func (t *Ticker) Start() {
	if t == nil || t.rec == nil || t.clock == nil || t.interval <= 0 {
		return
	}
	t.clock.After(t.interval, t.tick)
}

func (t *Ticker) tick() {
	t.mu.Lock()
	if t.stopped || t.rounds >= t.MaxCaptures {
		t.mu.Unlock()
		return
	}
	t.rounds++
	rearm := t.rounds < t.MaxCaptures
	t.mu.Unlock()
	t.rec.CaptureDigests()
	if rearm {
		t.clock.After(t.interval, t.tick)
	}
}

// Stop disarms the ticker and takes one final capture, so the end
// state is always digested even when the run ends mid-interval.
func (t *Ticker) Stop() {
	if t == nil || t.rec == nil {
		return
	}
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return
	}
	t.stopped = true
	t.mu.Unlock()
	t.rec.CaptureDigests()
}
