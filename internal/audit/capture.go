package audit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// jsonEvent is the JSONL wire form of an Event: kinds travel as their
// names so recordings stay greppable, and virtual time travels in
// nanoseconds.
type jsonEvent struct {
	Seq    uint64 `json:"seq"`
	VT     int64  `json:"vt_ns"`
	Kind   string `json:"kind"`
	Comp   string `json:"comp,omitempty"`
	Subj   string `json:"subj,omitempty"`
	Detail string `json:"detail,omitempty"`
	A      int64  `json:"a,omitempty"`
	B      int64  `json:"b,omitempty"`
}

// WriteRecording writes events as JSONL, one event per line, in the
// order given (Events returns them in sequence order).
func WriteRecording(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		je := jsonEvent{
			Seq: e.Seq, VT: int64(e.VT), Kind: e.Kind.String(),
			Comp: e.Comp, Subj: e.Subj, Detail: e.Detail, A: e.A, B: e.B,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteRecording snapshots the recorder's retained events and writes
// them as JSONL.
func (r *Recorder) WriteRecording(w io.Writer) error {
	return WriteRecording(w, r.Events())
}

// maxRecordingLine bounds one JSONL line, mirroring the trace capture
// reader.
const maxRecordingLine = 4 << 20

// ReadRecording parses a JSONL recording produced by WriteRecording.
// Blank lines are skipped; an unknown kind or malformed line is an
// error naming the line number.
func ReadRecording(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxRecordingLine)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(b, &je); err != nil {
			return nil, fmt.Errorf("audit: recording line %d: %w", line, err)
		}
		k := KindFromString(je.Kind)
		if k == 0 {
			return nil, fmt.Errorf("audit: recording line %d: unknown kind %q", line, je.Kind)
		}
		out = append(out, Event{
			Seq: je.Seq, VT: time.Duration(je.VT), Kind: k,
			Comp: je.Comp, Subj: je.Subj, Detail: je.Detail, A: je.A, B: je.B,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("audit: recording line %d: %w", line, err)
	}
	return out, nil
}
