package audit

import "sort"

// Digest accumulates a deterministic 64-bit FNV-1a hash over a
// component's state. Providers must feed it in a deterministic order
// — sorted map keys, never wall-clock values — which the digestdet
// daclint analyzer enforces for every function that takes a *Digest.
// Field writes are length-delimited so concatenations cannot collide
// ("ab","c" vs "a","bc").
type Digest struct {
	h uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func newDigest() *Digest { return &Digest{h: fnvOffset64} }

func (d *Digest) byte(b byte) {
	d.h = (d.h ^ uint64(b)) * fnvPrime64
}

// WriteString hashes s followed by its length as a delimiter.
func (d *Digest) WriteString(s string) {
	for i := 0; i < len(s); i++ {
		d.byte(s[i])
	}
	d.WriteUint(uint64(len(s)))
}

// WriteUint hashes v as eight little-endian bytes.
func (d *Digest) WriteUint(v uint64) {
	for i := 0; i < 8; i++ {
		d.byte(byte(v >> (8 * i)))
	}
}

// WriteInt hashes v as eight little-endian bytes.
func (d *Digest) WriteInt(v int64) { d.WriteUint(uint64(v)) }

// WriteBool hashes a single 0/1 byte.
func (d *Digest) WriteBool(v bool) {
	if v {
		d.byte(1)
	} else {
		d.byte(0)
	}
}

// Sum returns the accumulated hash.
func (d *Digest) Sum() uint64 { return d.h }

// RegisterDigest installs a named digest provider for a component.
// The provider runs at every capture round with a fresh Digest; it
// must produce identical sums for identical component state (the
// basis of the cross-parallelism and cross-mode identity gates).
// Registering an existing name replaces the provider.
func (r *Recorder) RegisterDigest(comp, name string, fn func(*Digest)) {
	if r == nil || fn == nil {
		return
	}
	r.srcMu.Lock()
	r.sources[name] = digestSource{comp: comp, fn: fn}
	r.srcMu.Unlock()
}

// CaptureDigests runs every registered provider in sorted name order
// and records one KindDigest event per provider: Subj is the digest
// name, A the hash sum, B the capture round. It returns the round
// index.
func (r *Recorder) CaptureDigests() int64 {
	if r == nil {
		return 0
	}
	round := r.captures.Add(1) - 1
	r.srcMu.Lock()
	names := make([]string, 0, len(r.sources))
	for name := range r.sources {
		names = append(names, name)
	}
	sort.Strings(names)
	srcs := make([]digestSource, len(names))
	for i, name := range names {
		srcs[i] = r.sources[name]
	}
	r.srcMu.Unlock()
	for i, name := range names {
		d := newDigest()
		srcs[i].fn(d)
		r.Record(KindDigest, srcs[i].comp, name, "digest", int64(d.Sum()), round)
	}
	return round
}

// DigestCaptures reports how many capture rounds have run.
func (r *Recorder) DigestCaptures() int64 {
	if r == nil {
		return 0
	}
	return r.captures.Load()
}
