package audit

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Record(KindJob, "pbs", "1.cluster", "submit", 1, 2)
	r.Check("pbs", "conservation", "cn0", false, 0, 0)
	r.RegisterDigest("pbs", "pbs.jobs", func(*Digest) {})
	r.SetClock(func() time.Duration { return 0 })
	r.OnBreach(func(Event) {})
	if r.CaptureDigests() != 0 || r.Len() != 0 || r.Breaches() != 0 ||
		r.Checks() != 0 || r.Dropped() != 0 || r.Events() != nil || r.DigestCaptures() != 0 {
		t.Fatal("nil recorder must be inert")
	}
}

// TestDisabledRecordAllocs pins the acceptance criterion directly:
// recording through a disabled (nil) recorder is alloc-free.
func TestDisabledRecordAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(KindAlloc, "pbs", "ac3", "1.cluster", 1, 0)
	})
	if allocs != 0 {
		t.Fatalf("disabled Record allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestEnabledRecordAllocs pins the enabled hot path too: events are
// written in place into preallocated ring slots.
func TestEnabledRecordAllocs(t *testing.T) {
	r := New(1024)
	r.SetClock(func() time.Duration { return 42 })
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(KindMsg, "netsim", "cn0", "pbs", 128, 0)
	})
	if allocs != 0 {
		t.Fatalf("enabled Record allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestRecordAndEvents(t *testing.T) {
	now := time.Duration(0)
	r := New(8)
	r.SetClock(func() time.Duration { return now })
	now = 5 * time.Millisecond
	r.Record(KindJob, "pbs", "1.c", "submit", 2, 0)
	now = 7 * time.Millisecond
	r.Record(KindAlloc, "pbs", "ac0", "1.c", 1, 0)
	ev := r.Events()
	if len(ev) != 2 {
		t.Fatalf("got %d events, want 2", len(ev))
	}
	want := Event{Seq: 0, VT: 5 * time.Millisecond, Kind: KindJob, Comp: "pbs", Subj: "1.c", Detail: "submit", A: 2}
	if ev[0] != want {
		t.Fatalf("event 0 = %+v, want %+v", ev[0], want)
	}
	if ev[1].Seq != 1 || ev[1].VT != 7*time.Millisecond || ev[1].Kind != KindAlloc {
		t.Fatalf("event 1 = %+v", ev[1])
	}
}

func TestRingWraps(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Record(KindNode, "pbs", "cn0", "", int64(i), 0)
	}
	if r.Len() != 10 || r.Dropped() != 6 {
		t.Fatalf("len=%d dropped=%d, want 10/6", r.Len(), r.Dropped())
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d, want 4", len(ev))
	}
	for i, e := range ev {
		if e.A != int64(6+i) || e.Seq != uint64(6+i) {
			t.Fatalf("retained[%d] = %+v, want a=%d", i, e, 6+i)
		}
	}
}

func TestCheckRecordsBreaches(t *testing.T) {
	r := New(16)
	var fired []Event
	r.OnBreach(func(e Event) { fired = append(fired, e) })
	r.Check("pbs", "conservation.host", "cn0", true, 8, 8)
	r.Check("pbs", "double-alloc", "ac1", false, 2, 1)
	if r.Checks() != 2 || r.Breaches() != 1 {
		t.Fatalf("checks=%d breaches=%d, want 2/1", r.Checks(), r.Breaches())
	}
	ev := r.Events()
	if len(ev) != 1 || ev[0].Kind != KindBreach || ev[0].Subj != "double-alloc" {
		t.Fatalf("events = %+v", ev)
	}
	if len(fired) != 1 || fired[0].Subj != "double-alloc" || fired[0].A != 2 {
		t.Fatalf("OnBreach fired with %+v", fired)
	}
}

func TestDigestDeterminism(t *testing.T) {
	sum := func() uint64 {
		d := newDigest()
		d.WriteString("cn0")
		d.WriteInt(-3)
		d.WriteUint(7)
		d.WriteBool(true)
		return d.Sum()
	}
	if sum() != sum() {
		t.Fatal("digest not deterministic")
	}
	// Length delimiting: ("ab","c") must differ from ("a","bc").
	a, b := newDigest(), newDigest()
	a.WriteString("ab")
	a.WriteString("c")
	b.WriteString("a")
	b.WriteString("bc")
	if a.Sum() == b.Sum() {
		t.Fatal("field boundaries must not collide")
	}
}

func TestCaptureDigestsSortedAndStable(t *testing.T) {
	r := New(64)
	r.RegisterDigest("netsim", "netsim.pairs", func(d *Digest) { d.WriteInt(1) })
	r.RegisterDigest("pbs", "pbs.jobs", func(d *Digest) { d.WriteInt(2) })
	r.RegisterDigest("maui", "maui.sched", func(d *Digest) { d.WriteInt(3) })
	r.CaptureDigests()
	r.CaptureDigests()
	ev := r.Events()
	if len(ev) != 6 {
		t.Fatalf("got %d digest events, want 6", len(ev))
	}
	wantOrder := []string{"maui.sched", "netsim.pairs", "pbs.jobs"}
	for round := 0; round < 2; round++ {
		for i, name := range wantOrder {
			e := ev[round*3+i]
			if e.Kind != KindDigest || e.Subj != name || e.B != int64(round) {
				t.Fatalf("round %d event %d = %+v, want subj %s", round, i, e, name)
			}
		}
	}
	// Same provider state, same sums across rounds.
	for i := 0; i < 3; i++ {
		if ev[i].A != ev[3+i].A {
			t.Fatalf("digest %s changed across rounds with unchanged state", ev[i].Subj)
		}
	}
	if r.DigestCaptures() != 2 {
		t.Fatalf("captures = %d, want 2", r.DigestCaptures())
	}
}

// fakeClock drives the ticker without a simulation.
type fakeClock struct {
	now     time.Duration
	pending []struct {
		at time.Duration
		fn func()
	}
}

func (c *fakeClock) Now() time.Duration { return c.now }
func (c *fakeClock) After(d time.Duration, fn func()) {
	c.pending = append(c.pending, struct {
		at time.Duration
		fn func()
	}{c.now + d, fn})
}
func (c *fakeClock) advance(to time.Duration) {
	for {
		ran := false
		for i, p := range c.pending {
			if p.at <= to {
				c.pending = append(c.pending[:i], c.pending[i+1:]...)
				c.now = p.at
				p.fn()
				ran = true
				break
			}
		}
		if !ran {
			break
		}
	}
	c.now = to
}

func TestTickerCadenceAndStop(t *testing.T) {
	r := New(64)
	r.RegisterDigest("pbs", "pbs.jobs", func(d *Digest) { d.WriteInt(1) })
	clk := &fakeClock{}
	tk := NewTicker(r, clk, 5*time.Millisecond)
	tk.Start()
	clk.advance(17 * time.Millisecond) // captures at 5, 10, 15
	tk.Stop()                          // final partial capture
	if got := r.DigestCaptures(); got != 4 {
		t.Fatalf("captures = %d, want 4", got)
	}
	tk.Stop() // idempotent
	clk.advance(40 * time.Millisecond)
	if got := r.DigestCaptures(); got != 4 {
		t.Fatalf("captures after stop = %d, want 4", got)
	}
}

func TestTickerMaxCaptures(t *testing.T) {
	r := New(64)
	clk := &fakeClock{}
	tk := NewTicker(r, clk, time.Millisecond)
	tk.MaxCaptures = 3
	tk.Start()
	clk.advance(100 * time.Millisecond)
	if got := r.DigestCaptures(); got != 3 {
		t.Fatalf("captures = %d, want 3 (self-disarm)", got)
	}
	if len(clk.pending) != 0 {
		t.Fatalf("%d timers still armed after cap", len(clk.pending))
	}
}

func TestRecordingRoundTrip(t *testing.T) {
	r := New(16)
	r.SetClock(func() time.Duration { return 3 * time.Millisecond })
	r.Record(KindJob, "pbs", "1.c", "submit", 2, 0)
	r.Record(KindBreach, "pbs", "double-alloc", "ac1", 2, 1)
	var buf bytes.Buffer
	if err := r.WriteRecording(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecording(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Events()
	if len(got) != len(want) {
		t.Fatalf("round trip: %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestReadRecordingRejectsUnknownKind(t *testing.T) {
	_, err := ReadRecording(strings.NewReader(`{"seq":0,"vt_ns":0,"kind":"bogus"}` + "\n"))
	if err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("err = %v, want unknown kind", err)
	}
}

func TestDiffFindsFirstDivergence(t *testing.T) {
	mk := func() []Event {
		var ev []Event
		for i := 0; i < 10; i++ {
			ev = append(ev, Event{Seq: uint64(i), VT: time.Duration(i) * time.Millisecond,
				Kind: KindNode, Comp: "pbs", Subj: "cn0", A: int64(i)})
		}
		return ev
	}
	a, b := mk(), mk()
	if d := Diff(a, b, 3); d != nil {
		t.Fatalf("identical recordings diverge: %+v", d)
	}
	b[6].A = 99
	b[6].Comp = "maui"
	d := Diff(a, b, 2)
	if d == nil || d.Index != 6 {
		t.Fatalf("divergence = %+v, want index 6", d)
	}
	if d.Comp() != "pbs/maui" {
		t.Fatalf("comp = %q", d.Comp())
	}
	if d.VT() != 6*time.Millisecond {
		t.Fatalf("vt = %v", d.VT())
	}
	if len(d.WindowLeft) != 5 || len(d.WindowRight) != 5 || d.WindowStart != 4 {
		t.Fatalf("window = %d/%d start %d", len(d.WindowLeft), len(d.WindowRight), d.WindowStart)
	}
	var buf bytes.Buffer
	if err := WriteDivergence(&buf, d, "a.jsonl", "b.jsonl"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"first divergence at event 6", "component pbs/maui", "6.000ms"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("report missing %q:\n%s", frag, out)
		}
	}
}

func TestDiffPrefix(t *testing.T) {
	a := []Event{{Kind: KindJob, Comp: "pbs"}, {Kind: KindMsg, Comp: "netsim"}}
	d := Diff(a, a[:1], 4)
	if d == nil || d.Index != 1 || d.Right != nil || d.Left == nil {
		t.Fatalf("prefix divergence = %+v", d)
	}
	if d.Comp() != "netsim" {
		t.Fatalf("comp = %q", d.Comp())
	}
}
