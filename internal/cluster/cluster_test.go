package cluster_test

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/pbs"
	"repro/internal/sim"
)

func TestDefaultShapeMatchesPaperTestbed(t *testing.T) {
	p := cluster.Default()
	// 1 CN + 6 AC + the head node running server and scheduler =
	// the paper's 8-node platform for Figures 7(a)/(b).
	if p.ComputeNodes != 1 || p.Accelerators != 6 {
		t.Fatalf("shape = %d CN, %d AC", p.ComputeNodes, p.Accelerators)
	}
	if p.Server.Processing <= 0 || p.Maui.CycleOverhead <= 0 {
		t.Fatal("cost model not populated")
	}
	if !p.Maui.DynTopPriority {
		t.Fatal("paper policy (dyn top priority) must default on")
	}
}

func TestNames(t *testing.T) {
	if cluster.CNName(2) != "cn2" || cluster.ACName(0) != "ac0" {
		t.Fatal("host naming wrong")
	}
}

func TestNewWiresEverything(t *testing.T) {
	s := sim.New()
	p := cluster.Default()
	p.ComputeNodes = 2
	p.Accelerators = 3
	c := cluster.New(s, p)
	if c.Server == nil || c.Sched == nil || c.DAC == nil || c.MPI == nil || c.Net == nil {
		t.Fatal("components missing")
	}
	if len(c.Moms) != 5 {
		t.Fatalf("moms = %d, want 5", len(c.Moms))
	}
	if got := c.ComputeNodeNames(); len(got) != 2 || got[0] != "cn0" {
		t.Fatalf("CN names = %v", got)
	}
	if got := c.AcceleratorNames(); len(got) != 3 || got[2] != "ac2" {
		t.Fatalf("AC names = %v", got)
	}
	for _, ac := range c.AcceleratorNames() {
		if c.DAC.Device(ac) == nil {
			t.Errorf("accelerator %s has no device", ac)
		}
	}
	for _, cn := range c.ComputeNodeNames() {
		if c.Moms[cn].StartDaemons == nil {
			t.Errorf("compute mom %s lacks the daemon starter", cn)
		}
	}
}

func TestRunLifecycle(t *testing.T) {
	p := cluster.Default()
	p.ComputeNodes = 1
	p.Accelerators = 1
	ran := false
	err := cluster.Run(p, func(c *cluster.Cluster, client *pbs.Client) {
		id, err := client.Submit(pbs.JobSpec{
			Name: "smoke", Owner: "u", Nodes: 1, PPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) { c.Sim.Sleep(10 * time.Millisecond) },
		})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		info, err := client.Wait(id)
		if err != nil || info.State != pbs.JobCompleted {
			t.Errorf("Wait: %v %v", info.State, err)
			return
		}
		ran = true
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran {
		t.Fatal("callback never completed")
	}
}
