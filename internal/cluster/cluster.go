// Package cluster assembles the simulated DAC testbed: the fabric,
// the MPI runtime, the DAC context with its GPU devices, the extended
// TORQUE server and moms, and the Maui scheduler — the counterpart of
// the paper's 8-node evaluation platform (one head node running
// pbs_server and Maui, seven nodes used as compute nodes or
// network-attached accelerators).
package cluster

import (
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/dac"
	"repro/internal/maui"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/pbs"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Params configures the testbed's shape and its calibrated cost
// model. The defaults are tuned so the four evaluation figures of the
// paper reproduce in shape and sub-second magnitude; every knob is a
// single additive latency, so the calibration is transparent.
type Params struct {
	// Shape.
	ComputeNodes int
	Accelerators int
	CoresPerNode int

	// Fabric.
	NetLatency      time.Duration
	NetBandwidthBps float64
	PipelineChunk   int
	// LatencyJitter adds ±fraction noise to transfer times; Seed
	// selects the reproducible noise stream. With jitter the paper's
	// 10-trial averaging becomes meaningful (distinct seeds per
	// trial); zero keeps the simulation exactly deterministic.
	LatencyJitter float64
	Seed          uint64

	// Daemons and policies.
	Server pbs.ServerParams
	Mom    pbs.MomParams
	Maui   maui.Params
	MPI    mpi.Config
	DAC    dac.Params

	// MakeScheduler, when non-nil, replaces the Maui scheduler with a
	// custom implementation (e.g. TORQUE's basic FIFO pbs_sched from
	// package fifosched) — the paper's portability claim that any
	// scheduler capable of dynamic allocation integrates with the
	// extended TORQUE (Section V).
	MakeScheduler func(net *netsim.Network, serverEP string) SchedulerDaemon

	// Tracer, when non-nil, is installed on the simulation before any
	// daemon is built, so every layer (netsim, pbs, maui, dac) records
	// spans and metrics into it. Nil disables tracing at no cost.
	Tracer *trace.Tracer

	// Telemetry, when non-nil, is installed on the simulation before
	// any daemon is built, so every layer resolves its live-metrics
	// instruments at construction. Scrape it with telemetry.NewScraper
	// over the simulation's clock. Nil disables telemetry at no cost.
	Telemetry *telemetry.Registry

	// Audit, when non-nil, is installed on the simulation before any
	// daemon is built, so every layer records state-delta events into
	// the flight recorder, registers its state digests, and runs the
	// cycle-boundary invariant checks. Nil disables auditing at no
	// cost. Drive periodic digests with audit.NewTicker over the
	// simulation's clock.
	Audit *audit.Recorder
}

// SchedulerDaemon is what the cluster needs from a scheduler: a
// fabric endpoint for kicks and an actor to start.
type SchedulerDaemon interface {
	Start()
	Endpoint() string
}

// Default returns the calibrated testbed configuration: 1 compute
// node and 6 accelerators (the shape of Figures 7(a) and 7(b));
// experiments needing more compute nodes override the shape.
func Default() Params {
	mp := maui.DefaultParams()
	mp.CycleInterval = time.Second
	// The fixed cycle cost (queue retrieval, priority setup) and the
	// per-request cost drive the batch-system share of Figure 7(b)
	// and the load-dependent waiting of Figure 8.
	mp.CycleOverhead = 150 * time.Millisecond
	mp.PerJobCost = 25 * time.Millisecond
	mp.DynPerReqCost = 25 * time.Millisecond
	return Params{
		ComputeNodes: 1,
		Accelerators: 6,
		CoresPerNode: 8,

		NetLatency:      200 * time.Microsecond,
		NetBandwidthBps: 1.25e9, // ~10 Gb/s class interconnect
		PipelineChunk:   1 << 20,

		Server: pbs.ServerParams{Processing: 3 * time.Millisecond},
		Mom: pbs.MomParams{
			JoinCost:    4 * time.Millisecond,
			DynJoinCost: 35 * time.Millisecond,
			StartCost:   5 * time.Millisecond,
		},
		Maui: mp,
		MPI: mpi.Config{
			ProcStartup:     110 * time.Millisecond,
			ConnectOverhead: 8 * time.Millisecond,
			MergeOverhead:   6 * time.Millisecond,
			SpawnOverhead:   10 * time.Millisecond,
			ControlBytes:    256,
		},
		DAC: dac.DefaultParams(),
	}
}

// Cluster is a fully wired testbed. Create with New, then Start it
// inside a simulation actor; Close tears the fabric down so daemon
// actors exit.
type Cluster struct {
	Params Params
	Sim    *sim.Simulation
	Net    *netsim.Network
	MPI    *mpi.Runtime
	DAC    *dac.Context
	Server *pbs.Server
	// Sched is the Maui scheduler (nil when MakeScheduler installed a
	// custom one); Scheduler is whichever daemon is active.
	Sched     *maui.Scheduler
	Scheduler SchedulerDaemon
	Moms      map[string]*pbs.Mom

	cns []string
	acs []string
}

// CNName returns the i-th compute node's host name.
func CNName(i int) string { return fmt.Sprintf("cn%d", i) }

// ACName returns the i-th accelerator's host name.
func ACName(i int) string { return fmt.Sprintf("ac%d", i) }

// New builds a testbed on a fresh simulation.
func New(s *sim.Simulation, p Params) *Cluster {
	if p.Tracer != nil {
		s.SetTracer(p.Tracer)
	}
	if p.Telemetry != nil {
		s.SetTelemetry(p.Telemetry)
	}
	if p.Audit != nil {
		s.SetAudit(p.Audit)
	}
	net := netsim.New(s, netsim.LinkParams{
		Latency:       p.NetLatency,
		BandwidthBps:  p.NetBandwidthBps,
		PipelineChunk: p.PipelineChunk,
		JitterFrac:    p.LatencyJitter,
	})
	if p.Seed != 0 {
		net.Seed(p.Seed)
	}
	rt := mpi.NewRuntime(net, p.MPI)
	dacParams := p.DAC
	dacParams.JitterFrac = p.LatencyJitter
	dacParams.Seed = p.Seed
	ctx := dac.NewContext(net, rt, dacParams)
	server := pbs.NewServer(net, p.Server)
	var sched *maui.Scheduler
	var daemon SchedulerDaemon
	if p.MakeScheduler != nil {
		daemon = p.MakeScheduler(net, pbs.ServerEndpoint)
	} else {
		sched = maui.New(net, pbs.ServerEndpoint, p.Maui)
		daemon = sched
	}
	server.SetScheduler(daemon.Endpoint())

	c := &Cluster{
		Params:    p,
		Sim:       s,
		Net:       net,
		MPI:       rt,
		DAC:       ctx,
		Server:    server,
		Sched:     sched,
		Scheduler: daemon,
		Moms:      make(map[string]*pbs.Mom),
	}
	for i := 0; i < p.ComputeNodes; i++ {
		name := CNName(i)
		c.cns = append(c.cns, name)
		server.AddNode(name, pbs.ComputeNode, p.CoresPerNode)
		m := pbs.NewMom(net, name, p.Mom)
		m.Cluster = ctx
		m.StartDaemons = ctx.StartDaemons
		c.Moms[name] = m
	}
	for i := 0; i < p.Accelerators; i++ {
		name := ACName(i)
		c.acs = append(c.acs, name)
		server.AddNode(name, pbs.AcceleratorNode, 1)
		m := pbs.NewMom(net, name, p.Mom)
		m.Cluster = ctx
		c.Moms[name] = m
		ctx.AddDevice(name)
	}
	return c
}

// ComputeNodeNames returns the compute node host names.
func (c *Cluster) ComputeNodeNames() []string { return append([]string(nil), c.cns...) }

// AcceleratorNames returns the accelerator host names.
func (c *Cluster) AcceleratorNames() []string { return append([]string(nil), c.acs...) }

// Start spawns every daemon actor. Call from inside the simulation.
func (c *Cluster) Start() {
	c.Server.Start()
	for _, m := range c.Moms {
		m.Start()
	}
	c.Scheduler.Start()
}

// Client creates an IFL client (the paper's front-end host).
func (c *Cluster) Client(name string) *pbs.Client {
	return pbs.NewClient(c.Net, name, pbs.ServerEndpoint)
}

// Close tears down the fabric; all daemon actors exit.
func (c *Cluster) Close() { c.Net.Close() }

// Run is a convenience wrapper: build a simulation, start the
// cluster, run fn with an IFL client, and tear down. The kernel comes
// from the simulation pool and is recycled when the run drains.
func Run(p Params, fn func(c *Cluster, client *pbs.Client)) error {
	s := sim.Acquire()
	defer s.Release()
	cl := New(s, p)
	return s.Run(func() {
		defer cl.Close()
		cl.Start()
		fn(cl, cl.Client("front"))
	})
}
