package dac

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/sim"
)

// Collective dynamic allocation (paper Section III-D, last part):
// when AC_Get is called collectively over all compute nodes of a
// multi-node job, one compute node gathers the per-node counts and
// sends a single pbs_dynget for the total. Either every compute node
// gets its accelerators or none, they share one client-id, and the
// set can only be released collectively.

// collGroup is the per-job rendezvous the compute-node processes use
// to coordinate a collective call. It plays the role of the job's
// shared MPI communicator among compute nodes.
type collGroup struct {
	gate *sim.Gate
	size int

	// mu guards state only and is never held across waits (the gate
	// releases it while parked).
	mu        sync.Mutex
	counts    map[int]int
	parts     map[int][]string
	clientID  int
	errText   string
	published bool
	taken     int

	bCount int
	bPhase int
}

// collGroupFor returns the job's rendezvous group, creating it with
// the job's compute-node count on first use.
func (ctx *Context) collGroupFor(jobID string, size int) *collGroup {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	g, ok := ctx.colls[jobID]
	if !ok {
		g = &collGroup{
			gate:   ctx.Sim.NewGate("dac-coll/" + jobID),
			size:   size,
			counts: make(map[int]int),
			parts:  make(map[int][]string),
		}
		ctx.colls[jobID] = g
	}
	return g
}

// barrier synchronizes all participants (sense-reversing).
func (g *collGroup) barrier() {
	g.mu.Lock()
	phase := g.bPhase
	g.bCount++
	if g.bCount == g.size {
		g.bCount = 0
		g.bPhase++
		g.mu.Unlock()
		g.gate.Broadcast()
		return
	}
	for g.bPhase == phase {
		g.gate.Wait(&g.mu)
	}
	g.mu.Unlock()
}

// CollectiveGet is AC_Get invoked collectively over every compute
// node of the job. Each node passes the number of accelerators it
// wants (zero is allowed); node rank 0 issues the single aggregated
// pbs_dynget. All nodes receive the same client-id; on rejection all
// receive the error and no node gets anything.
func (ac *AC) CollectiveGet(count int) (int, []*Accel, error) {
	ac.mu.Lock()
	if ac.finalized {
		ac.mu.Unlock()
		return 0, nil, ErrFinalized
	}
	ac.mu.Unlock()
	if count < 0 {
		return 0, nil, fmt.Errorf("dac: CollectiveGet count %d", count)
	}
	g := ac.ctx.collGroupFor(ac.env.JobID, len(ac.env.Hosts))
	rank := ac.env.Rank

	g.mu.Lock()
	g.counts[rank] = count
	full := len(g.counts) == g.size
	g.mu.Unlock()
	if full {
		g.gate.Broadcast()
	}

	if rank == 0 {
		// Gather all counts, then issue one request for the total.
		g.mu.Lock()
		for len(g.counts) < g.size {
			g.gate.Wait(&g.mu)
		}
		total := 0
		order := make([]int, 0, g.size)
		for r := 0; r < g.size; r++ {
			total += g.counts[r]
			order = append(order, r)
		}
		g.mu.Unlock()

		start := ac.ctx.Sim.Now()
		grant, err := ac.ifl.DynGet(ac.env.JobID, ac.env.Host, total)
		batch := ac.ctx.Sim.Now() - start
		ac.mu.Lock()
		ac.stats.Gets = append(ac.stats.Gets, GetStat{Count: total, Batch: batch, Rejected: err != nil})
		ac.mu.Unlock()

		g.mu.Lock()
		if err != nil {
			g.errText = err.Error()
		} else {
			g.clientID = grant.ClientID
			idx := 0
			for _, r := range order {
				n := g.counts[r]
				g.parts[r] = append([]string(nil), grant.Hosts[idx:idx+n]...)
				idx += n
			}
		}
		g.published = true
		g.mu.Unlock()
		g.gate.Broadcast()
	}

	// Every node picks up its share.
	g.mu.Lock()
	for !g.published {
		g.gate.Wait(&g.mu)
	}
	part := g.parts[rank]
	clientID := g.clientID
	errText := g.errText
	g.taken++
	if g.taken == g.size {
		// Last reader resets the group for the next round.
		g.taken = 0
		g.published = false
		g.counts = make(map[int]int)
		g.parts = make(map[int][]string)
		g.clientID = 0
		g.errText = ""
		g.mu.Unlock()
		g.gate.Broadcast()
	} else {
		g.mu.Unlock()
	}

	if errText != "" {
		return 0, nil, errors.New("dac: collective AC_Get: " + errText)
	}
	var handles []*Accel
	if len(part) > 0 {
		var err error
		handles, err = ac.spawnAndMerge(part)
		if err != nil {
			return 0, nil, err
		}
	}
	ac.mu.Lock()
	ids := make([]int, len(handles))
	for i, h := range handles {
		ids[i] = h.id
	}
	ac.sets[clientID] = ids
	ac.mu.Unlock()
	return clientID, handles, nil
}

// CollectiveFree releases a collectively acquired set: every compute
// node disconnects and shrinks locally; once all have done so, node
// rank 0 sends the single pbs_dynfree, honoring the constraint that a
// collectively obtained client-id is released collectively.
func (ac *AC) CollectiveFree(clientID int) error {
	if err := ac.releaseLocal(clientID); err != nil {
		return err
	}
	g := ac.ctx.collGroupFor(ac.env.JobID, len(ac.env.Hosts))
	g.barrier()
	if ac.env.Rank == 0 {
		if err := ac.ifl.DynFree(ac.env.JobID, clientID); err != nil {
			return fmt.Errorf("dac: pbs_dynfree: %w", err)
		}
	}
	return nil
}
