package dac

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/mpi"
	"repro/internal/pbs"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Accel is the unique handle identifying one allocated accelerator
// (the paper's ac_handle). Handles remain valid across dynamic
// allocations and releases; the library re-maps them to communicator
// ranks internally, mirroring the "updated handles" of Section III-D.
type Accel struct {
	id   int
	host string
}

// Host returns the accelerator's host name.
func (a *Accel) Host() string { return a.host }

// GetStat decomposes one AC_Get call the way Figure 7(b) does: the
// batch-system share (pbs_dynget round trip: scheduling, DYNJOIN,
// reply) and the resource-management-library share (MPI spawn and
// communicator merge).
type GetStat struct {
	Count    int
	Batch    time.Duration
	MPI      time.Duration
	Rejected bool
}

// Stats aggregates the library's timing observations for the
// experiments.
type Stats struct {
	// InitWaiting is AC_Init's wait for the accelerator daemons to
	// become ready (dark region of Figure 7(a)).
	InitWaiting time.Duration
	// InitConnect is AC_Init's communicator construction time (light
	// region of Figure 7(a)).
	InitConnect time.Duration
	// Gets records every AC_Get decomposition (Figure 7(b)).
	Gets []GetStat
}

// AC is the per-application handle of the DAC resource management
// library (one per compute-node process).
type AC struct {
	ctx  *Context
	env  *pbs.JobEnv
	proc *mpi.Proc
	ifl  *pbs.Client

	inst acInstruments

	mu        sync.Mutex
	comm      *mpi.Comm
	handles   map[int]*Accel
	rankOf    map[int]int   // handle id -> communicator rank
	sets      map[int][]int // client-id -> handle ids
	setAt     map[int]time.Duration
	staticIDs []int
	staticAt  time.Duration
	nextID    int
	nextSeq   int
	gen       int
	finalized bool
	stats     Stats
}

// acInstruments are the library's live metrics: attach/detach counts,
// currently attached accelerators, and busy-time accounting per
// allocation class. Utilization accrues when a set is released (or at
// Finalize), so cumulative ratios are exact while a window's ratio
// attributes a whole interval to the window it completes in.
type acInstruments struct {
	attach      *telemetry.Counter
	detach      *telemetry.Counter
	attached    *telemetry.Gauge
	utilStatic  *telemetry.Occupancy
	utilDynamic *telemetry.Occupancy
}

// Init is AC_Init: it connects the compute-node process with the
// daemons of its statically allocated accelerators and returns the
// library handle plus one accelerator handle per static accelerator.
// With no static accelerators it still initializes the library so
// that AC_Get can be used.
func Init(env *pbs.JobEnv) (*AC, []*Accel, error) {
	ctx, err := FromEnv(env)
	if err != nil {
		return nil, nil, err
	}
	reg := ctx.Sim.Telemetry()
	ac := &AC{
		ctx:     ctx,
		env:     env,
		proc:    ctx.MPI.Attach(env.Host),
		ifl:     pbs.NewClient(ctx.Net, env.Host, env.ServerEP),
		handles: make(map[int]*Accel),
		rankOf:  make(map[int]int),
		sets:    make(map[int][]int),
		setAt:   make(map[int]time.Duration),
		inst: acInstruments{
			attach:      reg.Counter("dac.attach"),
			detach:      reg.Counter("dac.detach"),
			attached:    reg.Gauge("dac.attached"),
			utilStatic:  reg.Occupancy("dac.util_static"),
			utilDynamic: reg.Occupancy("dac.util_dynamic"),
		},
	}
	ac.comm = ac.proc.World()
	if len(env.AccHosts) == 0 {
		return ac, nil, nil
	}
	var sp *trace.Span
	if trc := ctx.Sim.Tracer(); trc != nil {
		sp = trc.Start(ac.track(), "ac.init",
			"job", env.JobID, "acs", strconv.Itoa(len(env.AccHosts)))
	}
	sp.Link(env.TaskSpan) // the job.run task this setup belongs to
	defer sp.End()

	// Waiting phase: the daemons were launched by the mother
	// superior; wait until they are ready to accept a connection.
	wait := sp.Child("wait_port")
	start := ctx.Sim.Now()
	port := ctx.waitPort(env.JobID, env.Host)
	ac.stats.InitWaiting = ctx.Sim.Now() - start
	wait.End()

	// Connect phase: MPI_Comm_connect/accept plus intercomm merge.
	// The child span must end on the error paths too, or the trace
	// leaks an open span (caught by the spanbalance analyzer).
	conn := sp.Child("connect")
	start = ctx.Sim.Now()
	inter, err := ac.proc.Connect(port, ac.proc.World())
	if err != nil {
		conn.End()
		return nil, nil, fmt.Errorf("dac: AC_Init connect: %w", err)
	}
	intra, err := inter.Merge(false)
	if err != nil {
		conn.End()
		return nil, nil, fmt.Errorf("dac: AC_Init merge: %w", err)
	}
	ac.stats.InitConnect = ctx.Sim.Now() - start
	conn.End()

	ac.comm = intra
	accels := make([]*Accel, len(env.AccHosts))
	for i, host := range env.AccHosts {
		h := ac.newHandleLocked(host, i+1)
		ac.staticIDs = append(ac.staticIDs, h.id)
		accels[i] = h
	}
	ac.staticAt = ctx.Sim.Now()
	ac.inst.attach.Add(int64(len(accels)))
	ac.inst.attached.Add(float64(len(accels)))
	return ac, accels, nil
}

// newHandleLocked registers a handle mapped to a communicator rank.
// Init/Get hold no lock yet, but handle allocation is serialized by
// the caller's flow; take the lock for safety.
func (ac *AC) newHandleLocked(host string, rank int) *Accel {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	ac.nextID++
	h := &Accel{id: ac.nextID, host: host}
	ac.handles[h.id] = h
	ac.rankOf[h.id] = rank
	return h
}

// Stats returns the library's timing observations.
func (ac *AC) Stats() Stats {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	out := ac.stats
	out.Gets = append([]GetStat(nil), ac.stats.Gets...)
	return out
}

// Handles returns all currently associated accelerator handles in
// rank order.
func (ac *AC) Handles() []*Accel {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	ids := make([]int, 0, len(ac.handles))
	for id := range ac.handles {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ac.rankOf[ids[a]] < ac.rankOf[ids[b]] })
	out := make([]*Accel, 0, len(ids))
	for _, id := range ids {
		out = append(out, ac.handles[id])
	}
	return out
}

// Get is AC_Get: request count additional network-attached
// accelerators from the batch system at runtime. On success it
// returns the client-id of the dynamically allocated set and its
// handles. On rejection (not enough accelerators) it returns an error
// and the application continues with its existing set.
func (ac *AC) Get(count int) (int, []*Accel, error) {
	ac.mu.Lock()
	if ac.finalized {
		ac.mu.Unlock()
		return 0, nil, ErrFinalized
	}
	ac.mu.Unlock()
	var sp *trace.Span
	if trc := ac.ctx.Sim.Tracer(); trc != nil {
		sp = trc.Start(ac.track(), "ac.get",
			"job", ac.env.JobID, "count", strconv.Itoa(count))
	}
	defer sp.End()

	// Batch-system share: pbs_dynget blocks until the server replies.
	bsp := sp.Child("batch")
	start := ac.ctx.Sim.Now()
	grant, err := ac.ifl.DynGet(ac.env.JobID, ac.env.Host, count)
	batch := ac.ctx.Sim.Now() - start
	bsp.End()
	if err != nil {
		sp.Annotate("outcome", "rejected")
		ac.mu.Lock()
		ac.stats.Gets = append(ac.stats.Gets, GetStat{Count: count, Batch: batch, Rejected: true})
		ac.mu.Unlock()
		return 0, nil, fmt.Errorf("dac: AC_Get: %w", err)
	}

	// Library share: spawn the daemons and rebuild the communicator.
	msp := sp.Child("mpi")
	start = ac.ctx.Sim.Now()
	handles, err := ac.spawnAndMerge(grant.Hosts)
	mpiT := ac.ctx.Sim.Now() - start
	msp.End()
	if err != nil {
		return 0, nil, err
	}
	ac.mu.Lock()
	ids := make([]int, len(handles))
	for i, h := range handles {
		ids[i] = h.id
	}
	ac.sets[grant.ClientID] = ids
	ac.setAt[grant.ClientID] = ac.ctx.Sim.Now()
	ac.stats.Gets = append(ac.stats.Gets, GetStat{Count: count, Batch: batch, MPI: mpiT})
	ac.mu.Unlock()
	ac.ctx.Sim.Audit().Record(audit.KindAlloc, "dac", ac.env.JobID, "attach", int64(len(handles)), int64(grant.ClientID))
	ac.inst.attach.Add(int64(len(handles)))
	ac.inst.attached.Add(float64(len(handles)))
	return grant.ClientID, handles, nil
}

// spawnAndMerge performs the MPI share of a dynamic allocation: tell
// the existing daemons to participate, collectively spawn the new
// ones, and merge everything into one intracommunicator where old
// ranks persist and the new accelerators take ranks x+1..x+y.
func (ac *AC) spawnAndMerge(hosts []string) ([]*Accel, error) {
	ac.mu.Lock()
	comm := ac.comm
	ranks := ac.daemonRanksLocked()
	ac.mu.Unlock()

	for _, r := range ranks {
		if err := comm.Send(r, opTag, opRequest{Op: "spawn", Hosts: hosts}, 0); err != nil {
			return nil, fmt.Errorf("dac: spawn control: %w", err)
		}
	}
	inter, err := comm.SpawnCollective(SpawnCommand, nil, hosts)
	if err != nil {
		return nil, fmt.Errorf("dac: MPI_Comm_spawn: %w", err)
	}
	next, err := inter.Merge(false)
	if err != nil {
		return nil, fmt.Errorf("dac: merge: %w", err)
	}

	ac.mu.Lock()
	defer ac.mu.Unlock()
	base := comm.Size() // old group size; new ranks follow
	ac.comm = next
	handles := make([]*Accel, len(hosts))
	for i, host := range hosts {
		ac.nextID++
		h := &Accel{id: ac.nextID, host: host}
		ac.handles[h.id] = h
		ac.rankOf[h.id] = base + i
		handles[i] = h
	}
	return handles, nil
}

// daemonRanksLocked lists the communicator ranks of all currently
// associated daemons (everything but rank 0).
func (ac *AC) daemonRanksLocked() []int {
	ranks := make([]int, 0, len(ac.rankOf))
	for _, r := range ac.rankOf {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

// Free is AC_Free: release the dynamically allocated set identified
// by clientID. The compute node first disconnects from the daemons
// (they exit), shrinks the communicator, and then notifies the batch
// system through pbs_dynfree; the server's disassociation proceeds
// while the application continues (Section III-D).
func (ac *AC) Free(clientID int) error {
	var sp *trace.Span
	if trc := ac.ctx.Sim.Tracer(); trc != nil {
		sp = trc.Start(ac.track(), "ac.free",
			"job", ac.env.JobID, "client", strconv.Itoa(clientID))
	}
	defer sp.End()
	if err := ac.releaseLocal(clientID); err != nil {
		return err
	}
	// Batch-system notification; positive reply returns immediately.
	if err := ac.ifl.DynFree(ac.env.JobID, clientID); err != nil {
		return fmt.Errorf("dac: pbs_dynfree: %w", err)
	}
	return nil
}

// track names the library's observability track, one per compute-node
// process so concurrent applications render on separate timelines.
func (ac *AC) track() string { return "dac@" + ac.env.Host }

// releaseLocal performs the library-side half of AC_Free: disconnect
// the set's daemons and shrink the communicator.
func (ac *AC) releaseLocal(clientID int) error {
	ac.mu.Lock()
	if ac.finalized {
		ac.mu.Unlock()
		return ErrFinalized
	}
	ids, ok := ac.sets[clientID]
	if !ok {
		ac.mu.Unlock()
		return fmt.Errorf("%w: client-id %d", ErrUnknownSet, clientID)
	}
	delete(ac.sets, clientID)
	heldFor := ac.ctx.Sim.Now() - ac.setAt[clientID]
	delete(ac.setAt, clientID)
	ac.ctx.Sim.Audit().Record(audit.KindRelease, "dac", ac.env.JobID, "detach", int64(len(ids)), int64(clientID))
	comm := ac.comm
	released := make(map[int]bool, len(ids))
	for _, id := range ids {
		released[ac.rankOf[id]] = true
	}
	ac.mu.Unlock()

	// Disconnect: the released daemons exit.
	for r := range released {
		if err := comm.Send(r, opTag, opRequest{Op: "exit"}, 0); err != nil {
			return fmt.Errorf("dac: release: %w", err)
		}
	}

	// Shrink the communicator to the remaining members, renumbering
	// ranks densely. Handle ids stay stable; their ranks re-map.
	ac.mu.Lock()
	keep := []int{0}
	for _, r := range ac.daemonRanksLocked() {
		if !released[r] {
			keep = append(keep, r)
		}
	}
	ac.gen++
	gen := ac.gen
	ac.mu.Unlock()
	for _, r := range keep {
		if r == 0 {
			continue
		}
		if err := comm.Send(r, opTag, opRequest{Op: "shrink", Keep: keep, Gen: gen}, 0); err != nil {
			return fmt.Errorf("dac: shrink control: %w", err)
		}
	}
	next, err := comm.Shrink(keep, gen)
	if err != nil {
		return fmt.Errorf("dac: shrink: %w", err)
	}

	ac.mu.Lock()
	ac.comm = next
	newRank := make(map[int]int, len(keep)) // old rank -> new rank
	for nr, or := range keep {
		newRank[or] = nr
	}
	for _, id := range ids {
		delete(ac.handles, id)
		delete(ac.rankOf, id)
	}
	for id, r := range ac.rankOf {
		ac.rankOf[id] = newRank[r]
	}
	ac.mu.Unlock()
	ac.inst.detach.Add(int64(len(ids)))
	ac.inst.attached.Add(-float64(len(ids)))
	ac.inst.utilDynamic.OnFor(heldFor * time.Duration(len(ids)))
	return nil
}

// Finalize is AC_Finalize: it must be called at the end and releases
// all associated accelerators (static and dynamic). The daemons exit;
// the batch system reclaims the hosts when the job terminates.
func (ac *AC) Finalize() error {
	ac.mu.Lock()
	if ac.finalized {
		ac.mu.Unlock()
		return ErrFinalized
	}
	ac.finalized = true
	comm := ac.comm
	ranks := ac.daemonRanksLocked()
	// Settle the utilization accounting: dynamic sets still held
	// accrue busy time until now, and the static set covers Init
	// through Finalize.
	now := ac.ctx.Sim.Now()
	var detached int
	for clientID, ids := range ac.sets {
		ac.inst.utilDynamic.OnFor((now - ac.setAt[clientID]) * time.Duration(len(ids)))
		detached += len(ids)
	}
	clear(ac.setAt)
	if len(ac.staticIDs) > 0 {
		ac.inst.utilStatic.OnFor((now - ac.staticAt) * time.Duration(len(ac.staticIDs)))
		detached += len(ac.staticIDs)
	}
	ac.mu.Unlock()
	ac.inst.detach.Add(int64(detached))
	ac.inst.attached.Add(-float64(detached))
	for _, r := range ranks {
		_ = comm.Send(r, opTag, opRequest{Op: "exit"}, 0)
	}
	ac.ifl.Close()
	return nil
}
