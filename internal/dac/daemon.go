package dac

import (
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/mpi"
)

// All compute-node-to-daemon traffic travels under one user tag; the
// reply tag is the request's sequence number (>= replyTagBase), so
// concurrent operations to the same daemon never collide.
const (
	opTag        = 1
	replyTagBase = 100
)

// opRequest is the front-end -> back-end protocol of Figure 3: the
// computation API calls translated into requests executed by the
// daemon against its GPU via the (simulated) CUDA driver API, plus
// the control operations used by the resource-management library.
type opRequest struct {
	Op     string // "malloc","free","copyin","copyout","kernel","exit","spawn","shrink"
	Seq    int
	Size   int64
	Ptr    gpusim.Ptr
	Offset int64
	Data   []byte
	Kernel string
	Grid   [3]int
	Block  [3]int
	Args   []any

	// Control fields.
	Hosts []string // spawn: new accelerator hosts
	Keep  []int    // shrink: ranks to retain
	Gen   int      // shrink: generation
}

type opReply struct {
	Seq  int
	Err  string
	Ptr  gpusim.Ptr
	Data []byte
}

// daemonServe is the accelerator daemon's main loop: receive requests
// from the compute node (rank 0 of the merged intracommunicator),
// execute them on the local GPU, reply. Control requests reshape the
// communicator when the compute node dynamically acquires or releases
// accelerators.
func (ctx *Context) daemonServe(p *mpi.Proc, comm *mpi.Comm) {
	dev := ctx.Device(p.Host())
	for {
		st, err := comm.Recv(0, opTag)
		if err != nil {
			return
		}
		req := st.Payload.(opRequest)
		switch req.Op {
		case "exit":
			return
		case "spawn":
			inter, err := comm.SpawnCollective(SpawnCommand, nil, req.Hosts)
			if err != nil {
				return
			}
			next, err := inter.Merge(false)
			if err != nil {
				return
			}
			comm = next
		case "shrink":
			next, err := comm.Shrink(req.Keep, req.Gen)
			if err != nil {
				return
			}
			comm = next
		default:
			reply := ctx.execute(dev, req)
			size := len(reply.Data)
			if size > 0 {
				_ = comm.SendPipelined(0, req.Seq, reply, size)
			} else {
				_ = comm.Send(0, req.Seq, reply, 0)
			}
		}
	}
}

// execute runs one computation request against the device.
func (ctx *Context) execute(dev *gpusim.Device, req opRequest) opReply {
	if dev == nil {
		return opReply{Seq: req.Seq, Err: "dac: host has no accelerator device"}
	}
	switch req.Op {
	case "malloc":
		ptr, err := dev.Malloc(req.Size)
		if err != nil {
			return opReply{Seq: req.Seq, Err: err.Error()}
		}
		return opReply{Seq: req.Seq, Ptr: ptr}
	case "free":
		if err := dev.Free(req.Ptr); err != nil {
			return opReply{Seq: req.Seq, Err: err.Error()}
		}
		return opReply{Seq: req.Seq}
	case "copyin":
		if err := dev.CopyIn(req.Ptr, req.Offset, req.Data); err != nil {
			return opReply{Seq: req.Seq, Err: err.Error()}
		}
		return opReply{Seq: req.Seq}
	case "copyout":
		data, err := dev.CopyOut(req.Ptr, req.Offset, req.Size)
		if err != nil {
			return opReply{Seq: req.Seq, Err: err.Error()}
		}
		return opReply{Seq: req.Seq, Data: data}
	case "kernel":
		if err := dev.Launch(req.Kernel, req.Grid, req.Block, req.Args...); err != nil {
			return opReply{Seq: req.Seq, Err: err.Error()}
		}
		return opReply{Seq: req.Seq}
	default:
		return opReply{Seq: req.Seq, Err: fmt.Sprintf("dac: unknown op %q", req.Op)}
	}
}
