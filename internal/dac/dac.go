// Package dac implements the Dynamic Accelerator-Cluster resource
// management and computation libraries of the paper (Sections II and
// III): AC_Init / AC_Get / AC_Free / AC_Finalize on the compute node
// side, the accelerator daemon (back-end) executing CUDA-like kernels
// on a simulated GPU, and the MPI plumbing between them — ports with
// Connect/Accept for static allocation, collective Spawn plus
// Intercomm merge for dynamic allocation.
package dac

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/gpusim"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/pbs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Common errors.
var (
	ErrNoContext     = errors.New("dac: job environment carries no DAC context")
	ErrUnknownHandle = errors.New("dac: unknown accelerator handle")
	ErrUnknownSet    = errors.New("dac: unknown dynamic set")
	ErrFinalized     = errors.New("dac: library already finalized")
)

// SpawnCommand is the registered name of the accelerator daemon
// binary used for dynamic allocation.
const SpawnCommand = "dacdaemon"

// Params is the DAC layer's cost model.
type Params struct {
	// DaemonLaunch is the mother superior's serial cost of forking
	// one accelerator daemon; with x static accelerators the last
	// daemon starts after x*DaemonLaunch. This serialization is why
	// the AC_Init waiting time of Figure 7(a) grows with the
	// accelerator count.
	DaemonLaunch time.Duration
	// DaemonInit is a daemon's own startup time (CUDA context plus
	// MPI_Init) once forked.
	DaemonInit time.Duration
	// GPUMemBytes is each accelerator's device memory capacity.
	GPUMemBytes int64
	// GPUPerf is the device performance model.
	GPUPerf gpusim.Perf
	// OpTimeout bounds every computation-API round trip; zero waits
	// forever. A timeout surfaces accelerator failures to the
	// application as errors instead of hangs (fault-tolerance
	// extension).
	OpTimeout time.Duration
	// JitterFrac perturbs daemon launch and init times by ±fraction
	// (0 disables), seeded by Seed — the dominant noise source behind
	// the paper's trial-to-trial variance.
	JitterFrac float64
	Seed       uint64
}

// DefaultParams mirrors the paper's testbed era (Fermi-class GPUs).
func DefaultParams() Params {
	return Params{
		DaemonLaunch: 35 * time.Millisecond,
		DaemonInit:   40 * time.Millisecond,
		GPUMemBytes:  3 << 30,
		GPUPerf:      gpusim.DefaultPerf(),
	}
}

// Context is the cluster-wide DAC runtime: it owns the accelerator
// devices, the port registry (the "file" through which daemons
// publish their MPI port, Section III-C), and the MPI runtime. The
// cluster wiring installs it as every mom's Cluster handle.
type Context struct {
	Sim    *sim.Simulation
	Net    *netsim.Network
	MPI    *mpi.Runtime
	Params Params

	mu      sync.Mutex
	ports   map[string]string
	gate    *sim.Gate
	devices map[string]*gpusim.Device
	colls   map[string]*collGroup
	rng     *sim.RNG
}

// NewContext creates the DAC runtime and registers the accelerator
// daemon as a spawnable MPI command.
func NewContext(net *netsim.Network, rt *mpi.Runtime, params Params) *Context {
	seed := params.Seed
	if seed == 0 {
		seed = 1
	}
	ctx := &Context{
		Sim:     net.Sim(),
		Net:     net,
		MPI:     rt,
		Params:  params,
		ports:   make(map[string]string),
		devices: make(map[string]*gpusim.Device),
		colls:   make(map[string]*collGroup),
		rng:     sim.NewRNG(seed),
	}
	ctx.gate = ctx.Sim.NewGate("dac-ports")
	rt.Register(SpawnCommand, ctx.dynamicDaemonMain)
	return ctx
}

// FromEnv recovers the DAC context from a job environment.
func FromEnv(env *pbs.JobEnv) (*Context, error) {
	ctx, ok := env.Cluster.(*Context)
	if !ok || ctx == nil {
		return nil, ErrNoContext
	}
	return ctx, nil
}

// AddDevice creates the simulated GPU of an accelerator host.
func (ctx *Context) AddDevice(host string) *gpusim.Device {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	d := gpusim.NewDevice(ctx.Sim, host, ctx.Params.GPUMemBytes, ctx.Params.GPUPerf)
	ctx.devices[host] = d
	return d
}

// Device returns the GPU of an accelerator host (nil if absent).
func (ctx *Context) Device(host string) *gpusim.Device {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	return ctx.devices[host]
}

// --- port registry ---

func portKey(jobID, cn string) string { return jobID + "/" + cn }

// publishPort records a daemon group's MPI port under its job/compute
// node key, waking any AC_Init waiting on it.
func (ctx *Context) publishPort(jobID, cn, port string) {
	ctx.mu.Lock()
	ctx.ports[portKey(jobID, cn)] = port
	ctx.mu.Unlock()
	ctx.gate.Broadcast()
}

// waitPort blocks until the port for jobID/cn is published. This wait
// is the dominant ("waiting") share of AC_Init in Figure 7(a).
func (ctx *Context) waitPort(jobID, cn string) string {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	for {
		if p, ok := ctx.ports[portKey(jobID, cn)]; ok {
			return p
		}
		ctx.gate.Wait(&ctx.mu)
	}
}

// jitter perturbs a duration by ±JitterFrac (reproducible per Seed).
func (ctx *Context) jitter(d time.Duration) time.Duration {
	if ctx.Params.JitterFrac <= 0 || d <= 0 {
		return d
	}
	ctx.mu.Lock()
	u := ctx.rng.Float64()
	ctx.mu.Unlock()
	f := 1 + ctx.Params.JitterFrac*(2*u-1)
	if f < 0 {
		f = 0
	}
	return time.Duration(float64(d) * f)
}

// StartDaemons is the pbs.DaemonStarter implementation: the mother
// superior invokes it per compute node of a DAC job with static
// accelerators (paper Figure 5, "start daemons"). Daemons are forked
// serially (DaemonLaunch apart), boot in DaemonInit, synchronize, and
// the root opens and publishes an MPI port for the compute node.
// cause is the trace-span id of the mother superior's startup.
func (ctx *Context) StartDaemons(jobID, cn string, acHosts []string, cause uint64) {
	ctx.MPI.LaunchWorld(acHosts, fmt.Sprintf("dacdaemon/%s/%s", jobID, cn), func(p *mpi.Proc) {
		w := p.World()
		// daemon.boot covers serial fork, init, and the readiness
		// barrier — the dark "waiting" share of Figure 7(a).
		var sp *trace.Span
		if trc := ctx.Sim.Tracer(); trc != nil {
			sp = trc.Start("dac/daemon@"+p.Host(), "daemon.boot", "job", jobID)
		}
		sp.Link(cause)
		// Serial fork at the mom plus the daemon's own init.
		ctx.Sim.Sleep(ctx.jitter(time.Duration(w.Rank()+1)*ctx.Params.DaemonLaunch + ctx.Params.DaemonInit))
		if err := w.Barrier(); err != nil {
			sp.End()
			return
		}
		var port string
		if w.Rank() == 0 {
			port = p.OpenPort()
			ctx.publishPort(jobID, cn, port)
		}
		sp.End()
		inter, err := p.Accept(port, w)
		if err != nil {
			return
		}
		intra, err := inter.Merge(true)
		if err != nil {
			return
		}
		ctx.daemonServe(p, intra)
	})
}

// dynamicDaemonMain is the body of a dynamically spawned daemon: it
// completes the merge started by the compute node and serves.
func (ctx *Context) dynamicDaemonMain(p *mpi.Proc, args []string) {
	parent := p.Parent()
	if parent == nil {
		return
	}
	intra, err := parent.Merge(true)
	if err != nil {
		return
	}
	ctx.daemonServe(p, intra)
}
