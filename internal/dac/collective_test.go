package dac_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dac"
	"repro/internal/pbs"
)

func TestCollectiveGetDistributesShares(t *testing.T) {
	var mu sync.Mutex
	gotCounts := map[int]int{} // rank -> handles obtained
	clientIDs := map[int]int{}
	runJob(t, fastParams(2, 6), pbs.JobSpec{
		Name: "coll", Owner: "u", Nodes: 2, PPN: 1, ACPN: 1, Walltime: time.Second,
		Script: func(env *pbs.JobEnv) {
			ac, _, err := dac.Init(env)
			if err != nil {
				t.Errorf("Init: %v", err)
				return
			}
			defer ac.Finalize()
			// Rank 0 wants 1, rank 1 wants 3.
			want := 1
			if env.Rank == 1 {
				want = 3
			}
			cid, hs, err := ac.CollectiveGet(want)
			if err != nil {
				t.Errorf("CollectiveGet rank %d: %v", env.Rank, err)
				return
			}
			// All shares usable.
			for _, h := range hs {
				if _, err := ac.MemAlloc(h, 64); err != nil {
					t.Errorf("MemAlloc on %s: %v", h.Host(), err)
					return
				}
			}
			mu.Lock()
			gotCounts[env.Rank] = len(hs)
			clientIDs[env.Rank] = cid
			mu.Unlock()
			// Release collectively.
			if err := ac.CollectiveFree(cid); err != nil {
				t.Errorf("CollectiveFree rank %d: %v", env.Rank, err)
			}
		},
	})
	mu.Lock()
	defer mu.Unlock()
	if gotCounts[0] != 1 || gotCounts[1] != 3 {
		t.Errorf("shares = %v, want rank0:1 rank1:3", gotCounts)
	}
	if clientIDs[0] != clientIDs[1] {
		t.Errorf("client ids differ: %v", clientIDs)
	}
}

func TestCollectiveGetAllOrNothing(t *testing.T) {
	// Total request (2+3=5) exceeds the 2 free accelerators: every
	// rank must be rejected and no accelerator allocated.
	var mu sync.Mutex
	rejections := 0
	runJob(t, fastParams(2, 4), pbs.JobSpec{
		Name: "collrej", Owner: "u", Nodes: 2, PPN: 1, ACPN: 1, Walltime: time.Second,
		Script: func(env *pbs.JobEnv) {
			ac, _, err := dac.Init(env)
			if err != nil {
				t.Errorf("Init: %v", err)
				return
			}
			defer ac.Finalize()
			want := 2
			if env.Rank == 1 {
				want = 3
			}
			if _, _, err := ac.CollectiveGet(want); err != nil {
				mu.Lock()
				rejections++
				mu.Unlock()
			}
		},
	})
	mu.Lock()
	defer mu.Unlock()
	if rejections != 2 {
		t.Errorf("rejections = %d, want 2 (all-or-nothing)", rejections)
	}
}

func TestCollectiveGetZeroShare(t *testing.T) {
	// A rank may participate with count 0 and receive nothing while
	// the other rank gets its share.
	var mu sync.Mutex
	got := map[int]int{}
	runJob(t, fastParams(2, 4), pbs.JobSpec{
		Name: "collzero", Owner: "u", Nodes: 2, PPN: 1, ACPN: 1, Walltime: time.Second,
		Script: func(env *pbs.JobEnv) {
			ac, _, err := dac.Init(env)
			if err != nil {
				t.Errorf("Init: %v", err)
				return
			}
			defer ac.Finalize()
			want := 0
			if env.Rank == 1 {
				want = 2
			}
			cid, hs, err := ac.CollectiveGet(want)
			if err != nil {
				t.Errorf("CollectiveGet: %v", err)
				return
			}
			mu.Lock()
			got[env.Rank] = len(hs)
			mu.Unlock()
			if err := ac.CollectiveFree(cid); err != nil {
				t.Errorf("CollectiveFree: %v", err)
			}
		},
	})
	mu.Lock()
	defer mu.Unlock()
	if got[0] != 0 || got[1] != 2 {
		t.Errorf("shares = %v", got)
	}
}

// TestCollectiveSetReleasedOnlyCollectively documents the paper's
// contract (§III-D): all compute nodes obtain the same client-id, so
// an individual AC_Free from one node strands the others — the second
// node's release of the shared id fails at the server.
func TestCollectiveSetReleasedOnlyCollectively(t *testing.T) {
	var mu sync.Mutex
	errs := map[int]error{}
	runJob(t, fastParams(2, 4), pbs.JobSpec{
		Name: "collindiv", Owner: "u", Nodes: 2, PPN: 1, ACPN: 1, Walltime: time.Second,
		Script: func(env *pbs.JobEnv) {
			ac, _, err := dac.Init(env)
			if err != nil {
				t.Errorf("Init: %v", err)
				return
			}
			defer ac.Finalize()
			cid, _, err := ac.CollectiveGet(1)
			if err != nil {
				t.Errorf("CollectiveGet: %v", err)
				return
			}
			// Both nodes (wrongly) free individually; the server
			// accepts only the first release of the shared client-id.
			err = ac.Free(cid)
			mu.Lock()
			errs[env.Rank] = err
			mu.Unlock()
		},
	})
	mu.Lock()
	defer mu.Unlock()
	failures := 0
	for _, err := range errs {
		if err != nil {
			failures++
		}
	}
	if failures != 1 {
		t.Fatalf("individual frees of a collective set: %d failures, want exactly 1 (%v)", failures, errs)
	}
}

func TestClusterSmoke(t *testing.T) {
	p := cluster.Default()
	if p.ComputeNodes != 1 || p.Accelerators != 6 {
		t.Fatalf("default shape = %d CN, %d AC", p.ComputeNodes, p.Accelerators)
	}
	err := cluster.Run(fastParams(2, 2), func(c *cluster.Cluster, client *pbs.Client) {
		if got := len(c.ComputeNodeNames()); got != 2 {
			t.Errorf("CNs = %d", got)
		}
		if got := len(c.AcceleratorNames()); got != 2 {
			t.Errorf("ACs = %d", got)
		}
		nodes, err := client.Nodes()
		if err != nil || len(nodes) != 4 {
			t.Errorf("Nodes: %v %v", nodes, err)
		}
		if c.DAC.Device(cluster.ACName(0)) == nil {
			t.Error("accelerator has no device")
		}
		if c.DAC.Device(cluster.CNName(0)) != nil {
			t.Error("compute node should have no device")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
