package dac_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dac"
	"repro/internal/gpusim"
	"repro/internal/pbs"
)

// The paper (Section I) argues the host/accelerator bandwidth penalty
// "may be hidden using techniques such as double buffering". These
// tests exercise exactly that: with two device buffers, the network
// transfer of chunk i+1 overlaps the kernel on chunk i.

func init() {
	// A kernel whose runtime (~40ms on the default device) comfortably
	// exceeds a chunk's transfer time, so overlap is visible.
	gpusim.RegisterKernel("chunkwork", func(ctx *gpusim.KernelCtx) (gpusim.Cost, error) {
		return gpusim.Cost{FLOPs: 515e9 * 0.04}, nil
	})
}

// pipelineParams gives the fabric a real bandwidth so transfers cost
// time: 8 MiB chunks over ~1.25 GB/s ≈ 6.7ms each.
func pipelineParams() cluster.Params {
	p := fastParams(1, 1)
	p.NetBandwidthBps = 1.25e9
	return p
}

const chunkBytes = 8 << 20

// runChunks processes n chunks on one accelerator, either strictly
// sequentially (copy, compute, copy, compute, ...) or double-buffered
// (the next copy is issued while the kernel runs).
func runChunks(t *testing.T, doubleBuffer bool, n int) time.Duration {
	t.Helper()
	var elapsed time.Duration
	var mu sync.Mutex
	p := pipelineParams()
	err := cluster.Run(p, func(c *cluster.Cluster, client *pbs.Client) {
		id, err := client.Submit(pbs.JobSpec{
			Name: "chunks", Owner: "u", Nodes: 1, PPN: 2, ACPN: 1, Walltime: time.Minute,
			Script: func(env *pbs.JobEnv) {
				ac, hs, err := dac.Init(env)
				if err != nil {
					t.Errorf("Init: %v", err)
					return
				}
				defer ac.Finalize()
				h := hs[0]
				bufA, _ := ac.MemAlloc(h, chunkBytes)
				bufB, _ := ac.MemAlloc(h, chunkBytes)
				data := make([]byte, chunkBytes)
				start := c.Sim.Now()
				if !doubleBuffer {
					for i := 0; i < n; i++ {
						if err := ac.MemCpyToDevice(h, bufA, 0, data); err != nil {
							t.Errorf("copy: %v", err)
							return
						}
						if err := ac.KernelRun(h, "chunkwork", [3]int{1}, [3]int{1}, bufA); err != nil {
							t.Errorf("kernel: %v", err)
							return
						}
					}
				} else {
					// Classic double buffering: the transfer of the
					// next chunk is in flight while the kernel works
					// on the current one.
					bufs := [2]gpusim.Ptr{bufA, bufB}
					grp := c.Sim.NewGroup("prefetch")
					if err := ac.MemCpyToDevice(h, bufs[0], 0, data); err != nil {
						t.Errorf("copy: %v", err)
						return
					}
					for i := 0; i < n; i++ {
						if i+1 < n {
							next := bufs[(i+1)%2]
							grp.Go("prefetch", func() {
								if err := ac.MemCpyToDevice(h, next, 0, data); err != nil {
									t.Errorf("prefetch: %v", err)
								}
							})
						}
						if err := ac.KernelRun(h, "chunkwork", [3]int{1}, [3]int{1}, bufs[i%2]); err != nil {
							t.Errorf("kernel: %v", err)
							return
						}
						grp.Wait()
					}
				}
				mu.Lock()
				elapsed = c.Sim.Now() - start
				mu.Unlock()
			},
		})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		client.Wait(id)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	return elapsed
}

func TestDoubleBufferingHidesTransferTime(t *testing.T) {
	const n = 8
	seq := runChunks(t, false, n)
	dbl := runChunks(t, true, n)
	if dbl >= seq {
		t.Fatalf("double buffering (%v) not faster than sequential (%v)", dbl, seq)
	}
	// The saving should be close to (n-1) transfer times: a chunk is
	// ~6.7ms on the 1.25 GB/s fabric, so expect > 30ms saved over 8
	// chunks.
	if saved := seq - dbl; saved < 30*time.Millisecond {
		t.Errorf("saved only %v; transfers not overlapped", saved)
	}
}

func TestStagedKernelAPI(t *testing.T) {
	runJob(t, fastParams(1, 1), pbs.JobSpec{
		Name: "staged", Owner: "u", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Second,
		Script: func(env *pbs.JobEnv) {
			ac, hs, err := dac.Init(env)
			if err != nil {
				t.Errorf("Init: %v", err)
				return
			}
			defer ac.Finalize()
			h := hs[0]
			const n = 8
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = 1
			}
			xp, _ := ac.MemAlloc(h, 8*n)
			yp, _ := ac.MemAlloc(h, 8*n)
			ac.MemCpyToDevice(h, xp, 0, gpusim.EncodeFloat64s(xs))
			ac.MemCpyToDevice(h, yp, 0, gpusim.EncodeFloat64s(make([]float64, n)))

			// Listing 1 sequence: create, set args, run.
			k := ac.KernelCreate(h, "daxpy")
			k.SetArgs(yp, xp, 3.0, n)
			if err := k.Run([3]int{1}, [3]int{n}); err != nil {
				t.Errorf("Run: %v", err)
				return
			}
			// Re-run with new args on the same kernel handle.
			k.SetArgs(yp, xp, 1.0, n)
			if err := k.Run([3]int{1}, [3]int{n}); err != nil {
				t.Errorf("re-Run: %v", err)
				return
			}
			raw, _ := ac.MemCpyFromDevice(h, yp, 0, 8*n)
			for i, v := range gpusim.DecodeFloat64s(raw) {
				if v != 4 {
					t.Errorf("y[%d] = %v, want 4", i, v)
					return
				}
			}
			// Unknown kernels fail at launch, like CUDA module lookup.
			if err := ac.KernelCreate(h, "nope").Run([3]int{1}, [3]int{1}); err == nil {
				t.Error("unknown staged kernel should fail at Run")
			}
		},
	})
}

// TestMultiCNAcceleratorIsolation checks Section III-C's rule: "one
// compute node cannot access the accelerators associated to the other
// compute nodes" — each compute node's library only exposes its own
// set.
func TestMultiCNAcceleratorIsolation(t *testing.T) {
	var mu sync.Mutex
	sets := map[int][]string{}
	runJob(t, fastParams(2, 4), pbs.JobSpec{
		Name: "iso", Owner: "u", Nodes: 2, PPN: 1, ACPN: 2, Walltime: time.Second,
		Script: func(env *pbs.JobEnv) {
			ac, hs, err := dac.Init(env)
			if err != nil {
				t.Errorf("Init: %v", err)
				return
			}
			defer ac.Finalize()
			var hosts []string
			for _, h := range hs {
				hosts = append(hosts, h.Host())
				if _, err := ac.MemAlloc(h, 64); err != nil {
					t.Errorf("MemAlloc on %s: %v", h.Host(), err)
				}
			}
			mu.Lock()
			sets[env.Rank] = hosts
			mu.Unlock()
		},
	})
	mu.Lock()
	defer mu.Unlock()
	if len(sets[0]) != 2 || len(sets[1]) != 2 {
		t.Fatalf("sets = %v", sets)
	}
	for _, a := range sets[0] {
		for _, b := range sets[1] {
			if a == b {
				t.Fatalf("accelerator %s shared between compute nodes: %v", a, sets)
			}
		}
	}
}
