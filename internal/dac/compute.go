package dac

import (
	"errors"
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/mpi"
	"repro/internal/trace"
)

// The computation API of Section II-C: allocate device memory, copy
// data to and from the accelerator, and launch kernels — the
// front-end counterpart of acMemAlloc / acMemCpy / acKernelRun in
// Listing 1. Every call addresses one accelerator through its handle
// and blocks until the daemon replies. Calls to different
// accelerators may run concurrently from separate actors, which is
// how applications overlap transfers and kernels (latency hiding).

// roundTrip sends one request to the daemon behind h and waits for
// its reply. sendSize is the simulated request payload size. Every
// round trip is a span ("op.kernel", "op.copyin", ...) on the
// application's track, so kernel offloads and transfers appear on the
// timeline with their full request/reply latency.
func (ac *AC) roundTrip(h *Accel, req opRequest, sendSize int) (opReply, error) {
	var sp *trace.Span
	if trc := ac.ctx.Sim.Tracer(); trc != nil {
		sp = trc.Start(ac.track(), "op."+req.Op, "ac", h.host)
		if req.Kernel != "" {
			sp.Annotate("kernel", req.Kernel)
		}
	}
	defer sp.End()
	ac.mu.Lock()
	if ac.finalized {
		ac.mu.Unlock()
		return opReply{}, ErrFinalized
	}
	rank, ok := ac.rankOf[h.id]
	if !ok {
		ac.mu.Unlock()
		return opReply{}, fmt.Errorf("%w: %v", ErrUnknownHandle, h)
	}
	comm := ac.comm
	ac.nextSeq++
	req.Seq = replyTagBase + ac.nextSeq
	ac.mu.Unlock()

	var err error
	if sendSize > 0 {
		err = comm.SendPipelined(rank, opTag, req, sendSize)
	} else {
		err = comm.Send(rank, opTag, req, 0)
	}
	if err != nil {
		return opReply{}, fmt.Errorf("dac: request to accelerator %s: %w", h.host, err)
	}
	var st mpi.Status
	if timeout := ac.ctx.Params.OpTimeout; timeout > 0 {
		st, err = comm.RecvTimeout(rank, req.Seq, timeout)
	} else {
		st, err = comm.Recv(rank, req.Seq)
	}
	if err != nil {
		return opReply{}, fmt.Errorf("dac: reply from accelerator %s: %w", h.host, err)
	}
	reply := st.Payload.(opReply)
	if reply.Err != "" {
		return reply, errors.New(reply.Err)
	}
	return reply, nil
}

// MemAlloc allocates size bytes of device memory on the accelerator
// (acMemAlloc).
func (ac *AC) MemAlloc(h *Accel, size int64) (gpusim.Ptr, error) {
	reply, err := ac.roundTrip(h, opRequest{Op: "malloc", Size: size}, 0)
	if err != nil {
		return 0, err
	}
	return reply.Ptr, nil
}

// MemFree releases device memory (acMemFree).
func (ac *AC) MemFree(h *Accel, ptr gpusim.Ptr) error {
	_, err := ac.roundTrip(h, opRequest{Op: "free", Ptr: ptr}, 0)
	return err
}

// MemCpyToDevice copies host data into device memory at ptr+offset
// (acMemCpy, host-to-device). Large transfers use the pipelined bulk
// protocol of the DAC communication layer.
func (ac *AC) MemCpyToDevice(h *Accel, ptr gpusim.Ptr, offset int64, data []byte) error {
	_, err := ac.roundTrip(h, opRequest{Op: "copyin", Ptr: ptr, Offset: offset, Data: data}, len(data))
	return err
}

// MemCpyFromDevice copies n bytes from device memory at ptr+offset
// back to the host (acMemCpy, device-to-host).
func (ac *AC) MemCpyFromDevice(h *Accel, ptr gpusim.Ptr, offset, n int64) ([]byte, error) {
	reply, err := ac.roundTrip(h, opRequest{Op: "copyout", Ptr: ptr, Offset: offset, Size: n}, 0)
	if err != nil {
		return nil, err
	}
	return reply.Data, nil
}

// KernelRun launches a registered kernel on the accelerator
// (acKernelCreate + acKernelSetArgs + acKernelRun collapsed into one
// call; the kernel registry plays the role of pre-compiled modules).
func (ac *AC) KernelRun(h *Accel, kernel string, grid, block [3]int, args ...any) error {
	_, err := ac.roundTrip(h, opRequest{Op: "kernel", Kernel: kernel, Grid: grid, Block: block, Args: args}, 0)
	return err
}

// Kernel is a staged launch handle, matching the paper's Listing 1
// call sequence: acKernelCreate, acKernelSetArgs, acKernelRun.
type Kernel struct {
	ac   *AC
	h    *Accel
	name string
	args []any
}

// KernelCreate prepares a kernel for launching on the accelerator
// (acKernelCreate). It validates nothing remotely: like CUDA module
// lookup, unknown names fail at launch.
func (ac *AC) KernelCreate(h *Accel, name string) *Kernel {
	return &Kernel{ac: ac, h: h, name: name}
}

// SetArgs installs the launch arguments (acKernelSetArgs), replacing
// any previous set. It returns the kernel for chaining.
func (k *Kernel) SetArgs(args ...any) *Kernel {
	k.args = append(k.args[:0], args...)
	return k
}

// Run launches the kernel with the given geometry (acKernelRun) and
// blocks until the daemon reports completion.
func (k *Kernel) Run(grid, block [3]int) error {
	return k.ac.KernelRun(k.h, k.name, grid, block, k.args...)
}
