package dac_test

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dac"
	"repro/internal/gpusim"
	"repro/internal/pbs"
)

// fastParams shrinks the calibrated latencies so tests run through
// many scenarios quickly while keeping every protocol step.
func fastParams(cns, acs int) cluster.Params {
	p := cluster.Default()
	p.ComputeNodes = cns
	p.Accelerators = acs
	p.Maui.CycleInterval = 50 * time.Millisecond
	p.Maui.CycleOverhead = 8 * time.Millisecond
	p.Maui.PerJobCost = 2 * time.Millisecond
	p.Maui.DynPerReqCost = 2 * time.Millisecond
	p.MPI.ProcStartup = 8 * time.Millisecond
	p.MPI.ConnectOverhead = time.Millisecond
	p.MPI.MergeOverhead = time.Millisecond
	p.MPI.SpawnOverhead = 2 * time.Millisecond
	p.DAC.DaemonLaunch = 5 * time.Millisecond
	p.DAC.DaemonInit = 5 * time.Millisecond
	p.Mom.DynJoinCost = 5 * time.Millisecond
	p.Server.Processing = time.Millisecond
	return p
}

// runJob submits a single DAC job and waits for it; script errors are
// reported through t.
func runJob(t *testing.T, p cluster.Params, spec pbs.JobSpec) pbs.JobInfo {
	t.Helper()
	var info pbs.JobInfo
	err := cluster.Run(p, func(c *cluster.Cluster, client *pbs.Client) {
		id, err := client.Submit(spec)
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		info, err = client.Wait(id)
		if err != nil {
			t.Errorf("Wait: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return info
}

func TestInitConnectsStaticAccelerators(t *testing.T) {
	var handles []*dac.Accel
	var stats dac.Stats
	var mu sync.Mutex
	runJob(t, fastParams(1, 3), pbs.JobSpec{
		Name: "init", Owner: "u", Nodes: 1, PPN: 1, ACPN: 3, Walltime: time.Second,
		Script: func(env *pbs.JobEnv) {
			ac, hs, err := dac.Init(env)
			if err != nil {
				t.Errorf("Init: %v", err)
				return
			}
			defer ac.Finalize()
			mu.Lock()
			handles = hs
			stats = ac.Stats()
			mu.Unlock()
		},
	})
	mu.Lock()
	defer mu.Unlock()
	if len(handles) != 3 {
		t.Fatalf("handles = %d, want 3", len(handles))
	}
	if stats.InitWaiting <= 0 || stats.InitConnect <= 0 {
		t.Errorf("stats = %+v; both phases should take time", stats)
	}
	if stats.InitWaiting <= stats.InitConnect {
		t.Errorf("waiting (%v) should dominate connect (%v) as in Figure 7(a)", stats.InitWaiting, stats.InitConnect)
	}
}

func TestInitWaitingGrowsWithAcceleratorCount(t *testing.T) {
	waiting := func(acpn int) time.Duration {
		var w time.Duration
		var mu sync.Mutex
		runJob(t, fastParams(1, 6), pbs.JobSpec{
			Name: "init", Owner: "u", Nodes: 1, PPN: 1, ACPN: acpn, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				ac, _, err := dac.Init(env)
				if err != nil {
					t.Errorf("Init: %v", err)
					return
				}
				defer ac.Finalize()
				mu.Lock()
				w = ac.Stats().InitWaiting
				mu.Unlock()
			},
		})
		mu.Lock()
		defer mu.Unlock()
		return w
	}
	w1, w6 := waiting(1), waiting(6)
	if w6 <= w1 {
		t.Fatalf("waiting(6)=%v should exceed waiting(1)=%v", w6, w1)
	}
}

func TestComputeRoundTrip(t *testing.T) {
	runJob(t, fastParams(1, 1), pbs.JobSpec{
		Name: "vecadd", Owner: "u", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Second,
		Script: func(env *pbs.JobEnv) {
			ac, hs, err := dac.Init(env)
			if err != nil {
				t.Errorf("Init: %v", err)
				return
			}
			defer ac.Finalize()
			h := hs[0]
			const n = 64
			a := make([]float64, n)
			b := make([]float64, n)
			for i := range a {
				a[i], b[i] = float64(i), float64(2*i)
			}
			ap, err := ac.MemAlloc(h, 8*n)
			if err != nil {
				t.Errorf("MemAlloc: %v", err)
				return
			}
			bp, _ := ac.MemAlloc(h, 8*n)
			cp, _ := ac.MemAlloc(h, 8*n)
			if err := ac.MemCpyToDevice(h, ap, 0, gpusim.EncodeFloat64s(a)); err != nil {
				t.Errorf("MemCpyToDevice: %v", err)
				return
			}
			ac.MemCpyToDevice(h, bp, 0, gpusim.EncodeFloat64s(b))
			if err := ac.KernelRun(h, "vecadd", [3]int{1}, [3]int{n}, cp, ap, bp, n); err != nil {
				t.Errorf("KernelRun: %v", err)
				return
			}
			raw, err := ac.MemCpyFromDevice(h, cp, 0, 8*n)
			if err != nil {
				t.Errorf("MemCpyFromDevice: %v", err)
				return
			}
			for i, v := range gpusim.DecodeFloat64s(raw) {
				if v != 3*float64(i) {
					t.Errorf("c[%d] = %v, want %v", i, v, 3*float64(i))
					return
				}
			}
			if err := ac.MemFree(h, ap); err != nil {
				t.Errorf("MemFree: %v", err)
			}
		},
	})
}

func TestDynamicGetAndUse(t *testing.T) {
	var stats dac.Stats
	var mu sync.Mutex
	runJob(t, fastParams(1, 4), pbs.JobSpec{
		Name: "dyn", Owner: "u", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Second,
		Script: func(env *pbs.JobEnv) {
			ac, _, err := dac.Init(env)
			if err != nil {
				t.Errorf("Init: %v", err)
				return
			}
			defer ac.Finalize()
			clientID, hs, err := ac.Get(2)
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			if clientID <= 0 || len(hs) != 2 {
				t.Errorf("Get = %d, %v", clientID, hs)
				return
			}
			// The dynamically obtained accelerators are usable.
			for _, h := range hs {
				p, err := ac.MemAlloc(h, 1024)
				if err != nil {
					t.Errorf("MemAlloc on dynamic %s: %v", h.Host(), err)
					return
				}
				if err := ac.MemCpyToDevice(h, p, 0, []byte{1, 2, 3}); err != nil {
					t.Errorf("copy to dynamic: %v", err)
					return
				}
			}
			// The static accelerator still works after the merge.
			if len(ac.Handles()) != 3 {
				t.Errorf("Handles = %d, want 3", len(ac.Handles()))
			}
			mu.Lock()
			stats = ac.Stats()
			mu.Unlock()
		},
	})
	mu.Lock()
	defer mu.Unlock()
	if len(stats.Gets) != 1 {
		t.Fatalf("Gets = %+v", stats.Gets)
	}
	g := stats.Gets[0]
	if g.Rejected || g.Batch <= 0 || g.MPI <= 0 {
		t.Errorf("GetStat = %+v", g)
	}
	if g.Batch <= g.MPI {
		t.Errorf("batch share (%v) should dominate MPI share (%v) as in Figure 7(b)", g.Batch, g.MPI)
	}
}

func TestGetRejectedApplicationContinues(t *testing.T) {
	continued := false
	var mu sync.Mutex
	runJob(t, fastParams(1, 2), pbs.JobSpec{
		Name: "rej", Owner: "u", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Second,
		Script: func(env *pbs.JobEnv) {
			ac, hs, err := dac.Init(env)
			if err != nil {
				t.Errorf("Init: %v", err)
				return
			}
			defer ac.Finalize()
			if _, _, err := ac.Get(5); err == nil {
				t.Error("Get(5) with 1 free accelerator should be rejected")
				return
			}
			// Existing accelerator still serves requests.
			if _, err := ac.MemAlloc(hs[0], 64); err != nil {
				t.Errorf("static accelerator broken after rejection: %v", err)
				return
			}
			mu.Lock()
			continued = true
			mu.Unlock()
		},
	})
	mu.Lock()
	defer mu.Unlock()
	if !continued {
		t.Fatal("application did not continue after rejection")
	}
}

func TestFreeReleasesAndHandlesRemap(t *testing.T) {
	runJob(t, fastParams(1, 3), pbs.JobSpec{
		Name: "free", Owner: "u", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Second,
		Script: func(env *pbs.JobEnv) {
			ac, _, err := dac.Init(env)
			if err != nil {
				t.Errorf("Init: %v", err)
				return
			}
			defer ac.Finalize()
			setA, hsA, err := ac.Get(1)
			if err != nil {
				t.Errorf("Get A: %v", err)
				return
			}
			setB, hsB, err := ac.Get(1)
			if err != nil {
				t.Errorf("Get B: %v", err)
				return
			}
			if err := ac.Free(setA); err != nil {
				t.Errorf("Free A: %v", err)
				return
			}
			// B's handle must survive A's release (rank remap).
			if _, err := ac.MemAlloc(hsB[0], 128); err != nil {
				t.Errorf("B handle broken after freeing A: %v", err)
				return
			}
			// A's handle is gone.
			if _, err := ac.MemAlloc(hsA[0], 128); !errors.Is(err, dac.ErrUnknownHandle) {
				t.Errorf("A handle should be invalid, got %v", err)
				return
			}
			// The freed accelerator can be re-acquired.
			if _, hs, err := ac.Get(1); err != nil || len(hs) != 1 {
				t.Errorf("re-Get after free: %v %v", hs, err)
				return
			}
			if err := ac.Free(setB); err != nil {
				t.Errorf("Free B: %v", err)
			}
			if err := ac.Free(setB); err == nil {
				t.Error("double Free should fail")
			}
		},
	})
}

func TestFinalizeBlocksFurtherUse(t *testing.T) {
	runJob(t, fastParams(1, 1), pbs.JobSpec{
		Name: "fin", Owner: "u", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Second,
		Script: func(env *pbs.JobEnv) {
			ac, hs, err := dac.Init(env)
			if err != nil {
				t.Errorf("Init: %v", err)
				return
			}
			if err := ac.Finalize(); err != nil {
				t.Errorf("Finalize: %v", err)
				return
			}
			if err := ac.Finalize(); !errors.Is(err, dac.ErrFinalized) {
				t.Errorf("double Finalize: %v", err)
			}
			if _, err := ac.MemAlloc(hs[0], 64); !errors.Is(err, dac.ErrFinalized) {
				t.Errorf("op after Finalize: %v", err)
			}
			if _, _, err := ac.Get(1); !errors.Is(err, dac.ErrFinalized) {
				t.Errorf("Get after Finalize: %v", err)
			}
		},
	})
}

func TestInitWithoutStaticAccelerators(t *testing.T) {
	runJob(t, fastParams(1, 2), pbs.JobSpec{
		Name: "zero", Owner: "u", Nodes: 1, PPN: 1, ACPN: 0, Walltime: time.Second,
		Script: func(env *pbs.JobEnv) {
			ac, hs, err := dac.Init(env)
			if err != nil {
				t.Errorf("Init: %v", err)
				return
			}
			defer ac.Finalize()
			if len(hs) != 0 {
				t.Errorf("handles = %v", hs)
				return
			}
			// Dynamic growth from zero.
			_, got, err := ac.Get(2)
			if err != nil || len(got) != 2 {
				t.Errorf("Get from zero: %v %v", got, err)
				return
			}
			if _, err := ac.MemAlloc(got[0], 64); err != nil {
				t.Errorf("MemAlloc: %v", err)
			}
		},
	})
}

func TestComputeErrorsPropagate(t *testing.T) {
	p := fastParams(1, 1)
	p.DAC.GPUMemBytes = 1024
	runJob(t, p, pbs.JobSpec{
		Name: "err", Owner: "u", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Second,
		Script: func(env *pbs.JobEnv) {
			ac, hs, err := dac.Init(env)
			if err != nil {
				t.Errorf("Init: %v", err)
				return
			}
			defer ac.Finalize()
			h := hs[0]
			if _, err := ac.MemAlloc(h, 4096); err == nil || !strings.Contains(err.Error(), "out of device memory") {
				t.Errorf("OOM err = %v", err)
			}
			if err := ac.KernelRun(h, "no-such-kernel", [3]int{1}, [3]int{1}); err == nil || !strings.Contains(err.Error(), "unknown kernel") {
				t.Errorf("unknown kernel err = %v", err)
			}
			if err := ac.MemFree(h, gpusim.Ptr(999)); err == nil {
				t.Error("bad pointer free should fail")
			}
		},
	})
}

func TestConcurrentAcceleratorsOverlap(t *testing.T) {
	// Two kernels on two accelerators launched from two actors should
	// overlap: total elapsed ~ one kernel, not two.
	gpusim.RegisterKernel("slowburn", func(ctx *gpusim.KernelCtx) (gpusim.Cost, error) {
		return gpusim.Cost{FLOPs: 515e9 / 10}, nil // ~100ms on the default device
	})
	var elapsed time.Duration
	var mu sync.Mutex
	p := fastParams(1, 2)
	err := cluster.Run(p, func(c *cluster.Cluster, client *pbs.Client) {
		id, err := client.Submit(pbs.JobSpec{
			Name: "overlap", Owner: "u", Nodes: 1, PPN: 2, ACPN: 2, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				ac, hs, err := dac.Init(env)
				if err != nil {
					t.Errorf("Init: %v", err)
					return
				}
				defer ac.Finalize()
				start := c.Sim.Now()
				done := c.Sim.NewGate("overlap")
				var dm sync.Mutex
				left := 2
				for _, h := range hs {
					h := h
					c.Sim.Go("offload", func() {
						if err := ac.KernelRun(h, "slowburn", [3]int{1}, [3]int{1}); err != nil {
							t.Errorf("KernelRun: %v", err)
						}
						dm.Lock()
						left--
						dm.Unlock()
						done.Broadcast()
					})
				}
				dm.Lock()
				for left > 0 {
					done.Wait(&dm)
				}
				dm.Unlock()
				mu.Lock()
				elapsed = c.Sim.Now() - start
				mu.Unlock()
			},
		})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		client.Wait(id)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if elapsed <= 0 {
		t.Fatal("kernels never ran")
	}
	// One kernel is ~100ms; two overlapped must be well under 180ms.
	if elapsed > 180*time.Millisecond {
		t.Errorf("two parallel kernels took %v; no overlap", elapsed)
	}
}
