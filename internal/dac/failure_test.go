package dac_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dac"
	"repro/internal/pbs"
)

// ftParams enables heartbeats, the failure detector, and computation
// timeouts on top of the fast test configuration.
func ftParams(cns, acs int) cluster.Params {
	p := fastParams(cns, acs)
	p.Server.DeadAfter = 100 * time.Millisecond
	p.Mom.HeartbeatEvery = 20 * time.Millisecond
	p.DAC.OpTimeout = 80 * time.Millisecond
	return p
}

func TestAcceleratorFailureSurfacesAsOpTimeout(t *testing.T) {
	var opErr error
	var replacement int
	var mu sync.Mutex
	p := ftParams(1, 3)
	err := cluster.Run(p, func(c *cluster.Cluster, client *pbs.Client) {
		id, err := client.Submit(pbs.JobSpec{
			Name: "ft", Owner: "u", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Minute,
			Script: func(env *pbs.JobEnv) {
				ac, hs, err := dac.Init(env)
				if err != nil {
					t.Errorf("Init: %v", err)
					return
				}
				defer ac.Finalize()
				// Warm: the static accelerator works.
				if _, err := ac.MemAlloc(hs[0], 64); err != nil {
					t.Errorf("warm MemAlloc: %v", err)
					return
				}
				// The accelerator's host dies.
				c.Net.SetHostDown(hs[0].Host(), true)
				_, opErr = ac.MemAlloc(hs[0], 64)
				// Wait for the failure detector so the dead node is
				// out of the pool, then acquire a replacement.
				c.Sim.Sleep(300 * time.Millisecond)
				_, repl, err := ac.Get(1)
				if err != nil {
					t.Errorf("replacement Get: %v", err)
					return
				}
				mu.Lock()
				replacement = len(repl)
				mu.Unlock()
				if _, err := ac.MemAlloc(repl[0], 64); err != nil {
					t.Errorf("replacement MemAlloc: %v", err)
				}
				if repl[0].Host() == hs[0].Host() {
					t.Errorf("replacement reused the dead host %s", repl[0].Host())
				}
			},
		})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		client.Wait(id)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if opErr == nil || !strings.Contains(opErr.Error(), "timed out") {
		t.Errorf("op on dead accelerator: err = %v, want timeout", opErr)
	}
	if replacement != 1 {
		t.Errorf("replacement count = %d", replacement)
	}
}

func TestOpTimeoutDisabledBlocksIsNotTested(t *testing.T) {
	// With OpTimeout zero the call would park forever on a dead
	// accelerator; verify the configuration plumbing instead.
	p := ftParams(1, 1)
	if p.DAC.OpTimeout != 80*time.Millisecond {
		t.Fatalf("OpTimeout = %v", p.DAC.OpTimeout)
	}
	if cluster.Default().DAC.OpTimeout != 0 {
		t.Fatal("default config should not impose an op timeout (calibration unchanged)")
	}
}

func TestJobSurvivesDynamicSetHostFailure(t *testing.T) {
	// An accelerator obtained dynamically dies: ops on it fail, the
	// server drops it from the job, and the job still completes.
	p := ftParams(1, 3)
	err := cluster.Run(p, func(c *cluster.Cluster, client *pbs.Client) {
		id, err := client.Submit(pbs.JobSpec{
			Name: "ftdyn", Owner: "u", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Minute,
			Script: func(env *pbs.JobEnv) {
				ac, _, err := dac.Init(env)
				if err != nil {
					t.Errorf("Init: %v", err)
					return
				}
				defer ac.Finalize()
				_, hs, err := ac.Get(1)
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				c.Net.SetHostDown(hs[0].Host(), true)
				if _, err := ac.MemAlloc(hs[0], 64); err == nil {
					t.Error("op on dead dynamic accelerator should fail")
				}
				c.Sim.Sleep(300 * time.Millisecond)
			},
		})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		info, err := client.Wait(id)
		if err != nil {
			t.Errorf("Wait: %v", err)
			return
		}
		if info.State != pbs.JobCompleted {
			t.Errorf("state = %v", info.State)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
