package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenTracer builds a small deterministic trace touching every
// event shape the exporter emits: nested sync spans, an async pair,
// an instant, and two tracks.
func goldenTracer() *Tracer {
	tr := New()
	clk := &manualClock{}
	tr.SetClock(clk.read)

	root := tr.Start("pbs/server", "submit", "owner", "alice")
	clk.advance(3 * time.Millisecond)
	child := root.Child("alloc", "job", "J1")
	clk.advance(1500 * time.Microsecond)
	child.End()
	root.End()
	tr.AsyncSpanAt("netsim", "msg.pbs", 500*time.Microsecond, 200*time.Microsecond,
		"from", "cn0", "to", "pbs/server")
	tr.InstantAt("pbs/server", "acct.Q", 3*time.Millisecond, "job", "J1")
	return tr
}

func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome.golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome export drifted from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			ID   string            `json:"id"`
			S    string            `json:"s"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	byPh := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byPh[ev.Ph]++
	}
	// 2 thread_name metas, 2 sync spans, 1 async pair, 1 instant.
	if byPh["M"] != 2 || byPh["X"] != 2 || byPh["b"] != 1 || byPh["e"] != 1 || byPh["i"] != 1 {
		t.Errorf("phase histogram = %v", byPh)
	}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			if ev.Dur < 0 {
				t.Errorf("negative dur on %q", ev.Name)
			}
			if ev.Args["span"] == "" {
				t.Errorf("sync span %q missing span id", ev.Name)
			}
		case "b", "e":
			if ev.ID == "" {
				t.Errorf("async event %q missing correlation id", ev.Name)
			}
		case "i":
			if ev.S != "t" {
				t.Errorf("instant %q scope = %q", ev.Name, ev.S)
			}
		}
	}
	// Virtual time maps to microseconds: the alloc child started at
	// 3 ms = 3000 µs.
	var found bool
	for _, ev := range doc.TraceEvents {
		if ev.Name == "alloc" && ev.Ph == "X" {
			found = true
			if ev.Ts != 3000 || ev.Dur != 1500 {
				t.Errorf("alloc ts/dur = %v/%v µs, want 3000/1500", ev.Ts, ev.Dur)
			}
		}
	}
	if !found {
		t.Error("no alloc span in export")
	}
}

func TestWriteChromeParentLinks(t *testing.T) {
	tr := goldenTracer()
	evs := tr.Events()
	// First published event is the child (ends first); its Parent must
	// match the root's ID, and the exporter writes both into args.
	var buf bytes.Buffer
	if err := WriteChrome(&buf, evs); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var rootID, childParent string
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		switch ev.Name {
		case "submit":
			rootID = ev.Args["span"]
		case "alloc":
			childParent = ev.Args["parent"]
		}
	}
	if rootID == "" || childParent != rootID {
		t.Errorf("child parent = %q, root id = %q", childParent, rootID)
	}
}
