package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestCaptureRoundTrip(t *testing.T) {
	tr := New()
	clk := &manualClock{}
	tr.SetClock(clk.read)
	root := tr.Start("pbs/server", "submit", "job", "J1")
	clk.advance(2 * time.Millisecond)
	child := root.Child("alloc")
	clk.advance(time.Millisecond)
	child.End()
	root.End()
	tr.AsyncSpanLinkAt("netsim", "msg.pbs", root.ID(), 500*time.Microsecond, 200*time.Microsecond,
		"from", "cn0", "to", "pbs/server")
	tr.InstantAt("pbs/server", "acct.Q", 2*time.Millisecond, "job", "J1")

	var buf bytes.Buffer
	if err := tr.WriteCapture(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip drifted:\ngot:  %+v\nwant: %+v", got, want)
	}
	// The async message span must carry its causal link.
	var msg *Event
	for i := range got {
		if got[i].Name == "msg.pbs" {
			msg = &got[i]
		}
	}
	if msg == nil || len(msg.Links) != 1 || msg.Links[0] != root.ID() {
		t.Fatalf("message links = %+v, want [%d]", msg, root.ID())
	}
}

func TestCaptureSkipsBlankLines(t *testing.T) {
	in := "\n" + `{"Kind":1,"Track":"x","Name":"i","Start":5,"Dur":0,"ID":0,"Parent":0,"Async":false,"Args":null,"Links":null}` + "\n\n"
	evs, err := ReadCapture(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != KindInstant || evs[0].Start != 5 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestCaptureRejectsGarbage(t *testing.T) {
	if _, err := ReadCapture(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("garbage capture parsed without error")
	}
}

func TestSpanLink(t *testing.T) {
	tr := New()
	a := tr.Start("maui", "place")
	a.End()
	b := tr.Start("pbs/server", "alloc")
	b.Link(a.ID())
	b.Link(0) // zero ids (nil-span causes) are ignored
	b.End()
	evs := tr.Events()
	if len(evs[0].Links) != 0 {
		t.Errorf("unlinked span has links %v", evs[0].Links)
	}
	if len(evs[1].Links) != 1 || evs[1].Links[0] != a.ID() {
		t.Errorf("links = %v, want [%d]", evs[1].Links, a.ID())
	}
}

func TestEventLimit(t *testing.T) {
	tr := New()
	tr.SetLimit(2)
	var seen int
	tr.Subscribe(func(Event) { seen++ })
	for i := 0; i < 5; i++ {
		tr.Instant("x", "i")
	}
	if n := len(tr.Events()); n != 2 {
		t.Fatalf("retained %d events, want 2", n)
	}
	if d := tr.Dropped(); d != 3 {
		t.Fatalf("dropped = %d, want 3", d)
	}
	// Subscribers and metrics registries are not bounded by the limit.
	if seen != 5 {
		t.Fatalf("subscriber saw %d events, want 5", seen)
	}
	// The drop count surfaces in the text summary.
	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trace.dropped_events") || !strings.Contains(buf.String(), "3") {
		t.Fatalf("summary does not surface dropped events:\n%s", buf.String())
	}
	// Lifting the limit resumes recording.
	tr.SetLimit(0)
	tr.Instant("x", "i")
	if n := len(tr.Events()); n != 3 {
		t.Fatalf("retained %d events after lifting limit, want 3", n)
	}
}

func TestChromeEmitsLinks(t *testing.T) {
	tr := New()
	a := tr.Start("maui", "place")
	a.End()
	tr.AsyncSpanLinkAt("netsim", "msg.pbs", a.ID(), 0, time.Millisecond)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"links":"1"`) {
		t.Fatalf("chrome export missing links arg:\n%s", buf.String())
	}
}
