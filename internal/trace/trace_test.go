package trace

import (
	"testing"
	"time"
)

// manualClock is a settable virtual clock for deterministic tests.
type manualClock struct{ now time.Duration }

func (c *manualClock) advance(d time.Duration) { c.now += d }
func (c *manualClock) read() time.Duration     { return c.now }

func TestSpanNesting(t *testing.T) {
	tr := New()
	clk := &manualClock{}
	tr.SetClock(clk.read)

	root := tr.Start("pbs/server", "submit", "job", "J1")
	clk.advance(10 * time.Millisecond)
	child := root.Child("alloc")
	clk.advance(5 * time.Millisecond)
	grand := child.Child("place", "hosts", "cn0")
	clk.advance(1 * time.Millisecond)
	grand.End()
	child.End()
	clk.advance(4 * time.Millisecond)
	root.End()

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	// Events publish at End, innermost first.
	g, c, r := evs[0], evs[1], evs[2]
	if g.Name != "place" || c.Name != "alloc" || r.Name != "submit" {
		t.Fatalf("unexpected order: %s, %s, %s", g.Name, c.Name, r.Name)
	}
	if r.Parent != 0 {
		t.Errorf("root has parent %d", r.Parent)
	}
	if c.Parent != r.ID {
		t.Errorf("child parent = %d, want %d", c.Parent, r.ID)
	}
	if g.Parent != c.ID {
		t.Errorf("grandchild parent = %d, want %d", g.Parent, c.ID)
	}
	if r.Start != 0 || r.Dur != 20*time.Millisecond {
		t.Errorf("root interval = %v+%v", r.Start, r.Dur)
	}
	if c.Start != 10*time.Millisecond || c.Dur != 6*time.Millisecond {
		t.Errorf("child interval = %v+%v", c.Start, c.Dur)
	}
	if g.Start != 15*time.Millisecond || g.Dur != 1*time.Millisecond {
		t.Errorf("grandchild interval = %v+%v", g.Start, g.Dur)
	}
	if len(r.Args) != 1 || r.Args[0] != (KV{"job", "J1"}) {
		t.Errorf("root args = %v", r.Args)
	}
}

func TestSpanEndTwice(t *testing.T) {
	tr := New()
	sp := tr.Start("x", "y")
	sp.End()
	sp.End()
	if n := len(tr.Events()); n != 1 {
		t.Fatalf("double End published %d events", n)
	}
}

func TestSpanSurvivesClockRebind(t *testing.T) {
	// Multi-trial experiments reuse one tracer across simulations:
	// SetClock rebinds to a fresh clock starting at zero. A span still
	// open from the previous trial must not report a negative duration.
	tr := New()
	old := &manualClock{now: 100 * time.Millisecond}
	tr.SetClock(old.read)
	sp := tr.Start("maui", "fetch")
	fresh := &manualClock{}
	tr.SetClock(fresh.read)
	old.advance(3 * time.Millisecond)
	sp.End()
	ev := tr.Events()[0]
	if ev.Dur != 3*time.Millisecond {
		t.Fatalf("dur = %v, want 3ms (span must keep its own clock)", ev.Dur)
	}
}

func TestInstantAndAt(t *testing.T) {
	tr := New()
	clk := &manualClock{now: 7 * time.Millisecond}
	tr.SetClock(clk.read)
	tr.Instant("pbs/server", "acct.Q", "job", "J1")
	tr.InstantAt("pbs/server", "acct.S", 9*time.Millisecond)
	tr.SpanAt("netsim", "msg.pbs", 2*time.Millisecond, 1*time.Millisecond)
	evs := tr.Events()
	if evs[0].Kind != KindInstant || evs[0].Start != 7*time.Millisecond {
		t.Errorf("instant = %+v", evs[0])
	}
	if evs[1].Start != 9*time.Millisecond {
		t.Errorf("instantAt = %+v", evs[1])
	}
	if evs[2].Kind != KindSpan || evs[2].Dur != time.Millisecond {
		t.Errorf("spanAt = %+v", evs[2])
	}
}

func TestMetricsRegistries(t *testing.T) {
	tr := New()
	tr.Add("jobs", 2)
	tr.Add("jobs", 3)
	tr.Gauge("queue_depth", 4)
	tr.Gauge("queue_depth", 1)
	tr.Observe("rpc", 10*time.Millisecond)
	tr.Observe("rpc", 30*time.Millisecond)

	if got := tr.Counters()["jobs"]; got != 5 {
		t.Errorf("counter = %d", got)
	}
	if got := tr.Gauges()["queue_depth"]; got != 1 {
		t.Errorf("gauge = %v (want latest)", got)
	}
	h := tr.Histogram("rpc")
	if h == nil || h.N() != 2 || h.Mean() != 20*time.Millisecond {
		t.Errorf("histogram = %+v", h)
	}
	if tr.Histogram("absent") != nil {
		t.Error("absent histogram should be nil")
	}
}

func TestSpanFeedsHistogram(t *testing.T) {
	tr := New()
	clk := &manualClock{}
	tr.SetClock(clk.read)
	for i, host := range []string{"cn0", "cn1"} {
		sp := tr.Start("dac@"+host, "ac.get")
		clk.advance(time.Duration(i+1) * 10 * time.Millisecond)
		sp.End()
	}
	// Per-host tracks aggregate into one per-component histogram.
	h := tr.Histogram("dac.ac.get")
	if h == nil || h.N() != 2 {
		t.Fatalf("histogram = %+v, want 2 observations", h)
	}
	if h.Min() != 10*time.Millisecond || h.Max() != 20*time.Millisecond {
		t.Errorf("histogram range = %v..%v", h.Min(), h.Max())
	}
}

func TestSubscribe(t *testing.T) {
	tr := New()
	var seen []string
	tr.Subscribe(func(ev Event) { seen = append(seen, ev.Name) })
	tr.Start("x", "a").End()
	tr.Instant("x", "b")
	tr.SpanAt("x", "c", 0, 0)
	if len(seen) != 3 || seen[0] != "a" || seen[1] != "b" || seen[2] != "c" {
		t.Fatalf("subscriber saw %v", seen)
	}
}

func TestNilTracerNoop(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	// Every method must be callable and free of allocation.
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start("x", "y", "k", "v")
		sp.Annotate("a", "b")
		sp.Child("z").End()
		sp.End()
		tr.Instant("x", "i")
		tr.InstantAt("x", "i", 0)
		tr.SpanAt("x", "s", 0, 0)
		tr.AsyncSpanAt("x", "s", 0, 0)
		tr.Add("c", 1)
		tr.Gauge("g", 1)
		tr.Observe("h", 0)
		tr.SetClock(nil)
		_ = tr.Now()
		_ = tr.Events()
		_ = tr.Histogram("h")
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocates %.0f per op, want 0", allocs)
	}
}

// BenchmarkDisabledSpan guards the no-op fast path: instrumented hot
// paths run with a nil tracer when tracing is off, so the whole
// Start/Child/End sequence must stay allocation-free and cheap.
func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("pbs/server", "submit", "job", "J1")
		sp.Child("alloc").End()
		sp.End()
	}
}

// BenchmarkEnabledSpan tracks the cost when tracing is on.
func BenchmarkEnabledSpan(b *testing.B) {
	tr := New()
	clk := &manualClock{}
	tr.SetClock(clk.read)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("pbs/server", "submit", "job", "J1")
		sp.Child("alloc").End()
		sp.End()
	}
}
