package trace

import "testing"

// TestNilTracerZeroAlloc pins the disabled tracer's span emission at
// zero allocations per operation. Every layer instruments its hot
// paths unconditionally through nil-safe methods, so the no-op
// exporter must stay allocation-free: the nil-receiver early returns
// let escape analysis keep the variadic annotation slices on the
// caller's stack.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("track", "name", "k", "v")
		ch := sp.Child("child", "k2", "v2")
		ch.Annotate("a", "b")
		ch.Link(sp.ID())
		ch.End()
		sp.End()
		tr.SpanAt("track", "late", 0, 0, "k", "v")
		tr.Instant("track", "mark", "k", "v")
		tr.Add("counter", 1)
	})
	if allocs != 0 {
		t.Fatalf("nil tracer emission: %v allocs/op, want 0", allocs)
	}
}
