// Package trace is the simulation-aware observability layer: named
// spans in virtual time with parent/child causality, a registry of
// counters, gauges, and latency histograms, and an event bus that
// components publish to without coupling to any sink.
//
// The paper's evaluation (Section IV) is a measurement study of batch
// protocol latencies — daemon start, pbs_dynget round trips, scheduler
// cycle cost. This package makes those measurements first-class: every
// layer (pbs server, Maui scheduler, fabric, DAC library) opens spans
// on its hot paths, and exporters render the result as a Chrome
// trace-event file (chrome.go, loadable in Perfetto) or an aligned
// metrics summary (summary.go).
//
// # Disabled tracing
//
// A nil *Tracer is the disabled tracer: every method is nil-receiver
// safe and returns immediately without allocating, so instrumented
// code calls tracer methods unconditionally. Components obtain the
// active tracer from their simulation (sim.Simulation.Tracer), which
// is a single atomic load.
//
// # Concurrency
//
// A Tracer is safe for concurrent use by any number of simulation
// actors; it follows the sim kernel's discipline (no tracer method
// parks, so it may be called while holding component locks).
package trace

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// EventKind discriminates bus events.
type EventKind uint8

// Event kinds.
const (
	// KindSpan is a completed interval (Start..Start+Dur).
	KindSpan EventKind = iota
	// KindInstant is a point event.
	KindInstant
)

// KV is one string annotation on an event.
type KV struct {
	Key, Value string
}

// Event is one record on the bus: a completed span or an instant.
// Virtual timestamps are offsets from simulation start.
type Event struct {
	Kind   EventKind
	Track  string // component track, e.g. "pbs/server", "maui", "netsim", "dac@cn0"
	Name   string
	Start  time.Duration
	Dur    time.Duration // KindSpan only
	ID     uint64        // span id (0 for instants)
	Parent uint64        // parent span id (0 = root)
	Async  bool          // may overlap others on its track (in-flight messages)
	Args   []KV
	// Links are causal edges to spans on other tracks: the ids of the
	// spans whose work produced this one (a message delivery links to
	// the sender's span, a mom.start links to the server's alloc).
	// Parent expresses same-track nesting; Links cross tracks.
	Links []uint64
}

// Tracer records events and aggregates metrics. Create with New; a
// nil Tracer is the disabled, allocation-free no-op.
type Tracer struct {
	mu          sync.Mutex
	clock       func() time.Duration
	nextID      uint64
	events      []Event
	subs        []func(Event)
	limit       int      // max retained events; 0 = unbounded
	dropped     int64    // events discarded once the limit was hit
	dropSink    DropSink // optional live counter mirroring dropped
	dropsToSink int64    // drops already forwarded to the sink

	counters   map[string]int64
	gauges     map[string]float64
	hists      map[string]*metrics.Sample
	counterKey []string // insertion order, for deterministic export
	gaugeKey   []string
	histKey    []string
}

// New returns an enabled tracer. Bind it to a simulation's virtual
// clock with SetClock (sim.Simulation.SetTracer does this for you);
// unbound, all timestamps read zero.
func New() *Tracer {
	return &Tracer{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*metrics.Sample),
	}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// SetClock installs the virtual-time source (typically
// sim.Simulation.Now). Rebinding is allowed: multi-trial experiments
// reuse one tracer across consecutive simulations.
func (t *Tracer) SetClock(clock func() time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

// now reads the bound clock. Callers hold t.mu.
func (t *Tracer) nowLocked() time.Duration {
	if t.clock == nil {
		return 0
	}
	return t.clock()
}

// Now reads the tracer's virtual clock (zero when unbound).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nowLocked()
}

// Span is an open interval created by Start or Child. End it exactly
// once; a nil Span (from a nil Tracer) ignores all calls.
type Span struct {
	t *Tracer
	// clock is captured at creation: when one tracer is reused across
	// consecutive simulations (multi-trial experiments rebind via
	// SetClock), a span still open from the previous trial must end
	// against its own simulation's clock, not the new one.
	clock  func() time.Duration
	track  string
	name   string
	start  time.Duration
	id     uint64
	parent uint64
	args   []KV
	links  []uint64
	ended  bool
}

// Start opens a root span on a component track. kvs are alternating
// key/value annotation pairs.
func (t *Tracer) Start(track, name string, kvs ...string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	sp := &Span{t: t, clock: t.clock, track: track, name: name, start: t.nowLocked(), id: t.nextID, args: pairs(kvs)}
	t.mu.Unlock()
	return sp
}

// Child opens a sub-span of s on the same track, establishing
// parent/child causality in the exported trace.
func (s *Span) Child(name string, kvs ...string) *Span {
	if s == nil {
		return nil
	}
	t := s.t
	t.mu.Lock()
	t.nextID++
	now := s.start
	if s.clock != nil {
		now = s.clock()
	}
	sp := &Span{t: t, clock: s.clock, track: s.track, name: name, start: now, id: t.nextID, parent: s.id, args: pairs(kvs)}
	t.mu.Unlock()
	return sp
}

// Annotate attaches a key/value pair to the span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.args = append(s.args, KV{key, value})
}

// Link records a causal edge from the span with the given id (usually
// on another track) to this span: the linked span's work caused this
// one. A zero id (from a nil span's ID) is ignored, so callers can
// thread ids through messages unconditionally.
func (s *Span) Link(id uint64) {
	if s == nil || id == 0 {
		return
	}
	s.links = append(s.links, id)
}

// ID returns the span's id (0 for the nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// End closes the span: it publishes a KindSpan event and folds the
// duration into the "track.name" latency histogram. Ending twice is a
// no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	t := s.t
	t.mu.Lock()
	now := s.start
	if s.clock != nil {
		now = s.clock()
	}
	ev := Event{
		Kind: KindSpan, Track: s.track, Name: s.name,
		Start: s.start, Dur: now - s.start,
		ID: s.id, Parent: s.parent, Args: s.args, Links: s.links,
	}
	t.publishLocked(ev)
	t.observeLocked(histTrack(s.track)+"."+s.name, ev.Dur)
	subs := t.subs
	t.mu.Unlock()
	for _, fn := range subs {
		fn(ev)
	}
}

// SpanAt records an already-measured interval (for layers that know a
// start and duration after the fact, like message delivery). It feeds
// the same histogram Start/End would.
func (t *Tracer) SpanAt(track, name string, start, dur time.Duration, kvs ...string) {
	t.spanAt(track, name, start, dur, false, 0, kvs)
}

// AsyncSpanAt is SpanAt for intervals that legitimately overlap
// others on the same track — messages in flight on the fabric. The
// Chrome exporter renders them as async (b/e) events, which viewers
// allow to interleave.
func (t *Tracer) AsyncSpanAt(track, name string, start, dur time.Duration, kvs ...string) {
	t.spanAt(track, name, start, dur, true, 0, kvs)
}

// AsyncSpanLinkAt is AsyncSpanAt with a causal link to the span whose
// work produced the interval (the sender's span for a message
// delivery). A zero cause records no link.
func (t *Tracer) AsyncSpanLinkAt(track, name string, cause uint64, start, dur time.Duration, kvs ...string) {
	t.spanAt(track, name, start, dur, true, cause, kvs)
}

func (t *Tracer) spanAt(track, name string, start, dur time.Duration, async bool, cause uint64, kvs []string) {
	if t == nil {
		return
	}
	var links []uint64
	if cause != 0 {
		links = []uint64{cause}
	}
	t.mu.Lock()
	t.nextID++
	ev := Event{Kind: KindSpan, Track: track, Name: name, Start: start, Dur: dur, ID: t.nextID, Async: async, Args: pairs(kvs), Links: links}
	t.publishLocked(ev)
	t.observeLocked(histTrack(track)+"."+name, dur)
	subs := t.subs
	t.mu.Unlock()
	for _, fn := range subs {
		fn(ev)
	}
}

// Instant publishes a point event at the current virtual time.
func (t *Tracer) Instant(track, name string, kvs ...string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	ev := Event{Kind: KindInstant, Track: track, Name: name, Start: t.nowLocked(), Args: pairs(kvs)}
	t.publishLocked(ev)
	subs := t.subs
	t.mu.Unlock()
	for _, fn := range subs {
		fn(ev)
	}
}

// InstantAt is Instant with an explicit virtual timestamp (for
// re-publishing records that carry their own time, like accounting
// log lines).
func (t *Tracer) InstantAt(track, name string, at time.Duration, kvs ...string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	ev := Event{Kind: KindInstant, Track: track, Name: name, Start: at, Args: pairs(kvs)}
	t.publishLocked(ev)
	subs := t.subs
	t.mu.Unlock()
	for _, fn := range subs {
		fn(ev)
	}
}

// publishLocked appends to the event log, discarding once the
// configured limit is reached. Callers hold t.mu.
func (t *Tracer) publishLocked(ev Event) {
	if t.limit > 0 && len(t.events) >= t.limit {
		t.dropped++
		if t.dropSink != nil {
			t.dropSink.Add(1)
			t.dropsToSink++
		}
		return
	}
	t.events = append(t.events, ev)
}

// DropSink receives one Add per event the ring-buffer limit
// discards. The interface is satisfied by *telemetry.Counter; trace
// cannot import telemetry (the dependency runs the other way), so the
// sim kernel bridges the two when both sinks are installed.
type DropSink interface {
	Add(delta int64)
}

// SetDropSink installs (or, with nil, removes) the live drop counter.
// Drops that happened before the sink was installed are replayed into
// it (exactly once, even if the bridge re-installs the same sink), so
// a late-bound registry still reports the true total.
func (t *Tracer) SetDropSink(s DropSink) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.dropSink = s
	if s != nil && t.dropped > t.dropsToSink {
		s.Add(t.dropped - t.dropsToSink)
		t.dropsToSink = t.dropped
	}
	t.mu.Unlock()
}

// SetLimit caps the retained event log at n events; once full, later
// events are discarded (and counted — see Dropped) instead of growing
// the buffer without bound at 256-node scale. Metrics registries and
// subscribers still see every event; only the replayable log is
// bounded. n <= 0 restores the default unbounded buffer.
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if n < 0 {
		n = 0
	}
	t.limit = n
	t.mu.Unlock()
}

// Dropped reports how many events the limit discarded.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Subscribe registers a sink invoked for every subsequent span/instant
// event. Sinks run on the publishing actor and must not park.
func (t *Tracer) Subscribe(fn func(Event)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.subs = append(t.subs, fn)
	t.mu.Unlock()
}

// Add increments a named counter.
func (t *Tracer) Add(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if _, ok := t.counters[name]; !ok {
		t.counterKey = append(t.counterKey, name)
	}
	t.counters[name] += delta
	t.mu.Unlock()
}

// Gauge sets a named gauge to its latest value.
func (t *Tracer) Gauge(name string, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if _, ok := t.gauges[name]; !ok {
		t.gaugeKey = append(t.gaugeKey, name)
	}
	t.gauges[name] = v
	t.mu.Unlock()
}

// Observe adds one duration observation to a named histogram.
func (t *Tracer) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.observeLocked(name, d)
	t.mu.Unlock()
}

func (t *Tracer) observeLocked(name string, d time.Duration) {
	s, ok := t.hists[name]
	if !ok {
		s = &metrics.Sample{}
		t.hists[name] = s
		t.histKey = append(t.histKey, name)
	}
	s.Add(d)
}

// Events returns a snapshot of all recorded events in publish order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Counters returns a snapshot of the counter registry.
func (t *Tracer) Counters() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counters))
	for k, v := range t.counters {
		out[k] = v
	}
	return out
}

// Gauges returns a snapshot of the gauge registry.
func (t *Tracer) Gauges() map[string]float64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]float64, len(t.gauges))
	for k, v := range t.gauges {
		out[k] = v
	}
	return out
}

// Histogram returns a copy of one named histogram (nil if absent).
func (t *Tracer) Histogram(name string) *metrics.Sample {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.hists[name]
	if !ok {
		return nil
	}
	cp := *s
	return &cp
}

// histTrack strips the "@host" instance suffix from a track name so
// latency histograms aggregate per component ("dac@cn0" and "dac@cn1"
// both feed "dac.<span>") while the timeline keeps per-host tracks.
func histTrack(track string) string {
	for i := 0; i < len(track); i++ {
		if track[i] == '@' {
			return track[:i]
		}
	}
	return track
}

// pairs folds alternating key/value strings into annotations; a
// trailing odd key gets an empty value.
func pairs(kvs []string) []KV {
	if len(kvs) == 0 {
		return nil
	}
	out := make([]KV, 0, (len(kvs)+1)/2)
	for i := 0; i < len(kvs); i += 2 {
		kv := KV{Key: kvs[i]}
		if i+1 < len(kvs) {
			kv.Value = kvs[i+1]
		}
		out = append(out, kv)
	}
	return out
}
