package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/metrics"
)

// Aligned-text summary export, built on metrics.Table: one table of
// latency histograms (every span family plus explicit Observe
// streams) with the tail quantiles the paper's mean±std hides, one of
// counters, and one of gauges.

// SummaryTables renders the metric registries as tables. Histogram
// rows are sorted by name; counters and gauges keep registration
// order (the order components came up in).
func (t *Tracer) SummaryTables() []*metrics.Table {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	histKey := append([]string(nil), t.histKey...)
	hists := make(map[string]*metrics.Sample, len(histKey))
	for _, k := range histKey {
		cp := *t.hists[k]
		hists[k] = &cp
	}
	counterKey := append([]string(nil), t.counterKey...)
	counters := make(map[string]int64, len(counterKey))
	for _, k := range counterKey {
		counters[k] = t.counters[k]
	}
	gaugeKey := append([]string(nil), t.gaugeKey...)
	gauges := make(map[string]float64, len(gaugeKey))
	for _, k := range gaugeKey {
		gauges[k] = t.gauges[k]
	}
	dropped := t.dropped
	t.mu.Unlock()

	var out []*metrics.Table
	if len(histKey) > 0 {
		sort.Strings(histKey)
		tb := &metrics.Table{
			Title:   "Span latencies [ms]",
			Headers: []string{"span", "count", "mean", "p50", "p95", "p99", "max"},
		}
		for _, k := range histKey {
			s := hists[k]
			tb.AddRow(k,
				fmt.Sprint(s.N()),
				metrics.Ms(s.Mean()),
				metrics.Ms(s.Percentile(50)),
				metrics.Ms(s.Percentile(95)),
				metrics.Ms(s.Percentile(99)),
				metrics.Ms(s.Max()),
			)
		}
		out = append(out, tb)
	}
	if len(counterKey) > 0 || dropped > 0 {
		tb := &metrics.Table{Title: "Counters", Headers: []string{"counter", "value"}}
		for _, k := range counterKey {
			tb.AddRow(k, fmt.Sprint(counters[k]))
		}
		// The buffer limit (SetLimit) silently discards events once
		// full; a summary that hides that would misreport coverage.
		if dropped > 0 {
			tb.AddRow("trace.dropped_events", fmt.Sprint(dropped))
		}
		out = append(out, tb)
	}
	if len(gaugeKey) > 0 {
		tb := &metrics.Table{Title: "Gauges (latest)", Headers: []string{"gauge", "value"}}
		for _, k := range gaugeKey {
			tb.AddRow(k, fmt.Sprintf("%g", gauges[k]))
		}
		out = append(out, tb)
	}
	return out
}

// WriteSummary renders all summary tables separated by blank lines.
func (t *Tracer) WriteSummary(w io.Writer) error {
	for i, tb := range t.SummaryTables() {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := tb.Render(w); err != nil {
			return err
		}
	}
	return nil
}
