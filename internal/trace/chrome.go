package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Chrome trace-event export: the JSON object format understood by
// Perfetto and chrome://tracing. Virtual timestamps map to the
// format's microsecond "ts" field, so a 300 ms pbs_dynget round trip
// reads as 300 ms on the timeline. Each component track becomes a
// named thread; spans are "X" (complete) events carrying their span
// and parent ids in args, instants are "i" events.

// chromeSpan and chromeInstant are the two wire shapes. Separate
// structs (rather than omitempty juggling) keep the field sets — and
// therefore the golden file — exact.
type chromeSpan struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeInstant struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	S    string            `json:"s"`
	Ts   float64           `json:"ts"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeAsync is one endpoint ("b" or "e") of an async event pair;
// the id field correlates the two and keeps overlapping intervals
// legal on one track.
type chromeAsync struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	ID   string            `json:"id"`
	Ts   float64           `json:"ts"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// chromePid is the single synthetic process all tracks live in.
const chromePid = 1

// WriteChrome renders events as a Chrome trace-event JSON document.
// Output is deterministic: events keep publish order, tracks get
// thread ids in order of first appearance, and args keys are sorted
// by encoding/json.
func WriteChrome(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	tids := make(map[string]int)
	var order []string
	for _, ev := range events {
		if _, ok := tids[ev.Track]; !ok {
			tids[ev.Track] = len(tids) + 1
			order = append(order, ev.Track)
		}
	}
	first := true
	emit := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}
	// Thread-name metadata first, so viewers label the tracks.
	for _, track := range order {
		err := emit(chromeMeta{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: tids[track],
			Args: map[string]string{"name": track},
		})
		if err != nil {
			return err
		}
	}
	micros := func(ns int64) float64 { return float64(ns) / 1e3 }
	for _, ev := range events {
		args := make(map[string]string, len(ev.Args)+3)
		for _, kv := range ev.Args {
			args[kv.Key] = kv.Value
		}
		// Cross-track causal links ride in args (the trace-event format
		// has no native field for them); emitted only when present so
		// link-free traces keep their exact historical shape.
		if len(ev.Links) > 0 {
			var links string
			for i, id := range ev.Links {
				if i > 0 {
					links += ","
				}
				links += strconv.FormatUint(id, 10)
			}
			args["links"] = links
		}
		var err error
		switch ev.Kind {
		case KindSpan:
			if ev.Async {
				id := strconv.FormatUint(ev.ID, 10)
				err = emit(chromeAsync{
					Name: ev.Name, Cat: ev.Track, Ph: "b", ID: id,
					Ts: micros(int64(ev.Start)), Pid: chromePid, Tid: tids[ev.Track], Args: args,
				})
				if err == nil {
					err = emit(chromeAsync{
						Name: ev.Name, Cat: ev.Track, Ph: "e", ID: id,
						Ts: micros(int64(ev.Start + ev.Dur)), Pid: chromePid, Tid: tids[ev.Track],
					})
				}
				break
			}
			if ev.ID != 0 {
				args["span"] = strconv.FormatUint(ev.ID, 10)
			}
			if ev.Parent != 0 {
				args["parent"] = strconv.FormatUint(ev.Parent, 10)
			}
			err = emit(chromeSpan{
				Name: ev.Name, Cat: ev.Track, Ph: "X",
				Ts: micros(int64(ev.Start)), Dur: micros(int64(ev.Dur)),
				Pid: chromePid, Tid: tids[ev.Track], Args: args,
			})
		case KindInstant:
			err = emit(chromeInstant{
				Name: ev.Name, Cat: ev.Track, Ph: "i", S: "t",
				Ts: micros(int64(ev.Start)), Pid: chromePid, Tid: tids[ev.Track], Args: args,
			})
		default:
			err = fmt.Errorf("trace: unknown event kind %d", ev.Kind)
		}
		if err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChrome renders the tracer's recorded events; see the package
// function.
func (t *Tracer) WriteChrome(w io.Writer) error {
	return WriteChrome(w, t.Events())
}
