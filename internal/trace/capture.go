package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Trace captures: the on-disk format cmd/dacprof consumes. One
// JSON-encoded Event per line (JSONL), timestamps in integer
// nanoseconds of virtual time. Virtual time makes captures exactly
// reproducible, so two captures of the same configuration are
// byte-identical and a diff between captures isolates behavioural
// change — the property the profiler's regression-attribution mode
// relies on.

// WriteCapture writes events as JSONL, one event per line.
func WriteCapture(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCapture writes the tracer's recorded events; see the package
// function.
func (t *Tracer) WriteCapture(w io.Writer) error {
	return WriteCapture(w, t.Events())
}

// ReadCapture parses a JSONL capture back into events. Blank lines
// are skipped, so captures survive concatenation and manual editing.
func ReadCapture(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("trace: capture line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading capture: %w", err)
	}
	return out, nil
}
