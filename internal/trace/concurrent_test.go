package trace_test

// External test package: exercising the tracer from real simulation
// actors needs repro/internal/sim, which itself imports trace.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestConcurrentActors(t *testing.T) {
	// Many simulation actors emit spans, instants, and counters at
	// once; the tracer must stay consistent (run with -race).
	const actors, spansPer = 8, 25
	tr := trace.New()
	s := sim.New()
	s.SetTracer(tr)
	err := s.Run(func() {
		var mu sync.Mutex
		remaining := actors
		gate := s.NewGate("join")
		for i := 0; i < actors; i++ {
			host := string(rune('a' + i))
			s.Go("actor-"+host, func() {
				for j := 0; j < spansPer; j++ {
					sp := s.Tracer().Start("comp@"+host, "work")
					s.Sleep(time.Millisecond)
					sp.Child("inner").End()
					sp.End()
					s.Tracer().Instant("comp@"+host, "tick")
					s.Tracer().Add("ticks", 1)
				}
				mu.Lock()
				remaining--
				mu.Unlock()
				gate.Broadcast()
			})
		}
		mu.Lock()
		for remaining > 0 {
			gate.Wait(&mu)
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	wantEvents := actors * spansPer * 3 // outer + inner + instant
	if len(evs) != wantEvents {
		t.Fatalf("got %d events, want %d", len(evs), wantEvents)
	}
	if got := tr.Counters()["ticks"]; got != actors*spansPer {
		t.Fatalf("ticks = %d, want %d", got, actors*spansPer)
	}
	// Span ids must be unique across actors.
	ids := make(map[uint64]bool)
	for _, ev := range evs {
		if ev.Kind != trace.KindSpan {
			continue
		}
		if ids[ev.ID] {
			t.Fatalf("duplicate span id %d", ev.ID)
		}
		ids[ev.ID] = true
	}
	h := tr.Histogram("comp.work")
	if h == nil || h.N() != actors*spansPer {
		t.Fatalf("comp.work histogram = %+v", h)
	}
	if h.Min() != time.Millisecond || h.Max() != time.Millisecond {
		t.Errorf("work spans should all last 1ms, got %v..%v", h.Min(), h.Max())
	}
}

func TestSimTracerDefaultNil(t *testing.T) {
	s := sim.New()
	if s.Tracer() != nil {
		t.Fatal("fresh simulation should have no tracer")
	}
	// Instrumented code paths call through the nil tracer untraced.
	err := s.Run(func() {
		sp := s.Tracer().Start("x", "y")
		s.Sleep(time.Millisecond)
		sp.End()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSimSetTracerBindsClock(t *testing.T) {
	s := sim.New()
	tr := trace.New()
	s.SetTracer(tr)
	var dur time.Duration
	err := s.Run(func() {
		sp := tr.Start("x", "y")
		s.Sleep(250 * time.Millisecond)
		sp.End()
		dur = tr.Events()[0].Dur
	})
	if err != nil {
		t.Fatal(err)
	}
	if dur != 250*time.Millisecond {
		t.Fatalf("span dur = %v, want 250ms of virtual time", dur)
	}
}
