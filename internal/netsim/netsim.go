// Package netsim models the cluster interconnect of the Dynamic
// Accelerator-Cluster architecture: named endpoints exchanging
// messages with configurable per-link latency and bandwidth, with
// optional pipelining of bulk transfers as described in Rinke et al.
// (ICPPW'12) and referenced by the paper's Section II-C.
//
// Delivery is reliable and in order per sender/receiver pair (the
// simulation kernel breaks timestamp ties in FIFO order). Endpoints
// can be disconnected to inject failures.
package netsim

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Common errors returned by endpoint operations.
var (
	ErrClosed       = errors.New("netsim: endpoint closed")
	ErrTimeout      = errors.New("netsim: receive timed out")
	ErrUnknownPeer  = errors.New("netsim: unknown destination endpoint")
	ErrDisconnected = errors.New("netsim: endpoint disconnected")
)

// LinkParams describes the performance of a link (or of the whole
// fabric when used as the network default).
type LinkParams struct {
	// Latency is the one-way propagation plus protocol-stack delay
	// for a message of any size.
	Latency time.Duration
	// BandwidthBps is the sustainable transfer rate in bytes per
	// second; zero means infinitely fast (only Latency applies).
	BandwidthBps float64
	// PipelineChunk is the chunk size in bytes used when a transfer
	// is sent pipelined; zero disables pipelining benefits.
	PipelineChunk int
	// JitterFrac adds uniform noise of ±JitterFrac to every transfer
	// time (0 disables). Jitter is drawn from the network's seeded
	// generator, so runs stay reproducible while distinct trial seeds
	// produce the spread real testbeds show (the paper averages over
	// 10 trials for exactly this reason).
	JitterFrac float64
}

// TransferTime reports how long a payload of size bytes occupies the
// link. Pipelined transfers overlap chunk latencies and pay the
// one-way latency only once; unpipelined transfers pay it per chunk.
func (p LinkParams) TransferTime(size int, pipelined bool) time.Duration {
	if size < 0 {
		size = 0
	}
	serialize := time.Duration(0)
	if p.BandwidthBps > 0 {
		serialize = time.Duration(float64(size) / p.BandwidthBps * float64(time.Second))
	}
	if pipelined || p.PipelineChunk <= 0 || size <= p.PipelineChunk {
		return p.Latency + serialize
	}
	chunks := (size + p.PipelineChunk - 1) / p.PipelineChunk
	return time.Duration(chunks)*p.Latency + serialize
}

// Message is a delivered datagram. Payload is an arbitrary protocol
// value; Size is the simulated wire size used for timing.
//
// Messages live in a fabric-wide arena: every send takes one from the
// pool and the receiver gives it back with Release once the payload is
// extracted. A receiver that forgets to release merely falls back to
// garbage collection.
type Message struct {
	From, To  string
	Tag       string
	Payload   any
	Size      int
	Sent      time.Duration // virtual send time
	Delivered time.Duration // virtual delivery time
	// Cause is the id of the trace span whose work produced this
	// message (0 = untracked). The delivery span links back to it, so
	// the profiler can stitch cross-host causal chains through the
	// fabric instead of guessing from timestamps.
	Cause uint64
	// net and dst route the in-flight message through the package-level
	// delivery callback so scheduling the hop allocates no closure. net
	// doubles as the arena ownership marker: nil means the message has
	// been released (or never came from the arena).
	net *Network
	dst *Endpoint
}

// msgPool is the arena backing in-flight messages. A message cycles
// send → queue → recv → Release and is reused by a later send.
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// Release returns the message to the fabric's arena. Call it after the
// payload (and any fields of interest) have been extracted; the message
// must not be touched afterwards. Releasing twice — or releasing a
// message that did not come from the arena — is a no-op.
func (m *Message) Release() {
	if m == nil || m.net == nil {
		return
	}
	*m = Message{}
	msgPool.Put(m)
}

// Stats aggregates fabric-level counters.
type Stats struct {
	MessagesSent int64
	BytesSent    int64
	Dropped      int64
}

// Network is the simulated fabric. Create endpoints with Endpoint,
// override per-link parameters with SetLink, and tear everything down
// with Close.
type Network struct {
	sim *sim.Simulation
	def LinkParams

	// aud is the flight recorder (nil when auditing is off): one
	// KindMsg event per committed delivery, plus the netsim.pairs
	// digest of per-pair FIFO floors. See audit().
	aud *audit.Recorder

	mu        sync.Mutex
	endpoints map[string]*Endpoint
	pairs     map[[2]string]*pairState
	nameSeq   int
	down      map[string]bool
	downHosts map[string]bool
	rng       *sim.RNG
	trace     func(*Message)
	stats     Stats
	inst      *netInstruments
	// The two flags sit together after the pointer-wide fields so the
	// struct carries no reducible padding (pinned by the layout test
	// in internal/lint).
	anyDown bool // fast-path guard: no endpoint or host is down
	closed  bool
}

// pairState folds everything the per-message send path needs for one
// directed sender/receiver pair into a single map entry: the link
// parameters in effect and the FIFO floor that keeps jittered (or
// differently sized) messages from overtaking earlier ones.
type pairState struct {
	p        LinkParams
	override bool // p was set explicitly via SetLink
	lastDue  time.Duration
}

// netInstruments are the fabric's live metrics, resolved once at
// construction from the simulation's telemetry registry (nil registry
// means nil handles, whose methods are no-ops).
type netInstruments struct {
	msgs          *telemetry.Counter // delivered messages
	bytes         *telemetry.Counter // delivered payload bytes
	dropped       *telemetry.Counter // messages lost to partitions
	inflightMsgs  *telemetry.Gauge   // messages currently on the wire
	inflightBytes *telemetry.Gauge   // payload bytes currently on the wire
	linkBusy      *telemetry.Occupancy
}

// New creates a network over the given simulation with def as the
// default link parameters.
func New(s *sim.Simulation, def LinkParams) *Network {
	n := &Network{
		sim:       s,
		def:       def,
		endpoints: make(map[string]*Endpoint),
		pairs:     make(map[[2]string]*pairState),
		down:      make(map[string]bool),
		downHosts: make(map[string]bool),
		rng:       sim.NewRNG(1),
	}
	if reg := s.Telemetry(); reg != nil {
		n.inst = &netInstruments{
			msgs:          reg.Counter("net.msgs"),
			bytes:         reg.Counter("net.bytes"),
			dropped:       reg.Counter("net.dropped"),
			inflightMsgs:  reg.Gauge("net.inflight_msgs"),
			inflightBytes: reg.Gauge("net.inflight_bytes"),
			linkBusy:      reg.Occupancy("net.link_busy"),
		}
	}
	n.aud = s.Audit()
	n.aud.RegisterDigest("netsim", "netsim.pairs", n.digestPairs)
	return n
}

// digestPairs hashes the fabric's per-pair FIFO state in sorted pair
// order: every directed sender/receiver pair that has carried traffic
// and the virtual deadline of its latest delivery.
func (n *Network) digestPairs(d *audit.Digest) {
	n.mu.Lock()
	defer n.mu.Unlock()
	keys := make([][2]string, 0, len(n.pairs))
	for k := range n.pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	d.WriteInt(int64(len(keys)))
	for _, k := range keys {
		d.WriteString(k[0])
		d.WriteString(k[1])
		d.WriteInt(int64(n.pairs[k].lastDue))
	}
}

// Seed reseeds the jitter generator (distinct seeds per trial emulate
// run-to-run testbed noise when JitterFrac is set).
func (n *Network) Seed(seed uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.rng = sim.NewRNG(seed)
}

// jitterLocked perturbs a transfer time by ±JitterFrac. Callers hold
// n.mu.
func (n *Network) jitterLocked(d time.Duration, p LinkParams) time.Duration {
	if p.JitterFrac <= 0 || d <= 0 {
		return d
	}
	f := 1 + p.JitterFrac*(2*n.rng.Float64()-1)
	if f < 0 {
		f = 0
	}
	return time.Duration(float64(d) * f)
}

// Sim returns the simulation the network runs on.
func (n *Network) Sim() *sim.Simulation { return n.sim }

// NameSeq returns the next value of a per-fabric monotonic counter,
// used to mint unique endpoint names. Keeping the counter on the
// fabric (not a process global) matters for the audit layer: minted
// names appear in recorded message addresses, so a global counter
// would leak cross-run nondeterminism into otherwise byte-identical
// recordings.
func (n *Network) NameSeq() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nameSeq++
	return n.nameSeq
}

// Endpoint creates (or returns the existing) endpoint with the given
// name.
func (n *Network) Endpoint(name string) *Endpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if e, ok := n.endpoints[name]; ok {
		return e
	}
	e := &Endpoint{
		net:  n,
		name: name,
		gate: n.sim.NewGate("recv:" + name),
	}
	n.endpoints[name] = e
	return e
}

// pairLocked returns (creating if needed) the state of the directed
// pair from -> to. Callers hold n.mu.
func (n *Network) pairLocked(from, to string) *pairState {
	key := [2]string{from, to}
	ps, ok := n.pairs[key]
	if !ok {
		ps = &pairState{p: n.def}
		n.pairs[key] = ps
	}
	return ps
}

// SetLink overrides parameters for the directed link from -> to.
func (n *Network) SetLink(from, to string, p LinkParams) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ps := n.pairLocked(from, to)
	ps.p = p
	ps.override = true
}

// LinkParams reports the parameters in effect for the directed link
// from -> to.
func (n *Network) LinkParams(from, to string) LinkParams {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ps, ok := n.pairs[[2]string{from, to}]; ok && ps.override {
		return ps.p
	}
	return n.def
}

// SetDown marks an endpoint as disconnected (true) or reachable
// (false). Messages to or from a disconnected endpoint are dropped
// silently, as on a real unreliable fabric; higher layers time out.
func (n *Network) SetDown(name string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[name] = down
	n.refreshAnyDownLocked()
}

// HostOf extracts the host component from an endpoint name. By
// convention, per-host endpoints are named "...@host" (pbs moms, MPI
// processes); host-less endpoints (server, scheduler, clients) map to
// themselves.
func HostOf(endpoint string) string {
	if i := strings.LastIndex(endpoint, "@"); i >= 0 {
		return endpoint[i+1:]
	}
	return endpoint
}

// SetHostDown fails (or revives) an entire host: every endpoint whose
// name ends in "@host" is disconnected, emulating a node crash or
// network partition of that node.
func (n *Network) SetHostDown(host string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.downHosts[host] = down
	n.refreshAnyDownLocked()
}

// refreshAnyDownLocked recomputes the anyDown fast-path flag. Failure
// injection is rare, so the per-message reachability check should cost
// one boolean read on a healthy fabric instead of two map lookups plus
// a HostOf split. Callers hold n.mu.
func (n *Network) refreshAnyDownLocked() {
	n.anyDown = false
	for _, d := range n.down {
		if d {
			n.anyDown = true
			return
		}
	}
	for _, d := range n.downHosts {
		if d {
			n.anyDown = true
			return
		}
	}
}

// unreachableLocked reports whether an endpoint is currently cut off.
// Callers hold n.mu.
func (n *Network) unreachableLocked(endpoint string) bool {
	if !n.anyDown {
		return false
	}
	return n.down[endpoint] || n.downHosts[HostOf(endpoint)]
}

// Stats returns a snapshot of fabric counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Trace installs an observer invoked for every delivered message
// (nil disables). The observer runs on the delivery path and must be
// fast and non-blocking; use it for protocol debugging and message
// audits.
func (n *Network) Trace(fn func(*Message)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.trace = fn
}

// Close closes every endpoint; parked receivers return ErrClosed so
// daemon actors can exit after a simulation finishes.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := make([]*Endpoint, 0, len(n.endpoints))
	for _, e := range n.endpoints {
		eps = append(eps, e)
	}
	n.mu.Unlock()
	for _, e := range eps {
		e.Close()
	}
}

// Endpoint is a named mailbox attached to the fabric. All methods are
// safe for concurrent use; Recv* must be called from simulation
// actors.
type Endpoint struct {
	net  *Network
	name string
	gate *sim.Gate

	mu sync.Mutex
	// queue[head:] holds the undelivered messages. Dequeuing from the
	// front (the overwhelmingly common case: Recv with no matcher, or
	// a matcher that accepts the oldest message) advances head instead
	// of shifting the slice; the storage is reclaimed when the queue
	// drains or the dead prefix outgrows the live tail.
	queue  []*Message
	head   int
	closed bool
}

// Name returns the endpoint's fabric-unique name.
func (e *Endpoint) Name() string { return e.name }

// Send transmits payload to the named endpoint. size is the simulated
// wire size in bytes (headers are negligible; pass 0 for pure control
// messages). Send never blocks; delivery happens after the link's
// transfer time. Sending to an unknown endpoint is an error; sending
// to or from a disconnected endpoint silently drops the message.
func (e *Endpoint) Send(to, tag string, payload any, size int) error {
	return e.send(to, tag, payload, size, false, 0)
}

// SendPipelined is Send using the pipelined bulk-transfer protocol
// (large payloads pay the link latency only once).
func (e *Endpoint) SendPipelined(to, tag string, payload any, size int) error {
	return e.send(to, tag, payload, size, true, 0)
}

// SendCause is Send annotated with the trace-span id that caused the
// message (0 records nothing). Protocol layers pass the span open at
// the send site so the delivery span carries a causal link to it.
func (e *Endpoint) SendCause(to, tag string, payload any, size int, cause uint64) error {
	return e.send(to, tag, payload, size, false, cause)
}

func (e *Endpoint) send(to, tag string, payload any, size int, pipelined bool, cause uint64) error {
	n := e.net
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	dst, ok := n.endpoints[to]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownPeer, to)
	}
	if n.unreachableLocked(e.name) || n.unreachableLocked(to) {
		n.stats.Dropped++
		n.mu.Unlock()
		return nil // dropped in flight; sender cannot tell
	}
	ps := n.pairLocked(e.name, to)
	n.stats.MessagesSent++
	n.stats.BytesSent += int64(size)
	now := n.sim.Now()
	delay := n.jitterLocked(ps.p.TransferTime(size, pipelined), ps.p)
	// A later message must not overtake an earlier one on the same
	// pair (MPI's non-overtaking guarantee) — jitter or a smaller
	// payload could otherwise reorder deliveries.
	due := now + delay
	if due < ps.lastDue {
		due = ps.lastDue
		delay = due - now
	}
	ps.lastDue = due
	n.mu.Unlock()

	msg := msgPool.Get().(*Message)
	msg.From = e.name
	msg.To = to
	msg.Tag = tag
	msg.Payload = payload
	msg.Size = size
	msg.Sent = now
	msg.Delivered = 0
	msg.Cause = cause
	msg.net = n
	msg.dst = dst
	if ni := n.inst; ni != nil {
		ni.inflightMsgs.Add(1)
		ni.inflightBytes.Add(float64(size))
		ni.linkBusy.OnFor(delay)
	}
	n.sim.AfterArg(delay, deliverMsg, msg)
	return nil
}

// deliverMsg completes a message's flight. It is the single long-lived
// delivery callback shared by every send (via sim.AfterArg), so the
// per-hop schedule carries no closure.
func deliverMsg(arg any) {
	msg := arg.(*Message)
	n := msg.net
	// Re-check reachability at delivery time so a partition that
	// happened mid-flight also drops the message.
	n.mu.Lock()
	drop := n.unreachableLocked(msg.From) || n.unreachableLocked(msg.To)
	if drop {
		n.stats.Dropped++
		n.stats.MessagesSent--
		n.stats.BytesSent -= int64(msg.Size)
	}
	tr := n.trace
	n.mu.Unlock()
	if ni := n.inst; ni != nil {
		ni.inflightMsgs.Add(-1)
		ni.inflightBytes.Add(-float64(msg.Size))
		if drop {
			ni.dropped.Inc()
		} else {
			ni.msgs.Inc()
			ni.bytes.Add(int64(msg.Size))
		}
	}
	if drop {
		msg.Release()
		return
	}
	msg.Delivered = n.sim.Now()
	// One KindMsg event per committed delivery: destination, tag, and
	// wire size (all strings pre-existing — the record is alloc-free).
	n.aud.Record(audit.KindMsg, "netsim", msg.To, msg.Tag, int64(msg.Size), int64(msg.Delivered-msg.Sent))
	if tr != nil {
		tr(msg)
	}
	// Feed the observability layer: one async span per delivered
	// message (in-flight intervals overlap freely), a per-tag
	// delivery-latency histogram, and aggregate traffic counters
	// (constant names — per-link breakdowns belong to the span
	// stream's from/to annotations, not to metric cardinality).
	if trc := n.sim.Tracer(); trc != nil {
		trc.AsyncSpanLinkAt("netsim", "msg."+msg.Tag, msg.Cause, msg.Sent, msg.Delivered-msg.Sent,
			"from", msg.From, "to", msg.To, "size", strconv.Itoa(msg.Size))
		trc.Add("netsim.msgs", 1)
		trc.Add("netsim.bytes", int64(msg.Size))
	}
	msg.dst.deliver(msg)
}

func (e *Endpoint) deliver(m *Message) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		m.Release()
		return
	}
	e.queue = append(e.queue, m)
	e.mu.Unlock()
	e.gate.Broadcast()
}

// Recv blocks until a message arrives and returns it.
func (e *Endpoint) Recv() (*Message, error) {
	return e.recv(nil, 0)
}

// RecvTimeout is Recv with a virtual-time deadline.
func (e *Endpoint) RecvTimeout(d time.Duration) (*Message, error) {
	return e.recv(nil, d)
}

// RecvTag blocks until a message with the given tag arrives, leaving
// other queued messages untouched.
func (e *Endpoint) RecvTag(tag string) (*Message, error) {
	return e.recv(func(m *Message) bool { return m.Tag == tag }, 0)
}

// RecvTagTimeout is RecvTag with a virtual-time deadline.
func (e *Endpoint) RecvTagTimeout(tag string, d time.Duration) (*Message, error) {
	return e.recv(func(m *Message) bool { return m.Tag == tag }, d)
}

// RecvMatch blocks until a message satisfying match arrives.
func (e *Endpoint) RecvMatch(match func(*Message) bool) (*Message, error) {
	return e.recv(match, 0)
}

// RecvMatchTimeout is RecvMatch with a virtual-time deadline.
func (e *Endpoint) RecvMatchTimeout(match func(*Message) bool, d time.Duration) (*Message, error) {
	return e.recv(match, d)
}

func (e *Endpoint) recv(match func(*Message) bool, timeout time.Duration) (*Message, error) {
	deadline := time.Duration(-1)
	if timeout > 0 {
		deadline = e.net.sim.Now() + timeout
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.closed {
			return nil, ErrClosed
		}
		for i := e.head; i < len(e.queue); i++ {
			m := e.queue[i]
			if match == nil || match(m) {
				e.removeLocked(i)
				return m, nil
			}
		}
		if deadline < 0 {
			e.gate.Wait(&e.mu)
			continue
		}
		remain := deadline - e.net.sim.Now()
		if remain <= 0 || !e.gate.WaitTimeout(&e.mu, remain) {
			return nil, ErrTimeout
		}
	}
}

// removeLocked deletes the message at index i, keeping FIFO order for
// the rest. Callers hold e.mu.
func (e *Endpoint) removeLocked(i int) {
	if i == e.head {
		e.queue[i] = nil
		e.head++
	} else {
		copy(e.queue[i:], e.queue[i+1:])
		e.queue[len(e.queue)-1] = nil
		e.queue = e.queue[:len(e.queue)-1]
	}
	if e.head == len(e.queue) {
		e.queue = e.queue[:0]
		e.head = 0
	} else if e.head > 64 && e.head > len(e.queue)/2 {
		n := copy(e.queue, e.queue[e.head:])
		for j := n; j < len(e.queue); j++ {
			e.queue[j] = nil
		}
		e.queue = e.queue[:n]
		e.head = 0
	}
}

// Pending reports how many messages are queued.
func (e *Endpoint) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue) - e.head
}

// Close unblocks all receivers with ErrClosed and discards queued
// messages. Closing twice is a no-op.
func (e *Endpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	dead := e.queue[e.head:]
	e.queue = nil
	e.head = 0
	e.mu.Unlock()
	for _, m := range dead {
		m.Release()
	}
	e.gate.Broadcast()
}
