package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// TestMessageHopZeroAlloc pins the steady-state send → deliver → recv
// → release hop at zero allocations per operation: the message
// envelope comes from the arena, delivery is scheduled through the
// kernel's closure-free AfterArg path, and the endpoint queue and gate
// waiter storage are reused across hops. The payload is a constant, so
// its interface conversion uses static storage.
func TestMessageHopZeroAlloc(t *testing.T) {
	if raceDetectorOn {
		t.Skip("sync.Pool reuse is disabled under -race; allocs/op is meaningless")
	}
	s := sim.New()
	var allocs float64
	err := s.Run(func() {
		n := New(s, LinkParams{Latency: time.Microsecond})
		a := n.Endpoint("a")
		b := n.Endpoint("b")
		defer a.Close()
		defer b.Close()
		hop := func() {
			if err := a.Send("b", "ping", "payload", 64); err != nil {
				t.Errorf("Send: %v", err)
			}
			m, err := b.Recv()
			if err != nil {
				t.Errorf("Recv: %v", err)
				return
			}
			m.Release()
		}
		for i := 0; i < 16; i++ { // warm the arena, queues, and pools
			hop()
		}
		allocs = testing.AllocsPerRun(200, hop)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if allocs != 0 {
		t.Fatalf("message hop steady state: %v allocs/op, want 0", allocs)
	}
}
