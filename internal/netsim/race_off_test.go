//go:build !race

package netsim

const raceDetectorOn = false
