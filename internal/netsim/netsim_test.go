package netsim

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

func run(t *testing.T, fn func(s *sim.Simulation, n *Network)) {
	t.Helper()
	runParams(t, LinkParams{Latency: time.Millisecond}, fn)
}

func runParams(t *testing.T, p LinkParams, fn func(s *sim.Simulation, n *Network)) {
	t.Helper()
	s := sim.New()
	n := New(s, p)
	err := s.Run(func() {
		defer n.Close()
		fn(s, n)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSendRecvLatency(t *testing.T) {
	run(t, func(s *sim.Simulation, n *Network) {
		a, b := n.Endpoint("a"), n.Endpoint("b")
		if err := a.Send("b", "hello", 42, 0); err != nil {
			t.Fatalf("Send: %v", err)
		}
		m, err := b.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if m.Payload.(int) != 42 || m.From != "a" || m.Tag != "hello" {
			t.Fatalf("bad message: %+v", m)
		}
		if got := s.Now(); got != time.Millisecond {
			t.Fatalf("delivered at %v, want 1ms", got)
		}
	})
}

func TestBandwidthDelaysLargeMessages(t *testing.T) {
	p := LinkParams{Latency: time.Millisecond, BandwidthBps: 1e6} // 1 MB/s
	runParams(t, p, func(s *sim.Simulation, n *Network) {
		a, b := n.Endpoint("a"), n.Endpoint("b")
		if err := a.Send("b", "bulk", nil, 1_000_000); err != nil {
			t.Fatalf("Send: %v", err)
		}
		if _, err := b.Recv(); err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if got, want := s.Now(), time.Millisecond+time.Second; got != want {
			t.Fatalf("delivered at %v, want %v", got, want)
		}
	})
}

func TestPipeliningPaysLatencyOnce(t *testing.T) {
	p := LinkParams{Latency: 10 * time.Millisecond, BandwidthBps: 1e9, PipelineChunk: 1 << 20}
	// 4 MiB unpipelined: 4 chunks * 10ms latency + serialize.
	// Pipelined: 10ms + serialize.
	size := 4 << 20
	unp := p.TransferTime(size, false)
	pip := p.TransferTime(size, true)
	if unp <= pip {
		t.Fatalf("unpipelined %v should exceed pipelined %v", unp, pip)
	}
	if diff := unp - pip; diff != 30*time.Millisecond {
		t.Fatalf("latency saving = %v, want 30ms", diff)
	}
}

func TestTransferTimeSmallMessageUnaffectedByPipelining(t *testing.T) {
	p := LinkParams{Latency: time.Millisecond, BandwidthBps: 1e9, PipelineChunk: 1 << 20}
	if p.TransferTime(100, false) != p.TransferTime(100, true) {
		t.Fatal("small transfers should not pay chunking cost")
	}
}

func TestTransferTimeNegativeSize(t *testing.T) {
	p := LinkParams{Latency: time.Millisecond, BandwidthBps: 1e6}
	if got := p.TransferTime(-5, false); got != time.Millisecond {
		t.Fatalf("TransferTime(-5) = %v, want latency only", got)
	}
}

func TestInOrderDelivery(t *testing.T) {
	run(t, func(s *sim.Simulation, n *Network) {
		a, b := n.Endpoint("a"), n.Endpoint("b")
		for i := 0; i < 10; i++ {
			if err := a.Send("b", "seq", i, 0); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
		for i := 0; i < 10; i++ {
			m, err := b.Recv()
			if err != nil {
				t.Fatalf("Recv: %v", err)
			}
			if m.Payload.(int) != i {
				t.Fatalf("out of order: got %v, want %d", m.Payload, i)
			}
		}
	})
}

func TestRecvTagSkipsOthers(t *testing.T) {
	run(t, func(s *sim.Simulation, n *Network) {
		a, b := n.Endpoint("a"), n.Endpoint("b")
		a.Send("b", "x", 1, 0)
		a.Send("b", "y", 2, 0)
		m, err := b.RecvTag("y")
		if err != nil {
			t.Fatalf("RecvTag: %v", err)
		}
		if m.Payload.(int) != 2 {
			t.Fatalf("RecvTag(y) = %v", m.Payload)
		}
		if b.Pending() != 1 {
			t.Fatalf("pending = %d, want 1", b.Pending())
		}
		m, err = b.RecvTag("x")
		if err != nil || m.Payload.(int) != 1 {
			t.Fatalf("RecvTag(x) = %v, %v", m, err)
		}
	})
}

func TestRecvTimeout(t *testing.T) {
	run(t, func(s *sim.Simulation, n *Network) {
		b := n.Endpoint("b")
		start := s.Now()
		_, err := b.RecvTimeout(50 * time.Millisecond)
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
		if got := s.Now() - start; got != 50*time.Millisecond {
			t.Fatalf("timed out after %v, want 50ms", got)
		}
	})
}

func TestRecvTimeoutDeliveredInTime(t *testing.T) {
	run(t, func(s *sim.Simulation, n *Network) {
		a, b := n.Endpoint("a"), n.Endpoint("b")
		s.Go("sender", func() {
			s.Sleep(10 * time.Millisecond)
			a.Send("b", "late", "ok", 0)
		})
		m, err := b.RecvTimeout(time.Second)
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if m.Payload.(string) != "ok" {
			t.Fatalf("payload = %v", m.Payload)
		}
	})
}

func TestRecvMatchTimeoutMismatchedTagStillTimesOut(t *testing.T) {
	run(t, func(s *sim.Simulation, n *Network) {
		a, b := n.Endpoint("a"), n.Endpoint("b")
		a.Send("b", "other", 1, 0)
		_, err := b.RecvTagTimeout("wanted", 20*time.Millisecond)
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
		if b.Pending() != 1 {
			t.Fatalf("mismatched message should remain queued")
		}
	})
}

func TestUnknownPeer(t *testing.T) {
	run(t, func(s *sim.Simulation, n *Network) {
		a := n.Endpoint("a")
		if err := a.Send("ghost", "t", nil, 0); !errors.Is(err, ErrUnknownPeer) {
			t.Fatalf("err = %v, want ErrUnknownPeer", err)
		}
	})
}

func TestCloseUnblocksReceiver(t *testing.T) {
	run(t, func(s *sim.Simulation, n *Network) {
		b := n.Endpoint("b")
		done := s.NewGate("done")
		var got error
		ok := false
		var mu sync.Mutex
		s.Go("receiver", func() {
			_, got = b.Recv()
			mu.Lock()
			ok = true
			mu.Unlock()
			done.Signal()
		})
		s.Sleep(time.Millisecond)
		b.Close()
		mu.Lock()
		for !ok {
			done.Wait(&mu)
		}
		mu.Unlock()
		if !errors.Is(got, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", got)
		}
	})
}

func TestSetDownDropsMessages(t *testing.T) {
	run(t, func(s *sim.Simulation, n *Network) {
		a, b := n.Endpoint("a"), n.Endpoint("b")
		n.SetDown("b", true)
		if err := a.Send("b", "lost", 1, 10); err != nil {
			t.Fatalf("Send to down peer should not error, got %v", err)
		}
		_, err := b.RecvTimeout(20 * time.Millisecond)
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("expected drop + timeout, got %v", err)
		}
		n.SetDown("b", false)
		a.Send("b", "ok", 2, 0)
		if m, err := b.Recv(); err != nil || m.Payload.(int) != 2 {
			t.Fatalf("after reconnect: %v, %v", m, err)
		}
		if st := n.Stats(); st.Dropped != 1 {
			t.Fatalf("dropped = %d, want 1", st.Dropped)
		}
	})
}

func TestMidFlightPartitionDrops(t *testing.T) {
	run(t, func(s *sim.Simulation, n *Network) {
		a, b := n.Endpoint("a"), n.Endpoint("b")
		a.Send("b", "inflight", 1, 0) // delivers at t=1ms
		n.SetDown("b", true)          // partition before delivery
		_, err := b.RecvTimeout(10 * time.Millisecond)
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("expected mid-flight drop, got %v", err)
		}
	})
}

func TestPerLinkOverride(t *testing.T) {
	run(t, func(s *sim.Simulation, n *Network) {
		a, b := n.Endpoint("a"), n.Endpoint("b")
		n.SetLink("a", "b", LinkParams{Latency: 100 * time.Millisecond})
		start := s.Now()
		a.Send("b", "slow", nil, 0)
		if _, err := b.Recv(); err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if got := s.Now() - start; got != 100*time.Millisecond {
			t.Fatalf("latency = %v, want 100ms", got)
		}
		if p := n.LinkParams("a", "b"); p.Latency != 100*time.Millisecond {
			t.Fatalf("LinkParams = %+v", p)
		}
		if p := n.LinkParams("b", "a"); p.Latency != time.Millisecond {
			t.Fatalf("reverse link should use default, got %+v", p)
		}
	})
}

func TestStatsCounters(t *testing.T) {
	run(t, func(s *sim.Simulation, n *Network) {
		a, b := n.Endpoint("a"), n.Endpoint("b")
		a.Send("b", "t", nil, 100)
		a.Send("b", "t", nil, 200)
		b.Recv()
		b.Recv()
		st := n.Stats()
		if st.MessagesSent != 2 || st.BytesSent != 300 {
			t.Fatalf("stats = %+v", st)
		}
	})
}

func TestEndpointIdempotentCreate(t *testing.T) {
	run(t, func(s *sim.Simulation, n *Network) {
		if n.Endpoint("x") != n.Endpoint("x") {
			t.Fatal("Endpoint should return the same instance per name")
		}
	})
}

func TestNetworkCloseAllEndpoints(t *testing.T) {
	s := sim.New()
	n := New(s, LinkParams{Latency: time.Millisecond})
	err := s.Run(func() {
		a := n.Endpoint("a")
		n.Close()
		n.Close() // idempotent
		if _, err := a.Recv(); !errors.Is(err, ErrClosed) {
			t.Errorf("Recv after Close: %v", err)
		}
		if err := a.Send("a", "t", nil, 0); !errors.Is(err, ErrClosed) {
			t.Errorf("Send after Close: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
