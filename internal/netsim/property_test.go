package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

// Property: a message is never delivered before the link latency has
// elapsed, and serialization time is monotone in size.
func TestPropertyDeliveryRespectsLatency(t *testing.T) {
	check := func(rawLatencyMs uint8, rawSize uint16) bool {
		latency := time.Duration(rawLatencyMs%50+1) * time.Millisecond
		size := int(rawSize)
		s := sim.New()
		n := New(s, LinkParams{Latency: latency, BandwidthBps: 1e6})
		ok := true
		err := s.Run(func() {
			defer n.Close()
			a, b := n.Endpoint("a"), n.Endpoint("b")
			sent := s.Now()
			a.Send("b", "t", nil, size)
			m, err := b.Recv()
			if err != nil {
				ok = false
				return
			}
			elapsed := m.Delivered - sent
			if elapsed < latency {
				ok = false
			}
			want := latency + time.Duration(float64(size)/1e6*float64(time.Second))
			if elapsed != want {
				ok = false
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transfer time is monotone non-decreasing in size for any
// link parameters, pipelined or not.
func TestPropertyTransferTimeMonotone(t *testing.T) {
	check := func(rawBw uint32, rawChunk uint16, sizeA, sizeB uint32, pipelined bool) bool {
		p := LinkParams{
			Latency:       time.Millisecond,
			BandwidthBps:  float64(rawBw%1_000_000 + 1000),
			PipelineChunk: int(rawChunk),
		}
		a, b := int(sizeA%10_000_000), int(sizeB%10_000_000)
		if a > b {
			a, b = b, a
		}
		return p.TransferTime(a, pipelined) <= p.TransferTime(b, pipelined)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: pipelining never makes a transfer slower.
func TestPropertyPipeliningNeverSlower(t *testing.T) {
	check := func(rawBw uint32, rawChunk uint16, size uint32) bool {
		p := LinkParams{
			Latency:       time.Millisecond,
			BandwidthBps:  float64(rawBw%1_000_000 + 1000),
			PipelineChunk: int(rawChunk),
		}
		n := int(size % 10_000_000)
		return p.TransferTime(n, true) <= p.TransferTime(n, false)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: per-pair FIFO — any burst of same-pair messages arrives
// in send order.
func TestPropertyFIFOBurst(t *testing.T) {
	check := func(count uint8) bool {
		n := int(count%20) + 2
		s := sim.New()
		net := New(s, LinkParams{Latency: time.Millisecond})
		ok := true
		err := s.Run(func() {
			defer net.Close()
			a, b := net.Endpoint("a"), net.Endpoint("b")
			for i := 0; i < n; i++ {
				a.Send("b", "seq", i, 0)
			}
			for i := 0; i < n; i++ {
				m, err := b.Recv()
				if err != nil || m.Payload.(int) != i {
					ok = false
					return
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
