//go:build race

package netsim

// raceDetectorOn reports whether this test binary was built with the
// race detector; the zero-allocation test skips under it because the
// race runtime disables sync.Pool reuse.
const raceDetectorOn = true
