package netsim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestHostOf(t *testing.T) {
	cases := map[string]string{
		"pbs/mom@ac1":    "ac1",
		"mpi/p7@cn0":     "cn0",
		"pbs/server":     "pbs/server",
		"a@b@c":          "c",
		"ifl/front#1":    "ifl/front#1",
		"daemon@ac0@ac0": "ac0",
	}
	for in, want := range cases {
		if got := HostOf(in); got != want {
			t.Errorf("HostOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSetHostDownCutsAllHostEndpoints(t *testing.T) {
	run(t, func(s *sim.Simulation, n *Network) {
		mom := n.Endpoint("pbs/mom@ac1")
		mpi := n.Endpoint("mpi/p3@ac1")
		other := n.Endpoint("pbs/mom@ac2")
		sink := n.Endpoint("sink")

		n.SetHostDown("ac1", true)
		mom.Send("sink", "hb", 1, 0)
		mpi.Send("sink", "msg", 2, 0)
		other.Send("sink", "hb", 3, 0)

		m, err := sink.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if m.From != "pbs/mom@ac2" {
			t.Fatalf("unexpected sender %s", m.From)
		}
		if _, err := sink.RecvTimeout(10 * time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Fatalf("messages from dead host leaked: %v", err)
		}

		// Traffic *to* the dead host is dropped too.
		sink.Send("pbs/mom@ac1", "cmd", 4, 0)
		if _, err := mom.RecvTimeout(10 * time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Fatalf("message to dead host delivered: %v", err)
		}

		// Revival restores both directions.
		n.SetHostDown("ac1", false)
		mom.Send("sink", "hb", 5, 0)
		if m, err := sink.Recv(); err != nil || m.Payload.(int) != 5 {
			t.Fatalf("after revival: %v %v", m, err)
		}
	})
}

func TestTraceObserverSeesDeliveries(t *testing.T) {
	s := sim.New()
	n := New(s, LinkParams{Latency: time.Millisecond})
	var seen []string
	n.Trace(func(m *Message) { seen = append(seen, m.Tag) })
	err := s.Run(func() {
		defer n.Close()
		a, b := n.Endpoint("a"), n.Endpoint("b")
		a.Send("b", "one", 1, 0)
		a.Send("b", "two", 2, 0)
		b.Recv()
		b.Recv()
		n.Trace(nil) // disable
		a.Send("b", "three", 3, 0)
		b.Recv()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(seen) != 2 || seen[0] != "one" || seen[1] != "two" {
		t.Fatalf("trace = %v", seen)
	}
}

func TestJitterPerturbsWithinBounds(t *testing.T) {
	s := sim.New()
	n := New(s, LinkParams{Latency: 10 * time.Millisecond, JitterFrac: 0.2})
	n.Seed(7)
	err := s.Run(func() {
		defer n.Close()
		a, b := n.Endpoint("a"), n.Endpoint("b")
		varied := false
		for i := 0; i < 20; i++ {
			sent := s.Now()
			a.Send("b", "t", i, 0)
			m, err := b.Recv()
			if err != nil {
				t.Fatalf("Recv: %v", err)
			}
			d := m.Delivered - sent
			if d < 8*time.Millisecond || d > 12*time.Millisecond {
				t.Fatalf("jittered delay %v outside ±20%% of 10ms", d)
			}
			if d != 10*time.Millisecond {
				varied = true
			}
		}
		if !varied {
			t.Fatal("jitter never perturbed the delay")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestJitterPreservesPairFIFO(t *testing.T) {
	s := sim.New()
	n := New(s, LinkParams{Latency: 10 * time.Millisecond, JitterFrac: 0.9})
	n.Seed(3)
	err := s.Run(func() {
		defer n.Close()
		a, b := n.Endpoint("a"), n.Endpoint("b")
		const burst = 50
		for i := 0; i < burst; i++ {
			a.Send("b", "seq", i, 0)
		}
		for i := 0; i < burst; i++ {
			m, err := b.Recv()
			if err != nil || m.Payload.(int) != i {
				t.Fatalf("out of order under jitter: got %v want %d (err %v)", m.Payload, i, err)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestJitterSeedsReproducible(t *testing.T) {
	deliver := func(seed uint64) time.Duration {
		s := sim.New()
		n := New(s, LinkParams{Latency: 10 * time.Millisecond, JitterFrac: 0.5})
		n.Seed(seed)
		var d time.Duration
		s.Run(func() {
			defer n.Close()
			a, b := n.Endpoint("a"), n.Endpoint("b")
			a.Send("b", "t", nil, 0)
			m, _ := b.Recv()
			d = m.Delivered
		})
		return d
	}
	if deliver(5) != deliver(5) {
		t.Fatal("same seed, different delay")
	}
	if deliver(5) == deliver(6) {
		t.Fatal("different seeds produced identical delay (suspicious)")
	}
}

func TestSetHostDownDoesNotAffectHostlessEndpoints(t *testing.T) {
	run(t, func(s *sim.Simulation, n *Network) {
		srv := n.Endpoint("pbs/server")
		cli := n.Endpoint("client")
		n.SetHostDown("ac0", true)
		cli.Send("pbs/server", "req", 1, 0)
		if _, err := srv.Recv(); err != nil {
			t.Fatalf("host-less traffic affected: %v", err)
		}
	})
}
