// Package pbs implements a TORQUE-like resource management system
// extended for network-attached accelerators, following Section III of
// the paper: a pbs_server daemon with job queues and a node database,
// pbs_mom daemons with the JOIN_JOB / DYNJOIN_JOB / DISJOIN_JOB
// protocols, and an Interface Library (IFL) extended with the
// pbs_dynget() and pbs_dynfree() calls for dynamic allocation of
// accelerators at application runtime.
//
// The scheduler is external, as in TORQUE/Maui: it learns about work
// through kick notifications, pulls queue and node state, and pushes
// allocation commands (package maui provides the implementation).
package pbs

import (
	"time"
)

// JobState is the lifecycle state of a job at the server.
type JobState int

// Job lifecycle states. There is no separate "dynqueued" job state:
// as in the paper, a dynamic request re-enqueues the *request* with a
// special state while the job keeps running; see DynState.
const (
	JobQueued JobState = iota
	JobRunning
	JobCompleted
	JobDeleted
	// JobFailed marks a job whose compute node died under it (the
	// fault-tolerance extension of the paper's outlook, Section VI).
	JobFailed
)

// String returns the qstat-style name of the state.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "Q"
	case JobRunning:
		return "R"
	case JobCompleted:
		return "C"
	case JobDeleted:
		return "D"
	case JobFailed:
		return "F"
	default:
		return "?"
	}
}

// DynState is the lifecycle state of a dynamic allocation request.
type DynState int

// Dynamic request states: a request arrives, holds the special
// dynqueued state while waiting for the scheduler, and ends granted
// or rejected.
const (
	DynQueued DynState = iota
	DynScheduling
	DynForwarding // allocated; mother superior performing DYNJOIN
	DynGranted
	DynRejected
)

// String returns a short name for the dynamic request state.
func (s DynState) String() string {
	switch s {
	case DynQueued:
		return "dynqueued"
	case DynScheduling:
		return "scheduling"
	case DynForwarding:
		return "forwarding"
	case DynGranted:
		return "granted"
	case DynRejected:
		return "rejected"
	default:
		return "?"
	}
}

// Script is the body of a job. It runs once per allocated compute
// node as a simulation actor; returning ends that node's task.
type Script func(env *JobEnv)

// JobSpec is what qsub submits: the paper's
// "-l nodes=k:ppn=q:acpn=x" plus walltime estimate and script.
type JobSpec struct {
	Name     string
	Owner    string
	Nodes    int           // k: compute nodes
	PPN      int           // q: cores per compute node
	ACPN     int           // x: network-attached accelerators per compute node
	Walltime time.Duration // user estimate, used by backfill
	Priority int           // site-assigned base priority
	Script   Script
}

// JobEnv is the execution environment a mom hands to each compute
// node task — the counterpart of TORQUE's PBS_* environment variables
// plus handles into the simulated cluster.
type JobEnv struct {
	JobID    string
	Rank     int      // index of this compute node within the job
	Host     string   // this compute node
	Hosts    []string // PBS_NODEFILE: all compute nodes of the job
	AccHosts []string // statically allocated accelerators of this compute node
	ServerEP string   // pbs_server endpoint, for IFL calls
	MSHost   string   // mother superior host

	// Cluster is an opaque handle installed by the cluster wiring;
	// the DAC resource-management library recovers its context (MPI
	// runtime, port registry, devices) through it.
	Cluster any

	// TaskSpan is the trace-span id of this task's job.run span; DAC
	// library calls made from the script link their spans to it so the
	// profiler can attribute accelerator setup to the owning task.
	TaskSpan uint64
}

// DynGrant is the successful result of a pbs_dynget call: the
// client-id identifying the dynamically allocated set and the
// accelerator hosts in it.
type DynGrant struct {
	ClientID int
	Hosts    []string
}

// ResourceKind selects what a dynamic request asks for. The paper's
// system allocates network-attached accelerators; compute-node
// requests are the "malleable application" extension it sketches in
// Section V ("with little extensions ... any malleable application
// could be supported").
type ResourceKind int

// Dynamic request kinds.
const (
	KindAccelerator ResourceKind = iota
	KindCompute
)

// String names the resource kind.
func (k ResourceKind) String() string {
	if k == KindCompute {
		return "compute"
	}
	return "accelerator"
}

// DynRecord is the server's bookkeeping for one dynamic request,
// exposed for experiments: the timestamps decompose Figures 7(b), 8
// and 9.
type DynRecord struct {
	ReqID    int // server-assigned, unique across the cluster
	JobID    string
	CN       string
	Count    int
	Kind     ResourceKind
	PPN      int // cores per node for KindCompute requests
	State    DynState
	ClientID int
	Hosts    []string

	ArrivedAt   time.Duration // request received by the server
	ServiceAt   time.Duration // server began servicing (head of dyn queue)
	AllocAt     time.Duration // scheduler decision arrived
	ForwardedAt time.Duration // mother superior finished DYNJOIN updates
	RepliedAt   time.Duration // reply sent to the compute node
	FreedAt     time.Duration // pbs_dynfree received (zero while held)
}

// JobInfo is the qstat view of a job.
type JobInfo struct {
	ID          string
	Spec        JobSpec
	State       JobState
	Held        bool                // qhold: queued but not schedulable
	Hosts       []string            // allocated compute nodes
	AccHosts    map[string][]string // per compute node: statically allocated accelerators
	DynSets     map[int][]string    // client-id -> dynamically allocated accelerators
	SubmittedAt time.Duration
	AllocatedAt time.Duration
	StartedAt   time.Duration
	CompletedAt time.Duration
	DynRecords  []DynRecord
}

// NodeType distinguishes compute nodes from network-attached
// accelerators in the node database.
type NodeType int

// Node types.
const (
	ComputeNode NodeType = iota
	AcceleratorNode
)

// String names the node type as the server's nodes file would.
func (t NodeType) String() string {
	if t == AcceleratorNode {
		return "accelerator"
	}
	return "compute"
}

// NodeInfo is the pbsnodes view of one node.
type NodeInfo struct {
	Name      string
	Type      NodeType
	Cores     int
	UsedCores int
	Down      bool     // failure detector marked the node unreachable
	Jobs      []string // job ids using the node (owner job for accelerators)
}

// Free reports whether an accelerator node is unassigned, or a
// compute node has at least one free core. Down nodes are never free.
func (n NodeInfo) Free() bool {
	if n.Down {
		return false
	}
	if n.Type == AcceleratorNode {
		return len(n.Jobs) == 0
	}
	return n.UsedCores < n.Cores
}

// FreeCores reports the unused cores of a compute node.
func (n NodeInfo) FreeCores() int { return n.Cores - n.UsedCores }
