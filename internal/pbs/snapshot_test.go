package pbs_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/maui"
	"repro/internal/netsim"
	"repro/internal/pbs"
)

func TestServerRestartPreservesJobsAndNodes(t *testing.T) {
	tb := newTestbed(t, 2, 2, nil)
	tb.run(t, func(c *pbs.Client) {
		// A running job and a queued job at checkpoint time.
		running, _ := c.Submit(pbs.JobSpec{
			Name: "running", Owner: "u", Nodes: 1, PPN: 8, ACPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) { tb.s.Sleep(300 * time.Millisecond) },
		})
		tb.s.Sleep(60 * time.Millisecond) // let it start
		held, _ := c.Submit(pbs.JobSpec{
			Name: "later", Owner: "u", Nodes: 2, PPN: 8, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) { tb.s.Sleep(30 * time.Millisecond) },
		})

		snap := tb.server.Checkpoint()
		tb.server.Stop()
		tb.s.Sleep(20 * time.Millisecond) // the old server is gone

		// The replacement server takes over the well-known endpoint.
		replacement := pbs.NewServer(tb.net, pbs.ServerParams{Processing: time.Millisecond})
		replacement.SetScheduler(tb.sched.Endpoint())
		if err := replacement.Restore(snap); err != nil {
			t.Fatalf("Restore: %v", err)
		}
		replacement.Start()

		// The running job's completion lands at the new server.
		info, err := c.Wait(running)
		if err != nil {
			t.Fatalf("Wait(running): %v", err)
		}
		if info.State != pbs.JobCompleted {
			t.Errorf("running job state = %v", info.State)
		}
		// The queued job gets scheduled by the new server.
		info, err = c.Wait(held)
		if err != nil {
			t.Fatalf("Wait(queued): %v", err)
		}
		if info.State != pbs.JobCompleted {
			t.Errorf("queued job state = %v", info.State)
		}
		// Node accounting survived the restart.
		nodes, _ := c.Nodes()
		for _, n := range nodes {
			if len(n.Jobs) != 0 {
				t.Errorf("node %s leaked %v after restart", n.Name, n.Jobs)
			}
		}
		// New submissions get fresh ids continuing the sequence.
		id3, err := c.Submit(pbs.JobSpec{Name: "after", Owner: "u", Nodes: 1, PPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {}})
		if err != nil {
			t.Fatalf("Submit after restart: %v", err)
		}
		if id3 == running || id3 == held {
			t.Errorf("job id reused after restart: %s", id3)
		}
		c.Wait(id3)
		for _, e := range replacement.Errors() {
			t.Errorf("replacement server error: %s", e)
		}
	})
}

func TestServerRestartRejectsInFlightDynRequest(t *testing.T) {
	// A very slow dyn-allocation step keeps the request in flight at
	// the server when the crash hits.
	tb := newTestbed(t, 1, 3, func(p *maui.Params) {
		p.CycleInterval = 10 * time.Second
		p.DynPerReqCost = 5 * time.Second
	})
	tb.run(t, func(c *pbs.Client) {
		var dynErr error
		var mu sync.Mutex
		done := tb.s.NewGate("done")
		finished := false
		id, _ := c.Submit(pbs.JobSpec{
			Name: "dyn", Owner: "u", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Minute,
			Script: func(env *pbs.JobEnv) {
				cl := pbs.NewClient(env.Cluster.(*netsim.Network), env.Host, env.ServerEP)
				_, err := cl.DynGet(env.JobID, env.Host, 1)
				mu.Lock()
				dynErr = err
				finished = true
				mu.Unlock()
				done.Broadcast()
			},
		})
		// Wait until the request is queued at the server, then crash
		// it before the (slow) scheduler answers.
		tb.s.Sleep(100 * time.Millisecond)
		snap := tb.server.Checkpoint()
		if len(snap.Pending) != 1 {
			t.Fatalf("pending dyn requests in snapshot = %d", len(snap.Pending))
		}
		tb.server.Stop()
		tb.s.Sleep(10 * time.Millisecond)
		replacement := pbs.NewServer(tb.net, pbs.ServerParams{Processing: time.Millisecond})
		replacement.SetScheduler(tb.sched.Endpoint())
		if err := replacement.Restore(snap); err != nil {
			t.Fatalf("Restore: %v", err)
		}
		replacement.Start()

		mu.Lock()
		for !finished {
			done.Wait(&mu)
		}
		err := dynErr
		mu.Unlock()
		if err == nil || !strings.Contains(err.Error(), "server restarted") {
			t.Fatalf("in-flight DynGet after restart: %v", err)
		}
		c.Wait(id)
	})
}

func TestRestoreOnDirtyServerFails(t *testing.T) {
	tb := newTestbed(t, 1, 0, nil)
	tb.run(t, func(c *pbs.Client) {
		snap := tb.server.Checkpoint()
		if err := tb.server.Restore(snap); err == nil {
			t.Fatal("Restore on a populated server should fail")
		}
	})
}
