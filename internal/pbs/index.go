package pbs

// The partitioned job index. Both server architectures (the faithful
// 2013 single-actor loop and the sharded fast path of shard.go) store
// jobs here; with one partition the index degenerates to exactly the
// original single map plus submission-ordered active list, so the
// faithful configuration's behaviour — and every figure derived from
// it — is unchanged. With N partitions each shard's job-scoped
// traffic touches only its own map and active slice, and the
// scheduler snapshot walks the partitions through a sequence-number
// merge that preserves global submission order.

// jobSeq extracts the numeric sequence of a job id ("17.pbs/server"
// -> 17). Ids that do not start with digits map to sequence 0.
func jobSeq(id string) int {
	n := 0
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// jobIndex is the server's job database, split into partitions keyed
// by job sequence number.
type jobIndex struct {
	parts []jobPart
	// cursors is scratch for the k-way merge in compactActive, kept on
	// the index so steady-state scheduler cycles do not allocate.
	cursors []mergeCursor
}

type jobPart struct {
	jobs map[string]*serverJob
	// active holds the submission-ordered ids of this partition's jobs
	// that may still concern the scheduler (queued, held, or running).
	// Terminal jobs are compacted away lazily during compactActive, so
	// a cycle's cost follows the live queue, not the full submission
	// history.
	active []string
}

type mergeCursor struct{ read, write int }

func newJobIndex(nParts int) jobIndex {
	if nParts < 1 {
		nParts = 1
	}
	ix := jobIndex{parts: make([]jobPart, nParts), cursors: make([]mergeCursor, nParts)}
	for i := range ix.parts {
		ix.parts[i].jobs = make(map[string]*serverJob)
	}
	return ix
}

func (ix *jobIndex) partFor(seq int) *jobPart {
	return &ix.parts[seq%len(ix.parts)]
}

func (ix *jobIndex) get(id string) (*serverJob, bool) {
	j, ok := ix.partFor(jobSeq(id)).jobs[id]
	return j, ok
}

func (ix *jobIndex) put(seq int, id string, j *serverJob) {
	ix.partFor(seq).jobs[id] = j
}

// remove drops a job from its partition's map. The retention window
// (retention.go) is the only caller, and only for terminal jobs that
// compactActive has already taken off every active list.
func (ix *jobIndex) remove(id string) {
	delete(ix.partFor(jobSeq(id)).jobs, id)
}

// activate appends the job to its partition's active list. Callers
// activate in submission order, so every partition's list stays
// sorted by sequence number — the invariant compactActive's merge
// relies on.
func (ix *jobIndex) activate(seq int, id string) {
	p := ix.partFor(seq)
	p.active = append(p.active, id)
}

func (ix *jobIndex) size() int {
	n := 0
	for i := range ix.parts {
		n += len(ix.parts[i].jobs)
	}
	return n
}

// compactActive walks every live job in global submission order — a
// k-way merge of the per-partition active lists by sequence number —
// compacting terminal jobs out of each partition in place. visit
// reports whether the job stays active.
func (ix *jobIndex) compactActive(visit func(id string, j *serverJob) bool) {
	if len(ix.parts) == 1 {
		// Single partition: the original walk, byte for byte.
		p := &ix.parts[0]
		w := 0
		for _, id := range p.active {
			if visit(id, p.jobs[id]) {
				p.active[w] = id
				w++
			}
		}
		clear(p.active[w:])
		p.active = p.active[:w]
		return
	}
	cur := ix.cursors
	for i := range cur {
		cur[i] = mergeCursor{}
	}
	for {
		best, bestSeq := -1, 0
		for pi := range ix.parts {
			r := cur[pi].read
			if r >= len(ix.parts[pi].active) {
				continue
			}
			if seq := jobSeq(ix.parts[pi].active[r]); best < 0 || seq < bestSeq {
				best, bestSeq = pi, seq
			}
		}
		if best < 0 {
			break
		}
		p := &ix.parts[best]
		id := p.active[cur[best].read]
		cur[best].read++
		if visit(id, p.jobs[id]) {
			// write trails read, so the in-place compaction never
			// clobbers an unvisited entry.
			p.active[cur[best].write] = id
			cur[best].write++
		}
	}
	for pi := range ix.parts {
		p := &ix.parts[pi]
		w := cur[pi].write
		clear(p.active[w:])
		p.active = p.active[:w]
	}
}
