package pbs_test

import (
	"testing"
	"time"

	"repro/internal/pbs"
)

func TestHoldKeepsJobFromScheduler(t *testing.T) {
	tb := newTestbed(t, 1, 0, nil)
	tb.run(t, func(c *pbs.Client) {
		ran := false
		// Fill the node briefly so the hold lands before any
		// allocation can.
		blocker, _ := c.Submit(pbs.JobSpec{Name: "blk", Owner: "u", Nodes: 1, PPN: 8, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) { tb.s.Sleep(100 * time.Millisecond) }})
		id, _ := c.Submit(pbs.JobSpec{
			Name: "held", Owner: "u", Nodes: 1, PPN: 8, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) { ran = true },
		})
		if err := c.Hold(id); err != nil {
			t.Fatalf("Hold: %v", err)
		}
		c.Wait(blocker)
		tb.s.Sleep(400 * time.Millisecond) // many cycles
		info, _ := c.Stat(id)
		if info.State != pbs.JobQueued || !info.Held {
			t.Fatalf("held job state = %v held=%v", info.State, info.Held)
		}
		if ran {
			t.Fatal("held job ran")
		}
		if err := c.Release(id); err != nil {
			t.Fatalf("Release: %v", err)
		}
		final, _ := c.Wait(id)
		if final.State != pbs.JobCompleted {
			t.Fatalf("state after release = %v", final.State)
		}
		if !ran {
			t.Fatal("released job never ran")
		}
	})
}

func TestHoldErrors(t *testing.T) {
	tb := newTestbed(t, 1, 0, nil)
	tb.run(t, func(c *pbs.Client) {
		if err := c.Hold("ghost"); err == nil {
			t.Error("hold of unknown job should fail")
		}
		id, _ := c.Submit(pbs.JobSpec{
			Name: "r", Owner: "u", Nodes: 1, PPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) { tb.s.Sleep(150 * time.Millisecond) },
		})
		tb.s.Sleep(80 * time.Millisecond) // running now
		if err := c.Hold(id); err == nil {
			t.Error("hold of running job should fail")
		}
		c.Wait(id)
		if err := c.Release(id); err == nil {
			t.Error("release of completed job should fail")
		}
	})
}

func TestHeldJobCanBeDeleted(t *testing.T) {
	tb := newTestbed(t, 1, 0, nil)
	tb.run(t, func(c *pbs.Client) {
		// Fill the node so the victim cannot start before the hold
		// lands.
		blocker, _ := c.Submit(pbs.JobSpec{Name: "blk", Owner: "u", Nodes: 1, PPN: 8, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) { tb.s.Sleep(300 * time.Millisecond) }})
		defer c.Wait(blocker)
		id, _ := c.Submit(pbs.JobSpec{
			Name: "hd", Owner: "u", Nodes: 1, PPN: 8, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) { t.Error("must not run") },
		})
		if err := c.Hold(id); err != nil {
			t.Fatalf("Hold: %v", err)
		}
		tb.s.Sleep(50 * time.Millisecond)
		if err := c.Delete(id); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		info, _ := c.Wait(id)
		if info.State != pbs.JobDeleted {
			t.Fatalf("state = %v", info.State)
		}
	})
}
