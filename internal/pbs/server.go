package pbs

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ServerEndpoint is the fabric name of the pbs_server daemon.
const ServerEndpoint = "pbs/server"

// ErrUnknownJob is returned for operations on nonexistent jobs.
var ErrUnknownJob = errors.New("pbs: unknown job")

// ServerParams is the server's cost model.
type ServerParams struct {
	// Processing is the handling cost the single-threaded server pays
	// per incoming request; it serializes everything the server does,
	// which is what produces the staircase of Figure 9.
	Processing time.Duration
	// DeadAfter enables the failure detector: a node silent for
	// longer than this is declared down (zero disables detection).
	// Moms must send heartbeats at a period well below DeadAfter.
	DeadAfter time.Duration
	// Shards selects the server's dispatch architecture. 0 or 1 keeps
	// the faithful single-actor loop of the 2013 system: one pbs_server
	// thread pays Processing per request and serializes everything it
	// does, including dynamic requests end to end. Values above 1
	// enable the sharded fast path (shard.go): a router fans requests
	// out to Shards worker actors keyed by job, each worker drains its
	// mailbox in batches paying Processing once per batch, the job
	// index partitions per shard, and DYNJOIN pipelines instead of
	// serializing.
	Shards int
	// RetainCompleted bounds how many terminal job records (completed,
	// deleted, failed) the server keeps. 0 retains everything — the
	// original batch behavior, where qstat can inspect any job ever
	// run. Positive values enable the online-service retention window:
	// older terminal records are purged at scheduler-cycle boundaries
	// and recycled through a pool, keeping a resident instance at
	// steady-state memory (see retention.go).
	RetainCompleted int
	// AcctRing bounds the in-memory accounting log to roughly the most
	// recent records (0 = unbounded, the original behavior).
	AcctRing int
}

// Server is the pbs_server daemon: job queues, the node database, and
// the dynamic-request machinery added for the DAC environment.
type Server struct {
	net    *netsim.Network
	sim    *sim.Simulation
	ep     *netsim.Endpoint
	params ServerParams
	inst   serverInstruments
	// aud is the flight recorder (nil when auditing is off — every
	// call on it is a nil-safe no-op). See audit.go.
	aud *audit.Recorder

	// shards holds the worker mailboxes of the sharded dispatch path
	// (nil in the faithful configuration); see shard.go.
	shards []*serverShard

	mu         sync.Mutex
	schedEP    string
	nextJob    int
	nextClient int
	nextDyn    int
	// index is the job database: one partition in the faithful
	// configuration (exactly the original map + active list), one per
	// shard otherwise. See index.go for the compaction invariants.
	index     jobIndex
	order     []string
	nodes     map[string]*serverNode
	nodeOrder []string
	dynQ      []*DynRecord
	dynReply  map[int]dynReplyTo // server dyn id -> client reply route
	dynBusy   bool
	waiters   map[string][]waiter
	lastSeen  map[string]time.Duration
	acct      []AccountingRecord
	errs      []string

	// Retention state (see retention.go); all zero when
	// RetainCompleted is 0.
	doneQ   []string     // terminal job ids, oldest first
	retired int          // ids purged from the index but still in order
	purged  uint64       // cumulative purge count
	reused  uint64       // cumulative pool-reuse count
	jobPool []*serverJob // scrubbed records awaiting reuse
}

// dynReplyTo remembers where and with which client-side request id a
// dynamic request must be answered. Client request ids are only
// unique per client, so the server keys its queue by its own ids.
type dynReplyTo struct {
	ep        string
	clientReq int
}

type serverJob struct {
	info JobInfo
}

type serverNode struct {
	info   NodeInfo
	usedBy map[string]int // jobID -> cores (compute) or accelerator count (1)

	// Accounting (see accounting.go).
	busyCoreSeconds float64
	lastChange      time.Duration
}

type waiter struct {
	reqID   int
	replyTo string
}

// serverInstruments are the server's live metrics, resolved once at
// construction (nil handles when telemetry is off — every method is a
// nil-safe no-op).
type serverInstruments struct {
	rpcService  *telemetry.Histogram // queue wait + processing per RPC
	dynLatency  *telemetry.Histogram // dynamic-request arrival -> reply
	queueDepth  *telemetry.Gauge     // schedulable queued jobs, per cycle
	dynPending  *telemetry.Gauge     // dynamic requests awaiting the scheduler
	submits     *telemetry.Counter
	jobsDone    *telemetry.Counter
	dynGranted  *telemetry.Counter
	dynRejected *telemetry.Counter
	// Sharded-path instruments (idle in the faithful configuration).
	shardBusy  *telemetry.Occupancy // virtual time shard workers spend handling batches
	rpcBatches *telemetry.Counter   // batches drained across all shards
}

// NewServer creates the server daemon; call AddNode for each cluster
// node and Start to spawn its actor.
func NewServer(net *netsim.Network, params ServerParams) *Server {
	reg := net.Sim().Telemetry()
	s := &Server{
		inst: serverInstruments{
			rpcService:  reg.Histogram("pbs.rpc_service"),
			dynLatency:  reg.Histogram("pbs.dyn_latency"),
			queueDepth:  reg.Gauge("pbs.queue_depth"),
			dynPending:  reg.Gauge("pbs.dyn_pending"),
			submits:     reg.Counter("pbs.submits"),
			jobsDone:    reg.Counter("pbs.jobs_done"),
			dynGranted:  reg.Counter("pbs.dyn_granted"),
			dynRejected: reg.Counter("pbs.dyn_rejected"),
			shardBusy:   reg.Occupancy("pbs.shard_occupancy"),
			rpcBatches:  reg.Counter("pbs.rpc_batches"),
		},
		net:      net,
		sim:      net.Sim(),
		ep:       net.Endpoint(ServerEndpoint),
		params:   params,
		index:    newJobIndex(params.Shards),
		nodes:    make(map[string]*serverNode),
		dynReply: make(map[int]dynReplyTo),
		waiters:  make(map[string][]waiter),
		lastSeen: make(map[string]time.Duration),
	}
	s.registerAudit()
	return s
}

// AddNode registers a node in the server's node database.
func (s *Server) AddNode(name string, typ NodeType, cores int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nodes[name] = &serverNode{
		info:   NodeInfo{Name: name, Type: typ, Cores: cores},
		usedBy: make(map[string]int),
	}
	s.nodeOrder = append(s.nodeOrder, name)
	s.lastSeen[name] = s.sim.Now()
}

// SetScheduler installs the scheduler's endpoint for kick
// notifications.
func (s *Server) SetScheduler(ep string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.schedEP = ep
}

// Errors returns protocol anomalies the server observed (for tests).
func (s *Server) Errors() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.errs...)
}

// Start spawns the server actor (plus the failure detector when
// enabled). The loops exit when the fabric is closed. With Shards > 1
// the sharded dispatch path of shard.go replaces the single loop.
func (s *Server) Start() {
	s.startFailureDetector()
	if s.params.Shards > 1 {
		s.startSharded()
		return
	}
	s.sim.Go("pbs_server", func() {
		for {
			m, err := s.ep.Recv()
			if err != nil {
				return
			}
			if _, stop := m.Payload.(stopMsg); stop {
				m.Release()
				return
			}
			delivered := m.Delivered
			s.sim.Sleep(s.params.Processing)
			s.handle(m)
			// Service time as the requester experiences the server:
			// head-of-line wait (implicit in Delivered -> now) plus
			// processing and handling.
			s.inst.rpcService.Record(s.sim.Now() - delivered)
			m.Release()
		}
	})
}

func (s *Server) send(to string, payload any) {
	s.sendCause(to, payload, 0)
}

// sendCause is send with the trace-span id that produced the message,
// so the fabric's delivery span links back to the causing work.
func (s *Server) sendCause(to string, payload any, cause uint64) {
	if err := s.ep.SendCause(to, "pbs", payload, 0, cause); err != nil {
		s.mu.Lock()
		s.errs = append(s.errs, fmt.Sprintf("send to %s: %v", to, err))
		s.mu.Unlock()
	}
}

// kickPayloads pre-boxes the SchedKick for every reason the server
// uses, so the per-event kick path does not allocate an interface box.
// The map is read-only after init.
var kickPayloads = func() map[string]any {
	m := make(map[string]any)
	for _, r := range []string{"submit", "qalter", "qrls", "delete", "dynfree", "jobdone", "restore"} {
		m[r] = SchedKick{Reason: r}
	}
	return m
}()

func (s *Server) kickScheduler(reason string) {
	s.mu.Lock()
	ep := s.schedEP
	s.mu.Unlock()
	if ep == "" {
		return
	}
	payload, ok := kickPayloads[reason]
	if !ok {
		payload = SchedKick{Reason: reason}
	}
	s.send(ep, payload)
}

func (s *Server) logErr(format string, args ...any) {
	s.mu.Lock()
	s.errs = append(s.errs, fmt.Sprintf(format, args...))
	s.mu.Unlock()
}

func (s *Server) handle(m *netsim.Message) {
	switch req := m.Payload.(type) {
	case SubmitReq:
		s.handleSubmit(req)
	case StatReq:
		s.handleStat(req)
	case NodesReq:
		s.send(req.ReplyTo, NodesResp{ReqID: req.ReqID, Nodes: s.nodeView()})
	case AlterReq:
		s.handleAlter(req)
	case HoldReq:
		s.handleHold(req)
	case ListReq:
		s.handleList(req)
	case DeleteReq:
		s.handleDelete(req)
	case WaitReq:
		s.handleWait(req)
	case DynGetReq:
		s.handleDynGet(req)
	case DynFreeReq:
		s.handleDynFree(req)
	case SchedInfoReq:
		s.handleSchedInfo(req)
	case AllocCmd:
		s.handleAlloc(req)
	case DynAllocCmd:
		s.handleDynAlloc(req)
	case JobStartedMsg:
		if s.withJob(req.JobID, func(j *serverJob) { j.info.StartedAt = s.sim.Now() }) {
			s.account(AcctStarted, req.JobID, "")
		}
	case JobDoneMsg:
		s.handleJobDone(req.JobID)
	case DynAddAck:
		s.handleDynAddAck(req)
	case HeartbeatMsg:
		s.heartbeat(req.Host)
	default:
		s.logErr("server: unexpected message %T from %s", m.Payload, m.From)
	}
}

func (s *Server) withJob(id string, fn func(*serverJob)) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.index.get(id)
	if !ok {
		return false
	}
	fn(j)
	return true
}

// ServerTrack is the server's observability track name.
const ServerTrack = "pbs/server"

func (s *Server) handleSubmit(req SubmitReq) {
	sp := s.sim.Tracer().Start(ServerTrack, "submit", "owner", req.Spec.Owner)
	defer sp.End()
	if req.Spec.Nodes <= 0 || req.Spec.PPN < 0 || req.Spec.ACPN < 0 {
		s.send(req.ReplyTo, SubmitResp{ReqID: req.ReqID, Err: "pbs: invalid resource request"})
		return
	}
	s.mu.Lock()
	s.nextJob++
	seq := s.nextJob
	id := fmt.Sprintf("%d.%s", seq, ServerEndpoint)
	j := s.acquireJobLocked()
	j.info.ID = id
	j.info.Spec = req.Spec
	j.info.State = JobQueued
	j.info.SubmittedAt = s.sim.Now()
	s.index.put(seq, id, j)
	s.order = append(s.order, id)
	s.index.activate(seq, id)
	s.mu.Unlock()
	s.aud.Record(audit.KindJob, "pbs", id, audSubmit, int64(seq), 0)
	sp.Annotate("job", id)
	s.inst.submits.Inc()
	s.account(AcctQueued, id, "owner=%s %s", req.Spec.Owner, FormatResourceRequest(req.Spec))
	s.send(req.ReplyTo, SubmitResp{ReqID: req.ReqID, JobID: id})
	s.kickScheduler("submit")
}

func (s *Server) handleStat(req StatReq) {
	s.mu.Lock()
	j, ok := s.index.get(req.JobID)
	var info JobInfo
	if ok {
		info = cloneInfo(j.info)
	}
	s.mu.Unlock()
	if !ok {
		s.send(req.ReplyTo, StatResp{ReqID: req.ReqID, Err: ErrUnknownJob.Error()})
		return
	}
	s.send(req.ReplyTo, StatResp{ReqID: req.ReqID, Info: info})
}

// handleAlter applies qalter to a job that has not started yet.
func (s *Server) handleAlter(req AlterReq) {
	s.mu.Lock()
	j, ok := s.index.get(req.JobID)
	if !ok {
		s.mu.Unlock()
		s.send(req.ReplyTo, AlterResp{ReqID: req.ReqID, Err: ErrUnknownJob.Error()})
		return
	}
	if j.info.State != JobQueued {
		s.mu.Unlock()
		s.send(req.ReplyTo, AlterResp{ReqID: req.ReqID, Err: "pbs: job already started"})
		return
	}
	if req.Priority != nil {
		j.info.Spec.Priority = *req.Priority
	}
	if req.Walltime > 0 {
		j.info.Spec.Walltime = req.Walltime
	}
	if req.Name != "" {
		j.info.Spec.Name = req.Name
	}
	s.mu.Unlock()
	s.send(req.ReplyTo, AlterResp{ReqID: req.ReqID})
	s.kickScheduler("qalter")
}

// handleHold applies qhold/qrls to a queued job.
func (s *Server) handleHold(req HoldReq) {
	s.mu.Lock()
	j, ok := s.index.get(req.JobID)
	if !ok {
		s.mu.Unlock()
		s.send(req.ReplyTo, HoldResp{ReqID: req.ReqID, Err: ErrUnknownJob.Error()})
		return
	}
	if j.info.State != JobQueued {
		s.mu.Unlock()
		s.send(req.ReplyTo, HoldResp{ReqID: req.ReqID, Err: "pbs: job not queued"})
		return
	}
	j.info.Held = req.Hold
	s.mu.Unlock()
	s.send(req.ReplyTo, HoldResp{ReqID: req.ReqID})
	if !req.Hold {
		s.kickScheduler("qrls")
	}
}

// handleList returns every job in submission order.
func (s *Server) handleList(req ListReq) {
	s.mu.Lock()
	jobs := make([]JobInfo, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.index.get(id); ok {
			jobs = append(jobs, cloneInfo(j.info))
		}
	}
	s.mu.Unlock()
	s.send(req.ReplyTo, ListResp{ReqID: req.ReqID, Jobs: jobs})
}

func (s *Server) handleDelete(req DeleteReq) {
	s.mu.Lock()
	j, ok := s.index.get(req.JobID)
	if !ok {
		s.mu.Unlock()
		s.send(req.ReplyTo, DeleteResp{ReqID: req.ReqID, Err: ErrUnknownJob.Error()})
		return
	}
	state := j.info.State
	var hosts []string
	if state == JobRunning {
		hosts = jobHosts(j.info)
	}
	if state == JobQueued || state == JobRunning {
		j.info.State = JobDeleted
		j.info.CompletedAt = s.sim.Now()
		s.freeJobLocked(req.JobID)
		s.retireLocked(req.JobID)
		s.aud.Record(audit.KindJob, "pbs", req.JobID, audToDeleted, int64(state), 0)
	}
	ms := ""
	if len(j.info.Hosts) > 0 {
		ms = j.info.Hosts[0]
	}
	s.mu.Unlock()
	if state == JobRunning && ms != "" {
		s.send(MomEndpoint(ms), AbortJobMsg{JobID: req.JobID})
		for _, h := range hosts {
			s.send(MomEndpoint(h), ReleaseJobMsg{JobID: req.JobID})
		}
	}
	if state == JobQueued || state == JobRunning {
		s.account(AcctDeleted, req.JobID, "")
	}
	s.send(req.ReplyTo, DeleteResp{ReqID: req.ReqID})
	s.notifyWaiters(req.JobID)
	s.kickScheduler("delete")
}

func (s *Server) handleWait(req WaitReq) {
	s.mu.Lock()
	j, ok := s.index.get(req.JobID)
	if !ok {
		s.mu.Unlock()
		s.send(req.ReplyTo, WaitResp{ReqID: req.ReqID, Err: ErrUnknownJob.Error()})
		return
	}
	if j.info.State == JobCompleted || j.info.State == JobDeleted {
		info := cloneInfo(j.info)
		s.mu.Unlock()
		s.send(req.ReplyTo, WaitResp{ReqID: req.ReqID, Info: info})
		return
	}
	s.waiters[req.JobID] = append(s.waiters[req.JobID], waiter{reqID: req.ReqID, replyTo: req.ReplyTo})
	s.mu.Unlock()
}

func (s *Server) notifyWaiters(jobID string) {
	s.mu.Lock()
	ws := s.waiters[jobID]
	delete(s.waiters, jobID)
	var info JobInfo
	if j, ok := s.index.get(jobID); ok {
		info = cloneInfo(j.info)
	}
	s.mu.Unlock()
	for _, w := range ws {
		s.send(w.replyTo, WaitResp{ReqID: w.reqID, Info: info})
	}
}

// handleDynGet enqueues a dynamic request in the special dynqueued
// state. The server services dynamic requests one at a time; see
// startNextDynLocked.
func (s *Server) handleDynGet(req DynGetReq) {
	var sp *trace.Span
	if trc := s.sim.Tracer(); trc != nil {
		sp = trc.Start(ServerTrack, "dynget",
			"job", req.JobID, "count", strconv.Itoa(req.Count), "kind", req.Kind.String())
	}
	defer sp.End()
	s.mu.Lock()
	j, ok := s.index.get(req.JobID)
	if !ok || j.info.State != JobRunning || req.Count <= 0 {
		s.mu.Unlock()
		reason := "pbs: job not running"
		if req.Count <= 0 {
			reason = "pbs: invalid accelerator count"
		}
		s.send(req.ReplyTo, DynGetResp{ReqID: req.ReqID, ClientID: -1, Err: reason})
		return
	}
	ppn := req.PPN
	if req.Kind == KindCompute && ppn <= 0 {
		ppn = 1
	}
	s.nextDyn++
	rec := &DynRecord{
		ReqID:     s.nextDyn,
		JobID:     req.JobID,
		CN:        req.CN,
		Count:     req.Count,
		Kind:      req.Kind,
		PPN:       ppn,
		State:     DynQueued,
		ClientID:  -1,
		ArrivedAt: s.sim.Now(),
	}
	s.dynQ = append(s.dynQ, rec)
	s.dynReply[rec.ReqID] = dynReplyTo{ep: req.ReplyTo, clientReq: req.ReqID}
	s.aud.Record(audit.KindJob, "pbs", req.JobID, audDynQueued, int64(rec.ReqID), int64(rec.Count))
	sp.Annotate("req", strconv.Itoa(rec.ReqID))
	s.startNextDynLocked()
	s.mu.Unlock()
}

// startNextDynLocked promotes the oldest dynqueued request to
// scheduling and kicks the scheduler. Callers hold s.mu.
//
// The faithful server works on one dynamic request at a time (the
// dynBusy flag), so a DYNJOIN in flight blocks every other dynamic
// request — the serialization behind the paper's Figure 8 latency
// cliff. The sharded server pipelines instead: every queued request
// enters scheduling immediately and the joins overlap.
func (s *Server) startNextDynLocked() {
	if s.params.Shards > 1 {
		kicked := false
		for _, rec := range s.dynQ {
			if rec.State == DynQueued {
				rec.State = DynScheduling
				rec.ServiceAt = s.sim.Now()
				s.aud.Record(audit.KindJob, "pbs", rec.JobID, audDynSched, int64(rec.ReqID), 0)
				kicked = true
			}
		}
		if kicked && s.schedEP != "" {
			s.sendLockedSafe(s.schedEP, SchedKick{Reason: "dynqueued"})
		}
		return
	}
	if s.dynBusy {
		return
	}
	for _, rec := range s.dynQ {
		if rec.State == DynQueued {
			rec.State = DynScheduling
			rec.ServiceAt = s.sim.Now()
			s.aud.Record(audit.KindJob, "pbs", rec.JobID, audDynSched, int64(rec.ReqID), 0)
			s.dynBusy = true
			if s.schedEP != "" {
				s.sendLockedSafe(s.schedEP, SchedKick{Reason: "dynqueued"})
			}
			return
		}
	}
}

// sendLockedSafe sends while s.mu is held; netsim Send never blocks,
// so this cannot deadlock, but keep it distinct for clarity.
func (s *Server) sendLockedSafe(to string, payload any) {
	if err := s.ep.Send(to, "pbs", payload, 0); err != nil {
		s.errs = append(s.errs, fmt.Sprintf("send to %s: %v", to, err))
	}
}

func (s *Server) handleDynFree(req DynFreeReq) {
	s.mu.Lock()
	j, ok := s.index.get(req.JobID)
	if !ok {
		s.mu.Unlock()
		s.send(req.ReplyTo, DynFreeResp{ReqID: req.ReqID, Err: ErrUnknownJob.Error()})
		return
	}
	hosts, ok := j.info.DynSets[req.ClientID]
	if !ok {
		s.mu.Unlock()
		s.send(req.ReplyTo, DynFreeResp{ReqID: req.ReqID, Err: "pbs: unknown client-id"})
		return
	}
	delete(j.info.DynSets, req.ClientID)
	for i := range j.info.DynRecords {
		if j.info.DynRecords[i].ClientID == req.ClientID {
			j.info.DynRecords[i].FreedAt = s.sim.Now()
		}
	}
	for _, h := range hosts {
		if n, ok := s.nodes[h]; ok {
			s.aud.Record(audit.KindRelease, "pbs", h, req.JobID, int64(n.usedBy[req.JobID]), 1)
			delete(n.usedBy, req.JobID)
			s.refreshLocked(n)
		}
	}
	s.aud.Record(audit.KindJob, "pbs", req.JobID, audDynFree, int64(req.ClientID), int64(len(hosts)))
	ms := ""
	if len(j.info.Hosts) > 0 {
		ms = j.info.Hosts[0]
	}
	s.mu.Unlock()

	// Positive reply first; disassociation proceeds while the
	// application continues (paper Section III-D).
	s.account(AcctDynFree, req.JobID, "client=%d", req.ClientID)
	s.send(req.ReplyTo, DynFreeResp{ReqID: req.ReqID})
	if ms != "" {
		s.send(MomEndpoint(ms), DynRemoveMsg{JobID: req.JobID, ClientID: req.ClientID, Hosts: hosts})
	}
	s.kickScheduler("dynfree")
}

// schedRespPool recycles the per-cycle scheduler snapshot. The server
// hands a *SchedInfoResp to exactly one scheduler, which owns it (and
// every slice hanging off it) until it calls Release after its cycle;
// the next handleSchedInfo then refills the same buffers in place, so
// the steady-state cost of a snapshot is copying, not allocating.
var schedRespPool = sync.Pool{New: func() any { return new(SchedInfoResp) }}

// Release returns the snapshot and its buffers to the server's pool.
// The scheduler must not touch the response — including any slice or
// map obtained from it — after releasing.
func (r *SchedInfoResp) Release() {
	if r == nil {
		return
	}
	schedRespPool.Put(r)
}

func (s *Server) handleSchedInfo(req SchedInfoReq) {
	resp := schedRespPool.Get().(*SchedInfoResp)
	resp.ReqID = req.ReqID
	resp.Queued = resp.Queued[:0]
	resp.Running = resp.Running[:0]
	resp.Dyn = resp.Dyn[:0]
	s.mu.Lock()
	// Walk the active index in submission order, compacting terminal
	// jobs in place so the next cycle never revisits them.
	s.index.compactActive(func(id string, j *serverJob) bool {
		switch j.info.State {
		case JobQueued:
			if !j.info.Held { // qhold: invisible to the scheduler
				if len(j.info.Hosts) == 0 { // not yet allocated
					resp.Queued = appendInfo(resp.Queued, j.info)
				} else {
					resp.Running = appendInfo(resp.Running, j.info)
				}
			}
			return true
		case JobRunning:
			resp.Running = appendInfo(resp.Running, j.info)
			return true
		}
		return false
	})
	for _, rec := range s.dynQ {
		if rec.State == DynScheduling {
			resp.Dyn = append(resp.Dyn, SchedDynView{
				ReqID: rec.ReqID, JobID: rec.JobID, Count: rec.Count,
				Kind: rec.Kind, PPN: rec.PPN, ArrivedAt: rec.ArrivedAt,
			})
		}
	}
	resp.Nodes = s.nodeViewIntoLocked(resp.Nodes[:0])
	// Retention: compactActive just removed every terminal id from the
	// active lists, so records beyond the window can be recycled now
	// without leaving a dangling active entry.
	s.purgeRetiredLocked()
	// Scheduler-cycle boundary: the snapshot the scheduler will act on
	// is complete — run the invariant engine on exactly that state.
	s.auditCheckLocked()
	s.mu.Unlock()
	s.aud.Record(audit.KindCycle, "pbs", audSchedInfoCyc, "", int64(len(resp.Queued)), int64(len(resp.Running)))
	s.inst.queueDepth.Set(float64(len(resp.Queued)))
	s.inst.dynPending.Set(float64(len(resp.Dyn)))
	s.send(req.ReplyTo, resp)
}

func (s *Server) handleAlloc(cmd AllocCmd) {
	sp := s.sim.Tracer().Start(ServerTrack, "alloc", "job", cmd.JobID)
	sp.Link(cmd.Cause) // scheduler's place span
	defer sp.End()
	s.mu.Lock()
	j, ok := s.index.get(cmd.JobID)
	if !ok || j.info.State != JobQueued || j.info.Held || len(j.info.Hosts) > 0 {
		// A job deleted, failed, held — or, with the sharded server,
		// already allocated by a command this snapshot raced — while
		// the scheduler was mid-cycle legitimately races its
		// allocation; drop the command. Only a wholly unknown job ID
		// indicates a real bug.
		benign := ok
		s.mu.Unlock()
		if !benign {
			s.logErr("AllocCmd for job %s in invalid state", cmd.JobID)
		}
		return
	}
	// Validate and commit the assignment.
	for _, h := range cmd.Hosts {
		n, ok := s.nodes[h]
		if !ok || n.info.Type != ComputeNode || n.info.FreeCores() < j.info.Spec.PPN {
			s.mu.Unlock()
			s.logErr("AllocCmd for job %s: compute node %s unavailable", cmd.JobID, h)
			return
		}
	}
	for _, acs := range cmd.AccHosts {
		for _, h := range acs {
			n, ok := s.nodes[h]
			if !ok || n.info.Type != AcceleratorNode || len(n.usedBy) > 0 {
				s.mu.Unlock()
				s.logErr("AllocCmd for job %s: accelerator %s unavailable", cmd.JobID, h)
				return
			}
		}
	}
	for _, h := range cmd.Hosts {
		n := s.nodes[h]
		n.usedBy[cmd.JobID] = j.info.Spec.PPN
		s.refreshLocked(n)
		s.aud.Record(audit.KindAlloc, "pbs", h, cmd.JobID, int64(j.info.Spec.PPN), 0)
	}
	for _, acs := range cmd.AccHosts {
		for _, h := range acs {
			n := s.nodes[h]
			n.usedBy[cmd.JobID] = 1
			s.refreshLocked(n)
			s.aud.Record(audit.KindAlloc, "pbs", h, cmd.JobID, 1, 0)
		}
	}
	j.info.Hosts = append([]string(nil), cmd.Hosts...)
	j.info.AccHosts = make(map[string][]string, len(cmd.AccHosts))
	for cn, acs := range cmd.AccHosts {
		j.info.AccHosts[cn] = append([]string(nil), acs...)
	}
	j.info.AllocatedAt = s.sim.Now()
	j.info.State = JobRunning
	s.aud.Record(audit.KindJob, "pbs", cmd.JobID, audQueuedToRun, int64(len(cmd.Hosts)), 0)
	spec := j.info.Spec
	hosts := append([]string(nil), j.info.Hosts...)
	acc := j.info.AccHosts
	s.mu.Unlock()

	// Select the mother superior (always a compute node, paper
	// Section III-C) and forward the job.
	s.sendCause(MomEndpoint(hosts[0]),
		RunJobMsg{JobID: cmd.JobID, Spec: spec, Hosts: hosts, AccHosts: acc, Cause: sp.ID()}, sp.ID())
}

func (s *Server) handleDynAlloc(cmd DynAllocCmd) {
	var sp *trace.Span
	if trc := s.sim.Tracer(); trc != nil {
		sp = trc.Start(ServerTrack, "dynalloc", "req", strconv.Itoa(cmd.ReqID))
	}
	sp.Link(cmd.Cause) // scheduler's sched.dyn span
	defer sp.End()
	s.mu.Lock()
	var rec *DynRecord
	for _, r := range s.dynQ {
		if r.ReqID == cmd.ReqID && r.State == DynScheduling {
			rec = r
			break
		}
	}
	if rec == nil {
		s.mu.Unlock()
		s.logErr("DynAllocCmd for unknown request %d", cmd.ReqID)
		return
	}
	sp.Annotate("job", rec.JobID)
	rec.AllocAt = s.sim.Now()
	route := s.dynReply[rec.ReqID]
	if len(cmd.Hosts) == 0 {
		// Rejection: reply immediately with a negative client-id.
		rec.State = DynRejected
		rec.RepliedAt = s.sim.Now()
		jobID := rec.JobID
		s.finishDynLocked(rec)
		s.mu.Unlock()
		s.account(AcctDynReject, jobID, "count=%d", rec.Count)
		s.send(route.ep, DynGetResp{ReqID: route.clientReq, ClientID: -1, Err: "pbs: not enough accelerators available"})
		return
	}
	j, ok := s.index.get(rec.JobID)
	if !ok || j.info.State != JobRunning {
		rec.State = DynRejected
		rec.RepliedAt = s.sim.Now()
		s.finishDynLocked(rec)
		s.mu.Unlock()
		s.send(route.ep, DynGetResp{ReqID: route.clientReq, ClientID: -1, Err: "pbs: job no longer running"})
		return
	}
	for _, h := range cmd.Hosts {
		n, ok := s.nodes[h]
		bad := !ok || n.info.Down
		if !bad {
			switch rec.Kind {
			case KindAccelerator:
				bad = n.info.Type != AcceleratorNode || len(n.usedBy) > 0
			case KindCompute:
				// Malleable extension: the scheduler picks compute
				// nodes this job does not already occupy.
				bad = n.info.Type != ComputeNode || n.info.FreeCores() < rec.PPN || n.usedBy[rec.JobID] > 0
			}
		}
		if bad {
			rec.State = DynRejected
			rec.RepliedAt = s.sim.Now()
			s.finishDynLocked(rec)
			s.mu.Unlock()
			s.logErr("DynAllocCmd %d: %s %s unavailable", cmd.ReqID, rec.Kind, h)
			s.send(route.ep, DynGetResp{ReqID: route.clientReq, ClientID: -1, Err: "pbs: allocation raced with another job"})
			return
		}
	}
	rec.State = DynForwarding
	s.nextClient++
	rec.ClientID = s.nextClient
	rec.Hosts = append([]string(nil), cmd.Hosts...)
	s.aud.Record(audit.KindJob, "pbs", rec.JobID, audDynForward, int64(rec.ReqID), int64(rec.ClientID))
	for _, h := range cmd.Hosts {
		n := s.nodes[h]
		if rec.Kind == KindCompute {
			n.usedBy[rec.JobID] = rec.PPN
		} else {
			n.usedBy[rec.JobID] = 1
		}
		s.refreshLocked(n)
		s.aud.Record(audit.KindAlloc, "pbs", h, rec.JobID, int64(n.usedBy[rec.JobID]), 1)
	}
	j.info.DynSets[rec.ClientID] = rec.Hosts
	ms := j.info.Hosts[0]
	s.mu.Unlock()

	s.sendCause(MomEndpoint(ms), DynAddMsg{
		JobID: rec.JobID, ReqID: rec.ReqID, ClientID: rec.ClientID,
		CN: rec.CN, Hosts: rec.Hosts, ReplyTo: ServerEndpoint, Cause: sp.ID(),
	}, sp.ID())
}

func (s *Server) handleDynAddAck(ack DynAddAck) {
	var sp *trace.Span
	if trc := s.sim.Tracer(); trc != nil {
		sp = trc.Start(ServerTrack, "dynack", "req", strconv.Itoa(ack.ReqID))
	}
	sp.Link(ack.Cause) // mother superior's mom.dynadd span
	defer sp.End()
	s.mu.Lock()
	var rec *DynRecord
	for _, r := range s.dynQ {
		if r.ReqID == ack.ReqID && r.State == DynForwarding {
			rec = r
			break
		}
	}
	if rec == nil {
		s.mu.Unlock()
		s.logErr("DynAddAck for unknown request %d", ack.ReqID)
		return
	}
	sp.Annotate("job", rec.JobID)
	rec.ForwardedAt = s.sim.Now()
	rec.State = DynGranted
	rec.RepliedAt = s.sim.Now()
	route := s.dynReply[rec.ReqID]
	resp := DynGetResp{ReqID: route.clientReq, ClientID: rec.ClientID, Hosts: append([]string(nil), rec.Hosts...)}
	jobID := rec.JobID
	detail := fmt.Sprintf("client=%d kind=%s hosts=%s", rec.ClientID, rec.Kind, strings.Join(rec.Hosts, "+"))
	s.finishDynLocked(rec)
	s.mu.Unlock()
	s.account(AcctDynGrant, jobID, "%s", detail)
	s.send(route.ep, resp)
}

// finishDynLocked archives a finished request into its job's record
// and resumes servicing the queue. Callers hold s.mu.
func (s *Server) finishDynLocked(rec *DynRecord) {
	// One span per dynamic request covering the whole protocol
	// interval (arrival at the server until the reply), the quantity
	// Figures 7(b)-9 measure. The telemetry histogram records the same
	// interval, so live p99s line up with the post-hoc figures.
	s.inst.dynLatency.Record(rec.RepliedAt - rec.ArrivedAt)
	if rec.State == DynRejected {
		s.inst.dynRejected.Inc()
		s.aud.Record(audit.KindJob, "pbs", rec.JobID, audDynRejected, int64(rec.ReqID), 0)
	} else {
		s.inst.dynGranted.Inc()
		s.aud.Record(audit.KindJob, "pbs", rec.JobID, audDynGranted, int64(rec.ReqID), int64(rec.ClientID))
	}
	if trc := s.sim.Tracer(); trc != nil {
		outcome := "granted"
		if rec.State == DynRejected {
			outcome = "rejected"
		}
		trc.AsyncSpanAt(ServerTrack, "dyn.request", rec.ArrivedAt, rec.RepliedAt-rec.ArrivedAt,
			"job", rec.JobID, "count", fmt.Sprint(rec.Count), "outcome", outcome,
			"req", strconv.Itoa(rec.ReqID))
	}
	delete(s.dynReply, rec.ReqID)
	for i, r := range s.dynQ {
		if r == rec {
			s.dynQ = append(s.dynQ[:i], s.dynQ[i+1:]...)
			break
		}
	}
	if j, ok := s.index.get(rec.JobID); ok {
		j.info.DynRecords = append(j.info.DynRecords, *rec)
	}
	s.dynBusy = false
	s.startNextDynLocked()
}

func (s *Server) handleJobDone(jobID string) {
	sp := s.sim.Tracer().Start(ServerTrack, "jobdone", "job", jobID)
	defer sp.End()
	s.mu.Lock()
	j, ok := s.index.get(jobID)
	if !ok || j.info.State != JobRunning {
		s.mu.Unlock()
		return
	}
	j.info.State = JobCompleted
	j.info.CompletedAt = s.sim.Now()
	s.aud.Record(audit.KindJob, "pbs", jobID, audRunToDone, 0, 0)
	s.inst.jobsDone.Inc()
	hosts := jobHosts(j.info)
	s.freeJobLocked(jobID)
	s.retireLocked(jobID)
	// Reject any dynamic requests still pending for this job.
	var rejects []*DynRecord
	for _, rec := range s.dynQ {
		if rec.JobID == jobID && (rec.State == DynQueued || rec.State == DynScheduling) {
			rejects = append(rejects, rec)
		}
	}
	s.mu.Unlock()
	for _, rec := range rejects {
		s.mu.Lock()
		rec.State = DynRejected
		rec.RepliedAt = s.sim.Now()
		route := s.dynReply[rec.ReqID]
		s.finishDynLocked(rec)
		s.mu.Unlock()
		s.send(route.ep, DynGetResp{ReqID: route.clientReq, ClientID: -1, Err: "pbs: job completed"})
	}
	for _, h := range hosts {
		s.send(MomEndpoint(h), ReleaseJobMsg{JobID: jobID})
	}
	s.account(AcctEnded, jobID, "")
	s.notifyWaiters(jobID)
	s.kickScheduler("jobdone")
}

// freeJobLocked releases every node held by the job. The job's own
// host lists (static hosts, static accelerators, live dynamic sets)
// name every node it can occupy, so the release touches only those
// instead of sweeping the whole node database. Callers hold s.mu.
func (s *Server) freeJobLocked(jobID string) {
	j, ok := s.index.get(jobID)
	if !ok {
		return
	}
	for _, h := range jobHosts(j.info) {
		if n, ok := s.nodes[h]; ok {
			if c, held := n.usedBy[jobID]; held {
				s.aud.Record(audit.KindRelease, "pbs", h, jobID, int64(c), 0)
				delete(n.usedBy, jobID)
				s.refreshLocked(n)
			}
		}
	}
}

// jobHosts lists every host associated with a job: compute nodes,
// static accelerators, and dynamic sets.
func jobHosts(info JobInfo) []string {
	var out []string
	out = append(out, info.Hosts...)
	for _, acs := range info.AccHosts {
		out = append(out, acs...)
	}
	for _, acs := range info.DynSets {
		out = append(out, acs...)
	}
	return out
}

// refreshLocked recomputes the node's public view after a usedBy
// mutation, folding the elapsed busy time into the accounting
// integral first. Callers hold s.mu.
func (s *Server) refreshLocked(n *serverNode) {
	s.accrueLocked(n)
	used := 0
	jobs := make([]string, 0, len(n.usedBy))
	for id, c := range n.usedBy {
		used += c
		jobs = append(jobs, id)
	}
	sort.Strings(jobs)
	if n.info.Type == AcceleratorNode {
		n.info.UsedCores = 0
	} else {
		n.info.UsedCores = used
	}
	n.info.Jobs = jobs
	s.aud.Record(audit.KindNode, "pbs", n.info.Name, "", int64(n.info.Cores-n.info.UsedCores), int64(len(n.usedBy)))
}

func (s *Server) nodeView() []NodeInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nodeViewLocked()
}

// nodeViewLocked clones the node database into freshly allocated
// storage. It serves the client-facing NodesReq path, whose callers may
// keep the result indefinitely.
func (s *Server) nodeViewLocked() []NodeInfo {
	out := make([]NodeInfo, 0, len(s.nodeOrder))
	for _, name := range s.nodeOrder {
		n := s.nodes[name]
		info := n.info
		info.Jobs = append([]string(nil), n.info.Jobs...)
		out = append(out, info)
	}
	return out
}

// nodeViewIntoLocked is nodeViewLocked for the pooled scheduler
// snapshot: it refills dst (including each element's Jobs buffer) in
// place. Callers hold s.mu and own dst until the snapshot's Release.
func (s *Server) nodeViewIntoLocked(dst []NodeInfo) []NodeInfo {
	for _, name := range s.nodeOrder {
		n := s.nodes[name]
		var out *NodeInfo
		if len(dst) < cap(dst) {
			dst = dst[:len(dst)+1]
			out = &dst[len(dst)-1]
		} else {
			dst = append(dst, NodeInfo{})
			out = &dst[len(dst)-1]
		}
		jobs := out.Jobs[:0]
		*out = n.info
		out.Jobs = append(jobs, n.info.Jobs...)
	}
	return dst
}

// cloneInfo deep-copies a job view. Empty maps clone to nil: the
// scheduler fetches every queued job each cycle, and a queued job has
// no hosts or dynamic sets yet, so allocating empty maps per job per
// cycle would dominate the allocation profile of large replays.
func cloneInfo(in JobInfo) JobInfo {
	out := in
	out.Hosts = append([]string(nil), in.Hosts...)
	if len(in.AccHosts) > 0 {
		out.AccHosts = make(map[string][]string, len(in.AccHosts))
		for k, v := range in.AccHosts {
			out.AccHosts[k] = append([]string(nil), v...)
		}
	} else {
		out.AccHosts = nil
	}
	if len(in.DynSets) > 0 {
		out.DynSets = make(map[int][]string, len(in.DynSets))
		for k, v := range in.DynSets {
			out.DynSets[k] = append([]string(nil), v...)
		}
	} else {
		out.DynSets = nil
	}
	out.DynRecords = append([]DynRecord(nil), in.DynRecords...)
	return out
}

// appendInfo appends a deep copy of in to dst, reviving the spare
// element (and its Hosts/DynRecords buffers) past len when dst came
// from a pooled snapshot. Queued jobs — the bulk of every cycle on a
// loaded system — carry no hosts, maps, or records and therefore cost
// zero allocations here.
func appendInfo(dst []JobInfo, in JobInfo) []JobInfo {
	if len(dst) < cap(dst) {
		dst = dst[:len(dst)+1]
	} else {
		dst = append(dst, JobInfo{})
	}
	cloneInfoInto(&dst[len(dst)-1], in)
	return dst
}

// cloneInfoInto is cloneInfo writing into reusable storage: out's
// Hosts and DynRecords buffers are kept, maps follow cloneInfo's
// empty-clones-to-nil rule.
func cloneInfoInto(out *JobInfo, in JobInfo) {
	hosts := out.Hosts[:0]
	recs := out.DynRecords[:0]
	*out = in
	out.Hosts = append(hosts, in.Hosts...)
	if len(in.AccHosts) > 0 {
		m := make(map[string][]string, len(in.AccHosts))
		for k, v := range in.AccHosts {
			m[k] = append([]string(nil), v...)
		}
		out.AccHosts = m
	} else {
		out.AccHosts = nil
	}
	if len(in.DynSets) > 0 {
		m := make(map[int][]string, len(in.DynSets))
		for k, v := range in.DynSets {
			m[k] = append([]string(nil), v...)
		}
		out.DynSets = m
	} else {
		out.DynSets = nil
	}
	out.DynRecords = append(recs, in.DynRecords...)
}
