package pbs_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/maui"
	"repro/internal/netsim"
	"repro/internal/pbs"
	"repro/internal/sim"
)

// testbed wires a server, moms for nCN compute nodes and nAC
// accelerator nodes, and a Maui scheduler, mirroring the paper's
// 8-node configuration when nCN+nAC = 7.
type testbed struct {
	s      *sim.Simulation
	net    *netsim.Network
	server *pbs.Server
	sched  *maui.Scheduler
	moms   map[string]*pbs.Mom
	cns    []string
	acs    []string
}

func newTestbed(t *testing.T, nCN, nAC int, adjust func(*maui.Params)) *testbed {
	t.Helper()
	return newTestbedOn(t, sim.New(), nCN, nAC, adjust)
}

// newTestbedOn builds the testbed on a caller-provided simulation, so
// tests can install instrumentation (tracer, telemetry, audit
// recorder) before any daemon resolves its handles.
func newTestbedOn(t *testing.T, s *sim.Simulation, nCN, nAC int, adjust func(*maui.Params)) *testbed {
	t.Helper()
	net := netsim.New(s, netsim.LinkParams{Latency: 200 * time.Microsecond})
	tb := &testbed{s: s, net: net, moms: make(map[string]*pbs.Mom)}
	tb.server = pbs.NewServer(net, pbs.ServerParams{Processing: time.Millisecond})
	mp := maui.DefaultParams()
	mp.CycleInterval = 50 * time.Millisecond
	mp.CycleOverhead = 5 * time.Millisecond
	mp.PerJobCost = 2 * time.Millisecond
	mp.DynPerReqCost = 2 * time.Millisecond
	if adjust != nil {
		adjust(&mp)
	}
	tb.sched = maui.New(net, pbs.ServerEndpoint, mp)
	tb.server.SetScheduler(tb.sched.Endpoint())
	for i := 0; i < nCN; i++ {
		name := cnName(i)
		tb.cns = append(tb.cns, name)
		tb.server.AddNode(name, pbs.ComputeNode, 8)
		m := pbs.NewMom(net, name, pbs.MomParams{JoinCost: time.Millisecond, DynJoinCost: 2 * time.Millisecond, StartCost: time.Millisecond})
		m.Cluster = net
		tb.moms[name] = m
	}
	for i := 0; i < nAC; i++ {
		name := acName(i)
		tb.acs = append(tb.acs, name)
		tb.server.AddNode(name, pbs.AcceleratorNode, 1)
		m := pbs.NewMom(net, name, pbs.MomParams{JoinCost: time.Millisecond, DynJoinCost: 2 * time.Millisecond})
		m.Cluster = net
		tb.moms[name] = m
	}
	return tb
}

func cnName(i int) string { return "cn" + string(rune('0'+i)) }
func acName(i int) string { return "ac" + string(rune('0'+i)) }

func (tb *testbed) run(t *testing.T, fn func(c *pbs.Client)) {
	t.Helper()
	err := tb.s.Run(func() {
		defer tb.net.Close()
		tb.server.Start()
		for _, m := range tb.moms {
			m.Start()
		}
		tb.sched.Start()
		c := pbs.NewClient(tb.net, "front", pbs.ServerEndpoint)
		fn(c)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, e := range tb.server.Errors() {
		t.Errorf("server error: %s", e)
	}
}

func TestSubmitRunsAndCompletes(t *testing.T) {
	tb := newTestbed(t, 2, 0, nil)
	tb.run(t, func(c *pbs.Client) {
		var ranHost string
		var mu sync.Mutex
		id, err := c.Submit(pbs.JobSpec{
			Name: "hello", Owner: "alice", Nodes: 1, PPN: 2, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				mu.Lock()
				ranHost = env.Host
				mu.Unlock()
				tb.s.Sleep(100 * time.Millisecond)
			},
		})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		info, err := c.Wait(id)
		if err != nil {
			t.Errorf("Wait: %v", err)
			return
		}
		if info.State != pbs.JobCompleted {
			t.Errorf("state = %v", info.State)
		}
		mu.Lock()
		if ranHost == "" {
			t.Error("script never ran")
		}
		mu.Unlock()
		if !(info.SubmittedAt <= info.AllocatedAt && info.AllocatedAt <= info.StartedAt && info.StartedAt < info.CompletedAt) {
			t.Errorf("timestamps out of order: %+v", info)
		}
		if info.CompletedAt-info.StartedAt < 100*time.Millisecond {
			t.Errorf("job ran for %v, want >= 100ms", info.CompletedAt-info.StartedAt)
		}
		nodes, _ := c.Nodes()
		for _, n := range nodes {
			if len(n.Jobs) != 0 {
				t.Errorf("node %s still holds %v after completion", n.Name, n.Jobs)
			}
		}
	})
}

func TestStaticAcceleratorAllocation(t *testing.T) {
	tb := newTestbed(t, 1, 3, nil)
	tb.run(t, func(c *pbs.Client) {
		var gotACs []string
		var mu sync.Mutex
		id, err := c.Submit(pbs.JobSpec{
			Name: "dac", Owner: "alice", Nodes: 1, PPN: 1, ACPN: 3, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				mu.Lock()
				gotACs = append([]string(nil), env.AccHosts...)
				mu.Unlock()
			},
		})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		info, err := c.Wait(id)
		if err != nil {
			t.Errorf("Wait: %v", err)
			return
		}
		mu.Lock()
		if len(gotACs) != 3 {
			t.Errorf("script saw %d accelerators, want 3", len(gotACs))
		}
		mu.Unlock()
		if len(info.AccHosts[info.Hosts[0]]) != 3 {
			t.Errorf("AccHosts = %v", info.AccHosts)
		}
		nodes, _ := c.Nodes()
		for _, n := range nodes {
			if len(n.Jobs) != 0 {
				t.Errorf("node %s not freed: %v", n.Name, n.Jobs)
			}
		}
	})
}

func TestJobQueuesUntilResourcesFree(t *testing.T) {
	tb := newTestbed(t, 1, 0, nil)
	tb.run(t, func(c *pbs.Client) {
		long := func(env *pbs.JobEnv) { tb.s.Sleep(200 * time.Millisecond) }
		id1, err := c.Submit(pbs.JobSpec{Name: "a", Owner: "u", Nodes: 1, PPN: 8, Walltime: time.Second, Script: long})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		id2, err := c.Submit(pbs.JobSpec{Name: "b", Owner: "u", Nodes: 1, PPN: 8, Walltime: time.Second, Script: long})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		i1, _ := c.Wait(id1)
		i2, _ := c.Wait(id2)
		if i2.StartedAt < i1.CompletedAt {
			t.Errorf("job b started (%v) before a completed (%v)", i2.StartedAt, i1.CompletedAt)
		}
	})
}

func TestCoreLevelSharing(t *testing.T) {
	tb := newTestbed(t, 1, 0, nil)
	tb.run(t, func(c *pbs.Client) {
		// Two ppn=4 jobs share the single 8-core node concurrently.
		script := func(env *pbs.JobEnv) { tb.s.Sleep(100 * time.Millisecond) }
		id1, _ := c.Submit(pbs.JobSpec{Name: "a", Owner: "u", Nodes: 1, PPN: 4, Walltime: time.Second, Script: script})
		id2, _ := c.Submit(pbs.JobSpec{Name: "b", Owner: "u", Nodes: 1, PPN: 4, Walltime: time.Second, Script: script})
		i1, _ := c.Wait(id1)
		i2, _ := c.Wait(id2)
		if i2.StartedAt >= i1.CompletedAt {
			t.Errorf("ppn=4 jobs did not share the node: b started %v, a completed %v", i2.StartedAt, i1.CompletedAt)
		}
	})
}

func TestMultiNodeJobRanksAndHosts(t *testing.T) {
	tb := newTestbed(t, 3, 0, nil)
	tb.run(t, func(c *pbs.Client) {
		var mu sync.Mutex
		ranks := map[string]int{}
		id, err := c.Submit(pbs.JobSpec{
			Name: "mpi", Owner: "u", Nodes: 3, PPN: 8, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				mu.Lock()
				ranks[env.Host] = env.Rank
				mu.Unlock()
				if len(env.Hosts) != 3 {
					t.Errorf("nodefile has %d hosts", len(env.Hosts))
				}
				if env.MSHost != env.Hosts[0] {
					t.Errorf("MS = %s, hosts[0] = %s", env.MSHost, env.Hosts[0])
				}
			},
		})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		c.Wait(id)
		mu.Lock()
		defer mu.Unlock()
		if len(ranks) != 3 {
			t.Errorf("script ran on %d hosts, want 3", len(ranks))
		}
		seen := map[int]bool{}
		for _, r := range ranks {
			seen[r] = true
		}
		if !seen[0] || !seen[1] || !seen[2] {
			t.Errorf("ranks = %v", ranks)
		}
	})
}

func TestDynGetGrantsAndDynFreeReleases(t *testing.T) {
	tb := newTestbed(t, 1, 4, nil)
	tb.run(t, func(c *pbs.Client) {
		var grant pbs.DynGrant
		var dynErr, freeErr error
		id, err := c.Submit(pbs.JobSpec{
			Name: "dyn", Owner: "u", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				cl := pbs.NewClient(env.Cluster.(*netsim.Network), env.Host, env.ServerEP)
				grant, dynErr = cl.DynGet(env.JobID, env.Host, 2)
				if dynErr == nil {
					freeErr = cl.DynFree(env.JobID, grant.ClientID)
				}
			},
		})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		info, err := c.Wait(id)
		if err != nil {
			t.Errorf("Wait: %v", err)
			return
		}
		if dynErr != nil {
			t.Errorf("DynGet: %v", dynErr)
		}
		if freeErr != nil {
			t.Errorf("DynFree: %v", freeErr)
		}
		if len(grant.Hosts) != 2 || grant.ClientID <= 0 {
			t.Errorf("grant = %+v", grant)
		}
		if len(info.DynRecords) != 1 {
			t.Fatalf("DynRecords = %v", info.DynRecords)
		}
		rec := info.DynRecords[0]
		if rec.State != pbs.DynGranted {
			t.Errorf("record state = %v", rec.State)
		}
		if !(rec.ArrivedAt <= rec.ServiceAt && rec.ServiceAt <= rec.AllocAt && rec.AllocAt <= rec.ForwardedAt && rec.ForwardedAt <= rec.RepliedAt) {
			t.Errorf("record timestamps out of order: %+v", rec)
		}
		nodes, _ := c.Nodes()
		for _, n := range nodes {
			if len(n.Jobs) != 0 {
				t.Errorf("node %s not freed: %v", n.Name, n.Jobs)
			}
		}
	})
}

func TestDynGetRejectedWhenShort(t *testing.T) {
	tb := newTestbed(t, 1, 2, nil)
	tb.run(t, func(c *pbs.Client) {
		var dynErr error
		var grant pbs.DynGrant
		finished := false
		id, _ := c.Submit(pbs.JobSpec{
			Name: "dyn", Owner: "u", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				cl := pbs.NewClient(env.Cluster.(*netsim.Network), env.Host, env.ServerEP)
				// Only 1 accelerator left; ask for 3.
				grant, dynErr = cl.DynGet(env.JobID, env.Host, 3)
				finished = true // application continues after rejection
			},
		})
		info, _ := c.Wait(id)
		if dynErr == nil {
			t.Errorf("DynGet should have been rejected, got %+v", grant)
		}
		if grant.ClientID >= 0 {
			t.Errorf("rejection should carry negative client-id, got %d", grant.ClientID)
		}
		if !finished {
			t.Error("script did not continue after rejection")
		}
		if len(info.DynRecords) != 1 || info.DynRecords[0].State != pbs.DynRejected {
			t.Errorf("DynRecords = %+v", info.DynRecords)
		}
	})
}

func TestDynGetOnNonRunningJob(t *testing.T) {
	tb := newTestbed(t, 1, 1, nil)
	tb.run(t, func(c *pbs.Client) {
		if _, err := c.DynGet("77.pbs/server", "cn0", 1); err == nil {
			t.Error("DynGet on unknown job should fail")
		}
		id, _ := c.Submit(pbs.JobSpec{
			Name: "x", Owner: "u", Nodes: 1, PPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				cl := pbs.NewClient(env.Cluster.(*netsim.Network), env.Host, env.ServerEP)
				if _, err := cl.DynGet(env.JobID, env.Host, 0); err == nil {
					t.Error("DynGet with count 0 should fail")
				}
			},
		})
		c.Wait(id)
	})
}

func TestDynFreeUnknownClientID(t *testing.T) {
	tb := newTestbed(t, 1, 1, nil)
	tb.run(t, func(c *pbs.Client) {
		id, _ := c.Submit(pbs.JobSpec{
			Name: "x", Owner: "u", Nodes: 1, PPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				cl := pbs.NewClient(env.Cluster.(*netsim.Network), env.Host, env.ServerEP)
				if err := cl.DynFree(env.JobID, 999); err == nil {
					t.Error("DynFree with bogus client-id should fail")
				}
			},
		})
		c.Wait(id)
	})
}

func TestSerialDynServicing(t *testing.T) {
	// Three jobs issue a dynamic request at (nearly) the same time;
	// the server's serial processing must produce strictly increasing
	// completion times (the Figure 9 staircase).
	tb := newTestbed(t, 3, 6, nil)
	tb.run(t, func(c *pbs.Client) {
		var mu sync.Mutex
		doneAt := map[string]time.Duration{}
		mk := func(delay time.Duration) pbs.Script {
			return func(env *pbs.JobEnv) {
				tb.s.Sleep(50*time.Millisecond + delay) // let all three jobs start
				cl := pbs.NewClient(env.Cluster.(*netsim.Network), env.Host, env.ServerEP)
				if _, err := cl.DynGet(env.JobID, env.Host, 1); err != nil {
					t.Errorf("DynGet on %s: %v", env.Host, err)
				}
				mu.Lock()
				doneAt[env.JobID] = tb.s.Now()
				mu.Unlock()
			}
		}
		var ids []string
		for i := 0; i < 3; i++ {
			id, err := c.Submit(pbs.JobSpec{
				Name: "j", Owner: "u", Nodes: 1, PPN: 8, ACPN: 1, Walltime: time.Second,
				Script: mk(time.Duration(i) * time.Microsecond),
			})
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			ids = append(ids, id)
		}
		for _, id := range ids {
			c.Wait(id)
		}
		mu.Lock()
		defer mu.Unlock()
		if len(doneAt) != 3 {
			t.Fatalf("doneAt = %v", doneAt)
		}
		// All three CNs must have distinct completion times.
		var times []time.Duration
		for _, at := range doneAt {
			times = append(times, at)
		}
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if times[i] == times[j] {
					t.Errorf("dynamic requests serviced concurrently: %v", doneAt)
				}
			}
		}
	})
}

func TestDeleteQueuedJob(t *testing.T) {
	tb := newTestbed(t, 1, 0, nil)
	tb.run(t, func(c *pbs.Client) {
		blocker, _ := c.Submit(pbs.JobSpec{Name: "blocker", Owner: "u", Nodes: 1, PPN: 8, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) { tb.s.Sleep(300 * time.Millisecond) }})
		queued, _ := c.Submit(pbs.JobSpec{Name: "victim", Owner: "u", Nodes: 1, PPN: 8, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) { t.Error("deleted job must not run") }})
		tb.s.Sleep(20 * time.Millisecond)
		if err := c.Delete(queued); err != nil {
			t.Errorf("Delete: %v", err)
		}
		info, err := c.Wait(queued)
		if err != nil {
			t.Errorf("Wait: %v", err)
		}
		if info.State != pbs.JobDeleted {
			t.Errorf("state = %v", info.State)
		}
		c.Wait(blocker)
	})
}

func TestDeleteUnknownJob(t *testing.T) {
	tb := newTestbed(t, 1, 0, nil)
	tb.run(t, func(c *pbs.Client) {
		if err := c.Delete("nope"); err == nil || !strings.Contains(err.Error(), "unknown job") {
			t.Errorf("err = %v", err)
		}
		if _, err := c.Stat("nope"); err == nil {
			t.Error("Stat of unknown job should fail")
		}
		if _, err := c.Wait("nope"); err == nil {
			t.Error("Wait of unknown job should fail")
		}
	})
}

func TestSubmitInvalidSpec(t *testing.T) {
	tb := newTestbed(t, 1, 0, nil)
	tb.run(t, func(c *pbs.Client) {
		if _, err := c.Submit(pbs.JobSpec{Nodes: 0}); err == nil {
			t.Error("Nodes=0 should be rejected")
		}
		if _, err := c.Submit(pbs.JobSpec{Nodes: 1, PPN: -1}); err == nil {
			t.Error("negative PPN should be rejected")
		}
	})
}

func TestNodesView(t *testing.T) {
	tb := newTestbed(t, 2, 3, nil)
	tb.run(t, func(c *pbs.Client) {
		nodes, err := c.Nodes()
		if err != nil {
			t.Errorf("Nodes: %v", err)
			return
		}
		cn, ac := 0, 0
		for _, n := range nodes {
			switch n.Type {
			case pbs.ComputeNode:
				cn++
				if n.Cores != 8 || !n.Free() || n.FreeCores() != 8 {
					t.Errorf("bad CN view: %+v", n)
				}
			case pbs.AcceleratorNode:
				ac++
				if !n.Free() {
					t.Errorf("bad AC view: %+v", n)
				}
			}
		}
		if cn != 2 || ac != 3 {
			t.Errorf("cn=%d ac=%d", cn, ac)
		}
	})
}

func TestStartDaemonsInvoked(t *testing.T) {
	tb := newTestbed(t, 1, 2, nil)
	var mu sync.Mutex
	started := map[string][]string{}
	tb.moms["cn0"].StartDaemons = func(jobID, cn string, acHosts []string, cause uint64) {
		mu.Lock()
		started[cn] = acHosts
		mu.Unlock()
	}
	tb.run(t, func(c *pbs.Client) {
		id, _ := c.Submit(pbs.JobSpec{Name: "dac", Owner: "u", Nodes: 1, PPN: 1, ACPN: 2, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {}})
		c.Wait(id)
		mu.Lock()
		defer mu.Unlock()
		if len(started["cn0"]) != 2 {
			t.Errorf("StartDaemons got %v", started)
		}
	})
}

func TestJobStateStrings(t *testing.T) {
	cases := map[string]string{
		pbs.JobQueued.String():    "Q",
		pbs.JobRunning.String():   "R",
		pbs.JobCompleted.String(): "C",
		pbs.JobDeleted.String():   "D",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("state string %q != %q", got, want)
		}
	}
	if pbs.JobState(99).String() != "?" {
		t.Error("unknown state should print ?")
	}
	if pbs.DynQueued.String() != "dynqueued" {
		t.Errorf("DynQueued = %q", pbs.DynQueued.String())
	}
	if pbs.DynState(99).String() != "?" {
		t.Error("unknown dyn state should print ?")
	}
	if pbs.AcceleratorNode.String() != "accelerator" || pbs.ComputeNode.String() != "compute" {
		t.Error("node type strings wrong")
	}
}
