package pbs_test

import (
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/netsim"
	"repro/internal/pbs"
	"repro/internal/sim"
)

// newAuditedTestbed is newTestbed with a flight recorder installed on
// the simulation before any daemon is built.
func newAuditedTestbed(t *testing.T, nCN, nAC int) (*testbed, *audit.Recorder) {
	t.Helper()
	rec := audit.New(1 << 16)
	s := sim.New()
	s.SetAudit(rec)
	return newTestbedOn(t, s, nCN, nAC, nil), rec
}

// TestAuditCleanRunZeroBreaches pins the flight recorder's healthy
// path: a full static+dynamic job lifecycle passes every invariant
// check and leaves an exact, deterministic transition trail.
func TestAuditCleanRunZeroBreaches(t *testing.T) {
	tb, rec := newAuditedTestbed(t, 1, 4)
	var jobID string
	tb.run(t, func(c *pbs.Client) {
		id, err := c.Submit(pbs.JobSpec{
			Name: "dyn", Owner: "u", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				cl := pbs.NewClient(env.Cluster.(*netsim.Network), env.Host, env.ServerEP)
				grant, err := cl.DynGet(env.JobID, env.Host, 2)
				if err != nil {
					t.Errorf("DynGet: %v", err)
					return
				}
				if err := cl.DynFree(env.JobID, grant.ClientID); err != nil {
					t.Errorf("DynFree: %v", err)
				}
			},
		})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		jobID = id
		if _, err := c.Wait(id); err != nil {
			t.Errorf("Wait: %v", err)
		}
	})
	if rec.Checks() == 0 {
		t.Fatal("invariant engine never ran")
	}
	if rec.Breaches() != 0 {
		t.Fatalf("%d invariant breaches on a clean run", rec.Breaches())
	}
	var trail []string
	for _, e := range rec.Events() {
		if e.Kind == audit.KindJob && e.Comp == "pbs" && e.Subj == jobID {
			trail = append(trail, e.Detail)
		}
	}
	want := []string{"submit", "queued->running", "dyn-queued", "dyn-scheduling",
		"dyn-forwarding", "dyn-granted", "dyn-free", "running->completed"}
	if len(trail) != len(want) {
		t.Fatalf("transition trail = %v, want %v", trail, want)
	}
	for i := range want {
		if trail[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q (trail %v)", i, trail[i], want[i], trail)
		}
	}
	// The server's digest providers registered at construction.
	rec.CaptureDigests()
	digests := make(map[string]bool)
	for _, e := range rec.Events() {
		if e.Kind == audit.KindDigest {
			digests[e.Subj] = true
		}
	}
	if !digests["pbs.jobs"] || !digests["pbs.nodes"] {
		t.Fatalf("digests captured = %v, want pbs.jobs + pbs.nodes", digests)
	}
}

// runTolerant runs the testbed without failing on server-side
// protocol errors — fault-injection tests poison state on purpose.
func runTolerant(t *testing.T, tb *testbed, fn func(c *pbs.Client)) {
	t.Helper()
	err := tb.s.Run(func() {
		defer tb.net.Close()
		tb.server.Start()
		for _, m := range tb.moms {
			m.Start()
		}
		tb.sched.Start()
		fn(pbs.NewClient(tb.net, "front", pbs.ServerEndpoint))
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func breachNames(rec *audit.Recorder) map[string]int {
	out := make(map[string]int)
	for _, e := range rec.Events() {
		if e.Kind == audit.KindBreach {
			out[e.Subj]++
		}
	}
	return out
}

// TestAuditDetectsDoubleAlloc forces two owners onto one accelerator
// and expects the next scheduler cycle to flag it.
func TestAuditDetectsDoubleAlloc(t *testing.T) {
	tb, rec := newAuditedTestbed(t, 1, 2)
	runTolerant(t, tb, func(c *pbs.Client) {
		tb.server.InjectGhostUseForTest("ac0", "901.ghost", 1)
		tb.server.InjectGhostUseForTest("ac0", "902.ghost", 1)
		tb.s.Sleep(200 * time.Millisecond) // a few 50ms scheduler cycles
	})
	if rec.Breaches() == 0 {
		t.Fatal("double allocation went undetected")
	}
	names := breachNames(rec)
	if names["double-alloc"] == 0 {
		t.Fatalf("no double-alloc breach; breaches = %v", names)
	}
}

// TestAuditDetectsDroppedJob removes a job from the submission ledger
// and expects the job-conservation invariant to flag it.
func TestAuditDetectsDroppedJob(t *testing.T) {
	tb, rec := newAuditedTestbed(t, 1, 0)
	runTolerant(t, tb, func(c *pbs.Client) {
		id, err := c.Submit(pbs.JobSpec{
			Name: "victim", Owner: "u", Nodes: 1, PPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) { tb.s.Sleep(50 * time.Millisecond) },
		})
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		if _, err := c.Wait(id); err != nil {
			t.Errorf("Wait: %v", err)
		}
		tb.server.InjectDropOrderForTest()
		tb.s.Sleep(200 * time.Millisecond)
	})
	names := breachNames(rec)
	if names["jobs.count"] == 0 {
		t.Fatalf("dropped job went undetected; breaches = %v", names)
	}
}
