package pbs

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseResourceRequest parses a qsub -l resource string of the form
// the paper uses:
//
//	nodes=2:ppn=4:acpn=1,walltime=00:30:00
//
// into a JobSpec (name, owner, and script are the caller's). acpn is
// the extension of Section III-C: network-attached accelerators per
// compute node.
func ParseResourceRequest(l string) (JobSpec, error) {
	spec := JobSpec{Nodes: 1, PPN: 1}
	if strings.TrimSpace(l) == "" {
		return spec, fmt.Errorf("pbs: empty resource request")
	}
	for _, clause := range strings.Split(l, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, value, found := strings.Cut(clause, "=")
		if !found {
			return spec, fmt.Errorf("pbs: malformed resource clause %q", clause)
		}
		switch key {
		case "nodes":
			// nodes=k[:ppn=q[:acpn=x]]
			parts := strings.Split(value, ":")
			k, err := strconv.Atoi(parts[0])
			if err != nil || k <= 0 {
				return spec, fmt.Errorf("pbs: bad node count %q", parts[0])
			}
			spec.Nodes = k
			for _, prop := range parts[1:] {
				pk, pv, ok := strings.Cut(prop, "=")
				if !ok {
					return spec, fmt.Errorf("pbs: malformed node property %q", prop)
				}
				v, err := strconv.Atoi(pv)
				if err != nil || v < 0 {
					return spec, fmt.Errorf("pbs: bad value in %q", prop)
				}
				switch pk {
				case "ppn":
					spec.PPN = v
				case "acpn":
					spec.ACPN = v
				default:
					return spec, fmt.Errorf("pbs: unknown node property %q", pk)
				}
			}
		case "walltime":
			d, err := parseWalltime(value)
			if err != nil {
				return spec, err
			}
			spec.Walltime = d
		default:
			return spec, fmt.Errorf("pbs: unknown resource %q", key)
		}
	}
	return spec, nil
}

// parseWalltime accepts HH:MM:SS, MM:SS, or plain seconds.
func parseWalltime(v string) (time.Duration, error) {
	parts := strings.Split(v, ":")
	if len(parts) > 3 {
		return 0, fmt.Errorf("pbs: bad walltime %q", v)
	}
	var total time.Duration
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return 0, fmt.Errorf("pbs: bad walltime %q", v)
		}
		total = total*60 + time.Duration(n)*time.Second
	}
	return total, nil
}

// FormatResourceRequest renders a JobSpec back into qsub -l syntax,
// the inverse of ParseResourceRequest.
func FormatResourceRequest(spec JobSpec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes=%d:ppn=%d", spec.Nodes, spec.PPN)
	if spec.ACPN > 0 {
		fmt.Fprintf(&b, ":acpn=%d", spec.ACPN)
	}
	if spec.Walltime > 0 {
		total := int(spec.Walltime.Seconds())
		fmt.Fprintf(&b, ",walltime=%02d:%02d:%02d", total/3600, (total/60)%60, total%60)
	}
	return b.String()
}
