package pbs_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/pbs"
	"repro/internal/sim"
)

// TestRandomizedWorkloadInvariants drives the batch system with a
// randomized mix of jobs — static accelerators, dynamic get/free,
// failures to allocate, deletions — and checks global invariants at
// the end:
//
//  1. every job reaches a terminal state,
//  2. every node is free (no leaked cores or accelerators),
//  3. every dynamic request ended granted or rejected,
//  4. per-job timestamps are monotone,
//  5. the server logged no protocol anomalies.
func TestRandomizedWorkloadInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runRandomScenario(t, seed)
		})
	}
}

// TestDynQueueProgressesPastDeletedJob: job A's dynamic request is in
// flight when A is killed; B's queued request must still be serviced.
func TestDynQueueProgressesPastDeletedJob(t *testing.T) {
	tb := newTestbed(t, 2, 2, nil)
	tb.run(t, func(c *pbs.Client) {
		aDone := tb.s.NewGate("aDone")
		var mu sync.Mutex
		var aErr, bErr error
		aFinished, bFinished := false, false
		mk := func(errp *bool, errv *error, delay time.Duration) pbs.Script {
			return func(env *pbs.JobEnv) {
				tb.s.Sleep(50*time.Millisecond + delay)
				cl := pbs.NewClient(env.Cluster.(*netsim.Network), env.Host, env.ServerEP)
				_, err := cl.DynGet(env.JobID, env.Host, 1)
				mu.Lock()
				*errp = true
				*errv = err
				mu.Unlock()
				aDone.Broadcast()
				tb.s.Sleep(100 * time.Millisecond)
			}
		}
		a, _ := c.Submit(pbs.JobSpec{Name: "A", Owner: "u", Nodes: 1, PPN: 8, Walltime: time.Minute,
			Script: mk(&aFinished, &aErr, 0)})
		b, _ := c.Submit(pbs.JobSpec{Name: "B", Owner: "u", Nodes: 1, PPN: 8, Walltime: time.Minute,
			Script: mk(&bFinished, &bErr, time.Microsecond)})
		// Kill A while its request is likely at the head.
		tb.s.Sleep(55 * time.Millisecond)
		c.Delete(a)
		c.Wait(a)
		c.Wait(b)
		mu.Lock()
		defer mu.Unlock()
		if !bFinished {
			t.Fatal("B's request never completed")
		}
		if bErr != nil {
			t.Fatalf("B's request failed: %v", bErr)
		}
	})
}

func runRandomScenario(t *testing.T, seed uint64) {
	t.Helper()
	tb := newTestbed(t, 3, 4, nil)
	rng := sim.NewRNG(seed)
	const jobs = 12

	tb.run(t, func(c *pbs.Client) {
		var ids []string
		for i := 0; i < jobs; i++ {
			spec := pbs.JobSpec{
				Name:     fmt.Sprintf("rand-%d", i),
				Owner:    []string{"u1", "u2", "u3"}[rng.Intn(3)],
				Nodes:    1 + rng.Intn(2),
				PPN:      1 + rng.Intn(8),
				ACPN:     rng.Intn(2),
				Walltime: time.Second,
			}
			runFor := time.Duration(10+rng.Intn(80)) * time.Millisecond
			wantDyn := rng.Intn(3) == 0
			dynCount := 1 + rng.Intn(3)
			freeIt := rng.Intn(2) == 0
			spec.Script = func(env *pbs.JobEnv) {
				if wantDyn {
					cl := pbs.NewClient(env.Cluster.(*netsim.Network), env.Host, env.ServerEP)
					if grant, err := cl.DynGet(env.JobID, env.Host, dynCount); err == nil && freeIt {
						cl.DynFree(env.JobID, grant.ClientID)
					}
				}
				tb.s.Sleep(runFor)
			}
			id, err := c.Submit(spec)
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			ids = append(ids, id)
			tb.s.Sleep(time.Duration(rng.Intn(40)) * time.Millisecond)
			// Occasionally qdel a random earlier job.
			if rng.Intn(5) == 0 {
				c.Delete(ids[rng.Intn(len(ids))])
			}
		}
		for _, id := range ids {
			info, err := c.Wait(id)
			if err != nil {
				t.Fatalf("Wait %s: %v", id, err)
			}
			switch info.State {
			case pbs.JobCompleted, pbs.JobDeleted:
			default:
				t.Errorf("job %s in non-terminal state %v", id, info.State)
			}
			if info.State == pbs.JobCompleted {
				if !(info.SubmittedAt <= info.AllocatedAt && info.AllocatedAt <= info.StartedAt && info.StartedAt <= info.CompletedAt) {
					t.Errorf("job %s timestamps out of order: %+v", id, info)
				}
			}
			for _, rec := range info.DynRecords {
				if rec.State != pbs.DynGranted && rec.State != pbs.DynRejected {
					t.Errorf("job %s dyn request %d ended in %v", id, rec.ReqID, rec.State)
				}
				if rec.State == pbs.DynGranted && len(rec.Hosts) == 0 {
					t.Errorf("job %s granted empty host set", id)
				}
			}
		}
		// Let in-flight disassociations settle.
		tb.s.Sleep(200 * time.Millisecond)
		nodes, err := c.Nodes()
		if err != nil {
			t.Fatalf("Nodes: %v", err)
		}
		for _, n := range nodes {
			if len(n.Jobs) != 0 || n.UsedCores != 0 {
				t.Errorf("leaked resources on %s: %+v", n.Name, n)
			}
		}
	})
}
