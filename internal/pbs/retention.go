package pbs

// Job-record retention: the machinery that keeps a resident server at
// steady-state memory. The original batch configuration retains every
// job record forever — the right behavior for post-hoc figure
// extraction, where qstat must see any job ever run, but an open-loop
// service instance submitting millions of jobs would grow the index,
// the submission-order log, and the accounting log without bound.
//
// With ServerParams.RetainCompleted > 0 the server keeps a sliding
// window of terminal records: terminal transitions enqueue the job id
// on doneQ, and at each scheduler-cycle boundary (handleSchedInfo,
// after compactActive has removed terminal ids from every active
// list) the oldest records beyond the window are purged from the
// index and recycled through a free pool, so steady state allocates
// no new records at all. The submission-order log compacts once
// purged ids dominate it, and the audit invariant jobs.count accounts
// for the retired ids (see auditCheckLocked).
//
// All purging happens at the deterministic cycle boundary, never on
// the message path, so results stay byte-identical across -parallel
// levels and the retention window only changes which records are
// still inspectable — not what the cluster computes.

// JobRecordStats reports the server's job-record economy: live
// records in the index, terminal records retained in the window, and
// the cumulative counts of purged records and pool reuses. Soak tests
// assert purged grows while live+retained stays flat, and that reuse
// tracks submissions once the pool warms up.
type JobRecordStats struct {
	Live     int
	Retained int
	Purged   uint64
	Reused   uint64
}

// JobRecords returns the current record statistics.
func (s *Server) JobRecords() JobRecordStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return JobRecordStats{
		Live:     s.index.size() - len(s.doneQ),
		Retained: len(s.doneQ),
		Purged:   s.purged,
		Reused:   s.reused,
	}
}

// acquireJobLocked returns a job record, recycling one from the pool
// when retention has freed any. Callers hold s.mu and must fill every
// identity field; pooled records come back with cleared maps and
// zero-length slices.
func (s *Server) acquireJobLocked() *serverJob {
	if n := len(s.jobPool); n > 0 {
		j := s.jobPool[n-1]
		s.jobPool[n-1] = nil
		s.jobPool = s.jobPool[:n-1]
		s.reused++
		return j
	}
	return &serverJob{info: JobInfo{
		AccHosts: make(map[string][]string),
		DynSets:  make(map[int][]string),
	}}
}

// retireLocked notes a terminal transition. A no-op unless retention
// is on; each job reaches a terminal state exactly once, so ids never
// enqueue twice. Callers hold s.mu.
func (s *Server) retireLocked(id string) {
	if s.params.RetainCompleted > 0 {
		s.doneQ = append(s.doneQ, id)
	}
}

// purgeRetiredLocked drops the oldest terminal records beyond the
// retention window. Called from handleSchedInfo immediately after
// compactActive — every doneQ id is terminal, so none is left on an
// active list — and before auditCheckLocked, so the invariant engine
// sees the post-purge state. Callers hold s.mu.
func (s *Server) purgeRetiredLocked() {
	r := s.params.RetainCompleted
	if r <= 0 {
		return
	}
	k := len(s.doneQ) - r
	if k <= 0 {
		return
	}
	for _, id := range s.doneQ[:k] {
		j, ok := s.index.get(id)
		if !ok {
			continue
		}
		s.index.remove(id)
		s.recycleLocked(j)
		s.retired++
		s.purged++
	}
	s.doneQ = append(s.doneQ[:0], s.doneQ[k:]...)
	// The submission-order log keeps purged ids (the audit digest
	// hashes them as retired); compact it once they dominate, so a
	// long-running service holds O(retention window) ids, not
	// O(jobs ever).
	if s.retired > 256 && s.retired > len(s.order)/2 {
		w := 0
		for _, id := range s.order {
			if _, ok := s.index.get(id); ok {
				s.order[w] = id
				w++
			}
		}
		clear(s.order[w:])
		s.order = s.order[:w]
		s.retired = 0
	}
}

// recycleLocked scrubs a purged record and returns it to the pool,
// keeping its maps and slice capacity for the next submission.
func (s *Server) recycleLocked(j *serverJob) {
	info := &j.info
	clear(info.AccHosts)
	clear(info.DynSets)
	*info = JobInfo{
		Hosts:      info.Hosts[:0],
		AccHosts:   info.AccHosts,
		DynSets:    info.DynSets,
		DynRecords: info.DynRecords[:0],
	}
	s.jobPool = append(s.jobPool, j)
}
