package pbs

import "time"

// Wire protocol of the batch system. Every payload travels over the
// netsim fabric under the "pbs" tag; the receiver dispatches on the
// payload's Go type. Fields named ReplyTo carry the endpoint that
// expects the response; ReqID correlates it.

// --- Client (IFL) <-> server ---

// SubmitReq is qsub.
type SubmitReq struct {
	ReqID   int
	ReplyTo string
	Spec    JobSpec
}

// SubmitResp acknowledges a submission.
type SubmitResp struct {
	ReqID int
	JobID string
	Err   string
}

// StatReq is qstat for one job.
type StatReq struct {
	ReqID   int
	ReplyTo string
	JobID   string
}

// StatResp returns the job view.
type StatResp struct {
	ReqID int
	Info  JobInfo
	Err   string
}

// NodesReq is pbsnodes.
type NodesReq struct {
	ReqID   int
	ReplyTo string
}

// NodesResp returns the node database view.
type NodesResp struct {
	ReqID int
	Nodes []NodeInfo
}

// AlterReq is pbs_alterjob / qalter: change attributes of a queued
// job (the paper's Section III-A names this IFL call). Zero-valued
// fields stay unchanged.
type AlterReq struct {
	ReqID    int
	ReplyTo  string
	JobID    string
	Priority *int
	Walltime time.Duration
	Name     string
}

// AlterResp acknowledges a qalter.
type AlterResp struct {
	ReqID int
	Err   string
}

// ListReq is qstat without arguments: every job.
type ListReq struct {
	ReqID   int
	ReplyTo string
}

// ListResp carries the full queue view in submission order.
type ListResp struct {
	ReqID int
	Jobs  []JobInfo
}

// HoldReq is qhold (Hold true) or qrls (Hold false): a held job stays
// queued but is invisible to the scheduler until released.
type HoldReq struct {
	ReqID   int
	ReplyTo string
	JobID   string
	Hold    bool
}

// HoldResp acknowledges a qhold/qrls.
type HoldResp struct {
	ReqID int
	Err   string
}

// DeleteReq is qdel.
type DeleteReq struct {
	ReqID   int
	ReplyTo string
	JobID   string
}

// DeleteResp acknowledges a deletion.
type DeleteResp struct {
	ReqID int
	Err   string
}

// WaitReq subscribes to a job's completion; the server answers once
// the job completes (immediately if it already did).
type WaitReq struct {
	ReqID   int
	ReplyTo string
	JobID   string
}

// WaitResp reports a completed (or deleted) job.
type WaitResp struct {
	ReqID int
	Info  JobInfo
	Err   string
}

// DynGetReq is the new pbs_dynget() IFL call (paper Section III-B):
// a running job's compute node requests Count additional resources —
// network-attached accelerators by default, or compute nodes for
// malleable jobs (Kind = KindCompute, with PPN cores per node).
type DynGetReq struct {
	ReqID   int
	ReplyTo string
	JobID   string
	CN      string // requesting compute node
	Count   int
	Kind    ResourceKind
	PPN     int // cores per node (KindCompute only)
}

// DynGetResp answers a pbs_dynget. A rejection carries Err and a
// negative ClientID, mirroring the paper's "negative valued reply".
type DynGetResp struct {
	ReqID    int
	ClientID int
	Hosts    []string
	Err      string
}

// DynFreeReq is the new pbs_dynfree() IFL call: release the
// dynamically allocated set identified by ClientID.
type DynFreeReq struct {
	ReqID    int
	ReplyTo  string
	JobID    string
	ClientID int
}

// DynFreeResp acknowledges a release. The server replies positively
// before the moms finish disassociating, as in the paper.
type DynFreeResp struct {
	ReqID int
	Err   string
}

// --- Scheduler <-> server ---

// SchedKick tells the scheduler that server state changed (new job,
// completion, dynamic request). Reason is diagnostic.
//
//lint:ignore handlerexhaustive dispatched by the maui and fifosched scheduler loops, not in this package
type SchedKick struct {
	Reason string
}

// SchedInfoReq is the scheduler pulling queue and node state.
type SchedInfoReq struct {
	ReqID   int
	ReplyTo string
}

// SchedDynView is the scheduler's view of the dynamic request the
// server is currently servicing.
type SchedDynView struct {
	ReqID     int
	JobID     string
	Count     int
	Kind      ResourceKind
	PPN       int
	ArrivedAt time.Duration
}

// SchedInfoResp carries everything one scheduling iteration needs.
//
//lint:ignore handlerexhaustive consumed by the maui and fifosched schedulers, which fetch and Release it
type SchedInfoResp struct {
	ReqID   int
	Queued  []JobInfo      // jobs waiting for allocation, submission order
	Running []JobInfo      // running jobs (for backfill estimates)
	Dyn     []SchedDynView // dynamic request(s) awaiting allocation, FIFO
	Nodes   []NodeInfo
}

// AllocCmd is the scheduler's decision for a queued job: which
// compute nodes to use and which accelerators to bind to each.
// Cause carries the trace-span id of the placement decision so the
// server's alloc span joins the causal chain (0 when untraced).
type AllocCmd struct {
	JobID    string
	Hosts    []string
	AccHosts map[string][]string
	Cause    uint64
}

// DynAllocCmd is the scheduler's decision for a dynamic request.
// Empty Hosts means rejection (not enough accelerators free).
type DynAllocCmd struct {
	ReqID int
	Hosts []string
	Cause uint64 // trace-span id of the scheduling decision
}

// --- Server <-> mom ---

// RunJobMsg makes the receiving mom the mother superior of a job.
type RunJobMsg struct {
	JobID    string
	Spec     JobSpec
	Hosts    []string
	AccHosts map[string][]string
	Cause    uint64 // trace-span id of the server's alloc handling
}

// JoinJobMsg is the JOIN_JOB request from the mother superior to a
// sister mom.
type JoinJobMsg struct {
	JobID   string
	MS      string // mother superior host
	Hosts   []string
	ReplyTo string
}

// JoinAck acknowledges a JOIN_JOB.
type JoinAck struct {
	JobID string
	Host  string
}

// StartTaskMsg launches the job script on a compute node mom. The
// script travels with the message (in-process simulation; a real mom
// would stage the job script file).
type StartTaskMsg struct {
	JobID  string
	Env    *JobEnv
	Script Script
	Cause  uint64 // trace-span id of the mother superior's job start
}

// TaskDoneMsg reports a compute node task's completion to the mother
// superior.
type TaskDoneMsg struct {
	JobID string
	Host  string
}

// JobStartedMsg reports to the server that execution began.
type JobStartedMsg struct {
	JobID string
}

// JobDoneMsg reports to the server that every task finished.
type JobDoneMsg struct {
	JobID string
}

// ReleaseJobMsg tells a mom the job ended; it kills any remaining
// tasks (accelerator daemons) and frees its resources.
type ReleaseJobMsg struct {
	JobID string
}

// DynAddMsg tells the mother superior to incorporate dynamically
// allocated accelerators (server -> MS, then MS drives DYNJOIN_JOB).
type DynAddMsg struct {
	JobID    string
	ReqID    int
	ClientID int
	CN       string // compute node that requested the set
	Hosts    []string
	ReplyTo  string // server endpoint expecting DynAddAck
	Cause    uint64 // trace-span id of the server's dynalloc handling
}

// DynJoinJobMsg is the DYNJOIN_JOB request from the mother superior
// to a newly allocated accelerator mom.
type DynJoinJobMsg struct {
	JobID   string
	MS      string
	ReplyTo string
}

// DynJoinAck acknowledges a DYNJOIN_JOB.
type DynJoinAck struct {
	JobID string
	Host  string
}

// DynAddAck reports to the server that the mother superior finished
// incorporating the new accelerators.
type DynAddAck struct {
	JobID string
	ReqID int
	Cause uint64 // trace-span id of the mom's dynadd handling
}

// UpdateJobMsg refreshes a sister mom's view of the job's host set
// after a dynamic addition or removal.
type UpdateJobMsg struct {
	JobID string
	Hosts []string
}

// DynRemoveMsg tells the mother superior to disassociate a released
// dynamic set (server -> MS, then MS drives DISJOIN_JOB).
type DynRemoveMsg struct {
	JobID    string
	ClientID int
	Hosts    []string
}

// DisJoinJobMsg is the DISJOIN_JOB request: the receiving mom kills
// remaining tasks and leaves the job.
type DisJoinJobMsg struct {
	JobID   string
	ReplyTo string
}

// DisJoinAck acknowledges a DISJOIN_JOB.
type DisJoinAck struct {
	JobID string
	Host  string
}

// AbortJobMsg tells the mother superior to abort a running job
// (qdel).
type AbortJobMsg struct {
	JobID string
}

// HeartbeatMsg is a mom's periodic liveness report to the server (the
// fault-tolerance extension, paper Section VI).
type HeartbeatMsg struct {
	Host string
}

// NodeLostMsg informs the mother superior that one of its job's hosts
// was declared dead; for an accelerator host the job keeps running
// without it.
type NodeLostMsg struct {
	JobID string
	Host  string
}
