package pbs_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/pbs"
)

// TestConcurrentClientsStress submits from many IFL clients at once;
// the single-threaded server must serialize correctly and every job
// must complete with consistent bookkeeping.
func TestConcurrentClientsStress(t *testing.T) {
	tb := newTestbed(t, 3, 3, nil)
	tb.run(t, func(_ *pbs.Client) {
		const clients = 6
		const jobsPer = 4
		grp := tb.s.NewGroup("clients")
		var mu sync.Mutex
		var allIDs []string
		for ci := 0; ci < clients; ci++ {
			ci := ci
			grp.Go(fmt.Sprintf("client%d", ci), func() {
				c := pbs.NewClient(tb.net, fmt.Sprintf("front%d", ci), pbs.ServerEndpoint)
				for j := 0; j < jobsPer; j++ {
					id, err := c.Submit(pbs.JobSpec{
						Name: fmt.Sprintf("c%d-j%d", ci, j), Owner: fmt.Sprintf("u%d", ci),
						Nodes: 1, PPN: 1 + (ci+j)%4, ACPN: (ci + j) % 2,
						Walltime: time.Second,
						Script:   func(env *pbs.JobEnv) { tb.s.Sleep(time.Duration(10+ci*3) * time.Millisecond) },
					})
					if err != nil {
						t.Errorf("Submit: %v", err)
						return
					}
					mu.Lock()
					allIDs = append(allIDs, id)
					mu.Unlock()
				}
			})
		}
		grp.Wait()
		c := pbs.NewClient(tb.net, "collector", pbs.ServerEndpoint)
		mu.Lock()
		ids := append([]string(nil), allIDs...)
		mu.Unlock()
		if len(ids) != clients*jobsPer {
			t.Fatalf("submitted %d jobs", len(ids))
		}
		seen := map[string]bool{}
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("duplicate job id %s", id)
			}
			seen[id] = true
			info, err := c.Wait(id)
			if err != nil {
				t.Fatalf("Wait %s: %v", id, err)
			}
			if info.State != pbs.JobCompleted {
				t.Errorf("job %s state %v", id, info.State)
			}
		}
		nodes, _ := c.Nodes()
		for _, n := range nodes {
			if len(n.Jobs) != 0 {
				t.Errorf("node %s leaked %v", n.Name, n.Jobs)
			}
		}
	})
}

// TestConcurrentStatsDuringRun exercises read RPCs racing the
// lifecycle transitions.
func TestConcurrentStatsDuringRun(t *testing.T) {
	tb := newTestbed(t, 2, 2, nil)
	tb.run(t, func(c *pbs.Client) {
		id, _ := c.Submit(pbs.JobSpec{
			Name: "watched", Owner: "u", Nodes: 1, PPN: 2, ACPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) { tb.s.Sleep(100 * time.Millisecond) },
		})
		grp := tb.s.NewGroup("watchers")
		for w := 0; w < 4; w++ {
			w := w
			grp.Go(fmt.Sprintf("watcher%d", w), func() {
				wc := pbs.NewClient(tb.net, fmt.Sprintf("w%d", w), pbs.ServerEndpoint)
				for i := 0; i < 10; i++ {
					if _, err := wc.Stat(id); err != nil {
						t.Errorf("Stat: %v", err)
						return
					}
					if _, err := wc.Nodes(); err != nil {
						t.Errorf("Nodes: %v", err)
						return
					}
					tb.s.Sleep(7 * time.Millisecond)
				}
			})
		}
		grp.Wait()
		c.Wait(id)
	})
}
