package pbs_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/pbs"
)

func TestPrologueEpilogueRunAroundTask(t *testing.T) {
	tb := newTestbed(t, 1, 0, nil)
	var mu sync.Mutex
	var order []string
	tb.moms["cn0"].Prologue = func(env *pbs.JobEnv) {
		mu.Lock()
		order = append(order, "prologue:"+env.JobID)
		mu.Unlock()
	}
	tb.moms["cn0"].Epilogue = func(env *pbs.JobEnv) {
		mu.Lock()
		order = append(order, "epilogue:"+env.JobID)
		mu.Unlock()
	}
	tb.run(t, func(c *pbs.Client) {
		id, _ := c.Submit(pbs.JobSpec{
			Name: "hooked", Owner: "u", Nodes: 1, PPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				mu.Lock()
				order = append(order, "script:"+env.JobID)
				mu.Unlock()
			},
		})
		c.Wait(id)
		mu.Lock()
		defer mu.Unlock()
		if len(order) != 3 {
			t.Fatalf("order = %v", order)
		}
		if order[0] != "prologue:"+id || order[1] != "script:"+id || order[2] != "epilogue:"+id {
			t.Fatalf("order = %v", order)
		}
	})
}

func TestHooksPerMomOnMultiNodeJob(t *testing.T) {
	tb := newTestbed(t, 2, 0, nil)
	var mu sync.Mutex
	counts := map[string]int{}
	for _, cn := range []string{"cn0", "cn1"} {
		cn := cn
		tb.moms[cn].Prologue = func(env *pbs.JobEnv) {
			mu.Lock()
			counts[cn]++
			mu.Unlock()
		}
	}
	tb.run(t, func(c *pbs.Client) {
		id, _ := c.Submit(pbs.JobSpec{
			Name: "multi", Owner: "u", Nodes: 2, PPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {},
		})
		c.Wait(id)
		mu.Lock()
		defer mu.Unlock()
		if counts["cn0"] != 1 || counts["cn1"] != 1 {
			t.Fatalf("prologue counts = %v", counts)
		}
	})
}
