package pbs

import "time"

// Energy accounting. The paper's introduction motivates accelerators
// and dynamic provisioning with "increased computational power at
// minimized energy consumption levels" and names energy optimization
// as an exascale concern; this model turns the server's busy-time
// integrals into energy figures so policies can be compared in joules
// as well as in makespan.

// PowerModel describes node power draw in watts.
type PowerModel struct {
	// ComputeIdleW and ComputeBusyPerCoreW model a compute node:
	// idle draw plus a linear per-busy-core increment.
	ComputeIdleW        float64
	ComputeBusyPerCoreW float64
	// AccelIdleW and AccelBusyW model a network-attached accelerator
	// (host plus GPU): idle draw and the draw while assigned to a job.
	AccelIdleW float64
	AccelBusyW float64
}

// DefaultPowerModel resembles the paper's era: dual-socket Nehalem
// compute nodes (~200 W idle, ~15 W per busy core) and Fermi-class
// accelerator nodes (~250 W idle, ~450 W under load).
func DefaultPowerModel() PowerModel {
	return PowerModel{
		ComputeIdleW:        200,
		ComputeBusyPerCoreW: 15,
		AccelIdleW:          250,
		AccelBusyW:          450,
	}
}

// EnergyReport aggregates consumption over an interval.
type EnergyReport struct {
	ComputeJoules float64
	AccelJoules   float64
}

// Total returns the cluster's total energy.
func (r EnergyReport) Total() float64 { return r.ComputeJoules + r.AccelJoules }

// Energy converts the accounting integrals into joules for the
// elapsed interval: idle power is paid for the whole interval on
// every node; busy increments follow the busy-time integrals.
func (s *Server) Energy(model PowerModel, elapsed time.Duration) EnergyReport {
	var rep EnergyReport
	sec := elapsed.Seconds()
	if sec <= 0 {
		return rep
	}
	for _, u := range s.Usage() {
		switch u.Type {
		case ComputeNode:
			rep.ComputeJoules += model.ComputeIdleW*sec + model.ComputeBusyPerCoreW*u.BusyCoreSeconds
		case AcceleratorNode:
			busy := u.BusyCoreSeconds
			if busy > sec {
				busy = sec
			}
			rep.AccelJoules += model.AccelIdleW*(sec-busy) + model.AccelBusyW*busy
		}
	}
	return rep
}
