package pbs

import (
	"sort"
	"time"
)

// Accounting: the server keeps per-node busy-time integrals, the
// counterpart of TORQUE's accounting logs. Utilization numbers drive
// the workload-level comparisons (dynamic vs static allocation) and
// the dactrace reports.

// NodeUsage is the accounting view of one node.
type NodeUsage struct {
	Name  string
	Type  NodeType
	Cores int
	// BusyCoreSeconds integrates used cores over time (an accelerator
	// counts as one core while assigned).
	BusyCoreSeconds float64
}

// Utilization reports BusyCoreSeconds relative to full occupancy over
// the elapsed interval.
func (u NodeUsage) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 || u.Cores == 0 {
		return 0
	}
	return u.BusyCoreSeconds / (elapsed.Seconds() * float64(u.Cores))
}

// accrueLocked folds the node's busy time since the last change into
// its integral, based on the pre-mutation view in n.info. Callers
// hold s.mu; refreshLocked invokes it before recomputing the view.
func (s *Server) accrueLocked(n *serverNode) {
	now := s.sim.Now()
	busy := n.info.UsedCores
	if n.info.Type == AcceleratorNode && len(n.info.Jobs) > 0 {
		busy = 1
	}
	n.busyCoreSeconds += float64(busy) * (now - n.lastChange).Seconds()
	n.lastChange = now
}

// Usage returns the accounting snapshot, with integrals flushed to
// the current instant, ordered by node name.
func (s *Server) Usage() []NodeUsage {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]NodeUsage, 0, len(s.nodeOrder))
	for _, name := range s.nodeOrder {
		n := s.nodes[name]
		s.accrueLocked(n)
		out = append(out, NodeUsage{
			Name:            n.info.Name,
			Type:            n.info.Type,
			Cores:           n.info.Cores,
			BusyCoreSeconds: n.busyCoreSeconds,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// ClusterUtilization aggregates compute-core and accelerator
// utilization over the elapsed interval.
func (s *Server) ClusterUtilization(elapsed time.Duration) (compute, accel float64) {
	var cnBusy, cnCap, acBusy, acCap float64
	for _, u := range s.Usage() {
		switch u.Type {
		case ComputeNode:
			cnBusy += u.BusyCoreSeconds
			cnCap += elapsed.Seconds() * float64(u.Cores)
		case AcceleratorNode:
			acBusy += u.BusyCoreSeconds
			acCap += elapsed.Seconds()
		}
	}
	if cnCap > 0 {
		compute = cnBusy / cnCap
	}
	if acCap > 0 {
		accel = acBusy / acCap
	}
	return compute, accel
}
