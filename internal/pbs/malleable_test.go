package pbs_test

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/pbs"
)

// The malleable extension (paper Section V): jobs grow and shrink
// their compute-node set at runtime through the same dynqueued path
// as accelerator requests.

func TestMalleableJobGrowsComputeNodes(t *testing.T) {
	tb := newTestbed(t, 4, 0, nil)
	tb.run(t, func(c *pbs.Client) {
		var grant pbs.DynGrant
		var dynErr, freeErr error
		id, _ := c.Submit(pbs.JobSpec{
			Name: "malleable", Owner: "u", Nodes: 1, PPN: 8, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				cl := pbs.NewClient(env.Cluster.(*netsim.Network), env.Host, env.ServerEP)
				grant, dynErr = cl.DynGetNodes(env.JobID, env.Host, 2, 4)
				if dynErr == nil {
					freeErr = cl.DynFree(env.JobID, grant.ClientID)
				}
			},
		})
		info, err := c.Wait(id)
		if err != nil {
			t.Fatalf("Wait: %v", err)
		}
		if dynErr != nil {
			t.Fatalf("DynGetNodes: %v", dynErr)
		}
		if freeErr != nil {
			t.Fatalf("DynFree: %v", freeErr)
		}
		if len(grant.Hosts) != 2 {
			t.Fatalf("granted hosts = %v", grant.Hosts)
		}
		for _, h := range grant.Hosts {
			if h == info.Hosts[0] {
				t.Errorf("granted the job's own node %s", h)
			}
		}
		if len(info.DynRecords) != 1 {
			t.Fatalf("records = %+v", info.DynRecords)
		}
		rec := info.DynRecords[0]
		if rec.Kind != pbs.KindCompute || rec.PPN != 4 || rec.State != pbs.DynGranted {
			t.Errorf("record = %+v", rec)
		}
		if rec.FreedAt == 0 {
			t.Error("FreedAt not recorded")
		}
		nodes, _ := c.Nodes()
		for _, n := range nodes {
			if len(n.Jobs) != 0 || n.UsedCores != 0 {
				t.Errorf("node %s not cleaned up: %+v", n.Name, n)
			}
		}
	})
}

func TestMalleableRequestRejectedWhenShort(t *testing.T) {
	tb := newTestbed(t, 2, 0, nil)
	tb.run(t, func(c *pbs.Client) {
		var dynErr error
		id, _ := c.Submit(pbs.JobSpec{
			Name: "m", Owner: "u", Nodes: 1, PPN: 8, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				cl := pbs.NewClient(env.Cluster.(*netsim.Network), env.Host, env.ServerEP)
				// Only 1 other node exists; ask for 3.
				_, dynErr = cl.DynGetNodes(env.JobID, env.Host, 3, 1)
			},
		})
		c.Wait(id)
		if dynErr == nil {
			t.Fatal("expected rejection")
		}
	})
}

func TestMalleableDoesNotGrantOwnOrBusyNodes(t *testing.T) {
	tb := newTestbed(t, 3, 0, nil)
	tb.run(t, func(c *pbs.Client) {
		// A second job occupies cn2 entirely.
		blocker, _ := c.Submit(pbs.JobSpec{Name: "blk", Owner: "v", Nodes: 1, PPN: 8, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) { tb.s.Sleep(400 * time.Millisecond) }})
		tb.s.Sleep(100 * time.Millisecond)
		var grant pbs.DynGrant
		var dynErr error
		id, _ := c.Submit(pbs.JobSpec{
			Name: "m", Owner: "u", Nodes: 1, PPN: 8, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				cl := pbs.NewClient(env.Cluster.(*netsim.Network), env.Host, env.ServerEP)
				grant, dynErr = cl.DynGetNodes(env.JobID, env.Host, 1, 8)
			},
		})
		info, _ := c.Wait(id)
		c.Wait(blocker)
		if dynErr != nil {
			t.Fatalf("DynGetNodes: %v", dynErr)
		}
		if len(grant.Hosts) != 1 {
			t.Fatalf("hosts = %v", grant.Hosts)
		}
		if grant.Hosts[0] == info.Hosts[0] {
			t.Error("granted the job's own node")
		}
	})
}

func TestMalleablePPNDefaultsToOne(t *testing.T) {
	tb := newTestbed(t, 2, 0, nil)
	tb.run(t, func(c *pbs.Client) {
		id, _ := c.Submit(pbs.JobSpec{
			Name: "m", Owner: "u", Nodes: 1, PPN: 8, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				cl := pbs.NewClient(env.Cluster.(*netsim.Network), env.Host, env.ServerEP)
				if _, err := cl.DynGetNodes(env.JobID, env.Host, 1, 0); err != nil {
					t.Errorf("DynGetNodes with ppn=0: %v", err)
				}
			},
		})
		info, _ := c.Wait(id)
		if len(info.DynRecords) != 1 || info.DynRecords[0].PPN != 1 {
			t.Errorf("records = %+v", info.DynRecords)
		}
	})
}

func TestResourceKindString(t *testing.T) {
	if pbs.KindAccelerator.String() != "accelerator" || pbs.KindCompute.String() != "compute" {
		t.Fatal("kind strings wrong")
	}
}
