package pbs_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/pbs"
)

func TestAccountingTracksBusyTime(t *testing.T) {
	tb := newTestbed(t, 1, 1, nil)
	tb.run(t, func(c *pbs.Client) {
		id, _ := c.Submit(pbs.JobSpec{
			Name: "acct", Owner: "u", Nodes: 1, PPN: 4, ACPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) { tb.s.Sleep(200 * time.Millisecond) },
		})
		c.Wait(id)
		usage := tb.server.Usage()
		if len(usage) != 2 {
			t.Fatalf("usage entries = %d", len(usage))
		}
		var cnBusy, acBusy float64
		for _, u := range usage {
			switch u.Type {
			case pbs.ComputeNode:
				cnBusy = u.BusyCoreSeconds
			case pbs.AcceleratorNode:
				acBusy = u.BusyCoreSeconds
			}
		}
		// 4 cores for ~0.2s → ~0.8 core-seconds (plus startup slack).
		if cnBusy < 0.8 || cnBusy > 1.2 {
			t.Errorf("compute busy = %v core-seconds, want ≈0.8", cnBusy)
		}
		// 1 accelerator held for the same interval.
		if acBusy < 0.2 || acBusy > 0.3 {
			t.Errorf("accelerator busy = %v, want ≈0.2", acBusy)
		}
	})
}

func TestAccountingIdleClusterIsZero(t *testing.T) {
	tb := newTestbed(t, 2, 2, nil)
	tb.run(t, func(c *pbs.Client) {
		tb.s.Sleep(300 * time.Millisecond)
		for _, u := range tb.server.Usage() {
			if u.BusyCoreSeconds != 0 {
				t.Errorf("idle node %s busy = %v", u.Name, u.BusyCoreSeconds)
			}
		}
		cu, au := tb.server.ClusterUtilization(tb.s.Now())
		if cu != 0 || au != 0 {
			t.Errorf("idle utilization = %v, %v", cu, au)
		}
	})
}

func TestNodeUsageUtilization(t *testing.T) {
	u := pbs.NodeUsage{Name: "cn0", Type: pbs.ComputeNode, Cores: 8, BusyCoreSeconds: 4}
	if got := u.Utilization(time.Second); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
	if got := u.Utilization(0); got != 0 {
		t.Fatalf("zero elapsed should give 0, got %v", got)
	}
	zero := pbs.NodeUsage{Cores: 0}
	if zero.Utilization(time.Second) != 0 {
		t.Fatal("zero-core node should report 0")
	}
}

func TestEnergyModel(t *testing.T) {
	tb := newTestbed(t, 1, 1, nil)
	tb.run(t, func(c *pbs.Client) {
		id, _ := c.Submit(pbs.JobSpec{
			Name: "e", Owner: "u", Nodes: 1, PPN: 4, ACPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) { tb.s.Sleep(200 * time.Millisecond) },
		})
		c.Wait(id)
		elapsed := tb.s.Now()
		model := pbs.DefaultPowerModel()
		rep := tb.server.Energy(model, elapsed)
		sec := elapsed.Seconds()
		// Compute: at least idle for the whole window.
		if rep.ComputeJoules < model.ComputeIdleW*sec {
			t.Errorf("compute joules %v below idle floor %v", rep.ComputeJoules, model.ComputeIdleW*sec)
		}
		// Accelerator: between all-idle and all-busy.
		if rep.AccelJoules < model.AccelIdleW*sec*0.99 || rep.AccelJoules > model.AccelBusyW*sec {
			t.Errorf("accel joules %v outside [%v, %v]", rep.AccelJoules, model.AccelIdleW*sec, model.AccelBusyW*sec)
		}
		if rep.Total() != rep.ComputeJoules+rep.AccelJoules {
			t.Error("Total mismatch")
		}
	})
}

func TestEnergyZeroElapsed(t *testing.T) {
	tb := newTestbed(t, 1, 0, nil)
	tb.run(t, func(c *pbs.Client) {
		rep := tb.server.Energy(pbs.DefaultPowerModel(), 0)
		if rep.Total() != 0 {
			t.Errorf("zero interval should cost zero, got %v", rep.Total())
		}
	})
}

func TestClusterUtilizationDuringRun(t *testing.T) {
	tb := newTestbed(t, 1, 2, nil)
	tb.run(t, func(c *pbs.Client) {
		id, _ := c.Submit(pbs.JobSpec{
			Name: "u", Owner: "u", Nodes: 1, PPN: 8, ACPN: 2, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) { tb.s.Sleep(400 * time.Millisecond) },
		})
		c.Wait(id)
		elapsed := tb.s.Now()
		cu, au := tb.server.ClusterUtilization(elapsed)
		if cu <= 0 || cu > 1 {
			t.Errorf("compute utilization = %v", cu)
		}
		if au <= 0 || au > 1 {
			t.Errorf("accelerator utilization = %v", au)
		}
	})
}
