package pbs

import (
	"testing"
	"testing/quick"
	"time"
)

func TestParseResourceRequest(t *testing.T) {
	spec, err := ParseResourceRequest("nodes=2:ppn=4:acpn=1,walltime=00:30:00")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Nodes != 2 || spec.PPN != 4 || spec.ACPN != 1 || spec.Walltime != 30*time.Minute {
		t.Fatalf("spec = %+v", spec)
	}
}

func TestParseResourceRequestPaperExamples(t *testing.T) {
	// qsub -l nodes=k:ppn=q (paper Section III-A)
	spec, err := ParseResourceRequest("nodes=3:ppn=8")
	if err != nil || spec.Nodes != 3 || spec.PPN != 8 || spec.ACPN != 0 {
		t.Fatalf("spec = %+v, err = %v", spec, err)
	}
	// qsub -l nodes=1:acpn=x (paper Section III-C)
	spec, err = ParseResourceRequest("nodes=1:acpn=6")
	if err != nil || spec.Nodes != 1 || spec.ACPN != 6 {
		t.Fatalf("spec = %+v, err = %v", spec, err)
	}
	if spec.PPN != 1 {
		t.Fatalf("ppn should default to 1, got %d", spec.PPN)
	}
}

func TestParseWalltimeForms(t *testing.T) {
	cases := map[string]time.Duration{
		"nodes=1,walltime=90":       90 * time.Second,
		"nodes=1,walltime=02:30":    150 * time.Second,
		"nodes=1,walltime=01:00:00": time.Hour,
	}
	for in, want := range cases {
		spec, err := ParseResourceRequest(in)
		if err != nil || spec.Walltime != want {
			t.Errorf("%q -> %v, %v (want %v)", in, spec.Walltime, err, want)
		}
	}
}

func TestParseResourceRequestErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"nodes=0",
		"nodes=-1",
		"nodes=x",
		"nodes=1:ppn",
		"nodes=1:ppn=-2",
		"nodes=1:gpus=2",
		"mem=4gb",
		"nodes=1,walltime=1:2:3:4",
		"nodes=1,walltime=ab",
		"nodes",
	} {
		if _, err := ParseResourceRequest(bad); err == nil {
			t.Errorf("ParseResourceRequest(%q) should fail", bad)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	if err := quick.Check(func(nodes, ppn, acpn uint8, wallMin uint16) bool {
		spec := JobSpec{
			Nodes:    int(nodes%8) + 1,
			PPN:      int(ppn%16) + 1,
			ACPN:     int(acpn % 4),
			Walltime: time.Duration(wallMin%1000) * time.Minute,
		}
		s := FormatResourceRequest(spec)
		got, err := ParseResourceRequest(s)
		if err != nil {
			return false
		}
		return got.Nodes == spec.Nodes && got.PPN == spec.PPN &&
			got.ACPN == spec.ACPN && got.Walltime == spec.Walltime
	}, nil); err != nil {
		t.Fatal(err)
	}
}
