package pbs_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/maui"
	"repro/internal/netsim"
	"repro/internal/pbs"
	"repro/internal/sim"
)

// newShardedTestbed mirrors newTestbed with the sharded server fast
// path enabled (and a configurable DYNJOIN cost, the quantity the
// pipelining overlaps).
func newShardedTestbed(t *testing.T, nCN, nAC, shards int, dynJoin time.Duration) *testbed {
	t.Helper()
	s := sim.New()
	net := netsim.New(s, netsim.LinkParams{Latency: 200 * time.Microsecond})
	tb := &testbed{s: s, net: net, moms: make(map[string]*pbs.Mom)}
	tb.server = pbs.NewServer(net, pbs.ServerParams{Processing: time.Millisecond, Shards: shards})
	mp := maui.DefaultParams()
	mp.CycleInterval = 50 * time.Millisecond
	mp.CycleOverhead = 5 * time.Millisecond
	mp.PerJobCost = 2 * time.Millisecond
	mp.DynPerReqCost = 2 * time.Millisecond
	tb.sched = maui.New(net, pbs.ServerEndpoint, mp)
	tb.server.SetScheduler(tb.sched.Endpoint())
	for i := 0; i < nCN; i++ {
		name := cnName(i)
		tb.cns = append(tb.cns, name)
		tb.server.AddNode(name, pbs.ComputeNode, 8)
		m := pbs.NewMom(net, name, pbs.MomParams{JoinCost: time.Millisecond, DynJoinCost: dynJoin, StartCost: time.Millisecond})
		m.Cluster = net
		tb.moms[name] = m
	}
	for i := 0; i < nAC; i++ {
		name := acName(i)
		tb.acs = append(tb.acs, name)
		tb.server.AddNode(name, pbs.AcceleratorNode, 1)
		m := pbs.NewMom(net, name, pbs.MomParams{JoinCost: time.Millisecond, DynJoinCost: dynJoin})
		m.Cluster = net
		tb.moms[name] = m
	}
	return tb
}

// A batch of jobs must run to completion through the sharded server
// exactly as through the faithful one.
func TestShardedServerCompletesWorkload(t *testing.T) {
	tb := newShardedTestbed(t, 4, 2, 4, 2*time.Millisecond)
	tb.run(t, func(c *pbs.Client) {
		var ids []string
		for i := 0; i < 12; i++ {
			id, err := c.Submit(pbs.JobSpec{
				Name: "batch", Owner: "alice", Nodes: 1, PPN: 2,
				Walltime: time.Second,
				Script: func(env *pbs.JobEnv) {
					tb.s.Sleep(20 * time.Millisecond)
				},
			})
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			ids = append(ids, id)
		}
		for _, id := range ids {
			info, err := c.Wait(id)
			if err != nil {
				t.Errorf("Wait(%s): %v", id, err)
				return
			}
			if info.State != pbs.JobCompleted {
				t.Errorf("job %s state = %v", id, info.State)
			}
		}
	})
}

// dynScenarioElapsed runs two concurrent jobs that each issue one
// dynamic node request at the same virtual instant (a barrier inside
// the scripts aligns them, so both requests are queued before the
// scheduler's next cycle observes either) and returns the virtual
// time from the barrier until both grants returned.
func dynScenarioElapsed(t *testing.T, tb *testbed) time.Duration {
	t.Helper()
	var elapsed time.Duration
	tb.run(t, func(c *pbs.Client) {
		var mu sync.Mutex
		ready, done := 0, 0
		var start time.Duration
		gate := tb.s.NewGate("dyn-scenario")
		var ids []string
		for i := 0; i < 2; i++ {
			// PPN 8 fills a node, so the two jobs land on distinct
			// compute nodes and each has its own mother superior; the
			// same-cycle grants then pick distinct free nodes, so the
			// two DYNJOINs run on distinct moms and the only remaining
			// serialization is the server's.
			id, err := c.Submit(pbs.JobSpec{
				Name: "dyn", Owner: "alice", Nodes: 1, PPN: 8,
				Walltime: time.Second,
				Script: func(env *pbs.JobEnv) {
					cl := pbs.NewClient(tb.net, "job-"+env.JobID, pbs.ServerEndpoint)
					defer cl.Close()
					mu.Lock()
					ready++
					if ready == 2 {
						start = tb.s.Now()
					}
					for ready < 2 {
						gate.Wait(&mu)
					}
					mu.Unlock()
					gate.Broadcast()
					// A full-node request (ppn 8): the cycle's shared
					// pool then hands the two requests distinct nodes,
					// so their DYNJOINs run on distinct moms.
					grant, err := cl.DynGetNodes(env.JobID, env.Host, 1, 8)
					if err != nil {
						t.Errorf("DynGetNodes: %v", err)
						return
					}
					if err := cl.DynFree(env.JobID, grant.ClientID); err != nil {
						t.Errorf("DynFree: %v", err)
					}
					mu.Lock()
					done++
					mu.Unlock()
					gate.Broadcast()
				},
			})
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			ids = append(ids, id)
		}
		mu.Lock()
		for done < 2 {
			gate.Wait(&mu)
		}
		elapsed = tb.s.Now() - start
		mu.Unlock()
		for _, id := range ids {
			if _, err := c.Wait(id); err != nil {
				t.Errorf("Wait(%s): %v", id, err)
			}
		}
	})
	return elapsed
}

// Pipelined DYNJOIN: with the faithful server a join in flight blocks
// the next dynamic request end to end, so two concurrent requests pay
// roughly two join costs; the sharded server promotes every queued
// record at once and the joins overlap in virtual time.
func TestShardedDynJoinPipelined(t *testing.T) {
	const dynJoin = 80 * time.Millisecond
	// Shards=1 is the faithful serial loop; only the shard count
	// differs between the two runs.
	faithfulElapsed := dynScenarioElapsed(t, newShardedTestbed(t, 6, 0, 1, dynJoin))
	shardedElapsed := dynScenarioElapsed(t, newShardedTestbed(t, 6, 0, 4, dynJoin))

	if faithfulElapsed <= 0 || shardedElapsed <= 0 {
		t.Fatalf("elapsed not recorded: faithful %v, sharded %v", faithfulElapsed, shardedElapsed)
	}
	// The serial path pays the second join after the first completes;
	// the pipelined path overlaps them, saving at least half a join.
	if shardedElapsed+dynJoin/2 > faithfulElapsed {
		t.Fatalf("pipelined DYNJOIN did not overlap: faithful %v, sharded %v (join %v)",
			faithfulElapsed, shardedElapsed, dynJoin)
	}
}

// The sharded server is still a deterministic discrete-event program:
// the same scenario must produce identical virtual timestamps run to
// run.
func TestShardedServerDeterministic(t *testing.T) {
	runOnce := func() []time.Duration {
		tb := newShardedTestbed(t, 4, 2, 4, 5*time.Millisecond)
		var times []time.Duration
		tb.run(t, func(c *pbs.Client) {
			var ids []string
			for i := 0; i < 8; i++ {
				id, err := c.Submit(pbs.JobSpec{
					Name: "det", Owner: "alice", Nodes: 1, PPN: 2,
					Walltime: time.Second,
					Script: func(env *pbs.JobEnv) {
						tb.s.Sleep(15 * time.Millisecond)
					},
				})
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				ids = append(ids, id)
			}
			for _, id := range ids {
				info, err := c.Wait(id)
				if err != nil {
					t.Errorf("Wait(%s): %v", id, err)
					return
				}
				times = append(times, info.SubmittedAt, info.AllocatedAt, info.StartedAt, info.CompletedAt)
			}
		})
		return times
	}
	a, b := runOnce(), runOnce()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("timestamp vectors differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run-to-run divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
