package pbs

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// White-box tests of the mom's message handling, driving it with raw
// protocol messages.

func momHarness(t *testing.T) (*sim.Simulation, *netsim.Network, *Mom, *netsim.Endpoint) {
	t.Helper()
	s := sim.New()
	net := netsim.New(s, netsim.LinkParams{Latency: 100 * time.Microsecond})
	m := NewMom(net, "cn0", MomParams{JoinCost: time.Millisecond, DynJoinCost: time.Millisecond})
	driver := net.Endpoint("driver")
	// The driver poses as both the server and peer moms.
	net.Endpoint(ServerEndpoint)
	return s, net, m, driver
}

func TestMomJoinAckRoundTrip(t *testing.T) {
	s, net, m, driver := momHarness(t)
	err := s.Run(func() {
		defer net.Close()
		m.Start()
		driver.Send(MomEndpoint("cn0"), "pbs",
			JoinJobMsg{JobID: "j1", MS: "cnX", Hosts: []string{"cnX", "cn0"}, ReplyTo: driver.Name()}, 0)
		msg, err := driver.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		ack, ok := msg.Payload.(JoinAck)
		if !ok || ack.JobID != "j1" || ack.Host != "cn0" {
			t.Fatalf("ack = %#v", msg.Payload)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMomDynJoinAndDisjoin(t *testing.T) {
	s, net, m, driver := momHarness(t)
	err := s.Run(func() {
		defer net.Close()
		m.Start()
		driver.Send(MomEndpoint("cn0"), "pbs",
			DynJoinJobMsg{JobID: "j2", MS: "cnX", ReplyTo: driver.Name()}, 0)
		msg, err := driver.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if ack, ok := msg.Payload.(DynJoinAck); !ok || ack.Host != "cn0" {
			t.Fatalf("ack = %#v", msg.Payload)
		}
		m.mu.Lock()
		_, joined := m.jobs["j2"]
		m.mu.Unlock()
		if !joined {
			t.Fatal("mom did not record the job after DYNJOIN")
		}

		driver.Send(MomEndpoint("cn0"), "pbs", DisJoinJobMsg{JobID: "j2", ReplyTo: driver.Name()}, 0)
		msg, err = driver.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if ack, ok := msg.Payload.(DisJoinAck); !ok || ack.JobID != "j2" {
			t.Fatalf("ack = %#v", msg.Payload)
		}
		m.mu.Lock()
		_, still := m.jobs["j2"]
		m.mu.Unlock()
		if still {
			t.Fatal("mom kept the job after DISJOIN")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMomUpdateJobRefreshesHosts(t *testing.T) {
	s, net, m, driver := momHarness(t)
	err := s.Run(func() {
		defer net.Close()
		m.Start()
		driver.Send(MomEndpoint("cn0"), "pbs",
			JoinJobMsg{JobID: "j3", MS: "cnX", Hosts: []string{"cnX", "cn0"}, ReplyTo: driver.Name()}, 0)
		driver.Recv()
		driver.Send(MomEndpoint("cn0"), "pbs",
			UpdateJobMsg{JobID: "j3", Hosts: []string{"cnX", "cn0", "ac9"}}, 0)
		s.Sleep(10 * time.Millisecond)
		m.mu.Lock()
		hosts := append([]string(nil), m.jobs["j3"].hosts...)
		m.mu.Unlock()
		if len(hosts) != 3 || hosts[2] != "ac9" {
			t.Fatalf("hosts = %v", hosts)
		}

		// NodeLostMsg removes a host again.
		driver.Send(MomEndpoint("cn0"), "pbs", NodeLostMsg{JobID: "j3", Host: "ac9"}, 0)
		s.Sleep(10 * time.Millisecond)
		m.mu.Lock()
		hosts = append([]string(nil), m.jobs["j3"].hosts...)
		m.mu.Unlock()
		if len(hosts) != 2 {
			t.Fatalf("hosts after loss = %v", hosts)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMomReleaseRemovesJob(t *testing.T) {
	s, net, m, driver := momHarness(t)
	err := s.Run(func() {
		defer net.Close()
		m.Start()
		driver.Send(MomEndpoint("cn0"), "pbs",
			JoinJobMsg{JobID: "j4", MS: "cnX", Hosts: nil, ReplyTo: driver.Name()}, 0)
		driver.Recv()
		driver.Send(MomEndpoint("cn0"), "pbs", ReleaseJobMsg{JobID: "j4"}, 0)
		s.Sleep(10 * time.Millisecond)
		m.mu.Lock()
		_, still := m.jobs["j4"]
		m.mu.Unlock()
		if still {
			t.Fatal("mom kept the job after release")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMomStartTaskRunsScriptAndReportsDone(t *testing.T) {
	s, net, m, driver := momHarness(t)
	err := s.Run(func() {
		defer net.Close()
		m.Start()
		ran := false
		env := &JobEnv{JobID: "j5", Host: "cn0", MSHost: "cnX"}
		// The driver poses as the MS mom of host cnX.
		ms := net.Endpoint(MomEndpoint("cnX"))
		driver.Send(MomEndpoint("cn0"), "pbs", StartTaskMsg{
			JobID:  "j5",
			Env:    env,
			Script: func(e *JobEnv) { ran = true },
		}, 0)
		msg, err := ms.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		done, ok := msg.Payload.(TaskDoneMsg)
		if !ok || done.JobID != "j5" || done.Host != "cn0" {
			t.Fatalf("done = %#v", msg.Payload)
		}
		if !ran {
			t.Fatal("script never ran")
		}
		// A nil script completes immediately too.
		driver.Send(MomEndpoint("cn0"), "pbs", StartTaskMsg{JobID: "j6", Env: &JobEnv{Host: "cn0", MSHost: "cnX"}}, 0)
		if msg, err = ms.Recv(); err != nil || msg.Payload.(TaskDoneMsg).JobID != "j6" {
			t.Fatalf("nil-script done = %#v, %v", msg.Payload, err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMomHostAccessor(t *testing.T) {
	s := sim.New()
	net := netsim.New(s, netsim.LinkParams{})
	m := NewMom(net, "cn7", MomParams{})
	if m.Host() != "cn7" {
		t.Fatalf("Host = %q", m.Host())
	}
}
