package pbs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// The accounting log mirrors TORQUE's accounting files: one record
// per lifecycle event, append-only, in a line format that survives a
// round trip through text. Workload analyses (utilization studies,
// trace reconstruction) consume it.

// Accounting record types.
const (
	AcctQueued    = 'Q' // job submitted
	AcctStarted   = 'S' // execution began
	AcctEnded     = 'E' // completed normally
	AcctDeleted   = 'D' // qdel
	AcctFailed    = 'F' // node failure
	AcctDynGrant  = 'G' // dynamic request granted
	AcctDynReject = 'R' // dynamic request rejected
	AcctDynFree   = 'L' // dynamic set released
)

// AccountingRecord is one line of the accounting log.
type AccountingRecord struct {
	At     time.Duration
	Type   byte
	JobID  string
	Detail string
}

// String renders the record in the log's line format:
// "<micros>;<type>;<jobid>;<detail>".
func (r AccountingRecord) String() string {
	return fmt.Sprintf("%d;%c;%s;%s", r.At.Microseconds(), r.Type, r.JobID, r.Detail)
}

// account appends a record and mirrors it onto the trace bus, so the
// accounting log and the trace timeline can be cross-checked
// record-for-record.
func (s *Server) account(typ byte, jobID, format string, args ...any) {
	rec := AccountingRecord{
		At:     s.sim.Now(),
		Type:   typ,
		JobID:  jobID,
		Detail: fmt.Sprintf(format, args...),
	}
	s.mu.Lock()
	s.acct = append(s.acct, rec)
	// Online service mode bounds the in-memory log: keep the newest
	// AcctRing records, compacting at 2x so appends stay amortized O(1).
	if r := s.params.AcctRing; r > 0 && len(s.acct) > 2*r {
		s.acct = append(s.acct[:0], s.acct[len(s.acct)-r:]...)
	}
	s.mu.Unlock()
	if trc := s.sim.Tracer(); trc != nil {
		trc.InstantAt(ServerTrack, "acct."+string(rec.Type), rec.At,
			"job", rec.JobID, "detail", rec.Detail)
	}
}

// AccountingLog returns a snapshot of all records in order.
func (s *Server) AccountingLog() []AccountingRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]AccountingRecord(nil), s.acct...)
}

// WriteAccountingLog writes records in line format.
func WriteAccountingLog(w io.Writer, recs []AccountingRecord) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		if _, err := fmt.Fprintln(bw, r.String()); err != nil {
			return fmt.Errorf("pbs: write accounting log: %w", err)
		}
	}
	return bw.Flush()
}

// ReadAccountingLog parses a log written by WriteAccountingLog.
func ReadAccountingLog(r io.Reader) ([]AccountingRecord, error) {
	var out []AccountingRecord
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.SplitN(text, ";", 4)
		if len(parts) != 4 || len(parts[1]) != 1 {
			return nil, fmt.Errorf("pbs: accounting log line %d malformed", line)
		}
		us, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("pbs: accounting log line %d: %w", line, err)
		}
		out = append(out, AccountingRecord{
			At:     time.Duration(us) * time.Microsecond,
			Type:   parts[1][0],
			JobID:  parts[2],
			Detail: parts[3],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pbs: accounting log scan: %w", err)
	}
	return out, nil
}
