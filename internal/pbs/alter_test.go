package pbs_test

import (
	"testing"
	"time"

	"repro/internal/pbs"
)

func TestAlterRaisesQueuedJobPriority(t *testing.T) {
	tb := newTestbed(t, 1, 0, nil)
	tb.run(t, func(c *pbs.Client) {
		blocker, _ := c.Submit(pbs.JobSpec{Name: "blk", Owner: "u", Nodes: 1, PPN: 8, Walltime: 100 * time.Millisecond,
			Script: func(env *pbs.JobEnv) { tb.s.Sleep(100 * time.Millisecond) }})
		first, _ := c.Submit(pbs.JobSpec{Name: "first", Owner: "u", Nodes: 1, PPN: 8, Walltime: 50 * time.Millisecond,
			Script: func(env *pbs.JobEnv) { tb.s.Sleep(10 * time.Millisecond) }})
		second, _ := c.Submit(pbs.JobSpec{Name: "second", Owner: "u", Nodes: 1, PPN: 8, Walltime: 50 * time.Millisecond,
			Script: func(env *pbs.JobEnv) { tb.s.Sleep(10 * time.Millisecond) }})
		// qalter the later job above the earlier one.
		prio := 1000
		if err := c.Alter(second, &prio, 0, ""); err != nil {
			t.Fatalf("Alter: %v", err)
		}
		c.Wait(blocker)
		fi, _ := c.Wait(first)
		si, _ := c.Wait(second)
		if si.StartedAt >= fi.StartedAt {
			t.Errorf("altered job started %v, unaltered %v — priority ignored", si.StartedAt, fi.StartedAt)
		}
		if si.Spec.Priority != 1000 {
			t.Errorf("priority = %d", si.Spec.Priority)
		}
	})
}

func TestAlterWalltimeAndName(t *testing.T) {
	tb := newTestbed(t, 1, 0, nil)
	tb.run(t, func(c *pbs.Client) {
		blocker, _ := c.Submit(pbs.JobSpec{Name: "blk", Owner: "u", Nodes: 1, PPN: 8, Walltime: 50 * time.Millisecond,
			Script: func(env *pbs.JobEnv) { tb.s.Sleep(50 * time.Millisecond) }})
		id, _ := c.Submit(pbs.JobSpec{Name: "old", Owner: "u", Nodes: 1, PPN: 8, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {}})
		if err := c.Alter(id, nil, 2*time.Second, "renamed"); err != nil {
			t.Fatalf("Alter: %v", err)
		}
		info, _ := c.Stat(id)
		if info.Spec.Walltime != 2*time.Second || info.Spec.Name != "renamed" {
			t.Errorf("spec = %+v", info.Spec)
		}
		c.Wait(blocker)
		c.Wait(id)
	})
}

func TestAlterStartedJobFails(t *testing.T) {
	tb := newTestbed(t, 1, 0, nil)
	tb.run(t, func(c *pbs.Client) {
		id, _ := c.Submit(pbs.JobSpec{Name: "run", Owner: "u", Nodes: 1, PPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) { tb.s.Sleep(200 * time.Millisecond) }})
		tb.s.Sleep(100 * time.Millisecond) // it is running now
		prio := 5
		if err := c.Alter(id, &prio, 0, ""); err == nil {
			t.Error("qalter of a started job should fail")
		}
		if err := c.Alter("ghost", &prio, 0, ""); err == nil {
			t.Error("qalter of unknown job should fail")
		}
		c.Wait(id)
	})
}

func TestListAllJobs(t *testing.T) {
	tb := newTestbed(t, 1, 0, nil)
	tb.run(t, func(c *pbs.Client) {
		var ids []string
		for i := 0; i < 3; i++ {
			id, _ := c.Submit(pbs.JobSpec{Name: "j", Owner: "u", Nodes: 1, PPN: 2, Walltime: time.Second,
				Script: func(env *pbs.JobEnv) {}})
			ids = append(ids, id)
		}
		for _, id := range ids {
			c.Wait(id)
		}
		jobs, err := c.List()
		if err != nil {
			t.Fatalf("List: %v", err)
		}
		if len(jobs) != 3 {
			t.Fatalf("list = %d jobs", len(jobs))
		}
		for i, j := range jobs {
			if j.ID != ids[i] {
				t.Errorf("order: job %d = %s, want %s", i, j.ID, ids[i])
			}
			if j.State != pbs.JobCompleted {
				t.Errorf("job %s state %v", j.ID, j.State)
			}
		}
	})
}
