package pbs_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/maui"
	"repro/internal/netsim"
	"repro/internal/pbs"
	"repro/internal/sim"
)

// ftTestbed is a testbed with heartbeats and the failure detector
// enabled.
func ftTestbed(t *testing.T, nCN, nAC int) *testbed {
	t.Helper()
	s := sim.New()
	net := netsim.New(s, netsim.LinkParams{Latency: 200 * time.Microsecond})
	tb := &testbed{s: s, net: net, moms: make(map[string]*pbs.Mom)}
	tb.server = pbs.NewServer(net, pbs.ServerParams{
		Processing: time.Millisecond,
		DeadAfter:  200 * time.Millisecond,
	})
	mp := maui.DefaultParams()
	mp.CycleInterval = 50 * time.Millisecond
	mp.CycleOverhead = 5 * time.Millisecond
	mp.PerJobCost = 2 * time.Millisecond
	mp.DynPerReqCost = 2 * time.Millisecond
	tb.sched = maui.New(net, pbs.ServerEndpoint, mp)
	tb.server.SetScheduler(tb.sched.Endpoint())
	momParams := pbs.MomParams{
		JoinCost:       time.Millisecond,
		DynJoinCost:    2 * time.Millisecond,
		StartCost:      time.Millisecond,
		HeartbeatEvery: 40 * time.Millisecond,
	}
	for i := 0; i < nCN; i++ {
		name := cnName(i)
		tb.cns = append(tb.cns, name)
		tb.server.AddNode(name, pbs.ComputeNode, 8)
		m := pbs.NewMom(net, name, momParams)
		m.Cluster = net
		tb.moms[name] = m
	}
	for i := 0; i < nAC; i++ {
		name := acName(i)
		tb.acs = append(tb.acs, name)
		tb.server.AddNode(name, pbs.AcceleratorNode, 1)
		m := pbs.NewMom(net, name, momParams)
		m.Cluster = net
		tb.moms[name] = m
	}
	return tb
}

func TestHeartbeatsKeepNodesUp(t *testing.T) {
	tb := ftTestbed(t, 1, 2)
	tb.run(t, func(c *pbs.Client) {
		tb.s.Sleep(time.Second) // many detection windows
		nodes, err := c.Nodes()
		if err != nil {
			t.Fatalf("Nodes: %v", err)
		}
		for _, n := range nodes {
			if n.Down {
				t.Errorf("node %s wrongly marked down", n.Name)
			}
		}
	})
}

func TestSilentNodeMarkedDownAndExcluded(t *testing.T) {
	tb := ftTestbed(t, 1, 2)
	tb.run(t, func(c *pbs.Client) {
		tb.net.SetHostDown("ac1", true) // heartbeats from ac1 vanish
		tb.s.Sleep(600 * time.Millisecond)
		nodes, _ := c.Nodes()
		downs := map[string]bool{}
		for _, n := range nodes {
			downs[n.Name] = n.Down
		}
		if !downs["ac1"] {
			t.Fatalf("ac1 not marked down: %v", downs)
		}
		if downs["ac0"] || downs["cn0"] {
			t.Fatalf("healthy nodes marked down: %v", downs)
		}
		// A dynamic request for 2 accelerators must now be rejected:
		// only ac0 is alive.
		var dynErr error
		id, _ := c.Submit(pbs.JobSpec{
			Name: "j", Owner: "u", Nodes: 1, PPN: 1, ACPN: 0, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				cl := pbs.NewClient(env.Cluster.(*netsim.Network), env.Host, env.ServerEP)
				_, dynErr = cl.DynGet(env.JobID, env.Host, 2)
			},
		})
		c.Wait(id)
		if dynErr == nil {
			t.Error("DynGet(2) should be rejected with one accelerator down")
		}
	})
}

func TestDownNodeRecoversOnHeartbeat(t *testing.T) {
	tb := ftTestbed(t, 1, 1)
	tb.run(t, func(c *pbs.Client) {
		tb.net.SetHostDown("ac0", true)
		tb.s.Sleep(600 * time.Millisecond)
		nodes, _ := c.Nodes()
		if !nodes[1].Down {
			t.Fatalf("ac0 should be down: %+v", nodes)
		}
		tb.net.SetHostDown("ac0", false)
		tb.s.Sleep(300 * time.Millisecond)
		nodes, _ = c.Nodes()
		if nodes[1].Down {
			t.Fatalf("ac0 should have recovered: %+v", nodes)
		}
		// And it is allocatable again.
		var got int
		id, _ := c.Submit(pbs.JobSpec{
			Name: "j", Owner: "u", Nodes: 1, PPN: 1, ACPN: 0, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				cl := pbs.NewClient(env.Cluster.(*netsim.Network), env.Host, env.ServerEP)
				if g, err := cl.DynGet(env.JobID, env.Host, 1); err == nil {
					got = len(g.Hosts)
				}
			},
		})
		c.Wait(id)
		if got != 1 {
			t.Errorf("recovered accelerator not allocatable (got %d)", got)
		}
	})
}

func TestComputeNodeFailureFailsJob(t *testing.T) {
	tb := ftTestbed(t, 2, 1)
	tb.run(t, func(c *pbs.Client) {
		started := tb.s.NewGate("started")
		var mu sync.Mutex
		running := false
		id, _ := c.Submit(pbs.JobSpec{
			Name: "victim", Owner: "u", Nodes: 1, PPN: 8, ACPN: 1, Walltime: time.Minute,
			Script: func(env *pbs.JobEnv) {
				mu.Lock()
				running = true
				mu.Unlock()
				started.Broadcast()
				tb.s.Sleep(time.Hour) // would run forever
			},
		})
		mu.Lock()
		for !running {
			started.Wait(&mu)
		}
		mu.Unlock()
		info, _ := c.Stat(id)
		cn := info.Hosts[0]
		tb.net.SetHostDown(cn, true)
		final, err := c.Wait(id)
		if err != nil {
			t.Fatalf("Wait: %v", err)
		}
		if final.State != pbs.JobFailed {
			t.Fatalf("state = %v, want JobFailed", final.State)
		}
		// All resources released, including the accelerator.
		nodes, _ := c.Nodes()
		for _, n := range nodes {
			if n.Name != cn && len(n.Jobs) != 0 {
				t.Errorf("node %s still holds %v", n.Name, n.Jobs)
			}
		}
	})
}

func TestAcceleratorFailureDropsFromRunningJob(t *testing.T) {
	tb := ftTestbed(t, 1, 2)
	tb.run(t, func(c *pbs.Client) {
		started := tb.s.NewGate("started")
		var mu sync.Mutex
		running := false
		id, _ := c.Submit(pbs.JobSpec{
			Name: "j", Owner: "u", Nodes: 1, PPN: 1, ACPN: 2, Walltime: time.Minute,
			Script: func(env *pbs.JobEnv) {
				mu.Lock()
				running = true
				mu.Unlock()
				started.Broadcast()
				tb.s.Sleep(time.Second)
			},
		})
		mu.Lock()
		for !running {
			started.Wait(&mu)
		}
		mu.Unlock()
		tb.net.SetHostDown("ac0", true)
		tb.s.Sleep(600 * time.Millisecond)
		info, _ := c.Stat(id)
		if info.State != pbs.JobRunning {
			t.Fatalf("job should survive accelerator loss, state = %v", info.State)
		}
		if got := info.AccHosts[info.Hosts[0]]; len(got) != 1 || got[0] != "ac1" {
			t.Fatalf("AccHosts after failure = %v, want [ac1]", got)
		}
		final, _ := c.Wait(id)
		if final.State != pbs.JobCompleted {
			t.Fatalf("final state = %v", final.State)
		}
	})
}

func TestNodeDownForTestHook(t *testing.T) {
	tb := newTestbed(t, 1, 1, nil)
	tb.run(t, func(c *pbs.Client) {
		tb.server.NodeDownForTest("ac0")
		nodes, _ := c.Nodes()
		if !nodes[1].Down {
			t.Fatalf("hook did not mark node down: %+v", nodes)
		}
		if nodes[1].Free() {
			t.Fatal("down node reports free")
		}
		tb.server.NodeDownForTest("ac0") // idempotent
		tb.server.NodeDownForTest("ghost")
	})
}

func TestJobFailedStateString(t *testing.T) {
	if pbs.JobFailed.String() != "F" {
		t.Fatalf("JobFailed = %q", pbs.JobFailed.String())
	}
}
