package pbs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Client is TORQUE's Interface Library (IFL): the client-side API for
// submitting and managing jobs, extended with DynGet/DynFree for the
// DAC environment. A Client is safe for concurrent use by multiple
// actors; every call blocks until the server responds.
type Client struct {
	net      *netsim.Network
	sim      *sim.Simulation
	ep       *netsim.Endpoint
	serverEP string

	mu      sync.Mutex
	nextReq int
}

// NewClient creates an IFL client with its own fabric endpoint. name
// distinguishes multiple clients (pass the calling host). The
// uniquifying sequence number is per-fabric, so identical runs mint
// identical endpoint names and audit recordings stay byte-identical.
func NewClient(net *netsim.Network, name, serverEP string) *Client {
	seq := net.NameSeq()
	return &Client{
		net:      net,
		sim:      net.Sim(),
		ep:       net.Endpoint(fmt.Sprintf("ifl/%s#%d", name, seq)),
		serverEP: serverEP,
	}
}

func (c *Client) reqID() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextReq++
	return c.nextReq
}

// call performs one request/response round trip and returns the
// response payload; the message envelope goes straight back to the
// fabric arena.
func (c *Client) call(req any, match func(m *netsim.Message) bool, timeout time.Duration) (any, error) {
	if err := c.ep.Send(c.serverEP, "pbs", req, 0); err != nil {
		return nil, err
	}
	var m *netsim.Message
	var err error
	if timeout > 0 {
		m, err = c.ep.RecvMatchTimeout(match, timeout)
	} else {
		m, err = c.ep.RecvMatch(match)
	}
	if err != nil {
		return nil, err
	}
	payload := m.Payload
	m.Release()
	return payload, nil
}

// Submit is qsub: it enqueues the job and returns its id.
func (c *Client) Submit(spec JobSpec) (string, error) {
	id := c.reqID()
	m, err := c.call(SubmitReq{ReqID: id, ReplyTo: c.ep.Name(), Spec: spec}, func(m *netsim.Message) bool {
		r, ok := m.Payload.(SubmitResp)
		return ok && r.ReqID == id
	}, 0)
	if err != nil {
		return "", err
	}
	resp := m.(SubmitResp)
	if resp.Err != "" {
		return "", errors.New(resp.Err)
	}
	return resp.JobID, nil
}

// Stat is qstat for one job.
func (c *Client) Stat(jobID string) (JobInfo, error) {
	id := c.reqID()
	m, err := c.call(StatReq{ReqID: id, ReplyTo: c.ep.Name(), JobID: jobID}, func(m *netsim.Message) bool {
		r, ok := m.Payload.(StatResp)
		return ok && r.ReqID == id
	}, 0)
	if err != nil {
		return JobInfo{}, err
	}
	resp := m.(StatResp)
	if resp.Err != "" {
		return JobInfo{}, errors.New(resp.Err)
	}
	return resp.Info, nil
}

// Nodes is pbsnodes: the node database view.
func (c *Client) Nodes() ([]NodeInfo, error) {
	id := c.reqID()
	m, err := c.call(NodesReq{ReqID: id, ReplyTo: c.ep.Name()}, func(m *netsim.Message) bool {
		r, ok := m.Payload.(NodesResp)
		return ok && r.ReqID == id
	}, 0)
	if err != nil {
		return nil, err
	}
	return m.(NodesResp).Nodes, nil
}

// Alter is pbs_alterjob / qalter: change a queued job's priority,
// walltime estimate, or name. Pass nil/zero to leave a field alone.
func (c *Client) Alter(jobID string, priority *int, walltime time.Duration, name string) error {
	id := c.reqID()
	m, err := c.call(AlterReq{
		ReqID: id, ReplyTo: c.ep.Name(), JobID: jobID,
		Priority: priority, Walltime: walltime, Name: name,
	}, func(m *netsim.Message) bool {
		r, ok := m.Payload.(AlterResp)
		return ok && r.ReqID == id
	}, 0)
	if err != nil {
		return err
	}
	if resp := m.(AlterResp); resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// Hold is qhold: keep a queued job from being scheduled.
func (c *Client) Hold(jobID string) error { return c.hold(jobID, true) }

// Release is qrls: make a held job schedulable again.
func (c *Client) Release(jobID string) error { return c.hold(jobID, false) }

func (c *Client) hold(jobID string, hold bool) error {
	id := c.reqID()
	m, err := c.call(HoldReq{ReqID: id, ReplyTo: c.ep.Name(), JobID: jobID, Hold: hold},
		func(m *netsim.Message) bool {
			r, ok := m.Payload.(HoldResp)
			return ok && r.ReqID == id
		}, 0)
	if err != nil {
		return err
	}
	if resp := m.(HoldResp); resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// List is qstat without arguments: every job in submission order.
func (c *Client) List() ([]JobInfo, error) {
	id := c.reqID()
	m, err := c.call(ListReq{ReqID: id, ReplyTo: c.ep.Name()}, func(m *netsim.Message) bool {
		r, ok := m.Payload.(ListResp)
		return ok && r.ReqID == id
	}, 0)
	if err != nil {
		return nil, err
	}
	return m.(ListResp).Jobs, nil
}

// Delete is qdel.
func (c *Client) Delete(jobID string) error {
	id := c.reqID()
	m, err := c.call(DeleteReq{ReqID: id, ReplyTo: c.ep.Name(), JobID: jobID}, func(m *netsim.Message) bool {
		r, ok := m.Payload.(DeleteResp)
		return ok && r.ReqID == id
	}, 0)
	if err != nil {
		return err
	}
	if resp := m.(DeleteResp); resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// Wait blocks until the job completes (or is deleted) and returns its
// final info.
func (c *Client) Wait(jobID string) (JobInfo, error) {
	id := c.reqID()
	m, err := c.call(WaitReq{ReqID: id, ReplyTo: c.ep.Name(), JobID: jobID}, func(m *netsim.Message) bool {
		r, ok := m.Payload.(WaitResp)
		return ok && r.ReqID == id
	}, 0)
	if err != nil {
		return JobInfo{}, err
	}
	resp := m.(WaitResp)
	if resp.Err != "" {
		return JobInfo{}, errors.New(resp.Err)
	}
	return resp.Info, nil
}

// DynGet is the new pbs_dynget() call: request count additional
// network-attached accelerators for a running job. It blocks until
// the server replies — with a grant, or with an error when not enough
// accelerators are available (the application then continues with its
// existing set, paper Section II-B).
func (c *Client) DynGet(jobID, cn string, count int) (DynGrant, error) {
	id := c.reqID()
	m, err := c.call(DynGetReq{ReqID: id, ReplyTo: c.ep.Name(), JobID: jobID, CN: cn, Count: count},
		func(m *netsim.Message) bool {
			r, ok := m.Payload.(DynGetResp)
			return ok && r.ReqID == id
		}, 0)
	if err != nil {
		return DynGrant{}, err
	}
	resp := m.(DynGetResp)
	if resp.Err != "" {
		return DynGrant{ClientID: resp.ClientID}, errors.New(resp.Err)
	}
	return DynGrant{ClientID: resp.ClientID, Hosts: resp.Hosts}, nil
}

// DynGetNodes requests count additional compute nodes with ppn cores
// each for a running job — the malleable-application extension the
// paper sketches in Section V. It follows the same dynqueued
// top-priority path as accelerator requests and returns the granted
// hosts; release the set with DynFree.
func (c *Client) DynGetNodes(jobID, cn string, count, ppn int) (DynGrant, error) {
	id := c.reqID()
	m, err := c.call(DynGetReq{
		ReqID: id, ReplyTo: c.ep.Name(), JobID: jobID, CN: cn,
		Count: count, Kind: KindCompute, PPN: ppn,
	}, func(m *netsim.Message) bool {
		r, ok := m.Payload.(DynGetResp)
		return ok && r.ReqID == id
	}, 0)
	if err != nil {
		return DynGrant{}, err
	}
	resp := m.(DynGetResp)
	if resp.Err != "" {
		return DynGrant{ClientID: resp.ClientID}, errors.New(resp.Err)
	}
	return DynGrant{ClientID: resp.ClientID, Hosts: resp.Hosts}, nil
}

// DynFree is the new pbs_dynfree() call: release the dynamic set
// identified by clientID. The server acknowledges immediately and
// disassociates the moms in the background.
func (c *Client) DynFree(jobID string, clientID int) error {
	id := c.reqID()
	m, err := c.call(DynFreeReq{ReqID: id, ReplyTo: c.ep.Name(), JobID: jobID, ClientID: clientID},
		func(m *netsim.Message) bool {
			r, ok := m.Payload.(DynFreeResp)
			return ok && r.ReqID == id
		}, 0)
	if err != nil {
		return err
	}
	if resp := m.(DynFreeResp); resp.Err != "" {
		return errors.New(resp.Err)
	}
	return nil
}

// Close releases the client's endpoint.
func (c *Client) Close() { c.ep.Close() }
