package pbs

// Test-only fault hooks. They mutate server state in ways the
// production handlers never do, so the audit invariant engine's
// true-positive paths can be exercised end to end. Living in an
// _test.go file, they are invisible to release builds.

// InjectGhostUseForTest force-adds an owner to a node's usedBy ledger
// without refreshing the node's public view — the raw material for
// double-allocation and view-divergence breaches.
func (s *Server) InjectGhostUseForTest(host, jobID string, cores int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.nodes[host]; ok {
		n.usedBy[jobID] = cores
	}
}

// InjectDropOrderForTest removes the most recent entry from the
// submission ledger while leaving the job index untouched — a "lost
// job" the jobs.count invariant must catch.
func (s *Server) InjectDropOrderForTest() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.order) > 0 {
		s.order = s.order[:len(s.order)-1]
	}
}
