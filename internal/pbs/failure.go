package pbs

import (
	"errors"

	"repro/internal/audit"
	"repro/internal/netsim"
)

// Fault tolerance (the paper's outlook, Section VI): moms report
// liveness through periodic heartbeats; a failure detector on the
// server marks silent nodes down, removes lost accelerators from
// their jobs (the application continues with the remaining set, just
// as after a rejected dynamic request), and fails jobs whose compute
// node died. Recovered nodes return to the pool on their next
// heartbeat.

// startHeartbeats spawns the mom's heartbeat sender when enabled.
func (m *Mom) startHeartbeats() {
	if m.params.HeartbeatEvery <= 0 {
		return
	}
	m.sim.Go("heartbeat@"+m.host, func() {
		for {
			m.sim.Sleep(m.params.HeartbeatEvery)
			if err := m.ep.Send(ServerEndpoint, "pbs", HeartbeatMsg{Host: m.host}, 0); err != nil {
				return // fabric closed
			}
		}
	})
}

// startFailureDetector spawns the server's sweep actor when enabled.
func (s *Server) startFailureDetector() {
	if s.params.DeadAfter <= 0 {
		return
	}
	period := s.params.DeadAfter / 4
	if period <= 0 {
		period = s.params.DeadAfter
	}
	mon := s.net.Endpoint(ServerEndpoint + "/monitor")
	s.sim.Go("pbs_server/monitor", func() {
		for {
			m, err := mon.RecvTimeout(period)
			m.Release()
			if errors.Is(err, netsim.ErrTimeout) {
				s.sweepDeadNodes()
				continue
			}
			if err != nil {
				return // fabric closed
			}
		}
	})
}

// heartbeat records a liveness report, reviving a down node.
func (s *Server) heartbeat(host string) {
	s.mu.Lock()
	n, ok := s.nodes[host]
	if !ok {
		s.mu.Unlock()
		return
	}
	s.lastSeen[host] = s.sim.Now()
	revived := n.info.Down
	if revived {
		n.info.Down = false
		s.aud.Record(audit.KindNode, "pbs", host, "up", int64(n.info.Cores-n.info.UsedCores), int64(len(n.usedBy)))
	}
	s.mu.Unlock()
	if revived {
		s.kickScheduler("node-up:" + host)
	}
}

// sweepDeadNodes declares nodes dead after DeadAfter of silence.
func (s *Server) sweepDeadNodes() {
	now := s.sim.Now()
	s.mu.Lock()
	var dead []string
	for name, n := range s.nodes {
		if n.info.Down {
			continue
		}
		if now-s.lastSeen[name] > s.params.DeadAfter {
			dead = append(dead, name)
		}
	}
	s.mu.Unlock()
	for _, name := range dead {
		s.nodeDown(name)
	}
}

// nodeDown marks one node failed and repairs the jobs touching it.
func (s *Server) nodeDown(host string) {
	s.mu.Lock()
	n, ok := s.nodes[host]
	if !ok || n.info.Down {
		s.mu.Unlock()
		return
	}
	n.info.Down = true
	s.aud.Record(audit.KindNode, "pbs", host, "down", 0, int64(len(n.usedBy)))
	affected := make([]string, 0, len(n.usedBy))
	for jobID := range n.usedBy {
		affected = append(affected, jobID)
	}
	isCN := n.info.Type == ComputeNode
	s.mu.Unlock()

	for _, jobID := range affected {
		if isCN {
			s.failJob(jobID, host)
		} else {
			s.dropAccelerator(jobID, host)
		}
	}
	s.kickScheduler("node-down:" + host)
}

// failJob ends a job whose compute node died.
func (s *Server) failJob(jobID, lostHost string) {
	s.mu.Lock()
	j, ok := s.index.get(jobID)
	if !ok || (j.info.State != JobRunning && j.info.State != JobQueued) {
		s.mu.Unlock()
		return
	}
	wasRunning := j.info.State == JobRunning
	j.info.State = JobFailed
	j.info.CompletedAt = s.sim.Now()
	s.aud.Record(audit.KindJob, "pbs", jobID, audToFailed, 0, 0)
	hosts := jobHosts(j.info)
	s.freeJobLocked(jobID)
	s.retireLocked(jobID)
	var rejects []*DynRecord
	for _, rec := range s.dynQ {
		if rec.JobID == jobID && rec.State != DynGranted && rec.State != DynRejected {
			rejects = append(rejects, rec)
		}
	}
	s.mu.Unlock()

	for _, rec := range rejects {
		s.mu.Lock()
		rec.State = DynRejected
		rec.RepliedAt = s.sim.Now()
		route := s.dynReply[rec.ReqID]
		s.finishDynLocked(rec)
		s.mu.Unlock()
		s.send(route.ep, DynGetResp{ReqID: route.clientReq, ClientID: -1, Err: "pbs: job failed (node down)"})
	}
	if wasRunning {
		for _, h := range hosts {
			if h == lostHost {
				continue
			}
			s.send(MomEndpoint(h), ReleaseJobMsg{JobID: jobID})
		}
	}
	s.account(AcctFailed, jobID, "lost=%s", lostHost)
	s.notifyWaiters(jobID)
}

// dropAccelerator removes a dead accelerator from its job; the
// application keeps running with its remaining set.
func (s *Server) dropAccelerator(jobID, host string) {
	s.mu.Lock()
	j, ok := s.index.get(jobID)
	if !ok {
		s.mu.Unlock()
		return
	}
	for cn, acs := range j.info.AccHosts {
		j.info.AccHosts[cn] = removeHost(acs, host)
	}
	for id, acs := range j.info.DynSets {
		j.info.DynSets[id] = removeHost(acs, host)
	}
	if n, ok := s.nodes[host]; ok {
		if c, held := n.usedBy[jobID]; held {
			s.aud.Record(audit.KindRelease, "pbs", host, jobID, int64(c), 0)
			delete(n.usedBy, jobID)
			s.refreshLocked(n)
		}
	}
	ms := ""
	if j.info.State == JobRunning && len(j.info.Hosts) > 0 {
		ms = j.info.Hosts[0]
	}
	s.mu.Unlock()
	if ms != "" {
		s.send(MomEndpoint(ms), NodeLostMsg{JobID: jobID, Host: host})
	}
}

func removeHost(hs []string, host string) []string {
	out := hs[:0]
	for _, h := range hs {
		if h != host {
			out = append(out, h)
		}
	}
	return out
}

// NodeDownForTest force-fails a node, bypassing the detector (test
// hook mirroring an operator's pbsnodes -o).
func (s *Server) NodeDownForTest(host string) { s.nodeDown(host) }
