package pbs

import (
	"errors"
	"time"
)

// Server checkpoint/restart, the counterpart of TORQUE's serverdb:
// the server's durable state — jobs, node database, counters — can be
// snapshotted and a replacement server constructed from it after a
// head-node failure. Moms and running applications are unaffected
// (they address the server by its well-known endpoint); requests that
// arrive while no server runs queue in the fabric and are drained by
// the restarted server. Dynamic requests that were mid-flight at the
// crash are rejected on recovery, the same contract as a rejected
// allocation: the application continues with its existing resources.

// stopMsg is the internal control message that makes the server loop
// exit (simulating a crash or an orderly shutdown).
type stopMsg struct{}

// Stop makes the server actor exit after the messages already
// processed; the endpoint stays registered so client requests queue
// until a restarted server drains them.
func (s *Server) Stop() {
	s.send(ServerEndpoint, stopMsg{})
}

// Snapshot is the serverdb image. Job scripts are retained as live
// values (TORQUE keeps job files on disk next to the serverdb).
type Snapshot struct {
	TakenAt    time.Duration
	NextJob    int
	NextClient int
	NextDyn    int
	Jobs       []JobInfo
	Order      []string
	Nodes      []NodeInfo
	UsedBy     map[string]map[string]int // node -> job -> cores
	Waiters    map[string][]waiter
	Pending    []*DynRecord
	PendingTo  map[int]dynReplyTo
}

// Checkpoint captures the server's durable state.
func (s *Server) Checkpoint() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		TakenAt:    s.sim.Now(),
		NextJob:    s.nextJob,
		NextClient: s.nextClient,
		NextDyn:    s.nextDyn,
		Order:      append([]string(nil), s.order...),
		UsedBy:     make(map[string]map[string]int),
		Waiters:    make(map[string][]waiter),
		PendingTo:  make(map[int]dynReplyTo),
	}
	for _, id := range s.order {
		if j, ok := s.index.get(id); ok {
			snap.Jobs = append(snap.Jobs, cloneInfo(j.info))
		}
	}
	for _, name := range s.nodeOrder {
		n := s.nodes[name]
		info := n.info
		info.Jobs = append([]string(nil), n.info.Jobs...)
		snap.Nodes = append(snap.Nodes, info)
		used := make(map[string]int, len(n.usedBy))
		for j, c := range n.usedBy {
			used[j] = c
		}
		snap.UsedBy[name] = used
	}
	for jobID, ws := range s.waiters {
		snap.Waiters[jobID] = append([]waiter(nil), ws...)
	}
	for _, rec := range s.dynQ {
		cp := *rec
		snap.Pending = append(snap.Pending, &cp)
		snap.PendingTo[rec.ReqID] = s.dynReply[rec.ReqID]
	}
	return snap
}

// Restore rebuilds a server from a snapshot. Call on a fresh server
// created with NewServer over the same fabric (it shares the
// well-known endpoint), then Start it. In-flight dynamic requests are
// rejected so their clients unblock.
func (s *Server) Restore(snap Snapshot) error {
	s.mu.Lock()
	if s.index.size() != 0 || len(s.nodes) != 0 {
		s.mu.Unlock()
		return errors.New("pbs: Restore on a non-empty server")
	}
	s.nextJob = snap.NextJob
	s.nextClient = snap.NextClient
	s.nextDyn = snap.NextDyn
	s.order = append([]string(nil), snap.Order...)
	for _, info := range snap.Jobs {
		live := cloneInfo(info)
		// The live server mutates these maps (cloneInfo leaves empty
		// ones nil for the read-only response paths).
		if live.AccHosts == nil {
			live.AccHosts = make(map[string][]string)
		}
		if live.DynSets == nil {
			live.DynSets = make(map[int][]string)
		}
		s.index.put(jobSeq(info.ID), info.ID, &serverJob{info: live})
	}
	for _, id := range s.order {
		j, ok := s.index.get(id)
		if !ok {
			continue
		}
		if st := j.info.State; st == JobQueued || st == JobRunning {
			s.index.activate(jobSeq(id), id)
		}
	}
	now := s.sim.Now()
	for _, info := range snap.Nodes {
		n := &serverNode{
			info:       info,
			usedBy:     make(map[string]int),
			lastChange: now,
		}
		n.info.Jobs = append([]string(nil), info.Jobs...)
		for j, c := range snap.UsedBy[info.Name] {
			n.usedBy[j] = c
		}
		s.nodes[info.Name] = n
		s.nodeOrder = append(s.nodeOrder, info.Name)
		s.lastSeen[info.Name] = now
	}
	for jobID, ws := range snap.Waiters {
		s.waiters[jobID] = append([]waiter(nil), ws...)
	}
	rejects := append([]*DynRecord(nil), snap.Pending...)
	routes := snap.PendingTo
	s.mu.Unlock()

	// Mid-flight dynamic requests did not survive the crash: reject
	// them so the blocked pbs_dynget calls return and the
	// applications continue with their existing sets.
	for _, rec := range rejects {
		rec.State = DynRejected
		rec.RepliedAt = s.sim.Now()
		s.mu.Lock()
		if j, ok := s.index.get(rec.JobID); ok {
			j.info.DynRecords = append(j.info.DynRecords, *rec)
			// Return any accelerators an in-forwarding request had
			// already been assigned.
			if rec.ClientID > 0 {
				delete(j.info.DynSets, rec.ClientID)
				for _, h := range rec.Hosts {
					if n, ok := s.nodes[h]; ok {
						delete(n.usedBy, rec.JobID)
						s.refreshLocked(n)
					}
				}
			}
		}
		s.mu.Unlock()
		s.send(routes[rec.ReqID].ep, DynGetResp{
			ReqID: routes[rec.ReqID].clientReq, ClientID: -1,
			Err: "pbs: server restarted; dynamic request lost",
		})
	}
	s.kickScheduler("restore")
	return nil
}
