package pbs_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/pbs"
)

// runRetention drives a small cluster through n short jobs with the
// given retention window and returns the final record stats plus the
// completed-state check result.
func runRetention(t *testing.T, n, retain int, aud *audit.Recorder) pbs.JobRecordStats {
	t.Helper()
	p := cluster.Default()
	p.ComputeNodes = 2
	p.Accelerators = 2
	p.Server.RetainCompleted = retain
	p.Server.AcctRing = 64
	p.Audit = aud
	var stats pbs.JobRecordStats
	err := cluster.Run(p, func(c *cluster.Cluster, client *pbs.Client) {
		// Submit serially (wait for each job) so terminal records
		// accumulate and purge while the stream is still running —
		// the steady-state shape of an online service.
		for i := 0; i < n; i++ {
			id, err := client.Submit(pbs.JobSpec{
				Name: fmt.Sprintf("j%d", i), Owner: "u", Nodes: 1, PPN: 1,
				Walltime: time.Second,
				Script: func(env *pbs.JobEnv) {
					c.Sim.Sleep(2 * time.Millisecond)
				},
			})
			if err != nil {
				t.Errorf("Submit %d: %v", i, err)
				return
			}
			if _, err := client.Wait(id); err != nil {
				t.Errorf("Wait %s: %v", id, err)
				return
			}
		}
		// Let a few more scheduler cycles pass so the final batch of
		// terminal records crosses the purge boundary.
		c.Sim.Sleep(2 * time.Second)
		stats = c.Server.JobRecords()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return stats
}

// With a retention window, a long submission stream must hold the
// index at O(window): old terminal records purge, their structs
// recycle through the pool, and the audit invariants keep passing.
func TestRetentionBoundsJobRecords(t *testing.T) {
	aud := audit.New(1 << 16)
	stats := runRetention(t, 300, 16, aud)
	if stats.Purged == 0 {
		t.Fatal("no records purged despite window of 16")
	}
	if stats.Reused == 0 {
		t.Fatal("pool never reused a record")
	}
	if stats.Retained > 16 {
		t.Fatalf("retained %d > window 16", stats.Retained)
	}
	if stats.Live+stats.Retained > 64 {
		t.Fatalf("index holds %d records after 300 jobs, want O(window)", stats.Live+stats.Retained)
	}
	if br := aud.Breaches(); br != 0 {
		t.Fatalf("%d audit breaches with retention on", br)
	}
}

// Retention off (the default) keeps every record — the original batch
// behavior every existing figure depends on.
func TestRetentionOffKeepsEverything(t *testing.T) {
	stats := runRetention(t, 50, 0, nil)
	if stats.Purged != 0 || stats.Reused != 0 {
		t.Fatalf("default config purged %d reused %d, want 0/0", stats.Purged, stats.Reused)
	}
	if stats.Live+stats.Retained != 50 {
		t.Fatalf("index holds %d records, want all 50", stats.Live+stats.Retained)
	}
}

// The retention window must not change what the cluster computes:
// same submissions, same completion times, purge only affects which
// records remain inspectable afterwards.
func TestRetentionPreservesSchedule(t *testing.T) {
	run := func(retain int) []time.Duration {
		p := cluster.Default()
		p.ComputeNodes = 2
		p.Accelerators = 2
		p.Server.RetainCompleted = retain
		var done []time.Duration
		err := cluster.Run(p, func(c *cluster.Cluster, client *pbs.Client) {
			ids := make([]string, 0, 80)
			for i := 0; i < 80; i++ {
				id, err := client.Submit(pbs.JobSpec{
					Name: fmt.Sprintf("j%d", i), Owner: "u", Nodes: 1, PPN: 1,
					Walltime: time.Second,
					Script: func(env *pbs.JobEnv) {
						c.Sim.Sleep(3 * time.Millisecond)
					},
				})
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				ids = append(ids, id)
				c.Sim.Sleep(time.Millisecond)
			}
			for _, id := range ids {
				info, err := client.Wait(id)
				if err != nil {
					t.Errorf("Wait: %v", err)
					return
				}
				done = append(done, info.CompletedAt)
			}
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return done
	}
	keep, window := run(0), run(8)
	if len(keep) != len(window) {
		t.Fatalf("completion counts differ: %d vs %d", len(keep), len(window))
	}
	for i := range keep {
		if keep[i] != window[i] {
			t.Fatalf("job %d completed at %v without retention, %v with", i, keep[i], window[i])
		}
	}
}

// A purged job is gone from qstat: the server answers ErrUnknownJob,
// exactly like a job that never existed.
func TestRetentionPurgedJobUnknown(t *testing.T) {
	p := cluster.Default()
	p.ComputeNodes = 1
	p.Accelerators = 1
	p.Server.RetainCompleted = 4
	err := cluster.Run(p, func(c *cluster.Cluster, client *pbs.Client) {
		var first string
		for i := 0; i < 40; i++ {
			id, err := client.Submit(pbs.JobSpec{
				Name: fmt.Sprintf("j%d", i), Owner: "u", Nodes: 1, PPN: 1,
				Walltime: time.Second,
				Script:   func(env *pbs.JobEnv) { c.Sim.Sleep(time.Millisecond) },
			})
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			if i == 0 {
				first = id
			}
			if _, err := client.Wait(id); err != nil {
				t.Errorf("Wait: %v", err)
				return
			}
		}
		c.Sim.Sleep(2 * time.Second)
		if _, err := client.Stat(first); err == nil {
			t.Errorf("Stat(%s) succeeded after purge", first)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// Accounting ring: the in-memory log stays bounded at ~2x the ring
// while newest records survive.
func TestAcctRingBounds(t *testing.T) {
	p := cluster.Default()
	p.ComputeNodes = 1
	p.Accelerators = 1
	p.Server.RetainCompleted = 8
	p.Server.AcctRing = 32
	err := cluster.Run(p, func(c *cluster.Cluster, client *pbs.Client) {
		for i := 0; i < 100; i++ {
			id, err := client.Submit(pbs.JobSpec{
				Name: fmt.Sprintf("j%d", i), Owner: "u", Nodes: 1, PPN: 1,
				Walltime: time.Second,
				Script:   func(env *pbs.JobEnv) { c.Sim.Sleep(time.Millisecond) },
			})
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			if _, err := client.Wait(id); err != nil {
				t.Errorf("Wait: %v", err)
				return
			}
		}
		log := c.Server.AccountingLog()
		if len(log) > 64 {
			t.Errorf("accounting log holds %d records, ring is 32", len(log))
		}
		if len(log) == 0 {
			t.Error("accounting log empty")
		}
		// Newest records survive the ring compaction.
		last := log[len(log)-1]
		if last.JobID == "" {
			t.Errorf("tail record malformed: %+v", last)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
