package pbs

import (
	"fmt"
	"sync"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// The sharded fast path: the production-oriented ablation against the
// paper's serial pbs_server. A router actor owns the well-known
// endpoint and fans messages out to ServerParams.Shards worker
// actors. Routing is keyed so every message concerning one job lands
// on the same shard (the job id's sequence number), dynamic
// allocation commands and acks follow their server-side request id,
// heartbeats hash by host, and submissions round-robin. Each worker
// drains its mailbox as a batch and pays Processing once per batch —
// batched IFL RPC handling — so the handling cost of unrelated
// requests overlaps in virtual time instead of accumulating behind a
// single daemon thread, and startNextDynLocked pipelines DYNJOIN so a
// join in flight no longer blocks other dynamic requests.
//
// The handlers themselves are unchanged and still serialize on s.mu:
// the discrete-event kernel runs one actor at a time, so the win is
// not host-side lock striping but virtual-time concurrency — exactly
// the serialization effect of the paper's Figure 8 that the sharding
// is meant to buy back.

// serverShard is one worker's mailbox. The router appends under mu
// and signals the gate; the worker swaps the queue against the spare
// buffer (the previous batch's storage) so steady-state dispatch
// recycles both arrays.
type serverShard struct {
	mu     sync.Mutex
	gate   *sim.Gate
	queue  []*netsim.Message
	spare  []*netsim.Message
	closed bool
}

// startSharded spawns the router and the shard workers.
func (s *Server) startSharded() {
	shards := make([]*serverShard, s.params.Shards)
	for i := range shards {
		shards[i] = &serverShard{gate: s.sim.NewGate(fmt.Sprintf("pbs_shard%d", i))}
	}
	s.shards = shards
	for i := range shards {
		sh := shards[i]
		s.sim.Go(fmt.Sprintf("pbs_server/shard%d", i), func() { s.shardWorker(sh) })
	}
	s.sim.Go("pbs_server", func() {
		rr := 0
		for {
			m, err := s.ep.Recv()
			if err != nil {
				s.closeShards()
				return
			}
			if _, stop := m.Payload.(stopMsg); stop {
				m.Release()
				s.closeShards()
				return
			}
			sh := shards[s.shardFor(m.Payload, &rr)]
			sh.mu.Lock()
			sh.queue = append(sh.queue, m)
			sh.mu.Unlock()
			sh.gate.Signal()
		}
	})
}

// closeShards drains the workers: each finishes the messages already
// routed to it, then exits.
func (s *Server) closeShards() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.closed = true
		sh.mu.Unlock()
		sh.gate.Broadcast()
	}
}

// shardWorker is one shard's actor loop: take the whole mailbox as a
// batch, pay Processing once, handle every message.
func (s *Server) shardWorker(sh *serverShard) {
	for {
		sh.mu.Lock()
		for len(sh.queue) == 0 && !sh.closed {
			sh.gate.Wait(&sh.mu)
		}
		if len(sh.queue) == 0 {
			sh.mu.Unlock()
			return
		}
		batch := sh.queue
		sh.queue = sh.spare[:0]
		sh.spare = batch
		sh.mu.Unlock()

		start := s.sim.Now()
		s.sim.Sleep(s.params.Processing)
		for _, m := range batch {
			delivered := m.Delivered
			s.handle(m)
			// Service time as the requester experiences it, same
			// definition as the faithful loop.
			s.inst.rpcService.Record(s.sim.Now() - delivered)
			m.Release()
		}
		s.inst.rpcBatches.Inc()
		s.inst.shardBusy.OnFor(s.sim.Now() - start)
	}
}

// shardFor routes one payload to a shard. Job-scoped traffic follows
// the job's sequence number, preserving per-job message order within
// one worker. Dynamic allocation commands and acks follow the
// server-side request id; the record they address was created by a
// DynGetReq on the job's shard, and by the time an alloc command
// arrives the scheduler has already observed that record, so the
// cross-shard handoff is causally ordered. Cluster-wide queries
// (scheduler snapshots, node and job listings) pin to shard 0.
func (s *Server) shardFor(payload any, rr *int) int {
	n := s.params.Shards
	switch req := payload.(type) {
	case SubmitReq:
		*rr++
		return *rr % n
	case StatReq:
		return jobSeq(req.JobID) % n
	case AlterReq:
		return jobSeq(req.JobID) % n
	case HoldReq:
		return jobSeq(req.JobID) % n
	case DeleteReq:
		return jobSeq(req.JobID) % n
	case WaitReq:
		return jobSeq(req.JobID) % n
	case DynGetReq:
		return jobSeq(req.JobID) % n
	case DynFreeReq:
		return jobSeq(req.JobID) % n
	case AllocCmd:
		return jobSeq(req.JobID) % n
	case JobStartedMsg:
		return jobSeq(req.JobID) % n
	case JobDoneMsg:
		return jobSeq(req.JobID) % n
	case DynAllocCmd:
		return req.ReqID % n
	case DynAddAck:
		return req.ReqID % n
	case HeartbeatMsg:
		return hostShard(req.Host, n)
	}
	return 0
}

// hostShard hashes a host name onto a shard (FNV-1a).
func hostShard(host string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(host); i++ {
		h = (h ^ uint32(host[i])) * 16777619
	}
	return int(h % uint32(n))
}
