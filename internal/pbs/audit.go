package pbs

import (
	"repro/internal/audit"
)

// Flight-recorder integration: state-delta events at every server
// mutation site, per-component state digests, and the online
// invariant engine run at scheduler-cycle boundaries (every
// SchedInfoReq — the moment the scheduler reads the state it will
// act on). All of it is inert when no recorder is installed: the
// recorder handle is nil and every audit call is a nil-safe no-op.
//
// Invariant names, mapped to the paper's Section III protocol state
// machine in EXPERIMENTS.md:
//
//	conservation.cores  per compute node: sum of per-job core grants
//	                    equals the node's used-core count and never
//	                    exceeds its capacity
//	conservation.acc    global: allocated + free accelerators equals
//	                    the accelerator inventory, and the job-side
//	                    claim count equals the node-side allocation
//	                    count
//	double-alloc        per accelerator: at most one owning job
//	view.node-jobs      a node's advertised job list mirrors its
//	                    usedBy ledger exactly
//	view.job-hosts      every host a live job claims (static hosts,
//	                    static accelerators, dynamic sets) holds a
//	                    matching usedBy entry, and every usedBy entry
//	                    belongs to a live job
//	jobs.partition      every job sits in the index partition its
//	                    sequence number maps to, and every active id
//	                    resolves in its partition (no job lost or
//	                    duplicated across queue/index/partition moves)
//	jobs.count          the index holds exactly the jobs ever
//	                    submitted, less the terminal records the
//	                    retention window has purged (retention.go)
//
// Transition labels recorded with KindJob events. KindAlloc and
// KindRelease events carry host as Subj, job id as Detail, cores as
// A, and (for allocations) B=1 when the grant is dynamic.
const (
	audSubmit       = "submit"
	audQueuedToRun  = "queued->running"
	audRunToDone    = "running->completed"
	audToDeleted    = "->deleted"
	audToFailed     = "->failed"
	audDynQueued    = "dyn-queued"
	audDynSched     = "dyn-scheduling"
	audDynForward   = "dyn-forwarding"
	audDynGranted   = "dyn-granted"
	audDynRejected  = "dyn-rejected"
	audDynFree      = "dyn-free"
	audSchedInfoCyc = "schedinfo"
)

// registerAudit resolves the flight recorder and registers the
// server's digest providers; called once from NewServer (the cluster
// installs the recorder on the simulation before daemons are built).
func (s *Server) registerAudit() {
	s.aud = s.net.Sim().Audit()
	s.aud.RegisterDigest("pbs", "pbs.jobs", s.digestJobs)
	s.aud.RegisterDigest("pbs", "pbs.nodes", s.digestNodes)
}

// digestJobs hashes the job database in submission order: id and
// lifecycle state only, so the sum is invariant across server modes
// (the sharded server may place the same jobs on different hosts, but
// must complete exactly the same set).
func (s *Server) digestJobs(d *audit.Digest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d.WriteInt(int64(len(s.order)))
	for _, id := range s.order {
		j, ok := s.index.get(id)
		if !ok {
			d.WriteString(id)
			d.WriteInt(-1)
			continue
		}
		d.WriteString(id)
		d.WriteInt(int64(j.info.State))
		d.WriteBool(j.info.Held)
	}
}

// digestNodes hashes the node database in registration order: name,
// capacity, usage, and the per-job grants (node order and each Jobs
// list are already deterministic — AddNode order and refreshLocked's
// sort).
func (s *Server) digestNodes(d *audit.Digest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d.WriteInt(int64(len(s.nodeOrder)))
	for _, name := range s.nodeOrder {
		n := s.nodes[name]
		d.WriteString(name)
		d.WriteInt(int64(n.info.Type))
		d.WriteInt(int64(n.info.Cores))
		d.WriteInt(int64(n.info.UsedCores))
		d.WriteBool(n.info.Down)
		d.WriteInt(int64(len(n.info.Jobs)))
		for _, id := range n.info.Jobs {
			d.WriteString(id)
			d.WriteInt(int64(n.usedBy[id]))
		}
	}
}

// auditCheckLocked is the online invariant engine. It runs under
// s.mu at every scheduler-cycle boundary (handleSchedInfo), i.e. on
// exactly the state snapshot the scheduler is about to act on, in
// both server modes (the sharded router pins SchedInfoReq to shard 0
// and every handler serializes on s.mu, so the walk is race-free).
func (s *Server) auditCheckLocked() {
	a := s.aud
	if a == nil {
		return
	}

	// Node-side walk: per-node conservation, double allocation, and
	// the node view's agreement with its own ledger.
	accTotal, accAllocated, accFree := int64(0), int64(0), int64(0)
	for _, name := range s.nodeOrder {
		n := s.nodes[name]
		used := 0
		mirrored := len(n.info.Jobs) == len(n.usedBy)
		for _, id := range n.info.Jobs {
			c, ok := n.usedBy[id]
			if !ok {
				mirrored = false
			}
			used += c
		}
		a.Check("pbs", "view.node-jobs", name, mirrored, int64(len(n.info.Jobs)), int64(len(n.usedBy)))
		switch n.info.Type {
		case ComputeNode:
			a.Check("pbs", "conservation.cores", name,
				used == n.info.UsedCores && n.info.UsedCores <= n.info.Cores,
				int64(used), int64(n.info.UsedCores))
		case AcceleratorNode:
			accTotal++
			if len(n.usedBy) > 0 {
				accAllocated++
			} else if !n.info.Down {
				accFree++
			}
			a.Check("pbs", "double-alloc", name, len(n.usedBy) <= 1, int64(len(n.usedBy)), 0)
		}
	}

	// Job-side walk in submission order: every host a live job claims
	// must hold a matching usedBy entry; count accelerator claims to
	// close the conservation loop against the node-side walk.
	jobClaimedACs := int64(0)
	for _, id := range s.order {
		j, ok := s.index.get(id)
		if !ok || (j.info.State != JobRunning && j.info.State != JobQueued) {
			continue
		}
		live := j.info.State == JobRunning
		for _, h := range jobHosts(j.info) {
			n, ok := s.nodes[h]
			held := ok && n.usedBy[id] > 0
			if live {
				a.Check("pbs", "view.job-hosts", h, held, int64(jobSeq(id)), 0)
			}
			if ok && n.info.Type == AcceleratorNode && held {
				jobClaimedACs++
			}
		}
	}
	a.Check("pbs", "conservation.acc", "global",
		accAllocated+accFree+s.downFreeACsLocked() == accTotal && jobClaimedACs == accAllocated,
		accAllocated+accFree, accTotal)

	// Reverse direction of view.job-hosts: every usedBy entry belongs
	// to a job the index knows in a non-terminal state.
	for _, name := range s.nodeOrder {
		n := s.nodes[name]
		for _, id := range n.info.Jobs {
			j, ok := s.index.get(id)
			a.Check("pbs", "view.job-hosts", name,
				ok && (j.info.State == JobRunning || j.info.State == JobQueued),
				int64(jobSeq(id)), 1)
		}
	}

	// Index integrity: no job lost or duplicated across partitions.
	total := 0
	for pi := range s.index.parts {
		p := &s.index.parts[pi]
		total += len(p.jobs)
		for id := range p.jobs {
			a.Check("pbs", "jobs.partition", id,
				s.index.partFor(jobSeq(id)) == p, int64(jobSeq(id)), int64(pi))
		}
		prev := -1
		for _, id := range p.active {
			_, known := p.jobs[id]
			seq := jobSeq(id)
			a.Check("pbs", "jobs.partition", id, known && seq > prev, int64(seq), int64(pi))
			prev = seq
		}
	}
	// Retention purges index records but leaves their ids in the
	// submission-order log until it compacts; retired bridges the two.
	a.Check("pbs", "jobs.count", "global", total+s.retired == len(s.order), int64(total+s.retired), int64(len(s.order)))
}

// downFreeACsLocked counts accelerator nodes that are down and
// unallocated — the remainder class of the conservation identity.
func (s *Server) downFreeACsLocked() int64 {
	n := int64(0)
	for _, name := range s.nodeOrder {
		nd := s.nodes[name]
		if nd.info.Type == AcceleratorNode && nd.info.Down && len(nd.usedBy) == 0 {
			n++
		}
	}
	return n
}
