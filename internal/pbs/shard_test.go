package pbs

import "testing"

func TestJobSeq(t *testing.T) {
	cases := []struct {
		id   string
		want int
	}{
		{"0.pbs/server", 0},
		{"17.pbs/server", 17},
		{"230.pbs/server", 230},
		{"7", 7},
		{"pbs/server", 0}, // no leading digits
		{"", 0},
	}
	for _, c := range cases {
		if got := jobSeq(c.id); got != c.want {
			t.Errorf("jobSeq(%q) = %d, want %d", c.id, got, c.want)
		}
	}
}

func TestHostShardStableAndInRange(t *testing.T) {
	hosts := []string{"cn0", "cn1", "ac12", "node-with-a-long-name"}
	for _, h := range hosts {
		a, b := hostShard(h, 7), hostShard(h, 7)
		if a != b {
			t.Errorf("hostShard(%q) not stable: %d vs %d", h, a, b)
		}
		if a < 0 || a >= 7 {
			t.Errorf("hostShard(%q, 7) = %d out of range", h, a)
		}
	}
}

func TestShardForRouting(t *testing.T) {
	s := &Server{params: ServerParams{Shards: 4}}
	rr := 0

	// Every message about one job must land on the same shard so the
	// per-job message order the faithful loop guaranteed survives.
	jobID := "17.pbs/server"
	want := 17 % 4
	for _, payload := range []any{
		StatReq{JobID: jobID}, AlterReq{JobID: jobID}, HoldReq{JobID: jobID},
		DeleteReq{JobID: jobID}, WaitReq{JobID: jobID}, DynGetReq{JobID: jobID},
		DynFreeReq{JobID: jobID}, AllocCmd{JobID: jobID},
		JobStartedMsg{JobID: jobID}, JobDoneMsg{JobID: jobID},
	} {
		if got := s.shardFor(payload, &rr); got != want {
			t.Errorf("shardFor(%T) = %d, want %d", payload, got, want)
		}
	}

	// Dynamic allocation commands and acks follow the request id.
	if got := s.shardFor(DynAllocCmd{ReqID: 6}, &rr); got != 6%4 {
		t.Errorf("shardFor(DynAllocCmd{ReqID: 6}) = %d, want %d", got, 6%4)
	}
	if got := s.shardFor(DynAddAck{ReqID: 6}, &rr); got != 6%4 {
		t.Errorf("shardFor(DynAddAck{ReqID: 6}) = %d, want %d", got, 6%4)
	}

	// Submissions round-robin across shards.
	seen := make(map[int]bool)
	for i := 0; i < 4; i++ {
		seen[s.shardFor(SubmitReq{}, &rr)] = true
	}
	if len(seen) != 4 {
		t.Errorf("SubmitReq round-robin covered %d of 4 shards", len(seen))
	}

	// Cluster-wide queries pin to shard 0.
	if got := s.shardFor(SchedInfoReq{}, &rr); got != 0 {
		t.Errorf("shardFor(SchedInfoReq) = %d, want 0", got)
	}
	if got := s.shardFor(NodesReq{}, &rr); got != 0 {
		t.Errorf("shardFor(NodesReq) = %d, want 0", got)
	}
}

// The multi-partition active walk must visit jobs in global
// submission order (the single-partition walk trivially does) and
// compact terminal jobs out of the lists.
func TestJobIndexMergePreservesSubmissionOrder(t *testing.T) {
	ix := newJobIndex(3)
	ids := make([]string, 0, 10)
	for seq := 1; seq <= 10; seq++ {
		id := itoa(seq) + ".srv"
		ids = append(ids, id)
		ix.put(seq, id, &serverJob{})
		ix.activate(seq, id)
	}
	if ix.size() != 10 {
		t.Fatalf("size = %d, want 10", ix.size())
	}

	var visited []string
	ix.compactActive(func(id string, j *serverJob) bool {
		if j == nil {
			t.Fatalf("job %q missing from its partition map", id)
		}
		visited = append(visited, id)
		return jobSeq(id)%2 == 0 // keep even sequences only
	})
	for i, id := range visited {
		if id != ids[i] {
			t.Fatalf("visit order %v, want %v", visited, ids)
		}
	}

	visited = visited[:0]
	ix.compactActive(func(id string, j *serverJob) bool {
		visited = append(visited, id)
		return true
	})
	wantLive := []string{"2.srv", "4.srv", "6.srv", "8.srv", "10.srv"}
	if len(visited) != len(wantLive) {
		t.Fatalf("after compaction visited %v, want %v", visited, wantLive)
	}
	for i, id := range visited {
		if id != wantLive[i] {
			t.Fatalf("after compaction visited %v, want %v", visited, wantLive)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
