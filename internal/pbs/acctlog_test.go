package pbs_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/pbs"
)

func recTypes(recs []pbs.AccountingRecord, jobID string) string {
	var b strings.Builder
	for _, r := range recs {
		if r.JobID == jobID {
			b.WriteByte(r.Type)
		}
	}
	return b.String()
}

func TestAccountingLogLifecycle(t *testing.T) {
	tb := newTestbed(t, 1, 2, nil)
	tb.run(t, func(c *pbs.Client) {
		id, _ := c.Submit(pbs.JobSpec{
			Name: "acct", Owner: "u", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				cl := pbs.NewClient(env.Cluster.(*netsim.Network), env.Host, env.ServerEP)
				if g, err := cl.DynGet(env.JobID, env.Host, 1); err == nil {
					cl.DynFree(env.JobID, g.ClientID)
				}
				cl.DynGet(env.JobID, env.Host, 9) // rejected
			},
		})
		c.Wait(id)
		recs := tb.server.AccountingLog()
		got := recTypes(recs, id)
		if got != "QSGLRE" {
			t.Fatalf("record sequence = %q, want QSGLRE\n%v", got, recs)
		}
		// Timestamps are non-decreasing.
		for i := 1; i < len(recs); i++ {
			if recs[i].At < recs[i-1].At {
				t.Fatalf("timestamps regress at %d: %v", i, recs)
			}
		}
		// The grant record names its hosts.
		for _, r := range recs {
			if r.Type == pbs.AcctDynGrant && !strings.Contains(r.Detail, "hosts=ac") {
				t.Errorf("grant detail = %q", r.Detail)
			}
			if r.Type == pbs.AcctQueued && !strings.Contains(r.Detail, "nodes=1:ppn=1:acpn=1") {
				t.Errorf("queued detail = %q", r.Detail)
			}
		}
	})
}

func TestAccountingLogDeletedJob(t *testing.T) {
	tb := newTestbed(t, 1, 0, nil)
	tb.run(t, func(c *pbs.Client) {
		blocker, _ := c.Submit(pbs.JobSpec{Name: "b", Owner: "u", Nodes: 1, PPN: 8, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) { tb.s.Sleep(200 * time.Millisecond) }})
		victim, _ := c.Submit(pbs.JobSpec{Name: "v", Owner: "u", Nodes: 1, PPN: 8, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {}})
		tb.s.Sleep(20 * time.Millisecond)
		c.Delete(victim)
		c.Wait(blocker)
		if got := recTypes(tb.server.AccountingLog(), victim); got != "QD" {
			t.Fatalf("deleted job records = %q, want QD", got)
		}
	})
}

func TestAccountingLogRoundTrip(t *testing.T) {
	recs := []pbs.AccountingRecord{
		{At: 1500 * time.Microsecond, Type: pbs.AcctQueued, JobID: "1.srv", Detail: "owner=u nodes=1:ppn=2"},
		{At: 2 * time.Millisecond, Type: pbs.AcctStarted, JobID: "1.srv", Detail: ""},
		{At: 3 * time.Millisecond, Type: pbs.AcctDynGrant, JobID: "1.srv", Detail: "client=1 kind=accelerator hosts=ac0+ac1"},
	}
	var b strings.Builder
	if err := pbs.WriteAccountingLog(&b, recs); err != nil {
		t.Fatal(err)
	}
	got, err := pbs.ReadAccountingLog(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip lost records: %d vs %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestReadAccountingLogErrors(t *testing.T) {
	for _, bad := range []string{"nope", "1;QQ;j;d", "x;Q;j;d"} {
		if _, err := pbs.ReadAccountingLog(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadAccountingLog(%q) should fail", bad)
		}
	}
	if recs, err := pbs.ReadAccountingLog(strings.NewReader("\n\n")); err != nil || len(recs) != 0 {
		t.Errorf("blank log: %v %v", recs, err)
	}
}
