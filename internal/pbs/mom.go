package pbs

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/trace"
)

// MomEndpoint returns the fabric name of the pbs_mom on a host.
func MomEndpoint(host string) string { return "pbs/mom@" + host }

// MomParams is the mom's cost model.
type MomParams struct {
	// JoinCost is the processing time of a JOIN_JOB on a sister mom.
	JoinCost time.Duration
	// DynJoinCost is the processing time of a DYNJOIN_JOB on a newly
	// added accelerator mom. The mother superior drives DYNJOIN
	// serially, so the batch-system share of a dynamic allocation
	// grows with the request size (Figure 7(b)).
	DynJoinCost time.Duration
	// StartCost is the mother superior's job-startup overhead.
	StartCost time.Duration
	// HeartbeatEvery enables periodic liveness reports to the server
	// (zero disables; pair with ServerParams.DeadAfter).
	HeartbeatEvery time.Duration
}

// DaemonStarter launches the accelerator daemons backing one compute
// node's statically allocated accelerator set. It is installed by the
// cluster wiring (the DAC layer provides the implementation) and runs
// asynchronously while the job script starts, as in paper Figure 5.
// cause is the trace-span id of the mother superior's startup, so the
// daemon-boot spans join the job's causal chain (0 when untraced).
type DaemonStarter func(jobID, cn string, acHosts []string, cause uint64)

// Mom is a pbs_mom daemon: it joins jobs, launches tasks, and — in
// the DAC environment — handles dynamic addition and removal of
// accelerator hosts.
type Mom struct {
	net    *netsim.Network
	sim    *sim.Simulation
	host   string
	ep     *netsim.Endpoint
	params MomParams

	// Cluster is the opaque handle exposed to job scripts through
	// JobEnv.Cluster.
	Cluster any
	// StartDaemons, when non-nil, is invoked by the mother superior
	// for each compute node of a DAC job with static accelerators.
	StartDaemons DaemonStarter
	// Prologue and Epilogue, when non-nil, run around every task on
	// this mom — TORQUE's per-job prologue/epilogue scripts (site
	// setup such as scratch directories or GPU health checks). They
	// run in the task's actor; an Epilogue runs even if the job
	// script panics the conventional way (returns normally).
	Prologue func(env *JobEnv)
	Epilogue func(env *JobEnv)

	mu   sync.Mutex
	jobs map[string]*momJob
}

type momJob struct {
	id       string
	ms       string
	hosts    []string // current full host set of the job
	isMS     bool
	spec     JobSpec
	accHosts map[string][]string
	tasksRun int  // compute node tasks still running (MS only)
	released bool // job ended; tasks being killed
	aborted  bool
}

// NewMom creates the mom daemon for a host; call Start to spawn its
// actor.
func NewMom(net *netsim.Network, host string, params MomParams) *Mom {
	return &Mom{
		net:    net,
		sim:    net.Sim(),
		host:   host,
		ep:     net.Endpoint(MomEndpoint(host)),
		params: params,
		jobs:   make(map[string]*momJob),
	}
}

// Host returns the host this mom manages.
func (m *Mom) Host() string { return m.host }

// Start spawns the mom actor (plus its heartbeat sender when
// enabled); the loops exit when the fabric closes.
func (m *Mom) Start() {
	m.startHeartbeats()
	m.sim.Go("pbs_mom@"+m.host, func() {
		for {
			// Acknowledgements are consumed by the mother-superior
			// actors blocked in RecvMatch, never by the main loop.
			msg, err := m.ep.RecvMatch(func(msg *netsim.Message) bool {
				switch msg.Payload.(type) {
				case JoinAck, DynJoinAck, DisJoinAck:
					return false
				}
				return true
			})
			if err != nil {
				return
			}
			m.handle(msg)
			// Spawned sub-actors capture the payload value, never the
			// envelope, so the envelope can go back to the arena now.
			msg.Release()
		}
	})
}

func (m *Mom) send(to string, payload any) {
	_ = m.ep.Send(to, "pbs", payload, 0)
}

// sendCause is send carrying the trace-span id that produced the
// message, for the fabric's delivery-span causal link.
func (m *Mom) sendCause(to string, payload any, cause uint64) {
	_ = m.ep.SendCause(to, "pbs", payload, 0, cause)
}

func (m *Mom) handle(msg *netsim.Message) {
	switch req := msg.Payload.(type) {
	case RunJobMsg:
		// Becoming mother superior blocks on sister acknowledgements;
		// run it as its own actor so the mom loop keeps serving —
		// otherwise two mother superiors joining each other's hosts
		// would deadlock.
		m.sim.Go("ms/"+req.JobID+"@"+m.host, func() { m.runJob(req) })
	case JoinJobMsg:
		m.sim.Sleep(m.params.JoinCost)
		m.mu.Lock()
		m.jobs[req.JobID] = &momJob{id: req.JobID, ms: req.MS, hosts: append([]string(nil), req.Hosts...)}
		m.mu.Unlock()
		m.send(req.ReplyTo, JoinAck{JobID: req.JobID, Host: m.host})
	case DynJoinJobMsg:
		m.sim.Sleep(m.params.DynJoinCost)
		m.mu.Lock()
		m.jobs[req.JobID] = &momJob{id: req.JobID, ms: req.MS}
		m.mu.Unlock()
		m.send(req.ReplyTo, DynJoinAck{JobID: req.JobID, Host: m.host})
	case DisJoinJobMsg:
		// Kill remaining tasks (accelerator daemon remains) and leave
		// the job entirely.
		m.mu.Lock()
		delete(m.jobs, req.JobID)
		m.mu.Unlock()
		m.send(req.ReplyTo, DisJoinAck{JobID: req.JobID, Host: m.host})
	case UpdateJobMsg:
		m.mu.Lock()
		if j, ok := m.jobs[req.JobID]; ok {
			j.hosts = append([]string(nil), req.Hosts...)
		}
		m.mu.Unlock()
	case StartTaskMsg:
		m.startTask(req)
	case TaskDoneMsg:
		m.taskDone(req)
	case DynAddMsg:
		m.sim.Go("dynadd/"+req.JobID+"@"+m.host, func() { m.dynAdd(req) })
	case DynRemoveMsg:
		m.sim.Go("dynremove/"+req.JobID+"@"+m.host, func() { m.dynRemove(req) })
	case ReleaseJobMsg:
		m.mu.Lock()
		if j, ok := m.jobs[req.JobID]; ok {
			j.released = true
			delete(m.jobs, req.JobID)
		}
		m.mu.Unlock()
	case AbortJobMsg:
		m.mu.Lock()
		if j, ok := m.jobs[req.JobID]; ok {
			j.aborted = true
		}
		m.mu.Unlock()
	case NodeLostMsg:
		m.mu.Lock()
		if j, ok := m.jobs[req.JobID]; ok {
			j.hosts = removeHost(j.hosts, req.Host)
		}
		m.mu.Unlock()
	}
}

// runJob makes this mom the mother superior: JOIN with the sister
// moms on every allocated host, start the accelerator daemons, then
// start the job script on each compute node (paper Figure 5).
func (m *Mom) runJob(req RunJobMsg) {
	// mom.start covers the full mother-superior startup: JOIN fan-out,
	// daemon kick-off, and task dispatch (paper Figure 5). The nil
	// guard keeps the untraced path free of the track-name allocation.
	var sp *trace.Span
	if trc := m.sim.Tracer(); trc != nil {
		sp = trc.Start("pbs/mom@"+m.host, "mom.start", "job", req.JobID)
	}
	sp.Link(req.Cause) // server's alloc span
	defer sp.End()
	m.sim.Sleep(m.params.StartCost)
	allHosts := append([]string(nil), req.Hosts...)
	for _, cn := range req.Hosts {
		allHosts = append(allHosts, req.AccHosts[cn]...)
	}
	m.mu.Lock()
	m.jobs[req.JobID] = &momJob{
		id:       req.JobID,
		ms:       m.host,
		hosts:    allHosts,
		isMS:     true,
		spec:     req.Spec,
		accHosts: req.AccHosts,
		tasksRun: len(req.Hosts),
	}
	m.mu.Unlock()

	// JOIN_JOB with every other mom of the job.
	pending := 0
	for _, h := range allHosts {
		if h == m.host {
			continue
		}
		m.send(MomEndpoint(h), JoinJobMsg{JobID: req.JobID, MS: m.host, Hosts: allHosts, ReplyTo: m.ep.Name()})
		pending++
	}
	for i := 0; i < pending; i++ {
		ack, err := m.ep.RecvMatch(func(msg *netsim.Message) bool {
			ack, ok := msg.Payload.(JoinAck)
			return ok && ack.JobID == req.JobID
		})
		ack.Release()
		if err != nil {
			return
		}
	}

	// Invoke the accelerator daemons for each compute node's static
	// set. The launch is asynchronous: AC_Init in the application
	// waits for readiness, which is the dominant share of Figure 7(a).
	if m.StartDaemons != nil {
		for _, cn := range req.Hosts {
			if acs := req.AccHosts[cn]; len(acs) > 0 {
				cn, acs := cn, acs
				m.sim.Go(fmt.Sprintf("daemon-start/%s/%s", req.JobID, cn), func() {
					m.StartDaemons(req.JobID, cn, acs, sp.ID())
				})
			}
		}
	}

	// Start the user application on every compute node.
	for rank, cn := range req.Hosts {
		env := &JobEnv{
			JobID:    req.JobID,
			Rank:     rank,
			Host:     cn,
			Hosts:    append([]string(nil), req.Hosts...),
			AccHosts: append([]string(nil), req.AccHosts[cn]...),
			ServerEP: ServerEndpoint,
			MSHost:   m.host,
		}
		m.sendCause(MomEndpoint(cn), StartTaskMsg{JobID: req.JobID, Env: env, Script: req.Spec.Script, Cause: sp.ID()}, sp.ID())
	}
	m.send(ServerEndpoint, JobStartedMsg{JobID: req.JobID})
}

// startTask runs the job script for one compute node as a fresh
// actor.
func (m *Mom) startTask(req StartTaskMsg) {
	env := req.Env
	env.Cluster = m.Cluster
	ms := env.MSHost
	if req.Script == nil {
		// An empty job script finishes immediately.
		m.send(MomEndpoint(ms), TaskDoneMsg{JobID: req.JobID, Host: m.host})
		return
	}
	m.sim.Go(fmt.Sprintf("task/%s@%s", req.JobID, m.host), func() {
		var sp *trace.Span
		if trc := m.sim.Tracer(); trc != nil {
			sp = trc.Start("pbs/mom@"+m.host, "job.run", "job", req.JobID)
		}
		sp.Link(req.Cause) // mother superior's mom.start span
		env.TaskSpan = sp.ID()
		defer sp.End()
		if m.Prologue != nil {
			m.Prologue(env)
		}
		req.Script(env)
		if m.Epilogue != nil {
			m.Epilogue(env)
		}
		m.send(MomEndpoint(ms), TaskDoneMsg{JobID: req.JobID, Host: m.host})
	})
}

// taskDone tracks completion at the mother superior; when the last
// compute node task exits, the job is reported done to the server.
func (m *Mom) taskDone(req TaskDoneMsg) {
	m.mu.Lock()
	j, ok := m.jobs[req.JobID]
	if !ok || !j.isMS {
		m.mu.Unlock()
		return
	}
	j.tasksRun--
	done := j.tasksRun == 0
	m.mu.Unlock()
	if done {
		m.send(ServerEndpoint, JobDoneMsg{JobID: req.JobID})
	}
}

// dynAdd incorporates dynamically allocated accelerators: DYNJOIN
// each new mom (serially, as the paper's mother superior does), tell
// the existing moms about the enlarged host set, and ack the server.
func (m *Mom) dynAdd(req DynAddMsg) {
	// mom.dynadd covers the serial DYNJOIN fan-out plus the host-set
	// update broadcast — the mother-superior share of a pbs_dynget.
	var sp *trace.Span
	if trc := m.sim.Tracer(); trc != nil {
		sp = trc.Start("pbs/mom@"+m.host, "mom.dynadd", "job", req.JobID, "req", strconv.Itoa(req.ReqID))
	}
	sp.Link(req.Cause) // server's dynalloc span
	defer sp.End()
	for _, h := range req.Hosts {
		m.send(MomEndpoint(h), DynJoinJobMsg{JobID: req.JobID, MS: m.host, ReplyTo: m.ep.Name()})
		ack, err := m.ep.RecvMatch(func(msg *netsim.Message) bool {
			ack, ok := msg.Payload.(DynJoinAck)
			return ok && ack.JobID == req.JobID && ack.Host == h
		})
		ack.Release()
		if err != nil {
			return
		}
	}
	m.mu.Lock()
	j, ok := m.jobs[req.JobID]
	var others []string
	if ok {
		j.hosts = append(j.hosts, req.Hosts...)
		others = append([]string(nil), j.hosts...)
	}
	m.mu.Unlock()
	// Update the existing moms' databases (asynchronous).
	for _, h := range others {
		if h == m.host || contains(req.Hosts, h) {
			continue
		}
		m.send(MomEndpoint(h), UpdateJobMsg{JobID: req.JobID, Hosts: others})
	}
	m.sendCause(req.ReplyTo, DynAddAck{JobID: req.JobID, ReqID: req.ReqID, Cause: sp.ID()}, sp.ID())
}

// dynRemove drives DISJOIN_JOB for a released dynamic set and updates
// the remaining moms.
func (m *Mom) dynRemove(req DynRemoveMsg) {
	for _, h := range req.Hosts {
		m.send(MomEndpoint(h), DisJoinJobMsg{JobID: req.JobID, ReplyTo: m.ep.Name()})
		ack, err := m.ep.RecvMatch(func(msg *netsim.Message) bool {
			ack, ok := msg.Payload.(DisJoinAck)
			return ok && ack.JobID == req.JobID && ack.Host == h
		})
		ack.Release()
		if err != nil {
			return
		}
	}
	m.mu.Lock()
	j, ok := m.jobs[req.JobID]
	var others []string
	if ok {
		j.hosts = without(j.hosts, req.Hosts)
		others = append([]string(nil), j.hosts...)
	}
	m.mu.Unlock()
	for _, h := range others {
		if h == m.host {
			continue
		}
		m.send(MomEndpoint(h), UpdateJobMsg{JobID: req.JobID, Hosts: others})
	}
}

func contains(hs []string, h string) bool {
	for _, x := range hs {
		if x == h {
			return true
		}
	}
	return false
}

func without(hs, remove []string) []string {
	out := hs[:0]
	for _, h := range hs {
		if !contains(remove, h) {
			out = append(out, h)
		}
	}
	return out
}
