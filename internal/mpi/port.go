package mpi

import (
	"fmt"

	"repro/internal/netsim"
)

// portState is the rendezvous object behind an MPI port name.
type portState struct {
	name  string
	owner int // proc id of the process that opened the port
}

// OpenPort publishes a port (MPI_Open_port). The returned name can be
// handed to other processes out of band — in the DAC architecture the
// accelerator daemons write it to a file the compute node reads.
func (p *Proc) OpenPort() string {
	rt := p.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.nextPort++
	name := fmt.Sprintf("port%d@p%d", rt.nextPort, p.id)
	rt.ports[name] = &portState{name: name, owner: p.id}
	return name
}

// ClosePort withdraws a port.
func (p *Proc) ClosePort(name string) {
	rt := p.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.ports, name)
}

// Port handshake tags (reserved negative range, see comm.go).
const (
	tagConnReq    = -110
	tagConnAccept = -111
	tagNewComm    = -112
)

// Accept waits for a connection on the port and returns an
// intercommunicator whose remote group is the connecting
// communicator's group (MPI_Comm_accept). It is collective over local:
// every member must call it; rank 0 must be the port owner.
func (p *Proc) Accept(port string, local *Comm) (*Comm, error) {
	if err := local.ok(); err != nil {
		return nil, err
	}
	cb := p.rt.cfg.ControlBytes
	if local.rank == 0 {
		rt := p.rt
		rt.mu.Lock()
		ps, ok := rt.ports[port]
		rt.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownPort, port)
		}
		if ps.owner != p.id {
			return nil, fmt.Errorf("mpi: Accept on port %q by non-owner process %d", port, p.id)
		}
		// Wait for the connect request carrying the remote group.
		m, err := p.ep.RecvMatch(func(m *netsim.Message) bool {
			env, ok := m.Payload.(envelope)
			return ok && env.comm == "port/"+port && env.tag == tagConnReq
		})
		if err != nil {
			return nil, err
		}
		req := m.Payload.(envelope).payload.(connReq)
		m.Release()
		p.rt.sim.Sleep(p.rt.cfg.ConnectOverhead)
		desc := commDesc{id: rt.newCommID(), group: local.group, remote: req.group}
		// Reply with the accepted descriptor (remote sees the groups
		// swapped).
		reply := commDesc{id: desc.id, group: req.group, remote: local.group}
		if err := p.ep.Send(req.replyTo, "port/"+port,
			envelope{comm: "port/" + port, tag: tagConnAccept, payload: reply}, cb); err != nil {
			return nil, err
		}
		// Distribute to the local group.
		if _, err := local.Bcast(0, desc, cb); err != nil {
			return nil, err
		}
		return desc.handleFor(rt, p), nil
	}
	v, err := local.Bcast(0, nil, cb)
	if err != nil {
		return nil, err
	}
	return v.(commDesc).handleFor(p.rt, p), nil
}

// connReq is the payload of a connection request: the connecting
// group and where to send the reply.
type connReq struct {
	group   []int
	replyTo string
}

// Connect establishes an intercommunicator with the process group
// listening on port (MPI_Comm_connect). Collective over local; rank 0
// performs the handshake.
func (p *Proc) Connect(port string, local *Comm) (*Comm, error) {
	if err := local.ok(); err != nil {
		return nil, err
	}
	cb := p.rt.cfg.ControlBytes
	if local.rank == 0 {
		rt := p.rt
		rt.mu.Lock()
		ps, ok := rt.ports[port]
		rt.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownPort, port)
		}
		owner := rt.proc(ps.owner)
		if owner == nil {
			return nil, fmt.Errorf("%w: %q (owner gone)", ErrUnknownPort, port)
		}
		p.rt.sim.Sleep(p.rt.cfg.ConnectOverhead)
		req := connReq{group: local.group, replyTo: p.ep.Name()}
		if err := p.ep.Send(owner.ep.Name(), "port/"+port,
			envelope{comm: "port/" + port, tag: tagConnReq, payload: req}, cb); err != nil {
			return nil, err
		}
		m, err := p.ep.RecvMatch(func(m *netsim.Message) bool {
			env, ok := m.Payload.(envelope)
			return ok && env.comm == "port/"+port && env.tag == tagConnAccept
		})
		if err != nil {
			return nil, err
		}
		desc := m.Payload.(envelope).payload.(commDesc)
		m.Release()
		if _, err := local.Bcast(0, desc, cb); err != nil {
			return nil, err
		}
		return desc.handleFor(rt, p), nil
	}
	v, err := local.Bcast(0, nil, cb)
	if err != nil {
		return nil, err
	}
	return v.(commDesc).handleFor(p.rt, p), nil
}
