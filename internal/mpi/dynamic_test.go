package mpi

import (
	"errors"
	"testing"
	"time"
)

// TestConnectAcceptBuildsIntercomm mirrors the static-allocation path
// of the paper (Section III-C): the accelerator daemons open a port,
// the compute node connects, and both sides obtain an
// intercommunicator.
func TestConnectAcceptBuildsIntercomm(t *testing.T) {
	s, rt, n := testRuntime(t, Config{ConnectOverhead: 2 * time.Millisecond})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 4)
		portCh := make(chan string, 1) // handed off before any Recv parks, safe

		// Accelerator side: world of 3 daemons, root opens a port.
		rt.LaunchWorld([]string{"ac0", "ac1", "ac2"}, "daemons", func(p *Proc) {
			defer j.done()
			w := p.World()
			var port string
			if w.Rank() == 0 {
				port = p.OpenPort()
				portCh <- port
			}
			inter, err := p.Accept(port, w)
			if w.Rank() != 0 {
				// Non-roots pass the port only via the collective.
				_ = port
			}
			if err != nil {
				t.Errorf("Accept: %v", err)
				return
			}
			if inter.RemoteSize() != 1 || inter.Size() != 3 {
				t.Errorf("daemon intercomm: local=%d remote=%d", inter.Size(), inter.RemoteSize())
			}
			// Receive one message from the compute node.
			st, err := inter.Recv(0, 1)
			if err != nil || st.Payload.(string) != "hello" {
				t.Errorf("daemon recv: %v %v", st, err)
			}
		})

		// Compute node side.
		rt.Launch("cn0", "app", func(p *Proc) {
			defer j.done()
			port := <-portCh
			inter, err := p.Connect(port, p.World())
			if err != nil {
				t.Errorf("Connect: %v", err)
				return
			}
			if inter.RemoteSize() != 3 || inter.Size() != 1 {
				t.Errorf("cn intercomm: local=%d remote=%d", inter.Size(), inter.RemoteSize())
			}
			for i := 0; i < 3; i++ {
				if err := inter.Send(i, 1, "hello", 0); err != nil {
					t.Errorf("Send: %v", err)
				}
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestMergeRanksMatchPaper verifies the rank layout of Section III-C:
// after merging, the compute node holds rank 0 and the accelerators
// ranks 1..x.
func TestMergeRanksMatchPaper(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		const acs = 3
		j := newJoin(s, acs+1)
		portCh := make(chan string, 1)
		ranks := make(chan int, acs)

		rt.LaunchWorld([]string{"ac0", "ac1", "ac2"}, "daemons", func(p *Proc) {
			defer j.done()
			w := p.World()
			var port string
			if w.Rank() == 0 {
				port = p.OpenPort()
				portCh <- port
			}
			inter, err := p.Accept(port, w)
			if err != nil {
				t.Errorf("Accept: %v", err)
				return
			}
			intra, err := inter.Merge(true)
			if err != nil {
				t.Errorf("Merge: %v", err)
				return
			}
			ranks <- intra.Rank()
			if intra.Size() != acs+1 {
				t.Errorf("merged size = %d, want %d", intra.Size(), acs+1)
			}
		})

		rt.Launch("cn0", "app", func(p *Proc) {
			defer j.done()
			inter, err := p.Connect(<-portCh, p.World())
			if err != nil {
				t.Errorf("Connect: %v", err)
				return
			}
			intra, err := inter.Merge(false)
			if err != nil {
				t.Errorf("Merge: %v", err)
				return
			}
			if intra.Rank() != 0 {
				t.Errorf("compute node rank = %d, want 0", intra.Rank())
			}
		})
		j.wait()
		close(ranks)
		seen := map[int]bool{}
		for r := range ranks {
			if r < 1 || r > acs {
				t.Errorf("accelerator rank %d out of 1..%d", r, acs)
			}
			seen[r] = true
		}
		if len(seen) != acs {
			t.Errorf("accelerator ranks not distinct: %v", seen)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestSpawnBuildsIntercomm mirrors the dynamic-allocation path
// (Section III-D): the compute node spawns daemons, which see a
// parent intercommunicator.
func TestSpawnBuildsIntercomm(t *testing.T) {
	const startup = 40 * time.Millisecond
	s, rt, n := testRuntime(t, Config{ProcStartup: startup})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 1+2)
		rt.Register("acdaemon", func(p *Proc, args []string) {
			defer j.done()
			if p.Parent() == nil {
				t.Error("spawned daemon has no parent comm")
				return
			}
			if got := p.Parent().RemoteSize(); got != 1 {
				t.Errorf("parent remote size = %d", got)
			}
			if len(args) != 1 || args[0] != "-serve" {
				t.Errorf("args = %v", args)
			}
			st, err := p.Parent().Recv(0, 5)
			if err != nil || st.Payload.(string) != "work" {
				t.Errorf("daemon recv: %v %v", st, err)
			}
		})
		rt.Launch("cn0", "app", func(p *Proc) {
			defer j.done()
			start := s.Now()
			inter, err := p.Spawn("acdaemon", []string{"-serve"}, []string{"ac0", "ac1"})
			if err != nil {
				t.Errorf("Spawn: %v", err)
				return
			}
			// Spawn blocks for parallel startup + ready latency.
			if got := s.Now() - start; got < startup {
				t.Errorf("Spawn returned after %v, want >= %v", got, startup)
			}
			if got := s.Now() - start; got > startup+10*testLatency {
				t.Errorf("Spawn took %v; children should boot in parallel", got)
			}
			if inter.RemoteSize() != 2 {
				t.Errorf("remote size = %d, want 2", inter.RemoteSize())
			}
			for i := 0; i < 2; i++ {
				if err := inter.Send(i, 5, "work", 0); err != nil {
					t.Errorf("Send: %v", err)
				}
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestSpawnMergeRanks verifies Section III-D's layout after a dynamic
// allocation: old ranks keep 0..x, new accelerators get x+1..x+y.
func TestSpawnMergeRanks(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 1+2)
		ranks := make(chan int, 2)
		rt.Register("acdaemon", func(p *Proc, args []string) {
			defer j.done()
			intra, err := p.Parent().Merge(true)
			if err != nil {
				t.Errorf("Merge: %v", err)
				return
			}
			ranks <- intra.Rank()
		})
		rt.Launch("cn0", "app", func(p *Proc) {
			defer j.done()
			inter, err := p.Spawn("acdaemon", nil, []string{"ac0", "ac1"})
			if err != nil {
				t.Errorf("Spawn: %v", err)
				return
			}
			intra, err := inter.Merge(false)
			if err != nil {
				t.Errorf("Merge: %v", err)
				return
			}
			if intra.Rank() != 0 {
				t.Errorf("parent rank = %d, want 0", intra.Rank())
			}
		})
		j.wait()
		close(ranks)
		seen := map[int]bool{}
		for r := range ranks {
			seen[r] = true
		}
		if !seen[1] || !seen[2] {
			t.Errorf("spawned ranks = %v, want {1,2}", seen)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSpawnUnknownCommand(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 1)
		rt.Launch("cn0", "app", func(p *Proc) {
			defer j.done()
			if _, err := p.Spawn("nope", nil, []string{"h"}); !errors.Is(err, ErrUnknownCommand) {
				t.Errorf("err = %v", err)
			}
			if _, err := p.Spawn("nope", nil, nil); err == nil {
				t.Error("Spawn with no hosts should fail")
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestConnectUnknownPort(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 1)
		rt.Launch("cn0", "app", func(p *Proc) {
			defer j.done()
			if _, err := p.Connect("bogus", p.World()); !errors.Is(err, ErrUnknownPort) {
				t.Errorf("err = %v", err)
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestClosePortWithdraws(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 1)
		rt.Launch("cn0", "app", func(p *Proc) {
			defer j.done()
			port := p.OpenPort()
			p.ClosePort(port)
			if _, err := p.Connect(port, p.World()); !errors.Is(err, ErrUnknownPort) {
				t.Errorf("err = %v", err)
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMergeOnIntracommFails(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 1)
		rt.Launch("cn0", "app", func(p *Proc) {
			defer j.done()
			if _, err := p.World().Merge(false); !errors.Is(err, ErrNotIntercomm) {
				t.Errorf("err = %v", err)
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestDisconnectInvalidatesComm mirrors AC_Free's use of
// MPI_Comm_disconnect before releasing accelerators.
func TestDisconnectInvalidatesComm(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 2)
		rt.Register("acdaemon", func(p *Proc, args []string) {
			defer j.done()
			if err := p.Parent().Disconnect(); err != nil {
				t.Errorf("daemon Disconnect: %v", err)
			}
		})
		rt.Launch("cn0", "app", func(p *Proc) {
			defer j.done()
			inter, err := p.Spawn("acdaemon", nil, []string{"ac0"})
			if err != nil {
				t.Errorf("Spawn: %v", err)
				return
			}
			if err := inter.Disconnect(); err != nil {
				t.Errorf("Disconnect: %v", err)
				return
			}
			if err := inter.Send(0, 1, nil, 0); !errors.Is(err, ErrDisconnected) {
				t.Errorf("Send after disconnect: %v", err)
			}
			if _, err := inter.Recv(0, 1); !errors.Is(err, ErrDisconnected) {
				t.Errorf("Recv after disconnect: %v", err)
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestSpawnStaggeredVsParallel is a property of the spawn model the
// figure calibration relies on: total spawn latency is flat in the
// number of children.
func TestSpawnFlatInChildCount(t *testing.T) {
	const startup = 50 * time.Millisecond
	timeFor := func(nchildren int) time.Duration {
		s, rt, n := testRuntime(t, Config{ProcStartup: startup})
		var took time.Duration
		err := s.Run(func() {
			defer n.Close()
			j := newJoin(s, 1+nchildren)
			rt.Register("d", func(p *Proc, args []string) { j.done() })
			rt.Launch("cn0", "app", func(p *Proc) {
				defer j.done()
				hosts := make([]string, nchildren)
				for i := range hosts {
					hosts[i] = "ac"
				}
				start := s.Now()
				if _, err := p.Spawn("d", nil, hosts); err != nil {
					t.Errorf("Spawn: %v", err)
				}
				took = s.Now() - start
			})
			j.wait()
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return took
	}
	t1, t6 := timeFor(1), timeFor(6)
	if t6 < t1 {
		t.Fatalf("spawn(6)=%v < spawn(1)=%v", t6, t1)
	}
	if t6 > t1+5*testLatency {
		t.Fatalf("spawn(6)=%v not flat vs spawn(1)=%v", t6, t1)
	}
}
