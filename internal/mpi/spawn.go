package mpi

import (
	"fmt"
	"sort"

	"repro/internal/netsim"
)

const (
	tagSpawnReady = -120
	tagMergeReq   = -121
	tagMergeAck   = -122
)

// Spawn launches count instances of a registered command, one per
// entry of hosts (len(hosts) == count), and returns an
// intercommunicator whose remote group is the children's COMM_WORLD
// (MPI_Comm_spawn with a singleton parent). The children boot in
// parallel, each paying Config.ProcStartup, and the call returns once
// all of them have completed MPI_Init — the same blocking behaviour
// the paper's resource-management library relies on for dynamic
// allocation.
func (p *Proc) Spawn(command string, args []string, hosts []string) (*Comm, error) {
	rt := p.rt
	rt.mu.Lock()
	fn, ok := rt.commands[command]
	rt.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCommand, command)
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("mpi: Spawn with no hosts")
	}
	rt.sim.Sleep(rt.cfg.SpawnOverhead)

	children := make([]*Proc, len(hosts))
	ids := make([]int, len(hosts))
	for i, h := range hosts {
		children[i] = rt.newProc(h)
		ids[i] = children[i].id
	}
	worldID := rt.newCommID()
	parentID := rt.newCommID()
	for i, c := range children {
		c.world = &Comm{rt: rt, id: worldID, rank: i, group: append([]int(nil), ids...)}
		c.parent = &Comm{rt: rt, id: parentID, rank: i, group: append([]int(nil), ids...), remote: []int{p.id}}
	}
	parentView := &Comm{rt: rt, id: parentID, rank: 0, group: []int{p.id}, remote: append([]int(nil), ids...)}

	// Boot the children in parallel. Each sleeps through its startup
	// (exec + MPI_Init), reports readiness to the parent, then runs
	// the command body.
	for i, c := range children {
		c := c
		rt.sim.Go(fmt.Sprintf("%s[%d]@%s", command, i, c.host), func() {
			rt.sim.Sleep(rt.cfg.ProcStartup)
			env := envelope{comm: parentID, tag: tagSpawnReady, src: c.world.rank}
			if err := c.ep.Send(p.ep.Name(), parentID, env, rt.cfg.ControlBytes); err != nil {
				return
			}
			fn(c, args)
		})
	}
	for range children {
		if _, err := parentView.Recv(AnySource, tagSpawnReady); err != nil {
			return nil, err
		}
	}
	return parentView, nil
}

// SpawnCollective is MPI_Comm_spawn over an existing
// intracommunicator: every member of c must call it with identical
// arguments; rank 0 performs the launch. The returned
// intercommunicator has c's group as its local group and the
// children's COMM_WORLD as the remote group, so a subsequent
// Merge(false) preserves the existing ranks and appends the children
// — exactly the rank layout of the paper's dynamic allocation
// (Section III-D).
func (c *Comm) SpawnCollective(command string, args []string, hosts []string) (*Comm, error) {
	if err := c.ok(); err != nil {
		return nil, err
	}
	if c.IsInter() {
		return nil, fmt.Errorf("mpi: SpawnCollective on an intercommunicator")
	}
	rt := c.rt
	p := c.myProc()
	cb := rt.cfg.ControlBytes
	if c.rank != 0 {
		v, err := c.Bcast(0, nil, cb)
		if err != nil {
			return nil, err
		}
		desc := v.(commDesc)
		if desc.id == "" {
			return nil, fmt.Errorf("mpi: collective spawn failed at root")
		}
		return desc.handleFor(rt, p), nil
	}

	rt.mu.Lock()
	fn, ok := rt.commands[command]
	rt.mu.Unlock()
	if !ok {
		// Propagate failure to the group so nobody hangs in Bcast.
		c.Bcast(0, commDesc{}, cb)
		return nil, fmt.Errorf("%w: %q", ErrUnknownCommand, command)
	}
	if len(hosts) == 0 {
		c.Bcast(0, commDesc{}, cb)
		return nil, fmt.Errorf("mpi: SpawnCollective with no hosts")
	}
	rt.sim.Sleep(rt.cfg.SpawnOverhead)

	children := make([]*Proc, len(hosts))
	ids := make([]int, len(hosts))
	for i, h := range hosts {
		children[i] = rt.newProc(h)
		ids[i] = children[i].id
	}
	worldID := rt.newCommID()
	parentID := rt.newCommID()
	for i, ch := range children {
		ch.world = &Comm{rt: rt, id: worldID, rank: i, group: append([]int(nil), ids...)}
		ch.parent = &Comm{rt: rt, id: parentID, rank: i, group: append([]int(nil), ids...), remote: append([]int(nil), c.group...)}
	}
	for i, ch := range children {
		ch := ch
		rt.sim.Go(fmt.Sprintf("%s[%d]@%s", command, i, ch.host), func() {
			rt.sim.Sleep(rt.cfg.ProcStartup)
			env := envelope{comm: parentID, tag: tagSpawnReady, src: ch.world.rank}
			if err := ch.ep.Send(p.ep.Name(), parentID, env, rt.cfg.ControlBytes); err != nil {
				return
			}
			fn(ch, args)
		})
	}
	desc := commDesc{id: parentID, group: append([]int(nil), c.group...), remote: ids}
	parentView := desc.handleFor(rt, p)
	for range children {
		if _, err := parentView.Recv(AnySource, tagSpawnReady); err != nil {
			return nil, err
		}
	}
	if _, err := c.Bcast(0, desc, cb); err != nil {
		return nil, err
	}
	return parentView, nil
}

// Shrink derives a new intracommunicator containing the subset of the
// current local group given by keep (ranks in the current
// communicator, in the new rank order). Every retained member must
// call Shrink with identical arguments; no messages are exchanged —
// the new context id is derived deterministically from the old one
// and gen, mirroring a local MPI_Comm_create over a shrunken group.
// The DAC library uses it after AC_Free so that later collective
// spawns do not involve released daemons.
func (c *Comm) Shrink(keep []int, gen int) (*Comm, error) {
	if err := c.ok(); err != nil {
		return nil, err
	}
	group := make([]int, 0, len(keep))
	myRank := -1
	for newRank, old := range keep {
		if old < 0 || old >= len(c.group) {
			return nil, fmt.Errorf("%w: shrink keep rank %d", ErrInvalidRank, old)
		}
		group = append(group, c.group[old])
		if old == c.rank {
			myRank = newRank
		}
	}
	if myRank < 0 {
		return nil, fmt.Errorf("%w: caller rank %d not kept", ErrInvalidRank, c.rank)
	}
	return &Comm{
		rt:    c.rt,
		id:    fmt.Sprintf("%s/shrink%d", c.id, gen),
		rank:  myRank,
		group: group,
	}, nil
}

// Split partitions an intracommunicator by color (MPI_Comm_split):
// members sharing a color form a new intracommunicator, ranked by
// (key, old rank). Every member must call Split; color < 0
// (MPI_UNDEFINED) returns nil for that member. The operation is
// deterministic and local apart from a gather/broadcast at rank 0,
// mirroring the collective's cost.
func (c *Comm) Split(color, key int) (*Comm, error) {
	if err := c.ok(); err != nil {
		return nil, err
	}
	if c.IsInter() {
		return nil, fmt.Errorf("mpi: Split on an intercommunicator")
	}
	cb := c.rt.cfg.ControlBytes
	mine := splitEntry{color: color, key: key, rank: c.rank, procID: c.group[c.rank]}
	all, err := c.Gather(0, mine, cb)
	if err != nil {
		return nil, err
	}
	var groupsV any
	if c.rank == 0 {
		// Partition by color; order by (key, rank).
		byColor := make(map[int][]splitEntry)
		for _, v := range all {
			e := v.(splitEntry)
			if e.color < 0 {
				continue
			}
			byColor[e.color] = append(byColor[e.color], e)
		}
		groups := make(map[int][]int) // color -> proc ids in new rank order
		ids := make(map[int]string)
		for col, es := range byColor {
			sort.SliceStable(es, func(a, b int) bool {
				if es[a].key != es[b].key {
					return es[a].key < es[b].key
				}
				return es[a].rank < es[b].rank
			})
			procs := make([]int, len(es))
			for i, e := range es {
				procs[i] = e.procID
			}
			groups[col] = procs
			ids[col] = c.rt.newCommID()
		}
		groupsV = splitPlan{groups: groups, ids: ids}
	}
	v, err := c.Bcast(0, groupsV, cb)
	if err != nil {
		return nil, err
	}
	if color < 0 {
		return nil, nil
	}
	plan := v.(splitPlan)
	procs := plan.groups[color]
	p := c.myProc()
	rank := -1
	for i, id := range procs {
		if id == p.id {
			rank = i
			break
		}
	}
	if rank < 0 {
		return nil, fmt.Errorf("mpi: Split plan missing caller (color %d)", color)
	}
	return &Comm{rt: c.rt, id: plan.ids[color], rank: rank, group: append([]int(nil), procs...)}, nil
}

// splitEntry is each member's contribution to a Split.
type splitEntry struct{ color, key, rank, procID int }

// splitPlan is the broadcast result of a Split at rank 0.
type splitPlan struct {
	groups map[int][]int
	ids    map[int]string
}

// mergeInfo is exchanged root-to-root during Merge.
type mergeInfo struct {
	high  bool
	group []int
}

// Merge turns an intercommunicator into an intracommunicator
// (MPI_Intercomm_merge). The group that passes high == true receives
// the upper rank range. Collective over both local groups; the two
// rank-0 processes perform the exchange.
//
// In the DAC architecture the compute node calls Merge(false) so it
// keeps rank 0, while accelerator daemons call Merge(true) and end up
// with ranks 1..x (paper Section III-C/D).
func (c *Comm) Merge(high bool) (*Comm, error) {
	if err := c.ok(); err != nil {
		return nil, err
	}
	if !c.IsInter() {
		return nil, ErrNotIntercomm
	}
	rt := c.rt
	p := c.myProc()
	cb := rt.cfg.ControlBytes
	if c.rank == 0 {
		rt.sim.Sleep(rt.cfg.MergeOverhead)
		remoteRoot := rt.proc(c.remote[0])
		if remoteRoot == nil {
			return nil, fmt.Errorf("%w: merge peer gone", ErrInvalidRank)
		}
		// Deterministic initiator: the lower root proc id leads the
		// exchange so both sides agree on the new context id.
		var desc commDesc
		if p.id < remoteRoot.id {
			req := mergeInfo{high: high, group: c.group}
			if err := c.Send(0, tagMergeReq, req, cb); err != nil {
				return nil, err
			}
			st, err := c.Recv(0, tagMergeAck)
			if err != nil {
				return nil, err
			}
			ack := st.Payload.(mergeInfo)
			newID := rt.newCommID()
			merged := mergeGroups(c.group, high, ack.group, ack.high)
			desc = commDesc{id: newID, group: merged}
			// Tell the peer root the final descriptor.
			if err := c.Send(0, tagMergeInfo, desc, cb); err != nil {
				return nil, err
			}
		} else {
			st, err := c.Recv(0, tagMergeReq)
			if err != nil {
				return nil, err
			}
			req := st.Payload.(mergeInfo)
			ack := mergeInfo{high: high, group: c.group}
			if err := c.Send(0, tagMergeAck, ack, cb); err != nil {
				return nil, err
			}
			_ = req
			st, err = c.Recv(0, tagMergeInfo)
			if err != nil {
				return nil, err
			}
			desc = st.Payload.(commDesc)
		}
		// Distribute within the local group.
		if err := c.localBcast(desc); err != nil {
			return nil, err
		}
		return desc.handleFor(rt, p), nil
	}
	desc, err := c.localBcastRecv()
	if err != nil {
		return nil, err
	}
	return desc.handleFor(rt, p), nil
}

// mergeGroups orders the two groups by their high flags. When the
// flags agree, the group of the exchange initiator (ours) comes
// first, matching MPI's implementation-defined tie-break.
func mergeGroups(mine []int, myHigh bool, theirs []int, theirHigh bool) []int {
	var low, highG []int
	switch {
	case myHigh && !theirHigh:
		low, highG = theirs, mine
	case !myHigh && theirHigh:
		low, highG = mine, theirs
	default:
		low, highG = mine, theirs
	}
	out := make([]int, 0, len(low)+len(highG))
	out = append(out, low...)
	return append(out, highG...)
}

// localBcast sends desc to every non-root member of the local group
// over the intercommunicator's side channel.
func (c *Comm) localBcast(desc commDesc) error {
	me := c.myProc()
	for i := 1; i < len(c.group); i++ {
		dp := c.rt.proc(c.group[i])
		env := envelope{comm: c.id + "/local", tag: tagNewComm, src: 0, payload: desc}
		if err := me.ep.Send(dp.ep.Name(), c.id+"/local", env, c.rt.cfg.ControlBytes); err != nil {
			return err
		}
	}
	return nil
}

// localBcastRecv receives the descriptor distributed by localBcast.
func (c *Comm) localBcastRecv() (commDesc, error) {
	me := c.myProc()
	m, err := me.ep.RecvMatch(func(m *netsim.Message) bool {
		env, ok := m.Payload.(envelope)
		return ok && env.comm == c.id+"/local" && env.tag == tagNewComm
	})
	if err != nil {
		return commDesc{}, err
	}
	desc := m.Payload.(envelope).payload.(commDesc)
	m.Release()
	return desc, nil
}
