package mpi

import (
	"sync"
	"testing"
	"time"
)

func TestAttachBindsCurrentActor(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		p := rt.Attach("cn0")
		if p.World().Size() != 1 || p.World().Rank() != 0 {
			t.Errorf("attached world: rank=%d size=%d", p.World().Rank(), p.World().Size())
		}
		if p.Host() != "cn0" {
			t.Errorf("host = %q", p.Host())
		}
		// The attached proc can spawn from the main actor directly.
		j := newJoin(s, 1)
		rt.Register("d", func(c *Proc, args []string) { j.done() })
		inter, err := p.Spawn("d", nil, []string{"ac0"})
		if err != nil {
			t.Errorf("Spawn: %v", err)
			return
		}
		if inter.RemoteSize() != 1 {
			t.Errorf("remote = %d", inter.RemoteSize())
		}
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestSpawnCollectivePreservesRanks reproduces the paper's dynamic
// allocation layout: an existing intracomm [cn, d1, d2] collectively
// spawns 2 daemons; after merge the old members keep ranks 0..2 and
// the new daemons get 3..4.
func TestSpawnCollectivePreservesRanks(t *testing.T) {
	s, rt, n := testRuntime(t, Config{ProcStartup: 20 * time.Millisecond})
	err := s.Run(func() {
		defer n.Close()
		var mu sync.Mutex
		mergedRanks := map[int]int{} // proc id -> merged rank
		j := newJoin(s, 3+2)

		record := func(p *Proc, m *Comm) {
			mu.Lock()
			mergedRanks[p.ID()] = m.Rank()
			mu.Unlock()
		}

		rt.Register("dyn", func(p *Proc, args []string) {
			defer j.done()
			m, err := p.Parent().Merge(true)
			if err != nil {
				t.Errorf("child Merge: %v", err)
				return
			}
			record(p, m)
			if m.Size() != 5 {
				t.Errorf("merged size = %d", m.Size())
			}
		})

		var oldIDs []int
		procs := rt.LaunchWorld([]string{"cn0", "ac0", "ac1"}, "grp", func(p *Proc) {
			defer j.done()
			w := p.World()
			inter, err := w.SpawnCollective("dyn", nil, []string{"ac2", "ac3"})
			if err != nil {
				t.Errorf("SpawnCollective: %v", err)
				return
			}
			if inter.Size() != 3 || inter.RemoteSize() != 2 {
				t.Errorf("intercomm local=%d remote=%d", inter.Size(), inter.RemoteSize())
			}
			m, err := inter.Merge(false)
			if err != nil {
				t.Errorf("Merge: %v", err)
				return
			}
			record(p, m)
			if m.Rank() != w.Rank() {
				t.Errorf("rank changed across merge: world %d, merged %d", w.Rank(), m.Rank())
			}
		})
		for _, p := range procs {
			oldIDs = append(oldIDs, p.ID())
		}
		j.wait()
		mu.Lock()
		defer mu.Unlock()
		for i, id := range oldIDs {
			if mergedRanks[id] != i {
				t.Errorf("old member %d has merged rank %d, want %d", id, mergedRanks[id], i)
			}
		}
		newRanks := map[int]bool{}
		for id, r := range mergedRanks {
			isOld := false
			for _, o := range oldIDs {
				if o == id {
					isOld = true
				}
			}
			if !isOld {
				newRanks[r] = true
			}
		}
		if !newRanks[3] || !newRanks[4] {
			t.Errorf("new daemon ranks = %v, want {3,4}", newRanks)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSpawnCollectiveUnknownCommand(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 2)
		rt.LaunchWorld([]string{"h0", "h1"}, "grp", func(p *Proc) {
			defer j.done()
			if _, err := p.World().SpawnCollective("missing", nil, []string{"x"}); err == nil {
				t.Errorf("rank %d: expected failure", p.World().Rank())
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSpawnCollectiveOnIntercommFails(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 2)
		rt.Register("d", func(p *Proc, args []string) {
			defer j.done()
			if _, err := p.Parent().SpawnCollective("d", nil, []string{"x"}); err == nil {
				t.Error("SpawnCollective on intercomm should fail")
			}
		})
		rt.Launch("cn0", "app", func(p *Proc) {
			defer j.done()
			if _, err := p.Spawn("d", nil, []string{"ac0"}); err != nil {
				t.Errorf("Spawn: %v", err)
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestShrinkRenumbersRanks(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		const np = 4
		j := newJoin(s, np)
		rt.LaunchWorld([]string{"h0", "h1", "h2", "h3"}, "w", func(p *Proc) {
			defer j.done()
			w := p.World()
			if w.Rank() == 3 {
				// Released member does not participate.
				return
			}
			nc, err := w.Shrink([]int{0, 1, 2}, 1)
			if err != nil {
				t.Errorf("Shrink: %v", err)
				return
			}
			if nc.Size() != 3 || nc.Rank() != w.Rank() {
				t.Errorf("shrunk: rank=%d size=%d", nc.Rank(), nc.Size())
			}
			// The shrunk comm is usable for communication.
			if nc.Rank() == 0 {
				for i := 1; i < 3; i++ {
					if err := nc.Send(i, 1, "hi", 0); err != nil {
						t.Errorf("Send: %v", err)
					}
				}
			} else {
				if st, err := nc.Recv(0, 1); err != nil || st.Payload.(string) != "hi" {
					t.Errorf("Recv: %v %v", st, err)
				}
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestShrinkReordersKeepList(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 1)
		rt.Launch("h0", "app", func(p *Proc) {
			defer j.done()
			w := p.World()
			if _, err := w.Shrink([]int{5}, 1); err == nil {
				t.Error("out-of-range keep should fail")
			}
			if _, err := w.Shrink([]int{}, 1); err == nil {
				t.Error("dropping the caller should fail")
			}
			nc, err := w.Shrink([]int{0}, 2)
			if err != nil || nc.Rank() != 0 || nc.Size() != 1 {
				t.Errorf("Shrink self: %v %v", nc, err)
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
