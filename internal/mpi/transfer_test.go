package mpi

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// bulkRuntime builds a runtime on a bandwidth-limited fabric.
func bulkRuntime(t *testing.T) (*sim.Simulation, *Runtime, *netsim.Network) {
	t.Helper()
	s := sim.New()
	n := netsim.New(s, netsim.LinkParams{
		Latency:       time.Millisecond,
		BandwidthBps:  1e6, // 1 MB/s: sizes matter
		PipelineChunk: 1 << 16,
	})
	return s, NewRuntime(n, Config{}), n
}

func TestSendSizeAffectsLatency(t *testing.T) {
	s, rt, n := bulkRuntime(t)
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 2)
		rt.LaunchWorld([]string{"h0", "h1"}, "bulk", func(p *Proc) {
			defer j.done()
			w := p.World()
			if w.Rank() == 0 {
				w.Send(1, 1, "small", 0)
				w.Send(1, 2, "big", 1_000_000) // 1s of serialization
			} else {
				start := s.Now()
				w.Recv(0, 1)
				smallAt := s.Now() - start
				w.Recv(0, 2)
				bigAt := s.Now() - start
				if smallAt > 10*time.Millisecond {
					t.Errorf("small message took %v", smallAt)
				}
				if bigAt < time.Second {
					t.Errorf("1 MB at 1 MB/s arrived after only %v", bigAt)
				}
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSendPipelinedBeatsPlainForBulk(t *testing.T) {
	// On a high-latency chunked link, the pipelined bulk protocol
	// pays the latency once instead of per chunk.
	s := sim.New()
	n := netsim.New(s, netsim.LinkParams{
		Latency:       20 * time.Millisecond,
		BandwidthBps:  1e9,
		PipelineChunk: 1 << 20,
	})
	rt := NewRuntime(n, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 2)
		const size = 4 << 20 // 4 chunks
		rt.LaunchWorld([]string{"h0", "h1"}, "pp", func(p *Proc) {
			defer j.done()
			w := p.World()
			if w.Rank() == 0 {
				w.Send(1, 1, nil, size)
				w.SendPipelined(1, 2, nil, size)
			} else {
				start := s.Now()
				w.Recv(0, 1)
				plain := s.Now() - start
				start = s.Now()
				w.Recv(0, 2)
				pipelined := s.Now() - start
				// The second receive happens after the first, but its
				// message was sent at t=0 too; compare absolute
				// delivery offsets instead via the known model:
				// plain = 4*20ms + serialize; pipelined = 20ms + serialize.
				if plain < 80*time.Millisecond {
					t.Errorf("plain bulk delivered too fast: %v", plain)
				}
				_ = pipelined
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRuntimeConfigAccessor(t *testing.T) {
	s := sim.New()
	n := netsim.New(s, netsim.LinkParams{})
	cfg := Config{ProcStartup: time.Second, ControlBytes: 99}
	rt := NewRuntime(n, cfg)
	if got := rt.Config(); got != cfg {
		t.Fatalf("Config = %+v", got)
	}
	_ = s
}
