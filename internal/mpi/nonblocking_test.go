package mpi

import (
	"testing"
	"time"
)

func TestIsendIrecvOverlap(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 2)
		rt.LaunchWorld([]string{"h0", "h1"}, "nb", func(p *Proc) {
			defer j.done()
			w := p.World()
			if w.Rank() == 0 {
				req := w.Isend(1, 1, "data", 0)
				if _, err := req.Wait(); err != nil {
					t.Errorf("Isend wait: %v", err)
				}
			} else {
				req := w.Irecv(0, 1)
				// Overlap: compute while the receive is posted.
				s.Sleep(5 * time.Millisecond)
				st, err := req.Wait()
				if err != nil || st.Payload.(string) != "data" {
					t.Errorf("Irecv: %v %v", st, err)
				}
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRequestTest(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 1)
		rt.Launch("h0", "app", func(p *Proc) {
			defer j.done()
			req := p.World().Irecv(AnySource, 1)
			if _, done, _ := req.Test(); done {
				t.Error("unmatched Irecv reports done")
			}
			if err := p.World().Send(0, 1, "self", 0); err != nil {
				t.Errorf("Send: %v", err)
				return
			}
			st, err := req.Wait()
			if err != nil || st.Payload.(string) != "self" {
				t.Errorf("Wait: %v %v", st, err)
			}
			if _, done, _ := req.Test(); !done {
				t.Error("completed request reports pending")
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestWaitAll(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 2)
		rt.LaunchWorld([]string{"h0", "h1"}, "wa", func(p *Proc) {
			defer j.done()
			w := p.World()
			if w.Rank() == 0 {
				var reqs []*Request
				for i := 0; i < 5; i++ {
					reqs = append(reqs, w.Irecv(1, i))
				}
				if err := WaitAll(reqs...); err != nil {
					t.Errorf("WaitAll: %v", err)
				}
			} else {
				for i := 4; i >= 0; i-- { // reversed order still matches
					if err := w.Send(0, i, i, 0); err != nil {
						t.Errorf("Send: %v", err)
					}
				}
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSendrecvExchange(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 2)
		rt.LaunchWorld([]string{"h0", "h1"}, "sr", func(p *Proc) {
			defer j.done()
			w := p.World()
			peer := 1 - w.Rank()
			// Head-to-head exchange: both ranks Sendrecv at once.
			st, err := w.Sendrecv(peer, 1, w.Rank(), 0, peer, 1)
			if err != nil {
				t.Errorf("Sendrecv: %v", err)
				return
			}
			if st.Payload.(int) != peer {
				t.Errorf("rank %d received %v, want %d", w.Rank(), st.Payload, peer)
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestScatterDistributes(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 3)
		rt.LaunchWorld([]string{"h0", "h1", "h2"}, "sc", func(p *Proc) {
			defer j.done()
			w := p.World()
			var vals []any
			if w.Rank() == 1 {
				vals = []any{10, 11, 12}
			}
			got, err := w.Scatter(1, vals, 8)
			if err != nil {
				t.Errorf("Scatter: %v", err)
				return
			}
			if got.(int) != 10+w.Rank() {
				t.Errorf("rank %d got %v", w.Rank(), got)
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestScatterBadArguments(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 1)
		rt.Launch("h0", "app", func(p *Proc) {
			defer j.done()
			if _, err := p.World().Scatter(2, nil, 0); err == nil {
				t.Error("bad root should fail")
			}
			if _, err := p.World().Scatter(0, []any{1, 2}, 0); err == nil {
				t.Error("wrong value count should fail")
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestAllgather(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 4)
		rt.LaunchWorld([]string{"h0", "h1", "h2", "h3"}, "ag", func(p *Proc) {
			defer j.done()
			w := p.World()
			vals, err := w.Allgather(w.Rank()*w.Rank(), 8)
			if err != nil {
				t.Errorf("Allgather: %v", err)
				return
			}
			for i, v := range vals {
				if v.(int) != i*i {
					t.Errorf("rank %d: vals[%d] = %v", w.Rank(), i, v)
				}
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
