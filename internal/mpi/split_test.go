package mpi

import (
	"sync"
	"testing"
)

func TestSplitPartitionsByColor(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		const np = 6
		j := newJoin(s, np)
		var mu sync.Mutex
		results := map[int]struct{ rank, size int }{}
		hosts := []string{"h0", "h1", "h2", "h3", "h4", "h5"}
		rt.LaunchWorld(hosts, "w", func(p *Proc) {
			defer j.done()
			w := p.World()
			// Even ranks color 0, odd ranks color 1.
			sub, err := w.Split(w.Rank()%2, w.Rank())
			if err != nil {
				t.Errorf("Split: %v", err)
				return
			}
			mu.Lock()
			results[w.Rank()] = struct{ rank, size int }{sub.Rank(), sub.Size()}
			mu.Unlock()
			// The subcommunicator carries traffic.
			if sub.Rank() == 0 {
				for i := 1; i < sub.Size(); i++ {
					if err := sub.Send(i, 1, "hi", 0); err != nil {
						t.Errorf("Send: %v", err)
					}
				}
			} else {
				if st, err := sub.Recv(0, 1); err != nil || st.Payload.(string) != "hi" {
					t.Errorf("Recv: %v %v", st, err)
				}
			}
		})
		j.wait()
		mu.Lock()
		defer mu.Unlock()
		for rank, r := range results {
			if r.size != 3 {
				t.Errorf("rank %d sub size = %d", rank, r.size)
			}
			if want := rank / 2; r.rank != want {
				t.Errorf("rank %d sub rank = %d, want %d", rank, r.rank, want)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSplitKeyReordersRanks(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		const np = 3
		j := newJoin(s, np)
		var mu sync.Mutex
		subRanks := map[int]int{}
		rt.LaunchWorld([]string{"h0", "h1", "h2"}, "w", func(p *Proc) {
			defer j.done()
			w := p.World()
			// Reverse order via descending keys.
			sub, err := w.Split(0, np-w.Rank())
			if err != nil {
				t.Errorf("Split: %v", err)
				return
			}
			mu.Lock()
			subRanks[w.Rank()] = sub.Rank()
			mu.Unlock()
		})
		j.wait()
		mu.Lock()
		defer mu.Unlock()
		for oldRank, newRank := range subRanks {
			if want := np - 1 - oldRank; newRank != want {
				t.Errorf("old rank %d -> %d, want %d", oldRank, newRank, want)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSplitUndefinedColor(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 2)
		rt.LaunchWorld([]string{"h0", "h1"}, "w", func(p *Proc) {
			defer j.done()
			w := p.World()
			color := 0
			if w.Rank() == 1 {
				color = -1 // MPI_UNDEFINED
			}
			sub, err := w.Split(color, 0)
			if err != nil {
				t.Errorf("Split: %v", err)
				return
			}
			if w.Rank() == 1 && sub != nil {
				t.Error("undefined color should yield nil comm")
			}
			if w.Rank() == 0 && (sub == nil || sub.Size() != 1) {
				t.Errorf("rank 0 sub = %v", sub)
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSplitOnIntercommFails(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 2)
		rt.Register("d", func(p *Proc, args []string) {
			defer j.done()
			if _, err := p.Parent().Split(0, 0); err == nil {
				t.Error("Split on intercomm should fail")
			}
		})
		rt.Launch("cn0", "app", func(p *Proc) {
			defer j.done()
			if _, err := p.Spawn("d", nil, []string{"ac0"}); err != nil {
				t.Errorf("Spawn: %v", err)
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
