package mpi

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/netsim"
)

// Comm is a communicator handle held by one process. For an
// intracommunicator, group lists the member proc ids by rank and
// remote is nil. For an intercommunicator, group is the local group
// and remote the remote group.
//
// A Comm value is process-local state; the processes of a
// communicator each hold their own handle sharing the context id.
type Comm struct {
	rt     *Runtime
	id     string
	rank   int
	group  []int
	remote []int

	mu           sync.Mutex
	disconnected bool
}

// ID returns the communicator context id (shared by all members).
func (c *Comm) ID() string { return c.id }

// Rank returns the caller's rank in the local group.
func (c *Comm) Rank() int { return c.rank }

// Size returns the local group size.
func (c *Comm) Size() int { return len(c.group) }

// RemoteSize returns the remote group size (zero for an
// intracommunicator).
func (c *Comm) RemoteSize() int { return len(c.remote) }

// IsInter reports whether c is an intercommunicator.
func (c *Comm) IsInter() bool { return c.remote != nil }

func (c *Comm) ok() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.disconnected {
		return ErrDisconnected
	}
	return nil
}

// myProc returns the caller's Proc (rank lookup in the local group).
func (c *Comm) myProc() *Proc {
	return c.rt.proc(c.group[c.rank])
}

// destProc resolves a destination rank: in the remote group for an
// intercommunicator, in the local group otherwise.
func (c *Comm) destProc(rank int) (*Proc, error) {
	g := c.group
	if c.IsInter() {
		g = c.remote
	}
	if rank < 0 || rank >= len(g) {
		return nil, fmt.Errorf("%w: %d (group size %d)", ErrInvalidRank, rank, len(g))
	}
	p := c.rt.proc(g[rank])
	if p == nil {
		return nil, fmt.Errorf("%w: %d (process gone)", ErrInvalidRank, rank)
	}
	return p, nil
}

// Send delivers payload to the process with the given rank (remote
// group rank on an intercommunicator). size is the simulated payload
// size in bytes; control messages pass 0.
func (c *Comm) Send(dst, tag int, payload any, size int) error {
	return c.send(dst, tag, payload, size, false)
}

// SendPipelined is Send using the fabric's pipelined bulk protocol.
func (c *Comm) SendPipelined(dst, tag int, payload any, size int) error {
	return c.send(dst, tag, payload, size, true)
}

func (c *Comm) send(dst, tag int, payload any, size int, pipelined bool) error {
	if err := c.ok(); err != nil {
		return err
	}
	dp, err := c.destProc(dst)
	if err != nil {
		return err
	}
	env := envelope{comm: c.id, tag: tag, src: c.rank, payload: payload}
	me := c.myProc()
	if pipelined {
		return me.ep.SendPipelined(dp.ep.Name(), c.id, env, size)
	}
	return me.ep.Send(dp.ep.Name(), c.id, env, size)
}

// Recv blocks until a message on this communicator matching src and
// tag (each possibly AnySource/AnyTag) arrives.
func (c *Comm) Recv(src, tag int) (Status, error) {
	return c.recv(src, tag, 0)
}

// RecvTimeout is Recv with a virtual-time deadline.
func (c *Comm) RecvTimeout(src, tag int, d time.Duration) (Status, error) {
	return c.recv(src, tag, d)
}

func (c *Comm) recv(src, tag int, timeout time.Duration) (Status, error) {
	if err := c.ok(); err != nil {
		return Status{}, err
	}
	match := func(m *netsim.Message) bool {
		env, ok := m.Payload.(envelope)
		if !ok || env.comm != c.id {
			return false
		}
		if src != AnySource && env.src != src {
			return false
		}
		if tag != AnyTag && env.tag != tag {
			return false
		}
		return true
	}
	me := c.myProc()
	var m *netsim.Message
	var err error
	if timeout > 0 {
		m, err = me.ep.RecvMatchTimeout(match, timeout)
	} else {
		m, err = me.ep.RecvMatch(match)
	}
	if err != nil {
		return Status{}, err
	}
	env := m.Payload.(envelope)
	st := Status{Source: env.src, Tag: env.tag, Payload: env.payload, Size: m.Size}
	m.Release()
	return st, nil
}

// Collective tags live in a reserved negative range so user tags
// (>= 0) never collide with them.
const (
	tagBarrierIn  = -100
	tagBarrierOut = -101
	tagBcast      = -102
	tagGather     = -103
	tagReduce     = -104
	tagMergeInfo  = -105
	tagDiscon     = -106
)

// Barrier blocks until every member of the (intra)communicator has
// entered it. Linear algorithm: everyone reports to rank 0, rank 0
// releases everyone — two fabric latencies, matching the cost profile
// of small-scale Open MPI barriers.
func (c *Comm) Barrier() error {
	if err := c.ok(); err != nil {
		return err
	}
	if c.Size() == 1 {
		return nil
	}
	cb := c.rt.cfg.ControlBytes
	if c.rank == 0 {
		for i := 1; i < c.Size(); i++ {
			if _, err := c.Recv(AnySource, tagBarrierIn); err != nil {
				return err
			}
		}
		for i := 1; i < c.Size(); i++ {
			if err := c.Send(i, tagBarrierOut, nil, cb); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.Send(0, tagBarrierIn, nil, cb); err != nil {
		return err
	}
	_, err := c.Recv(0, tagBarrierOut)
	return err
}

// Bcast distributes root's payload to every member and returns it.
// Non-roots pass any value (ignored).
func (c *Comm) Bcast(root int, payload any, size int) (any, error) {
	if err := c.ok(); err != nil {
		return nil, err
	}
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("%w: bcast root %d", ErrInvalidRank, root)
	}
	if c.rank == root {
		for i := 0; i < c.Size(); i++ {
			if i == root {
				continue
			}
			if err := c.Send(i, tagBcast, payload, size); err != nil {
				return nil, err
			}
		}
		return payload, nil
	}
	st, err := c.Recv(root, tagBcast)
	if err != nil {
		return nil, err
	}
	return st.Payload, nil
}

// Gather collects one value per rank at root. At root it returns the
// values indexed by rank; elsewhere it returns nil.
func (c *Comm) Gather(root int, payload any, size int) ([]any, error) {
	if err := c.ok(); err != nil {
		return nil, err
	}
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("%w: gather root %d", ErrInvalidRank, root)
	}
	if c.rank != root {
		return nil, c.Send(root, tagGather, payload, size)
	}
	out := make([]any, c.Size())
	out[root] = payload
	for i := 0; i < c.Size()-1; i++ {
		st, err := c.Recv(AnySource, tagGather)
		if err != nil {
			return nil, err
		}
		out[st.Source] = st.Payload
	}
	return out, nil
}

// AllreduceSum sums an integer contribution across the communicator
// and returns the total at every rank.
func (c *Comm) AllreduceSum(v int) (int, error) {
	if err := c.ok(); err != nil {
		return 0, err
	}
	cb := c.rt.cfg.ControlBytes
	if c.rank == 0 {
		total := v
		for i := 0; i < c.Size()-1; i++ {
			st, err := c.Recv(AnySource, tagReduce)
			if err != nil {
				return 0, err
			}
			total += st.Payload.(int)
		}
		if _, err := c.Bcast(0, total, cb); err != nil {
			return 0, err
		}
		return total, nil
	}
	if err := c.Send(0, tagReduce, v, cb); err != nil {
		return 0, err
	}
	res, err := c.Bcast(0, nil, cb)
	if err != nil {
		return 0, err
	}
	return res.(int), nil
}

// commDesc is the serialized form of a communicator sent in
// handshakes: context id plus both groups.
type commDesc struct {
	id     string
	group  []int
	remote []int
}

// handleFor instantiates a local handle for the descriptor in the
// calling process p.
func (d commDesc) handleFor(rt *Runtime, p *Proc) *Comm {
	rank := -1
	for i, id := range d.group {
		if id == p.id {
			rank = i
			break
		}
	}
	return &Comm{rt: rt, id: d.id, rank: rank, group: d.group, remote: d.remote}
}

// Disconnect performs a collective teardown of the communicator:
// members synchronize (so no sends are in flight) and mark their
// handles unusable, mirroring MPI_Comm_disconnect. On an
// intercommunicator the two local groups synchronize through their
// roots.
func (c *Comm) Disconnect() error {
	if err := c.ok(); err != nil {
		return err
	}
	cb := c.rt.cfg.ControlBytes
	if c.IsInter() {
		// Local barrier, then root-to-root handshake.
		if err := c.localBarrier(); err != nil {
			return err
		}
		if c.rank == 0 {
			if err := c.Send(0, tagDiscon, nil, cb); err != nil {
				return err
			}
			if _, err := c.Recv(0, tagDiscon); err != nil {
				return err
			}
		}
	} else if err := c.Barrier(); err != nil {
		return err
	}
	c.mu.Lock()
	c.disconnected = true
	c.mu.Unlock()
	return nil
}

// localBarrier synchronizes the local group of an intercommunicator
// using point-to-point messages within the group.
func (c *Comm) localBarrier() error {
	if len(c.group) == 1 {
		return nil
	}
	cb := c.rt.cfg.ControlBytes
	me := c.myProc()
	send := func(dstRank, tag int) error {
		dp := c.rt.proc(c.group[dstRank])
		env := envelope{comm: c.id + "/local", tag: tag, src: c.rank}
		return me.ep.Send(dp.ep.Name(), c.id+"/local", env, cb)
	}
	recvOne := func(tag int) error {
		m, err := me.ep.RecvMatch(func(m *netsim.Message) bool {
			env, ok := m.Payload.(envelope)
			return ok && env.comm == c.id+"/local" && env.tag == tag
		})
		m.Release()
		return err
	}
	if c.rank == 0 {
		for i := 1; i < len(c.group); i++ {
			if err := recvOne(tagBarrierIn); err != nil {
				return err
			}
		}
		for i := 1; i < len(c.group); i++ {
			if err := send(i, tagBarrierOut); err != nil {
				return err
			}
		}
		return nil
	}
	if err := send(0, tagBarrierIn); err != nil {
		return err
	}
	return recvOne(tagBarrierOut)
}
