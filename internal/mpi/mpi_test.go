package mpi

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

const testLatency = time.Millisecond

func testRuntime(t *testing.T, cfg Config) (*sim.Simulation, *Runtime, *netsim.Network) {
	t.Helper()
	s := sim.New()
	n := netsim.New(s, netsim.LinkParams{Latency: testLatency})
	return s, NewRuntime(n, cfg), n
}

// join is a sim-aware completion latch for test actors.
type join struct {
	mu   sync.Mutex
	gate *sim.Gate
	left int
}

func newJoin(s *sim.Simulation, n int) *join {
	return &join{gate: s.NewGate("join"), left: n}
}

func (j *join) done() {
	j.mu.Lock()
	j.left--
	j.mu.Unlock()
	j.gate.Broadcast()
}

func (j *join) wait() {
	j.mu.Lock()
	for j.left > 0 {
		j.gate.Wait(&j.mu)
	}
	j.mu.Unlock()
}

func TestSingletonWorld(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 1)
		rt.Launch("host0", "app", func(p *Proc) {
			defer j.done()
			if p.World().Rank() != 0 || p.World().Size() != 1 {
				t.Errorf("singleton world: rank=%d size=%d", p.World().Rank(), p.World().Size())
			}
			if p.Parent() != nil {
				t.Error("singleton should have no parent")
			}
			if p.Host() != "host0" {
				t.Errorf("host = %q", p.Host())
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestWorldSendRecv(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 2)
		rt.LaunchWorld([]string{"h0", "h1"}, "pair", func(p *Proc) {
			defer j.done()
			w := p.World()
			if w.Rank() == 0 {
				if err := w.Send(1, 7, "ping", 0); err != nil {
					t.Errorf("Send: %v", err)
				}
				st, err := w.Recv(1, 8)
				if err != nil || st.Payload.(string) != "pong" {
					t.Errorf("Recv: %v %v", st, err)
				}
			} else {
				st, err := w.Recv(0, 7)
				if err != nil || st.Payload.(string) != "ping" {
					t.Errorf("Recv: %v %v", st, err)
				}
				if st.Source != 0 || st.Tag != 7 {
					t.Errorf("status = %+v", st)
				}
				if err := w.Send(0, 8, "pong", 0); err != nil {
					t.Errorf("Send: %v", err)
				}
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRecvWildcards(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 3)
		rt.LaunchWorld([]string{"h0", "h1", "h2"}, "w", func(p *Proc) {
			defer j.done()
			w := p.World()
			if w.Rank() == 0 {
				seen := map[int]bool{}
				for i := 0; i < 2; i++ {
					st, err := w.Recv(AnySource, AnyTag)
					if err != nil {
						t.Errorf("Recv: %v", err)
						return
					}
					seen[st.Source] = true
				}
				if !seen[1] || !seen[2] {
					t.Errorf("sources seen: %v", seen)
				}
			} else {
				if err := w.Send(0, w.Rank()*10, w.Rank(), 0); err != nil {
					t.Errorf("Send: %v", err)
				}
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestRecvTimeoutOnComm(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 1)
		rt.Launch("h0", "lonely", func(p *Proc) {
			defer j.done()
			_, err := p.World().RecvTimeout(AnySource, AnyTag, 5*time.Millisecond)
			if !errors.Is(err, netsim.ErrTimeout) {
				t.Errorf("err = %v, want timeout", err)
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSendInvalidRank(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 1)
		rt.Launch("h0", "app", func(p *Proc) {
			defer j.done()
			if err := p.World().Send(3, 0, nil, 0); !errors.Is(err, ErrInvalidRank) {
				t.Errorf("err = %v, want ErrInvalidRank", err)
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		const np = 4
		j := newJoin(s, np)
		var mu sync.Mutex
		var after []time.Duration
		rt.LaunchWorld([]string{"h0", "h1", "h2", "h3"}, "w", func(p *Proc) {
			defer j.done()
			// Stagger arrival: rank r sleeps r*10ms.
			s.Sleep(time.Duration(p.World().Rank()) * 10 * time.Millisecond)
			if err := p.World().Barrier(); err != nil {
				t.Errorf("Barrier: %v", err)
				return
			}
			mu.Lock()
			after = append(after, s.Now())
			mu.Unlock()
		})
		j.wait()
		// Nobody can exit the barrier before the slowest entry (30ms).
		for _, at := range after {
			if at < 30*time.Millisecond {
				t.Errorf("exited barrier at %v, before last arrival", at)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestBcastDistributes(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		const np = 3
		j := newJoin(s, np)
		rt.LaunchWorld([]string{"h0", "h1", "h2"}, "w", func(p *Proc) {
			defer j.done()
			var in any
			if p.World().Rank() == 1 {
				in = "payload"
			}
			out, err := p.World().Bcast(1, in, 10)
			if err != nil {
				t.Errorf("Bcast: %v", err)
				return
			}
			if out.(string) != "payload" {
				t.Errorf("rank %d got %v", p.World().Rank(), out)
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestGatherCollects(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		const np = 4
		j := newJoin(s, np)
		rt.LaunchWorld([]string{"h0", "h1", "h2", "h3"}, "w", func(p *Proc) {
			defer j.done()
			r := p.World().Rank()
			vals, err := p.World().Gather(0, r*r, 8)
			if err != nil {
				t.Errorf("Gather: %v", err)
				return
			}
			if r == 0 {
				for i, v := range vals {
					if v.(int) != i*i {
						t.Errorf("vals[%d] = %v, want %d", i, v, i*i)
					}
				}
			} else if vals != nil {
				t.Errorf("non-root got %v", vals)
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestAllreduceSum(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		const np = 5
		j := newJoin(s, np)
		hosts := []string{"h0", "h1", "h2", "h3", "h4"}
		rt.LaunchWorld(hosts, "w", func(p *Proc) {
			defer j.done()
			total, err := p.World().AllreduceSum(p.World().Rank() + 1)
			if err != nil {
				t.Errorf("Allreduce: %v", err)
				return
			}
			if total != 15 {
				t.Errorf("rank %d: total = %d, want 15", p.World().Rank(), total)
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestBcastInvalidRoot(t *testing.T) {
	s, rt, n := testRuntime(t, Config{})
	err := s.Run(func() {
		defer n.Close()
		j := newJoin(s, 1)
		rt.Launch("h0", "app", func(p *Proc) {
			defer j.done()
			if _, err := p.World().Bcast(5, nil, 0); !errors.Is(err, ErrInvalidRank) {
				t.Errorf("err = %v", err)
			}
			if _, err := p.World().Gather(-1, nil, 0); !errors.Is(err, ErrInvalidRank) {
				t.Errorf("err = %v", err)
			}
		})
		j.wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
