package mpi

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// Non-blocking point-to-point operations (MPI_Isend / MPI_Irecv /
// MPI_Wait) and the remaining collectives the examples use. In the
// simulation, an Isend is genuinely asynchronous (fabric delivery is
// event-driven), and an Irecv runs its matching logic in a helper
// actor so the caller can overlap communication with computation —
// the latency-hiding pattern of the paper's Section I.

// Request is a handle for an outstanding non-blocking operation.
type Request struct {
	mu   sync.Mutex
	gate *sim.Gate
	done bool
	st   Status
	err  error
}

func newRequest(s *sim.Simulation) *Request {
	return &Request{gate: s.NewGate("mpi-request")}
}

func (r *Request) complete(st Status, err error) {
	r.mu.Lock()
	r.st = st
	r.err = err
	r.done = true
	r.mu.Unlock()
	r.gate.Broadcast()
}

// Wait blocks until the operation completes and returns its status.
func (r *Request) Wait() (Status, error) {
	r.mu.Lock()
	for !r.done {
		r.gate.Wait(&r.mu)
	}
	defer r.mu.Unlock()
	return r.st, r.err
}

// Test reports completion without blocking (MPI_Test).
func (r *Request) Test() (Status, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.st, r.done, r.err
}

// Isend starts a non-blocking send. The fabric delivers
// asynchronously anyway, so the request completes immediately after
// the local hand-off — matching MPI's semantics that Isend completion
// only means the buffer is reusable.
func (c *Comm) Isend(dst, tag int, payload any, size int) *Request {
	r := newRequest(c.rt.sim)
	err := c.Send(dst, tag, payload, size)
	r.complete(Status{}, err)
	return r
}

// Irecv starts a non-blocking receive: a helper actor performs the
// matching so the caller keeps computing; Wait joins it.
func (c *Comm) Irecv(src, tag int) *Request {
	r := newRequest(c.rt.sim)
	c.rt.sim.Go(fmt.Sprintf("irecv/%s", c.id), func() {
		st, err := c.Recv(src, tag)
		r.complete(st, err)
	})
	return r
}

// WaitAll waits for every request and returns the first error.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Sendrecv performs a simultaneous send and receive (MPI_Sendrecv),
// safe against the head-to-head exchange deadlock.
func (c *Comm) Sendrecv(dst, sendTag int, payload any, size int, src, recvTag int) (Status, error) {
	if err := c.Send(dst, sendTag, payload, size); err != nil {
		return Status{}, err
	}
	return c.Recv(src, recvTag)
}

// Collective tags for the additional operations.
const (
	tagScatter   = -130
	tagAllgather = -131
)

// Scatter distributes one element per rank from root's slice
// (MPI_Scatter). Every rank receives its element; non-roots pass nil.
func (c *Comm) Scatter(root int, values []any, size int) (any, error) {
	if err := c.ok(); err != nil {
		return nil, err
	}
	if root < 0 || root >= c.Size() {
		return nil, fmt.Errorf("%w: scatter root %d", ErrInvalidRank, root)
	}
	if c.rank == root {
		if len(values) != c.Size() {
			return nil, fmt.Errorf("mpi: Scatter with %d values for %d ranks", len(values), c.Size())
		}
		for i := 0; i < c.Size(); i++ {
			if i == root {
				continue
			}
			if err := c.Send(i, tagScatter, values[i], size); err != nil {
				return nil, err
			}
		}
		return values[root], nil
	}
	st, err := c.Recv(root, tagScatter)
	if err != nil {
		return nil, err
	}
	return st.Payload, nil
}

// Allgather collects one value per rank at every rank (MPI_Allgather,
// implemented as gather + broadcast).
func (c *Comm) Allgather(value any, size int) ([]any, error) {
	vals, err := c.Gather(0, value, size)
	if err != nil {
		return nil, err
	}
	out, err := c.Bcast(0, vals, size*c.Size())
	if err != nil {
		return nil, err
	}
	return out.([]any), nil
}
