// Package mpi implements the subset of MPI-2 the DAC resource
// management library depends on (paper Sections II-C and III-C/D):
// intracommunicators with point-to-point and collective operations,
// ports with Connect/Accept, dynamic process management through
// Spawn, intercommunicator Merge, and Disconnect.
//
// Processes are simulation actors; every message traverses the
// netsim fabric, so communicator construction exhibits the same
// round-trip structure — and therefore the same latency scaling — as
// the Open MPI operations the paper measures.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Wildcards for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

// Common errors.
var (
	ErrInvalidRank    = errors.New("mpi: invalid rank")
	ErrUnknownPort    = errors.New("mpi: unknown port")
	ErrUnknownCommand = errors.New("mpi: unknown spawn command")
	ErrNotIntercomm   = errors.New("mpi: operation requires an intercommunicator")
	ErrDisconnected   = errors.New("mpi: communicator disconnected")
)

// Config carries the software-stack cost model of the MPI layer. The
// values are calibration knobs for the figures in the paper's
// evaluation; see cluster.Params for the testbed defaults.
type Config struct {
	// ProcStartup is the time for a launched process to become ready
	// (exec + MPI_Init). Spawned daemons boot in parallel.
	ProcStartup time.Duration
	// ConnectOverhead is the local software cost of Connect/Accept on
	// top of its network round trips.
	ConnectOverhead time.Duration
	// MergeOverhead is the local software cost of Merge.
	MergeOverhead time.Duration
	// SpawnOverhead is the local software cost of Spawn on top of
	// process startup and network round trips.
	SpawnOverhead time.Duration
	// ControlBytes is the simulated wire size of control messages
	// (group descriptors, handshakes).
	ControlBytes int
}

// SpawnFunc is the body of a spawnable "executable". It runs as a new
// simulation actor with its own Proc.
type SpawnFunc func(p *Proc, args []string)

// Runtime owns process identity, ports, and the registry of
// spawnable commands.
type Runtime struct {
	net *netsim.Network
	sim *sim.Simulation
	cfg Config

	mu       sync.Mutex
	nextProc int
	nextComm int
	nextPort int
	procs    map[int]*Proc
	ports    map[string]*portState
	commands map[string]SpawnFunc
}

// NewRuntime creates an MPI runtime over the given fabric.
func NewRuntime(net *netsim.Network, cfg Config) *Runtime {
	return &Runtime{
		net:      net,
		sim:      net.Sim(),
		cfg:      cfg,
		procs:    make(map[int]*Proc),
		ports:    make(map[string]*portState),
		commands: make(map[string]SpawnFunc),
	}
}

// Config returns the runtime's cost model.
func (rt *Runtime) Config() Config { return rt.cfg }

// Register makes a command name spawnable via Proc.Spawn.
func (rt *Runtime) Register(command string, fn SpawnFunc) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.commands[command] = fn
}

// Proc is one MPI process: an actor with a fabric endpoint, a
// COMM_WORLD, and (for spawned processes) a parent intercommunicator.
type Proc struct {
	rt     *Runtime
	id     int
	host   string
	ep     *netsim.Endpoint
	world  *Comm
	parent *Comm
}

// ID returns the runtime-unique process id.
func (p *Proc) ID() int { return p.id }

// Host returns the host name the process runs on.
func (p *Proc) Host() string { return p.host }

// World returns the process's MPI_COMM_WORLD.
func (p *Proc) World() *Comm { return p.world }

// Parent returns the intercommunicator to the spawning process, or
// nil when the process was not spawned.
func (p *Proc) Parent() *Comm { return p.parent }

// newProc allocates a process bound to host without starting an actor.
func (rt *Runtime) newProc(host string) *Proc {
	rt.mu.Lock()
	rt.nextProc++
	id := rt.nextProc
	rt.mu.Unlock()
	p := &Proc{
		rt:   rt,
		id:   id,
		host: host,
		ep:   rt.net.Endpoint(fmt.Sprintf("mpi/p%d@%s", id, host)),
	}
	rt.mu.Lock()
	rt.procs[id] = p
	rt.mu.Unlock()
	return p
}

func (rt *Runtime) proc(id int) *Proc {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.procs[id]
}

func (rt *Runtime) newCommID() string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.nextComm++
	return fmt.Sprintf("comm%d", rt.nextComm)
}

// Launch starts fn as a singleton MPI process (COMM_WORLD of size 1)
// on the given host. name is used for diagnostics.
func (rt *Runtime) Launch(host, name string, fn func(p *Proc)) *Proc {
	p := rt.newProc(host)
	p.world = &Comm{rt: rt, id: rt.newCommID(), rank: 0, group: []int{p.id}}
	rt.sim.Go(name, func() { fn(p) })
	return p
}

// Attach binds the calling actor as a singleton MPI process on host
// without spawning a new goroutine. This is how an application
// already running under the batch system becomes an MPI process (the
// paper's compute-node programs are started by the mom, then use the
// resource-management library).
func (rt *Runtime) Attach(host string) *Proc {
	p := rt.newProc(host)
	p.world = &Comm{rt: rt, id: rt.newCommID(), rank: 0, group: []int{p.id}}
	return p
}

// LaunchWorld starts len(hosts) processes sharing one COMM_WORLD,
// rank i on hosts[i]. It returns the procs in rank order; the actors
// begin running immediately.
func (rt *Runtime) LaunchWorld(hosts []string, name string, fn func(p *Proc)) []*Proc {
	procs := make([]*Proc, len(hosts))
	ids := make([]int, len(hosts))
	for i, h := range hosts {
		procs[i] = rt.newProc(h)
		ids[i] = procs[i].id
	}
	commID := rt.newCommID()
	for i, p := range procs {
		p.world = &Comm{rt: rt, id: commID, rank: i, group: append([]int(nil), ids...)}
	}
	for i, p := range procs {
		p := p
		rt.sim.Go(fmt.Sprintf("%s[%d]", name, i), func() { fn(p) })
	}
	return procs
}

// envelope is the wire format of every MPI message.
type envelope struct {
	comm    string
	tag     int
	src     int // sender's rank in its local group
	payload any
}

// Status describes a received message.
type Status struct {
	Source  int
	Tag     int
	Payload any
	Size    int
}
