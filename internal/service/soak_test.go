package service_test

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/workload"
)

// heapAfterGC forces a full collection and returns live heap bytes —
// the only way ReadMemStats deltas are comparable across samples.
func heapAfterGC() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// The steady-state soak: a resident instance serves two equal-length
// job windows; the live heap after the second window must sit within
// a small allowance of the heap after the first. Without the
// retention window, the ledger pool, and the ring caps, tens of
// thousands of job records (serverJob + accounting + ledger entries)
// would grow the second sample by many megabytes.
func TestServeSoakSteadyStateMemory(t *testing.T) {
	window := 20000
	if testing.Short() {
		window = 3000
	}
	p := testParams(8)
	src, err := workload.NewArrivals(workload.ArrivalConfig{
		Rate: 400, Seed: 13, MaxJobs: 2 * window, Classes: shortClasses(),
	})
	if err != nil {
		t.Fatal(err)
	}

	var afterFirst, afterSecond uint64
	var midStats, endStats service.Stats
	rep, err := service.Run(service.Config{
		Cluster:        p,
		Source:         src,
		ScrapeInterval: 5 * time.Second,
		MaxWindows:     64,
		Probe: func(inst *service.Instance) {
			s := inst.Cluster().Sim
			for int(inst.ServiceStats().Completed) < window {
				s.Sleep(250 * time.Millisecond)
			}
			afterFirst = heapAfterGC()
			midStats = inst.ServiceStats()
			for int(inst.ServiceStats().Completed) < 2*window {
				s.Sleep(250 * time.Millisecond)
			}
			afterSecond = heapAfterGC()
			endStats = inst.ServiceStats()
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Completed != 2*window {
		t.Fatalf("completed %d want %d", rep.Completed, 2*window)
	}

	// Pooled reuse must carry the second window: after warmup, nearly
	// every ledger record and server job record comes from a pool.
	grewRecycled := endStats.Recycled - midStats.Recycled
	if grewRecycled < uint64(window/2) {
		t.Errorf("second window recycled only %d ledger records (window %d)", grewRecycled, window)
	}
	if rep.Records.Reused == 0 || rep.Records.Purged == 0 {
		t.Errorf("server pool idle: %+v", rep.Records)
	}
	// Retention holds the server index at O(window), not O(jobs ever).
	if held := rep.Records.Live + rep.Records.Retained; held > service.DefaultRetainCompleted+256 {
		t.Errorf("server holds %d job records after %d jobs", held, 2*window)
	}
	// Scrape ring respected its cap.
	if len(rep.Windows) > 64 {
		t.Errorf("%d scrape windows, cap 64", len(rep.Windows))
	}

	// The headline assertion: live heap is flat across two equal
	// windows. The allowance absorbs GC noise and pool warm-up tails;
	// an actual leak of window job records costs well over 8 MB.
	if afterSecond > afterFirst && afterSecond-afterFirst > 8<<20 {
		t.Errorf("heap grew %d bytes across a %d-job window (first %d, second %d)",
			afterSecond-afterFirst, window, afterFirst, afterSecond)
	}
}
