// Package service runs the cluster as a resident online system: a
// long-running instance wrapping a live simulation kernel plus the
// pbs/maui/netsim actors, fed by an open-loop submission stream
// instead of a pre-materialized trace. Where the figure experiments
// build a cluster per data point, replay a fixed workload, and tear
// everything down, an Instance stays up: a deterministic arrival
// process (or an SWF replay source) pushes jobs through an admission
// pipeline that batches submissions per virtual tick, completed job
// records recycle through pools at every layer, and the telemetry
// scraper turns the steady state into SLO windows — the operational
// view of the paper's system that the offline figures cannot give.
//
// Determinism contract: everything an Instance does — admission
// batching, record recycling, scrape windows, the final report — is
// driven by virtual time and the seeded source, so a run is
// byte-identical at every core.SetParallelism level and under both
// server architectures' invariant audits.
package service

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/pbs"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Defaults for Config fields left zero.
const (
	DefaultAdmitTick       = 50 * time.Millisecond
	DefaultScrapeInterval  = 5 * time.Second
	DefaultRetainCompleted = 4096
	DefaultAcctRing        = 4096
)

// Service-layer instrument names (the telemetry registry requires
// constant names; see the metricname analyzer).
const (
	metricSubmitted  = "service.submitted"
	metricCompleted  = "service.completed"
	metricActive     = "service.active"
	metricTurnaround = "service.turnaround"
	metricQueueWait  = "service.queue_wait"
	metricBatches    = "service.admit_batches"
)

// Config parameterizes a resident instance.
type Config struct {
	// Cluster is the machine shape and cost model. Telemetry, Tracer,
	// and Audit pass through; when Telemetry is nil the instance
	// installs a private registry (required for scraping).
	Cluster cluster.Params
	// Source feeds the admission pipeline (required). workload.Arrivals
	// for synthetic open-loop streams, workload.TraceSource for
	// replay-from-SWF.
	Source workload.Source
	// AdmitTick is the admission batching quantum: the pump wakes at
	// tick boundaries and submits everything due since the last one
	// back to back, amortizing the per-job wakeup the way the sharded
	// server batches RPCs. 0 means DefaultAdmitTick.
	AdmitTick time.Duration
	// Horizon stops admission at this virtual time; 0 runs the source
	// dry. Either way Run drains in-flight jobs before returning.
	Horizon time.Duration
	// ScrapeInterval is the telemetry window length (0 means
	// DefaultScrapeInterval); MaxWindows caps the series.
	ScrapeInterval time.Duration
	MaxWindows     int
	// Objectives are evaluated over the scrape windows
	// (DefaultObjectives when nil).
	Objectives []telemetry.Objective
	// RetainCompleted is the server's terminal-record window: 0 means
	// DefaultRetainCompleted, negative retains everything (the batch
	// behavior). AcctRing bounds the accounting log the same way.
	RetainCompleted int
	AcctRing        int
	// Probe, when set, runs as its own actor once the instance is
	// serving; use it to issue queries or extra submissions mid-run.
	Probe func(*Instance)
}

// QueueSnapshot is the instance's O(1) qstat-style queue view.
type QueueSnapshot struct {
	Queued  int // admitted, not yet started
	Running int // started, not yet finished
	At      time.Duration
}

// Stats is the instance's cumulative view.
type Stats struct {
	Submitted uint64
	Completed uint64
	Recycled  uint64 // job-tracking records reused from the pool
	Compacted int    // active-index rebuilds
	Batches   uint64 // admission batches submitted
	Queued    int
	Running   int
}

// JobStatus is the service-side view of one job.
type JobStatus struct {
	ID          string
	Name        string
	State       pbs.JobState
	SubmittedAt time.Duration
	StartedAt   time.Duration
	FinishedAt  time.Duration
}

// Report is what a completed Run returns.
type Report struct {
	Submitted  int
	Completed  int
	Makespan   time.Duration // virtual time at drain
	Dispatches uint64        // kernel events the run dispatched
	Windows    []telemetry.Window
	Compliance []telemetry.Compliance
	Stats      Stats
	Records    pbs.JobRecordStats // server-side retention economy
}

// jobRec tracks one admitted job. Records recycle through a free
// list, so steady state allocates none.
type jobRec struct {
	id          string
	name        string
	submittedAt time.Duration
	startedAt   time.Duration
	finishedAt  time.Duration
	started     bool
	finished    bool
}

// Instance is the resident cluster engine.
type Instance struct {
	cfg   Config
	sim   *sim.Simulation
	reg   *telemetry.Registry
	clu   *cluster.Cluster
	scr   *telemetry.Scraper
	pump  *pbs.Client // admission pipeline's connection
	query *pbs.Client // Submit/JobStatus from probe actors
	tick  time.Duration
	drain *sim.Gate

	mu        sync.Mutex
	recs      map[string]*jobRec
	freeRecs  []*jobRec
	tomb      int // deletions since the last index rebuild
	submitted uint64
	completed uint64
	recycled  uint64
	compacted int
	batches   uint64
	queued    int
	running   int
	sourceDry bool

	submits    *telemetry.Counter
	completes  *telemetry.Counter
	active     *telemetry.Gauge
	turnaround *telemetry.Histogram
	queueWait  *telemetry.Histogram
	batchCtr   *telemetry.Counter
}

// DefaultObjectives is the steady-state SLO set the serve mode
// reports: dynamic-request latency tail (p50/p99/p999), scheduler
// cycle cost and occupancy, and a queue-depth ceiling that catches an
// open-loop rate the cluster cannot absorb. Like the slo figure's
// set, the occupancy bound is deliberately tight — a scheduler with
// any work breaches it, exercising the first-breach timestamp.
func DefaultObjectives() []telemetry.Objective {
	return []telemetry.Objective{
		{Name: "dyn-p50", Instrument: "pbs.dyn_latency", Stat: telemetry.StatP50, Max: 0.150},
		{Name: "dyn-p99", Instrument: "pbs.dyn_latency", Stat: telemetry.StatP99, Max: 0.250},
		{Name: "dyn-p999", Instrument: "pbs.dyn_latency", Stat: telemetry.StatP999, Max: 0.400},
		{Name: "cycle-mean", Instrument: "maui.cycle", Stat: telemetry.StatMean, Max: 0.050},
		{Name: "sched-occupancy", Instrument: "maui.occupancy", Stat: telemetry.StatDelta, Max: 0.02},
		{Name: "queue-depth", Instrument: "pbs.queue_depth", Stat: telemetry.StatTotal, Max: 512},
	}
}

// New wires a resident instance onto the simulation: cluster, private
// registry (unless the params carry one), scraper, and the two IFL
// connections. Call Run to serve.
func New(s *sim.Simulation, cfg Config) (*Instance, error) {
	if cfg.Source == nil {
		return nil, errors.New("service: Config.Source is required")
	}
	if cfg.AdmitTick <= 0 {
		cfg.AdmitTick = DefaultAdmitTick
	}
	if cfg.ScrapeInterval <= 0 {
		cfg.ScrapeInterval = DefaultScrapeInterval
	}
	switch {
	case cfg.RetainCompleted == 0:
		cfg.RetainCompleted = DefaultRetainCompleted
	case cfg.RetainCompleted < 0:
		cfg.RetainCompleted = 0
	}
	switch {
	case cfg.AcctRing == 0:
		cfg.AcctRing = DefaultAcctRing
	case cfg.AcctRing < 0:
		cfg.AcctRing = 0
	}
	if cfg.Objectives == nil {
		cfg.Objectives = DefaultObjectives()
	}
	tp := cfg.Cluster
	tp.Server.RetainCompleted = cfg.RetainCompleted
	tp.Server.AcctRing = cfg.AcctRing
	reg := tp.Telemetry
	if reg == nil {
		reg = telemetry.New()
		tp.Telemetry = reg
	}
	c := cluster.New(s, tp)
	scr := telemetry.NewScraper(reg, s, cfg.ScrapeInterval)
	scr.MaxWindows = cfg.MaxWindows
	return &Instance{
		cfg:        cfg,
		sim:        s,
		reg:        reg,
		clu:        c,
		scr:        scr,
		pump:       c.Client("service/pump"),
		query:      c.Client("service/query"),
		tick:       cfg.AdmitTick,
		drain:      s.NewGate("service/drain"),
		recs:       make(map[string]*jobRec),
		submits:    reg.Counter(metricSubmitted),
		completes:  reg.Counter(metricCompleted),
		active:     reg.Gauge(metricActive),
		turnaround: reg.Histogram(metricTurnaround),
		queueWait:  reg.Histogram(metricQueueWait),
		batchCtr:   reg.Counter(metricBatches),
	}, nil
}

// Cluster exposes the wired cluster (read-only use from probes).
func (i *Instance) Cluster() *cluster.Cluster { return i.clu }

// Registry exposes the instance's telemetry registry.
func (i *Instance) Registry() *telemetry.Registry { return i.reg }

// Run serves the stream: start the actors, pump admissions until the
// source dries (or the horizon passes), drain in-flight jobs, stop
// the scraper, and report. It must be the root of a s.Run call — use
// sim.Acquire/Release around it exactly like the figure experiments.
func Run(cfg Config) (Report, error) {
	s := sim.Acquire()
	defer s.Release()
	inst, err := New(s, cfg)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	runErr := s.Run(func() {
		rep = inst.Serve()
	})
	if runErr != nil {
		return rep, fmt.Errorf("service: %w", runErr)
	}
	return rep, nil
}

// Serve is the body of Run for callers that manage the kernel
// themselves: it blocks (in virtual time) until the stream is served
// and drained, then returns the report.
func (i *Instance) Serve() Report {
	defer i.clu.Close()
	i.scr.Start()
	i.clu.Start()
	if i.cfg.Probe != nil {
		i.sim.Go("service/probe", func() { i.cfg.Probe(i) })
	}
	i.pumpLoop()
	i.awaitDrain()
	i.scr.Stop()

	i.mu.Lock()
	stats := i.statsLocked()
	i.mu.Unlock()
	windows := i.scr.Windows()
	return Report{
		Submitted:  int(stats.Submitted),
		Completed:  int(stats.Completed),
		Makespan:   i.sim.Now(),
		Dispatches: i.sim.Dispatches(),
		Windows:    windows,
		Compliance: telemetry.Evaluate(windows, i.cfg.Objectives),
		Stats:      stats,
		Records:    i.clu.Server.JobRecords(),
	}
}

// pumpLoop is the admission pipeline: wake at tick boundaries, submit
// everything due since the last one back to back. Submissions pay
// their IFL round trips consecutively (the batch amortization), and
// the pump never wakes for an empty tick — it sleeps straight to the
// tick covering the next arrival.
func (i *Instance) pumpLoop() {
	e, ok := i.cfg.Source.Next()
	for ok {
		if i.cfg.Horizon > 0 && e.At > i.cfg.Horizon {
			break
		}
		// Tick boundary covering the next due arrival.
		tickEnd := (e.At/i.tick + 1) * i.tick
		if wait := tickEnd - i.sim.Now(); wait > 0 {
			i.sim.Sleep(wait)
		}
		n := 0
		for ok && e.At <= tickEnd {
			if i.cfg.Horizon > 0 && e.At > i.cfg.Horizon {
				break
			}
			i.admit(e)
			n++
			e, ok = i.cfg.Source.Next()
		}
		if n > 0 {
			i.mu.Lock()
			i.batches++
			i.mu.Unlock()
			i.batchCtr.Inc()
		}
	}
	i.mu.Lock()
	i.sourceDry = true
	i.mu.Unlock()
	i.drain.Broadcast()
}

// admit submits one entry through the pump connection. An admission
// error (invalid spec in the stream) is dropped: the job never enters
// the ledger, so drain accounting stays exact.
func (i *Instance) admit(e workload.TraceEntry) {
	_, _ = i.submitTracked(i.pump, e.Spec(i.sim))
}

// submitTracked wraps the spec's script with the start/finish ledger
// hooks — in-process bookkeeping that costs the server no extra
// traffic — and submits it on the given connection. The record is
// allocated before the submission round trip, so the hooks can never
// observe a half-built record: the script only starts after the
// scheduler places the job, which is causally after Submit returns.
func (i *Instance) submitTracked(cl *pbs.Client, spec pbs.JobSpec) (string, error) {
	r := i.acquireRec()
	inner := spec.Script
	spec.Script = func(env *pbs.JobEnv) {
		i.noteStart(r)
		if inner != nil {
			inner(env)
		}
		i.noteFinish(r)
	}
	id, err := cl.Submit(spec)
	if err != nil {
		i.mu.Lock()
		i.releaseRecLocked(r)
		i.mu.Unlock()
		return "", err
	}
	r.id = id
	r.name = spec.Name
	r.submittedAt = i.sim.Now()
	i.mu.Lock()
	i.recs[id] = r
	i.submitted++
	i.queued++
	act := i.queued + i.running
	i.mu.Unlock()
	i.submits.Inc()
	i.active.Set(float64(act))
	return id, nil
}

// noteStart flips a record to running (called from the job's own
// actor on its first simulated instruction).
func (i *Instance) noteStart(r *jobRec) {
	if r == nil {
		return
	}
	i.mu.Lock()
	if !r.started {
		r.started = true
		r.startedAt = i.sim.Now()
		i.queued--
		i.running++
	}
	i.mu.Unlock()
	i.queueWait.Record(r.startedAt - r.submittedAt)
}

// noteFinish retires a record: stats, ledger removal, recycling, and
// the periodic O(active) index compaction.
func (i *Instance) noteFinish(r *jobRec) {
	if r == nil {
		return
	}
	now := i.sim.Now()
	i.mu.Lock()
	if r.finished {
		i.mu.Unlock()
		return
	}
	r.finished = true
	r.finishedAt = now
	turn := now - r.submittedAt
	i.running--
	i.completed++
	delete(i.recs, r.id)
	i.tomb++
	i.releaseRecLocked(r)
	// Go maps never shrink; once deletions dominate the live set,
	// rebuild so a 10-million-job soak holds the index at O(active).
	if i.tomb > 4096 && i.tomb > 2*len(i.recs) {
		next := make(map[string]*jobRec, len(i.recs)*2)
		for k, v := range i.recs {
			next[k] = v
		}
		i.recs = next
		i.tomb = 0
		i.compacted++
	}
	act := i.queued + i.running
	dry := i.sourceDry
	i.mu.Unlock()
	i.turnaround.Record(turn)
	i.completes.Inc()
	i.active.Set(float64(act))
	if act == 0 && dry {
		i.drain.Broadcast()
	}
}

// awaitDrain blocks until the source is dry and no admitted job is
// still queued or running.
func (i *Instance) awaitDrain() {
	i.mu.Lock()
	for !i.sourceDry || i.queued+i.running > 0 {
		i.drain.Wait(&i.mu)
	}
	i.mu.Unlock()
}

// acquireRec pops a recycled record or allocates one.
func (i *Instance) acquireRec() *jobRec {
	i.mu.Lock()
	defer i.mu.Unlock()
	if n := len(i.freeRecs); n > 0 {
		r := i.freeRecs[n-1]
		i.freeRecs[n-1] = nil
		i.freeRecs = i.freeRecs[:n-1]
		i.recycled++
		*r = jobRec{}
		return r
	}
	return &jobRec{}
}

// releaseRecLocked returns a finished record to the pool. Callers
// hold i.mu.
func (i *Instance) releaseRecLocked(r *jobRec) {
	i.freeRecs = append(i.freeRecs, r)
}

// Submit injects an ad-hoc job through the query connection — the
// qsub of the running service. Call it from a Probe (or any actor);
// the job is tracked like pumped admissions.
func (i *Instance) Submit(spec pbs.JobSpec) (string, error) {
	return i.submitTracked(i.query, spec)
}

// JobStatus reports one job, from the instance ledger when the job is
// still active, falling back to a qstat round trip for jobs the
// ledger has already retired (subject to the server's retention
// window).
func (i *Instance) JobStatus(id string) (JobStatus, error) {
	i.mu.Lock()
	r, ok := i.recs[id]
	var st JobStatus
	if ok {
		st = JobStatus{
			ID: r.id, Name: r.name,
			SubmittedAt: r.submittedAt, StartedAt: r.startedAt, FinishedAt: r.finishedAt,
		}
		if r.started {
			st.State = pbs.JobRunning
		}
	}
	i.mu.Unlock()
	if ok {
		return st, nil
	}
	info, err := i.query.Stat(id)
	if err != nil {
		return JobStatus{}, err
	}
	return JobStatus{
		ID: info.ID, Name: info.Spec.Name, State: info.State,
		SubmittedAt: info.SubmittedAt, StartedAt: info.StartedAt, FinishedAt: info.CompletedAt,
	}, nil
}

// Queue returns the O(1) queue snapshot.
func (i *Instance) Queue() QueueSnapshot {
	i.mu.Lock()
	defer i.mu.Unlock()
	return QueueSnapshot{Queued: i.queued, Running: i.running, At: i.sim.Now()}
}

// ServiceStats returns the cumulative counters.
func (i *Instance) ServiceStats() Stats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.statsLocked()
}

func (i *Instance) statsLocked() Stats {
	return Stats{
		Submitted: i.submitted,
		Completed: i.completed,
		Recycled:  i.recycled,
		Compacted: i.compacted,
		Batches:   i.batches,
		Queued:    i.queued,
		Running:   i.running,
	}
}
