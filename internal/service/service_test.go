package service_test

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/pbs"
	"repro/internal/service"
	"repro/internal/workload"
)

// testParams is the small serving testbed with the scale ladder's
// cheap cost model, so open-loop rates in the tens of jobs per second
// leave headroom.
func testParams(cns int) cluster.Params {
	p := cluster.Default()
	p.ComputeNodes = cns
	p.Accelerators = 2 * cns
	p.Seed = 42
	p.Maui.CycleInterval = 250 * time.Millisecond
	p.Maui.CycleOverhead = 10 * time.Millisecond
	p.Maui.PerJobCost = 200 * time.Microsecond
	p.Maui.DynPerReqCost = time.Millisecond
	p.Server.Processing = time.Millisecond
	return p
}

func shortClasses() []workload.Class {
	return []workload.Class{
		{Name: "s", Weight: 3, Nodes: 1, PPN: 1, MinRun: 20 * time.Millisecond, MaxRun: 80 * time.Millisecond},
		{Name: "w", Weight: 1, Nodes: 1, PPN: 2, MinRun: 30 * time.Millisecond, MaxRun: 120 * time.Millisecond},
	}
}

func serveOnce(t *testing.T, jobs int, aud *audit.Recorder) service.Report {
	t.Helper()
	p := testParams(4)
	p.Audit = aud
	src, err := workload.NewArrivals(workload.ArrivalConfig{
		Rate: 40, Seed: 7, MaxJobs: jobs, Classes: shortClasses(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := service.Run(service.Config{
		Cluster:         p,
		Source:          src,
		AdmitTick:       50 * time.Millisecond,
		ScrapeInterval:  time.Second,
		RetainCompleted: 32,
		AcctRing:        64,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

func TestServeCompletesStream(t *testing.T) {
	rep := serveOnce(t, 300, nil)
	if rep.Submitted != 300 || rep.Completed != 300 {
		t.Fatalf("submitted %d completed %d, want 300/300", rep.Submitted, rep.Completed)
	}
	if rep.Stats.Queued != 0 || rep.Stats.Running != 0 {
		t.Fatalf("drained with queued=%d running=%d", rep.Stats.Queued, rep.Stats.Running)
	}
	if rep.Makespan <= 0 || rep.Dispatches == 0 {
		t.Fatalf("makespan %v dispatches %d", rep.Makespan, rep.Dispatches)
	}
	if rep.Stats.Batches == 0 || rep.Stats.Batches >= 300 {
		t.Fatalf("admission batches %d: batching broken (want 1 < b < jobs)", rep.Stats.Batches)
	}
	if len(rep.Windows) == 0 || len(rep.Compliance) == 0 {
		t.Fatalf("no telemetry: %d windows %d compliance", len(rep.Windows), len(rep.Compliance))
	}
	if rep.Stats.Recycled == 0 {
		t.Fatal("ledger records never recycled")
	}
	if rep.Records.Purged == 0 || rep.Records.Reused == 0 {
		t.Fatalf("server retention idle: %+v", rep.Records)
	}
}

func TestServeDeterministic(t *testing.T) {
	a, b := serveOnce(t, 200, nil), serveOnce(t, 200, nil)
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("reports differ:\n%s\n%s", ja, jb)
	}
}

func TestServeAuditClean(t *testing.T) {
	rec := audit.New(1 << 16)
	rep := serveOnce(t, 200, rec)
	if rep.Completed != 200 {
		t.Fatalf("completed %d", rep.Completed)
	}
	if br := rec.Breaches(); br != 0 {
		t.Fatalf("%d audit breaches during serve", br)
	}
}

func TestServeShardedServer(t *testing.T) {
	p := testParams(4)
	p.Server.Shards = 4
	src, err := workload.NewArrivals(workload.ArrivalConfig{
		Rate: 40, Seed: 7, MaxJobs: 200, Classes: shortClasses(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := audit.New(1 << 16)
	p.Audit = rec
	rep, err := service.Run(service.Config{Cluster: p, Source: src, ScrapeInterval: time.Second})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Completed != 200 {
		t.Fatalf("completed %d want 200", rep.Completed)
	}
	if br := rec.Breaches(); br != 0 {
		t.Fatalf("%d audit breaches under sharded server", br)
	}
}

func TestServeHorizonStopsAdmission(t *testing.T) {
	p := testParams(2)
	src, err := workload.NewArrivals(workload.ArrivalConfig{
		Rate: 50, Seed: 3, Classes: shortClasses(), // unbounded source
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := service.Run(service.Config{
		Cluster: p, Source: src, Horizon: 2 * time.Second, ScrapeInterval: time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Submitted == 0 {
		t.Fatal("nothing admitted before the horizon")
	}
	// ~50 jobs/s for 2s: well under 150 even with gap noise.
	if rep.Submitted > 150 {
		t.Fatalf("admitted %d jobs past a 2s horizon at 50 jobs/s", rep.Submitted)
	}
	if rep.Completed != rep.Submitted {
		t.Fatalf("drain incomplete: %d/%d", rep.Completed, rep.Submitted)
	}
}

func TestServeTraceSourceAndQueries(t *testing.T) {
	p := testParams(2)
	entries := []workload.TraceEntry{
		{At: 10 * time.Millisecond, Name: "t0", Owner: "u", Nodes: 1, PPN: 1, Runtime: 40 * time.Millisecond, Walltime: time.Second},
		{At: 20 * time.Millisecond, Name: "t1", Owner: "u", Nodes: 1, PPN: 1, Runtime: 40 * time.Millisecond, Walltime: time.Second},
		{At: 900 * time.Millisecond, Name: "t2", Owner: "u", Nodes: 1, PPN: 1, Runtime: 40 * time.Millisecond, Walltime: time.Second},
	}
	probed := false
	var probeErr error
	cfg := service.Config{
		Cluster:        p,
		Source:         workload.NewTraceSource(entries),
		ScrapeInterval: time.Second,
		Probe: func(inst *service.Instance) {
			s := inst.Cluster().Sim
			s.Sleep(400 * time.Millisecond)
			q := inst.Queue()
			if q.At != s.Now() {
				t.Errorf("snapshot time %v, now %v", q.At, s.Now())
			}
			id, err := inst.Submit(pbs.JobSpec{
				Name: "probe", Owner: "probe", Nodes: 1, PPN: 1, Walltime: time.Second,
				Script: func(env *pbs.JobEnv) { s.Sleep(30 * time.Millisecond) },
			})
			if err != nil {
				probeErr = err
				return
			}
			if st, err := inst.JobStatus(id); err != nil || st.ID != id {
				t.Errorf("JobStatus(%s) = %+v, %v", id, st, err)
			}
			probed = true
		},
	}
	rep, err := service.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if probeErr != nil {
		t.Fatalf("probe submit: %v", probeErr)
	}
	if !probed {
		t.Fatal("probe never ran")
	}
	// 3 trace jobs + 1 probe job.
	if rep.Completed != 4 {
		t.Fatalf("completed %d want 4", rep.Completed)
	}
}

func TestServeObjectivesEvaluated(t *testing.T) {
	rep := serveOnce(t, 100, nil)
	names := map[string]bool{}
	for _, c := range rep.Compliance {
		names[c.Objective.Name] = true
	}
	for _, want := range []string{"dyn-p50", "dyn-p99", "dyn-p999", "cycle-mean", "queue-depth"} {
		if !names[want] {
			t.Errorf("objective %s missing from compliance", want)
		}
	}
}

func TestServeConfigValidation(t *testing.T) {
	if _, err := service.Run(service.Config{Cluster: testParams(1)}); err == nil {
		t.Fatal("Run without Source must fail")
	}
}
