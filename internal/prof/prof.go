// Package prof is the causal critical-path profiler: it ingests the
// virtual-time span stream recorded by internal/trace, reconstructs
// each job's causal chain across the batch-system layers (queue →
// scheduler cycle → server RPC → fabric hop → daemon spawn → compute
// → teardown), and attributes every nanosecond of a job's end-to-end
// latency to exactly one phase.
//
// The attribution is exact by construction: each phase is the
// difference of two consecutive causal milestones, so the per-phase
// durations telescope to the job's end-to-end virtual-time latency
// with byte-identical integer arithmetic — no sampling, no residue.
// This is the decomposition the paper's evaluation performs by hand
// for Figures 7(a), 7(b), and 8 (static allocation overhead vs
// dynamic request overhead), generalized to every job of a run.
//
// Inputs come from a live *trace.Tracer (Events) or a capture file
// (trace.ReadCapture); outputs are per-job profiles, aggregate
// per-phase tables (agg.go), per-job critical paths and folded
// flamegraph stacks (critical.go), and a regression diff that names
// the phase responsible for drift between two captures (diff.go).
package prof

import (
	"strconv"
	"time"

	"repro/internal/trace"
)

// Static phase names, in causal order. Each is the interval between
// two consecutive milestones of the static allocation chain:
//
//	queue     submit arrives at the server → scheduler places the job
//	schedule  placement decision → server processes the allocation
//	dispatch  server allocation → mother superior receives the job
//	spawn     mother superior start → first compute-node task runs
//	run       first task start → last task end (the job script)
//	finalize  last task end → server marks the job done
var StaticPhases = []string{"queue", "schedule", "dispatch", "spawn", "run", "finalize"}

// Dynamic phase names, in causal order — the decomposition of one
// pbs_dynget round trip (the quantity of Figures 7(b), 8, and 9):
//
//	dyn.queue     request arrives → scheduler examines it (granted cycle)
//	dyn.schedule  scheduler decision → server processes the allocation
//	dyn.dispatch  server command → mother superior receives it
//	dyn.spawn     mother superior integrates the accelerators
//	dyn.ack       integration ack → server replies to the library
var DynPhases = []string{"dyn.queue", "dyn.schedule", "dyn.dispatch", "dyn.spawn", "dyn.ack"}

// Phase is one exactly-attributed share of a latency.
type Phase struct {
	Name string
	Dur  time.Duration
}

// PathSegment is one hop of a job's critical path: during [Start,
// Start+Dur) the deepest span covering the job's timeline belonged to
// Owner ("track;name", with the @host instance suffix stripped).
type PathSegment struct {
	Owner string
	Start time.Duration
	Dur   time.Duration
}

// JobProfile is the exact latency decomposition of one batch job.
type JobProfile struct {
	ID     string
	Submit time.Duration // arrival of the qsub at the server
	Done   time.Duration // server marks the job completed
	Phases []Phase       // StaticPhases order; sums exactly to Total
	Path   []PathSegment // critical path through the causal DAG
}

// Total is the job's end-to-end virtual-time latency.
func (j *JobProfile) Total() time.Duration { return j.Done - j.Submit }

// DynProfile is the exact decomposition of one dynamic request.
type DynProfile struct {
	ReqID  int
	JobID  string
	Start  time.Duration
	Total  time.Duration // the server's dyn.request envelope
	Phases []Phase       // DynPhases order; sums exactly to Total
}

// Profile is the analysis of one capture.
type Profile struct {
	Jobs []JobProfile
	Dyns []DynProfile
	// Rejected counts dynamic requests that ended rejected (they have
	// no grant chain to decompose).
	Rejected int
	// Incomplete lists jobs and requests whose causal chain is missing
	// a milestone (deleted jobs, uninstrumented schedulers, truncated
	// captures), with the reason.
	Incomplete []string
}

// milestones of the static chain, in causal order.
type jobChain struct {
	submit, place, alloc, momStart time.Duration
	runMin, runMax, done           time.Duration
	hasSubmit, hasPlace, hasAlloc  bool
	hasMom, hasDone                bool
	runs                           int
}

// milestones of one dynamic request.
type dynChain struct {
	jobID                 string
	arrive, sched, alloc  time.Duration
	addStart, addEnd, ack time.Duration
	envStart, envDur      time.Duration
	outcome               string
	hasArrive, hasSched   bool
	hasAlloc, hasAdd      bool
	hasAck, hasEnv        bool
}

// arg returns the value of one event annotation ("" when absent).
func arg(ev *trace.Event, key string) string {
	for _, kv := range ev.Args {
		if kv.Key == key {
			return kv.Value
		}
	}
	return ""
}

// component strips the @host instance suffix from a track name, so
// "pbs/mom@cn3" and "pbs/mom@cn7" both report as "pbs/mom".
func component(track string) string {
	for i := 0; i < len(track); i++ {
		if track[i] == '@' {
			return track[:i]
		}
	}
	return track
}

// Analyze reconstructs every job's causal chain from a span stream
// and returns the exact per-phase attribution plus critical paths.
// The stream may come from Tracer.Events or trace.ReadCapture; event
// order does not matter.
func Analyze(events []trace.Event) *Profile {
	jobs := make(map[string]*jobChain)
	jobOrder := []string{}
	dyns := make(map[int]*dynChain)
	dynOrder := []int{}

	jobOf := func(ev *trace.Event) *jobChain {
		id := arg(ev, "job")
		if id == "" {
			return nil
		}
		c, ok := jobs[id]
		if !ok {
			c = &jobChain{}
			jobs[id] = c
			jobOrder = append(jobOrder, id)
		}
		return c
	}
	dynOf := func(ev *trace.Event) *dynChain {
		req, err := strconv.Atoi(arg(ev, "req"))
		if err != nil {
			return nil
		}
		c, ok := dyns[req]
		if !ok {
			c = &dynChain{}
			dyns[req] = c
			dynOrder = append(dynOrder, req)
		}
		return c
	}

	for i := range events {
		ev := &events[i]
		if ev.Kind != trace.KindSpan {
			continue
		}
		switch component(ev.Track) + ";" + ev.Name {
		case "pbs/server;submit":
			if c := jobOf(ev); c != nil {
				c.submit, c.hasSubmit = ev.Start, true
			}
		case "maui;place":
			if c := jobOf(ev); c != nil {
				c.place, c.hasPlace = ev.Start, true
			}
		case "pbs/server;alloc":
			if c := jobOf(ev); c != nil {
				c.alloc, c.hasAlloc = ev.Start, true
			}
		case "pbs/mom;mom.start":
			if c := jobOf(ev); c != nil {
				c.momStart, c.hasMom = ev.Start, true
			}
		case "pbs/mom;job.run":
			if c := jobOf(ev); c != nil {
				if c.runs == 0 || ev.Start < c.runMin {
					c.runMin = ev.Start
				}
				if end := ev.Start + ev.Dur; c.runs == 0 || end > c.runMax {
					c.runMax = end
				}
				c.runs++
			}
		case "pbs/server;jobdone":
			if c := jobOf(ev); c != nil {
				c.done, c.hasDone = ev.Start+ev.Dur, true
			}
		case "pbs/server;dynget":
			if c := dynOf(ev); c != nil {
				c.arrive, c.hasArrive = ev.Start, true
				c.jobID = arg(ev, "job")
			}
		case "maui;sched.dyn":
			// A request can be examined by several cycles before
			// resources free up; the granting cycle is the milestone
			// (earlier examinations are still queue wait).
			if c := dynOf(ev); c != nil && arg(ev, "granted") == "true" {
				c.sched, c.hasSched = ev.Start, true
			}
		case "pbs/server;dynalloc":
			if c := dynOf(ev); c != nil {
				c.alloc, c.hasAlloc = ev.Start, true
			}
		case "pbs/mom;mom.dynadd":
			if c := dynOf(ev); c != nil {
				c.addStart, c.addEnd, c.hasAdd = ev.Start, ev.Start+ev.Dur, true
			}
		case "pbs/server;dynack":
			if c := dynOf(ev); c != nil {
				c.ack, c.hasAck = ev.Start+ev.Dur, true
			}
		case "pbs/server;dyn.request":
			if c := dynOf(ev); c != nil {
				c.envStart, c.envDur, c.hasEnv = ev.Start, ev.Dur, true
				c.outcome = arg(ev, "outcome")
			}
		}
	}

	p := &Profile{}
	cp := newPathIndex(events)
	for _, id := range jobOrder {
		c := jobs[id]
		switch {
		case !c.hasSubmit:
			p.Incomplete = append(p.Incomplete, "job "+id+": no submit span")
			continue
		case !c.hasPlace:
			p.Incomplete = append(p.Incomplete, "job "+id+": no placement span (uninstrumented scheduler?)")
			continue
		case !c.hasAlloc || !c.hasMom || c.runs == 0 || !c.hasDone:
			p.Incomplete = append(p.Incomplete, "job "+id+": allocation chain incomplete")
			continue
		}
		ms := []time.Duration{c.submit, c.place, c.alloc, c.momStart, c.runMin, c.runMax, c.done}
		mono := true
		for i := 1; i < len(ms); i++ {
			if ms[i] < ms[i-1] {
				mono = false
			}
		}
		if !mono {
			p.Incomplete = append(p.Incomplete, "job "+id+": non-monotone milestones")
			continue
		}
		jp := JobProfile{ID: id, Submit: c.submit, Done: c.done}
		for i, name := range StaticPhases {
			jp.Phases = append(jp.Phases, Phase{Name: name, Dur: ms[i+1] - ms[i]})
		}
		jp.Path = cp.criticalPath(id, c.submit, c.done)
		p.Jobs = append(p.Jobs, jp)
	}
	for _, req := range dynOrder {
		c := dyns[req]
		if c.hasEnv && c.outcome == "rejected" {
			p.Rejected++
			continue
		}
		label := "dyn request " + strconv.Itoa(req)
		if !c.hasArrive || !c.hasSched || !c.hasAlloc || !c.hasAdd || !c.hasAck || !c.hasEnv {
			p.Incomplete = append(p.Incomplete, label+": grant chain incomplete")
			continue
		}
		ms := []time.Duration{c.arrive, c.sched, c.alloc, c.addStart, c.addEnd, c.ack}
		mono := c.arrive == c.envStart && c.ack == c.envStart+c.envDur
		for i := 1; i < len(ms); i++ {
			if ms[i] < ms[i-1] {
				mono = false
			}
		}
		if !mono {
			p.Incomplete = append(p.Incomplete, label+": milestones disagree with the request envelope")
			continue
		}
		dp := DynProfile{ReqID: req, JobID: c.jobID, Start: c.envStart, Total: c.envDur}
		for i, name := range DynPhases {
			dp.Phases = append(dp.Phases, Phase{Name: name, Dur: ms[i+1] - ms[i]})
		}
		p.Dyns = append(p.Dyns, dp)
	}
	return p
}
