package prof

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/metrics"
)

// Summary aggregates a profile's exact per-job attributions into
// per-phase distributions plus a critical-path breakdown by owner.
type Summary struct {
	Static   map[string]*metrics.Sample // static phase → distribution
	Dyn      map[string]*metrics.Sample // dynamic phase → distribution
	Total    *metrics.Sample            // end-to-end job latency
	DynTotal *metrics.Sample            // end-to-end dynamic request latency
	Path     map[string]time.Duration   // critical-path time by owner
	Jobs     int
	Dyns     int
	Rejected int
}

// Summarize aggregates one profile.
func Summarize(p *Profile) *Summary {
	s := &Summary{
		Static:   make(map[string]*metrics.Sample),
		Dyn:      make(map[string]*metrics.Sample),
		Total:    &metrics.Sample{},
		DynTotal: &metrics.Sample{},
		Path:     make(map[string]time.Duration),
		Jobs:     len(p.Jobs),
		Dyns:     len(p.Dyns),
		Rejected: p.Rejected,
	}
	obs := func(m map[string]*metrics.Sample, name string, d time.Duration) {
		sm, ok := m[name]
		if !ok {
			sm = &metrics.Sample{}
			m[name] = sm
		}
		sm.Add(d)
	}
	for i := range p.Jobs {
		j := &p.Jobs[i]
		s.Total.Add(j.Total())
		for _, ph := range j.Phases {
			obs(s.Static, ph.Name, ph.Dur)
		}
		for _, seg := range j.Path {
			s.Path[seg.Owner] += seg.Dur
		}
	}
	for i := range p.Dyns {
		d := &p.Dyns[i]
		s.DynTotal.Add(d.Total)
		for _, ph := range d.Phases {
			obs(s.Dyn, ph.Name, ph.Dur)
		}
	}
	return s
}

// Merge folds another summary into s (distributions are merged
// observation-by-observation, critical-path shares are summed), so
// several captures aggregate as if analyzed together.
func (s *Summary) Merge(o *Summary) {
	mergeInto := func(dst, src map[string]*metrics.Sample) {
		for name, sm := range src {
			d, ok := dst[name]
			if !ok {
				d = &metrics.Sample{}
				dst[name] = d
			}
			d.Merge(sm)
		}
	}
	mergeInto(s.Static, o.Static)
	mergeInto(s.Dyn, o.Dyn)
	s.Total.Merge(o.Total)
	s.DynTotal.Merge(o.DynTotal)
	for owner, d := range o.Path {
		s.Path[owner] += d
	}
	s.Jobs += o.Jobs
	s.Dyns += o.Dyns
	s.Rejected += o.Rejected
}

// OwnerShare is one critical-path owner and its summed share.
type OwnerShare struct {
	Owner string
	Dur   time.Duration
}

// TopPath returns the n owners with the largest critical-path share,
// largest first (ties broken by owner name for determinism).
func (s *Summary) TopPath(n int) []OwnerShare {
	out := make([]OwnerShare, 0, len(s.Path))
	for owner, d := range s.Path {
		out = append(out, OwnerShare{Owner: owner, Dur: d})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dur != out[b].Dur {
			return out[a].Dur > out[b].Dur
		}
		return out[a].Owner < out[b].Owner
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// pct renders a share of a total as a percentage.
func pct(part, total time.Duration) string {
	if total <= 0 {
		return "0.0"
	}
	return fmt.Sprintf("%.1f", 100*float64(part)/float64(total))
}

// phaseRows appends one table row per phase in canonical order.
func phaseRows(t *metrics.Table, names []string, m map[string]*metrics.Sample, total *metrics.Sample) {
	var meanSum time.Duration
	for _, name := range names {
		if sm := m[name]; sm != nil {
			meanSum += sm.Mean()
		}
	}
	for _, name := range names {
		sm := m[name]
		if sm == nil {
			continue
		}
		t.AddRow(name, metrics.Ms(sm.Mean()), metrics.Ms(sm.Max()), pct(sm.Mean(), meanSum))
	}
	t.AddRow("total", metrics.Ms(total.Mean()), metrics.Ms(total.Max()), "100.0")
}

// StaticTable renders the static allocation phases (mean over jobs).
func (s *Summary) StaticTable() *metrics.Table {
	t := &metrics.Table{
		Title:   fmt.Sprintf("Static allocation phases (%d jobs) [ms]", s.Jobs),
		Headers: []string{"phase", "mean", "max", "share_pct"},
	}
	phaseRows(t, StaticPhases, s.Static, s.Total)
	return t
}

// DynTable renders the dynamic request phases (mean over requests).
func (s *Summary) DynTable() *metrics.Table {
	t := &metrics.Table{
		Title:   fmt.Sprintf("Dynamic request phases (%d requests, %d rejected) [ms]", s.Dyns, s.Rejected),
		Headers: []string{"phase", "mean", "max", "share_pct"},
	}
	phaseRows(t, DynPhases, s.Dyn, s.DynTotal)
	return t
}

// PathTable renders the top-n critical-path owners.
func (s *Summary) PathTable(n int) *metrics.Table {
	t := &metrics.Table{
		Title:   "Critical path by owner (summed over jobs) [ms]",
		Headers: []string{"owner", "total", "share_pct"},
	}
	var total time.Duration
	for _, d := range s.Path {
		total += d
	}
	for _, os := range s.TopPath(n) {
		t.AddRow(os.Owner, metrics.Ms(os.Dur), pct(os.Dur, total))
	}
	return t
}

// JobTable renders the exact per-job attribution, one row per job.
func JobTable(p *Profile) *metrics.Table {
	t := &metrics.Table{
		Title:   "Per-job phase attribution (virtual time, sums exactly) [ms]",
		Headers: append(append([]string{"job"}, StaticPhases...), "total"),
	}
	for i := range p.Jobs {
		j := &p.Jobs[i]
		row := []string{j.ID}
		for _, ph := range j.Phases {
			row = append(row, metrics.Ms(ph.Dur))
		}
		row = append(row, metrics.Ms(j.Total()))
		t.AddRow(row...)
	}
	return t
}

// PhaseDelta is one phase's drift between two captures.
type PhaseDelta struct {
	Name     string
	Old, New time.Duration // per-phase means
	Delta    time.Duration // New - Old
}

// Diff compares per-phase means between two summaries (old → new),
// static phases first, then dynamic, in canonical order. Phases
// absent from both are skipped; absent from one side read as zero.
func Diff(old, new *Summary) []PhaseDelta {
	var out []PhaseDelta
	add := func(names []string, om, nm map[string]*metrics.Sample) {
		for _, name := range names {
			osm, nsm := om[name], nm[name]
			if osm == nil && nsm == nil {
				continue
			}
			var o, n time.Duration
			if osm != nil {
				o = osm.Mean()
			}
			if nsm != nil {
				n = nsm.Mean()
			}
			out = append(out, PhaseDelta{Name: name, Old: o, New: n, Delta: n - o})
		}
	}
	add(StaticPhases, old.Static, new.Static)
	add(DynPhases, old.Dyn, new.Dyn)
	return out
}

// TopDrifter names the phase with the largest absolute drift — the
// answer to "which phase is responsible for the regression". Ties go
// to the later phase in canonical order: a slowdown inside a dynamic
// request also widens the enclosing job's run phase by exactly the
// same amount, and the dynamic phase is the more specific culprit.
// ok is false when there is nothing to compare.
func TopDrifter(deltas []PhaseDelta) (PhaseDelta, bool) {
	var best PhaseDelta
	ok := false
	abs := func(d time.Duration) time.Duration {
		if d < 0 {
			return -d
		}
		return d
	}
	for _, d := range deltas {
		if !ok || abs(d.Delta) >= abs(best.Delta) {
			best, ok = d, true
		}
	}
	return best, ok
}

// DiffTable renders a phase drift comparison.
func DiffTable(deltas []PhaseDelta) *metrics.Table {
	t := &metrics.Table{
		Title:   "Phase drift (new - old, per-phase means) [ms]",
		Headers: []string{"phase", "old", "new", "delta"},
	}
	for _, d := range deltas {
		t.AddRow(d.Name, metrics.Ms(d.Old), metrics.Ms(d.New), metrics.Ms(d.Delta))
	}
	return t
}
