package prof

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dac"
	"repro/internal/pbs"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// runSmall executes a small deterministic testbed run — one DAC job
// with two static accelerators issuing one dynamic request — and
// returns the recorded span stream.
func runSmall(t *testing.T, mutate func(*cluster.Params)) []trace.Event {
	t.Helper()
	p := cluster.Default()
	p.ComputeNodes = 2
	p.Accelerators = 4
	if mutate != nil {
		mutate(&p)
	}
	tr := trace.New()
	p.Tracer = tr
	err := cluster.Run(p, func(c *cluster.Cluster, client *pbs.Client) {
		id, err := client.Submit(pbs.JobSpec{
			Name: "prof", Owner: "exp", Nodes: 1, PPN: 1, ACPN: 2, Walltime: time.Minute,
			Script: func(env *pbs.JobEnv) {
				ac, _, err := dac.Init(env)
				if err != nil {
					return
				}
				defer ac.Finalize()
				cid, _, err := ac.Get(1)
				if err == nil {
					ac.Free(cid)
				}
			},
		})
		if err != nil {
			t.Errorf("submit: %v", err)
			return
		}
		client.Wait(id)
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return tr.Events()
}

func phaseSum(phases []Phase) time.Duration {
	var sum time.Duration
	for _, ph := range phases {
		sum += ph.Dur
	}
	return sum
}

func TestAnalyzeExactAttribution(t *testing.T) {
	p := Analyze(runSmall(t, nil))
	if len(p.Incomplete) != 0 {
		t.Fatalf("incomplete chains: %v", p.Incomplete)
	}
	if len(p.Jobs) != 1 || len(p.Dyns) != 1 || p.Rejected != 0 {
		t.Fatalf("got %d jobs, %d dyns, %d rejected", len(p.Jobs), len(p.Dyns), p.Rejected)
	}
	j := p.Jobs[0]
	if got, want := phaseSum(j.Phases), j.Total(); got != want {
		t.Errorf("job %s: phases sum to %v, end-to-end is %v", j.ID, got, want)
	}
	if len(j.Phases) != len(StaticPhases) {
		t.Errorf("job %s: %d phases, want %d", j.ID, len(j.Phases), len(StaticPhases))
	}
	for i, ph := range j.Phases {
		if ph.Name != StaticPhases[i] {
			t.Errorf("phase %d = %q, want %q", i, ph.Name, StaticPhases[i])
		}
		if ph.Dur < 0 {
			t.Errorf("phase %s negative: %v", ph.Name, ph.Dur)
		}
	}
	d := p.Dyns[0]
	if got := phaseSum(d.Phases); got != d.Total {
		t.Errorf("dyn %d: phases sum to %v, envelope is %v", d.ReqID, got, d.Total)
	}
	if d.JobID != j.ID {
		t.Errorf("dyn request attributed to %q, want %q", d.JobID, j.ID)
	}
}

func TestCriticalPathCoversTimeline(t *testing.T) {
	p := Analyze(runSmall(t, nil))
	j := p.Jobs[0]
	if len(j.Path) == 0 {
		t.Fatal("empty critical path")
	}
	at := j.Submit
	var sum time.Duration
	for i, seg := range j.Path {
		if seg.Start != at {
			t.Errorf("segment %d starts at %v, want %v (contiguous)", i, seg.Start, at)
		}
		if seg.Dur <= 0 {
			t.Errorf("segment %d (%s) has non-positive duration %v", i, seg.Owner, seg.Dur)
		}
		if seg.Owner == "" {
			t.Errorf("segment %d has empty owner", i)
		}
		if i > 0 && j.Path[i-1].Owner == seg.Owner {
			t.Errorf("segments %d and %d share owner %s (unmerged)", i-1, i, seg.Owner)
		}
		at = seg.Start + seg.Dur
		sum += seg.Dur
	}
	if sum != j.Total() {
		t.Errorf("critical path covers %v, end-to-end is %v", sum, j.Total())
	}
	// The deepest-span sweep must surface the innermost activity, not
	// just the enclosing job.run: the scheduler cycle, the port wait
	// (covering the daemon boot), and the connect phase are all on
	// this job's path by construction.
	owners := make(map[string]bool)
	for _, seg := range j.Path {
		owners[seg.Owner] = true
	}
	for _, want := range []string{"maui;sched.cycle", "dac;wait_port", "dac;connect", "pbs/mom;mom.dynadd"} {
		if !owners[want] {
			t.Errorf("critical path misses %s; owners: %v", want, owners)
		}
	}
}

func TestAnalyzeFromCapture(t *testing.T) {
	events := runSmall(t, nil)
	var buf bytes.Buffer
	if err := trace.WriteCapture(&buf, events); err != nil {
		t.Fatalf("write capture: %v", err)
	}
	back, err := trace.ReadCapture(&buf)
	if err != nil {
		t.Fatalf("read capture: %v", err)
	}
	if !reflect.DeepEqual(Analyze(events), Analyze(back)) {
		t.Error("profile drifted across a capture round trip")
	}
}

func TestDiffNamesInjectedSlowdown(t *testing.T) {
	base := Summarize(Analyze(runSmall(t, nil)))
	cases := []struct {
		name   string
		mutate func(*cluster.Params)
		phases []string // acceptable top drifters
	}{
		// A slower accelerator integration at the mom: dyn.spawn wins
		// over the equally-widened enclosing run phase (tie-break).
		{"dyn spawn", func(p *cluster.Params) { p.Mom.DynJoinCost += 100 * time.Millisecond }, []string{"dyn.spawn"}},
		{"static spawn", func(p *cluster.Params) { p.Mom.StartCost += 100 * time.Millisecond }, []string{"spawn"}},
		// A slower scheduler cycle shows up as queue wait — for the
		// static placement, the dynamic request, or both.
		{"scheduler", func(p *cluster.Params) { p.Maui.CycleOverhead += 2 * time.Second }, []string{"queue", "dyn.queue"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			slow := Summarize(Analyze(runSmall(t, tc.mutate)))
			top, ok := TopDrifter(Diff(base, slow))
			if !ok {
				t.Fatal("no phases to compare")
			}
			found := false
			for _, want := range tc.phases {
				if top.Name == want {
					found = true
				}
			}
			if !found {
				t.Errorf("top drifter = %s (%+v), want one of %v", top.Name, top.Delta, tc.phases)
			}
			if top.Delta <= 0 {
				t.Errorf("injected slowdown reads as %v", top.Delta)
			}
		})
	}
}

func TestSummaryMerge(t *testing.T) {
	events := runSmall(t, nil)
	one := Summarize(Analyze(events))
	two := Summarize(Analyze(events))
	two.Merge(one)
	if two.Jobs != 2*one.Jobs || two.Dyns != 2*one.Dyns {
		t.Errorf("merge counts: jobs %d dyns %d", two.Jobs, two.Dyns)
	}
	if got, want := two.Static["queue"].N(), 2*one.Static["queue"].N(); got != want {
		t.Errorf("merged queue sample N = %d, want %d", got, want)
	}
	if got, want := two.Total.Mean(), one.Total.Mean(); got != want {
		t.Errorf("merged mean %v, want %v (identical inputs)", got, want)
	}
	if got, want := two.Path["pbs/mom;job.run"], 2*one.Path["pbs/mom;job.run"]; got != want {
		t.Errorf("merged path share %v, want %v", got, want)
	}
}

func TestGoldenProfile(t *testing.T) {
	events := runSmall(t, nil)
	p := Analyze(events)
	s := Summarize(p)
	var buf bytes.Buffer
	if err := s.StaticTable().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if err := s.DynTable().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if err := s.PathTable(5).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if err := JobTable(p).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if err := WriteFolded(&buf, events); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "profile.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("profile output drifted from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

func TestFoldedStacksWellFormed(t *testing.T) {
	events := runSmall(t, nil)
	var buf bytes.Buffer
	if err := WriteFolded(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("only %d folded stacks", len(lines))
	}
	prev := ""
	for _, ln := range lines {
		i := strings.LastIndexByte(ln, ' ')
		if i < 0 {
			t.Fatalf("malformed folded line %q", ln)
		}
		stack := ln[:i]
		if stack <= prev {
			t.Errorf("stacks not strictly sorted: %q after %q", stack, prev)
		}
		prev = stack
		if !strings.Contains(stack, ";") {
			t.Errorf("stack %q has no frames", stack)
		}
	}
	// Nested DAC work must appear as multi-frame stacks.
	if !strings.Contains(buf.String(), "dac;ac.init;connect ") {
		t.Errorf("expected dac;ac.init;connect stack in:\n%s", buf.String())
	}
}
