package prof

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/trace"
)

// pathIndex is the event graph used for critical-path extraction:
// events indexed by span id, children keyed by parent id (same-track
// nesting), and effects keyed by cause id (cross-track Links).
type pathIndex struct {
	events   []trace.Event
	byID     map[uint64]int
	children map[uint64][]int
	effects  map[uint64][]int
}

func newPathIndex(events []trace.Event) *pathIndex {
	ix := &pathIndex{
		events:   events,
		byID:     make(map[uint64]int),
		children: make(map[uint64][]int),
		effects:  make(map[uint64][]int),
	}
	for i := range events {
		ev := &events[i]
		if ev.Kind != trace.KindSpan || ev.ID == 0 {
			continue
		}
		ix.byID[ev.ID] = i
		if ev.Parent != 0 {
			ix.children[ev.Parent] = append(ix.children[ev.Parent], i)
		}
		for _, cause := range ev.Links {
			ix.effects[cause] = append(ix.effects[cause], i)
		}
	}
	return ix
}

// jobSpans collects the indices of the spans causally associated with
// one job: the spans annotated job=id, their same-track descendants,
// the cross-track spans their work caused (following Links), and —
// without further expansion — their ancestors, which supply context
// like the scheduler cycle a placement happened in. Expanding
// children or links of ancestors is deliberately avoided: a shared
// scheduler cycle would otherwise pull every concurrent job's spans
// into this job's path.
func (ix *pathIndex) jobSpans(jobID string) []int {
	in := make(map[int]bool)
	var queue []int
	for i := range ix.events {
		ev := &ix.events[i]
		if ev.Kind == trace.KindSpan && arg(ev, "job") == jobID {
			in[i] = true
			queue = append(queue, i)
		}
	}
	seeds := append([]int(nil), queue...)
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		id := ix.events[i].ID
		for _, j := range ix.children[id] {
			if !in[j] {
				in[j] = true
				queue = append(queue, j)
			}
		}
		for _, j := range ix.effects[id] {
			if !in[j] {
				in[j] = true
				queue = append(queue, j)
			}
		}
	}
	for _, i := range seeds {
		for par := ix.events[i].Parent; par != 0; {
			j, ok := ix.byID[par]
			if !ok || in[j] {
				break
			}
			in[j] = true
			par = ix.events[j].Parent
		}
	}
	out := make([]int, 0, len(in))
	for i := range in {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// criticalPath sweeps the job's timeline [from, to) and attributes
// each instant to the deepest job-associated span covering it — the
// component actually working (or being waited on) at that moment.
// Depth is by interval containment: among covering spans the one that
// started last wins (ties: shorter, then track/name/id order), so
// e.g. a connect sub-span beats its ac.init parent, which beats the
// enclosing job.run. Instants with no covering span report as
// "(wait)". Consecutive same-owner segments are merged.
func (ix *pathIndex) criticalPath(jobID string, from, to time.Duration) []PathSegment {
	if to <= from {
		return nil
	}
	type span struct {
		st, en time.Duration
		owner  string
		id     uint64
	}
	var spans []span
	for _, i := range ix.jobSpans(jobID) {
		ev := &ix.events[i]
		st, en := ev.Start, ev.Start+ev.Dur
		if st < from {
			st = from
		}
		if en > to {
			en = to
		}
		if en <= st {
			continue
		}
		spans = append(spans, span{st: st, en: en, owner: component(ev.Track) + ";" + ev.Name, id: ev.ID})
	}
	bounds := []time.Duration{from, to}
	for _, s := range spans {
		bounds = append(bounds, s.st, s.en)
	}
	sort.Slice(bounds, func(a, b int) bool { return bounds[a] < bounds[b] })
	var path []PathSegment
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		if hi <= lo {
			continue
		}
		owner := "(wait)"
		var best *span
		for j := range spans {
			s := &spans[j]
			if s.st > lo || s.en < hi {
				continue
			}
			if best == nil || s.st > best.st ||
				(s.st == best.st && (s.en < best.en ||
					(s.en == best.en && (s.owner < best.owner ||
						(s.owner == best.owner && s.id < best.id))))) {
				best = s
			}
		}
		if best != nil {
			owner = best.owner
		}
		if n := len(path); n > 0 && path[n-1].Owner == owner {
			path[n-1].Dur += hi - lo
			continue
		}
		path = append(path, PathSegment{Owner: owner, Start: lo, Dur: hi - lo})
	}
	return path
}

// WriteFolded renders the span stream as folded flamegraph stacks
// ("track;span;subspan weight"), one line per unique stack with the
// summed self time in nanoseconds as the weight — the format
// flamegraph.pl and inferno consume directly. Tracks are aggregated
// per component (the @host suffix is stripped), and a span's self
// time is its duration minus its children's, clamped at zero, so the
// stack weights sum to the trace's total span time.
func WriteFolded(w io.Writer, events []trace.Event) error {
	byID := make(map[uint64]int)
	childSum := make(map[uint64]time.Duration)
	for i := range events {
		ev := &events[i]
		if ev.Kind != trace.KindSpan || ev.ID == 0 {
			continue
		}
		byID[ev.ID] = i
		if ev.Parent != 0 {
			childSum[ev.Parent] += ev.Dur
		}
	}
	weights := make(map[string]time.Duration)
	for i := range events {
		ev := &events[i]
		if ev.Kind != trace.KindSpan || ev.ID == 0 {
			continue
		}
		self := ev.Dur - childSum[ev.ID]
		if self < 0 {
			self = 0
		}
		var names []string
		for e := ev; ; {
			names = append(names, e.Name)
			j, ok := byID[e.Parent]
			if e.Parent == 0 || !ok {
				break
			}
			e = &events[j]
		}
		stack := component(ev.Track)
		for j := len(names) - 1; j >= 0; j-- {
			stack += ";" + names[j]
		}
		weights[stack] += self
	}
	stacks := make([]string, 0, len(weights))
	for s := range weights {
		stacks = append(stacks, s)
	}
	sort.Strings(stacks)
	bw := bufio.NewWriter(w)
	for _, s := range stacks {
		if _, err := fmt.Fprintf(bw, "%s %d\n", s, int64(weights[s])); err != nil {
			return err
		}
	}
	return bw.Flush()
}
