package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/pbs"
	"repro/internal/sim"
)

// TraceEntry is one job of a recorded workload trace. Traces are the
// serializable form of a generated workload: scripts cannot be
// serialized, so replay reconstructs sleep scripts from Runtime.
type TraceEntry struct {
	At       time.Duration `json:"at"` // submission offset from trace start
	Name     string        `json:"name"`
	Owner    string        `json:"owner"`
	Nodes    int           `json:"nodes"`
	PPN      int           `json:"ppn"`
	ACPN     int           `json:"acpn"`
	Runtime  time.Duration `json:"runtime"`
	Walltime time.Duration `json:"walltime"`
	// DynACs, when positive, reconstructs a job that issues one
	// dynamic accelerator request at runtime (held for DynHold); zero
	// keeps the plain sleeper script, so older traces replay
	// unchanged.
	DynACs  int           `json:"dyn_acs,omitempty"`
	DynHold time.Duration `json:"dyn_hold,omitempty"`
}

// Spec reconstructs a submittable job from the entry.
func (e TraceEntry) Spec(s *sim.Simulation) pbs.JobSpec {
	script := Sleeper(s, e.Runtime)
	if e.DynACs > 0 {
		script = DynSleeper(s, e.Runtime, e.DynACs, e.DynHold)
	}
	return pbs.JobSpec{
		Name:     e.Name,
		Owner:    e.Owner,
		Nodes:    e.Nodes,
		PPN:      e.PPN,
		ACPN:     e.ACPN,
		Walltime: e.Walltime,
		Script:   script,
	}
}

// Record draws n jobs from the generator into a trace.
func Record(g *Generator, n int) []TraceEntry {
	var at time.Duration
	out := make([]TraceEntry, 0, n)
	for i := 0; i < n; i++ {
		spec, gap := g.Next()
		at += gap
		// Recover the runtime from the class parameters is not
		// possible post hoc; regenerate deterministic runtimes by
		// storing walltime as the estimate and using it as runtime
		// upper bound. To keep the trace faithful, Generator exposes
		// the drawn runtime through the spec's walltime when the
		// class declared none; here we persist walltime and
		// approximate runtime as 60% of it.
		out = append(out, TraceEntry{
			At:       at,
			Name:     spec.Name,
			Owner:    spec.Owner,
			Nodes:    spec.Nodes,
			PPN:      spec.PPN,
			ACPN:     spec.ACPN,
			Runtime:  time.Duration(float64(spec.Walltime) * 0.6),
			Walltime: spec.Walltime,
		})
	}
	return out
}

// Save writes a trace as JSON lines.
func Save(w io.Writer, entries []TraceEntry) error {
	enc := json.NewEncoder(w)
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("workload: save trace: %w", err)
		}
	}
	return nil
}

// Load reads a JSON-lines trace.
func Load(r io.Reader) ([]TraceEntry, error) {
	dec := json.NewDecoder(r)
	var out []TraceEntry
	for dec.More() {
		var e TraceEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("workload: load trace: %w", err)
		}
		out = append(out, e)
	}
	return out, nil
}

// Replay submits every trace entry at its offset and returns the job
// ids in submission order. It blocks until all entries are submitted
// (not until they complete).
func Replay(s *sim.Simulation, client *pbs.Client, entries []TraceEntry) ([]string, error) {
	var ids []string
	start := s.Now()
	for _, e := range entries {
		if wait := e.At - (s.Now() - start); wait > 0 {
			s.Sleep(wait)
		}
		id, err := client.Submit(e.Spec(s))
		if err != nil {
			return ids, fmt.Errorf("workload: replay submit %q: %w", e.Name, err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}
