package workload

import (
	"strings"
	"testing"
	"time"

	"repro/internal/pbs"
	"repro/internal/sim"
)

func TestBacklogShape(t *testing.T) {
	s := sim.New()
	jobs := Backlog(s, 5, 3)
	if len(jobs) != 5 {
		t.Fatalf("len = %d", len(jobs))
	}
	for i, j := range jobs {
		if j.Nodes != 3 || j.Owner != "load" {
			t.Errorf("job %d = %+v", i, j)
		}
		if j.Script == nil {
			t.Errorf("job %d has no script", i)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	s := sim.New()
	g1 := NewGenerator(s, 7, 50*time.Millisecond, DefaultClasses())
	g2 := NewGenerator(s, 7, 50*time.Millisecond, DefaultClasses())
	for i := 0; i < 50; i++ {
		a, ga := g1.Next()
		b, gb := g2.Next()
		if a.Name != b.Name || a.Nodes != b.Nodes || a.PPN != b.PPN || a.ACPN != b.ACPN || ga != gb {
			t.Fatalf("divergence at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestGeneratorDrawsAllClasses(t *testing.T) {
	s := sim.New()
	g := NewGenerator(s, 3, 50*time.Millisecond, DefaultClasses())
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		spec, gap := g.Next()
		if gap < 0 {
			t.Fatalf("negative gap %v", gap)
		}
		cls := strings.SplitN(spec.Name, "-", 2)[0]
		seen[cls] = true
		if spec.Walltime <= 0 {
			t.Fatalf("job %s without walltime", spec.Name)
		}
	}
	for _, c := range DefaultClasses() {
		if !seen[c.Name] {
			t.Errorf("class %s never drawn", c.Name)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	s := sim.New()
	g := NewGenerator(s, 11, 40*time.Millisecond, DefaultClasses())
	entries := Record(g, 20)
	if len(entries) != 20 {
		t.Fatalf("entries = %d", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].At < entries[i-1].At {
			t.Fatalf("trace times not monotone at %d", i)
		}
	}
	var b strings.Builder
	if err := Save(&b, entries); err != nil {
		t.Fatal(err)
	}
	got, err := Load(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("loaded %d, want %d", len(got), len(entries))
	}
	for i := range got {
		if got[i] != entries[i] {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, got[i], entries[i])
		}
	}
}

func TestLoadBadJSON(t *testing.T) {
	if _, err := Load(strings.NewReader("{broken")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestTraceEntrySpec(t *testing.T) {
	s := sim.New()
	e := TraceEntry{Name: "j", Owner: "o", Nodes: 2, PPN: 4, ACPN: 1, Runtime: time.Second, Walltime: 2 * time.Second}
	spec := e.Spec(s)
	if spec.Name != "j" || spec.Nodes != 2 || spec.PPN != 4 || spec.ACPN != 1 || spec.Walltime != 2*time.Second {
		t.Fatalf("spec = %+v", spec)
	}
	if spec.Script == nil {
		t.Fatal("spec without script")
	}
}

func TestStaticPeakSpec(t *testing.T) {
	s := sim.New()
	phases := []Phase{
		{ExtraACs: 0, Compute: 100 * time.Millisecond},
		{ExtraACs: 3, Compute: 200 * time.Millisecond},
		{ExtraACs: 1, Compute: 100 * time.Millisecond},
	}
	spec := StaticPeakSpec(s, "x", 1, phases)
	if spec.ACPN != 4 { // 1 static + peak 3
		t.Fatalf("ACPN = %d, want 4", spec.ACPN)
	}
	if spec.Walltime < 400*time.Millisecond {
		t.Fatalf("walltime = %v", spec.Walltime)
	}
}

func TestSleeperHoldsDuration(t *testing.T) {
	s := sim.New()
	err := s.Run(func() {
		start := s.Now()
		Sleeper(s, 250*time.Millisecond)(&pbs.JobEnv{})
		if got := s.Now() - start; got != 250*time.Millisecond {
			t.Errorf("sleeper held %v", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
