// Package workload generates synthetic job streams for the
// experiments: the qsub bursts loading the scheduler in Figure 8,
// mixed batch workloads for the throughput ablations, and
// phase-structured DAC applications whose accelerator demand changes
// at runtime — the usage scenario motivating the paper's dynamic
// allocation (Section I).
package workload

import (
	"fmt"
	"time"

	"repro/internal/dac"
	"repro/internal/pbs"
	"repro/internal/sim"
)

// Sleeper returns a job script that simply holds its nodes for d.
func Sleeper(s *sim.Simulation, d time.Duration) pbs.Script {
	return func(env *pbs.JobEnv) { s.Sleep(d) }
}

// DynSleeper returns a job script that holds its nodes for run and,
// once started, issues one dynamic request for acs accelerators, held
// for hold before being freed. A rejected request just shortens the
// dynamic phase — the job still runs to completion, like the paper's
// applications degrade to their static set.
func DynSleeper(s *sim.Simulation, run time.Duration, acs int, hold time.Duration) pbs.Script {
	return func(env *pbs.JobEnv) {
		ac, _, err := dac.Init(env)
		if err != nil {
			s.Sleep(run)
			return
		}
		defer ac.Finalize()
		clientID, _, err := ac.Get(acs)
		if err == nil {
			s.Sleep(hold)
			ac.Free(clientID)
		}
		if rest := run - hold; rest > 0 {
			s.Sleep(rest)
		}
	}
}

// Backlog returns n jobs that can never be scheduled on a cluster
// with fewer than nodes compute nodes; they keep the Maui queue busy
// without interfering with the DAC job's resources, as required by
// the Figure 8 setup ("none of the 16 or 20 jobs interfere with the
// compute node or the accelerator node").
func Backlog(s *sim.Simulation, n, nodes int) []pbs.JobSpec {
	out := make([]pbs.JobSpec, n)
	for i := range out {
		out[i] = pbs.JobSpec{
			Name:     fmt.Sprintf("load%d", i),
			Owner:    "load",
			Nodes:    nodes,
			PPN:      1,
			Walltime: time.Minute,
			Script:   Sleeper(s, time.Millisecond),
		}
	}
	return out
}

// Class describes one job class in a mixed workload.
type Class struct {
	Name     string
	Weight   int // relative frequency
	Nodes    int
	PPN      int
	ACPN     int
	MinRun   time.Duration
	MaxRun   time.Duration
	Walltime time.Duration // user estimate; 0 means MaxRun
	// DynACs, when positive, makes jobs of this class issue one
	// dynamic accelerator request (AC_Get) for that many accelerators
	// at runtime, held for DynHold before AC_Free — the class that
	// keeps pbs.dyn_latency carrying signal in open-loop service runs.
	DynACs  int
	DynHold time.Duration
}

// Generator draws jobs from a weighted mix of classes with
// exponential interarrival times.
//
// Job shapes and interarrival gaps come from two independent seeded
// streams split from the one seed, so changing the submission rate
// (MeanInterarrival) never reshuffles which jobs arrive — only when.
type Generator struct {
	sim     *sim.Simulation
	shape   *sim.RNG // class pick + runtime draw
	arrival *sim.RNG // interarrival gaps only
	classes []Class
	total   int
	// MeanInterarrival is the mean spacing between submissions.
	MeanInterarrival time.Duration
	seq              int
}

// NewGenerator creates a generator over the given classes.
func NewGenerator(s *sim.Simulation, seed uint64, mean time.Duration, classes []Class) *Generator {
	total := 0
	for _, c := range classes {
		total += c.Weight
	}
	shape, arrival := splitStreams(seed)
	return &Generator{sim: s, shape: shape, arrival: arrival, classes: classes, total: total, MeanInterarrival: mean}
}

// splitStreams derives the two independent per-source RNG streams —
// job shape and interarrival — from one seed. Both Generator and
// Arrivals use it, so a generator and an arrival process with the
// same seed and classes draw identical job sequences.
func splitStreams(seed uint64) (shape, arrival *sim.RNG) {
	shape = sim.NewRNG(seed)
	arrival = sim.NewRNG(seed).Split()
	return shape, arrival
}

// DefaultClasses is a small mixed workload: serial jobs, node-wide
// jobs, and DAC jobs with static accelerators.
func DefaultClasses() []Class {
	return []Class{
		{Name: "serial", Weight: 4, Nodes: 1, PPN: 1, MinRun: 50 * time.Millisecond, MaxRun: 400 * time.Millisecond},
		{Name: "node", Weight: 2, Nodes: 1, PPN: 8, MinRun: 100 * time.Millisecond, MaxRun: 600 * time.Millisecond},
		{Name: "dacjob", Weight: 1, Nodes: 1, PPN: 2, ACPN: 1, MinRun: 100 * time.Millisecond, MaxRun: 500 * time.Millisecond},
	}
}

// Next draws the next job and the interarrival gap preceding it.
func (g *Generator) Next() (pbs.JobSpec, time.Duration) {
	g.seq++
	cls, run := drawShape(g.shape, g.classes, g.total)
	wall := cls.Walltime
	if wall == 0 {
		wall = cls.MaxRun
	}
	spec := pbs.JobSpec{
		Name:     fmt.Sprintf("%s-%d", cls.Name, g.seq),
		Owner:    cls.Name,
		Nodes:    cls.Nodes,
		PPN:      cls.PPN,
		ACPN:     cls.ACPN,
		Walltime: wall,
		Script:   Sleeper(g.sim, run),
	}
	gap := time.Duration(g.arrival.Exp(g.MeanInterarrival.Seconds()) * float64(time.Second))
	return spec, gap
}

// drawShape picks a weighted class and its runtime from the shape
// stream — two draws per job, always in this order, so the k-th job
// of a seed is the same regardless of how gaps are generated.
func drawShape(rng *sim.RNG, classes []Class, total int) (Class, time.Duration) {
	pick := rng.Intn(total)
	var cls Class
	for _, c := range classes {
		if pick < c.Weight {
			cls = c
			break
		}
		pick -= c.Weight
	}
	run := cls.MinRun
	if cls.MaxRun > cls.MinRun {
		run += time.Duration(rng.Float64() * float64(cls.MaxRun-cls.MinRun))
	}
	return cls, run
}

// Phase is one computational phase of an evolving DAC application.
type Phase struct {
	// ExtraACs is how many accelerators beyond the static set the
	// phase wants; the application issues AC_Get at the phase start
	// and AC_Free at its end. Zero runs on the static set only.
	ExtraACs int
	// Compute is the phase's duration on the granted set; if fewer
	// accelerators were granted (rejection), the phase stretches by
	// Stretch per missing accelerator.
	Compute time.Duration
	// Stretch is the slowdown per missing accelerator.
	Stretch time.Duration
}

// PhasedResult summarizes a phased application's run.
type PhasedResult struct {
	Rejections int
	Elapsed    time.Duration
}

// PhasedApp builds a DAC job script that walks through the phases,
// growing and shrinking its accelerator set at runtime. The result
// callback (optional) receives the summary before the job exits.
func PhasedApp(s *sim.Simulation, phases []Phase, result func(PhasedResult)) pbs.Script {
	return func(env *pbs.JobEnv) {
		start := s.Now()
		var res PhasedResult
		ac, _, err := dac.Init(env)
		if err != nil {
			return
		}
		defer ac.Finalize()
		for _, ph := range phases {
			compute := ph.Compute
			var clientID int
			granted := 0
			if ph.ExtraACs > 0 {
				id, hs, err := ac.Get(ph.ExtraACs)
				if err == nil {
					clientID = id
					granted = len(hs)
				} else {
					res.Rejections++
				}
			}
			if missing := ph.ExtraACs - granted; missing > 0 {
				compute += time.Duration(missing) * ph.Stretch
			}
			s.Sleep(compute)
			if granted > 0 {
				_ = ac.Free(clientID)
			}
		}
		res.Elapsed = s.Now() - start
		if result != nil {
			result(res)
		}
	}
}

// StaticPeakSpec converts a phased application into its static-only
// equivalent: it must reserve its peak accelerator demand for the
// whole runtime (the baseline the dynamic batch system improves on).
func StaticPeakSpec(s *sim.Simulation, name string, staticACs int, phases []Phase) pbs.JobSpec {
	peak := 0
	var total time.Duration
	for _, ph := range phases {
		if ph.ExtraACs > peak {
			peak = ph.ExtraACs
		}
		total += ph.Compute
	}
	return pbs.JobSpec{
		Name:     name,
		Owner:    "static",
		Nodes:    1,
		PPN:      2,
		ACPN:     staticACs + peak,
		Walltime: total + 100*time.Millisecond,
		Script:   Sleeper(s, total),
	}
}

// DynamicSpec wraps a phased application into a job spec with the
// given static accelerator count.
func DynamicSpec(s *sim.Simulation, name string, staticACs int, phases []Phase, result func(PhasedResult)) pbs.JobSpec {
	var total time.Duration
	for _, ph := range phases {
		total += ph.Compute
	}
	return pbs.JobSpec{
		Name:     name,
		Owner:    "dynamic",
		Nodes:    1,
		PPN:      2,
		ACPN:     staticACs,
		Walltime: 2*total + time.Second,
		Script:   PhasedApp(s, phases, result),
	}
}
