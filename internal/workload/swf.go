package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// ParseSWF reads a trace in the Standard Workload Format of the
// Parallel Workloads Archive (one job per line, 18 whitespace-
// separated fields, ';' comment lines) and converts it into trace
// entries submittable to the simulated cluster. Processor counts are
// folded onto nodes of coresPerNode cores; missing fields (-1) fall
// back to sensible defaults. This lets the batch system be driven by
// real production traces in addition to synthetic workloads.
func ParseSWF(r io.Reader, coresPerNode int) ([]TraceEntry, error) {
	if coresPerNode <= 0 {
		return nil, fmt.Errorf("workload: ParseSWF with coresPerNode %d", coresPerNode)
	}
	var out []TraceEntry
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 11 {
			return nil, fmt.Errorf("workload: swf line %d: %d fields, want >= 11", lineNo, len(fields))
		}
		get := func(i int) (int64, error) {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return 0, fmt.Errorf("workload: swf line %d field %d: %w", lineNo, i+1, err)
			}
			return v, nil
		}
		jobNum, err := get(0)
		if err != nil {
			return nil, err
		}
		submit, err := get(1)
		if err != nil {
			return nil, err
		}
		runSec, err := get(3)
		if err != nil {
			return nil, err
		}
		procs, err := get(4)
		if err != nil {
			return nil, err
		}
		if procs <= 0 {
			if procs, err = get(7); err != nil { // requested processors
				return nil, err
			}
		}
		reqSec, err := get(8)
		if err != nil {
			return nil, err
		}
		uid := int64(-1)
		if len(fields) > 11 {
			uid, _ = strconv.ParseInt(fields[11], 10, 64)
		}

		if runSec < 0 {
			runSec = 0
		}
		if procs <= 0 {
			procs = 1
		}
		if reqSec <= 0 {
			reqSec = runSec
		}
		nodes := int((procs + int64(coresPerNode) - 1) / int64(coresPerNode))
		if nodes < 1 {
			nodes = 1
		}
		ppn := int((procs + int64(nodes) - 1) / int64(nodes))
		owner := "unknown"
		if uid >= 0 {
			owner = fmt.Sprintf("user%d", uid)
		}
		out = append(out, TraceEntry{
			At:       time.Duration(submit) * time.Second,
			Name:     fmt.Sprintf("swf-%d", jobNum),
			Owner:    owner,
			Nodes:    nodes,
			PPN:      ppn,
			Runtime:  time.Duration(runSec) * time.Second,
			Walltime: time.Duration(reqSec) * time.Second,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: swf scan: %w", err)
	}
	return out, nil
}

// ScaleTrace compresses a trace's time axis by factor (e.g. 0.001
// turns hours of production trace into seconds of simulation),
// scaling submit offsets, runtimes, and walltime estimates alike.
func ScaleTrace(entries []TraceEntry, factor float64) []TraceEntry {
	out := make([]TraceEntry, len(entries))
	for i, e := range entries {
		e.At = time.Duration(float64(e.At) * factor)
		e.Runtime = time.Duration(float64(e.Runtime) * factor)
		e.Walltime = time.Duration(float64(e.Walltime) * factor)
		out[i] = e
	}
	return out
}
