package workload

import (
	"strings"
	"testing"
	"time"
)

const sampleSWF = `; SWF header comment
; MaxNodes: 8
  1    0   5   100   16  -1 -1   16   200 -1 1  3 1 -1 1 1 -1 -1
  2   60  -1    30    4  -1 -1    4    -1 -1 1  7 1 -1 1 1 -1 -1
  3  120   0    -1   -1  -1 -1    2    50 -1 0 -1 1 -1 1 1 -1 -1
`

func TestParseSWF(t *testing.T) {
	entries, err := ParseSWF(strings.NewReader(sampleSWF), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}

	e := entries[0]
	if e.Name != "swf-1" || e.At != 0 || e.Runtime != 100*time.Second || e.Walltime != 200*time.Second {
		t.Errorf("entry 0 = %+v", e)
	}
	// 16 processors on 8-core nodes → 2 nodes × 8 cores.
	if e.Nodes != 2 || e.PPN != 8 {
		t.Errorf("entry 0 shape = %d×%d", e.Nodes, e.PPN)
	}
	if e.Owner != "user3" {
		t.Errorf("entry 0 owner = %q", e.Owner)
	}

	e = entries[1]
	if e.At != 60*time.Second || e.Nodes != 1 || e.PPN != 4 {
		t.Errorf("entry 1 = %+v", e)
	}
	// Missing requested time falls back to runtime.
	if e.Walltime != 30*time.Second {
		t.Errorf("entry 1 walltime = %v", e.Walltime)
	}

	e = entries[2]
	// Missing allocated processors falls back to requested (2);
	// missing runtime clamps to zero; missing uid → unknown.
	if e.Nodes != 1 || e.PPN != 2 || e.Runtime != 0 || e.Owner != "unknown" {
		t.Errorf("entry 2 = %+v", e)
	}
}

func TestParseSWFErrors(t *testing.T) {
	if _, err := ParseSWF(strings.NewReader("1 2 3"), 8); err == nil {
		t.Error("short line should fail")
	}
	if _, err := ParseSWF(strings.NewReader("a b c d e f g h i j k"), 8); err == nil {
		t.Error("non-numeric fields should fail")
	}
	if _, err := ParseSWF(strings.NewReader(""), 0); err == nil {
		t.Error("bad coresPerNode should fail")
	}
	if got, err := ParseSWF(strings.NewReader("; only comments\n\n"), 8); err != nil || len(got) != 0 {
		t.Errorf("comment-only trace: %v %v", got, err)
	}
}

func TestScaleTrace(t *testing.T) {
	in := []TraceEntry{{At: 10 * time.Second, Runtime: 100 * time.Second, Walltime: 200 * time.Second}}
	out := ScaleTrace(in, 0.01)
	if out[0].At != 100*time.Millisecond || out[0].Runtime != time.Second || out[0].Walltime != 2*time.Second {
		t.Fatalf("scaled = %+v", out[0])
	}
	// Original untouched.
	if in[0].At != 10*time.Second {
		t.Fatal("ScaleTrace mutated its input")
	}
}

func TestSWFTraceReplays(t *testing.T) {
	entries, err := ParseSWF(strings.NewReader(sampleSWF), 8)
	if err != nil {
		t.Fatal(err)
	}
	scaled := ScaleTrace(entries, 0.001) // milliseconds instead of seconds
	for _, e := range scaled {
		if e.Runtime > time.Second {
			t.Fatalf("scaling failed: %+v", e)
		}
	}
}
