package workload

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Source is an open-loop submission stream: the interface between a
// workload (synthetic arrival process or recorded trace) and the
// resident service instance (internal/service). Next returns the next
// entry — its At field is the absolute virtual submission offset from
// stream start — and false once the stream is exhausted. Sources are
// pull-based and single-consumer: the service's admission pipeline is
// the only caller.
type Source interface {
	Next() (TraceEntry, bool)
}

// ArrivalProcess selects how interarrival gaps are generated.
type ArrivalProcess string

const (
	// ArrivalPoisson draws exponential gaps: the memoryless open-loop
	// load model of the paper's Figure 8 axis.
	ArrivalPoisson ArrivalProcess = "poisson"
	// ArrivalUniform draws gaps uniformly in [0, 2/rate): the same
	// mean rate with a bounded burst factor.
	ArrivalUniform ArrivalProcess = "uniform"
	// ArrivalBurst emits back-to-back groups of BurstLen jobs at
	// BurstFactor times the mean rate, idling between groups so the
	// long-run rate still matches Rate.
	ArrivalBurst ArrivalProcess = "burst"
)

// ParseArrivalProcess maps a CLI flag value to an ArrivalProcess.
func ParseArrivalProcess(s string) (ArrivalProcess, error) {
	switch s {
	case "", string(ArrivalPoisson):
		return ArrivalPoisson, nil
	case string(ArrivalUniform):
		return ArrivalUniform, nil
	case string(ArrivalBurst):
		return ArrivalBurst, nil
	}
	return "", fmt.Errorf("workload: unknown arrival process %q (want poisson, uniform, or burst)", s)
}

// ArrivalConfig parameterizes an open-loop arrival stream.
type ArrivalConfig struct {
	Process ArrivalProcess // ArrivalPoisson when empty
	// Rate is the mean submission rate in jobs per virtual second;
	// tunable up to millions of jobs per hour (Rate = jobs/3600).
	Rate float64
	Seed uint64
	// Classes is the job-shape mix (ServeClasses() when nil). Shapes
	// come from a seeded stream independent of the gap stream, so
	// changing Rate or Process never reshuffles which jobs arrive.
	Classes []Class
	// MaxJobs caps how many entries the stream yields (0 = unbounded:
	// the consumer bounds the run by virtual horizon instead).
	MaxJobs int
	// Horizon stops the stream at this virtual offset (0 = none).
	Horizon time.Duration
	// Burst shape for ArrivalBurst (defaults: 16 jobs at 8x rate).
	BurstLen    int
	BurstFactor float64
}

// ServeClasses is the default job mix of the online service mode:
// mostly small batch jobs, with a dynamic-request class that keeps
// the pbs.dyn_latency SLO instruments carrying signal.
func ServeClasses() []Class {
	return []Class{
		{Name: "serial", Weight: 5, Nodes: 1, PPN: 1, MinRun: 200 * time.Millisecond, MaxRun: 1200 * time.Millisecond},
		{Name: "node", Weight: 2, Nodes: 1, PPN: 8, MinRun: 300 * time.Millisecond, MaxRun: 1500 * time.Millisecond},
		{Name: "dyn", Weight: 1, Nodes: 1, PPN: 2, MinRun: 400 * time.Millisecond, MaxRun: 1600 * time.Millisecond,
			DynACs: 1, DynHold: 200 * time.Millisecond},
	}
}

// Arrivals is a deterministic open-loop arrival stream implementing
// Source. Two independent RNG streams are split from the seed: job
// shapes (class pick, runtime) and interarrival gaps, so two streams
// with the same seed and classes emit the same k-th job no matter how
// their rates differ.
type Arrivals struct {
	cfg     ArrivalConfig
	shape   *sim.RNG
	gaps    *sim.RNG
	classes []Class
	total   int
	at      time.Duration
	n       int
	inBurst int // jobs left in the current burst (ArrivalBurst)
}

// NewArrivals builds the stream. Rate must be positive.
func NewArrivals(cfg ArrivalConfig) (*Arrivals, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("workload: arrival rate %v jobs/s", cfg.Rate)
	}
	if cfg.Process == "" {
		cfg.Process = ArrivalPoisson
	}
	if cfg.BurstLen <= 0 {
		cfg.BurstLen = 16
	}
	if cfg.BurstFactor <= 1 {
		cfg.BurstFactor = 8
	}
	classes := cfg.Classes
	if classes == nil {
		classes = ServeClasses()
	}
	total := 0
	for _, c := range classes {
		total += c.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("workload: arrival classes carry no weight")
	}
	shape, gaps := splitStreams(cfg.Seed)
	a := &Arrivals{cfg: cfg, shape: shape, gaps: gaps, classes: classes, total: total}
	a.inBurst = cfg.BurstLen
	return a, nil
}

// Next yields the next arrival. The returned entry's At is absolute
// virtual time from stream start.
func (a *Arrivals) Next() (TraceEntry, bool) {
	if a.cfg.MaxJobs > 0 && a.n >= a.cfg.MaxJobs {
		return TraceEntry{}, false
	}
	a.at += a.gap()
	if a.cfg.Horizon > 0 && a.at > a.cfg.Horizon {
		return TraceEntry{}, false
	}
	a.n++
	cls, run := drawShape(a.shape, a.classes, a.total)
	wall := cls.Walltime
	if wall == 0 {
		wall = cls.MaxRun
	}
	return TraceEntry{
		At:       a.at,
		Name:     fmt.Sprintf("%s-%d", cls.Name, a.n),
		Owner:    cls.Name,
		Nodes:    cls.Nodes,
		PPN:      cls.PPN,
		ACPN:     cls.ACPN,
		Runtime:  run,
		Walltime: wall,
		DynACs:   cls.DynACs,
		DynHold:  cls.DynHold,
	}, true
}

// Emitted reports how many entries the stream has yielded so far.
func (a *Arrivals) Emitted() int { return a.n }

// gap draws the next interarrival gap from the gap stream.
func (a *Arrivals) gap() time.Duration {
	mean := 1 / a.cfg.Rate // seconds
	switch a.cfg.Process {
	case ArrivalUniform:
		return time.Duration(a.gaps.Float64() * 2 * mean * float64(time.Second))
	case ArrivalBurst:
		// Within a burst: gaps at BurstFactor times the rate. Between
		// bursts: the idle remainder of the burst period, so the
		// long-run mean gap is still 1/Rate.
		if a.inBurst > 0 {
			a.inBurst--
			return time.Duration(mean / a.cfg.BurstFactor * float64(time.Second))
		}
		a.inBurst = a.cfg.BurstLen - 1
		idle := float64(a.cfg.BurstLen) * mean * (1 - 1/a.cfg.BurstFactor)
		return time.Duration((mean/a.cfg.BurstFactor + idle) * float64(time.Second))
	default: // ArrivalPoisson
		return time.Duration(a.gaps.Exp(mean) * float64(time.Second))
	}
}

// TraceSource adapts a recorded trace (Load, ParseSWF) into a Source:
// replay-from-SWF behind the same interface as the synthetic arrival
// processes.
type TraceSource struct {
	entries []TraceEntry
	i       int
}

// NewTraceSource wraps entries; they must already be in At order.
func NewTraceSource(entries []TraceEntry) *TraceSource {
	return &TraceSource{entries: entries}
}

// Next yields the next recorded entry.
func (t *TraceSource) Next() (TraceEntry, bool) {
	if t.i >= len(t.entries) {
		return TraceEntry{}, false
	}
	e := t.entries[t.i]
	t.i++
	return e, true
}
