package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

// Changing the submission rate must not reshuffle job shapes: the k-th
// job of a seed is identical at every rate, because shapes come from a
// stream independent of the gap stream.
func TestArrivalsShapesPinnedAcrossRates(t *testing.T) {
	draw := func(rate float64) []TraceEntry {
		a, err := NewArrivals(ArrivalConfig{Rate: rate, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]TraceEntry, 0, 200)
		for i := 0; i < 200; i++ {
			e, ok := a.Next()
			if !ok {
				t.Fatalf("stream dried at %d", i)
			}
			out = append(out, e)
		}
		return out
	}
	slow, fast := draw(10), draw(1000)
	for i := range slow {
		s, f := slow[i], fast[i]
		if s.Name != f.Name || s.Nodes != f.Nodes || s.PPN != f.PPN ||
			s.Runtime != f.Runtime || s.DynACs != f.DynACs || s.DynHold != f.DynHold {
			t.Fatalf("job %d reshuffled across rates:\n  rate=10:   %+v\n  rate=1000: %+v", i, s, f)
		}
		if s.At <= f.At {
			t.Fatalf("job %d: slow stream not slower (%v vs %v)", i, s.At, f.At)
		}
	}
}

// The same holds across arrival processes: poisson, uniform, and burst
// streams with one seed emit the same job sequence, only spaced
// differently.
func TestArrivalsShapesPinnedAcrossProcesses(t *testing.T) {
	draw := func(p ArrivalProcess) []TraceEntry {
		a, err := NewArrivals(ArrivalConfig{Process: p, Rate: 100, Seed: 5, MaxJobs: 150})
		if err != nil {
			t.Fatal(err)
		}
		var out []TraceEntry
		for {
			e, ok := a.Next()
			if !ok {
				break
			}
			out = append(out, e)
		}
		return out
	}
	pois, unif, burst := draw(ArrivalPoisson), draw(ArrivalUniform), draw(ArrivalBurst)
	if len(pois) != 150 || len(unif) != 150 || len(burst) != 150 {
		t.Fatalf("lengths %d/%d/%d", len(pois), len(unif), len(burst))
	}
	for i := range pois {
		if pois[i].Name != unif[i].Name || pois[i].Runtime != unif[i].Runtime ||
			pois[i].Name != burst[i].Name || pois[i].Runtime != burst[i].Runtime {
			t.Fatalf("job %d differs across processes", i)
		}
	}
}

// Generator shares the same split-stream discipline: shapes are pinned
// when only MeanInterarrival changes.
func TestGeneratorShapesPinnedAcrossRates(t *testing.T) {
	s := sim.New()
	g1 := NewGenerator(s, 7, 10*time.Millisecond, DefaultClasses())
	g2 := NewGenerator(s, 7, 500*time.Millisecond, DefaultClasses())
	for i := 0; i < 100; i++ {
		a, _ := g1.Next()
		b, _ := g2.Next()
		if a.Name != b.Name || a.Nodes != b.Nodes || a.PPN != b.PPN || a.ACPN != b.ACPN || a.Walltime != b.Walltime {
			t.Fatalf("job %d reshuffled: %+v vs %+v", i, a, b)
		}
	}
}

// Every arrival process should hold its configured long-run rate.
func TestArrivalsMeanRate(t *testing.T) {
	for _, p := range []ArrivalProcess{ArrivalPoisson, ArrivalUniform, ArrivalBurst} {
		a, err := NewArrivals(ArrivalConfig{Process: p, Rate: 200, Seed: 3, MaxJobs: 4000})
		if err != nil {
			t.Fatal(err)
		}
		var last TraceEntry
		for {
			e, ok := a.Next()
			if !ok {
				break
			}
			last = e
		}
		got := float64(a.Emitted()) / last.At.Seconds()
		if math.Abs(got-200)/200 > 0.10 {
			t.Errorf("%s: long-run rate %.1f jobs/s, want ~200", p, got)
		}
	}
}

func TestArrivalsHorizonAndMaxJobs(t *testing.T) {
	a, err := NewArrivals(ArrivalConfig{Rate: 100, Seed: 1, Horizon: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		e, ok := a.Next()
		if !ok {
			break
		}
		if e.At > time.Second {
			t.Fatalf("entry past horizon: %v", e.At)
		}
		n++
	}
	if n == 0 || n > 200 {
		t.Fatalf("horizon-bounded stream yielded %d jobs", n)
	}
	if _, ok := a.Next(); ok {
		t.Fatal("stream restarted after drying")
	}
}

func TestTraceSource(t *testing.T) {
	entries := []TraceEntry{
		{At: time.Millisecond, Name: "a"},
		{At: 2 * time.Millisecond, Name: "b"},
	}
	src := NewTraceSource(entries)
	var got []string
	for {
		e, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, e.Name)
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("replayed %v", got)
	}
}

func TestParseArrivalProcess(t *testing.T) {
	if p, err := ParseArrivalProcess(""); err != nil || p != ArrivalPoisson {
		t.Fatalf("empty: %v %v", p, err)
	}
	if p, err := ParseArrivalProcess("burst"); err != nil || p != ArrivalBurst {
		t.Fatalf("burst: %v %v", p, err)
	}
	if _, err := ParseArrivalProcess("nope"); err == nil {
		t.Fatal("want error for unknown process")
	}
}
