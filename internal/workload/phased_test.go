package workload_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/pbs"
	"repro/internal/workload"
)

func phasedParams() cluster.Params {
	p := cluster.Default()
	p.ComputeNodes = 1
	p.Accelerators = 4
	p.Maui.CycleInterval = 50 * time.Millisecond
	p.Maui.CycleOverhead = 5 * time.Millisecond
	p.Maui.PerJobCost = 2 * time.Millisecond
	p.Maui.DynPerReqCost = 2 * time.Millisecond
	p.MPI.ProcStartup = 10 * time.Millisecond
	p.DAC.DaemonLaunch = 5 * time.Millisecond
	p.DAC.DaemonInit = 5 * time.Millisecond
	return p
}

func TestPhasedAppGrowsAndShrinks(t *testing.T) {
	var res workload.PhasedResult
	var got bool
	var mu sync.Mutex
	err := cluster.Run(phasedParams(), func(c *cluster.Cluster, client *pbs.Client) {
		phases := []workload.Phase{
			{ExtraACs: 0, Compute: 30 * time.Millisecond},
			{ExtraACs: 2, Compute: 50 * time.Millisecond, Stretch: 20 * time.Millisecond},
			{ExtraACs: 0, Compute: 30 * time.Millisecond},
		}
		id, err := client.Submit(workload.DynamicSpec(c.Sim, "phased", 1, phases, func(r workload.PhasedResult) {
			mu.Lock()
			res = r
			got = true
			mu.Unlock()
		}))
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		info, err := client.Wait(id)
		if err != nil {
			t.Errorf("Wait: %v", err)
			return
		}
		if len(info.DynRecords) != 1 || info.DynRecords[0].State != pbs.DynGranted {
			t.Errorf("records = %+v", info.DynRecords)
		}
		if info.DynRecords[0].FreedAt == 0 {
			t.Error("phase did not free its dynamic set")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !got {
		t.Fatal("result callback never fired")
	}
	if res.Rejections != 0 {
		t.Errorf("rejections = %d", res.Rejections)
	}
	if res.Elapsed < 110*time.Millisecond {
		t.Errorf("elapsed = %v, below compute sum", res.Elapsed)
	}
}

func TestPhasedAppStretchesOnRejection(t *testing.T) {
	p := phasedParams()
	p.Accelerators = 1 // the static accelerator only; growth impossible
	var res workload.PhasedResult
	var mu sync.Mutex
	err := cluster.Run(p, func(c *cluster.Cluster, client *pbs.Client) {
		phases := []workload.Phase{
			{ExtraACs: 2, Compute: 40 * time.Millisecond, Stretch: 30 * time.Millisecond},
		}
		id, err := client.Submit(workload.DynamicSpec(c.Sim, "starved", 1, phases, func(r workload.PhasedResult) {
			mu.Lock()
			res = r
			mu.Unlock()
		}))
		if err != nil {
			t.Errorf("Submit: %v", err)
			return
		}
		client.Wait(id)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if res.Rejections != 1 {
		t.Fatalf("rejections = %d, want 1", res.Rejections)
	}
	// 40ms base + 2 missing * 30ms stretch = 100ms of compute.
	if res.Elapsed < 100*time.Millisecond {
		t.Errorf("elapsed = %v; rejection did not stretch the phase", res.Elapsed)
	}
}
