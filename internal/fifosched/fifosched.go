// Package fifosched implements TORQUE's built-in basic FIFO scheduler
// (pbs_sched), which the paper mentions as the alternative to Maui
// (Section III-A) and which demonstrates its portability claim: "Any
// scheduler capable of dynamic scheduling and allocation can be
// integrated with our version of TORQUE" (Section V).
//
// Policy: strict first-come first-served over submission order — the
// queue head blocks everything behind it; no backfill, no fairshare,
// no priorities. Dynamic requests are serviced in arrival order
// interleaved with the static queue.
package fifosched

import (
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/pbs"
	"repro/internal/sim"
)

// Params is the FIFO scheduler's cost model.
type Params struct {
	Endpoint      string
	CycleInterval time.Duration
	CycleOverhead time.Duration
	PerJobCost    time.Duration
}

// DefaultParams mirrors the Maui testbed costs so comparisons isolate
// policy, not speed.
func DefaultParams() Params {
	return Params{
		Endpoint:      "pbs_sched",
		CycleInterval: time.Second,
		CycleOverhead: 150 * time.Millisecond,
		PerJobCost:    25 * time.Millisecond,
	}
}

// Scheduler is the pbs_sched daemon.
type Scheduler struct {
	net      *netsim.Network
	sim      *sim.Simulation
	ep       *netsim.Endpoint
	serverEP string
	params   Params

	mu      sync.Mutex
	nextReq int
	cycles  int64
	placed  int64
}

// New creates a FIFO scheduler speaking to the given server.
func New(net *netsim.Network, serverEP string, params Params) *Scheduler {
	if params.Endpoint == "" {
		params.Endpoint = "pbs_sched"
	}
	return &Scheduler{
		net:      net,
		sim:      net.Sim(),
		ep:       net.Endpoint(params.Endpoint),
		serverEP: serverEP,
		params:   params,
	}
}

// Endpoint returns the scheduler's fabric name.
func (sc *Scheduler) Endpoint() string { return sc.ep.Name() }

// Cycles reports completed scheduling iterations.
func (sc *Scheduler) Cycles() int64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.cycles
}

// JobsPlaced reports jobs started by this scheduler.
func (sc *Scheduler) JobsPlaced() int64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.placed
}

// Start spawns the scheduler actor.
func (sc *Scheduler) Start() {
	sc.sim.Go("pbs_sched", func() {
		for {
			m, err := sc.ep.RecvTimeout(sc.params.CycleInterval)
			m.Release()
			if err != nil && !errors.Is(err, netsim.ErrTimeout) {
				return
			}
			for sc.ep.Pending() > 0 {
				m, err := sc.ep.Recv()
				m.Release()
				if err != nil {
					return
				}
			}
			if !sc.runCycle() {
				return
			}
		}
	})
}

func (sc *Scheduler) fetch() (*pbs.SchedInfoResp, error) {
	sc.mu.Lock()
	sc.nextReq++
	id := sc.nextReq
	sc.mu.Unlock()
	if err := sc.ep.Send(sc.serverEP, "pbs", pbs.SchedInfoReq{ReqID: id, ReplyTo: sc.ep.Name()}, 0); err != nil {
		return nil, err
	}
	m, err := sc.ep.RecvMatch(func(m *netsim.Message) bool {
		r, ok := m.Payload.(*pbs.SchedInfoResp)
		return ok && r.ReqID == id
	})
	if err != nil {
		return nil, err
	}
	resp := m.Payload.(*pbs.SchedInfoResp)
	m.Release()
	return resp, nil
}

// free tracks the cycle-local pool.
type free struct {
	acs    []string
	cores  map[string]int
	jobs   map[string][]string
	cnames []string
}

func (sc *Scheduler) runCycle() bool {
	info, err := sc.fetch()
	if err != nil {
		return false
	}
	// The pooled snapshot (and everything aliasing it: pool.jobs,
	// item pointers) stays valid until released at end of cycle.
	defer info.Release()
	sc.sim.Sleep(sc.params.CycleOverhead)
	sc.mu.Lock()
	sc.cycles++
	sc.mu.Unlock()

	pool := free{cores: make(map[string]int), jobs: make(map[string][]string)}
	for _, n := range info.Nodes {
		if n.Down {
			continue
		}
		switch n.Type {
		case pbs.AcceleratorNode:
			if n.Free() {
				pool.acs = append(pool.acs, n.Name)
			}
		case pbs.ComputeNode:
			pool.cores[n.Name] = n.FreeCores()
			pool.jobs[n.Name] = n.Jobs
			pool.cnames = append(pool.cnames, n.Name)
		}
	}

	// One stream, strictly by arrival.
	type item struct {
		at  time.Duration
		job *pbs.JobInfo
		dyn *pbs.SchedDynView
	}
	var items []item
	for i := range info.Queued {
		items = append(items, item{at: info.Queued[i].SubmittedAt, job: &info.Queued[i]})
	}
	for i := range info.Dyn {
		items = append(items, item{at: info.Dyn[i].ArrivedAt, dyn: &info.Dyn[i]})
	}
	sort.SliceStable(items, func(a, b int) bool { return items[a].at < items[b].at })

	blocked := false
	for _, it := range items {
		sc.sim.Sleep(sc.params.PerJobCost)
		if it.dyn != nil {
			// Dynamic requests are answered even when the static head
			// blocks: rejection is immediate, never queued-for-later
			// (Section III-E).
			hosts := sc.allocDyn(*it.dyn, &pool)
			sc.send(pbs.DynAllocCmd{ReqID: it.dyn.ReqID, Hosts: hosts})
			continue
		}
		if blocked {
			continue // strict FIFO: nothing overtakes the head
		}
		hosts, acc, ok := sc.place(it.job.Spec, it.job.ID, &pool)
		if !ok {
			blocked = true
			continue
		}
		sc.mu.Lock()
		sc.placed++
		sc.mu.Unlock()
		sc.send(pbs.AllocCmd{JobID: it.job.ID, Hosts: hosts, AccHosts: acc})
	}
	return true
}

func (sc *Scheduler) allocDyn(r pbs.SchedDynView, pool *free) []string {
	if r.Kind == pbs.KindCompute {
		var chosen []string
		for _, cn := range pool.cnames {
			if pool.cores[cn] < r.PPN || r.PPN <= 0 || hasJob(pool.jobs[cn], r.JobID) {
				continue
			}
			chosen = append(chosen, cn)
			if len(chosen) == r.Count {
				break
			}
		}
		if len(chosen) < r.Count {
			return nil
		}
		for _, cn := range chosen {
			pool.cores[cn] -= r.PPN
			pool.jobs[cn] = append(pool.jobs[cn], r.JobID)
		}
		return chosen
	}
	if r.Count > len(pool.acs) {
		return nil
	}
	out := append([]string(nil), pool.acs[:r.Count]...)
	pool.acs = pool.acs[r.Count:]
	return out
}

func (sc *Scheduler) place(spec pbs.JobSpec, jobID string, pool *free) ([]string, map[string][]string, bool) {
	var chosen []string
	for _, cn := range pool.cnames {
		if pool.cores[cn] >= spec.PPN && (spec.PPN > 0 || pool.cores[cn] > 0) {
			chosen = append(chosen, cn)
			if len(chosen) == spec.Nodes {
				break
			}
		}
	}
	if len(chosen) < spec.Nodes {
		return nil, nil, false
	}
	need := spec.Nodes * spec.ACPN
	if need > len(pool.acs) {
		return nil, nil, false
	}
	acc := make(map[string][]string, spec.Nodes)
	idx := 0
	for _, cn := range chosen {
		if spec.ACPN > 0 {
			acc[cn] = append([]string(nil), pool.acs[idx:idx+spec.ACPN]...)
			idx += spec.ACPN
		}
		pool.cores[cn] -= spec.PPN
		pool.jobs[cn] = append(pool.jobs[cn], jobID)
	}
	pool.acs = pool.acs[need:]
	return chosen, acc, true
}

func hasJob(jobs []string, id string) bool {
	for _, j := range jobs {
		if j == id {
			return true
		}
	}
	return false
}

func (sc *Scheduler) send(payload any) {
	_ = sc.ep.Send(sc.serverEP, "pbs", payload, 0)
}
