package fifosched_test

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dac"
	"repro/internal/fifosched"
	"repro/internal/netsim"
	"repro/internal/pbs"
)

// fifoParams builds a fast test cluster running pbs_sched instead of
// Maui.
func fifoParams(cns, acs int) (cluster.Params, **fifosched.Scheduler) {
	p := cluster.Default()
	p.ComputeNodes = cns
	p.Accelerators = acs
	p.MPI.ProcStartup = 8 * time.Millisecond
	p.MPI.ConnectOverhead = time.Millisecond
	p.MPI.MergeOverhead = time.Millisecond
	p.MPI.SpawnOverhead = 2 * time.Millisecond
	p.DAC.DaemonLaunch = 5 * time.Millisecond
	p.DAC.DaemonInit = 5 * time.Millisecond
	p.Mom.DynJoinCost = 3 * time.Millisecond
	p.Server.Processing = time.Millisecond
	holder := new(*fifosched.Scheduler)
	p.MakeScheduler = func(net *netsim.Network, serverEP string) cluster.SchedulerDaemon {
		fp := fifosched.DefaultParams()
		fp.CycleInterval = 50 * time.Millisecond
		fp.CycleOverhead = 5 * time.Millisecond
		fp.PerJobCost = 2 * time.Millisecond
		sc := fifosched.New(net, serverEP, fp)
		*holder = sc
		return sc
	}
	return p, holder
}

func TestFIFOSchedulerRunsJobs(t *testing.T) {
	p, holder := fifoParams(2, 2)
	err := cluster.Run(p, func(c *cluster.Cluster, client *pbs.Client) {
		if c.Sched != nil {
			t.Error("Maui should not be active with a custom scheduler")
		}
		var ids []string
		for i := 0; i < 4; i++ {
			id, err := client.Submit(pbs.JobSpec{
				Name: "f", Owner: "u", Nodes: 1, PPN: 4, Walltime: time.Second,
				Script: func(env *pbs.JobEnv) { c.Sim.Sleep(20 * time.Millisecond) },
			})
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			ids = append(ids, id)
		}
		for _, id := range ids {
			info, err := client.Wait(id)
			if err != nil || info.State != pbs.JobCompleted {
				t.Fatalf("job %s: %v %v", id, info.State, err)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if (*holder).JobsPlaced() != 4 {
		t.Errorf("placed = %d", (*holder).JobsPlaced())
	}
	if (*holder).Cycles() == 0 {
		t.Error("no cycles recorded")
	}
}

func TestFIFOStrictOrdering(t *testing.T) {
	// A blocked wide head must stall later narrow jobs (no backfill).
	p, _ := fifoParams(1, 0)
	err := cluster.Run(p, func(c *cluster.Cluster, client *pbs.Client) {
		a, _ := client.Submit(pbs.JobSpec{Name: "a", Owner: "u", Nodes: 1, PPN: 6, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) { c.Sim.Sleep(150 * time.Millisecond) }})
		b, _ := client.Submit(pbs.JobSpec{Name: "b", Owner: "u", Nodes: 1, PPN: 8, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) { c.Sim.Sleep(30 * time.Millisecond) }})
		cjob, _ := client.Submit(pbs.JobSpec{Name: "c", Owner: "u", Nodes: 1, PPN: 2, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) { c.Sim.Sleep(10 * time.Millisecond) }})
		client.Wait(a)
		bi, _ := client.Wait(b)
		ci, _ := client.Wait(cjob)
		if ci.StartedAt < bi.StartedAt {
			t.Errorf("FIFO violated: c started %v before b %v", ci.StartedAt, bi.StartedAt)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestFIFODynamicAllocationWorks proves the paper's portability
// claim: the extended TORQUE's dynamic path works under a completely
// different scheduler.
func TestFIFODynamicAllocationWorks(t *testing.T) {
	p, _ := fifoParams(1, 4)
	err := cluster.Run(p, func(c *cluster.Cluster, client *pbs.Client) {
		id, err := client.Submit(pbs.JobSpec{
			Name: "dyn", Owner: "u", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				ac, _, err := dac.Init(env)
				if err != nil {
					t.Errorf("Init: %v", err)
					return
				}
				defer ac.Finalize()
				clientID, hs, err := ac.Get(2)
				if err != nil {
					t.Errorf("Get under pbs_sched: %v", err)
					return
				}
				if len(hs) != 2 {
					t.Errorf("granted %d", len(hs))
					return
				}
				if _, err := ac.MemAlloc(hs[0], 64); err != nil {
					t.Errorf("MemAlloc: %v", err)
				}
				if err := ac.Free(clientID); err != nil {
					t.Errorf("Free: %v", err)
				}
				// Malleable compute-node growth also works.
				cl := pbs.NewClient(c.Net, env.Host, env.ServerEP)
				if _, err := cl.DynGetNodes(env.JobID, env.Host, 1, 1); err == nil {
					t.Error("DynGetNodes should fail with 1 CN (own node excluded)")
				}
			},
		})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		info, err := client.Wait(id)
		if err != nil || info.State != pbs.JobCompleted {
			t.Fatalf("state %v err %v", info.State, err)
		}
		if len(info.DynRecords) != 2 {
			t.Fatalf("records = %+v", info.DynRecords)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFIFODynRejectionImmediate(t *testing.T) {
	p, _ := fifoParams(1, 1)
	err := cluster.Run(p, func(c *cluster.Cluster, client *pbs.Client) {
		id, _ := client.Submit(pbs.JobSpec{
			Name: "rej", Owner: "u", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				ac, _, err := dac.Init(env)
				if err != nil {
					return
				}
				defer ac.Finalize()
				if _, _, err := ac.Get(3); err == nil {
					t.Error("expected rejection (no free accelerators)")
				}
			},
		})
		client.Wait(id)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
