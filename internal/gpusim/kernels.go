package gpusim

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Float64 device-buffer helpers shared by the built-in kernels and by
// example applications.

// EncodeFloat64s serializes a float64 slice into a byte buffer
// suitable for CopyIn.
func EncodeFloat64s(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// DecodeFloat64s deserializes a byte buffer written by EncodeFloat64s.
func DecodeFloat64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func f64at(b []byte, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
}

func setF64(b []byte, i int, v float64) {
	binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
}

func argPtr(ctx *KernelCtx, i int) (Ptr, error) {
	if i >= len(ctx.Args) {
		return 0, fmt.Errorf("missing arg %d", i)
	}
	p, ok := ctx.Args[i].(Ptr)
	if !ok {
		return 0, fmt.Errorf("arg %d is %T, want Ptr", i, ctx.Args[i])
	}
	return p, nil
}

func argInt(ctx *KernelCtx, i int) (int, error) {
	if i >= len(ctx.Args) {
		return 0, fmt.Errorf("missing arg %d", i)
	}
	n, ok := ctx.Args[i].(int)
	if !ok {
		return 0, fmt.Errorf("arg %d is %T, want int", i, ctx.Args[i])
	}
	return n, nil
}

func argF64(ctx *KernelCtx, i int) (float64, error) {
	if i >= len(ctx.Args) {
		return 0, fmt.Errorf("missing arg %d", i)
	}
	v, ok := ctx.Args[i].(float64)
	if !ok {
		return 0, fmt.Errorf("arg %d is %T, want float64", i, ctx.Args[i])
	}
	return v, nil
}

func init() {
	// vecadd(c, a, b, n): c[i] = a[i] + b[i]
	RegisterKernel("vecadd", func(ctx *KernelCtx) (Cost, error) {
		cp, err := argPtr(ctx, 0)
		if err != nil {
			return Cost{}, err
		}
		ap, err := argPtr(ctx, 1)
		if err != nil {
			return Cost{}, err
		}
		bp, err := argPtr(ctx, 2)
		if err != nil {
			return Cost{}, err
		}
		n, err := argInt(ctx, 3)
		if err != nil {
			return Cost{}, err
		}
		cb, err := ctx.Bytes(cp)
		if err != nil {
			return Cost{}, err
		}
		ab, err := ctx.Bytes(ap)
		if err != nil {
			return Cost{}, err
		}
		bb, err := ctx.Bytes(bp)
		if err != nil {
			return Cost{}, err
		}
		for i := 0; i < n; i++ {
			setF64(cb, i, f64at(ab, i)+f64at(bb, i))
		}
		return Cost{FLOPs: float64(n), BytesRW: float64(24 * n)}, nil
	})

	// daxpy(y, x, alpha, n): y[i] += alpha * x[i]
	RegisterKernel("daxpy", func(ctx *KernelCtx) (Cost, error) {
		yp, err := argPtr(ctx, 0)
		if err != nil {
			return Cost{}, err
		}
		xp, err := argPtr(ctx, 1)
		if err != nil {
			return Cost{}, err
		}
		alpha, err := argF64(ctx, 2)
		if err != nil {
			return Cost{}, err
		}
		n, err := argInt(ctx, 3)
		if err != nil {
			return Cost{}, err
		}
		yb, err := ctx.Bytes(yp)
		if err != nil {
			return Cost{}, err
		}
		xb, err := ctx.Bytes(xp)
		if err != nil {
			return Cost{}, err
		}
		for i := 0; i < n; i++ {
			setF64(yb, i, f64at(yb, i)+alpha*f64at(xb, i))
		}
		return Cost{FLOPs: float64(2 * n), BytesRW: float64(24 * n)}, nil
	})

	// dgemm(c, a, b, n): C = A×B for n×n row-major matrices.
	RegisterKernel("dgemm", func(ctx *KernelCtx) (Cost, error) {
		cp, err := argPtr(ctx, 0)
		if err != nil {
			return Cost{}, err
		}
		ap, err := argPtr(ctx, 1)
		if err != nil {
			return Cost{}, err
		}
		bp, err := argPtr(ctx, 2)
		if err != nil {
			return Cost{}, err
		}
		n, err := argInt(ctx, 3)
		if err != nil {
			return Cost{}, err
		}
		cb, err := ctx.Bytes(cp)
		if err != nil {
			return Cost{}, err
		}
		ab, err := ctx.Bytes(ap)
		if err != nil {
			return Cost{}, err
		}
		bb, err := ctx.Bytes(bp)
		if err != nil {
			return Cost{}, err
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				sum := 0.0
				for k := 0; k < n; k++ {
					sum += f64at(ab, i*n+k) * f64at(bb, k*n+j)
				}
				setF64(cb, i*n+j, sum)
			}
		}
		nn := float64(n)
		return Cost{FLOPs: 2 * nn * nn * nn, BytesRW: 8 * 3 * nn * nn}, nil
	})

	// jacobi(out, in, n): one 1-D 3-point stencil sweep with fixed
	// boundaries.
	RegisterKernel("jacobi", func(ctx *KernelCtx) (Cost, error) {
		op, err := argPtr(ctx, 0)
		if err != nil {
			return Cost{}, err
		}
		ip, err := argPtr(ctx, 1)
		if err != nil {
			return Cost{}, err
		}
		n, err := argInt(ctx, 2)
		if err != nil {
			return Cost{}, err
		}
		ob, err := ctx.Bytes(op)
		if err != nil {
			return Cost{}, err
		}
		ib, err := ctx.Bytes(ip)
		if err != nil {
			return Cost{}, err
		}
		setF64(ob, 0, f64at(ib, 0))
		setF64(ob, n-1, f64at(ib, n-1))
		for i := 1; i < n-1; i++ {
			setF64(ob, i, (f64at(ib, i-1)+f64at(ib, i)+f64at(ib, i+1))/3)
		}
		return Cost{FLOPs: float64(3 * n), BytesRW: float64(16 * n)}, nil
	})

	// reduce_sum(out, in, n): out[0] = sum(in[0..n)).
	RegisterKernel("reduce_sum", func(ctx *KernelCtx) (Cost, error) {
		op, err := argPtr(ctx, 0)
		if err != nil {
			return Cost{}, err
		}
		ip, err := argPtr(ctx, 1)
		if err != nil {
			return Cost{}, err
		}
		n, err := argInt(ctx, 2)
		if err != nil {
			return Cost{}, err
		}
		ob, err := ctx.Bytes(op)
		if err != nil {
			return Cost{}, err
		}
		ib, err := ctx.Bytes(ip)
		if err != nil {
			return Cost{}, err
		}
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += f64at(ib, i)
		}
		setF64(ob, 0, sum)
		return Cost{FLOPs: float64(n), BytesRW: float64(8*n + 8)}, nil
	})
}
