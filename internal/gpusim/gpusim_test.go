package gpusim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func device(t *testing.T, mem int64) (*sim.Simulation, *Device) {
	t.Helper()
	s := sim.New()
	return s, NewDevice(s, "gpu0", mem, DefaultPerf())
}

func TestMallocFree(t *testing.T) {
	s, d := device(t, 1024)
	err := s.Run(func() {
		p, err := d.Malloc(512)
		if err != nil {
			t.Errorf("Malloc: %v", err)
			return
		}
		if d.MemUsed() != 512 {
			t.Errorf("used = %d", d.MemUsed())
		}
		if err := d.Free(p); err != nil {
			t.Errorf("Free: %v", err)
		}
		if d.MemUsed() != 0 {
			t.Errorf("used after free = %d", d.MemUsed())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMallocOOM(t *testing.T) {
	s, d := device(t, 100)
	err := s.Run(func() {
		if _, err := d.Malloc(101); !errors.Is(err, ErrOutOfMemory) {
			t.Errorf("err = %v", err)
		}
		p, _ := d.Malloc(60)
		if _, err := d.Malloc(60); !errors.Is(err, ErrOutOfMemory) {
			t.Errorf("second alloc err = %v", err)
		}
		d.Free(p)
		if _, err := d.Malloc(100); err != nil {
			t.Errorf("after free: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMallocInvalidSize(t *testing.T) {
	s, d := device(t, 100)
	err := s.Run(func() {
		if _, err := d.Malloc(0); err == nil {
			t.Error("Malloc(0) should fail")
		}
		if _, err := d.Malloc(-1); err == nil {
			t.Error("Malloc(-1) should fail")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestFreeBadPointer(t *testing.T) {
	s, d := device(t, 100)
	err := s.Run(func() {
		if err := d.Free(Ptr(99)); !errors.Is(err, ErrBadPointer) {
			t.Errorf("err = %v", err)
		}
		p, _ := d.Malloc(10)
		d.Free(p)
		if err := d.Free(p); !errors.Is(err, ErrBadPointer) {
			t.Errorf("double free err = %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCopyRoundTrip(t *testing.T) {
	s, d := device(t, 1024)
	err := s.Run(func() {
		p, _ := d.Malloc(16)
		in := []byte{1, 2, 3, 4}
		if err := d.CopyIn(p, 4, in); err != nil {
			t.Errorf("CopyIn: %v", err)
		}
		out, err := d.CopyOut(p, 4, 4)
		if err != nil {
			t.Errorf("CopyOut: %v", err)
		}
		for i := range in {
			if out[i] != in[i] {
				t.Errorf("out[%d] = %d", i, out[i])
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCopyBounds(t *testing.T) {
	s, d := device(t, 1024)
	err := s.Run(func() {
		p, _ := d.Malloc(8)
		if err := d.CopyIn(p, 5, []byte{1, 2, 3, 4}); !errors.Is(err, ErrBadCopy) {
			t.Errorf("err = %v", err)
		}
		if err := d.CopyIn(p, -1, []byte{1}); !errors.Is(err, ErrBadCopy) {
			t.Errorf("err = %v", err)
		}
		if _, err := d.CopyOut(p, 0, 9); !errors.Is(err, ErrBadCopy) {
			t.Errorf("err = %v", err)
		}
		if err := d.CopyIn(Ptr(42), 0, []byte{1}); !errors.Is(err, ErrBadPointer) {
			t.Errorf("err = %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestVecAddKernel(t *testing.T) {
	s, d := device(t, 1<<20)
	err := s.Run(func() {
		const n = 100
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = float64(i)
			b[i] = 2 * float64(i)
		}
		ap, _ := d.Malloc(8 * n)
		bp, _ := d.Malloc(8 * n)
		cp, _ := d.Malloc(8 * n)
		d.CopyIn(ap, 0, EncodeFloat64s(a))
		d.CopyIn(bp, 0, EncodeFloat64s(b))
		if err := d.Launch("vecadd", [3]int{1}, [3]int{n}, cp, ap, bp, n); err != nil {
			t.Errorf("Launch: %v", err)
			return
		}
		raw, _ := d.CopyOut(cp, 0, 8*n)
		c := DecodeFloat64s(raw)
		for i := range c {
			if c[i] != 3*float64(i) {
				t.Errorf("c[%d] = %v, want %v", i, c[i], 3*float64(i))
			}
		}
		if d.KernelsLaunched() != 1 {
			t.Errorf("launched = %d", d.KernelsLaunched())
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDaxpyKernel(t *testing.T) {
	s, d := device(t, 1<<20)
	err := s.Run(func() {
		const n = 10
		x := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
		y := make([]float64, n)
		xp, _ := d.Malloc(8 * n)
		yp, _ := d.Malloc(8 * n)
		d.CopyIn(xp, 0, EncodeFloat64s(x))
		d.CopyIn(yp, 0, EncodeFloat64s(y))
		if err := d.Launch("daxpy", [3]int{1}, [3]int{n}, yp, xp, 2.5, n); err != nil {
			t.Errorf("Launch: %v", err)
			return
		}
		raw, _ := d.CopyOut(yp, 0, 8*n)
		for i, v := range DecodeFloat64s(raw) {
			if v != 2.5 {
				t.Errorf("y[%d] = %v", i, v)
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDgemmKernel(t *testing.T) {
	s, d := device(t, 1<<20)
	err := s.Run(func() {
		// 2x2: A = [[1,2],[3,4]], B = I → C = A.
		a := []float64{1, 2, 3, 4}
		b := []float64{1, 0, 0, 1}
		ap, _ := d.Malloc(32)
		bp, _ := d.Malloc(32)
		cp, _ := d.Malloc(32)
		d.CopyIn(ap, 0, EncodeFloat64s(a))
		d.CopyIn(bp, 0, EncodeFloat64s(b))
		if err := d.Launch("dgemm", [3]int{1}, [3]int{4}, cp, ap, bp, 2); err != nil {
			t.Errorf("Launch: %v", err)
			return
		}
		raw, _ := d.CopyOut(cp, 0, 32)
		c := DecodeFloat64s(raw)
		for i := range a {
			if c[i] != a[i] {
				t.Errorf("c[%d] = %v, want %v", i, c[i], a[i])
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestJacobiKernel(t *testing.T) {
	s, d := device(t, 1<<20)
	err := s.Run(func() {
		in := []float64{0, 3, 6, 9}
		ip, _ := d.Malloc(32)
		op, _ := d.Malloc(32)
		d.CopyIn(ip, 0, EncodeFloat64s(in))
		if err := d.Launch("jacobi", [3]int{1}, [3]int{4}, op, ip, 4); err != nil {
			t.Errorf("Launch: %v", err)
			return
		}
		raw, _ := d.CopyOut(op, 0, 32)
		out := DecodeFloat64s(raw)
		want := []float64{0, 3, 6, 9}
		for i := range want {
			if out[i] != want[i] {
				t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestReduceSumKernel(t *testing.T) {
	s, d := device(t, 1<<20)
	err := s.Run(func() {
		in := []float64{1, 2, 3, 4, 5}
		ip, _ := d.Malloc(40)
		op, _ := d.Malloc(8)
		d.CopyIn(ip, 0, EncodeFloat64s(in))
		if err := d.Launch("reduce_sum", [3]int{1}, [3]int{5}, op, ip, 5); err != nil {
			t.Errorf("Launch: %v", err)
			return
		}
		raw, _ := d.CopyOut(op, 0, 8)
		if got := DecodeFloat64s(raw)[0]; got != 15 {
			t.Errorf("sum = %v, want 15", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestUnknownKernel(t *testing.T) {
	s, d := device(t, 100)
	err := s.Run(func() {
		if err := d.Launch("missing", [3]int{1}, [3]int{1}); !errors.Is(err, ErrUnknownKernel) {
			t.Errorf("err = %v", err)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestKernelChargesRooflineTime(t *testing.T) {
	s := sim.New()
	perf := Perf{GFLOPS: 1, MemBandwidthBps: 1e12, KernelLaunch: time.Millisecond}
	d := NewDevice(s, "slow", 1<<20, perf)
	RegisterKernel("burn", func(ctx *KernelCtx) (Cost, error) {
		return Cost{FLOPs: 1e9}, nil // 1 second at 1 GFLOPS
	})
	err := s.Run(func() {
		start := s.Now()
		if err := d.Launch("burn", [3]int{1}, [3]int{1}); err != nil {
			t.Errorf("Launch: %v", err)
		}
		if got, want := s.Now()-start, time.Second+time.Millisecond; got != want {
			t.Errorf("exec time = %v, want %v", got, want)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestKernelMemoryBound(t *testing.T) {
	s := sim.New()
	perf := Perf{GFLOPS: 1000, MemBandwidthBps: 1e9, KernelLaunch: 0}
	d := NewDevice(s, "membound", 1<<20, perf)
	RegisterKernel("stream", func(ctx *KernelCtx) (Cost, error) {
		return Cost{FLOPs: 1, BytesRW: 5e8}, nil // 0.5s at 1 GB/s
	})
	err := s.Run(func() {
		start := s.Now()
		d.Launch("stream", [3]int{1}, [3]int{1})
		if got := s.Now() - start; got != 500*time.Millisecond {
			t.Errorf("exec time = %v, want 500ms", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	if err := quick.Check(func(vals []float64) bool {
		got := DecodeFloat64s(EncodeFloat64s(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			// NaN compares unequal to itself; compare bit patterns via encode.
			if got[i] != vals[i] && !(vals[i] != vals[i] && got[i] != got[i]) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKernelCtxThreads(t *testing.T) {
	ctx := &KernelCtx{Grid: [3]int{4, 2, 0}, Block: [3]int{32, 0, 0}}
	if got := ctx.Threads(); got != 4*2*32 {
		t.Fatalf("Threads = %d, want 256", got)
	}
}

func TestBadKernelArgs(t *testing.T) {
	s, d := device(t, 1<<20)
	err := s.Run(func() {
		if err := d.Launch("vecadd", [3]int{1}, [3]int{1}, "not a ptr"); err == nil {
			t.Error("bad args should fail")
		}
		p, _ := d.Malloc(8)
		if err := d.Launch("vecadd", [3]int{1}, [3]int{1}, p, p); err == nil {
			t.Error("missing args should fail")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
