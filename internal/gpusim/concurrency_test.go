package gpusim

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestConcurrentDeviceOps hammers one device from many actors; memory
// accounting must stay exact.
func TestConcurrentDeviceOps(t *testing.T) {
	s := sim.New()
	d := NewDevice(s, "gpu", 1<<20, DefaultPerf())
	err := s.Run(func() {
		g := s.NewGroup("workers")
		const workers = 16
		for w := 0; w < workers; w++ {
			w := w
			g.Go(fmt.Sprintf("worker%d", w), func() {
				for i := 0; i < 20; i++ {
					p, err := d.Malloc(1024)
					if err != nil {
						t.Errorf("Malloc: %v", err)
						return
					}
					if err := d.CopyIn(p, 0, []byte{byte(w)}); err != nil {
						t.Errorf("CopyIn: %v", err)
						return
					}
					out, err := d.CopyOut(p, 0, 1)
					if err != nil || out[0] != byte(w) {
						t.Errorf("CopyOut: %v %v", out, err)
						return
					}
					s.Sleep(time.Duration(w+1) * time.Microsecond)
					if err := d.Free(p); err != nil {
						t.Errorf("Free: %v", err)
						return
					}
				}
			})
		}
		g.Wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d.MemUsed() != 0 {
		t.Fatalf("leaked %d bytes", d.MemUsed())
	}
}

// TestConcurrentKernelsOnDistinctDevices verifies devices are
// independent: kernels on two devices overlap in virtual time.
func TestConcurrentKernelsOnDistinctDevices(t *testing.T) {
	s := sim.New()
	perf := Perf{GFLOPS: 1, MemBandwidthBps: 1e12}
	d1 := NewDevice(s, "g1", 1<<10, perf)
	d2 := NewDevice(s, "g2", 1<<10, perf)
	RegisterKernel("halfsec", func(ctx *KernelCtx) (Cost, error) {
		return Cost{FLOPs: 5e8}, nil // 0.5s at 1 GFLOPS
	})
	err := s.Run(func() {
		g := s.NewGroup("launch")
		start := s.Now()
		for _, d := range []*Device{d1, d2} {
			d := d
			g.Go(d.Name(), func() {
				if err := d.Launch("halfsec", [3]int{1}, [3]int{1}); err != nil {
					t.Errorf("Launch: %v", err)
				}
			})
		}
		g.Wait()
		if got := s.Now() - start; got != 500*time.Millisecond {
			t.Errorf("two devices took %v, want 500ms (parallel)", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
