// Package gpusim models the CUDA-enabled GPU of a network-attached
// accelerator (paper Figure 1(b)): a device memory space, host/device
// copies, and kernels executed under a roofline timing model.
//
// The paper's batch-system evaluation "did not require the physical
// presence of an accelerator"; the examples in this repository do
// offload work, so the device model is functional — kernels are Go
// functions operating on simulated device buffers — while execution
// time follows max(flops/peak, bytes/bandwidth) + launch overhead.
package gpusim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/sim"
)

// Common device errors.
var (
	ErrOutOfMemory   = errors.New("gpusim: out of device memory")
	ErrBadPointer    = errors.New("gpusim: invalid device pointer")
	ErrUnknownKernel = errors.New("gpusim: unknown kernel")
	ErrBadCopy       = errors.New("gpusim: copy out of bounds")
)

// Ptr is a device memory handle.
type Ptr uint64

// Perf is the device performance model.
type Perf struct {
	// GFLOPS is peak compute throughput in 1e9 floating-point
	// operations per second.
	GFLOPS float64
	// MemBandwidthBps is device memory bandwidth in bytes per second.
	MemBandwidthBps float64
	// KernelLaunch is the fixed launch overhead per kernel.
	KernelLaunch time.Duration
}

// DefaultPerf resembles a Fermi-class GPU of the paper's era
// (Tesla C2050: ~515 GFLOPS double precision, ~144 GB/s).
func DefaultPerf() Perf {
	return Perf{GFLOPS: 515, MemBandwidthBps: 144e9, KernelLaunch: 10 * time.Microsecond}
}

// Cost describes the work a kernel performed, used to charge
// execution time.
type Cost struct {
	FLOPs   float64
	BytesRW float64
}

// KernelFunc is a device kernel. It receives the launching context to
// read and write device memory and returns the work it performed.
type KernelFunc func(ctx *KernelCtx) (Cost, error)

// registry is the global kernel registry (mirrors compiled CUDA
// modules being available on every device).
var registry = struct {
	mu sync.RWMutex
	m  map[string]KernelFunc
}{m: make(map[string]KernelFunc)}

// RegisterKernel installs a kernel under a name. Re-registering a
// name replaces the previous kernel.
func RegisterKernel(name string, fn KernelFunc) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	registry.m[name] = fn
}

func lookupKernel(name string) (KernelFunc, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	fn, ok := registry.m[name]
	return fn, ok
}

type buffer struct {
	data []byte
}

// Device is one simulated GPU.
type Device struct {
	sim  *sim.Simulation
	name string
	perf Perf

	// aud is the flight recorder (nil when auditing is off).
	aud *audit.Recorder

	mu       sync.Mutex
	memTotal int64
	memUsed  int64
	next     uint64
	allocs   map[Ptr]*buffer
	launched int64
}

// NewDevice creates a device with the given memory capacity.
func NewDevice(s *sim.Simulation, name string, memBytes int64, perf Perf) *Device {
	d := &Device{
		sim:      s,
		name:     name,
		perf:     perf,
		memTotal: memBytes,
		allocs:   make(map[Ptr]*buffer),
		aud:      s.Audit(),
	}
	d.aud.RegisterDigest("gpusim", "gpusim."+name, d.digest)
	return d
}

// digest hashes the device's memory-manager state: aggregate usage
// and the monotonic handle counter (no per-buffer walk needed — the
// counters pin every Malloc/Free that ever happened).
func (d *Device) digest(dig *audit.Digest) {
	d.mu.Lock()
	defer d.mu.Unlock()
	dig.WriteString(d.name)
	dig.WriteInt(d.memTotal)
	dig.WriteInt(d.memUsed)
	dig.WriteUint(d.next)
	dig.WriteInt(int64(len(d.allocs)))
	dig.WriteInt(d.launched)
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// MemTotal returns the device memory capacity in bytes.
func (d *Device) MemTotal() int64 { return d.memTotal }

// MemUsed returns the currently allocated bytes.
func (d *Device) MemUsed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.memUsed
}

// KernelsLaunched returns how many kernels have run on the device.
func (d *Device) KernelsLaunched() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.launched
}

// Malloc allocates size bytes of device memory (cudaMalloc).
func (d *Device) Malloc(size int64) (Ptr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("gpusim: Malloc size %d", size)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.memUsed+size > d.memTotal {
		return 0, fmt.Errorf("%w: want %d, free %d", ErrOutOfMemory, size, d.memTotal-d.memUsed)
	}
	d.next++
	p := Ptr(d.next)
	d.allocs[p] = &buffer{data: make([]byte, size)}
	d.memUsed += size
	d.aud.Record(audit.KindAlloc, "gpusim", d.name, "malloc", size, int64(p))
	return p, nil
}

// Free releases a device allocation (cudaFree).
func (d *Device) Free(p Ptr) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	b, ok := d.allocs[p]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrBadPointer, uint64(p))
	}
	d.memUsed -= int64(len(b.data))
	delete(d.allocs, p)
	d.aud.Record(audit.KindRelease, "gpusim", d.name, "free", int64(len(b.data)), int64(p))
	return nil
}

// CopyIn writes host data into device memory at p+offset. The caller
// is responsible for charging transfer time (the DAC layer charges
// the interconnect; a node-attached GPU would charge PCIe).
func (d *Device) CopyIn(p Ptr, offset int64, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	b, ok := d.allocs[p]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrBadPointer, uint64(p))
	}
	if offset < 0 || offset+int64(len(data)) > int64(len(b.data)) {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrBadCopy, offset, offset+int64(len(data)), len(b.data))
	}
	copy(b.data[offset:], data)
	return nil
}

// CopyOut reads n bytes of device memory at p+offset.
func (d *Device) CopyOut(p Ptr, offset, n int64) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	b, ok := d.allocs[p]
	if !ok {
		return nil, fmt.Errorf("%w: %#x", ErrBadPointer, uint64(p))
	}
	if offset < 0 || n < 0 || offset+n > int64(len(b.data)) {
		return nil, fmt.Errorf("%w: [%d,%d) of %d", ErrBadCopy, offset, offset+n, len(b.data))
	}
	out := make([]byte, n)
	copy(out, b.data[offset:])
	return out, nil
}

// KernelCtx gives a running kernel access to device memory and its
// launch configuration.
type KernelCtx struct {
	dev   *Device
	Grid  [3]int
	Block [3]int
	Args  []any
}

// Bytes returns the backing slice of a device allocation for in-place
// kernel access. The kernel must not retain it past its return.
func (c *KernelCtx) Bytes(p Ptr) ([]byte, error) {
	c.dev.mu.Lock()
	defer c.dev.mu.Unlock()
	b, ok := c.dev.allocs[p]
	if !ok {
		return nil, fmt.Errorf("%w: %#x", ErrBadPointer, uint64(p))
	}
	return b.data, nil
}

// Threads returns the total thread count of the launch configuration.
func (c *KernelCtx) Threads() int {
	g := c.Grid[0] * max1(c.Grid[1]) * max1(c.Grid[2])
	b := c.Block[0] * max1(c.Block[1]) * max1(c.Block[2])
	return g * b
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// Launch executes a registered kernel synchronously, charging
// roofline time on the simulation clock.
func (d *Device) Launch(name string, grid, block [3]int, args ...any) error {
	fn, ok := lookupKernel(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownKernel, name)
	}
	ctx := &KernelCtx{dev: d, Grid: grid, Block: block, Args: args}
	cost, err := fn(ctx)
	if err != nil {
		return fmt.Errorf("gpusim: kernel %q: %w", name, err)
	}
	d.mu.Lock()
	d.launched++
	d.mu.Unlock()
	d.sim.Sleep(d.execTime(cost))
	return nil
}

// execTime converts kernel work into time under the roofline model.
func (d *Device) execTime(c Cost) time.Duration {
	var compute, memory float64 // seconds
	if d.perf.GFLOPS > 0 {
		compute = c.FLOPs / (d.perf.GFLOPS * 1e9)
	}
	if d.perf.MemBandwidthBps > 0 {
		memory = c.BytesRW / d.perf.MemBandwidthBps
	}
	t := compute
	if memory > t {
		t = memory
	}
	return d.perf.KernelLaunch + time.Duration(t*float64(time.Second))
}
