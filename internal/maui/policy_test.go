package maui_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/maui"
	"repro/internal/netsim"
	"repro/internal/pbs"
	"repro/internal/sim"
)

// bed is a minimal cluster for policy tests.
type bed struct {
	s      *sim.Simulation
	net    *netsim.Network
	server *pbs.Server
	sched  *maui.Scheduler
	moms   []*pbs.Mom
}

func newBed(t *testing.T, nCN, nAC int, adjust func(*maui.Params)) *bed {
	t.Helper()
	s := sim.New()
	net := netsim.New(s, netsim.LinkParams{Latency: 200 * time.Microsecond})
	b := &bed{s: s, net: net}
	b.server = pbs.NewServer(net, pbs.ServerParams{Processing: 500 * time.Microsecond})
	mp := maui.DefaultParams()
	mp.CycleInterval = 20 * time.Millisecond
	mp.CycleOverhead = time.Millisecond
	mp.PerJobCost = time.Millisecond
	mp.DynPerReqCost = time.Millisecond
	if adjust != nil {
		adjust(&mp)
	}
	b.sched = maui.New(net, pbs.ServerEndpoint, mp)
	b.server.SetScheduler(b.sched.Endpoint())
	for i := 0; i < nCN; i++ {
		name := "cn" + string(rune('0'+i))
		b.server.AddNode(name, pbs.ComputeNode, 8)
		m := pbs.NewMom(net, name, pbs.MomParams{})
		m.Cluster = net
		b.moms = append(b.moms, m)
	}
	for i := 0; i < nAC; i++ {
		name := "ac" + string(rune('0'+i))
		b.server.AddNode(name, pbs.AcceleratorNode, 1)
		m := pbs.NewMom(net, name, pbs.MomParams{})
		m.Cluster = net
		b.moms = append(b.moms, m)
	}
	return b
}

func (b *bed) run(t *testing.T, fn func(c *pbs.Client)) {
	t.Helper()
	err := b.s.Run(func() {
		defer b.net.Close()
		b.server.Start()
		for _, m := range b.moms {
			m.Start()
		}
		b.sched.Start()
		c := pbs.NewClient(b.net, "front", pbs.ServerEndpoint)
		fn(c)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, e := range b.server.Errors() {
		if !strings.Contains(e, "DynAllocCmd for unknown request") {
			t.Errorf("server error: %s", e)
		}
	}
}

func sleeper(b *bed, d time.Duration) pbs.Script {
	return func(env *pbs.JobEnv) { b.s.Sleep(d) }
}

func TestBackfillLetsShortJobAhead(t *testing.T) {
	// 1 CN (8 cores). Job A takes 6 cores for 200ms. Job B needs all
	// 8 cores (blocked behind A). Job C needs 2 cores for 20ms: with
	// EASY backfill it runs alongside A, before B.
	check := func(backfill bool) (cStart, bStart time.Duration) {
		b := newBed(t, 1, 0, func(p *maui.Params) { p.Backfill = backfill })
		b.run(t, func(c *pbs.Client) {
			a, _ := c.Submit(pbs.JobSpec{Name: "A", Owner: "u", Nodes: 1, PPN: 6, Walltime: 300 * time.Millisecond, Script: sleeper(b, 200*time.Millisecond)})
			bb, _ := c.Submit(pbs.JobSpec{Name: "B", Owner: "u", Nodes: 1, PPN: 8, Walltime: 300 * time.Millisecond, Script: sleeper(b, 50*time.Millisecond)})
			cc, _ := c.Submit(pbs.JobSpec{Name: "C", Owner: "u", Nodes: 1, PPN: 2, Walltime: 20 * time.Millisecond, Script: sleeper(b, 20*time.Millisecond)})
			c.Wait(a)
			bi, _ := c.Wait(bb)
			ci, _ := c.Wait(cc)
			cStart, bStart = ci.StartedAt, bi.StartedAt
		})
		return
	}
	cs, bs := check(true)
	if cs >= bs {
		t.Errorf("with backfill: C started %v, B started %v — C should go first", cs, bs)
	}
	cs, bs = check(false)
	if cs < bs {
		t.Errorf("without backfill: C started %v before B %v — strict FIFO violated", cs, bs)
	}
}

func TestBackfillRespectsShadowTime(t *testing.T) {
	// Job C's walltime exceeds the blocked head's reservation, so it
	// must NOT backfill even though it fits now.
	b := newBed(t, 1, 0, nil)
	b.run(t, func(c *pbs.Client) {
		a, _ := c.Submit(pbs.JobSpec{Name: "A", Owner: "u", Nodes: 1, PPN: 6, Walltime: 100 * time.Millisecond, Script: sleeper(b, 100*time.Millisecond)})
		bb, _ := c.Submit(pbs.JobSpec{Name: "B", Owner: "u", Nodes: 1, PPN: 8, Walltime: 100 * time.Millisecond, Script: sleeper(b, 30*time.Millisecond)})
		cc, _ := c.Submit(pbs.JobSpec{Name: "C", Owner: "u", Nodes: 1, PPN: 2, Walltime: 10 * time.Second, Script: sleeper(b, 10*time.Millisecond)})
		c.Wait(a)
		bi, _ := c.Wait(bb)
		ci, _ := c.Wait(cc)
		if ci.StartedAt < bi.StartedAt {
			t.Errorf("long-walltime C backfilled ahead of B: C %v, B %v", ci.StartedAt, bi.StartedAt)
		}
	})
	if st := b.sched.Stats(); st.Backfilled != 0 {
		t.Errorf("backfilled = %d, want 0", st.Backfilled)
	}
}

func TestFairsharePenalizesHeavyUser(t *testing.T) {
	// Heavy user runs a big job first; then one job per user is
	// queued while the node is busy. The light user's job should be
	// picked first once resources free, despite being submitted later.
	b := newBed(t, 1, 0, func(p *maui.Params) {
		p.FairshareWeight = 100
		p.QueueTimeWeight = 0.001
		p.FairshareDecay = 1 // no decay within the test
		p.Backfill = false
	})
	b.run(t, func(c *pbs.Client) {
		big, _ := c.Submit(pbs.JobSpec{Name: "big", Owner: "heavy", Nodes: 1, PPN: 8, Walltime: time.Second, Script: sleeper(b, 100*time.Millisecond)})
		b.s.Sleep(30 * time.Millisecond) // let it start
		h, _ := c.Submit(pbs.JobSpec{Name: "h2", Owner: "heavy", Nodes: 1, PPN: 8, Walltime: time.Second, Script: sleeper(b, 10*time.Millisecond)})
		l, _ := c.Submit(pbs.JobSpec{Name: "l1", Owner: "light", Nodes: 1, PPN: 8, Walltime: time.Second, Script: sleeper(b, 10*time.Millisecond)})
		c.Wait(big)
		hi, _ := c.Wait(h)
		li, _ := c.Wait(l)
		if li.StartedAt >= hi.StartedAt {
			t.Errorf("light user's job started %v, heavy user's %v — fairshare ineffective", li.StartedAt, hi.StartedAt)
		}
	})
	if b.sched.Usage("heavy") <= b.sched.Usage("light") {
		t.Errorf("usage heavy=%v light=%v", b.sched.Usage("heavy"), b.sched.Usage("light"))
	}
}

func TestQueueTimeRaisesPriority(t *testing.T) {
	// Two equal jobs: the one submitted earlier runs first under
	// queue-time priority.
	b := newBed(t, 1, 0, func(p *maui.Params) { p.Backfill = false })
	b.run(t, func(c *pbs.Client) {
		blocker, _ := c.Submit(pbs.JobSpec{Name: "blk", Owner: "u", Nodes: 1, PPN: 8, Walltime: 100 * time.Millisecond, Script: sleeper(b, 100*time.Millisecond)})
		first, _ := c.Submit(pbs.JobSpec{Name: "first", Owner: "u", Nodes: 1, PPN: 8, Walltime: 50 * time.Millisecond, Script: sleeper(b, 10*time.Millisecond)})
		b.s.Sleep(30 * time.Millisecond)
		second, _ := c.Submit(pbs.JobSpec{Name: "second", Owner: "u", Nodes: 1, PPN: 8, Walltime: 50 * time.Millisecond, Script: sleeper(b, 10*time.Millisecond)})
		c.Wait(blocker)
		fi, _ := c.Wait(first)
		si, _ := c.Wait(second)
		if fi.StartedAt >= si.StartedAt {
			t.Errorf("first submitted started %v, later one %v", fi.StartedAt, si.StartedAt)
		}
	})
}

func TestBasePriorityBeatsQueueTime(t *testing.T) {
	b := newBed(t, 1, 0, func(p *maui.Params) {
		p.Backfill = false
		p.QueueTimeWeight = 0.01
	})
	b.run(t, func(c *pbs.Client) {
		blocker, _ := c.Submit(pbs.JobSpec{Name: "blk", Owner: "u", Nodes: 1, PPN: 8, Walltime: 100 * time.Millisecond, Script: sleeper(b, 100*time.Millisecond)})
		low, _ := c.Submit(pbs.JobSpec{Name: "low", Owner: "u", Nodes: 1, PPN: 8, Priority: 0, Walltime: 50 * time.Millisecond, Script: sleeper(b, 10*time.Millisecond)})
		high, _ := c.Submit(pbs.JobSpec{Name: "high", Owner: "u", Nodes: 1, PPN: 8, Priority: 1000, Walltime: 50 * time.Millisecond, Script: sleeper(b, 10*time.Millisecond)})
		c.Wait(blocker)
		li, _ := c.Wait(low)
		hi, _ := c.Wait(high)
		if hi.StartedAt >= li.StartedAt {
			t.Errorf("high-priority job started %v after low %v", hi.StartedAt, li.StartedAt)
		}
	})
}

func TestDynTopPriorityBeatsBacklog(t *testing.T) {
	// With top priority, a dynamic request is serviced even though a
	// long backlog of unsatisfiable jobs sits in the queue.
	b := newBed(t, 2, 2, nil)
	b.run(t, func(c *pbs.Client) {
		var dynDone time.Duration
		id, _ := c.Submit(pbs.JobSpec{
			Name: "dac", Owner: "u", Nodes: 1, PPN: 8, ACPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				b.s.Sleep(30 * time.Millisecond)
				cl := pbs.NewClient(env.Cluster.(*netsim.Network), env.Host, env.ServerEP)
				if _, err := cl.DynGet(env.JobID, env.Host, 1); err != nil {
					t.Errorf("DynGet: %v", err)
				}
				dynDone = b.s.Now()
			},
		})
		// Backlog: 10 jobs that can never run (ask for 5 CNs).
		for i := 0; i < 10; i++ {
			c.Submit(pbs.JobSpec{Name: "stuck", Owner: "u", Nodes: 5, PPN: 8, Walltime: time.Second, Script: sleeper(b, time.Millisecond)})
		}
		c.Wait(id)
		if dynDone == 0 {
			t.Fatal("dynamic request never completed")
		}
	})
	st := b.sched.Stats()
	if st.DynGranted != 1 {
		t.Errorf("DynGranted = %d", st.DynGranted)
	}
}

func TestPlainFIFOAblationServicesDynAfterBacklog(t *testing.T) {
	// Ablation: without top priority, the dynamic request is examined
	// after the earlier-submitted queued jobs in every cycle; it still
	// completes (the backlog is unsatisfiable), but the scheduler
	// walks the backlog first.
	b := newBed(t, 2, 2, func(p *maui.Params) { p.DynTopPriority = false })
	b.run(t, func(c *pbs.Client) {
		id, _ := c.Submit(pbs.JobSpec{
			Name: "dac", Owner: "u", Nodes: 1, PPN: 8, ACPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				b.s.Sleep(30 * time.Millisecond)
				cl := pbs.NewClient(env.Cluster.(*netsim.Network), env.Host, env.ServerEP)
				if _, err := cl.DynGet(env.JobID, env.Host, 1); err != nil {
					t.Errorf("DynGet: %v", err)
				}
			},
		})
		for i := 0; i < 5; i++ {
			c.Submit(pbs.JobSpec{Name: "stuck", Owner: "u", Nodes: 5, PPN: 8, Walltime: time.Second, Script: sleeper(b, time.Millisecond)})
		}
		info, _ := c.Wait(id)
		if len(info.DynRecords) != 1 || info.DynRecords[0].State != pbs.DynGranted {
			t.Errorf("DynRecords = %+v", info.DynRecords)
		}
	})
	if st := b.sched.Stats(); st.DynGranted != 1 {
		t.Errorf("DynGranted = %d", st.DynGranted)
	}
}

func TestPartialAllocGrantsWhatIsFree(t *testing.T) {
	b := newBed(t, 1, 3, func(p *maui.Params) { p.PartialAlloc = true })
	b.run(t, func(c *pbs.Client) {
		var grant pbs.DynGrant
		var err error
		id, _ := c.Submit(pbs.JobSpec{
			Name: "dac", Owner: "u", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				cl := pbs.NewClient(env.Cluster.(*netsim.Network), env.Host, env.ServerEP)
				grant, err = cl.DynGet(env.JobID, env.Host, 5) // only 2 free
			},
		})
		c.Wait(id)
		if err != nil {
			t.Errorf("DynGet with PartialAlloc: %v", err)
		}
		if len(grant.Hosts) != 2 {
			t.Errorf("partial grant = %v, want 2 hosts", grant.Hosts)
		}
	})
}

func TestPartialAllocOffRejects(t *testing.T) {
	b := newBed(t, 1, 3, nil)
	b.run(t, func(c *pbs.Client) {
		id, _ := c.Submit(pbs.JobSpec{
			Name: "dac", Owner: "u", Nodes: 1, PPN: 1, ACPN: 1, Walltime: time.Second,
			Script: func(env *pbs.JobEnv) {
				cl := pbs.NewClient(env.Cluster.(*netsim.Network), env.Host, env.ServerEP)
				if _, err := cl.DynGet(env.JobID, env.Host, 5); err == nil {
					t.Error("expected rejection without PartialAlloc")
				}
			},
		})
		c.Wait(id)
	})
	if st := b.sched.Stats(); st.DynRejected != 1 {
		t.Errorf("DynRejected = %d", st.DynRejected)
	}
}

func TestSchedulerStatsCycles(t *testing.T) {
	b := newBed(t, 1, 0, nil)
	b.run(t, func(c *pbs.Client) {
		id, _ := c.Submit(pbs.JobSpec{Name: "j", Owner: "u", Nodes: 1, PPN: 1, Walltime: time.Second, Script: sleeper(b, 10*time.Millisecond)})
		c.Wait(id)
	})
	st := b.sched.Stats()
	if st.Cycles == 0 || st.JobsPlaced != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.CycleTimeTotal <= 0 || st.CycleTimeMax <= 0 {
		t.Errorf("cycle timing not recorded: %+v", st)
	}
	if mean := st.CycleTimeMean(); mean <= 0 || mean > st.CycleTimeMax {
		t.Errorf("CycleTimeMean = %v (max %v)", mean, st.CycleTimeMax)
	}
	if (maui.Stats{}).CycleTimeMean() != 0 {
		t.Error("CycleTimeMean of zero stats should be 0")
	}
}
