package maui_test

import (
	"testing"
	"time"

	"repro/internal/maui"
	"repro/internal/pbs"
)

// partitioned returns an adjust func enabling the partitioned cycle.
func partitioned(n int) func(*maui.Params) {
	return func(mp *maui.Params) {
		mp.Partitions = n
		mp.ArbiterPerJobCost = 100 * time.Microsecond
	}
}

// A mixed-width batch must drain completely through the partitioned
// cycle: dealing jobs and nodes across partitions plus the arbiter
// must not strand any job the faithful walk would place.
func TestPartitionedCycleCompletesWorkload(t *testing.T) {
	b := newBed(t, 8, 4, partitioned(4))
	b.run(t, func(c *pbs.Client) {
		specs := []pbs.JobSpec{
			{Name: "narrow", Owner: "alice", Nodes: 1, PPN: 4, Walltime: time.Second},
			{Name: "wide", Owner: "bob", Nodes: 2, PPN: 8, Walltime: time.Second},
			{Name: "acc", Owner: "carol", Nodes: 1, PPN: 2, ACPN: 1, Walltime: time.Second},
		}
		var ids []string
		for i := 0; i < 12; i++ {
			spec := specs[i%len(specs)]
			spec.Script = sleeper(b, 10*time.Millisecond)
			id, err := c.Submit(spec)
			if err != nil {
				t.Errorf("Submit: %v", err)
				return
			}
			ids = append(ids, id)
		}
		for _, id := range ids {
			info, err := c.Wait(id)
			if err != nil {
				t.Errorf("Wait(%s): %v", id, err)
				return
			}
			if info.State != pbs.JobCompleted {
				t.Errorf("job %s state = %v, want completed", id, info.State)
			}
		}
	})
}

// The rescue pass: a partition's blocked head gets one retry against
// the other partitions' pools, so cross-partition fragmentation does
// not stall a job the cluster as a whole could place. Partition 0's
// nodes are filled with long jobs; a 2-node job whose home partition
// is partition 0 must still start immediately via partition 1.
func TestPartitionedRescuePlacesBlockedHead(t *testing.T) {
	// 4 CNs, 2 partitions: round-robin dealing puts cn0/cn2 in
	// partition 0 and cn1/cn3 in partition 1.
	b := newBed(t, 4, 0, partitioned(2))
	b.run(t, func(c *pbs.Client) {
		// Each filler is submitted alone, so it sits at queue position
		// 0 and is dealt to partition 0, whose first-fit walk fills
		// cn0 then cn2.
		var fillers []string
		for i := 0; i < 2; i++ {
			id, err := c.Submit(pbs.JobSpec{
				Name: "filler", Owner: "alice", Nodes: 1, PPN: 8,
				Walltime: time.Second, Script: sleeper(b, 500*time.Millisecond),
			})
			if err != nil {
				t.Errorf("Submit filler: %v", err)
				return
			}
			fillers = append(fillers, id)
			b.s.Sleep(60 * time.Millisecond) // let a cycle place it before the next
		}
		wide, err := c.Submit(pbs.JobSpec{
			Name: "wide", Owner: "bob", Nodes: 2, PPN: 8,
			Walltime: time.Second, Script: sleeper(b, 10*time.Millisecond),
		})
		if err != nil {
			t.Errorf("Submit wide: %v", err)
			return
		}
		wideInfo, err := c.Wait(wide)
		if err != nil {
			t.Errorf("Wait(wide): %v", err)
			return
		}
		for _, id := range fillers {
			info, err := c.Wait(id)
			if err != nil {
				t.Errorf("Wait(filler %s): %v", id, err)
				return
			}
			// Rescue placed the wide job on partition 1 while both
			// fillers still held partition 0; without it the job
			// would have waited ~500ms for a filler to finish.
			if wideInfo.StartedAt >= info.CompletedAt {
				t.Errorf("wide job started at %v, after filler completed at %v: rescue pass did not place it",
					wideInfo.StartedAt, info.CompletedAt)
			}
		}
	})
}

// The partitioned cycle is still a deterministic discrete-event
// program: identical workloads must yield identical virtual
// timestamps run to run.
func TestPartitionedCycleDeterministic(t *testing.T) {
	runOnce := func() []time.Duration {
		b := newBed(t, 8, 2, partitioned(4))
		var times []time.Duration
		b.run(t, func(c *pbs.Client) {
			var ids []string
			for i := 0; i < 10; i++ {
				nodes := 1 + i%2
				id, err := c.Submit(pbs.JobSpec{
					Name: "det", Owner: "alice", Nodes: nodes, PPN: 4,
					Walltime: time.Second, Script: sleeper(b, 15*time.Millisecond),
				})
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				ids = append(ids, id)
			}
			for _, id := range ids {
				info, err := c.Wait(id)
				if err != nil {
					t.Errorf("Wait(%s): %v", id, err)
					return
				}
				times = append(times, info.SubmittedAt, info.AllocatedAt, info.StartedAt, info.CompletedAt)
			}
		})
		return times
	}
	a, b := runOnce(), runOnce()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("timestamp vectors differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run-to-run divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
