package maui

import (
	"sort"
	"strconv"
	"time"

	"repro/internal/pbs"
	"repro/internal/trace"
)

// The partitioned cycle: the scheduler's half of the sharded-server
// ablation. The faithful cycle walks the whole queue serially at
// PerJobCost per job, so cycle time grows linearly with the backlog
// and, through the backlog's growth with cluster size, super-linearly
// with node count. The partitioned cycle deals nodes and queued jobs
// across Params.Partitions partitions, scores candidates within each
// partition against that partition's pool, and advances virtual time
// by the cost of the *slowest* partition — the scoring work overlaps.
// A small global arbiter then commits the proposals serially at
// ArbiterPerJobCost each, preserving a deterministic global priority
// order, and gives each partition's blocked head one retry against
// the other partitions' capacity so fragmentation across partitions
// cannot stall a queue the faithful walk would drain.
//
// Semantics deliberately kept from the faithful path: dynamic
// requests are served first, FIFO, at DynPerReqCost each (they are
// few; parallelizing them would change the paper's top-priority
// policy), and EASY backfill runs per partition under the partition's
// own shadow reservation.

// proposal is one partition's placement candidate awaiting the
// arbiter's commit. The hosts/acc were already taken from the
// partition's pool during scoring, so no two proposals can claim the
// same capacity.
type proposal struct {
	idx        int // index into the snapshot's Queued slice
	prio       float64
	hosts      []string
	acc        map[string][]string
	backfilled bool
}

// arbiterCost is the per-proposal commit cost.
func (sc *Scheduler) arbiterCost() time.Duration {
	if sc.params.ArbiterPerJobCost > 0 {
		return sc.params.ArbiterPerJobCost
	}
	return sc.params.PerJobCost / 8
}

// partitionedCycle replaces the pool build and both placement phases
// of the faithful cycle. Fetch, overhead, and fairshare decay have
// already run in cycle().
func (sc *Scheduler) partitionedCycle(info *pbs.SchedInfoResp, cyc *trace.Span) bool {
	nParts := sc.params.Partitions

	pb := cyc.Child("pools")
	sc.resetPartitions(info.Nodes, nParts)
	pb.End()
	freeACs := 0
	for _, p := range sc.partPools[:nParts] {
		freeACs += len(p.freeACs)
	}
	if trc := sc.sim.Tracer(); trc != nil {
		trc.Gauge("maui.queue_depth", float64(len(info.Queued)))
		trc.Gauge("maui.dyn_backlog", float64(len(info.Dyn)))
		trc.Gauge("maui.free_acs", float64(freeACs))
	}
	sc.inst.queueDepth.Set(float64(len(info.Queued)))

	dyn := cyc.Child("dyn")
	sc.partitionedDyn(info.Dyn, dyn)
	dyn.End()
	st := cyc.Child("partitions")
	sc.partitionedStatic(info, st)
	st.End()
	return true
}

// resetPartitions deals the node snapshot round-robin into nParts
// pools. Round-robin (rather than contiguous ranges) keeps every
// partition's capacity mix representative of the whole cluster, so a
// multi-node job fits in any partition that is not itself full.
func (sc *Scheduler) resetPartitions(nodes []pbs.NodeInfo, nParts int) {
	for len(sc.partPools) < nParts {
		sc.partPools = append(sc.partPools, &pools{index: make(map[string]int)})
	}
	for len(sc.partNodes) < nParts {
		sc.partNodes = append(sc.partNodes, nil)
	}
	for pi := 0; pi < nParts; pi++ {
		sc.partNodes[pi] = sc.partNodes[pi][:0]
	}
	for i := range nodes {
		pi := i % nParts
		sc.partNodes[pi] = append(sc.partNodes[pi], nodes[i])
	}
	for pi := 0; pi < nParts; pi++ {
		sc.partPools[pi].reset(sc.partNodes[pi])
	}
}

// partitionedDyn serves dynamic requests FIFO at top priority, as the
// faithful path does. The arbiter draws accelerators from every
// partition's pool, starting at the request id's home partition, so
// partitioning never strands free accelerators; compute-kind requests
// place within a single partition, all-or-nothing per partition.
func (sc *Scheduler) partitionedDyn(reqs []pbs.SchedDynView, phase *trace.Span) {
	nParts := sc.params.Partitions
	for _, r := range reqs {
		if sc.skipInflightDyn(r.ReqID) {
			continue // grant still in flight on a server shard
		}
		var sp *trace.Span
		if phase != nil {
			sp = phase.Child("sched.dyn", "job", r.JobID, "req", strconv.Itoa(r.ReqID), "count", strconv.Itoa(r.Count))
		}
		sc.sim.Sleep(sc.params.DynPerReqCost)
		var hosts []string
		if r.Kind == pbs.KindCompute {
			for off := 0; off < nParts && hosts == nil; off++ {
				hosts = sc.partPools[(r.ReqID+off)%nParts].takeCNs(r.Count, r.PPN, r.JobID)
			}
		} else {
			free := 0
			for pi := 0; pi < nParts; pi++ {
				free += len(sc.partPools[pi].freeACs)
			}
			want := r.Count
			if want > free {
				// Same policy as allocDyn: reject when short unless
				// PartialAlloc grants what there is.
				if sc.params.PartialAlloc && free > 0 {
					want = free
				} else {
					want = 0
				}
			}
			for off := 0; off < nParts && len(hosts) < want; off++ {
				p := sc.partPools[(r.ReqID+off)%nParts]
				take := want - len(hosts)
				if take > len(p.freeACs) {
					take = len(p.freeACs)
				}
				if take > 0 {
					hosts = append(hosts, p.takeACs(take)...)
				}
			}
		}
		sc.mu.Lock()
		if len(hosts) > 0 {
			sc.stats.DynGranted++
		} else {
			sc.stats.DynRejected++
		}
		sc.mu.Unlock()
		sc.dynInflight[r.ReqID] = sc.cycleIndex
		sp.Annotate("granted", strconv.FormatBool(len(hosts) > 0))
		sp.End()
		sc.sendCause(pbs.DynAllocCmd{ReqID: r.ReqID, Hosts: hosts, Cause: sp.ID()}, sp.ID())
	}
}

// partitionedStatic scores candidates partition-parallel and commits
// them through the global arbiter.
func (sc *Scheduler) partitionedStatic(info *pbs.SchedInfoResp, phase *trace.Span) {
	queued := info.Queued
	nParts := sc.params.Partitions

	// Priorities once, up front (same reasoning as scheduleStatic:
	// virtual time stands still while we score, so values cannot
	// change mid-sort).
	prio := sc.prio
	if cap(prio) < len(queued) {
		prio = make([]float64, len(queued))
	}
	prio = prio[:len(queued)]
	sc.prio = prio
	now := sc.sim.Now()
	sc.mu.Lock()
	for i := range queued {
		j := &queued[i]
		wait := (now - j.SubmittedAt).Seconds()
		prio[i] = float64(j.Spec.Priority) + sc.params.QueueTimeWeight*wait - sc.params.FairshareWeight*sc.usage[j.Spec.Owner]
	}
	sc.mu.Unlock()

	// Deal jobs to partitions by queue position, skipping jobs whose
	// allocation is still in flight on a server shard (re-placing
	// them would double-commit pool capacity).
	for len(sc.partJobs) < nParts {
		sc.partJobs = append(sc.partJobs, nil)
	}
	for pi := 0; pi < nParts; pi++ {
		sc.partJobs[pi] = sc.partJobs[pi][:0]
	}
	dealt := 0
	for i := range queued {
		if sc.skipInflight(queued[i].ID) {
			continue
		}
		sc.partJobs[dealt%nParts] = append(sc.partJobs[dealt%nParts], i)
		dealt++
	}

	// Score every partition against its own pool. No virtual time
	// passes during scoring; the concurrent examination cost is
	// charged below as the slowest partition's total.
	proposals := sc.proposals[:0]
	rescue := sc.rescue[:0]
	maxExamined := 0
	for pi := 0; pi < nParts; pi++ {
		order := sc.partJobs[pi]
		sort.SliceStable(order, func(a, b int) bool { return prio[order[a]] > prio[order[b]] })
		p := sc.partPools[pi]
		var shadow time.Duration = -1
		examined := 0
		for _, idx := range order {
			j := queued[idx]
			examined++
			if shadow >= 0 {
				// This partition's head is blocked; only backfill
				// candidates that finish before its reservation.
				if !sc.params.Backfill {
					continue
				}
				if j.Spec.Walltime <= 0 || now+j.Spec.Walltime > shadow {
					continue
				}
			}
			hosts, acc, ok := p.fit(j.Spec, j.ID)
			if !ok {
				if shadow < 0 {
					shadow = sc.shadowTime(info.Running)
					rescue = append(rescue, idx)
				}
				continue
			}
			proposals = append(proposals, proposal{
				idx: idx, prio: prio[idx], hosts: hosts, acc: acc,
				backfilled: shadow >= 0,
			})
		}
		if examined > maxExamined {
			maxExamined = examined
		}
	}
	sc.proposals = proposals
	sc.rescue = rescue

	// The partitions scored concurrently: a cycle pays the slowest
	// one, not the sum — the partitioned cycle's core saving.
	sc.sim.Sleep(time.Duration(maxExamined) * sc.params.PerJobCost)

	// Global arbiter: commit proposals in priority order (ties by
	// queue position) at a small serial cost each.
	sort.SliceStable(proposals, func(a, b int) bool {
		if proposals[a].prio != proposals[b].prio {
			return proposals[a].prio > proposals[b].prio
		}
		return proposals[a].idx < proposals[b].idx
	})
	cost := sc.arbiterCost()
	for _, pr := range proposals {
		sc.sim.Sleep(cost)
		if pr.backfilled {
			sc.inst.backfill.Inc()
			sc.mu.Lock()
			sc.stats.Backfilled++
			sc.mu.Unlock()
		}
		sc.place(queued[pr.idx], pr.hosts, pr.acc, phase)
	}

	// Rescue pass: each partition's blocked head retries against the
	// remaining capacity of every partition, highest priority first.
	sort.SliceStable(rescue, func(a, b int) bool {
		if prio[rescue[a]] != prio[rescue[b]] {
			return prio[rescue[a]] > prio[rescue[b]]
		}
		return rescue[a] < rescue[b]
	})
	for _, idx := range rescue {
		j := queued[idx]
		sc.sim.Sleep(cost)
		for pi := 0; pi < nParts; pi++ {
			if hosts, acc, ok := sc.partPools[pi].fit(j.Spec, j.ID); ok {
				sc.place(j, hosts, acc, phase)
				break
			}
		}
	}
}
