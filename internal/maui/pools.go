package maui

import (
	"math/bits"

	"repro/internal/pbs"
)

// pools tracks the cycle-local view of free resources.
//
// Placement semantics are first-fit in node-database order, as the
// original Maui walk did — but the walk itself is indexed: for every
// possible per-node core demand c, levels[c-1] is a bitset of the
// compute nodes with at least c free cores. A fit for k nodes at ppn
// cores therefore skips every too-full node in O(1) per 64 nodes
// instead of examining each one, which is what keeps scheduling
// cycles sub-quadratic on multi-hundred-node clusters (the -fig
// scale experiment measures exactly this).
type pools struct {
	freeACs []string

	cns    []cnState      // compute nodes in node-database order
	index  map[string]int // name -> index in cns
	levels [][]uint64     // levels[c] = bitset of cns with free >= c+1

	acs    []string // stable backing for freeACs, rebuilt by reset
	chosen []int    // scratch for fit/takeCNs candidate collection
}

type cnState struct {
	name string
	free int
	jobs []string
}

func newPools(nodes []pbs.NodeInfo) *pools {
	p := &pools{index: make(map[string]int)}
	p.reset(nodes)
	return p
}

// reset rebuilds the pools for a fresh cycle from a node snapshot,
// reusing every piece of storage acquired on earlier cycles. The
// cnState.jobs slices alias the snapshot's NodeInfo.Jobs; commit may
// append past their length, which is safe because the scheduler owns
// the snapshot for the whole cycle and the server rewrites those
// buffers from its node database on the next SchedInfo request.
func (p *pools) reset(nodes []pbs.NodeInfo) {
	p.acs = p.acs[:0]
	p.cns = p.cns[:0]
	clear(p.index)
	maxCores := 0
	for _, n := range nodes {
		if n.Down {
			continue // failed nodes never receive work
		}
		switch n.Type {
		case pbs.AcceleratorNode:
			if n.Free() {
				p.acs = append(p.acs, n.Name)
			}
		case pbs.ComputeNode:
			p.index[n.Name] = len(p.cns)
			p.cns = append(p.cns, cnState{name: n.Name, free: n.FreeCores(), jobs: n.Jobs})
			if n.Cores > maxCores {
				maxCores = n.Cores
			}
		}
	}
	// takeACs advances freeACs by reslicing, so it must start each
	// cycle from the stable backing array.
	p.freeACs = p.acs
	words := (len(p.cns) + 63) / 64
	if cap(p.levels) < maxCores {
		p.levels = make([][]uint64, maxCores)
	}
	p.levels = p.levels[:maxCores]
	for c := range p.levels {
		if cap(p.levels[c]) < words {
			p.levels[c] = make([]uint64, words)
		} else {
			row := p.levels[c][:words]
			clear(row)
			p.levels[c] = row
		}
	}
	for i, cn := range p.cns {
		for c := 0; c < cn.free; c++ {
			p.levels[c][i>>6] |= 1 << (uint(i) & 63)
		}
	}
}

// freeCores reports the free cores of a compute node (for tests).
func (p *pools) freeCores(name string) int {
	i, ok := p.index[name]
	if !ok {
		return 0
	}
	return p.cns[i].free
}

// eachWithFree calls fn with the index of every compute node that has
// at least max(ppn, 1) free cores, in node-database order, until fn
// returns false. fn must not commit allocations mid-iteration;
// callers collect candidates first and commit after.
func (p *pools) eachWithFree(ppn int, fn func(i int) bool) {
	lvl := ppn - 1
	if lvl < 0 {
		lvl = 0
	}
	if lvl >= len(p.levels) {
		return
	}
	for wi, w := range p.levels[lvl] {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			if !fn(wi<<6 + b) {
				return
			}
		}
	}
}

// commit charges ppn cores on node i to jobID and updates the level
// index.
func (p *pools) commit(i, ppn int, jobID string) {
	cn := &p.cns[i]
	oldFree := cn.free
	cn.free -= ppn
	cn.jobs = append(cn.jobs, jobID)
	for c := cn.free; c < oldFree; c++ {
		p.levels[c][i>>6] &^= 1 << (uint(i) & 63)
	}
}

// takeACs removes and returns up to n free accelerators.
func (p *pools) takeACs(n int) []string {
	if n > len(p.freeACs) {
		return nil
	}
	out := append([]string(nil), p.freeACs[:n]...)
	p.freeACs = p.freeACs[n:]
	return out
}

// takeCNs picks count compute nodes with ppn free cores each that the
// given job does not already occupy (malleable extension). It returns
// nil without mutating the pools when the demand cannot be met.
func (p *pools) takeCNs(count, ppn int, jobID string) []string {
	if ppn <= 0 {
		return nil
	}
	chosen := p.chosen[:0]
	p.eachWithFree(ppn, func(i int) bool {
		for _, j := range p.cns[i].jobs {
			if j == jobID {
				return true // job already occupies this node; keep looking
			}
		}
		chosen = append(chosen, i)
		return len(chosen) < count
	})
	p.chosen = chosen
	if len(chosen) < count {
		return nil
	}
	out := make([]string, 0, count)
	for _, i := range chosen {
		p.commit(i, ppn, jobID)
		out = append(out, p.cns[i].name)
	}
	return out
}

// fit tries to place a job (k compute nodes with ppn cores each plus
// k*acpn accelerators); it returns the chosen hosts without mutating
// the pools when placement fails.
func (p *pools) fit(spec pbs.JobSpec, jobID string) (hosts []string, acc map[string][]string, ok bool) {
	if spec.PPN < 0 {
		return nil, nil, false
	}
	chosen := p.chosen[:0]
	p.eachWithFree(spec.PPN, func(i int) bool {
		chosen = append(chosen, i)
		return len(chosen) < spec.Nodes
	})
	p.chosen = chosen
	if len(chosen) < spec.Nodes {
		return nil, nil, false
	}
	need := spec.Nodes * spec.ACPN
	if need > len(p.freeACs) {
		return nil, nil, false
	}
	hosts = make([]string, 0, spec.Nodes)
	acc = make(map[string][]string, spec.Nodes)
	idx := 0
	for _, i := range chosen {
		name := p.cns[i].name
		hosts = append(hosts, name)
		if spec.ACPN > 0 {
			acc[name] = append([]string(nil), p.freeACs[idx:idx+spec.ACPN]...)
			idx += spec.ACPN
		}
	}
	// Commit.
	p.freeACs = p.freeACs[need:]
	for _, i := range chosen {
		p.commit(i, spec.PPN, jobID)
	}
	return hosts, acc, true
}
