// Package maui implements a Maui-like scheduler for the extended
// TORQUE server of package pbs: priority scheduling with queue-time
// and fairshare components, optional EASY backfill, and — the paper's
// extension (Section III-E) — scheduling of dynamic accelerator
// requests, which hold the special dynqueued state and are served
// with top priority in FIFO order.
package maui

import (
	"errors"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/netsim"
	"repro/internal/pbs"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// DefaultEndpoint is the scheduler's fabric name.
const DefaultEndpoint = "maui"

// Params configures scheduling policy and the cycle cost model.
type Params struct {
	// Endpoint is the scheduler's fabric name (DefaultEndpoint if
	// empty).
	Endpoint string
	// CycleInterval is the idle re-poll period; kicks from the server
	// trigger cycles earlier.
	CycleInterval time.Duration
	// CycleOverhead is the fixed cost per scheduling iteration
	// (queue retrieval, policy setup).
	CycleOverhead time.Duration
	// PerJobCost is the scheduling cost per queued job examined. A
	// dynamic request arriving while a cycle works through a long
	// backlog waits accordingly (Figure 8).
	PerJobCost time.Duration
	// DynPerReqCost is the scheduling cost per dynamic request.
	DynPerReqCost time.Duration
	// ArbiterPerJobCost is the global arbiter's per-proposal commit
	// cost in partitioned cycles (PerJobCost/8 when zero). It is the
	// serial remainder of a partitioned cycle: candidate scoring
	// parallelizes across partitions, committing does not.
	ArbiterPerJobCost time.Duration
	// Partitions selects the cycle architecture. 0 or 1 keeps the
	// faithful single global cycle: every queued job costs PerJobCost
	// serially, which grows linearly with the backlog (the paper's
	// Figure 8 serialization). Values above 1 enable the partitioned
	// cycle (partition.go): nodes and queue are dealt across that many
	// partitions whose candidate scoring overlaps in virtual time — a
	// cycle pays the slowest partition, not the sum — and a small
	// global arbiter commits the proposals.
	Partitions int
	// DynTopPriority places dynamic requests ahead of all static
	// requests (the paper's policy). Disabling it is the ablation:
	// dynamic requests then compete in plain FIFO order by arrival.
	DynTopPriority bool
	// Backfill enables EASY backfill behind a blocked queue head.
	Backfill bool
	// PartialAlloc implements the paper's future-work extension
	// (Section VI): grant fewer accelerators than requested when the
	// pool is short, instead of rejecting.
	PartialAlloc bool
	// QueueTimeWeight adds priority per second of queue wait.
	QueueTimeWeight float64
	// FairshareWeight subtracts priority per unit of decayed usage of
	// the job's owner.
	FairshareWeight float64
	// FairshareDecay multiplies accumulated usage once per cycle
	// (e.g. 0.99).
	FairshareDecay float64
}

// DefaultParams is a reasonable testbed configuration.
func DefaultParams() Params {
	return Params{
		Endpoint:        DefaultEndpoint,
		CycleInterval:   500 * time.Millisecond,
		CycleOverhead:   20 * time.Millisecond,
		PerJobCost:      25 * time.Millisecond,
		DynPerReqCost:   25 * time.Millisecond,
		DynTopPriority:  true,
		Backfill:        true,
		QueueTimeWeight: 0.1,
		FairshareWeight: 1,
		FairshareDecay:  0.95,
	}
}

// Stats summarizes scheduler activity. The cycle-time fields are
// virtual durations of full scheduling iterations (fetch through
// placement) — the figure the -fig scale experiment tracks against
// cluster size.
type Stats struct {
	Cycles      int64
	JobsPlaced  int64
	DynGranted  int64
	DynRejected int64
	Backfilled  int64

	CycleTimeTotal time.Duration // sum of per-cycle virtual durations
	CycleTimeMax   time.Duration // longest single cycle
}

// CycleTimeMean reports the average virtual duration of a scheduling
// cycle (zero before the first cycle completes).
func (st Stats) CycleTimeMean() time.Duration {
	if st.Cycles == 0 {
		return 0
	}
	return st.CycleTimeTotal / time.Duration(st.Cycles)
}

// Scheduler is the Maui daemon.
type Scheduler struct {
	net      *netsim.Network
	sim      *sim.Simulation
	ep       *netsim.Endpoint
	serverEP string
	params   Params
	inst     schedInstruments
	// aud is the flight recorder (nil when auditing is off);
	// auditRunning is its cycle-local scratch set. See audit.go.
	aud          *audit.Recorder
	auditRunning map[string]bool

	mu      sync.Mutex
	usage   map[string]float64 // owner -> decayed node-seconds
	stats   Stats
	nextReq int

	// Cycle-local scratch, touched only by the scheduler actor (or a
	// test driving RunCycleOnce). The pools and the priority/order
	// buffers persist across cycles so a steady-state iteration reuses
	// their storage instead of rebuilding it.
	pools *pools
	prio  []float64
	order []int

	// In-flight decision tracking: job IDs and dyn request IDs whose
	// Alloc/DynAllocCmd was sent but may not yet be reflected in the
	// server's snapshot. With the faithful server the FIFO loop
	// guarantees commands land before the next SchedInfoReq, so these
	// never match a snapshot entry; with the sharded server the
	// snapshot (shard 0) can race a command still queued on another
	// shard, and without suppression the scheduler would re-place the
	// job and double-commit cycle-pool capacity. Entries expire after
	// inflightWindow cycles so a genuinely dropped allocation retries.
	inflight    map[string]uint64 // job ID -> cycleIndex at placement
	dynInflight map[int]uint64    // dyn ReqID -> cycleIndex at grant
	cycleIndex  uint64

	// Partitioned-cycle scratch (see partition.go), persisted across
	// cycles like the buffers above.
	partPools []*pools
	partNodes [][]pbs.NodeInfo
	partJobs  [][]int
	proposals []proposal
	rescue    []int
}

// schedInstruments are the scheduler's live metrics, resolved once at
// construction (nil no-op handles when telemetry is off).
type schedInstruments struct {
	cycle      *telemetry.Histogram // full-iteration virtual duration
	occupancy  *telemetry.Occupancy // time spent inside cycles
	queueDepth *telemetry.Gauge     // schedulable queue at cycle start
	placed     *telemetry.Counter
	backfill   *telemetry.Counter
	idle       *telemetry.Counter // cycles whose snapshot had no work
}

// New creates a scheduler speaking to the given server endpoint.
func New(net *netsim.Network, serverEP string, params Params) *Scheduler {
	if params.Endpoint == "" {
		params.Endpoint = DefaultEndpoint
	}
	reg := net.Sim().Telemetry()
	sc := &Scheduler{
		net:         net,
		sim:         net.Sim(),
		ep:          net.Endpoint(params.Endpoint),
		serverEP:    serverEP,
		params:      params,
		usage:       make(map[string]float64),
		inflight:    make(map[string]uint64),
		dynInflight: make(map[int]uint64),
		inst: schedInstruments{
			cycle:      reg.Histogram("maui.cycle"),
			occupancy:  reg.Occupancy("maui.occupancy"),
			queueDepth: reg.Gauge("maui.queue_depth"),
			placed:     reg.Counter("maui.placed"),
			backfill:   reg.Counter("maui.backfill_hits"),
			idle:       reg.Counter("maui.idle_cycles"),
		},
	}
	sc.registerAudit()
	return sc
}

// Endpoint returns the scheduler's fabric name.
func (sc *Scheduler) Endpoint() string { return sc.ep.Name() }

// Stats returns a snapshot of scheduler counters.
func (sc *Scheduler) Stats() Stats {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.stats
}

// Usage returns the decayed fairshare usage of an owner.
func (sc *Scheduler) Usage(owner string) float64 {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.usage[owner]
}

// Start spawns the scheduler actor: cycles run on kicks from the
// server and at least every CycleInterval.
func (sc *Scheduler) Start() {
	sc.sim.Go("maui", func() {
		for {
			m, err := sc.ep.RecvTimeout(sc.params.CycleInterval)
			m.Release()
			if err != nil && !errors.Is(err, netsim.ErrTimeout) {
				return
			}
			// Coalesce pending kicks: one cycle serves them all.
			for sc.ep.Pending() > 0 {
				m, err := sc.ep.Recv()
				m.Release()
				if err != nil {
					return
				}
			}
			if !sc.runCycle() {
				return
			}
		}
	})
}

// RunCycleOnce performs a single scheduling iteration synchronously
// (for tests and single-stepped experiments).
func (sc *Scheduler) RunCycleOnce() { sc.runCycle() }

// fetchInfo pulls queue and node state from the server. The returned
// snapshot is pooled: the caller owns it until it calls Release.
func (sc *Scheduler) fetchInfo() (*pbs.SchedInfoResp, error) {
	sc.mu.Lock()
	sc.nextReq++
	id := sc.nextReq
	sc.mu.Unlock()
	if err := sc.ep.Send(sc.serverEP, "pbs", pbs.SchedInfoReq{ReqID: id, ReplyTo: sc.ep.Name()}, 0); err != nil {
		return nil, err
	}
	m, err := sc.ep.RecvMatch(func(m *netsim.Message) bool {
		r, ok := m.Payload.(*pbs.SchedInfoResp)
		return ok && r.ReqID == id
	})
	if err != nil {
		return nil, err
	}
	resp := m.Payload.(*pbs.SchedInfoResp)
	m.Release()
	return resp, nil
}

// runCycle is one scheduling iteration. It returns false when the
// fabric has closed.
func (sc *Scheduler) runCycle() bool {
	start := sc.sim.Now()
	ok := sc.cycle()
	if ok {
		d := sc.sim.Now() - start
		sc.inst.cycle.Record(d)
		sc.inst.occupancy.OnFor(d)
		sc.mu.Lock()
		sc.stats.CycleTimeTotal += d
		if d > sc.stats.CycleTimeMax {
			sc.stats.CycleTimeMax = d
		}
		sc.mu.Unlock()
	}
	return ok
}

// cycle does the work of one scheduling iteration. Each phase (fetch,
// pool build, dyn fit, static fit) runs under its own child span of
// sched.cycle, giving the per-phase timing the paper's Figure 8
// analysis needs.
func (sc *Scheduler) cycle() bool {
	cyc := sc.sim.Tracer().Start("maui", "sched.cycle")
	defer cyc.End()

	fetch := cyc.Child("fetch")
	info, err := sc.fetchInfo()
	fetch.End()
	if err != nil {
		return false
	}
	// The snapshot (and everything aliasing its buffers, including the
	// pools built below) is valid until this release.
	defer info.Release()
	sc.auditSnapshot(info)
	sc.sim.Sleep(sc.params.CycleOverhead)
	sc.cycleIndex++
	// Expire stale in-flight entries occasionally so the maps track
	// only live decisions (each entry is judged alone, so the walk
	// order is immaterial).
	if len(sc.inflight)+len(sc.dynInflight) > 2*len(info.Queued)+64 {
		for id, at := range sc.inflight {
			if sc.cycleIndex-at >= inflightWindow {
				delete(sc.inflight, id)
			}
		}
		for req, at := range sc.dynInflight {
			if sc.cycleIndex-at >= inflightWindow {
				delete(sc.dynInflight, req)
			}
		}
	}
	sc.mu.Lock()
	sc.stats.Cycles++
	if sc.params.FairshareDecay > 0 {
		for k := range sc.usage {
			sc.usage[k] *= sc.params.FairshareDecay
		}
	}
	sc.mu.Unlock()
	if len(info.Queued) == 0 && len(info.Dyn) == 0 {
		sc.inst.idle.Inc()
	}

	if sc.params.Partitions > 1 {
		return sc.partitionedCycle(info, cyc)
	}
	pb := cyc.Child("pools")
	if sc.pools == nil {
		sc.pools = &pools{index: make(map[string]int)}
	}
	p := sc.pools
	p.reset(info.Nodes)
	pb.End()
	if trc := sc.sim.Tracer(); trc != nil {
		trc.Gauge("maui.queue_depth", float64(len(info.Queued)))
		trc.Gauge("maui.dyn_backlog", float64(len(info.Dyn)))
		trc.Gauge("maui.free_acs", float64(len(p.freeACs)))
	}
	sc.inst.queueDepth.Set(float64(len(info.Queued)))

	if sc.params.DynTopPriority {
		dyn := cyc.Child("dyn")
		sc.scheduleDyn(info.Dyn, p, dyn)
		dyn.End()
		st := cyc.Child("static")
		sc.scheduleStatic(info, p, st)
		st.End()
		return true
	}
	// Ablation: merge dynamic requests into the FIFO stream by
	// arrival time — they wait behind earlier static submissions.
	fifo := cyc.Child("fifo")
	sc.schedulePlainFIFO(info, p, fifo)
	fifo.End()
	return true
}

// allocDyn picks hosts for one dynamic request according to its kind.
func (sc *Scheduler) allocDyn(r pbs.SchedDynView, p *pools) []string {
	if r.Kind == pbs.KindCompute {
		return p.takeCNs(r.Count, r.PPN, r.JobID)
	}
	hosts := p.takeACs(r.Count)
	if hosts == nil && sc.params.PartialAlloc && len(p.freeACs) > 0 {
		hosts = p.takeACs(len(p.freeACs))
	}
	return hosts
}

// scheduleDyn serves dynamic requests first, FIFO (paper policy).
func (sc *Scheduler) scheduleDyn(reqs []pbs.SchedDynView, p *pools, phase *trace.Span) {
	for _, r := range reqs {
		if sc.skipInflightDyn(r.ReqID) {
			continue
		}
		var sp *trace.Span
		if phase != nil {
			sp = phase.Child("sched.dyn", "job", r.JobID, "req", strconv.Itoa(r.ReqID), "count", strconv.Itoa(r.Count))
		}
		sc.sim.Sleep(sc.params.DynPerReqCost)
		hosts := sc.allocDyn(r, p)
		sc.dynInflight[r.ReqID] = sc.cycleIndex
		sc.mu.Lock()
		if len(hosts) > 0 {
			sc.stats.DynGranted++
		} else {
			sc.stats.DynRejected++
		}
		sc.mu.Unlock()
		sp.Annotate("granted", strconv.FormatBool(len(hosts) > 0))
		sp.End()
		sc.sendCause(pbs.DynAllocCmd{ReqID: r.ReqID, Hosts: hosts, Cause: sp.ID()}, sp.ID())
	}
}

// inflightWindow is how many cycles a placed job (or granted dyn
// request) is suppressed from re-placement while its command may
// still be queued on a server shard. Shard batches drain in a few
// virtual milliseconds, well inside one cycle interval; the second
// cycle of slack covers a kick-coalesced back-to-back iteration.
const inflightWindow = 2

// skipInflight reports whether a queued job's allocation is still in
// flight, expiring stale entries so a dropped allocation retries.
func (sc *Scheduler) skipInflight(id string) bool {
	at, ok := sc.inflight[id]
	if !ok {
		return false
	}
	if sc.cycleIndex-at >= inflightWindow {
		delete(sc.inflight, id)
		return false
	}
	return true
}

// skipInflightDyn is skipInflight for dynamic request grants.
func (sc *Scheduler) skipInflightDyn(req int) bool {
	at, ok := sc.dynInflight[req]
	if !ok {
		return false
	}
	if sc.cycleIndex-at >= inflightWindow {
		delete(sc.dynInflight, req)
		return false
	}
	return true
}

// priority computes a job's dynamic priority.
func (sc *Scheduler) priority(j pbs.JobInfo) float64 {
	wait := (sc.sim.Now() - j.SubmittedAt).Seconds()
	sc.mu.Lock()
	u := sc.usage[j.Spec.Owner]
	sc.mu.Unlock()
	return float64(j.Spec.Priority) + sc.params.QueueTimeWeight*wait - sc.params.FairshareWeight*u
}

// scheduleStatic orders the queue by priority and places jobs,
// optionally backfilling behind a blocked head. It reads the snapshot's
// queue in place through a sorted index — no per-cycle copy of the job
// list — and keeps the priority/order buffers on the scheduler.
func (sc *Scheduler) scheduleStatic(info *pbs.SchedInfoResp, p *pools, phase *trace.Span) {
	queued := info.Queued
	// Compute each priority once up front: virtual time stands still
	// during the sort, so the values cannot change, and a comparator
	// that takes the scheduler lock costs O(n log n) mutex round
	// trips on the long queues of large clusters.
	prio := sc.prio
	if cap(prio) < len(queued) {
		prio = make([]float64, len(queued))
	}
	prio = prio[:len(queued)]
	sc.prio = prio
	now := sc.sim.Now()
	sc.mu.Lock()
	for i := range queued {
		j := &queued[i]
		wait := (now - j.SubmittedAt).Seconds()
		prio[i] = float64(j.Spec.Priority) + sc.params.QueueTimeWeight*wait - sc.params.FairshareWeight*sc.usage[j.Spec.Owner]
	}
	sc.mu.Unlock()
	order := sc.order[:0]
	for i := range queued {
		order = append(order, i)
	}
	sc.order = order
	sort.SliceStable(order, func(a, b int) bool { return prio[order[a]] > prio[order[b]] })
	var shadow time.Duration = -1 // earliest start estimate of the blocked head
	for _, idx := range order {
		j := queued[idx]
		if sc.skipInflight(j.ID) {
			continue // allocation still in flight on a server shard
		}
		sc.sim.Sleep(sc.params.PerJobCost)
		if shadow >= 0 {
			// A head job is blocked; only backfill candidates that
			// finish before its reservation may start.
			if !sc.params.Backfill {
				continue
			}
			if j.Spec.Walltime <= 0 || sc.sim.Now()+j.Spec.Walltime > shadow {
				continue
			}
		}
		hosts, acc, ok := p.fit(j.Spec, j.ID)
		if !ok {
			if shadow < 0 {
				shadow = sc.shadowTime(info.Running)
				if !sc.params.Backfill {
					// Strict FIFO: the blocked head stalls the queue,
					// but we still pay the examination cost for the
					// remaining jobs (Maui walks the whole queue).
					continue
				}
			}
			continue
		}
		if shadow >= 0 {
			sc.inst.backfill.Inc()
			sc.mu.Lock()
			sc.stats.Backfilled++
			sc.mu.Unlock()
		}
		sc.place(j, hosts, acc, phase)
	}
}

// schedulePlainFIFO is the DynTopPriority ablation: one stream
// ordered by arrival, dynamic requests not prioritized.
func (sc *Scheduler) schedulePlainFIFO(info *pbs.SchedInfoResp, p *pools, phase *trace.Span) {
	type item struct {
		at  time.Duration
		job *pbs.JobInfo
		dyn *pbs.SchedDynView
	}
	var items []item
	for i := range info.Queued {
		items = append(items, item{at: info.Queued[i].SubmittedAt, job: &info.Queued[i]})
	}
	for i := range info.Dyn {
		items = append(items, item{at: info.Dyn[i].ArrivedAt, dyn: &info.Dyn[i]})
	}
	sort.SliceStable(items, func(a, b int) bool { return items[a].at < items[b].at })
	for _, it := range items {
		if it.dyn != nil {
			if sc.skipInflightDyn(it.dyn.ReqID) {
				continue
			}
			var sp *trace.Span
			if phase != nil {
				sp = phase.Child("sched.dyn", "job", it.dyn.JobID, "req", strconv.Itoa(it.dyn.ReqID))
			}
			sc.sim.Sleep(sc.params.DynPerReqCost)
			hosts := sc.allocDyn(*it.dyn, p)
			sc.dynInflight[it.dyn.ReqID] = sc.cycleIndex
			sc.mu.Lock()
			if len(hosts) > 0 {
				sc.stats.DynGranted++
			} else {
				sc.stats.DynRejected++
			}
			sc.mu.Unlock()
			sp.End()
			sc.sendCause(pbs.DynAllocCmd{ReqID: it.dyn.ReqID, Hosts: hosts, Cause: sp.ID()}, sp.ID())
			continue
		}
		if sc.skipInflight(it.job.ID) {
			continue
		}
		sc.sim.Sleep(sc.params.PerJobCost)
		if hosts, acc, ok := p.fit(it.job.Spec, it.job.ID); ok {
			sc.place(*it.job, hosts, acc, phase)
		}
	}
}

// shadowTime estimates when the blocked head job could start: the
// latest walltime-predicted end among running jobs (conservative
// EASY reservation).
func (sc *Scheduler) shadowTime(running []pbs.JobInfo) time.Duration {
	end := sc.sim.Now()
	for _, j := range running {
		est := j.StartedAt + j.Spec.Walltime
		if j.StartedAt == 0 {
			est = sc.sim.Now() + j.Spec.Walltime
		}
		if est > end {
			end = est
		}
	}
	return end
}

// place commits a static allocation: charge fairshare and notify the
// server.
func (sc *Scheduler) place(j pbs.JobInfo, hosts []string, acc map[string][]string, phase *trace.Span) {
	var sp *trace.Span
	if phase != nil {
		sp = phase.Child("place", "job", j.ID, "hosts", strings.Join(hosts, "+"))
	}
	defer sp.End()
	if trc := sc.sim.Tracer(); trc != nil {
		trc.Add("maui.placed", 1)
	}
	sc.inst.placed.Inc()
	sc.inflight[j.ID] = sc.cycleIndex
	sc.mu.Lock()
	sc.stats.JobsPlaced++
	charge := float64(j.Spec.Nodes) * j.Spec.Walltime.Seconds()
	if charge <= 0 {
		charge = float64(j.Spec.Nodes)
	}
	sc.usage[j.Spec.Owner] += charge
	sc.mu.Unlock()
	sc.sendCause(pbs.AllocCmd{JobID: j.ID, Hosts: hosts, AccHosts: acc, Cause: sp.ID()}, sp.ID())
}

func (sc *Scheduler) send(payload any) {
	_ = sc.ep.Send(sc.serverEP, "pbs", payload, 0)
}

// sendCause is send carrying the trace-span id of the scheduling
// decision that produced the command.
func (sc *Scheduler) sendCause(payload any, cause uint64) {
	_ = sc.ep.SendCause(sc.serverEP, "pbs", payload, 0, cause)
}
