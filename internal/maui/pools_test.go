package maui

import (
	"testing"

	"repro/internal/pbs"
)

func nodes(cns, acs int) []pbs.NodeInfo {
	var out []pbs.NodeInfo
	for i := 0; i < cns; i++ {
		out = append(out, pbs.NodeInfo{Name: cn(i), Type: pbs.ComputeNode, Cores: 8})
	}
	for i := 0; i < acs; i++ {
		out = append(out, pbs.NodeInfo{Name: ac(i), Type: pbs.AcceleratorNode, Cores: 1})
	}
	return out
}

func cn(i int) string { return "cn" + string(rune('0'+i)) }
func ac(i int) string { return "ac" + string(rune('0'+i)) }

func TestPoolsFitSingleNode(t *testing.T) {
	p := newPools(nodes(2, 0))
	hosts, acc, ok := p.fit(pbs.JobSpec{Nodes: 1, PPN: 4}, "tj")
	if !ok || len(hosts) != 1 || len(acc) != 0 {
		t.Fatalf("fit = %v %v %v", hosts, acc, ok)
	}
	if p.freeCores(hosts[0]) != 4 {
		t.Fatalf("free cores = %d, want 4", p.freeCores(hosts[0]))
	}
}

func TestPoolsFitMultiNodeWithAccelerators(t *testing.T) {
	p := newPools(nodes(3, 6))
	hosts, acc, ok := p.fit(pbs.JobSpec{Nodes: 2, PPN: 8, ACPN: 3}, "tj")
	if !ok {
		t.Fatal("fit failed")
	}
	if len(hosts) != 2 {
		t.Fatalf("hosts = %v", hosts)
	}
	total := 0
	for _, cn := range hosts {
		if len(acc[cn]) != 3 {
			t.Fatalf("acc[%s] = %v", cn, acc[cn])
		}
		total += len(acc[cn])
	}
	if total != 6 || len(p.freeACs) != 0 {
		t.Fatalf("accelerators not fully assigned: %v free %v", acc, p.freeACs)
	}
}

func TestPoolsFitInsufficientComputeNodes(t *testing.T) {
	p := newPools(nodes(1, 0))
	if _, _, ok := p.fit(pbs.JobSpec{Nodes: 2, PPN: 1}, "tj"); ok {
		t.Fatal("fit should fail with 1 CN for a 2-node job")
	}
	// Failure must not consume resources.
	if p.freeCores("cn0") != 8 {
		t.Fatalf("failed fit consumed cores: %d", p.freeCores("cn0"))
	}
}

func TestPoolsFitInsufficientAccelerators(t *testing.T) {
	p := newPools(nodes(1, 2))
	if _, _, ok := p.fit(pbs.JobSpec{Nodes: 1, PPN: 1, ACPN: 3}, "tj"); ok {
		t.Fatal("fit should fail: 3 ACs requested, 2 free")
	}
	if len(p.freeACs) != 2 || p.freeCores("cn0") != 8 {
		t.Fatal("failed fit consumed resources")
	}
}

func TestPoolsFitInsufficientCores(t *testing.T) {
	ns := nodes(1, 0)
	ns[0].UsedCores = 6
	p := newPools(ns)
	if _, _, ok := p.fit(pbs.JobSpec{Nodes: 1, PPN: 4}, "tj"); ok {
		t.Fatal("fit should fail: 4 cores requested, 2 free")
	}
	if _, _, ok := p.fit(pbs.JobSpec{Nodes: 1, PPN: 2}, "tj"); !ok {
		t.Fatal("fit should succeed with 2 free cores")
	}
}

func TestPoolsFitSkipsBusyAccelerators(t *testing.T) {
	ns := nodes(1, 2)
	ns[1].Jobs = []string{"1.srv"} // ac0 busy
	p := newPools(ns)
	hosts, acc, ok := p.fit(pbs.JobSpec{Nodes: 1, PPN: 1, ACPN: 1}, "tj")
	if !ok {
		t.Fatal("fit failed")
	}
	if acc[hosts[0]][0] != "ac1" {
		t.Fatalf("assigned busy accelerator: %v", acc)
	}
}

func TestTakeACs(t *testing.T) {
	p := newPools(nodes(0, 3))
	got := p.takeACs(2)
	if len(got) != 2 || len(p.freeACs) != 1 {
		t.Fatalf("takeACs = %v, remaining %v", got, p.freeACs)
	}
	if p.takeACs(2) != nil {
		t.Fatal("takeACs should fail when short")
	}
	if got := p.takeACs(1); len(got) != 1 {
		t.Fatalf("takeACs(1) = %v", got)
	}
	if got := p.takeACs(0); len(got) != 0 {
		t.Fatalf("takeACs(0) = %v, want empty", got)
	}
}

func TestTakeCNsMalleable(t *testing.T) {
	ns := nodes(3, 0)
	ns[0].Jobs = []string{"1.srv"} // cn0 partially used by the requesting job
	ns[0].UsedCores = 4
	p := newPools(ns)
	got := p.takeCNs(2, 4, "1.srv")
	if len(got) != 2 {
		t.Fatalf("takeCNs = %v", got)
	}
	for _, cn := range got {
		if cn == "cn0" {
			t.Fatalf("granted the job's own node: %v", got)
		}
	}
	if p.freeCores("cn1") != 4 || p.freeCores("cn2") != 4 {
		t.Fatalf("cores not committed: %d/%d", p.freeCores("cn1"), p.freeCores("cn2"))
	}
}

func TestTakeCNsInsufficient(t *testing.T) {
	p := newPools(nodes(2, 0))
	if got := p.takeCNs(3, 1, "j"); got != nil {
		t.Fatalf("takeCNs should fail, got %v", got)
	}
	if p.freeCores("cn0") != 8 || p.freeCores("cn1") != 8 {
		t.Fatal("failed takeCNs consumed cores")
	}
	if got := p.takeCNs(1, 9, "j"); got != nil {
		t.Fatalf("ppn beyond capacity should fail, got %v", got)
	}
	if got := p.takeCNs(1, 0, "j"); got != nil {
		t.Fatalf("non-positive ppn should fail, got %v", got)
	}
}

func TestTakeCNsSkipsDownNodes(t *testing.T) {
	ns := nodes(2, 0)
	ns[0].Down = true
	p := newPools(ns)
	got := p.takeCNs(1, 1, "j")
	if len(got) != 1 || got[0] != "cn1" {
		t.Fatalf("takeCNs = %v, want [cn1]", got)
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if !p.DynTopPriority || !p.Backfill {
		t.Fatal("defaults should enable DynTopPriority and Backfill")
	}
	if p.Endpoint != DefaultEndpoint {
		t.Fatalf("endpoint = %q", p.Endpoint)
	}
}
