package maui

import (
	"sort"

	"repro/internal/audit"
	"repro/internal/pbs"
)

// Flight-recorder integration for the scheduler: a KindCycle event
// per iteration, consistency checks over every fetched snapshot (the
// pbs/maui view-agreement half of the audit — the server checks its
// own books in auditCheckLocked, the scheduler checks that the view
// it was handed is coherent), and a digest of the policy state. All
// nil-safe no-ops when no recorder is installed.
//
// Invariant names:
//
//	view.agreement   every job a node in the snapshot advertises
//	                 appears in the snapshot's running list — the
//	                 scheduler and server agree on who holds what
//	view.capacity    every node in the snapshot reports a usage
//	                 within [0, Cores], and accelerators at most one
//	                 occupant
func (sc *Scheduler) registerAudit() {
	sc.aud = sc.net.Sim().Audit()
	sc.aud.RegisterDigest("maui", "maui.sched", sc.digestSched)
}

// auditSnapshot checks one fetched scheduler snapshot for internal
// coherence and records the cycle-boundary event.
func (sc *Scheduler) auditSnapshot(info *pbs.SchedInfoResp) {
	a := sc.aud
	if a == nil {
		return
	}
	if sc.auditRunning == nil {
		sc.auditRunning = make(map[string]bool)
	}
	clear(sc.auditRunning)
	for i := range info.Running {
		sc.auditRunning[info.Running[i].ID] = true
	}
	for i := range info.Nodes {
		n := &info.Nodes[i]
		free := n.FreeCores()
		capOK := free >= 0 && n.UsedCores >= 0
		if n.Type == pbs.AcceleratorNode {
			capOK = capOK && len(n.Jobs) <= 1
		}
		a.Check("maui", "view.capacity", n.Name, capOK, int64(n.UsedCores), int64(n.Cores))
		for _, id := range n.Jobs {
			a.Check("maui", "view.agreement", n.Name, sc.auditRunning[id], int64(len(n.Jobs)), 0)
		}
	}
	a.Record(audit.KindCycle, "maui", "snapshot", "", int64(len(info.Queued)), int64(len(info.Dyn)))
}

// digestSched hashes the scheduler's policy state: the cycle and
// placement counters plus the fairshare ledger in sorted owner order.
func (sc *Scheduler) digestSched(d *audit.Digest) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	d.WriteInt(sc.stats.Cycles)
	d.WriteInt(sc.stats.JobsPlaced)
	d.WriteInt(sc.stats.DynGranted)
	d.WriteInt(sc.stats.DynRejected)
	d.WriteInt(sc.stats.Backfilled)
	owners := make([]string, 0, len(sc.usage))
	for o := range sc.usage {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	d.WriteInt(int64(len(owners)))
	for _, o := range owners {
		d.WriteString(o)
		// Quantize to microshares: the fairshare ledger is a float
		// accumulator, and hashing raw bits would make the digest
		// hostage to non-semantic last-ulp noise.
		d.WriteInt(int64(sc.usage[o] * 1e6))
	}
}
