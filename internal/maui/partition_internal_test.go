package maui

import (
	"testing"

	"repro/internal/pbs"
)

// resetPartitions must deal the node snapshot round-robin so every
// partition's capacity mix mirrors the whole cluster.
func TestResetPartitionsDealsRoundRobin(t *testing.T) {
	sc := &Scheduler{}
	ns := nodes(8, 4) // snapshot order: cn0..cn7, ac0..ac3
	sc.resetPartitions(ns, 3)

	if len(sc.partPools) < 3 || len(sc.partNodes) < 3 {
		t.Fatalf("partitions not built: pools %d, nodes %d", len(sc.partPools), len(sc.partNodes))
	}
	total := 0
	for pi := 0; pi < 3; pi++ {
		total += len(sc.partNodes[pi])
	}
	if total != len(ns) {
		t.Fatalf("dealt %d nodes, want %d", total, len(ns))
	}
	// Snapshot index i lands in partition i%3.
	for i := range ns {
		pi := i % 3
		p := sc.partPools[pi]
		if ns[i].Type == pbs.ComputeNode {
			if p.freeCores(ns[i].Name) != 8 {
				t.Errorf("partition %d missing %s (free %d)", pi, ns[i].Name, p.freeCores(ns[i].Name))
			}
			// And no other partition should know it.
			for q := 0; q < 3; q++ {
				if q != pi && sc.partPools[q].freeCores(ns[i].Name) != 0 {
					t.Errorf("partition %d also holds %s", q, ns[i].Name)
				}
			}
		}
	}
	// Accelerators split across partitions without loss.
	freeACs := 0
	for pi := 0; pi < 3; pi++ {
		freeACs += len(sc.partPools[pi].freeACs)
	}
	if freeACs != 4 {
		t.Errorf("free ACs across partitions = %d, want 4", freeACs)
	}

	// A second reset with a different count reuses storage safely.
	sc.resetPartitions(ns, 2)
	total = len(sc.partNodes[0]) + len(sc.partNodes[1])
	if total != len(ns) {
		t.Fatalf("after re-deal to 2 partitions: %d nodes, want %d", total, len(ns))
	}
}
