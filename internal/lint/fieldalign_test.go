package lint_test

import (
	"go/types"
	"sort"
	"testing"
)

// hotStructs are the structs on the simulator's per-message and
// per-cycle paths. The test pins their 64-bit layouts to the optimal
// size any field ordering can achieve, so a refactor cannot silently
// re-introduce reducible padding (the pass is manual, via
// types.Sizes; 8-byte gc layout as on amd64/arm64).
var hotStructs = map[string][]string{
	"repro/internal/netsim": {"LinkParams", "Message", "Stats", "Network", "pairState", "Endpoint"},
	"repro/internal/maui":   {"Params", "Stats", "Scheduler", "pools", "cnState"},
}

func roundUp(n, align int64) int64 { return (n + align - 1) / align * align }

// optimalSize returns the smallest size any field ordering of st can
// achieve: laying fields out by decreasing alignment leaves no
// internal padding (every Go type's size is a multiple of its
// alignment), so only the trailing round-up to the struct alignment
// remains — and that is identical for every ordering.
func optimalSize(sizes types.Sizes, st *types.Struct) int64 {
	type field struct{ size, align int64 }
	fields := make([]field, st.NumFields())
	var maxAlign int64 = 1
	for i := range fields {
		ft := st.Field(i).Type()
		fields[i] = field{sizes.Sizeof(ft), sizes.Alignof(ft)}
		if fields[i].align > maxAlign {
			maxAlign = fields[i].align
		}
	}
	sort.SliceStable(fields, func(i, j int) bool { return fields[i].align > fields[j].align })
	var off int64
	for _, f := range fields {
		off = roundUp(off, f.align) + f.size
	}
	return roundUp(off, maxAlign)
}

func TestHotPathStructLayoutsOptimal(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	// 64-bit gc layout; 32-bit targets pack differently and are not
	// what the benchmarks run on.
	sizes := types.SizesFor("gc", "amd64")
	byPath := make(map[string]bool)
	for _, pkg := range loadRepo(t) {
		want, ok := hotStructs[pkg.Path]
		if !ok {
			continue
		}
		byPath[pkg.Path] = true
		scope := pkg.Types.Scope()
		for _, name := range want {
			obj := scope.Lookup(name)
			if obj == nil {
				t.Errorf("%s: struct %s no longer exists; update hotStructs", pkg.Path, name)
				continue
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				t.Errorf("%s.%s is no longer a struct", pkg.Path, name)
				continue
			}
			if got, best := sizes.Sizeof(st), optimalSize(sizes, st); got > best {
				t.Errorf("%s.%s: %d bytes, but an alignment-ordered layout fits in %d; reorder fields (wide first, narrow and bool fields together at the end)",
					pkg.Path, name, got, best)
			}
		}
	}
	for path := range hotStructs {
		if !byPath[path] {
			t.Errorf("package %s not loaded; update hotStructs", path)
		}
	}
}
