package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// wallClockFuncs are the package time entry points that read or wait
// on the host clock. Simulation code must use the virtual clock
// ((*sim.Simulation).Now/Sleep/After/At) instead: a single wall-clock
// read in a hot path silently couples figure output to host speed.
var wallClockFuncs = map[string]string{
	"Now":       "(*sim.Simulation).Now",
	"Sleep":     "(*sim.Simulation).Sleep",
	"After":     "(*sim.Simulation).After",
	"AfterFunc": "(*sim.Simulation).After",
	"Tick":      "a sim.Gate driven by (*sim.Simulation).After",
	"NewTicker": "a sim.Gate driven by (*sim.Simulation).After",
	"NewTimer":  "(*sim.Simulation).After",
	"Since":     "durations of (*sim.Simulation).Now",
	"Until":     "durations of (*sim.Simulation).Now",
}

// NewWalltime returns the walltime analyzer: it forbids wall-clock
// reads and waits (time.Now, time.Sleep, time.After, time.AfterFunc,
// time.Tick, time.NewTicker, time.NewTimer, time.Since, time.Until)
// outside the packages whose import paths match the allowed prefixes
// (the real-IO/CLI layer).
func NewWalltime(allowed ...string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "walltime",
		Doc: "forbid wall-clock time in simulation code; use the virtual clock in internal/sim " +
			"so runs stay deterministic and host-speed independent",
	}
	a.Run = func(pass *analysis.Pass) error {
		if hasPrefixAny(pass.Pkg.Path(), allowed) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.Callee(pass.TypesInfo, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods like time.Time.After compare values; only package-level reads touch the host clock
				}
				if instead, bad := wallClockFuncs[fn.Name()]; bad {
					pass.Reportf(call.Pos(), "wall-clock time.%s in simulation code: use %s", fn.Name(), instead)
				}
				return true
			})
		}
		return nil
	}
	return a
}
