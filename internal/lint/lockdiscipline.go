package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/cfg"
)

// NewLockDiscipline returns the lockdiscipline analyzer for the
// packages matching the given import-path prefixes (all packages when
// none are given). Within each function scope (function literals are
// independent scopes — a goroutine body balances its own locks) it
// reports, per mutex expression:
//
//   - Lock/RLock with no matching Unlock/RUnlock (direct or deferred)
//     anywhere in the scope. Hand-off locking across functions is a
//     deliberate protocol and must carry a //lint:ignore explaining it.
//   - more deferred Unlocks than Locks — a deferred double unlock
//     that panics at runtime on the path that reaches both defers.
//   - sync.Mutex/RWMutex values copied by value: value parameters,
//     plain value assignments, and range-value copies of types that
//     contain a lock.
//
// Direct (non-deferred) Unlock imbalances are deliberately not
// counted: early-return branches legitimately unlock more than once
// textually.
func NewLockDiscipline(scope ...string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "lockdiscipline",
		Doc: "flag Lock without a same-function Unlock, deferred double unlocks, and locks " +
			"copied by value in the scheduler/server/network/trace hot paths",
	}
	a.Run = func(pass *analysis.Pass) error {
		if len(scope) > 0 && !hasPrefixAny(pass.Pkg.Path(), scope) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						checkLockScope(pass, n.Body)
						checkValueParams(pass, n.Type)
					}
				case *ast.FuncLit:
					checkLockScope(pass, n.Body)
					checkValueParams(pass, n.Type)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// lockUse tallies the lock traffic for one mutex expression within
// one function scope.
type lockUse struct {
	pos                    token.Pos // first Lock (or first use)
	locks, rlocks          int
	unlocks, runlocks      int // direct or deferred
	deferUnl, deferRUnlock int
	lastDefer              token.Pos
}

func checkLockScope(pass *analysis.Pass, body *ast.BlockStmt) {
	uses := make(map[string]*lockUse)
	order := []string{}
	record := func(call *ast.CallExpr, deferred bool) {
		name, key := lockMethod(pass, call)
		if name == "" {
			return
		}
		u := uses[key]
		if u == nil {
			u = &lockUse{pos: call.Pos()}
			uses[key] = u
			order = append(order, key)
		}
		switch name {
		case "Lock", "TryLock":
			if u.locks == 0 {
				u.pos = call.Pos()
			}
			u.locks++
		case "RLock", "TryRLock":
			u.rlocks++
		case "Unlock":
			u.unlocks++
			if deferred {
				u.deferUnl++
				u.lastDefer = call.Pos()
			}
		case "RUnlock":
			u.runlocks++
			if deferred {
				u.deferRUnlock++
				u.lastDefer = call.Pos()
			}
		}
	}

	inspectScope(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.DeferStmt:
			record(n.Call, true)
		case *ast.CallExpr:
			record(n, false)
		case *ast.AssignStmt:
			checkValueCopy(pass, n)
		case *ast.RangeStmt:
			checkRangeCopy(pass, n)
		}
	})

	for _, key := range order {
		u := uses[key]
		if u.locks > 0 && u.unlocks == 0 {
			pass.Reportf(u.pos, "%s.Lock() with no %s.Unlock() on any path in this function: unlock (usually via defer) in the same scope, or //lint:ignore with the hand-off protocol", key, key)
		}
		if u.rlocks > 0 && u.runlocks == 0 {
			pass.Reportf(u.pos, "%s.RLock() with no %s.RUnlock() on any path in this function", key, key)
		}
		if u.locks > 0 && u.deferUnl > u.locks {
			pass.Reportf(u.lastDefer, "%d deferred %s.Unlock() for %d %s.Lock(): the path reaching every defer unlocks twice and panics", u.deferUnl, key, u.locks, key)
		}
		if u.rlocks > 0 && u.deferRUnlock > u.rlocks {
			pass.Reportf(u.lastDefer, "%d deferred %s.RUnlock() for %d %s.RLock()", u.deferRUnlock, key, u.rlocks, key)
		}
	}

	checkDeferredDoubleUnlock(pass, body, uses, order)
}

// checkDeferredDoubleUnlock is the path-sensitive companion to the
// textual defer tally above: a `defer mu.Unlock()` registered on one
// branch followed by a manual `mu.Unlock()` on the fallthrough path
// unlocks twice when that path returns — the counts balance, so only
// a CFG can see it. Per mutex key we run a forward may-analysis with
// two facts, "a deferred unlock is registered and the mutex is held"
// and "... and the mutex has since been manually unlocked"; a Lock
// moves the second state back to the first (the unlock/relock dance
// around a blocking call is legal), so reaching function exit in the
// unlocked state is exactly the panic.
func checkDeferredDoubleUnlock(pass *analysis.Pass, body *ast.BlockStmt, uses map[string]*lockUse, order []string) {
	type vkey struct {
		key  string
		read bool
	}
	var keys []vkey
	idx := map[vkey]int{}
	for _, k := range order {
		u := uses[k]
		if u.deferUnl > 0 && u.unlocks > u.deferUnl {
			idx[vkey{k, false}] = len(keys)
			keys = append(keys, vkey{k, false})
		}
		if u.deferRUnlock > 0 && u.runlocks > u.deferRUnlock {
			idx[vkey{k, true}] = len(keys)
			keys = append(keys, vkey{k, true})
		}
	}
	if len(keys) == 0 {
		return
	}
	held := func(i int) int { return 2 * i }
	unheld := func(i int) int { return 2*i + 1 }

	const (
		opDeferUnlock = iota
		opManualUnlock
		opLock
		opTryLock
	)
	type lockOp struct {
		i, kind int
	}

	g := cfg.New(body, cfg.Options{})
	ops := make([][]lockOp, len(g.Blocks))
	firstDefer := make([]token.Pos, len(keys))
	classify := func(method string) (read bool, kind int, ok bool) {
		switch method {
		case "Lock":
			return false, opLock, true
		case "TryLock":
			return false, opTryLock, true
		case "RLock":
			return true, opLock, true
		case "TryRLock":
			return true, opTryLock, true
		case "Unlock":
			return false, opManualUnlock, true
		case "RUnlock":
			return true, opManualUnlock, true
		}
		return false, 0, false
	}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			scanLockOps(pass, n, func(method, key string, deferred bool, call *ast.CallExpr) {
				read, kind, ok := classify(method)
				if !ok {
					return
				}
				i, tracked := idx[vkey{key, read}]
				if !tracked {
					return
				}
				if deferred && kind == opManualUnlock {
					kind = opDeferUnlock
					if firstDefer[i] == token.NoPos || call.Pos() < firstDefer[i] {
						firstDefer[i] = call.Pos()
					}
				}
				ops[b.Index] = append(ops[b.Index], lockOp{i, kind})
			})
		}
	}

	res := cfg.Solve(g, cfg.Problem{
		Dir:      cfg.Forward,
		May:      true,
		NumFacts: 2 * len(keys),
		Transfer: func(b *cfg.Block, facts cfg.Bits) {
			for _, op := range ops[b.Index] {
				switch op.kind {
				case opDeferUnlock:
					facts.Set(held(op.i))
				case opManualUnlock:
					if facts.Has(held(op.i)) {
						facts.Clear(held(op.i))
						facts.Set(unheld(op.i))
					}
				case opLock:
					if facts.Has(unheld(op.i)) {
						facts.Clear(unheld(op.i))
						facts.Set(held(op.i))
					}
				case opTryLock:
					// The attempt may fail: the unlocked state
					// survives alongside the relocked one.
					if facts.Has(unheld(op.i)) {
						facts.Set(held(op.i))
					}
				}
			}
		},
	})

	atExit := res.In[g.Exit.Index]
	for i, vk := range keys {
		if !atExit.Has(unheld(i)) || firstDefer[i] == token.NoPos {
			continue
		}
		unl, lk := "Unlock", "Lock"
		if vk.read {
			unl, lk = "RUnlock", "RLock"
		}
		pass.Reportf(firstDefer[i],
			"deferred %s.%s() runs after %s is already unlocked on some path: a manual %s.%s() follows this defer with no %s.%s() before return, so the defer panics",
			vk.key, unl, vk.key, vk.key, unl, vk.key, lk)
	}
}

// scanLockOps reports every mutex operation inside n in source order,
// marking operations registered via defer. Function literals are
// their own lock scopes and are skipped; defer argument expressions
// are evaluated immediately, so calls inside them count as direct.
func scanLockOps(pass *analysis.Pass, n ast.Node, fn func(method, key string, deferred bool, call *ast.CallExpr)) {
	var scan func(ast.Node)
	scan = func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.RangeStmt:
				// A range.head block carries the whole RangeStmt,
				// but only the ranged-over expression evaluates
				// there — the body belongs to other blocks.
				scan(x.X)
				return false
			case *ast.DeferStmt:
				if m, k := lockMethod(pass, x.Call); m != "" {
					fn(m, k, true, x.Call)
				}
				for _, arg := range x.Call.Args {
					scan(arg)
				}
				return false
			case *ast.CallExpr:
				if m, k := lockMethod(pass, x); m != "" {
					fn(m, k, false, x)
				}
			}
			return true
		})
	}
	scan(n)
}

// inspectScope walks body without descending into nested function
// literals, which are their own lock scopes. Deferred calls are
// delivered as DeferStmt (their CallExpr is not re-delivered).
func inspectScope(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			fn(n)
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, func(a ast.Node) bool {
					if _, ok := a.(*ast.FuncLit); ok {
						return false
					}
					fn(a)
					return true
				})
			}
			return false
		default:
			fn(n)
		}
		return true
	})
}

// lockMethod resolves call to a sync.Mutex/RWMutex method and returns
// the method name and a stable string key for the receiver
// expression; it returns "" when call is not a lock operation.
func lockMethod(pass *analysis.Pass, call *ast.CallExpr) (string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		return fn.Name(), exprKey(sel.X)
	}
	return "", ""
}

// exprKey renders a receiver expression as a stable key: selector
// chains and identifiers print naturally; anything else keys by
// position so distinct expressions never alias.
func exprKey(x ast.Expr) string {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return exprKey(x.X)
	case *ast.IndexExpr:
		return exprKey(x.X) + "[...]"
	default:
		return fmt.Sprintf("expr@%d", x.Pos())
	}
}

// checkValueParams flags function parameters that carry a lock by
// value: the callee operates on a copy, so the caller's mutex never
// sees the callee's Lock.
func checkValueParams(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if containsLock(tv.Type, nil) {
			pass.Reportf(field.Type.Pos(), "parameter passes a lock by value (%s contains a sync mutex): pass a pointer", tv.Type)
		}
	}
}

// checkValueCopy flags assignments that copy an existing
// lock-containing value (composite-literal initialization is fine —
// a zero mutex may be moved before first use).
func checkValueCopy(pass *analysis.Pass, assign *ast.AssignStmt) {
	for i, rhs := range assign.Rhs {
		switch ast.Unparen(rhs).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			continue
		}
		tv, ok := pass.TypesInfo.Types[rhs]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if containsLock(tv.Type, nil) {
			pos := rhs.Pos()
			if i < len(assign.Lhs) {
				pos = assign.Lhs[i].Pos()
			}
			pass.Reportf(pos, "assignment copies a lock by value (%s contains a sync mutex)", tv.Type)
		}
	}
}

// checkRangeCopy flags `for _, v := range xs` when each iteration
// copies a lock-containing element into v.
func checkRangeCopy(pass *analysis.Pass, rs *ast.RangeStmt) {
	id, ok := rs.Value.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil || obj.Type() == nil {
		return
	}
	if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
		return
	}
	if containsLock(obj.Type(), nil) {
		pass.Reportf(id.Pos(), "range copies a lock by value (%s contains a sync mutex): range over indices or pointers", obj.Type())
	}
}

// containsLock reports whether t is, or transitively contains by
// value, a sync.Mutex or sync.RWMutex.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}
