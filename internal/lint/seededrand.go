package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// seededSources are the constructors that make rand.New acceptable
// when called inline: the seed is explicit at the call site, so the
// stream is owned by its trial and reproducible.
var seededSources = map[string]bool{
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    false, // not a source
}

// NewSeededRand returns the seededrand analyzer. It forbids the
// process-global math/rand and math/rand/v2 top-level functions
// (rand.Intn, rand.Float64, rand.Shuffle, ...), whose shared source
// makes trial output depend on goroutine interleaving, and flags
// rand.New whose source argument is not an inline seeded constructor
// (rand.NewSource(seed), rand.NewPCG(a, b), rand.NewChaCha8(seed)).
// Simulation code should draw randomness from sim.RNG, which is
// deterministic across Go releases as well.
func NewSeededRand() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "seededrand",
		Doc: "forbid global or unseeded math/rand; randomness must flow from a seeded, " +
			"trial-owned source (preferably sim.RNG) so parallel trials stay reproducible",
	}
	a.Run = func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.Callee(pass.TypesInfo, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				path := fn.Pkg().Path()
				if path != "math/rand" && path != "math/rand/v2" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods on an owned *rand.Rand are fine; the construction site is checked
				}
				switch name := fn.Name(); name {
				case "New":
					if len(call.Args) == 1 && isSeededSourceCall(pass, call.Args[0]) {
						return true
					}
					pass.Reportf(call.Pos(), "rand.New without an inline seeded source: construct as rand.New(rand.NewSource(seed)) with a trial-owned seed, or use sim.RNG")
				case "NewSource", "NewPCG", "NewChaCha8":
					// Seeded constructors are fine on their own; the
					// New wrapper above checks how they are used.
				default:
					pass.Reportf(call.Pos(), "rand.%s uses the process-global math/rand source: use a seeded sim.RNG (or rand.New(rand.NewSource(seed))) owned by the trial", name)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// isSeededSourceCall reports whether arg is a direct call to one of
// the seeded source constructors of math/rand or math/rand/v2.
func isSeededSourceCall(pass *analysis.Pass, arg ast.Expr) bool {
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
		return false
	}
	return seededSources[fn.Name()]
}
