package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/linttest"
)

func TestWalltime(t *testing.T) {
	a := lint.NewWalltime("wallclockok")
	linttest.Run(t, "testdata", []*analysis.Analyzer{a}, "wallsim", "wallclockok")
}

func TestSeededRand(t *testing.T) {
	linttest.Run(t, "testdata", []*analysis.Analyzer{lint.NewSeededRand()}, "randbad")
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, "testdata", []*analysis.Analyzer{lint.NewMapOrder()}, "mapout")
}

func TestLockDiscipline(t *testing.T) {
	linttest.Run(t, "testdata", []*analysis.Analyzer{lint.NewLockDiscipline()}, "locks")
}

func TestVTCtx(t *testing.T) {
	a := lint.NewVTCtx("actor")
	linttest.Run(t, "testdata", []*analysis.Analyzer{a}, "actor", "hostpool")
}

func TestSpanBalance(t *testing.T) {
	linttest.Run(t, "testdata", []*analysis.Analyzer{lint.NewSpanBalance()}, "spans")
}

func TestMetricName(t *testing.T) {
	linttest.Run(t, "testdata", []*analysis.Analyzer{lint.NewMetricName()}, "metricnames")
}

func TestActorOwn(t *testing.T) {
	a := lint.NewActorOwn([]string{"(*actorsim.Sim).Go"})
	linttest.Run(t, "testdata", []*analysis.Analyzer{a}, "actorstate")
}

func TestHandlerExhaustive(t *testing.T) {
	linttest.Run(t, "testdata", []*analysis.Analyzer{lint.NewHandlerExhaustive()}, "handlers")
}

func TestDigestDet(t *testing.T) {
	linttest.Run(t, "testdata", []*analysis.Analyzer{lint.NewDigestDet()}, "digests")
}

func TestPoolBalance(t *testing.T) {
	a := lint.NewPoolBalance("(*poolbal.Conn).Recv", "(*poolbal.Conn).TryRecv", "poolbal.Acquire")
	linttest.Run(t, "testdata", []*analysis.Analyzer{a}, "poolbal")
}

// TestIgnoreDirectives covers the suppression contract end to end:
// wrong-name directives suppress nothing, multi-name and same-line
// directives suppress their named analyzers.
func TestIgnoreDirectives(t *testing.T) {
	a := lint.NewWalltime()
	linttest.Run(t, "testdata", []*analysis.Analyzer{a}, "ignores")
}

// TestMalformedIgnore asserts that a //lint:ignore with no reason is
// itself reported and does not suppress the finding below it.
func TestMalformedIgnore(t *testing.T) {
	pkg, err := linttest.Load("testdata", "badignore")
	if err != nil {
		t.Fatalf("loading badignore: %v", err)
	}
	diags, err := lint.Run(pkg, []*analysis.Analyzer{lint.NewWalltime()})
	if err != nil {
		t.Fatalf("running: %v", err)
	}
	var sawMalformed, sawWalltime bool
	for _, d := range diags {
		switch d.Category {
		case "ignore":
			sawMalformed = true
			if !strings.Contains(d.Message, "non-empty reason") {
				t.Errorf("malformed-directive message = %q", d.Message)
			}
		case "walltime":
			sawWalltime = true
		}
	}
	if !sawMalformed {
		t.Error("reasonless //lint:ignore was not reported")
	}
	if !sawWalltime {
		t.Error("reasonless //lint:ignore suppressed the walltime finding")
	}
}

// TestSuite pins the shipped analyzer set: eleven analyzers, stable
// names, stable order — the CI job summary keys off these names.
func TestSuite(t *testing.T) {
	want := []string{"walltime", "seededrand", "maporder", "lockdiscipline", "vtctx", "spanbalance", "metricname", "poolbalance", "handlerexhaustive", "actorown", "digestdet"}
	suite := lint.Suite()
	if len(suite) != len(want) {
		t.Fatalf("Suite() has %d analyzers, want %d", len(suite), len(want))
	}
	for i, a := range suite {
		if a.Name != want[i] {
			t.Errorf("Suite()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}
