// Package analysis is a self-contained core of the
// golang.org/x/tools/go/analysis API, reimplemented on the standard
// library so the repository's static checks build without network
// access or external modules. The shapes (Analyzer, Pass, Diagnostic)
// deliberately mirror x/tools so the suite can migrate to the real
// framework by swapping this import.
//
// An Analyzer inspects one type-checked package at a time and reports
// Diagnostics through its Pass. Drivers (cmd/daclint, the linttest
// harness, the in-repo self-check test) construct the Pass, run the
// analyzer, and decide how to surface the diagnostics.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. It must be a valid identifier.
	Name string

	// Doc is the one-paragraph help text: what invariant the check
	// enforces and why.
	Doc string

	// Run applies the check to a single package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Drivers install it; analyzers
	// normally call Reportf instead.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string // the reporting analyzer's name
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// NewInfo returns a types.Info with every map an analyzer in this
// suite consults pre-allocated. Drivers pass it to types.Config.Check.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Callee resolves the called function or method of a call expression
// to its types.Func, or nil for calls through function values,
// builtins, and type conversions. It follows both plain identifiers
// (possibly dot-imported or aliased) and selector expressions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // package-qualified call
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsPkgFunc reports whether call invokes the package-level function
// pkgpath.name (not a method).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgpath, name string) bool {
	fn := Callee(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgpath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}
