package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/cfg"
)

// NewPoolBalance returns the poolbalance analyzer: every value
// obtained from an arena or pool source must be released exactly once
// on every control-flow path, unless it provably escapes to a sink
// that takes ownership.
//
// sources name the acquisition points as "pkgpath.Func" for
// package-level functions or "(*pkgpath.Type).Method" for methods;
// (*sync.Pool).Get is always a source. A release is a no-argument
// Release() call on the tracked variable or handing it to
// (*sync.Pool).Put. The analysis is a forward may-analysis over the
// function's CFG with three facts per variable (live, released,
// err-linked) and per-edge refinement: branches on `v == nil` or on
// the error paired with the acquisition kill the variable on the
// nil/error edge, so the ubiquitous `m, err := ep.Recv(); if err !=
// nil { return }` shape needs no annotation.
//
// Ownership hand-offs end tracking instead of demanding a release:
// passing the value as a call argument (other than to Release/Put),
// returning it, storing it into a composite/field/map/slice/channel,
// capturing it in a function literal, or `_ = v`. Reads through the
// value (v.Field, v.Payload.(T), comparisons, method receivers) do
// not count as hand-offs, so holding a message only to read its
// payload and then leaking it is still reported.
func NewPoolBalance(sources ...string) *analysis.Analyzer {
	pats := []callPat{{pkg: "sync", recv: "Pool", name: "Get"}}
	for _, s := range sources {
		pats = append(pats, parseCallPat(s))
	}
	a := &analysis.Analyzer{
		Name: "poolbalance",
		Doc: "flag pool/arena values (netsim messages, sim.Acquire, sync.Pool) that are not " +
			"released exactly once on every control-flow path and do not escape to an owner",
	}
	a.Run = func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
				case *ast.FuncLit:
					body = fn.Body
				}
				if body != nil {
					checkPoolScope(pass, pats, body)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// callPat matches a package function or a method by package path,
// receiver type name (empty for package functions), and name.
type callPat struct{ pkg, recv, name string }

// parseCallPat parses "pkgpath.Func" or "(*pkgpath.Type).Method"
// (the pointer star is optional and ignored for matching).
func parseCallPat(s string) callPat {
	if strings.HasPrefix(s, "(") {
		i := strings.Index(s, ")")
		recv := strings.TrimPrefix(s[1:i], "*")
		name := strings.TrimPrefix(s[i+1:], ".")
		j := strings.LastIndex(recv, ".")
		return callPat{pkg: recv[:j], recv: recv[j+1:], name: name}
	}
	j := strings.LastIndex(s, ".")
	return callPat{pkg: s[:j], name: s[j+1:]}
}

func (p callPat) match(fn *types.Func) bool {
	if fn == nil || fn.Name() != p.name || fn.Pkg() == nil || fn.Pkg().Path() != p.pkg {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if p.recv == "" {
		return recv == nil
	}
	if recv == nil {
		return false
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == p.recv
}

// poolVar is one tracked variable within one function scope.
type poolVar struct {
	obj    types.Object
	errObj types.Object // error result paired with the acquisition
	sites  map[*ast.AssignStmt]bool
	source string // acquiring function name, for diagnostics
	pos    token.Pos
}

// Fact indices: three bits per variable.
func factLive(i int) int { return 3 * i }
func factRel(i int) int  { return 3*i + 1 }
func factErr(i int) int  { return 3*i + 2 }

type poolEffectKind int

const (
	poolEffNone poolEffectKind = iota
	poolEffAcquire
	poolEffRelease
	poolEffEscape
	poolEffKill // overwritten without release
)

type poolEffect struct {
	vi      int
	kind    poolEffectKind
	killErr bool // the paired error variable is reassigned here
	node    ast.Node
}

func checkPoolScope(pass *analysis.Pass, pats []callPat, body *ast.BlockStmt) {
	// Pass 1: find acquisition sites in this scope (function literals
	// are independent scopes and are skipped by inspectScope).
	var vars []*poolVar
	byObj := map[types.Object]*poolVar{}
	inspectScope(body, func(n ast.Node) {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return
		}
		fn := sourceCallee(pass, pats, assign.Rhs[0])
		if fn == nil {
			return
		}
		id, ok := assign.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := identObj(pass, id)
		if obj == nil {
			return
		}
		var errObj types.Object
		if len(assign.Lhs) == 2 {
			if eid, ok := assign.Lhs[1].(*ast.Ident); ok && eid.Name != "_" {
				errObj = identObj(pass, eid)
			}
		}
		v := byObj[obj]
		if v == nil {
			v = &poolVar{obj: obj, errObj: errObj, sites: map[*ast.AssignStmt]bool{},
				source: fn.Name(), pos: id.Pos()}
			byObj[obj] = v
			vars = append(vars, v)
		} else if v.errObj != errObj {
			v.errObj = nil // ambiguous pairing: no err-edge refinement
		}
		v.sites[assign] = true
	})
	if len(vars) == 0 {
		return
	}

	g := cfg.New(body, cfg.Options{})

	// Precompute per-block effect lists (node order preserved).
	effects := make([][]poolEffect, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			for vi, v := range vars {
				if eff := nodeEffect(pass, pats, n, v); eff.kind != poolEffNone || eff.killErr {
					eff.vi = vi
					eff.node = n
					effects[b.Index] = append(effects[b.Index], eff)
				}
			}
		}
	}

	apply := func(facts cfg.Bits, eff poolEffect) {
		v := vars[eff.vi]
		switch eff.kind {
		case poolEffAcquire:
			facts.Set(factLive(eff.vi))
			facts.Clear(factRel(eff.vi))
			if v.errObj != nil {
				facts.Set(factErr(eff.vi))
			} else {
				facts.Clear(factErr(eff.vi))
			}
		case poolEffRelease:
			facts.Clear(factLive(eff.vi))
			facts.Set(factRel(eff.vi))
		case poolEffEscape, poolEffKill:
			facts.Clear(factLive(eff.vi))
			facts.Clear(factRel(eff.vi))
			facts.Clear(factErr(eff.vi))
		}
		if eff.killErr && eff.kind != poolEffAcquire {
			facts.Clear(factErr(eff.vi))
		}
	}

	res := cfg.Solve(g, cfg.Problem{
		Dir:      cfg.Forward,
		May:      true,
		NumFacts: 3 * len(vars),
		Transfer: func(b *cfg.Block, facts cfg.Bits) {
			for _, eff := range effects[b.Index] {
				apply(facts, eff)
			}
		},
		Edge: func(from, to *cfg.Block, facts cfg.Bits) cfg.Bits {
			return poolEdge(pass, vars, from, to, facts)
		},
	})

	// Replay each block once from its solved in-state to place
	// diagnostics; one report per variable and failure kind.
	reported := map[[2]int]bool{}
	reportOnce := func(vi int, kind int, pos token.Pos, format string, args ...any) {
		if !reported[[2]int{vi, kind}] {
			reported[[2]int{vi, kind}] = true
			pass.Reportf(pos, format, args...)
		}
	}
	for _, b := range g.Blocks {
		facts := res.In[b.Index].Clone()
		for _, eff := range effects[b.Index] {
			v := vars[eff.vi]
			switch eff.kind {
			case poolEffAcquire:
				if facts.Has(factLive(eff.vi)) {
					reportOnce(eff.vi, 0, eff.node.Pos(),
						"%s is reacquired from %s while a previous acquisition is still unreleased (loop-carried leak)",
						v.obj.Name(), v.source)
				}
			case poolEffRelease:
				if facts.Has(factRel(eff.vi)) {
					reportOnce(eff.vi, 1, eff.node.Pos(),
						"%s may already be released when this release runs (double release on some path)",
						v.obj.Name())
				}
			case poolEffKill:
				if facts.Has(factLive(eff.vi)) {
					reportOnce(eff.vi, 2, eff.node.Pos(),
						"%s is overwritten while still holding an unreleased value from %s",
						v.obj.Name(), v.source)
				}
			}
			apply(facts, eff)
		}
	}

	// Leaks: a variable still live at exit on some path. Name the
	// path by the return that carries the live value out.
	exitIn := res.In[g.Exit.Index]
	for vi, v := range vars {
		if !exitIn.Has(factLive(vi)) {
			continue
		}
		leakPos := v.pos
		at := "the end of the function"
		for _, pred := range g.Exit.Preds {
			if !res.Out[pred.Index].Has(factLive(vi)) {
				continue
			}
			if n := len(pred.Nodes); n > 0 {
				end := pred.Nodes[n-1]
				if _, ok := end.(*ast.ReturnStmt); ok {
					at = "the return at line " + itoa(pass.Fset.Position(end.Pos()).Line)
				} else {
					at = "line " + itoa(pass.Fset.Position(end.End()).Line)
				}
			}
			break
		}
		pass.Reportf(leakPos,
			"%s obtained from %s is not released on the path reaching %s: release it on every path, or //lint:ignore poolbalance with the ownership hand-off",
			v.obj.Name(), v.source, at)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// sourceCallee resolves rhs (possibly wrapped in a type assertion,
// for the sync.Pool Get().(*T) shape) to a configured source call.
func sourceCallee(pass *analysis.Pass, pats []callPat, rhs ast.Expr) *types.Func {
	e := ast.Unparen(rhs)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	for _, p := range pats {
		if p.match(fn) {
			return fn
		}
	}
	return nil
}

func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Uses[id]
}

func isVarIdent(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

// releaseCall reports whether call releases v: v.Release() with no
// arguments, or pool.Put(v) on a sync.Pool.
func releaseCall(pass *analysis.Pass, call *ast.CallExpr, v *poolVar) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name == "Release" && len(call.Args) == 0 && isVarIdent(pass, sel.X, v.obj) {
		return true
	}
	if len(call.Args) == 1 && isVarIdent(pass, call.Args[0], v.obj) {
		put := callPat{pkg: "sync", recv: "Pool", name: "Put"}
		if put.match(analysis.Callee(pass.TypesInfo, call)) {
			return true
		}
	}
	return false
}

// nodeEffect classifies what one CFG node does to one tracked
// variable.
func nodeEffect(pass *analysis.Pass, pats []callPat, n ast.Node, v *poolVar) poolEffect {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if v.sites[n] {
			return poolEffect{kind: poolEffAcquire}
		}
		var eff poolEffect
		for _, lhs := range n.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if o := identObj(pass, id); o != nil {
					if o == v.obj {
						eff.kind = poolEffKill
					}
					if o == v.errObj {
						eff.killErr = true
					}
				}
			}
		}
		for _, rhs := range n.Rhs {
			if escapingUse(pass, rhs, v, true) {
				eff.kind = poolEffEscape
			}
		}
		return eff
	case *ast.DeferStmt:
		if releaseCall(pass, n.Call, v) {
			return poolEffect{kind: poolEffRelease}
		}
		if escapingUse(pass, n.Call, v, false) || deferArgsUse(pass, n.Call, v) {
			return poolEffect{kind: poolEffEscape}
		}
	case *ast.GoStmt:
		// Any use in a go statement hands the value to another
		// goroutine, receiver included.
		if identAppears(pass, n.Call, v.obj) {
			return poolEffect{kind: poolEffEscape}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && releaseCall(pass, call, v) {
			return poolEffect{kind: poolEffRelease}
		}
		if escapingUse(pass, n.X, v, false) {
			return poolEffect{kind: poolEffEscape}
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if escapingUse(pass, r, v, true) {
				return poolEffect{kind: poolEffEscape}
			}
		}
	case *ast.SendStmt:
		if escapingUse(pass, n.Chan, v, false) || escapingUse(pass, n.Value, v, true) {
			return poolEffect{kind: poolEffEscape}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						if escapingUse(pass, val, v, true) {
							return poolEffect{kind: poolEffEscape}
						}
					}
				}
			}
		}
	case *ast.RangeStmt:
		if escapingUse(pass, n.X, v, false) {
			return poolEffect{kind: poolEffEscape}
		}
	case *ast.IncDecStmt:
		// Arithmetic on something else; never the pooled pointer.
	case ast.Expr:
		// Branch conditions and case guards evaluated in this block.
		if escapingUse(pass, n, v, false) {
			return poolEffect{kind: poolEffEscape}
		}
	}
	return poolEffect{}
}

// deferArgsUse reports whether the deferred call's arguments use v
// (arguments are evaluated at defer time; uses there behave like a
// normal call).
func deferArgsUse(pass *analysis.Pass, call *ast.CallExpr, v *poolVar) bool {
	for _, a := range call.Args {
		if escapingUse(pass, a, v, true) {
			return true
		}
	}
	return false
}

// escapingUse reports whether e contains a use of v in an
// ownership-transferring position. esc says whether v appearing as
// the whole of e (after unwrapping) is itself escaping: true for
// call arguments, return values, stored values; false for an
// expression statement or a branch condition.
func escapingUse(pass *analysis.Pass, e ast.Expr, v *poolVar, esc bool) bool {
	switch e := e.(type) {
	case nil:
		return false
	case *ast.Ident:
		return esc && pass.TypesInfo.Uses[e] == v.obj
	case *ast.ParenExpr:
		return escapingUse(pass, e.X, v, esc)
	case *ast.SelectorExpr:
		// Reading v.Field does not transfer ownership.
		return escapingUse(pass, e.X, v, false)
	case *ast.StarExpr:
		return escapingUse(pass, e.X, v, esc)
	case *ast.TypeAssertExpr:
		return escapingUse(pass, e.X, v, esc)
	case *ast.CallExpr:
		if releaseCall(pass, e, v) {
			return false
		}
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			// Method receiver: calling a method on v is a read,
			// not a hand-off.
			if escapingUse(pass, sel.X, v, false) {
				return true
			}
		} else if escapingUse(pass, e.Fun, v, true) {
			return true
		}
		for _, a := range e.Args {
			if escapingUse(pass, a, v, true) {
				return true
			}
		}
		return false
	case *ast.BinaryExpr:
		// Pointer comparisons and boolean connectives read, never
		// own.
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return escapingUse(pass, e.X, v, false) || escapingUse(pass, e.Y, v, false)
		}
		return escapingUse(pass, e.X, v, esc) || escapingUse(pass, e.Y, v, esc)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return escapingUse(pass, e.X, v, true)
		}
		return escapingUse(pass, e.X, v, false) // <-ch, !x, -x: reads
	case *ast.IndexExpr:
		return escapingUse(pass, e.X, v, false) || escapingUse(pass, e.Index, v, true)
	case *ast.SliceExpr:
		return escapingUse(pass, e.X, v, false)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if escapingUse(pass, el, v, true) {
				return true
			}
		}
		return false
	case *ast.KeyValueExpr:
		return escapingUse(pass, e.Key, v, true) || escapingUse(pass, e.Value, v, true)
	case *ast.FuncLit:
		// Closure capture: the literal may outlive this scope.
		return identAppears(pass, e.Body, v.obj)
	default:
		return identAppears(pass, e, v.obj)
	}
}

func identAppears(pass *analysis.Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// poolEdge refines facts along a branch edge: on the edge where the
// tracked variable is nil (v == nil true-edge, v != nil false-edge)
// or where its paired error is non-nil, the variable is dead and
// needs no release.
func poolEdge(pass *analysis.Pass, vars []*poolVar, from, to *cfg.Block, facts cfg.Bits) cfg.Bits {
	if from.Cond == nil || len(from.Succs) < 2 {
		return facts
	}
	be, ok := ast.Unparen(from.Cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return facts
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilExpr(pass, x) {
		x, y = y, x
	}
	if !isNilExpr(pass, y) {
		return facts
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return facts
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return facts
	}
	trueEdge := to == from.Succs[0]
	var out cfg.Bits
	kill := func(vi int) {
		if out == nil {
			out = facts.Clone()
		}
		out.Clear(factLive(vi))
		out.Clear(factRel(vi))
		out.Clear(factErr(vi))
	}
	for vi, v := range vars {
		if obj == v.obj {
			// v is nil on the EQL true-edge / NEQ false-edge.
			if trueEdge == (be.Op == token.EQL) {
				kill(vi)
			}
		} else if obj == v.errObj && facts.Has(factErr(vi)) {
			// The error is non-nil (so v is nil) on the NEQ
			// true-edge / EQL false-edge.
			if trueEdge == (be.Op == token.NEQ) {
				kill(vi)
			}
		}
	}
	if out == nil {
		return facts
	}
	return out
}

func isNilExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}
