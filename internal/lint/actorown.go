package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/cfg"
)

// NewActorOwn returns the actorown analyzer: it infers the owning
// goroutine of actor state structs from where their run loops are
// spawned and flags struct field accesses reachable from a different
// goroutine that go through neither the mailbox nor a held mutex.
//
// spawners name the kernel spawn primitives ("(*pkg.Type).Method"
// patterns, like the simulation kernel's Go). A struct S becomes an
// actor when a method with receiver S spawns a goroutine: the spawned
// function and everything it calls inside the package is S's owner
// context. Functions that can reach a spawn site or that construct S
// are initialization context (they run before the owner exists).
// Everything else reachable from the package's exported surface is
// external context: a field access there races with the owner unless
// one of the exemptions applies.
//
// Exemptions, in the order they are tried:
//   - fields that are themselves synchronization (they contain a
//     mutex, possibly behind a pointer; sync/atomic types; channels);
//   - init-only fields: every write in the package occurs in
//     initialization context, so post-spawn accesses are reads of
//     frozen state;
//   - functions whose name contains "Locked": the repo convention
//     for "caller holds the receiver's mutex";
//   - accesses at program points where a mutex of the same receiver
//     is held on every path (a forward must-analysis over the CFG;
//     deferred unlocks do not end the held region).
//
// When S has multiple spawn sites (or a spawn inside a loop) the
// owner contexts also race with each other, so owner functions are
// checked too. One diagnostic is reported per function and struct,
// naming every offending field and an external entry point.
func NewActorOwn(spawners []string, scope ...string) *analysis.Analyzer {
	var pats []callPat
	for _, s := range spawners {
		pats = append(pats, parseCallPat(s))
	}
	a := &analysis.Analyzer{
		Name: "actorown",
		Doc: "flag actor-struct field accesses reachable from outside the owning goroutine " +
			"that bypass both the mailbox and every tracked mutex",
	}
	a.Run = func(pass *analysis.Pass) error {
		if len(scope) > 0 && !hasPrefixAny(pass.Pkg.Path(), scope) {
			return nil
		}
		runActorOwn(pass, pats)
		return nil
	}
	return a
}

// aoFunc is one function body in the package: a declaration or a
// function literal.
type aoFunc struct {
	idx      int
	name     string
	body     *ast.BlockStmt
	obj      *types.Func     // nil for literals
	recvType *types.TypeName // receiver's named type, methods only
	lit      *ast.FuncLit
	exported bool
	calls    []int // same-package call edges + literal containment
	pos      token.Pos
}

// aoStruct is one inferred actor struct.
type aoStruct struct {
	tn         *types.TypeName
	roots      []int // spawned owner functions
	spawnSites int
	spawnLoop  bool         // a spawn site sits inside a loop
	initFns    map[int]bool // spawn-containing + constructors (pre-closure)
}

func runActorOwn(pass *analysis.Pass, pats []callPat) {
	// ---- collect function bodies ----
	var funcs []*aoFunc
	declIdx := map[*types.Func]int{}
	litIdx := map[*ast.FuncLit]int{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			n := &aoFunc{idx: len(funcs), name: funcDisplayName(fd), body: fd.Body,
				exported: fd.Name.IsExported(), pos: fd.Pos()}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				n.obj = fn
				declIdx[fn] = n.idx
			}
			if fd.Recv != nil && len(fd.Recv.List) == 1 {
				n.recvType = recvTypeIdent(pass, fd.Recv.List[0].Type)
			}
			funcs = append(funcs, n)
		}
	}
	nDecls := len(funcs)
	var collectLits func(parent int, root ast.Node)
	collectLits = func(parent int, root ast.Node) {
		ast.Inspect(root, func(x ast.Node) bool {
			if x == root {
				return true
			}
			if lit, ok := x.(*ast.FuncLit); ok {
				n := &aoFunc{idx: len(funcs), name: funcs[parent].name + " (func literal)",
					body: lit.Body, lit: lit, pos: lit.Pos()}
				funcs = append(funcs, n)
				litIdx[lit] = n.idx
				collectLits(n.idx, lit.Body)
				return false
			}
			return true
		})
	}
	for i := 0; i < nDecls; i++ {
		collectLits(i, funcs[i].body)
	}

	// ---- call edges, spawn sites, actor structs ----
	structs := map[*types.TypeName]*aoStruct{}
	spawnRoot := map[int]bool{}
	getStruct := func(tn *types.TypeName) *aoStruct {
		s := structs[tn]
		if s == nil {
			s = &aoStruct{tn: tn, initFns: map[int]bool{}}
			structs[tn] = s
		}
		return s
	}
	for _, fn := range funcs {
		fn := fn
		aoScope(fn.body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				if !spawnRoot[litIdx[lit]] {
					fn.calls = append(fn.calls, litIdx[lit])
				}
				return false // the literal has its own node
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.Callee(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			if tgt, ok := declIdx[callee]; ok {
				fn.calls = append(fn.calls, tgt)
			}
			for _, p := range pats {
				if !p.match(callee) {
					continue
				}
				root := spawnedFunc(pass, call, declIdx, litIdx)
				if root < 0 || fn.recvType == nil {
					break
				}
				spawnRoot[root] = true
				s := getStruct(fn.recvType)
				s.roots = append(s.roots, root)
				s.spawnSites++
				if posInLoop(fn.body, call.Pos()) {
					s.spawnLoop = true
				}
				s.initFns[fn.idx] = true
				break
			}
			return true
		})
	}
	if len(structs) == 0 {
		return
	}

	// Constructors: any function building a composite literal of an
	// actor struct is initialization context for it.
	for _, fn := range funcs {
		ast.Inspect(fn.body, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := pass.TypesInfo.Types[cl].Type
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				if s, ok := structs[named.Obj()]; ok {
					s.initFns[fn.idx] = true
				}
			}
			return true
		})
	}

	// ---- reachability sets ----
	callers := make([][]int, len(funcs))
	for _, fn := range funcs {
		for _, c := range fn.calls {
			callers[c] = append(callers[c], fn.idx)
		}
	}
	closure := func(seed []int, edges func(int) []int) []bool {
		seen := make([]bool, len(funcs))
		work := append([]int(nil), seed...)
		for len(work) > 0 {
			i := work[0]
			work = work[1:]
			if seen[i] {
				continue
			}
			seen[i] = true
			work = append(work, edges(i)...)
		}
		return seen
	}
	var exportedSeed []int
	for _, fn := range funcs {
		if fn.exported {
			exportedSeed = append(exportedSeed, fn.idx)
		}
	}
	// Spawn-root literals are only entered by the kernel, so plain
	// call edges (which exclude them) model the synchronous reach of
	// the exported surface.
	extReach := closure(exportedSeed, func(i int) []int { return funcs[i].calls })

	// Field writers, per actor struct: field object -> writing funcs.
	writers := map[*types.TypeName]map[*types.Var][]int{}
	for tn := range structs {
		writers[tn] = map[*types.Var][]int{}
	}
	for _, fn := range funcs {
		aoScope(fn.body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					recordFieldWrite(pass, structs, writers, lhs, fn.idx)
				}
			case *ast.IncDecStmt:
				recordFieldWrite(pass, structs, writers, n.X, fn.idx)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					// Taking the address can hand out a mutable
					// alias: treated as a write.
					recordFieldWrite(pass, structs, writers, n.X, fn.idx)
				}
			}
			return true
		})
	}

	// ---- per-struct checking ----
	var order []*aoStruct
	for _, s := range structs {
		order = append(order, s)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].tn.Name() < order[j].tn.Name() })

	for _, s := range order {
		owner := closure(s.roots, func(i int) []int { return funcs[i].calls })
		multiOwner := s.spawnLoop || distinctCount(s.roots) > 1 || s.spawnSites > 1

		var initSeed []int
		for i := range s.initFns {
			initSeed = append(initSeed, i)
		}
		sort.Ints(initSeed)
		// Anything that can call into a spawning/constructing path
		// runs before the owner exists.
		isInit := closure(initSeed, func(i int) []int { return callers[i] })

		// Init-only fields: every write in the package happens in
		// initialization context.
		initOnly := func(field *types.Var) bool {
			for _, w := range writers[s.tn][field] {
				if !isInit[w] {
					return false
				}
			}
			return true
		}

		for _, fn := range funcs {
			if fn.lit != nil && !spawnRoot[fn.idx] {
				// Literal bodies are checked as part of their
				// enclosing declaration so lock context carries in.
				continue
			}
			if isInit[fn.idx] || strings.Contains(fn.name, "Locked") {
				continue
			}
			external := extReach[fn.idx] && !owner[fn.idx]
			concurrentOwner := multiOwner && owner[fn.idx]
			if !external && !concurrentOwner {
				continue
			}
			checkActorAccesses(pass, s, fn, funcs, callers, extReach, initOnly, external)
		}
	}
}

// checkActorAccesses walks one function (nested literals included)
// for unguarded accesses to fields of s and reports them as one
// diagnostic.
func checkActorAccesses(pass *analysis.Pass, s *aoStruct, fn *aoFunc, funcs []*aoFunc,
	callers [][]int, extReach []bool, initOnly func(*types.Var) bool, external bool) {

	type access struct {
		sel   *ast.SelectorExpr
		field *types.Var
		base  string
	}
	var accesses []access
	ast.Inspect(fn.body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		t := pass.TypesInfo.Types[sel.X].Type
		if t == nil {
			return true
		}
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj() != s.tn {
			return true
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		if syncSafeField(field.Type()) || initOnly(field) {
			return true
		}
		accesses = append(accesses, access{sel: sel, field: field, base: exprKey(sel.X)})
		return true
	})
	if len(accesses) == 0 {
		return
	}

	// Flow-sensitive mutex check: which lock keys are held, on every
	// path, at each access?
	g := cfg.New(fn.body, cfg.Options{})
	keys, keyIdx := lockKeys(pass, fn.body)
	var res cfg.Result
	if len(keys) > 0 {
		res = cfg.Solve(g, cfg.Problem{
			Dir:      cfg.Forward,
			May:      false,
			NumFacts: len(keys),
			Transfer: func(b *cfg.Block, facts cfg.Bits) {
				for _, n := range b.Nodes {
					applyLockEffects(pass, n, keyIdx, facts)
				}
			},
		})
	}

	heldAt := func(pos token.Pos, base string) bool {
		if len(keys) == 0 {
			return false
		}
		b, node := locateNode(g, pos)
		if b == nil {
			return false
		}
		facts := res.In[b.Index].Clone()
		for _, n := range b.Nodes {
			if n == node {
				break
			}
			applyLockEffects(pass, n, keyIdx, facts)
		}
		for i, k := range keys {
			if facts.Has(i) && strings.HasPrefix(k, base+".") {
				return true
			}
		}
		return false
	}

	var bad []access
	for _, a := range accesses {
		if !heldAt(a.sel.Pos(), a.base) {
			bad = append(bad, a)
		}
	}
	if len(bad) == 0 {
		return
	}

	fieldNames := map[string]bool{}
	for _, a := range bad {
		fieldNames[a.field.Name()] = true
	}
	var names []string
	for n := range fieldNames {
		names = append(names, n)
	}
	sort.Strings(names)

	entry := "a concurrent owner goroutine (multiple spawn sites)"
	if external {
		entry = "exported entry " + entryPath(funcs, callers, extReach, fn.idx)
	}
	pass.Reportf(bad[0].sel.Pos(),
		"field %s of actor struct %s accessed in %s without its mutex held; reachable from %s: route through the mailbox, hold the mutex, or //lint:ignore actorown with the exclusion protocol",
		strings.Join(names, ", "), s.tn.Name(), fn.name, entry)
}

// entryPath names an exported function that reaches fn, preferring
// fn itself when exported.
func entryPath(funcs []*aoFunc, callers [][]int, extReach []bool, fn int) string {
	if funcs[fn].exported {
		return funcs[fn].name
	}
	seen := make([]bool, len(funcs))
	work := []int{fn}
	seen[fn] = true
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		if funcs[i].exported {
			return funcs[i].name
		}
		cs := append([]int(nil), callers[i]...)
		sort.Ints(cs)
		for _, c := range cs {
			if !seen[c] && extReach[c] {
				seen[c] = true
				work = append(work, c)
			}
		}
	}
	return funcs[fn].name
}

// lockKeys collects the receiver keys of every sync lock operation
// in body (nested literals excluded: their locks are their own).
func lockKeys(pass *analysis.Pass, body *ast.BlockStmt) ([]string, map[string]int) {
	var keys []string
	idx := map[string]int{}
	aoScope(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if name, key := lockMethod(pass, call); name != "" {
				if _, ok := idx[key]; !ok {
					idx[key] = len(keys)
					keys = append(keys, key)
				}
			}
		}
		return true
	})
	return keys, idx
}

// applyLockEffects updates held-lock facts for the lock calls inside
// one CFG node. Deferred unlocks run at function exit and do not end
// the held region; deferred locks do not start one.
func applyLockEffects(pass *analysis.Pass, n ast.Node, keyIdx map[string]int, facts cfg.Bits) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.RangeStmt:
			// A range.head block carries the whole RangeStmt, but
			// only the ranged-over expression evaluates there — the
			// body's lock traffic belongs to other blocks.
			applyLockEffects(pass, x.X, keyIdx, facts)
			return false
		case *ast.CallExpr:
			name, key := lockMethod(pass, x)
			i, tracked := keyIdx[key]
			if !tracked {
				return true
			}
			switch name {
			case "Lock", "RLock":
				facts.Set(i)
			case "Unlock", "RUnlock":
				facts.Clear(i)
			}
		}
		return true
	})
}

// locateNode finds the CFG block and node whose source range covers
// pos, preferring the smallest covering node: a loop-head block
// carries the whole RangeStmt, whose span swallows the body, but the
// body statements live in their own blocks and must win so that lock
// state is read at the access, not at the loop head. Nested function
// literals appear as part of the node that contains them, which
// attributes closure accesses to the lock state at their creation
// point.
func locateNode(g *cfg.CFG, pos token.Pos) (*cfg.Block, ast.Node) {
	var (
		bestBlock *cfg.Block
		bestNode  ast.Node
	)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if n.Pos() <= pos && pos <= n.End() {
				if bestNode == nil || n.End()-n.Pos() < bestNode.End()-bestNode.Pos() {
					bestBlock, bestNode = b, n
				}
			}
		}
	}
	return bestBlock, bestNode
}

// syncSafeField reports whether a field's type is itself a
// synchronization primitive: contains a mutex (possibly behind a
// pointer), is a sync/atomic type, or is a channel.
func syncSafeField(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync/atomic" {
			return true
		}
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	return containsLock(t, nil)
}

// recordFieldWrite resolves an assigned/addressed expression to an
// actor-struct field and records the writing function. The S-level
// field is charged for deep writes (s.stats.X = v writes field
// stats).
func recordFieldWrite(pass *analysis.Pass, structs map[*types.TypeName]*aoStruct,
	writers map[*types.TypeName]map[*types.Var][]int, e ast.Expr, fnIdx int) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			t := pass.TypesInfo.Types[x.X].Type
			if t != nil {
				if ptr, ok := t.Underlying().(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if named, ok := t.(*types.Named); ok {
					if _, isActor := structs[named.Obj()]; isActor {
						if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
							if field, ok := sel.Obj().(*types.Var); ok {
								writers[named.Obj()][field] = append(writers[named.Obj()][field], fnIdx)
							}
						}
						return
					}
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return
		}
	}
}

// aoScope walks body delivering every node, handing FuncLits to fn
// and descending only when fn returns true.
func aoScope(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		return fn(n)
	})
}

// spawnedFunc resolves the function argument of a spawn call to a
// collected function body: the last argument of function type, given
// as a literal or a method value.
func spawnedFunc(pass *analysis.Pass, call *ast.CallExpr, declIdx map[*types.Func]int, litIdx map[*ast.FuncLit]int) int {
	for i := len(call.Args) - 1; i >= 0; i-- {
		arg := ast.Unparen(call.Args[i])
		t := pass.TypesInfo.Types[call.Args[i]].Type
		if t == nil {
			continue
		}
		if _, ok := t.Underlying().(*types.Signature); !ok {
			continue
		}
		if lit, ok := arg.(*ast.FuncLit); ok {
			if idx, ok := litIdx[lit]; ok {
				return idx
			}
			return -1
		}
		var obj types.Object
		switch a := arg.(type) {
		case *ast.Ident:
			obj = pass.TypesInfo.Uses[a]
		case *ast.SelectorExpr:
			if sel, ok := pass.TypesInfo.Selections[a]; ok {
				obj = sel.Obj()
			}
		}
		if fn, ok := obj.(*types.Func); ok {
			if idx, ok := declIdx[fn]; ok {
				return idx
			}
		}
		return -1
	}
	return -1
}

// posInLoop reports whether pos sits inside a for or range statement
// within body.
func posInLoop(body *ast.BlockStmt, pos token.Pos) bool {
	in := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case nil:
			return false
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			if n.Pos() <= pos && pos <= n.End() {
				in = true
			}
		}
		return true
	})
	return in
}

func distinctCount(xs []int) int {
	seen := map[int]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	return len(seen)
}

func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return fd.Name.Name
	}
	switch t := fd.Recv.List[0].Type.(type) {
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	case *ast.Ident:
		return "(" + t.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

func recvTypeIdent(pass *analysis.Pass, e ast.Expr) *types.TypeName {
	if star, ok := e.(*ast.StarExpr); ok {
		e = star.X
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if tn, ok := pass.TypesInfo.Uses[id].(*types.TypeName); ok {
		return tn
	}
	return nil
}
