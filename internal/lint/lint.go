// Package lint is daclint: a suite of static analyzers that enforce
// the simulator's determinism and virtual-time invariants at vet
// time, before they can cost a flaky benchmark gate.
//
// The suite (see Suite) ships eleven analyzers:
//
//   - walltime: no wall-clock time (time.Now, time.Sleep, ...) in
//     simulation code — virtual time must come from internal/sim.
//   - seededrand: no process-global or unseeded math/rand — every
//     random stream must be a seeded, trial-owned source so trial
//     parallelism stays reproducible.
//   - maporder: no map iteration order leaking into emitted output
//     (tables, CSV, traces) without an intervening sort.
//   - lockdiscipline: Lock without a same-function Unlock, surplus
//     Unlocks, and locks copied by value in the pbs/maui/netsim/trace
//     hot paths.
//   - vtctx: no raw `go` statements in actor packages — goroutines
//     must register with the sim kernel via (*sim.Simulation).Go or
//     virtual time desyncs.
//   - spanbalance: every trace span opened in a function
//     (Tracer.Start, Span.Child) must reach an End in that scope or
//     be handed off — an open span truncates the causal chains the
//     critical-path profiler reconstructs.
//   - metricname: instrument names passed to the telemetry registry
//     and the tracer's metric methods must be compile-time constants —
//     runtime-assembled names make metric cardinality unbounded.
//   - poolbalance: pooled values (netsim arena messages, pooled
//     simulations from sim.Acquire, sync.Pool) must be released
//     exactly once on every control-flow path or escape to an owner —
//     a leaked message silently degrades the arena to allocation.
//   - handlerexhaustive: every wire-message struct declared in a
//     package's proto.go must be consumed by a payload type-switch or
//     assertion, and every dispatch case must name a protocol type.
//   - actorown: fields of actor structs (structs whose run loops are
//     spawned via the sim kernel) may not be touched from outside the
//     owning goroutine unless the access goes through the mailbox, a
//     held mutex, an init-only field, or a *Locked-convention helper.
//   - digestdet: audit digest providers (func(*audit.Digest)) must be
//     deterministic — no unsorted map iteration feeding digest writes
//     and no wall-clock reads, since digest sums back the
//     byte-identity gates across parallelism levels and server modes.
//
// The last three are flow-sensitive: they build intra-procedural CFGs
// (internal/lint/cfg) and solve bitvector dataflow problems over
// them, so diagnostics come with the leaking or unprotected path
// rather than a textual tally. lockdiscipline also uses the CFG to
// catch a conditionally deferred unlock followed by a manual unlock.
//
// False positives are suppressed in place with a reasoned directive:
//
//	//lint:ignore walltime host-side progress logging, not sim time
//
// The directive names one analyzer (or a comma-separated list) and
// requires a non-empty reason; it applies to findings on its own line
// and on the line directly below. Directives without a reason are
// themselves diagnostics. Findings in _test.go files are never
// reported: tests legitimately measure wall time and spawn raw
// goroutines to exercise concurrency.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Repo-specific scope configuration for the default suite.
var (
	// wallClockAllowed lists import-path prefixes where wall-clock
	// time is legitimate: the CLI layer times real host work
	// (benchmark wall columns, progress lines), and the lint driver
	// itself is host-side tooling (the CFG builder times its own
	// builds for the CI summary).
	wallClockAllowed = []string{"repro/cmd/", "repro/internal/lint"}

	// actorPackages hold code that runs as simulation actors; every
	// goroutine there must be spawned through the sim kernel.
	actorPackages = []string{
		"repro/internal/pbs",
		"repro/internal/maui",
		"repro/internal/netsim",
		"repro/internal/dac",
		"repro/internal/cluster",
		"repro/internal/mpi",
		"repro/internal/gpusim",
		"repro/internal/fifosched",
		"repro/internal/workload",
		"repro/internal/service",
	}

	// lockScope is where lockdiscipline applies: the scheduler,
	// server, network, and tracing hot paths named by the invariant.
	lockScope = []string{
		"repro/internal/pbs",
		"repro/internal/maui",
		"repro/internal/netsim",
		"repro/internal/trace",
	}

	// poolSources are the repo's arena/pool acquisition points for
	// poolbalance ((*sync.Pool).Get is built in): every netsim Recv
	// variant hands out an arena message the caller must Release, and
	// sim.Acquire hands out a pooled Simulation.
	poolSources = []string{
		"(*repro/internal/netsim.Endpoint).Recv",
		"(*repro/internal/netsim.Endpoint).RecvTimeout",
		"(*repro/internal/netsim.Endpoint).RecvTag",
		"(*repro/internal/netsim.Endpoint).RecvTagTimeout",
		"(*repro/internal/netsim.Endpoint).RecvMatch",
		"(*repro/internal/netsim.Endpoint).RecvMatchTimeout",
		"repro/internal/sim.Acquire",
	}

	// spawnPrimitives are the kernel entry points actorown treats as
	// goroutine spawns when inferring actor ownership.
	spawnPrimitives = []string{"(*repro/internal/sim.Simulation).Go"}
)

// Suite returns the analyzers configured for this repository, in the
// stable order drivers report them.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		NewWalltime(wallClockAllowed...),
		NewSeededRand(),
		NewMapOrder(),
		NewLockDiscipline(lockScope...),
		NewVTCtx(actorPackages...),
		NewSpanBalance(),
		NewMetricName(),
		NewPoolBalance(poolSources...),
		NewHandlerExhaustive(),
		NewActorOwn(spawnPrimitives, actorPackages...),
		NewDigestDet(),
	}
}

// Package is one type-checked package as the drivers load it.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Run applies the analyzers to pkg and returns the surviving
// diagnostics in file/position order: findings in _test.go files are
// dropped, and findings covered by a well-formed //lint:ignore
// directive are suppressed. Malformed directives (no reason) are
// reported as findings of the pseudo-analyzer "ignore".
func Run(pkg *Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	dirs := collectDirectives(pkg)
	var out []analysis.Diagnostic
	for _, d := range dirs {
		if d.malformed {
			out = append(out, analysis.Diagnostic{
				Pos:      d.pos,
				Category: "ignore",
				Message:  "//lint:ignore needs an analyzer list and a non-empty reason: //lint:ignore <names> <reason>",
			})
		}
	}
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			if d.Category == "" {
				d.Category = a.Name
			}
			p := pkg.Fset.Position(d.Pos)
			if strings.HasSuffix(p.Filename, "_test.go") {
				return
			}
			if suppressed(dirs, a.Name, p) {
				return
			}
			out = append(out, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(out[i].Pos), pkg.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Offset != pj.Offset {
			return pi.Offset < pj.Offset
		}
		return out[i].Category < out[j].Category
	})
	return out, nil
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	pos       token.Pos
	file      string
	line      int
	analyzers []string
	malformed bool
}

const ignorePrefix = "//lint:ignore"

func collectDirectives(pkg *Package) []directive {
	var dirs []directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignored — not ours
				}
				p := pkg.Fset.Position(c.Pos())
				d := directive{pos: c.Pos(), file: p.Filename, line: p.Line}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					d.malformed = true // missing names or reason
				} else {
					d.analyzers = strings.Split(fields[0], ",")
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

// suppressed reports whether a finding by analyzer name at position p
// is covered by a directive on the same line or the line above.
func suppressed(dirs []directive, name string, p token.Position) bool {
	for _, d := range dirs {
		if d.malformed || d.file != p.Filename {
			continue
		}
		if d.line != p.Line && d.line != p.Line-1 {
			continue
		}
		for _, a := range d.analyzers {
			if a == name || a == "*" {
				return true
			}
		}
	}
	return false
}

// hasPrefixAny reports whether path equals one of the prefixes or
// sits beneath one (prefix match at a path-segment boundary, or a
// trailing-slash prefix as written).
func hasPrefixAny(path string, prefixes []string) bool {
	for _, pre := range prefixes {
		if path == pre || strings.HasPrefix(path, pre) && (strings.HasSuffix(pre, "/") || len(path) > len(pre) && path[len(pre)] == '/') {
			return true
		}
	}
	return false
}
