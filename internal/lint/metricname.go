package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// NewMetricName returns the metricname analyzer: every instrument
// name handed to the telemetry registry ((*telemetry.Registry)
// Counter/Gauge/Histogram/Occupancy) or to the tracer's metric calls
// ((*trace.Tracer) Add/Gauge/Observe) must be a compile-time
// constant. A name assembled at runtime — fmt.Sprintf over a host or
// link, a loop variable, a parameter — creates one instrument per
// distinct string: metric cardinality grows with cluster size, scrape
// output stops being byte-identical across configurations, and the
// registry's get-or-create map becomes an unbounded leak. Per-entity
// detail belongs in span annotations; instruments keep a fixed,
// greppable name set.
func NewMetricName() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "metricname",
		Doc: "flag instrument names that are not compile-time constants in calls to the " +
			"telemetry registry (Counter/Gauge/Histogram/Occupancy) and the tracer's metric " +
			"methods (Add/Gauge/Observe): dynamic names make metric cardinality unbounded",
	}
	a.Run = func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				what := metricNameCall(pass, call)
				if what == "" || len(call.Args) == 0 {
					return true
				}
				arg := call.Args[0]
				if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
					return true // constant-folded by the type checker
				}
				pass.Reportf(arg.Pos(), "instrument name passed to %s must be a compile-time constant (got a runtime expression): dynamic names create unbounded metric cardinality; put per-entity detail in span annotations instead", what)
				return true
			})
		}
		return nil
	}
	return a
}

// metricNameCall reports whether call names an instrument: a method
// whose first parameter is the instrument name, on the telemetry
// registry or the tracer. It returns a human-readable method label,
// or "" for everything else. Matching is by package, receiver, and
// method name — the same resolution the other analyzers use, so both
// the real packages and the test fixtures qualify.
func metricNameCall(pass *analysis.Pass, call *ast.CallExpr) string {
	if _, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); !ok {
		return ""
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	recv := recvTypeName(sig.Recv().Type())
	switch fn.Pkg().Name() {
	case "telemetry":
		if recv != "Registry" {
			return ""
		}
		switch fn.Name() {
		case "Counter", "Gauge", "Histogram", "Occupancy":
			return "(*telemetry.Registry)." + fn.Name()
		}
	case "trace":
		if recv != "Tracer" {
			return ""
		}
		switch fn.Name() {
		case "Add", "Gauge", "Observe":
			return "(*trace.Tracer)." + fn.Name()
		}
	}
	return ""
}

// recvTypeName unwraps a method receiver to its named type.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}
