// Package linttest is a standard-library reimplementation of the
// golang.org/x/tools/go/analysis/analysistest contract used by the
// daclint analyzer tests: fixture packages live under
// testdata/src/<pkg>, and every line that should produce a finding
// carries a trailing comment of the form
//
//	m := rand.Int() // want `process-global math/rand`
//
// where the backquoted (or double-quoted) text is a regular
// expression the diagnostic message must match. Lines without a want
// comment must stay clean; unmatched wants and unexpected
// diagnostics both fail the test.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
)

var wantRe = regexp.MustCompile("//\\s*want\\s+(`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\")")

// Run loads each named fixture package from testdata/src and applies
// the analyzers to it, comparing diagnostics against the fixtures'
// want comments. The analyzers run through lint.Run, so //lint:ignore
// suppression behaves exactly as it does in the real driver.
func Run(t *testing.T, testdata string, analyzers []*analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkgname := range pkgs {
		pkg, err := loadFixture(testdata, pkgname)
		if err != nil {
			t.Errorf("loading fixture %s: %v", pkgname, err)
			continue
		}
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			t.Errorf("running analyzers on %s: %v", pkgname, err)
			continue
		}
		check(t, pkg, diags)
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func check(t *testing.T, pkg *lint.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		fname := pkg.Fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pat := m[2]
					if m[3] != "" {
						pat = m[3]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", fname, pat, err)
						continue
					}
					wants = append(wants, &want{file: fname, line: pkg.Fset.Position(c.Pos()).Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		var hit *want
		for _, w := range wants {
			if !w.matched && w.file == p.Filename && w.line == p.Line && w.re.MatchString(d.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("%s:%d: unexpected diagnostic [%s]: %s", p.Filename, p.Line, d.Category, d.Message)
			continue
		}
		hit.matched = true
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

// Load parses and type-checks one fixture package from
// testdata/src/<pkgname>, for tests that inspect diagnostics
// directly instead of through want comments.
func Load(testdata, pkgname string) (*lint.Package, error) {
	return loadFixture(testdata, pkgname)
}

// loadFixture parses and type-checks testdata/src/<pkgname>. Fixture
// packages may import the standard library and sibling fixture
// packages (by bare directory name).
func loadFixture(testdata, pkgname string) (*lint.Package, error) {
	fset := token.NewFileSet()
	l := &fixtureLoader{testdata: testdata, fset: fset, loaded: map[string]*lint.Package{}}
	l.std = importer.ForCompiler(fset, "source", nil)
	return l.load(pkgname)
}

type fixtureLoader struct {
	testdata string
	fset     *token.FileSet
	std      types.Importer
	loaded   map[string]*lint.Package
}

func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if strings.Contains(path, ".") || strings.Contains(path, "/") {
		return l.std.Import(path)
	}
	if _, err := os.Stat(filepath.Join(l.testdata, "src", path)); err == nil {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *fixtureLoader) load(pkgname string) (*lint.Package, error) {
	if pkg, ok := l.loaded[pkgname]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.testdata, "src", pkgname)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkgname, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgname, err)
	}
	pkg := &lint.Package{Path: pkgname, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.loaded[pkgname] = pkg
	return pkg, nil
}
