package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"

	"repro/internal/lint/analysis"
)

// NewHandlerExhaustive returns the handlerexhaustive analyzer: it
// cross-checks the wire-message structs a package declares in its
// protocol file (any file named proto.go) against the payload
// dispatch sites that consume them — type switches and type
// assertions on a `.Payload` field. Two invariants are enforced
// per package:
//
//  1. Every named struct declared in proto.go is consumed by at
//     least one payload type-switch case or payload type assertion
//     in the same package. A message nobody dispatches on is dead
//     protocol surface — or its handler lives in another package,
//     which is a deliberate protocol split that must carry a
//     //lint:ignore naming the consuming package.
//     Structs that appear as field types of other protocol messages
//     are sub-messages, not top-level envelopes, and are exempt.
//  2. Every exported type named in a payload type-switch case that
//     belongs to the package being checked is declared in proto.go.
//     A case over a non-protocol type is a stray or stale dispatch
//     arm (the message moved or was deleted). Unexported case types
//     are local control tokens (stop messages) and are exempt, as
//     are types imported from other packages, whose protocol files
//     this pass cannot see.
func NewHandlerExhaustive() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "handlerexhaustive",
		Doc: "cross-check proto.go message structs against the payload type-switches that " +
			"dispatch them: unconsumed messages and dispatch cases over non-protocol types",
	}
	a.Run = func(pass *analysis.Pass) error {
		runHandlerExhaustive(pass)
		return nil
	}
	return a
}

func runHandlerExhaustive(pass *analysis.Pass) {
	// Named struct types declared in this package's proto.go, in
	// declaration order.
	var protoOrder []*ast.Ident
	protoTypes := map[types.Object]bool{}
	for _, f := range pass.Files {
		if filepath.Base(pass.Fset.Position(f.Pos()).Filename) != "proto.go" {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if _, isStruct := ts.Type.(*ast.StructType); !isStruct {
					continue
				}
				if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
					protoTypes[obj] = true
					protoOrder = append(protoOrder, ts.Name)
				}
			}
		}
	}

	// Sub-messages: protocol structs embedded as field types of other
	// protocol structs (directly or through pointers, slices, arrays,
	// and maps). They ride inside an envelope and need no dispatch
	// case of their own.
	subMessage := map[types.Object]bool{}
	for obj := range protoTypes {
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			markFieldTypes(st.Field(i).Type(), protoTypes, subMessage, 0)
		}
	}

	// Consumption sites: type-switch cases and type assertions whose
	// operand is a selector named Payload.
	consumed := map[types.Object]bool{}
	type caseSite struct {
		obj types.Object
		pos *ast.Ident
	}
	var caseSites []caseSite
	recordType := func(e ast.Expr) types.Object {
		e = ast.Unparen(e)
		if star, ok := e.(*ast.StarExpr); ok {
			e = ast.Unparen(star.X)
		}
		var id *ast.Ident
		switch x := e.(type) {
		case *ast.Ident:
			id = x
		case *ast.SelectorExpr:
			id = x.Sel // imported type
		default:
			return nil
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return nil
		}
		if _, isType := obj.(*types.TypeName); !isType {
			return nil
		}
		consumed[obj] = true
		if obj.Pkg() == pass.Pkg && obj.Exported() {
			caseSites = append(caseSites, caseSite{obj: obj, pos: id})
		}
		return obj
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSwitchStmt:
				var operand ast.Expr
				switch assign := n.Assign.(type) {
				case *ast.ExprStmt:
					if ta, ok := ast.Unparen(assign.X).(*ast.TypeAssertExpr); ok {
						operand = ta.X
					}
				case *ast.AssignStmt:
					if ta, ok := ast.Unparen(assign.Rhs[0]).(*ast.TypeAssertExpr); ok {
						operand = ta.X
					}
				}
				if !isPayloadExpr(operand) {
					return true
				}
				for _, cs := range n.Body.List {
					for _, texpr := range cs.(*ast.CaseClause).List {
						recordType(texpr)
					}
				}
			case *ast.TypeAssertExpr:
				if n.Type != nil && isPayloadExpr(n.X) {
					recordType(n.Type)
				}
			}
			return true
		})
	}

	// Invariant 1: declared but never dispatched.
	for _, name := range protoOrder {
		obj := pass.TypesInfo.Defs[name]
		if consumed[obj] || subMessage[obj] {
			continue
		}
		pass.Reportf(name.Pos(),
			"message %s is declared in proto.go but no payload type-switch or assertion in package %s consumes it: dead protocol surface, or the handler lives elsewhere (//lint:ignore handlerexhaustive naming the consumer)",
			name.Name, pass.Pkg.Name())
	}

	// Invariant 2: dispatch case over a same-package exported type
	// that is not part of the protocol.
	sort.Slice(caseSites, func(i, j int) bool { return caseSites[i].pos.Pos() < caseSites[j].pos.Pos() })
	seen := map[types.Object]bool{}
	for _, cs := range caseSites {
		if protoTypes[cs.obj] || seen[cs.obj] {
			continue
		}
		seen[cs.obj] = true
		if !packageHasProto(pass) {
			continue // package keeps its protocol elsewhere; nothing to pin against
		}
		pass.Reportf(cs.pos.Pos(),
			"payload dispatch case %s is not declared in this package's proto.go: stray or stale dispatch arm",
			cs.obj.Name())
	}
}

func packageHasProto(pass *analysis.Pass) bool {
	for _, f := range pass.Files {
		if filepath.Base(pass.Fset.Position(f.Pos()).Filename) == "proto.go" {
			return true
		}
	}
	return false
}

// isPayloadExpr reports whether e is a selector for a field or
// method named Payload (x.Payload, m.msg.Payload, ...).
func isPayloadExpr(e ast.Expr) bool {
	if e == nil {
		return false
	}
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Payload"
}

// markFieldTypes records protocol types reachable as components of a
// field type: behind pointers, slices, arrays, and map keys/values.
func markFieldTypes(t types.Type, protoTypes, sub map[types.Object]bool, depth int) {
	if depth > 4 {
		return
	}
	switch t := t.(type) {
	case *types.Named:
		if protoTypes[t.Obj()] {
			sub[t.Obj()] = true
		}
	case *types.Pointer:
		markFieldTypes(t.Elem(), protoTypes, sub, depth+1)
	case *types.Slice:
		markFieldTypes(t.Elem(), protoTypes, sub, depth+1)
	case *types.Array:
		markFieldTypes(t.Elem(), protoTypes, sub, depth+1)
	case *types.Map:
		markFieldTypes(t.Key(), protoTypes, sub, depth+1)
		markFieldTypes(t.Elem(), protoTypes, sub, depth+1)
	}
}
