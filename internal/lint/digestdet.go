package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// NewDigestDet returns the digestdet analyzer. State digests captured
// by the audit layer must be deterministic functions of component
// state: the cross-parallelism and faithful-vs-sharded identity gates
// compare their sums bit for bit, so a single map iteration or
// wall-clock read inside a digest provider turns a hard identity gate
// into a flaky one. The analyzer identifies digest providers —
// functions (declarations or literals) taking a *audit.Digest
// parameter, the signature RegisterDigest accepts — and flags, inside
// each:
//
//   - digest writes (WriteString/WriteInt/WriteUint/WriteBool)
//     directly inside a body of a range over a map, and slices
//     accumulated under a map range that reach a digest write without
//     an intervening sort (the maporder dataflow, retargeted), and
//   - wall-clock reads (the walltime set: time.Now, time.Since, ...)
//     anywhere in the provider, with no package allowlist — a digest
//     is never allowed to see host time.
//
// The Digest type is matched by name so fixtures can model it, the
// same convention maporder uses for metrics.Table.AddRow.
func NewDigestDet() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "digestdet",
		Doc: "digest providers (func(*audit.Digest)) must be deterministic: no unsorted map " +
			"iteration feeding digest writes, no wall-clock reads — digest sums back " +
			"byte-identity gates across parallelism levels and server modes",
	}
	a.Run = func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var ftype *ast.FuncType
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					ftype, body = fn.Type, fn.Body
				case *ast.FuncLit:
					ftype, body = fn.Type, fn.Body
				default:
					return true
				}
				if body == nil || !hasDigestParam(pass, ftype) {
					return true
				}
				checkDigestProvider(pass, body)
				// Keep walking: a provider may nest another literal
				// (itself a provider only if it takes a *Digest).
				return true
			})
		}
		return nil
	}
	return a
}

// hasDigestParam reports whether the function type takes a pointer to
// a named type called Digest.
func hasDigestParam(pass *analysis.Pass, ftype *ast.FuncType) bool {
	if ftype == nil || ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		ptr, ok := tv.Type.(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if ok && named.Obj().Name() == "Digest" {
			return true
		}
	}
	return false
}

// isDigestWrite reports whether call is one of the Digest writer
// methods whose call order defines the sum.
func isDigestWrite(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "WriteString", "WriteInt", "WriteUint", "WriteBool":
	default:
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Digest"
}

func checkDigestProvider(pass *analysis.Pass, body *ast.BlockStmt) {
	checkMapOrderFlow(pass, body, mapOrderSinks{
		isSink:    isDigestWrite,
		directMsg: "digest write inside a range over a map hashes random iteration order: collect keys, sort, then write",
		accumMsg:  "%s accumulates elements in map iteration order and feeds a digest write without a sort: sort it first",
	})
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true
		}
		if _, bad := wallClockFuncs[fn.Name()]; bad {
			pass.Reportf(call.Pos(), "wall-clock time.%s inside a digest provider: a digest must be a pure function of component state", fn.Name())
		}
		return true
	})
}
