package lint_test

import (
	"go/token"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// loadRepo loads this module (the repository the test runs in) once
// per test binary.
func loadRepo(t *testing.T) []*lint.Package {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		t.Fatalf("loading module at %s: %v", root, err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from %s; loader lost the module", len(pkgs), root)
	}
	return pkgs
}

// TestRepoPassesDaclint is the self-check the CI lint gate mirrors:
// the full suite over every package of this repository with zero
// unsuppressed findings. A failure here means either a real
// determinism bug or a site that needs a reasoned //lint:ignore.
func TestRepoPassesDaclint(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	suite := lint.Suite()
	for _, pkg := range loadRepo(t) {
		diags, err := lint.Run(pkg, suite)
		if err != nil {
			t.Fatalf("%s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			p := pkg.Fset.Position(d.Pos)
			t.Errorf("%s:%d:%d: [%s] %s", p.Filename, p.Line, p.Column, d.Category, d.Message)
		}
	}
}

// TestRandomnessFlowsThroughSimRNG pins the stronger import-level
// invariant behind the seededrand analyzer: no package in this module
// imports math/rand at all — every random stream is a sim.RNG, which
// is deterministic across Go releases and owned by its trial.
func TestRandomnessFlowsThroughSimRNG(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	for _, pkg := range loadRepo(t) {
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == "math/rand" || strings.HasPrefix(path, "math/rand/") {
					p := pkg.Fset.Position(imp.Pos())
					t.Errorf("%s:%d: %s imports %s; draw randomness from repro/internal/sim.RNG instead",
						p.Filename, p.Line, pkg.Path, path)
				}
			}
		}
	}
}

// TestLoaderPositionsAreReal guards the loader itself: diagnostics
// must carry positions inside this repository, not token.NoPos.
func TestLoaderPositionsAreReal(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs := loadRepo(t)
	var sim *lint.Package
	for _, pkg := range pkgs {
		if pkg.Path == "repro/internal/sim" {
			sim = pkg
		}
	}
	if sim == nil {
		t.Fatal("loader did not surface repro/internal/sim")
	}
	if len(sim.Files) == 0 || sim.Files[0].Pos() == token.NoPos {
		t.Fatal("loaded files carry no positions")
	}
	if !sim.Types.Complete() {
		t.Fatal("repro/internal/sim type-checked incompletely")
	}
}
