package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// LoadModule parses and type-checks every non-test package of the Go
// module rooted at dir, using only the standard library: module
// packages are loaded from source recursively and standard-library
// imports resolve through the source importer, so no network, module
// cache, or export data is required. Packages are returned in import
// path order.
//
// The loader exists for the standalone `daclint <moduledir>` mode and
// for the in-repo self-check test; under `go vet -vettool` the driver
// instead type-checks against the export data the go command hands it.
func LoadModule(dir string) ([]*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modpath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &moduleLoader{
		fset:    token.NewFileSet(),
		root:    abs,
		module:  modpath,
		loaded:  make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)

	var paths []string
	err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		files, err := packageGoFiles(p)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(abs, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, modpath)
		} else {
			paths = append(paths, modpath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)

	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

type moduleLoader struct {
	fset    *token.FileSet
	root    string
	module  string
	std     types.Importer
	loaded  map[string]*Package
	loading map[string]bool
}

// Import implements types.Importer so module-internal imports resolve
// recursively through the loader while everything else falls through
// to the standard library's source importer.
func (l *moduleLoader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *moduleLoader) load(path string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.root
	if path != l.module {
		dir = filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
	}
	names, err := packageGoFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.loaded[path] = pkg
	return pkg, nil
}

// packageGoFiles lists the buildable non-test Go files of dir in
// lexical order (generators and fixtures guarded by //go:build ignore
// are skipped).
func packageGoFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if ignoredByBuildTag(string(data)) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// ignoredByBuildTag reports whether src carries a //go:build ignore
// (or legacy +build ignore) constraint before its package clause.
func ignoredByBuildTag(src string) bool {
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "package ") {
			return false
		}
		if strings.HasPrefix(line, "//go:build") && strings.Contains(line, "ignore") {
			return true
		}
		if strings.HasPrefix(line, "// +build") && strings.Contains(line, "ignore") {
			return true
		}
	}
	return false
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if rest != "" {
				return strings.Trim(rest, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}
