package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// NewMapOrder returns the maporder analyzer. Go randomizes map
// iteration order, so any map range whose iterations reach emitted
// output — figure tables, CSV rows, trace events — makes that output
// differ run to run, which is exactly what broke "byte-identical
// figures" gates in the past. The analyzer flags, inside each
// function:
//
//   - emission calls (fmt.Print*/Fprint*, csv.Writer.Write/WriteAll,
//     Table.AddRow) directly inside a body of a range over a map, and
//   - slices appended to inside such a body that later feed an
//     emission call (or strings.Join) in the same function without
//     ever being passed to sort.* or slices.Sort*.
//
// The fix is mechanical: collect, sort, then emit.
func NewMapOrder() *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "maporder",
		Doc: "flag map iteration order leaking into emitted output without an intervening sort; " +
			"nondeterministic emission order breaks byte-identical figure reproduction",
	}
	a.Run = func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkMapOrder(pass, fd.Body)
			}
		}
		return nil
	}
	return a
}

func checkMapOrder(pass *analysis.Pass, body *ast.BlockStmt) {
	checkMapOrderFlow(pass, body, mapOrderSinks{
		isSink: func(pass *analysis.Pass, call *ast.CallExpr) bool {
			return isEmissionCall(pass, call) || analysis.IsPkgFunc(pass.TypesInfo, call, "strings", "Join")
		},
		directMsg: "output emitted inside a range over a map follows random iteration order: collect, sort, then emit",
		accumMsg:  "%s accumulates elements in map iteration order and feeds output without a sort: sort it before emitting",
	})
}

// mapOrderSinks parameterizes the map-order dataflow so other
// analyzers (digestdet) can reuse it with a different notion of
// "order-sensitive sink": isSink classifies the calls whose argument
// order matters, directMsg flags a sink directly inside a map-range
// body, and accumMsg (with one %s for the variable name) flags a
// slice accumulated under a map range that reaches a sink unsorted.
type mapOrderSinks struct {
	isSink    func(*analysis.Pass, *ast.CallExpr) bool
	directMsg string
	accumMsg  string
}

func checkMapOrderFlow(pass *analysis.Pass, body *ast.BlockStmt, sinks mapOrderSinks) {
	reported := make(map[token.Pos]bool)
	// accums maps each outer-declared slice that a map-range body
	// appends to onto the position of its first such append.
	accums := make(map[types.Object]token.Pos)

	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapExpr(pass, rs.X) {
			return true
		}
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				if sinks.isSink(pass, m) && !reported[m.Pos()] {
					reported[m.Pos()] = true
					pass.Reportf(m.Pos(), "%s", sinks.directMsg)
				}
			case *ast.AssignStmt:
				for i, rhs := range m.Rhs {
					obj := appendTarget(pass, m, i, rhs)
					if obj == nil {
						continue
					}
					// Only accumulation across iterations leaks order:
					// the slice must outlive the range body.
					if obj.Pos() >= rs.Body.Pos() && obj.Pos() < rs.Body.End() {
						continue
					}
					if _, seen := accums[obj]; !seen {
						accums[obj] = m.Pos()
					}
				}
			}
			return true
		})
		return true
	})

	if len(accums) == 0 {
		return
	}
	sorted := make(map[types.Object]bool)
	emitted := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		// A sink inside a range over a tracked slice consumes it in
		// accumulation order just as surely as passing it whole.
		if rs, ok := n.(*ast.RangeStmt); ok {
			id, ok := ast.Unparen(rs.X).(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			if _, tracked := accums[obj]; !tracked {
				return true
			}
			ast.Inspect(rs.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && sinks.isSink(pass, call) {
					emitted[obj] = true
				}
				return true
			})
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		isSort := isSortCall(pass, call)
		isEmit := sinks.isSink(pass, call)
		if !isSort && !isEmit {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(e ast.Node) bool {
				id, ok := e.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.TypesInfo.Uses[id]
				if obj == nil {
					return true
				}
				if _, tracked := accums[obj]; !tracked {
					return true
				}
				if isSort {
					sorted[obj] = true
				} else {
					emitted[obj] = true
				}
				return true
			})
		}
		return true
	})
	for obj, pos := range accums {
		if emitted[obj] && !sorted[obj] {
			pass.Reportf(pos, sinks.accumMsg, obj.Name())
		}
	}
}

func isMapExpr(pass *analysis.Pass, x ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// appendTarget returns the object of v for statements of the form
// v = append(v, ...) (or v := append(v, ...)), and nil otherwise.
func appendTarget(pass *analysis.Pass, assign *ast.AssignStmt, i int, rhs ast.Expr) types.Object {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" || pass.TypesInfo.Uses[id] != types.Universe.Lookup("append") {
		return nil
	}
	if i >= len(assign.Lhs) {
		return nil
	}
	lhs, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Uses[lhs]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[lhs]
}

// isEmissionCall reports whether call writes formatted output: the
// fmt print family, encoding/csv record writes, or the repository's
// metrics table rows.
func isEmissionCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() == nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
			(strings.HasPrefix(fn.Name(), "Fprint") || strings.HasPrefix(fn.Name(), "Print")) {
			return true
		}
		return false
	}
	switch fn.Name() {
	case "Write", "WriteAll":
		return namedRecv(sig) == "encoding/csv.Writer"
	case "AddRow":
		return true // the repo's metrics.Table row sink (name-matched so fixtures can model it)
	}
	return false
}

// isSortCall reports whether call invokes anything from package sort
// or a Sort*/Compact*/reverse-style ordering helper from slices.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

// namedRecv renders the receiver's named type as "pkgpath.Name",
// dereferencing a pointer receiver.
func namedRecv(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}
