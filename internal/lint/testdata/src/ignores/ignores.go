// Package ignores exercises the //lint:ignore directive contract: a
// directive must name its analyzers and give a non-empty reason, and
// a reasoned directive only suppresses the analyzers it names.
package ignores

import "time"

func wrongName() time.Time {
	//lint:ignore seededrand suppressing the wrong analyzer does nothing
	return time.Now() // want `wall-clock time\.Now`
}

func multiName() time.Time {
	//lint:ignore seededrand,walltime demonstrating a multi-analyzer directive
	return time.Now()
}

func sameLine() time.Time {
	return time.Now() //lint:ignore walltime same-line suppression with a reason
}
