// Package spans exercises the spanbalance analyzer: every span opened
// in a function (Tracer.Start, Span.Child) must reach an End in that
// scope or be handed off.
package spans

import "trace"

var tr = trace.New()

// Balanced: the canonical defer.
func deferEnd() {
	sp := tr.Start("t", "ok")
	defer sp.End()
	sp.Annotate("k", "v")
}

// Balanced: a direct End later in the scope, with benign receiver
// uses (Annotate, ID) in between.
func directEnd() uint64 {
	sp := tr.Start("t", "ok")
	sp.Annotate("k", "v")
	sp.End()
	return sp.ID()
}

// Balanced: parent deferred, child ended directly.
func childEnd() {
	sp := tr.Start("t", "parent")
	defer sp.End()
	c := sp.Child("step")
	c.Link(7)
	c.End()
}

// The span is annotated but never ended and never handed off.
func leak() {
	sp := tr.Start("t", "leak") // want `span "sp" is never ended`
	sp.Annotate("k", "v")
}

// The parent is balanced; the child leaks even though its ID is read.
func childLeak() {
	sp := tr.Start("t", "parent")
	defer sp.End()
	c := sp.Child("step") // want `span "c" is never ended`
	_ = c.ID()
}

// A result no one binds can never be ended.
func discarded() {
	tr.Start("t", "drop") // want `span result discarded`
}

// Assigning to the blank identifier discards it just as surely.
func discardedBlank() {
	_ = tr.Start("t", "drop") // want `span result discarded`
}

// The conditional-creation idiom: a nil span's methods are no-ops, so
// assign under a guard and End unconditionally.
func condCreate(on bool) {
	var sp *trace.Span
	if on {
		sp = tr.Start("t", "cond")
	}
	defer sp.End()
}

// Same idiom without the End: still a leak.
func condLeak(on bool) {
	var sp *trace.Span
	if on {
		sp = tr.Start("t", "leak") // want `span "sp" is never ended`
	}
	sp.Annotate("k", "v")
}

// Hand-off: returning the span transfers ownership to the caller.
func handOff() *trace.Span {
	sp := tr.Start("t", "handoff")
	sp.Annotate("k", "v")
	return sp
}

// Hand-off: passing the span to another function.
func passed() {
	sp := tr.Start("t", "passed")
	closer(sp)
}

// closer ends a span it did not open: parameters are not creations.
func closer(sp *trace.Span) { sp.End() }

// Hand-off: storing the span through a pointer; the slot's owner is
// responsible for the End.
func stored(dst **trace.Span) {
	*dst = tr.Start("t", "stored")
}

// Hand-off: a closure capturing the span owns its End.
func captured(run func(func())) {
	sp := tr.Start("t", "captured")
	run(func() { sp.End() })
}

// Function literals are independent scopes: the literal's own span is
// audited in the literal.
func literalScope() {
	f := func() {
		sp := tr.Start("t", "lit") // want `span "sp" is never ended`
		sp.Annotate("k", "v")
	}
	f()
}

// A deliberate open span with a documented protocol is suppressed.
func protocol() {
	//lint:ignore spanbalance teardown closes this epoch span out of band
	sp := tr.Start("t", "epoch")
	sp.Annotate("k", "v")
}

// SpanAt records closed intervals; no End required, nothing tracked.
func closedInterval() {
	tr.SpanAt("t", "interval", 0, 10)
}
