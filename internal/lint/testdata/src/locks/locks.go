// Package locks exercises the lockdiscipline analyzer.
package locks

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

type registry struct {
	mu    sync.RWMutex
	items map[string]int
}

func missingUnlock(c *counter) {
	c.mu.Lock() // want `c\.mu\.Lock\(\) with no c\.mu\.Unlock\(\) on any path`
	c.n++
}

func missingRUnlock(r *registry) int {
	r.mu.RLock() // want `r\.mu\.RLock\(\) with no r\.mu\.RUnlock\(\)`
	return len(r.items)
}

func balancedDefer(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func balancedDirect(c *counter) int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n
}

func earlyReturns(c *counter) int {
	c.mu.Lock()
	if c.n < 0 {
		c.mu.Unlock()
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}

func deferredDouble(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	defer c.mu.Unlock() // want `2 deferred c\.mu\.Unlock\(\) for 1 c\.mu\.Lock\(\)`
}

// condDeferThenManual registers the deferred unlock on only one
// branch; the manual unlock on the fallthrough then double-unlocks
// when that path returns and the defer fires. The textual tally is
// balanced — only the CFG sees it.
func condDeferThenManual(c *counter, flush bool) {
	c.mu.Lock()
	if flush {
		defer c.mu.Unlock() // want `deferred c\.mu\.Unlock\(\) runs after c\.mu is already unlocked on some path`
		c.n++
	}
	c.n++
	c.mu.Unlock()
}

func condDeferThenManualRead(r *registry, cached bool) int {
	r.mu.RLock()
	if cached {
		defer r.mu.RUnlock() // want `deferred r\.mu\.RUnlock\(\) runs after r\.mu is already unlocked on some path`
	}
	n := len(r.items)
	r.mu.RUnlock()
	return n
}

// condDeferHandoff is the clean shape: the defer path returns before
// the manual unlock, so no path unlocks twice.
func condDeferHandoff(c *counter, fast bool) int {
	c.mu.Lock()
	if fast {
		defer c.mu.Unlock()
		return c.n
	}
	n := c.n * 2
	c.mu.Unlock()
	return n
}

// unlockRelockDance releases the mutex around the loop body and
// relocks before every exit, so the deferred unlock always fires
// with the mutex held.
func unlockRelockDance(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.n < 10 {
		c.mu.Unlock()
		c.n++
		c.mu.Lock()
	}
}

func byValueParam(c counter) int { // want `parameter passes a lock by value`
	return c.n
}

func copiesByAssignment(c *counter) int {
	snapshot := *c // want `assignment copies a lock by value`
	return snapshot.n
}

func copiesInRange(cs []counter) int {
	total := 0
	for _, c := range cs { // want `range copies a lock by value`
		total += c.n
	}
	return total
}

func pointersAreFine(cs []*counter) int {
	total := 0
	for _, c := range cs {
		c.mu.Lock()
		total += c.n
		c.mu.Unlock()
	}
	return total
}

// goroutineScopes: each function literal is its own lock scope, so the
// spawned closure balancing its own Lock/Unlock is clean, and an
// unbalanced closure is flagged even though the enclosing function
// also unlocks.
func goroutineScopes(c *counter) {
	go func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}()
	go func() {
		c.mu.Lock() // want `c\.mu\.Lock\(\) with no c\.mu\.Unlock\(\)`
		c.n++
	}()
}

// handOff models a deliberate cross-function locking protocol: the
// suppression names the analyzer and the reason.
func handOff(c *counter) {
	//lint:ignore lockdiscipline lock is released by the paired release() callback
	c.mu.Lock()
	c.n++
}

func release(c *counter) {
	c.mu.Unlock()
}
