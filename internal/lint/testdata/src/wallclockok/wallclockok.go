// Package wallclockok models the CLI layer, which is allowlisted for
// wall-clock time: nothing here may be flagged.
package wallclockok

import "time"

func Elapsed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
