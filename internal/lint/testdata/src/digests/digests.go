// Package digests exercises the digestdet analyzer: digest providers
// must hash component state in a deterministic order and never read
// the host clock.
package digests

import (
	"sort"
	"time"
)

// Digest models the audit layer's state hasher.
type Digest struct{ h uint64 }

func (d *Digest) WriteString(s string) { d.h += uint64(len(s)) }
func (d *Digest) WriteInt(v int64)     { d.h += uint64(v) }
func (d *Digest) WriteUint(v uint64)   { d.h += v }
func (d *Digest) WriteBool(v bool)     {}

type table struct {
	counts map[string]int64
}

func (t *table) digestUnsorted(d *Digest) {
	for name, c := range t.counts {
		d.WriteString(name) // want `digest write inside a range over a map`
		d.WriteInt(c)       // want `digest write inside a range over a map`
	}
}

func (t *table) digestAccumUnsorted(d *Digest) {
	var names []string
	for name := range t.counts {
		names = append(names, name) // want `names accumulates elements in map iteration order and feeds a digest write`
	}
	for _, name := range names {
		d.WriteString(name)
	}
}

func (t *table) digestSorted(d *Digest) {
	names := make([]string, 0, len(t.counts))
	for name := range t.counts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d.WriteString(name)
		d.WriteInt(t.counts[name])
	}
}

func (t *table) digestWallClock(d *Digest) {
	d.WriteInt(time.Now().UnixNano())              // want `wall-clock time.Now inside a digest provider`
	d.WriteInt(int64(time.Since(time.Unix(0, 0)))) // want `wall-clock time.Since inside a digest provider`
}

// register models RegisterDigest taking a provider literal.
func register(fn func(*Digest)) {}

func registersLiteral(t *table) {
	register(func(d *Digest) {
		for name := range t.counts {
			d.WriteString(name) // want `digest write inside a range over a map`
		}
	})
}

// notAProvider ranges a map and reads the clock, but takes no
// *Digest: digestdet must stay silent (walltime owns the clock read).
func notAProvider(t *table) int64 {
	var total int64
	for _, c := range t.counts {
		total += c
	}
	return total
}

// scratch maps inside a provider are fine as long as no write happens
// under the range: summing is order-insensitive.
func (t *table) digestFolded(d *Digest) {
	var total int64
	for _, c := range t.counts {
		total += c
	}
	d.WriteInt(total)
}
