// Package hostpool models host-side code outside the actor packages:
// raw goroutines here are the trial worker pool's business, and the
// vtctx analyzer must leave them alone.
package hostpool

import "sync"

func FanOut(n int, fn func(int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			fn(i)
		}()
	}
	wg.Wait()
}
