// The protocol file of the handlers fixture: every struct declared
// here is a wire message and must be dispatched somewhere in the
// package.
package handlers

type PingReq struct{ Seq int }

type PingResp struct{ Seq int }

type StatusReq struct{ Detail DetailSpec }

// DetailSpec rides inside StatusReq: a sub-message, not an envelope,
// so it needs no dispatch case of its own.
type DetailSpec struct{ Verbose bool }

type OrphanMsg struct{} // want `message OrphanMsg is declared in proto.go but no payload type-switch or assertion in package handlers consumes it`

// CrossPkgMsg is consumed by a peer package this fixture cannot see;
// the suppression documents the consumer.
//
//lint:ignore handlerexhaustive consumed by the remotehandlers package's dispatch loop
type CrossPkgMsg struct{}
