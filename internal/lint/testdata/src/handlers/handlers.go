// Package handlers exercises the handlerexhaustive analyzer.
package handlers

// Message is the envelope: dispatch happens on its Payload.
type Message struct{ Payload any }

// Notice is exported but deliberately not declared in proto.go: a
// dispatch case over it is a stray arm.
type Notice struct{}

// stopMsg is an unexported control token; dispatching on it is fine.
type stopMsg struct{}

func handle(m *Message) any {
	switch req := m.Payload.(type) {
	case PingReq:
		return PingResp{Seq: req.Seq}
	case stopMsg:
		return nil
	case Notice: // want `payload dispatch case Notice is not declared in this package's proto\.go`
		return nil
	}
	return nil
}

// PingResp is consumed by assertion on the client side, StatusReq by
// a switch with an assigned binding: both consumption forms count.
func await(m *Message) int {
	if resp, ok := m.Payload.(PingResp); ok {
		return resp.Seq
	}
	return -1
}

func route(m *Message) bool {
	switch m.Payload.(type) {
	case StatusReq:
		return true
	}
	return false
}
