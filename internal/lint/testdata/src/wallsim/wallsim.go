// Package wallsim models simulation code, where wall-clock reads are
// forbidden.
package wallsim

import (
	"time"

	t "time"
)

func readsClock() time.Duration {
	start := time.Now()      // want `wall-clock time\.Now in simulation code`
	return time.Since(start) // want `wall-clock time\.Since`
}

func sleeps() {
	time.Sleep(5 * time.Millisecond) // want `wall-clock time\.Sleep in simulation code: use \(\*sim\.Simulation\)\.Sleep`
}

func waits() {
	<-time.After(time.Second) // want `wall-clock time\.After`
	<-time.Tick(time.Second)  // want `wall-clock time\.Tick`
	tk := time.NewTicker(1)   // want `wall-clock time\.NewTicker`
	tk.Stop()
}

func aliased() t.Time {
	return t.Now() // want `wall-clock time\.Now`
}

// durationMath never touches the host clock: time.Duration values and
// time.Time methods are allowed.
func durationMath(a, b time.Time, d time.Duration) bool {
	_ = d * 2
	_ = time.Duration(42) * time.Millisecond
	return a.After(b) // method, not the package-level wait
}

func annotated() time.Time {
	//lint:ignore walltime host-side progress stamp, never enters virtual time
	return time.Now()
}
