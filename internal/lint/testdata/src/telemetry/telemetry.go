// Package telemetry is a minimal stand-in for
// repro/internal/telemetry, just enough surface for the metricname
// fixtures to type-check: the analyzer matches the registry's
// instrument constructors by package name, receiver type, and method
// name, so this fixture exercises exactly the same resolution path as
// the real package.
package telemetry

// Registry mirrors the instrument-owning half of the real registry.
type Registry struct{}

// Counter mirrors one instrument handle per kind.
type Counter struct{}

// Gauge mirrors the real gauge handle.
type Gauge struct{}

// Histogram mirrors the real histogram handle.
type Histogram struct{}

// Occupancy mirrors the real occupancy handle.
type Occupancy struct{}

// New returns an empty registry.
func New() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter { return &Counter{} }

// Gauge returns the named gauge.
func (r *Registry) Gauge(name string) *Gauge { return &Gauge{} }

// Histogram returns the named histogram.
func (r *Registry) Histogram(name string) *Histogram { return &Histogram{} }

// Occupancy returns the named occupancy tracker.
func (r *Registry) Occupancy(name string) *Occupancy { return &Occupancy{} }
