// Package badignore holds a directive with no reason; the harness
// test asserts that the directive itself is reported and that it
// suppresses nothing.
package badignore

import "time"

func reasonless() time.Time {
	//lint:ignore walltime
	return time.Now()
}
