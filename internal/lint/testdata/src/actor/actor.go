// Package actor models simulation-actor code, where raw goroutines
// are forbidden: every spawn must register with the sim kernel.
package actor

// Kernel models (*sim.Simulation): Go registers an actor with the
// virtual-time controller before spawning it.
type Kernel struct{ spawn func(string, func()) }

func (k *Kernel) Go(name string, fn func()) { k.spawn(name, fn) }

func spawnsRaw(done chan struct{}) {
	go func() { // want `raw goroutine in actor code`
		close(done)
	}()
}

func spawnsNamed(fn func()) {
	go fn() // want `raw goroutine in actor code`
}

func spawnsRegistered(k *Kernel, fn func()) {
	k.Go("worker", fn) // the sim-aware path
}

func annotated(metrics func()) {
	//lint:ignore vtctx host-side metrics flusher, runs outside virtual time
	go metrics()
}
