// Package poolbal exercises the poolbalance analyzer. Conn.Recv and
// Acquire are configured as pool sources in the test; (*sync.Pool).Get
// is always a source.
package poolbal

import (
	"errors"
	"sync"
)

type Msg struct {
	Payload any
	next    *Msg
}

func (m *Msg) Release() {}

type Conn struct{}

func (c *Conn) Recv() (*Msg, error)    { return &Msg{}, nil }
func (c *Conn) TryRecv() (*Msg, error) { return nil, errors.New("empty") }

type Res struct{ n int }

func (r *Res) Release() {}

func Acquire() *Res { return &Res{} }

var msgPool = sync.Pool{New: func() any { return new(Msg) }}

// --- clean shapes ---

func balanced(c *Conn) (any, error) {
	m, err := c.Recv()
	if err != nil {
		return nil, err
	}
	p := m.Payload
	m.Release()
	return p, nil
}

func balancedDefer(c *Conn) error {
	m, err := c.Recv()
	if err != nil {
		return err
	}
	defer m.Release()
	return nil
}

func nilGuard(c *Conn) {
	m, _ := c.Recv()
	if m == nil {
		return
	}
	m.Release()
}

func nilGuardInverted(c *Conn) {
	m, _ := c.Recv()
	if m != nil {
		m.Release()
	}
}

func handOffArg(c *Conn, sink func(*Msg)) {
	m, err := c.Recv()
	if err != nil {
		return
	}
	sink(m) // ownership transferred: no release required here
}

func handOffReturn(c *Conn) (*Msg, error) {
	m, err := c.Recv()
	if err != nil {
		return nil, err
	}
	return m, nil
}

func handOffStore(c *Conn, out []*Msg) {
	m, _ := c.Recv()
	out[0] = m
}

func handOffClosure(c *Conn) func() {
	m, _ := c.Recv()
	return func() { m.Release() }
}

func poolRoundTrip() {
	m := msgPool.Get().(*Msg)
	m.Payload = nil
	msgPool.Put(m)
}

func loopBalanced(c *Conn) {
	for i := 0; i < 4; i++ {
		m, err := c.Recv()
		if err != nil {
			return
		}
		m.Release()
	}
}

// --- failure shapes ---

func leaksOnEarlyReturn(c *Conn) (any, error) {
	m, err := c.Recv() // want `m obtained from Recv is not released on the path reaching the return at line \d+`
	if err != nil {
		return nil, err
	}
	if m.Payload == nil {
		return nil, errors.New("empty") // the leaking path
	}
	p := m.Payload
	m.Release()
	return p, nil
}

func leaksEntirely(c *Conn) any {
	m, _ := c.Recv() // want `m obtained from Recv is not released`
	return m.Payload
}

func leaksFromPool() any {
	m := msgPool.Get().(*Msg) // want `m obtained from Get is not released`
	return m.Payload
}

func leaksAcquire() int {
	r := Acquire() // want `r obtained from Acquire is not released`
	return r.n
}

func doubleRelease(c *Conn) {
	m, _ := c.Recv()
	m.Release()
	m.Release() // want `m may already be released when this release runs`
}

func doubleReleaseBranch(c *Conn, flaky bool) {
	m, _ := c.Recv()
	if flaky {
		m.Release()
	}
	m.Release() // want `m may already be released when this release runs`
}

func loopCarriedLeak(c *Conn, stop func() bool) {
	var m *Msg
	for {
		var err error
		m, err = c.Recv() // want `m is reacquired from Recv while a previous acquisition is still unreleased`
		if err != nil {
			return
		}
		if stop() {
			m.Release()
			return
		}
		// back around without releasing
	}
}

func overwriteWhileLive(c *Conn) {
	m, _ := c.Recv()
	m = nil // want `m is overwritten while still holding an unreleased value from Recv`
	_ = m
}

// suppressed documents a deliberate hand-off the analyzer cannot see.
func suppressed(c *Conn, reg map[int]*Msg) {
	//lint:ignore poolbalance registry owns the message and releases it on eviction
	m, _ := c.Recv()
	reg[0] = m
}
