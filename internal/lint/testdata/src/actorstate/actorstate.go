// Package actorstate exercises the actorown analyzer. actorsim.Sim.Go
// is configured as the spawn primitive in the test.
package actorstate

import (
	"sync"

	"actorsim"
)

// Worker is a single-owner actor: one run loop spawned from Start.
type Worker struct {
	sim     *actorsim.Sim
	mu      sync.Mutex
	inbox   chan int // mailbox: channel fields are sync-safe
	seq     int      // owner state
	guarded int      // cross-goroutine state, guarded by mu
	cfg     string   // init-only: written before the spawn
}

func NewWorker(sim *actorsim.Sim) *Worker {
	return &Worker{sim: sim, inbox: make(chan int, 8), cfg: "default"}
}

func (w *Worker) Start() {
	w.seq = 0 // initialization context: the owner does not exist yet
	w.sim.Go("worker", func() {
		for v := range w.inbox {
			w.seq += v // owner context: exclusive access
			w.mu.Lock()
			w.guarded = w.seq
			w.mu.Unlock()
		}
	})
}

// Push goes through the mailbox: fine from any goroutine.
func (w *Worker) Push(v int) { w.inbox <- v }

// Config reads init-only state: frozen before the spawn, fine.
func (w *Worker) Config() string { return w.cfg }

// Guarded holds the mutex the owner also takes: fine.
func (w *Worker) Guarded() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.guarded
}

// Peek bypasses both the mailbox and the mutex.
func (w *Worker) Peek() int {
	return w.seq // want `field seq of actor struct Worker accessed in \(\*Worker\)\.Peek without its mutex held`
}

// Unguarded reads mutex-managed state without the mutex.
func (w *Worker) Unguarded() int {
	return w.guarded // want `field guarded of actor struct Worker accessed in \(\*Worker\)\.Unguarded`
}

// Racy holds the mutex on only one path: a must-analysis over the
// CFG sees the unprotected path.
func (w *Worker) Racy(b bool) int {
	if b {
		w.mu.Lock()
		defer w.mu.Unlock()
	}
	return w.guarded // want `field guarded of actor struct Worker accessed in \(\*Worker\)\.Racy`
}

// LoopGuarded locks inside each loop iteration. The range head's
// span covers the whole body, so the analysis must attribute each
// access to its own statement, where the mutex is held.
func (w *Worker) LoopGuarded(vs []int) int {
	t := 0
	for _, v := range vs {
		w.mu.Lock()
		w.guarded += v
		t += w.guarded
		w.mu.Unlock()
	}
	return t
}

// PreLoopLock holds the mutex across the whole loop: accesses in the
// body are covered by the lock taken before the range head.
func (w *Worker) PreLoopLock(vs []int) int {
	w.mu.Lock()
	t := 0
	for _, v := range vs {
		t += w.guarded + v
	}
	w.mu.Unlock()
	return t
}

// CondThenLoop mixes an early unlock-and-return branch with a locked
// loop: every path reaching the body holds the mutex.
func (w *Worker) CondThenLoop(vs []int, b bool) int {
	w.mu.Lock()
	if b {
		w.mu.Unlock()
		return 0
	}
	t := 0
	for _, v := range vs {
		t += w.guarded + v
	}
	w.mu.Unlock()
	return t
}

// LoopEarlyExit unlocks on a bail-out branch inside the body. The
// range head carries the whole RangeStmt node, so the body's unlock
// must not leak into the head's transfer: the fall-through
// iterations still hold the mutex.
func (w *Worker) LoopEarlyExit(vs []int) int {
	w.mu.Lock()
	t := 0
	for _, v := range vs {
		if v < 0 {
			w.mu.Unlock()
			return 0
		}
		t += w.guarded
	}
	w.mu.Unlock()
	return t
}

// TestOnly documents deliberate exclusivity with a reasoned ignore.
func (w *Worker) TestOnly() int {
	//lint:ignore actorown test hook, the harness never runs it concurrently with Start
	return w.seq
}

// Pool is a multi-owner actor: N run loops spawned in a loop, so
// even owner-context accesses must hold the mutex.
type Pool struct {
	sim  *actorsim.Sim
	mu   sync.Mutex
	jobs map[int]int
	next int
}

func NewPool(sim *actorsim.Sim) *Pool {
	return &Pool{sim: sim, jobs: map[int]int{}}
}

func (p *Pool) Start(n int) {
	for i := 0; i < n; i++ {
		p.sim.Go("pool", p.run)
	}
}

func (p *Pool) run() {
	p.mu.Lock()
	p.next++ // owner context, but multi-owner: the lock makes it fine
	p.mu.Unlock()
	p.bump()
}

func (p *Pool) bump() {
	p.next++ // want `field next of actor struct Pool accessed in \(\*Pool\)\.bump without its mutex held; reachable from a concurrent owner goroutine`
}
