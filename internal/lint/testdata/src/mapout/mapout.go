// Package mapout exercises the maporder analyzer: map iteration that
// reaches emitted output must pass through a sort first.
package mapout

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
)

func emitsDirectly(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `output emitted inside a range over a map`
	}
}

func printsDirectly(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `output emitted inside a range over a map`
	}
}

func emitsCSV(w *csv.Writer, m map[string]string) {
	for k, v := range m {
		_ = w.Write([]string{k, v}) // want `output emitted inside a range over a map`
	}
}

// Table models the repository's metrics.Table row sink.
type Table struct{ rows [][]string }

func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

func fillsTable(t *Table, m map[string]int) {
	for k, v := range m {
		t.AddRow(k, fmt.Sprint(v)) // want `output emitted inside a range over a map`
	}
}

func accumulatesUnsorted(w io.Writer, m map[string]int) {
	var lines []string
	for k := range m {
		lines = append(lines, k) // want `lines accumulates elements in map iteration order`
	}
	fmt.Fprintln(w, strings.Join(lines, ","))
}

func accumulatesSorted(w io.Writer, m map[string]int) {
	var lines []string
	for k := range m {
		lines = append(lines, k) // sorted below before emission
	}
	sort.Strings(lines)
	fmt.Fprintln(w, strings.Join(lines, ","))
}

func sortedBySlice(w io.Writer, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		fmt.Fprintln(w, k, m[k])
	}
}

// collectKeys only gathers; whether the caller sorts is out of this
// function's hands, so nothing is flagged.
func collectKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// aggregates never leak order: reductions and map-to-map writes are
// order-independent.
func aggregates(w io.Writer, m map[string]int) {
	total := 0
	index := make(map[int]string)
	for k, v := range m {
		total += v
		index[v] = k
	}
	fmt.Fprintln(w, total)
}

func annotated(w io.Writer, m map[string]int) {
	for k := range m {
		//lint:ignore maporder debug dump, order is irrelevant to the figures
		fmt.Fprintln(w, k)
	}
}
