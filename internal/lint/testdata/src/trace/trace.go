// Package trace is a minimal stand-in for repro/internal/trace, just
// enough surface for the spanbalance fixtures to type-check: the
// analyzer matches Start/Child/End by package name and span type, so
// this fixture exercises exactly the same resolution path as the real
// package.
package trace

// Tracer mirrors the span-creating half of the real tracer.
type Tracer struct{}

// Span mirrors the real span handle.
type Span struct{}

// New returns an enabled tracer.
func New() *Tracer { return &Tracer{} }

// Start opens a span on a track.
func (t *Tracer) Start(track, name string, kvs ...string) *Span { return &Span{} }

// SpanAt records an already-closed interval (no End required).
func (t *Tracer) SpanAt(track, name string, start, dur int64, kvs ...string) {}

// Add mirrors the real tracer's counter metric (metricname fixtures).
func (t *Tracer) Add(name string, delta int64) {}

// Gauge mirrors the real tracer's gauge metric.
func (t *Tracer) Gauge(name string, v float64) {}

// Observe mirrors the real tracer's latency metric.
func (t *Tracer) Observe(name string, d int64) {}

// Child opens a child span.
func (s *Span) Child(name string, kvs ...string) *Span { return &Span{} }

// Annotate attaches a key/value argument to the span.
func (s *Span) Annotate(key, value string) {}

// Link records a causal edge to another span.
func (s *Span) Link(id uint64) {}

// ID returns the span's stream-unique id.
func (s *Span) ID() uint64 { return 0 }

// End closes the span.
func (s *Span) End() {}
