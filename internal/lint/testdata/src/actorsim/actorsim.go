// Package actorsim is a stand-in simulation kernel for the actorown
// fixture: Sim.Go is the configured spawn primitive.
package actorsim

type Sim struct{}

func (s *Sim) Go(name string, fn func()) { go fn() }
