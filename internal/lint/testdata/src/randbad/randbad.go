// Package randbad exercises the seededrand analyzer: process-global
// and unseeded math/rand use is flagged, seeded trial-owned sources
// are allowed.
package randbad

import (
	"math/rand"
	rv2 "math/rand/v2"
)

func globals() {
	_ = rand.Int()                     // want `rand\.Int uses the process-global math/rand source`
	_ = rand.Intn(6)                   // want `rand\.Intn uses the process-global`
	_ = rand.Float64()                 // want `rand\.Float64 uses the process-global`
	rand.Shuffle(3, func(int, int) {}) // want `rand\.Shuffle uses the process-global`
	_ = rv2.IntN(6)                    // want `rand\.IntN uses the process-global`
}

func unseeded(src rand.Source) {
	_ = rand.New(src) // want `rand\.New without an inline seeded source`
}

func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // trial-owned and reproducible
	r2 := rv2.New(rv2.NewPCG(1, 2))
	return r.Float64() + r2.Float64()
}

func annotated() int {
	//lint:ignore seededrand fixture demonstrating reasoned suppression
	return rand.Int()
}
