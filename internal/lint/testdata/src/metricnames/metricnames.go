// Package metricnames exercises the metricname analyzer: instrument
// names passed to the telemetry registry and the tracer's metric
// methods must be compile-time constants.
package metricnames

import (
	"fmt"

	"telemetry"
	"trace"
)

var reg = telemetry.New()
var tr = trace.New()

const prefix = "pbs."
const full = prefix + "dyn_latency"

// Clean: literals and constants, including constant-folded
// concatenation, on every registry kind and every tracer metric.
func constants(host string) {
	reg.Counter("pbs.submits")
	reg.Gauge("pbs.queue_depth")
	reg.Histogram(full)
	reg.Occupancy(prefix + "busy")
	tr.Add("netsim.msgs", 1)
	tr.Gauge("maui.queue", 1.0)
	tr.Observe("rpc.service", 5)
	// Non-name arguments stay unconstrained.
	tr.Add("netsim.bytes", int64(len(host)))
}

// Dynamic names assembled at runtime are the cardinality leak the
// analyzer exists for.
func dynamic(host string, link int) {
	reg.Counter("net." + host)                    // want `must be a compile-time constant`
	reg.Gauge(fmt.Sprintf("link.%d.depth", link)) // want `must be a compile-time constant`
	reg.Histogram(name(host))                     // want `must be a compile-time constant`
	reg.Occupancy(host)                           // want `must be a compile-time constant`
	tr.Add("netsim.msgs."+host, 1)                // want `must be a compile-time constant`
	tr.Gauge(fmt.Sprintf("maui.q.%d", link), 2)   // want `must be a compile-time constant`
	tr.Observe(name(host), 5)                     // want `must be a compile-time constant`
}

// A variable of constant value is still a runtime expression: the
// type checker does not fold it, and neither does the analyzer.
func namedVariable() {
	n := "pbs.submits"
	reg.Counter(n) // want `must be a compile-time constant`
}

// Suppression follows the usual directive contract.
func suppressed(host string) {
	//lint:ignore metricname per-host series bounded by the fixed testbed size
	reg.Counter("host." + host)
}

func name(host string) string { return "net." + host }
