package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// NewVTCtx returns the vtctx analyzer for the given actor-package
// import-path prefixes. Code in those packages runs as simulation
// actors: the kernel counts runnable actors to decide when the
// virtual clock may advance, so a goroutine spawned with a raw `go`
// statement is invisible to the kernel — the clock can jump while it
// still runs, reordering events and desyncing virtual time. Every
// concurrent activity in actor code must be registered through
// (*sim.Simulation).Go (or a sim-aware wrapper layered on it).
func NewVTCtx(actorPkgs ...string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "vtctx",
		Doc: "forbid raw `go` statements in actor packages; goroutines must register with the " +
			"sim kernel via (*sim.Simulation).Go or virtual time advances without them",
	}
	a.Run = func(pass *analysis.Pass) error {
		if len(actorPkgs) > 0 && !hasPrefixAny(pass.Pkg.Path(), actorPkgs) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					pass.Reportf(g.Pos(), "raw goroutine in actor code is invisible to the sim kernel and desyncs virtual time: spawn it with (*sim.Simulation).Go")
				}
				return true
			})
		}
		return nil
	}
	return a
}
