package cfg

// The dataflow half of the package: bitvector gen/kill problems
// solved by worklist fixpoint iteration over a CFG. Analyzers define
// a Problem (direction, meet operator, per-block transfer, optional
// per-edge refinement) and read back per-block fact sets; replaying
// the transfer node-by-node inside one block recovers statement-level
// precision when a diagnostic needs it.

// Bits is a fixed-width bitvector of dataflow facts.
type Bits []uint64

// NewBits returns an all-zero vector with capacity for n facts.
func NewBits(n int) Bits { return make(Bits, (n+63)/64) }

// Has reports whether fact i is set.
func (b Bits) Has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// Set sets fact i.
func (b Bits) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Clear clears fact i.
func (b Bits) Clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

// Fill sets every fact (the top element of a must-analysis lattice).
func (b Bits) Fill() {
	for i := range b {
		b[i] = ^uint64(0)
	}
}

// Clone returns an independent copy.
func (b Bits) Clone() Bits {
	c := make(Bits, len(b))
	copy(c, b)
	return c
}

// Equal reports whether two vectors carry the same facts.
func (b Bits) Equal(o Bits) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

func union(dst, src Bits) {
	for i := range dst {
		dst[i] |= src[i]
	}
}

func intersect(dst, src Bits) {
	for i := range dst {
		dst[i] &= src[i]
	}
}

// Direction orients a dataflow problem.
type Direction int

const (
	Forward Direction = iota
	Backward
)

// Problem is one gen/kill dataflow analysis over a CFG.
type Problem struct {
	Dir Direction
	// May selects the meet operator: union for a may-analysis
	// ("holds on some path"), intersection for a must-analysis
	// ("holds on every path"). Must-analyses initialize interior
	// blocks to the full set so unreachable joins stay neutral.
	May      bool
	NumFacts int
	// Boundary is the fact set at the boundary block (Entry for
	// Forward, Exit for Backward). Nil means the empty set.
	Boundary Bits
	// Transfer mutates facts in place, applying the block's effect
	// in the analysis direction. It is called many times during
	// iteration and must be deterministic and side-effect free.
	Transfer func(b *Block, facts Bits)
	// Edge, if non-nil, refines the facts flowing across the CFG
	// edge from→to (in control-flow orientation, regardless of
	// Dir). It must either return facts unchanged or return a
	// modified clone; it must not mutate its argument.
	Edge func(from, to *Block, facts Bits) Bits
}

// Result holds the fixpoint. In[i] is the fact set entering block i
// in the analysis direction (for Backward problems that is the facts
// at the block's end, flowing back from its successors); Out[i] is
// after the block's transfer.
type Result struct {
	In, Out []Bits
}

// Solve iterates p over g to a fixpoint. Gen/kill transfers are
// monotone, so termination is guaranteed; a generous iteration cap
// guards against a non-monotone Transfer bug.
func Solve(g *CFG, p Problem) Result {
	n := len(g.Blocks)
	res := Result{In: make([]Bits, n), Out: make([]Bits, n)}
	for i := 0; i < n; i++ {
		res.In[i] = NewBits(p.NumFacts)
		res.Out[i] = NewBits(p.NumFacts)
		if !p.May {
			res.In[i].Fill()
			res.Out[i].Fill()
		}
	}
	boundary := g.Entry
	if p.Dir == Backward {
		boundary = g.Exit
	}
	res.In[boundary.Index] = NewBits(p.NumFacts)
	if p.Boundary != nil {
		copy(res.In[boundary.Index], p.Boundary)
	}

	// Worklist seeded with every block in index order; construction
	// order approximates reverse postorder for Forward problems.
	work := make([]*Block, 0, n)
	inWork := make([]bool, n)
	push := func(b *Block) {
		if !inWork[b.Index] {
			inWork[b.Index] = true
			work = append(work, b)
		}
	}
	if p.Dir == Forward {
		for _, b := range g.Blocks {
			push(b)
		}
	} else {
		for i := n - 1; i >= 0; i-- {
			push(g.Blocks[i])
		}
	}

	flowIn := func(b *Block) []*Block {
		if p.Dir == Forward {
			return b.Preds
		}
		return b.Succs
	}
	flowOut := func(b *Block) []*Block {
		if p.Dir == Forward {
			return b.Succs
		}
		return b.Preds
	}

	limit := 64 * (n + 2) * (p.NumFacts + 2)
	for iter := 0; len(work) > 0 && iter < limit; iter++ {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false

		if b != boundary {
			in := NewBits(p.NumFacts)
			first := true
			for _, pr := range flowIn(b) {
				facts := res.Out[pr.Index]
				if p.Edge != nil {
					if p.Dir == Forward {
						facts = p.Edge(pr, b, facts)
					} else {
						facts = p.Edge(b, pr, facts)
					}
				}
				if first {
					copy(in, facts)
					first = false
				} else if p.May {
					union(in, facts)
				} else {
					intersect(in, facts)
				}
			}
			if first && !p.May {
				// No flow predecessors: top for a must-analysis.
				in.Fill()
			}
			res.In[b.Index] = in
		}

		out := res.In[b.Index].Clone()
		p.Transfer(b, out)
		if !out.Equal(res.Out[b.Index]) {
			res.Out[b.Index] = out
			for _, s := range flowOut(b) {
				push(s)
			}
		}
	}
	return res
}
