package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildSrc parses a single function body and builds its CFG.
func buildSrc(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return New(fn.Body, Options{})
}

// The golden dumps pin the exact topology the builder produces for
// each control shape: block kinds, node counts, edge order (true
// branch first), and which blocks terminate.
func TestGoldenShapes(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{
			name: "if-else",
			body: `
x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
_ = x`,
			want: `
b0 entry -> b2
b1 exit
b2 body n=2 cond -> b3 b4
b3 if.then n=1 -> b5
b4 if.else n=1 -> b5
b5 if.done n=1 -> b1`,
		},
		{
			name: "if-no-else-early-return",
			body: `
x := 1
if x > 0 {
	return
}
_ = x`,
			want: `
b0 entry -> b2
b1 exit
b2 body n=2 cond -> b3 b4
b3 if.then n=1 -> b1
b4 if.done n=1 -> b1`,
		},
		{
			name: "for-with-post",
			body: `
s := 0
for i := 0; i < 4; i++ {
	s += i
}
_ = s`,
			want: `
b0 entry -> b2
b1 exit
b2 body n=2 -> b3
b3 for.head n=1 cond -> b4 b5
b4 for.body n=1 -> b6
b5 for.done n=1 -> b1
b6 for.post n=1 -> b3`,
		},
		{
			name: "range-with-continue-and-break",
			body: `
s := 0
for _, v := range []int{1, 2} {
	if v == 1 {
		continue
	}
	if v == 2 {
		break
	}
	s += v
}
_ = s`,
			want: `
b0 entry -> b2
b1 exit
b2 body n=1 -> b3
b3 range.head n=1 -> b4 b5
b4 range.body n=1 cond -> b6 b7
b5 range.done n=1 -> b1
b6 if.then n=1 -> b3
b7 if.done n=1 cond -> b8 b9
b8 if.then n=1 -> b5
b9 if.done n=1 -> b3`,
		},
		{
			name: "switch-with-fallthrough-and-default",
			body: `
x := 1
switch x {
case 1:
	x = 10
	fallthrough
case 2:
	x = 20
default:
	x = 30
}
_ = x`,
			want: `
b0 entry -> b2
b1 exit
b2 switch.head n=4 -> b4 b5 b6
b3 switch.done n=1 -> b1
b4 switch.case n=2 -> b5
b5 switch.case n=1 -> b3
b6 switch.default n=1 -> b3`,
		},
		{
			name: "typeswitch-no-default",
			body: `
var v any = 1
switch v.(type) {
case int:
	v = nil
case string:
	v = nil
}
_ = v`,
			want: `
b0 entry -> b2
b1 exit
b2 typeswitch.head n=4 -> b4 b5 b3
b3 switch.done n=1 -> b1
b4 switch.case n=1 -> b3
b5 switch.case n=1 -> b3`,
		},
		{
			name: "select-with-default",
			body: `
ch := make(chan int)
select {
case v := <-ch:
	_ = v
default:
}
close(ch)`,
			want: `
b0 entry -> b2
b1 exit
b2 select.head n=1 -> b4 b5
b3 select.done n=1 -> b1
b4 select.case n=2 -> b3
b5 select.default -> b3`,
		},
		{
			name: "defer-then-panic",
			body: `
defer println("done")
x := 1
if x > 0 {
	panic("boom")
}
_ = x`,
			want: `
b0 entry -> b2
b1 exit
b2 body n=3 cond -> b3 b4
b3 if.then n=1
b4 if.done n=1 -> b1`,
		},
		{
			name: "labeled-break-from-nested-loop",
			body: `
s := 0
outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if i+j > 2 {
			break outer
		}
		s++
	}
}
_ = s`,
			want: `
b0 entry -> b2
b1 exit
b2 body n=1 -> b3
b3 label.outer n=1 -> b4
b4 for.head n=1 cond -> b5 b6
b5 for.body n=1 -> b8
b6 for.done n=1 -> b1
b7 for.post n=1 -> b4
b8 for.head n=1 cond -> b9 b10
b9 for.body n=1 cond -> b12 b13
b10 for.done -> b7
b11 for.post n=1 -> b8
b12 if.then n=1 -> b6
b13 if.done n=1 -> b11`,
		},
		{
			name: "goto-forward",
			body: `
x := 1
if x > 0 {
	goto done
}
x = 2
done:
_ = x`,
			want: `
b0 entry -> b2
b1 exit
b2 body n=2 cond -> b3 b5
b3 if.then n=1 -> b4
b4 label.done n=1 -> b1
b5 if.done n=1 -> b4`,
		},
		{
			name: "infinite-for-with-break",
			body: `
for {
	if true {
		break
	}
}`,
			want: `
b0 entry -> b2
b1 exit
b2 body -> b3
b3 for.head -> b4
b4 for.body n=1 cond -> b6 b7
b5 for.done -> b1
b6 if.then n=1 -> b5
b7 if.done -> b3`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := strings.TrimSpace(buildSrc(t, tc.body).Dump())
			want := strings.TrimSpace(tc.want)
			if got != want {
				t.Errorf("CFG mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

// A NoReturn callback must terminate the path like panic does.
func TestNoReturnOption(t *testing.T) {
	src := "package p\nfunc fatal(string) {}\nfunc f(x int) {\nif x > 0 {\nfatal(\"x\")\n}\n_ = x\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	fn := file.Decls[1].(*ast.FuncDecl)
	g := New(fn.Body, Options{NoReturn: func(c *ast.CallExpr) bool {
		id, ok := c.Fun.(*ast.Ident)
		return ok && id.Name == "fatal"
	}})
	for _, b := range g.Blocks {
		if b.Kind == "if.then" && len(b.Succs) != 0 {
			t.Errorf("fatal block should terminate, has succs %v", b.Succs)
		}
	}
}

// A forward may-analysis on a diamond must union facts at the join,
// and an edge filter must be able to kill a fact on one branch.
func TestSolveForwardMayWithEdgeFilter(t *testing.T) {
	g := buildSrc(t, `
x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
_ = x`)
	// Fact 0: generated in if.then. Fact 1: generated in if.else but
	// killed on the edge into the join.
	res := Solve(g, Problem{
		Dir:      Forward,
		May:      true,
		NumFacts: 2,
		Transfer: func(b *Block, f Bits) {
			switch b.Kind {
			case "if.then":
				f.Set(0)
			case "if.else":
				f.Set(1)
			}
		},
		Edge: func(from, to *Block, f Bits) Bits {
			if from.Kind == "if.else" && to.Kind == "if.done" {
				c := f.Clone()
				c.Clear(1)
				return c
			}
			return f
		},
	})
	var join *Block
	for _, b := range g.Blocks {
		if b.Kind == "if.done" {
			join = b
		}
	}
	if !res.In[join.Index].Has(0) {
		t.Error("fact 0 should reach the join via the then-branch")
	}
	if res.In[join.Index].Has(1) {
		t.Error("fact 1 should have been killed on the else edge")
	}
}

// A must-analysis keeps only facts that hold on every path into a
// block.
func TestSolveForwardMust(t *testing.T) {
	g := buildSrc(t, `
x := 1
if x > 0 {
	x = 2
}
_ = x`)
	// Fact 0: set in body (every path). Fact 1: set only in if.then.
	res := Solve(g, Problem{
		Dir:      Forward,
		May:      false,
		NumFacts: 2,
		Transfer: func(b *Block, f Bits) {
			switch b.Kind {
			case "body":
				f.Set(0)
			case "if.then":
				f.Set(1)
			}
		},
	})
	exit := g.Exit.Index
	if !res.In[exit].Has(0) {
		t.Error("fact 0 holds on every path and must survive")
	}
	if res.In[exit].Has(1) {
		t.Error("fact 1 holds on only one path and must not survive a must-join")
	}
}

// A backward may-analysis: "exit is reachable from here without
// passing through the kill block".
func TestSolveBackward(t *testing.T) {
	g := buildSrc(t, `
x := 1
if x > 0 {
	x = 2
}
_ = x`)
	res := Solve(g, Problem{
		Dir:      Backward,
		May:      true,
		NumFacts: 1,
		Boundary: func() Bits { b := NewBits(1); b.Set(0); return b }(),
		Transfer: func(b *Block, f Bits) {
			if b.Kind == "if.done" {
				f.Clear(0)
			}
		},
	})
	for _, b := range g.Blocks {
		if b.Kind == "body" && res.In[b.Index].Has(0) {
			t.Error("every path from body to exit passes if.done, fact must be dead")
		}
		if b.Kind == "if.done" && !res.In[b.Index].Has(0) {
			t.Error("fact must be live at the end of if.done (nothing below kills it)")
		}
	}
}

func TestStatsAdvance(t *testing.T) {
	b0, _ := Stats()
	buildSrc(t, "x := 1\n_ = x")
	b1, d1 := Stats()
	if b1 <= b0 {
		t.Errorf("build counter did not advance: %d -> %d", b0, b1)
	}
	if d1 < 0 {
		t.Errorf("negative cumulative build time %v", d1)
	}
}
