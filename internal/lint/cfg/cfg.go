// Package cfg builds intra-procedural control-flow graphs over
// go/ast function bodies and solves forward/backward dataflow
// problems on them. It is the flow-sensitive substrate under the
// poolbalance, actorown, and path-sensitive lockdiscipline analyzers:
// pure stdlib, no go/ssa, no x/tools.
//
// The graph is statement-granular. Every Block holds the ast.Nodes
// evaluated in it, in program order; branch conditions are appended
// to the block that evaluates them and recorded in Block.Cond, with
// the convention that Succs[0] is the edge taken when Cond is true
// and Succs[1] the edge taken when it is false. Function literals are
// opaque: their bodies never contribute blocks to the enclosing
// graph, so an analysis that cares about a closure builds a separate
// CFG for it.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
	"sync/atomic"
	"time"
)

// A CFG is the control-flow graph of one function body. Entry has no
// predecessors and Exit no successors; every return statement edges
// to Exit, as does falling off the end of the body. Blocks holds
// every block in deterministic construction order, including blocks
// that turned out to be unreachable (dead code after a return, join
// points both of whose arms terminate).
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// A Block is a straight-line run of statements. Nodes are the
// ast.Nodes evaluated in the block in program order: statements, and
// for branching blocks the condition expression (also stored in
// Cond). A block with Cond != nil has Succs[0] as its true edge and
// Succs[1] as its false edge. A reachable block with no successors
// terminates the goroutine: a panic, a call the builder was told
// never returns, or an empty select.
type Block struct {
	Index int
	Kind  string
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	Cond  ast.Expr
}

// Options configures CFG construction.
type Options struct {
	// NoReturn reports whether a call terminates control flow (like
	// builtin panic, which is always recognized): log.Fatal,
	// os.Exit, runtime.Goexit wrappers. May be nil.
	NoReturn func(*ast.CallExpr) bool
}

// Build-time accounting for the daclint -json report and the CI job
// summary: how many graphs were built and how long construction took
// in aggregate. Host-side tooling time, never simulation time.
var (
	builds     atomic.Int64
	buildNanos atomic.Int64
)

// Stats reports the cumulative number of CFGs built by this process
// and the total wall time spent building them.
func Stats() (builds_ int64, elapsed time.Duration) {
	return builds.Load(), time.Duration(buildNanos.Load())
}

// New builds the CFG of one function body.
func New(body *ast.BlockStmt, opt Options) *CFG {
	start := time.Now()
	b := &builder{opt: opt, labels: map[string]*Block{}}
	b.cfg = &CFG{}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	first := b.newBlock("body")
	edge(b.cfg.Entry, first)
	b.cur = first
	b.stmtList(body.List)
	b.jumpTo(b.cfg.Exit) // implicit return at the end of the body
	builds.Add(1)
	buildNanos.Add(time.Since(start).Nanoseconds())
	return b.cfg
}

type builder struct {
	cfg     *CFG
	cur     *Block // nil while statically unreachable
	opt     Options
	targets *targets
	labels  map[string]*Block // label name → block starting the labeled stmt
}

// targets is one entry of the break/continue/fallthrough resolution
// stack: the innermost enclosing loop, switch, or select.
type targets struct {
	outer         *targets
	label         string
	brk           *Block // break target (always set)
	cont          *Block // continue target; nil for switch/select
	fallthroughTo *Block // next case body; set per switch clause
}

func (b *builder) newBlock(kind string) *Block {
	bl := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, bl)
	return bl
}

func edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jumpTo seals the current block with an edge to dst and marks the
// following code unreachable.
func (b *builder) jumpTo(dst *Block) {
	if b.cur != nil {
		edge(b.cur, dst)
	}
	b.cur = nil
}

// fallInto seals the current block with an edge to dst and continues
// building in dst.
func (b *builder) fallInto(dst *Block) {
	if b.cur != nil {
		edge(b.cur, dst)
	}
	b.cur = dst
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	if b.cur == nil {
		// Dead code still gets blocks (with no predecessors) so
		// every statement in the function appears in exactly one
		// block.
		b.cur = b.newBlock("unreachable")
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.ReturnStmt:
		b.add(s)
		b.jumpTo(b.cfg.Exit)
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, "")
	case *ast.RangeStmt:
		b.rangeStmt(s, "")
	case *ast.SwitchStmt:
		b.switchStmt(s, "")
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, "")
	case *ast.SelectStmt:
		b.selectStmt(s, "")
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.noReturn(call) {
			b.cur = nil // panic / fatal: control does not continue
		}
	default:
		// Go, defer, assignments, declarations, sends, inc/dec,
		// empty statements: straight-line.
		b.add(s)
	}
}

func (b *builder) noReturn(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	return b.opt.NoReturn != nil && b.opt.NoReturn(call)
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	cond.Cond = s.Cond
	b.cur = nil

	then := b.newBlock("if.then")
	edge(cond, then) // Succs[0]: condition true
	b.cur = then
	b.stmtList(s.Body.List)
	afterThen := b.cur

	var afterElse *Block
	if s.Else != nil {
		els := b.newBlock("if.else")
		edge(cond, els) // Succs[1]: condition false
		b.cur = els
		b.stmt(s.Else)
		afterElse = b.cur
	}

	done := b.newBlock("if.done")
	if s.Else == nil {
		edge(cond, done) // Succs[1]: condition false
	}
	if afterThen != nil {
		edge(afterThen, done)
	}
	if afterElse != nil {
		edge(afterElse, done)
	}
	b.cur = done
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	b.fallInto(head)
	if s.Cond != nil {
		b.add(s.Cond)
		head.Cond = s.Cond
	}
	body := b.newBlock("for.body")
	edge(head, body) // Succs[0]: condition true (or unconditional)
	done := b.newBlock("for.done")
	if s.Cond != nil {
		edge(head, done) // Succs[1]: condition false
	}
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		cont = post
	}
	b.targets = &targets{outer: b.targets, label: label, brk: done, cont: cont}
	b.cur = body
	b.stmtList(s.Body.List)
	b.targets = b.targets.outer
	if post != nil {
		b.fallInto(post)
		b.add(s.Post)
		b.jumpTo(head)
	} else {
		b.jumpTo(head)
	}
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock("range.head")
	b.fallInto(head)
	// The RangeStmt node carries the per-iteration key/value binding
	// and the ranged-over expression.
	head.Nodes = append(head.Nodes, s)
	body := b.newBlock("range.body")
	edge(head, body) // Succs[0]: another element
	done := b.newBlock("range.done")
	edge(head, done) // Succs[1]: exhausted
	b.targets = &targets{outer: b.targets, label: label, brk: done, cont: head}
	b.cur = body
	b.stmtList(s.Body.List)
	b.targets = b.targets.outer
	b.jumpTo(head)
	b.cur = done
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.cur
	head.Kind = "switch.head"
	b.cur = nil
	b.caseClauses(head, s.Body.List, label, true)
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	head := b.cur
	head.Kind = "typeswitch.head"
	b.cur = nil
	b.caseClauses(head, s.Body.List, label, false)
}

// caseClauses wires the shared body structure of expression and type
// switches: the head fans out to every clause body, clause bodies
// join at done, and (for expression switches) fallthrough edges to
// the next clause body in source order.
func (b *builder) caseClauses(head *Block, clauses []ast.Stmt, label string, allowFallthrough bool) {
	done := b.newBlock("switch.done")
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cs := range clauses {
		cc := cs.(*ast.CaseClause)
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		bodies[i] = b.newBlock(kind)
		// Case guard expressions are evaluated at the head.
		for _, e := range cc.List {
			head.Nodes = append(head.Nodes, e)
		}
		edge(head, bodies[i])
	}
	if !hasDefault {
		edge(head, done) // no case matched
	}
	for i, cs := range clauses {
		cc := cs.(*ast.CaseClause)
		t := &targets{outer: b.targets, label: label, brk: done}
		if allowFallthrough && i+1 < len(bodies) {
			t.fallthroughTo = bodies[i+1]
		}
		b.targets = t
		b.cur = bodies[i]
		b.stmtList(cc.Body)
		b.targets = b.targets.outer
		b.jumpTo(done)
	}
	b.cur = done
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	head.Kind = "select.head"
	b.cur = nil
	done := b.newBlock("select.done")
	for _, cs := range s.Body.List {
		cc := cs.(*ast.CommClause)
		kind := "select.case"
		if cc.Comm == nil {
			kind = "select.default"
		}
		body := b.newBlock(kind)
		edge(head, body)
		b.cur = body
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.targets = &targets{outer: b.targets, label: label, brk: done}
		b.stmtList(cc.Body)
		b.targets = b.targets.outer
		b.jumpTo(done)
	}
	// select {} with no cases blocks forever: head keeps zero
	// successors and legitimately terminates the path.
	b.cur = done
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	lb := b.labelBlock(s.Label.Name)
	b.fallInto(lb)
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, s.Label.Name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, s.Label.Name)
	case *ast.SwitchStmt:
		b.switchStmt(inner, s.Label.Name)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, s.Label.Name)
	case *ast.SelectStmt:
		b.selectStmt(inner, s.Label.Name)
	default:
		b.stmt(s.Stmt)
	}
}

// labelBlock returns (creating on first use, so forward gotos work)
// the block that starts the statement carrying the given label.
func (b *builder) labelBlock(name string) *Block {
	if bl, ok := b.labels[name]; ok {
		return bl
	}
	bl := b.newBlock("label." + name)
	b.labels[name] = bl
	return bl
}

func (b *builder) branch(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok {
	case token.BREAK:
		for t := b.targets; t != nil; t = t.outer {
			if s.Label == nil || t.label == s.Label.Name {
				b.jumpTo(t.brk)
				return
			}
		}
	case token.CONTINUE:
		for t := b.targets; t != nil; t = t.outer {
			if t.cont != nil && (s.Label == nil || t.label == s.Label.Name) {
				b.jumpTo(t.cont)
				return
			}
		}
	case token.GOTO:
		b.jumpTo(b.labelBlock(s.Label.Name))
		return
	case token.FALLTHROUGH:
		if b.targets != nil && b.targets.fallthroughTo != nil {
			b.jumpTo(b.targets.fallthroughTo)
			return
		}
	}
	// Unresolvable branch (would not compile): treat as terminating
	// so the builder stays total.
	b.cur = nil
}

// Dump renders the graph topology as one line per block:
//
//	b2 if.then n=3 -> b5 b6
//
// where n is the node count. The output is deterministic and is what
// the golden tests pin.
func (c *CFG) Dump() string {
	var sb strings.Builder
	for _, bl := range c.Blocks {
		fmt.Fprintf(&sb, "b%d %s", bl.Index, bl.Kind)
		if len(bl.Nodes) > 0 {
			fmt.Fprintf(&sb, " n=%d", len(bl.Nodes))
		}
		if bl.Cond != nil {
			sb.WriteString(" cond")
		}
		if len(bl.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range bl.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
