package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Every function body in the two hottest actor packages must build a
// well-formed CFG: mirrored succ/pred edges, a single exit set (every
// return edges to the unique Exit block), and no reachable dead end
// that is not an explicit terminator (panic or an empty select).
func TestRepoFunctionsBuildWellFormedCFGs(t *testing.T) {
	for _, pkg := range []string{"pbs", "maui"} {
		dir := filepath.Join("..", "..", pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		fns := 0
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			fset := token.NewFileSet()
			file, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				t.Fatalf("parse %s: %v", path, err)
			}
			ast.Inspect(file, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
				case *ast.FuncLit:
					body = fn.Body
				}
				if body == nil {
					return true
				}
				fns++
				g := New(body, Options{})
				checkWellFormed(t, g, fset, body)
				return true
			})
		}
		if fns == 0 {
			t.Fatalf("no functions found in %s", dir)
		}
		t.Logf("%s: %d function bodies built", pkg, fns)
	}
}

func checkWellFormed(t *testing.T, g *CFG, fset *token.FileSet, body *ast.BlockStmt) {
	t.Helper()
	pos := fset.Position(body.Pos())

	// Succs and Preds mirror each other exactly.
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if !containsBlock(s.Preds, b) {
				t.Errorf("%s: b%d -> b%d missing reverse edge", pos, b.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			if !containsBlock(p.Succs, b) {
				t.Errorf("%s: b%d <- b%d missing forward edge", pos, b.Index, p.Index)
			}
		}
	}

	// Entry and Exit are well formed.
	if len(g.Entry.Preds) != 0 {
		t.Errorf("%s: entry has predecessors", pos)
	}
	if len(g.Exit.Succs) != 0 {
		t.Errorf("%s: exit has successors", pos)
	}

	// Single exit set: every return statement's block edges straight
	// to the unique Exit.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				if len(b.Succs) != 1 || b.Succs[0] != g.Exit {
					t.Errorf("%s: return in b%d does not edge to exit", pos, b.Index)
				}
			}
		}
	}

	// Connectivity: every reachable block either reaches Exit or
	// ends the path explicitly (panic/no-return call, select{}, or
	// spinning in an infinite loop — which still has successors).
	reach := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	for b := range reach {
		if b == g.Exit || len(b.Succs) > 0 {
			continue
		}
		// Dead end: must be an explicit terminator.
		if !endsWithTerminator(b) {
			t.Errorf("%s: reachable block b%d (%s) dead-ends without panic/select{}",
				pos, b.Index, b.Kind)
		}
	}

	// Unreachable blocks must genuinely be unreachable from entry
	// (the builder only creates them for dead code and empty joins).
	for _, b := range g.Blocks {
		if !reach[b] && len(b.Preds) != 0 {
			for _, p := range b.Preds {
				if reach[p] {
					t.Errorf("%s: block b%d has reachable pred b%d but was not reached",
						pos, b.Index, p.Index)
				}
			}
		}
	}
}

func containsBlock(list []*Block, b *Block) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}

func endsWithTerminator(b *Block) bool {
	if b.Kind == "select.head" {
		return true // select{} blocks forever
	}
	if len(b.Nodes) == 0 {
		return false
	}
	last := b.Nodes[len(b.Nodes)-1]
	es, ok := last.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
