package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// NewSpanBalance returns the spanbalance analyzer for the packages
// matching the given import-path prefixes (all packages when none are
// given). Every trace span opened in a function scope — the result of
// (*trace.Tracer).Start or (*trace.Span).Child — must reach an End in
// that scope (directly or via defer) or be handed off. A span that is
// neither ended nor handed off stays open forever: the chrome export
// closes it at teardown time, the profiler sees a truncated causal
// chain, and the per-phase attribution stops summing to the
// end-to-end latency.
//
// Hand-offs count as balanced because ownership moved: returning the
// span, passing it to another function, storing it in a field, slice,
// map, or channel, and capturing it in a function literal all make
// someone else responsible for the End. Spans whose result is
// discarded outright (a bare call statement, or assignment to _) can
// never be ended and are always reported; use SpanAt to record an
// already-closed interval instead.
func NewSpanBalance(scope ...string) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "spanbalance",
		Doc: "flag trace spans (Tracer.Start, Span.Child) that are neither ended in their " +
			"function scope nor handed off: an open span truncates the causal chains the " +
			"critical-path profiler depends on",
	}
	a.Run = func(pass *analysis.Pass) error {
		if len(scope) > 0 && !hasPrefixAny(pass.Pkg.Path(), scope) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body != nil {
						checkSpanScope(pass, n.Body)
					}
				case *ast.FuncLit:
					checkSpanScope(pass, n.Body)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// spanVar tracks one span-holding variable within one function scope.
type spanVar struct {
	pos     token.Pos // the span-creating call
	name    string
	ended   bool // an End() on the variable is reachable in this scope
	escaped bool // ownership handed off: return, argument, store, capture
}

// checkSpanScope audits one function scope (function literals are
// independent scopes: a span ended inside a spawned closure is a
// hand-off, not a local End).
func checkSpanScope(pass *analysis.Pass, body *ast.BlockStmt) {
	vars := make(map[types.Object]*spanVar)
	var order []types.Object
	track := func(id *ast.Ident, at token.Pos) {
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return
		}
		if vars[obj] == nil {
			vars[obj] = &spanVar{pos: at, name: id.Name}
			order = append(order, obj)
		}
	}

	// Pass 1: span creations. Only results bound to a plain variable
	// are tracked; a result stored through a pointer, field, or index
	// is owned by that structure, and a result consumed by a larger
	// expression (argument, return, composite literal) escaped at
	// birth. Results discarded outright are reported immediately.
	creation := func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if spanNewCall(pass, rhs) == nil || i >= len(n.Lhs) {
					continue
				}
				id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue // stored into a field/slot: owned there
				}
				if id.Name == "_" {
					pass.Reportf(rhs.Pos(), "span result discarded: nothing can End() it; bind and End the span, or record a closed interval with SpanAt")
					continue
				}
				track(id, rhs.Pos())
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, v := range vs.Values {
					if spanNewCall(pass, v) == nil || i >= len(vs.Names) {
						continue
					}
					if vs.Names[i].Name == "_" {
						pass.Reportf(v.Pos(), "span result discarded: nothing can End() it; bind and End the span, or record a closed interval with SpanAt")
						continue
					}
					track(vs.Names[i], v.Pos())
				}
			}
		case *ast.ExprStmt:
			if spanNewCall(pass, n.X) != nil {
				pass.Reportf(n.X.Pos(), "span result discarded: nothing can End() it; bind and End the span, or record a closed interval with SpanAt")
			}
		}
	}

	// Pass 2: Ends and benign uses. A tracked variable used as the
	// receiver of a span method, or as an assignment target, is not a
	// hand-off; everything else is (pass 3).
	benign := make(map[*ast.Ident]bool)
	use := func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					benign[id] = true
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return
			}
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						benign[id] = true
					}
				}
			}
		case *ast.CallExpr:
			name := spanMethod(pass, n)
			if name == "" {
				return
			}
			sel, _ := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return
			}
			obj := pass.TypesInfo.Uses[id]
			sv := vars[obj]
			if sv == nil {
				return
			}
			benign[id] = true
			if name == "End" {
				sv.ended = true
			}
		}
	}

	both := func(n ast.Node) {
		creation(n)
		use(n)
		// Deferred calls arrive as the DeferStmt itself; audit the
		// call the same way (defer sp.End() is the canonical balance).
		if d, ok := n.(*ast.DeferStmt); ok {
			use(d.Call)
		}
	}
	inspectScope(body, both)

	if len(vars) == 0 {
		return
	}

	// Pass 3: hand-offs. Any remaining use of a tracked variable —
	// argument, return value, copy, address, channel send, composite
	// literal, capture inside a nested function literal — transfers
	// ownership. This walk deliberately includes function literals:
	// a closure capturing the span is exactly such a transfer.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || benign[id] {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if sv := vars[obj]; sv != nil {
			sv.escaped = true
		}
		return true
	})

	for _, obj := range order {
		sv := vars[obj]
		if !sv.ended && !sv.escaped {
			pass.Reportf(sv.pos, "span %q is never ended in this function and never handed off: End() it on every path (usually via defer), or //lint:ignore spanbalance with the hand-off protocol", sv.name)
		}
	}
}

// spanNewCall reports whether e is a call that opens a trace span:
// a method named Start or Child, defined in a package named "trace",
// returning the span type.
func spanNewCall(pass *analysis.Pass, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "trace" {
		return nil
	}
	if fn.Name() != "Start" && fn.Name() != "Child" {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 || !isSpanType(sig.Results().At(0).Type()) {
		return nil
	}
	return call
}

// spanMethod resolves call to a method on the trace span type and
// returns its name ("" when call is something else).
func spanMethod(pass *analysis.Pass, call *ast.CallExpr) string {
	if _, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); !ok {
		return ""
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isSpanType(sig.Recv().Type()) {
		return ""
	}
	return fn.Name()
}

// isSpanType reports whether t is trace.Span (or a pointer to it),
// matched by type and package name so both the real
// repro/internal/trace package and the test fixture qualify.
func isSpanType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Span" && obj.Pkg() != nil && obj.Pkg().Name() == "trace"
}
