// Package kernelbench holds the simulation-kernel microbenchmark
// bodies. They live in a plain package (not a _test file) so two
// consumers share one definition: the root bench_test.go wraps them as
// ordinary `go test -bench` benchmarks, and cmd/dacbench drives them
// through testing.Benchmark to record allocs/op series for the
// regression gate. Each body measures a steady-state hot path the
// zero-allocation tier-1 tests pin at 0 allocs/op.
package kernelbench

import (
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func bump(a any) { *(a.(*int))++ }

// EventDispatch measures closure-free timer dispatch: one AfterArg
// schedule plus the controller's pop-and-run, per iteration.
func EventDispatch(b *testing.B) {
	s := sim.New()
	hits := new(int)
	if err := s.Run(func() {
		for i := 0; i < 16; i++ { // warm pools and queue storage
			s.AfterArg(time.Microsecond, bump, hits)
			s.Sleep(2 * time.Microsecond)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.AfterArg(time.Microsecond, bump, hits)
			s.Sleep(2 * time.Microsecond)
		}
	}); err != nil {
		b.Fatalf("Run: %v", err)
	}
}

// SleepWake measures the actor park/dispatch/wake round trip through
// the pooled wake channels.
func SleepWake(b *testing.B) {
	s := sim.New()
	if err := s.Run(func() {
		for i := 0; i < 16; i++ {
			s.Sleep(time.Microsecond)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Sleep(time.Microsecond)
		}
	}); err != nil {
		b.Fatalf("Run: %v", err)
	}
}

// HistogramRecord measures one streaming-histogram observation: the
// log-scale bucket index plus four atomic updates. The telemetry
// zero-alloc gate (internal/telemetry's TestRecordZeroAlloc) pins this
// path at 0 allocs/op; dacbench records the same number as a gated
// series so growth fails the benchmark-regression job too.
func HistogramRecord(b *testing.B) {
	h := telemetry.NewHistogram()
	for i := 0; i < 16; i++ { // settle bucket state
		h.Record(time.Duration(i) * time.Microsecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Cycle through ~3 decades of latency so records hit many
		// buckets, like real dyn_latency observations do.
		h.Record(time.Duration(i%1000+1) * 50 * time.Microsecond)
	}
}

// scrapeClock is the minimal manual telemetry.Clock for driving
// ScrapeNow without a simulation kernel.
type scrapeClock struct{ now time.Duration }

func (c *scrapeClock) Now() time.Duration          { return c.now }
func (c *scrapeClock) After(time.Duration, func()) {}
func (c *scrapeClock) advance(d time.Duration)     { c.now += d }

// RegistryScrape measures one full scrape cycle over a representative
// instrument mix (4 counters, 2 gauges, 2 histograms, 1 occupancy —
// roughly what one instrumented subsystem registers). Each iteration
// is self-contained — fresh scraper, warm-up scrape, then 4 windows —
// so allocs/op is a deterministic constant the dacbench compare gate
// can hold flat.
func RegistryScrape(b *testing.B) {
	clk := &scrapeClock{}
	reg := telemetry.New()
	ctrs := []*telemetry.Counter{
		reg.Counter("bench.submits"), reg.Counter("bench.msgs"),
		reg.Counter("bench.bytes"), reg.Counter("bench.done"),
	}
	gauges := []*telemetry.Gauge{
		reg.Gauge("bench.queue_depth"), reg.Gauge("bench.inflight"),
	}
	hists := []*telemetry.Histogram{
		reg.Histogram("bench.latency"), reg.Histogram("bench.cycle"),
	}
	occ := reg.Occupancy("bench.busy")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scr := telemetry.NewScraper(reg, clk, time.Second)
		scr.ScrapeNow() // establish prev-state baselines
		for w := 0; w < 4; w++ {
			for _, c := range ctrs {
				c.Add(3)
			}
			for _, g := range gauges {
				g.Set(float64(w))
			}
			for _, h := range hists {
				h.Record(time.Duration(w+1) * time.Millisecond)
			}
			occ.OnFor(100 * time.Millisecond)
			clk.advance(time.Second)
			scr.ScrapeNow()
		}
	}
}

// NetsimHop measures one fabric hop: arena send, scheduled delivery,
// matched receive, and envelope release.
func NetsimHop(b *testing.B) {
	s := sim.New()
	if err := s.Run(func() {
		n := netsim.New(s, netsim.LinkParams{Latency: time.Microsecond})
		src := n.Endpoint("bench/src")
		dst := n.Endpoint("bench/dst")
		defer src.Close()
		defer dst.Close()
		hop := func() {
			if err := src.Send("bench/dst", "ping", "payload", 64); err != nil {
				b.Errorf("Send: %v", err)
			}
			m, err := dst.Recv()
			if err != nil {
				b.Errorf("Recv: %v", err)
				return
			}
			m.Release()
		}
		for i := 0; i < 16; i++ {
			hop()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hop()
		}
	}); err != nil {
		b.Fatalf("Run: %v", err)
	}
}

// ArrivalsNext measures one open-loop arrival draw: an interarrival
// gap from the dedicated arrival RNG stream plus a weighted shape
// pick and job naming. The service admission pump pays this once per
// admitted job, so its per-op cost (a couple of small allocations for
// the job name and dynamic-phase script) bounds ingest overhead at
// millions of jobs per virtual hour.
func ArrivalsNext(b *testing.B) {
	src, err := workload.NewArrivals(workload.ArrivalConfig{Rate: 1000, Seed: 1})
	if err != nil {
		b.Fatalf("NewArrivals: %v", err)
	}
	for i := 0; i < 16; i++ { // settle RNG and counter state
		if _, ok := src.Next(); !ok {
			b.Fatal("source dried up")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := src.Next(); !ok {
			b.Fatal("source dried up")
		}
	}
}

// AuditRecordDisabled measures the recorder-disabled hot path: every
// pbs/maui/netsim/gpusim mutation site calls Record unconditionally
// on a possibly-nil recorder, so the nil path must stay free — the
// audit layer's zero-alloc gate (internal/audit's
// TestDisabledRecordAllocs) pins it at 0 allocs/op and dacbench
// records the same number as a gated series.
func AuditRecordDisabled(b *testing.B) {
	var rec *audit.Recorder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Record(audit.KindJob, "pbs", "1.server", "submit", int64(i), 0)
	}
}

// AuditRecordEnabled measures the recorder-enabled hot path: one
// in-place ring-slot write under the recorder mutex, no per-event
// allocation (the concrete-typed signature keeps payloads out of
// interface boxes).
func AuditRecordEnabled(b *testing.B) {
	rec := audit.New(1 << 12)
	for i := 0; i < 16; i++ { // settle the ring storage
		rec.Record(audit.KindJob, "pbs", "1.server", "submit", int64(i), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Record(audit.KindJob, "pbs", "1.server", "submit", int64(i), 0)
	}
}
