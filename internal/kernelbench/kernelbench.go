// Package kernelbench holds the simulation-kernel microbenchmark
// bodies. They live in a plain package (not a _test file) so two
// consumers share one definition: the root bench_test.go wraps them as
// ordinary `go test -bench` benchmarks, and cmd/dacbench drives them
// through testing.Benchmark to record allocs/op series for the
// regression gate. Each body measures a steady-state hot path the
// zero-allocation tier-1 tests pin at 0 allocs/op.
package kernelbench

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

func bump(a any) { *(a.(*int))++ }

// EventDispatch measures closure-free timer dispatch: one AfterArg
// schedule plus the controller's pop-and-run, per iteration.
func EventDispatch(b *testing.B) {
	s := sim.New()
	hits := new(int)
	if err := s.Run(func() {
		for i := 0; i < 16; i++ { // warm pools and queue storage
			s.AfterArg(time.Microsecond, bump, hits)
			s.Sleep(2 * time.Microsecond)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.AfterArg(time.Microsecond, bump, hits)
			s.Sleep(2 * time.Microsecond)
		}
	}); err != nil {
		b.Fatalf("Run: %v", err)
	}
}

// SleepWake measures the actor park/dispatch/wake round trip through
// the pooled wake channels.
func SleepWake(b *testing.B) {
	s := sim.New()
	if err := s.Run(func() {
		for i := 0; i < 16; i++ {
			s.Sleep(time.Microsecond)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Sleep(time.Microsecond)
		}
	}); err != nil {
		b.Fatalf("Run: %v", err)
	}
}

// NetsimHop measures one fabric hop: arena send, scheduled delivery,
// matched receive, and envelope release.
func NetsimHop(b *testing.B) {
	s := sim.New()
	if err := s.Run(func() {
		n := netsim.New(s, netsim.LinkParams{Latency: time.Microsecond})
		src := n.Endpoint("bench/src")
		dst := n.Endpoint("bench/dst")
		defer src.Close()
		defer dst.Close()
		hop := func() {
			if err := src.Send("bench/dst", "ping", "payload", 64); err != nil {
				b.Errorf("Send: %v", err)
			}
			m, err := dst.Recv()
			if err != nil {
				b.Errorf("Recv: %v", err)
				return
			}
			m.Release()
		}
		for i := 0; i < 16; i++ {
			hop()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hop()
		}
	}); err != nil {
		b.Fatalf("Run: %v", err)
	}
}
