package metrics

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// GanttBar is one row of an ASCII timeline: typically a job with its
// queued and running intervals.
type GanttBar struct {
	Label string
	// Queued marks the waiting interval (rendered '.'), Start..End
	// the running interval (rendered '#'). Queued may equal Start
	// for jobs that started immediately.
	Queued time.Duration
	Start  time.Duration
	End    time.Duration
}

// Gantt renders bars as an ASCII timeline scaled to width columns —
// the qstat -t style overview used by dacctl's workload scenario.
type Gantt struct {
	Title string
	Width int
	Bars  []GanttBar
}

// Add appends a bar.
func (g *Gantt) Add(label string, queued, start, end time.Duration) {
	g.Bars = append(g.Bars, GanttBar{Label: label, Queued: queued, Start: start, End: end})
}

// Render writes the timeline.
func (g *Gantt) Render(w io.Writer) error {
	width := g.Width
	if width <= 0 {
		width = 60
	}
	var min, max time.Duration
	first := true
	for _, b := range g.Bars {
		if first || b.Queued < min {
			min = b.Queued
		}
		if first || b.End > max {
			max = b.End
		}
		first = false
	}
	if first {
		_, err := fmt.Fprintf(w, "%s\n(empty)\n", g.Title)
		return err
	}
	span := max - min
	if span <= 0 {
		span = time.Nanosecond
	}
	col := func(t time.Duration) int {
		c := int(float64(t-min) / float64(span) * float64(width))
		if c < 0 {
			c = 0
		}
		if c > width {
			c = width
		}
		return c
	}
	labelW := 0
	for _, b := range g.Bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var sb strings.Builder
	if g.Title != "" {
		fmt.Fprintf(&sb, "%s\n", g.Title)
	}
	for _, b := range g.Bars {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		qs, rs, re := col(b.Queued), col(b.Start), col(b.End)
		for i := qs; i < rs && i < width; i++ {
			row[i] = '.'
		}
		if re == rs && re < width {
			re = rs + 1 // a running job always shows at least one cell
		}
		for i := rs; i < re && i < width; i++ {
			row[i] = '#'
		}
		fmt.Fprintf(&sb, "%-*s |%s|\n", labelW, b.Label, string(row))
	}
	fmt.Fprintf(&sb, "%-*s  %v%s%v\n", labelW, "", min.Round(time.Millisecond),
		strings.Repeat(" ", maxInt(1, width-18)), max.Round(time.Millisecond))
	_, err := io.WriteString(w, sb.String())
	return err
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
