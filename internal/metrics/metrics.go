// Package metrics provides the small statistics and rendering
// helpers the experiment drivers use: multi-trial samples (the paper
// reports averages over 10 trials) and aligned text tables for the
// figure data.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample accumulates duration observations. Values are stored as the
// integer nanoseconds they arrive as, so every order statistic
// (Min/Max/Percentile at the ranks) returns an observation exactly —
// no float64-seconds round trip, no epsilon in tests.
type Sample struct {
	values []int64 // nanoseconds
}

// Add appends one observation.
func (s *Sample) Add(d time.Duration) {
	s.values = append(s.values, int64(d))
}

// N reports the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Merge appends all of o's observations to s, leaving o unchanged.
// The profiler aggregates per-job phase histograms into per-phase
// cluster histograms with this; merging then asking for a percentile
// is equivalent to having observed the union directly.
func (s *Sample) Merge(o *Sample) {
	if o == nil || len(o.values) == 0 {
		return
	}
	s.values = append(s.values, o.values...)
}

// Mean returns the average observation (zero when empty).
func (s *Sample) Mean() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += float64(v)
	}
	return time.Duration(sum / float64(len(s.values)))
}

// Std returns the population standard deviation.
func (s *Sample) Std() time.Duration {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	mean := float64(s.Mean())
	sum := 0.0
	for _, v := range s.values {
		d := float64(v) - mean
		sum += d * d
	}
	return time.Duration(math.Sqrt(sum / float64(n)))
}

// sorted returns the observations in ascending order without
// mutating the sample. Min, Max, and Percentile all read their order
// statistics from this one copy-and-sort path.
func (s *Sample) sorted() []int64 {
	c := append([]int64(nil), s.values...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	return c
}

// Min returns the smallest observation, exactly as it was added.
func (s *Sample) Min() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	return time.Duration(s.sorted()[0])
}

// Max returns the largest observation, exactly as it was added.
func (s *Sample) Max() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	c := s.sorted()
	return time.Duration(c[len(c)-1])
}

// Percentile returns the p-th percentile (p in [0,100], so P95 is
// Percentile(95)) using linear interpolation between closest ranks;
// out-of-range or NaN p clamps to the nearest boundary (NaN to 0), so
// Percentile(0) is exactly Min, Percentile(100) exactly Max, and a
// single observation answers every p with itself. It returns zero
// when empty. The paper-style mean±std hides tails; the observability
// summary reports P50/P95/P99 through this.
func (s *Sample) Percentile(p float64) time.Duration {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	if math.IsNaN(p) || p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := s.sorted()
	if p == 0 || n == 1 {
		return time.Duration(sorted[0])
	}
	if p == 100 {
		return time.Duration(sorted[n-1])
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := lo + 1
	// Guard the index arithmetic against floating-point drift at the
	// top of the range (p just below 100 can round rank up to n-1).
	if lo >= n-1 {
		return time.Duration(sorted[n-1])
	}
	frac := rank - float64(lo)
	return time.Duration(float64(sorted[lo]) + frac*float64(sorted[hi]-sorted[lo]))
}

// Ms formats a duration as milliseconds with one decimal, the unit
// the figures use.
func Ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
}

// Sec formats a duration as seconds with three decimals.
func Sec(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// Table is an aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values. Cells containing
// commas, quotes, or newlines are quoted RFC 4180-style (trace labels
// and span annotations flow into tables, so cells can no longer be
// assumed comma-free).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvCell(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// csvCell quotes a cell per RFC 4180 when it contains a comma, a
// quote, or a line break, doubling embedded quotes.
func csvCell(c string) string {
	if !strings.ContainsAny(c, ",\"\n\r") {
		return c
	}
	return "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
}
