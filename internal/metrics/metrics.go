// Package metrics provides the small statistics and rendering
// helpers the experiment drivers use: multi-trial samples (the paper
// reports averages over 10 trials) and aligned text tables for the
// figure data.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample accumulates duration observations.
type Sample struct {
	values []float64 // seconds
}

// Add appends one observation.
func (s *Sample) Add(d time.Duration) {
	s.values = append(s.values, d.Seconds())
}

// N reports the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Merge appends all of o's observations to s, leaving o unchanged.
// The profiler aggregates per-job phase histograms into per-phase
// cluster histograms with this; merging then asking for a percentile
// is equivalent to having observed the union directly.
func (s *Sample) Merge(o *Sample) {
	if o == nil || len(o.values) == 0 {
		return
	}
	s.values = append(s.values, o.values...)
}

// Mean returns the average observation (zero when empty).
func (s *Sample) Mean() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return durOf(sum / float64(len(s.values)))
}

// Std returns the population standard deviation.
func (s *Sample) Std() time.Duration {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	mean := s.Mean().Seconds()
	sum := 0.0
	for _, v := range s.values {
		d := v - mean
		sum += d * d
	}
	return durOf(math.Sqrt(sum / float64(n)))
}

// Min returns the smallest observation.
func (s *Sample) Min() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return durOf(m)
}

// Max returns the largest observation.
func (s *Sample) Max() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return durOf(m)
}

// Percentile returns the p-th percentile (p in [0,100], so P95 is
// Percentile(95)) using linear interpolation between closest ranks;
// out-of-range or NaN p clamps to the nearest boundary (NaN to 0), so
// Percentile(0) is exactly Min, Percentile(100) exactly Max, and a
// single observation answers every p with itself. It returns zero
// when empty. The paper-style mean±std hides tails; the observability
// summary reports P50/P95/P99 through this.
func (s *Sample) Percentile(p float64) time.Duration {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	if math.IsNaN(p) || p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	if p == 0 || n == 1 {
		return durOf(sorted[0])
	}
	if p == 100 {
		return durOf(sorted[n-1])
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := lo + 1
	// Guard the index arithmetic against floating-point drift at the
	// top of the range (p just below 100 can round rank up to n-1).
	if lo >= n-1 {
		return durOf(sorted[n-1])
	}
	frac := rank - float64(lo)
	return durOf(sorted[lo] + frac*(sorted[hi]-sorted[lo]))
}

func durOf(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}

// Ms formats a duration as milliseconds with one decimal, the unit
// the figures use.
func Ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
}

// Sec formats a duration as seconds with three decimals.
func Sec(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// Table is an aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values. Cells containing
// commas, quotes, or newlines are quoted RFC 4180-style (trace labels
// and span annotations flow into tables, so cells can no longer be
// assumed comma-free).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvCell(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// csvCell quotes a cell per RFC 4180 when it contains a comma, a
// quote, or a line break, doubling embedded quotes.
func csvCell(c string) string {
	if !strings.ContainsAny(c, ",\"\n\r") {
		return c
	}
	return "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
}
