package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Std() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestSampleMoments(t *testing.T) {
	var s Sample
	for _, d := range []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 300 * time.Millisecond} {
		s.Add(d)
	}
	if s.N() != 3 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); got != 200*time.Millisecond {
		t.Errorf("mean = %v", got)
	}
	if got := s.Min(); got != 100*time.Millisecond {
		t.Errorf("min = %v", got)
	}
	if got := s.Max(); got != 300*time.Millisecond {
		t.Errorf("max = %v", got)
	}
	// Population stddev of {0.1,0.2,0.3} = sqrt(2/3)*0.1 ≈ 81.65ms.
	want := time.Duration(math.Sqrt(2.0/3.0) * 0.1 * float64(time.Second))
	if diff := s.Std() - want; diff > time.Microsecond || diff < -time.Microsecond {
		t.Errorf("std = %v, want ≈%v", s.Std(), want)
	}
}

func TestSamplePropertyMinLEMeanLEMax(t *testing.T) {
	if err := quick.Check(func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(time.Duration(v))
		}
		return s.Min() <= s.Mean() && s.Mean() <= s.Max()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Observations are stored as integer nanoseconds, so every order
// statistic returns an added duration bit-for-bit — including values
// like 1<<60 - 1 that do not survive a float64-seconds round trip.
func TestSampleExactRoundTrip(t *testing.T) {
	awkward := []time.Duration{
		1,
		time.Nanosecond*123456789 + 1,
		time.Duration(1)<<60 - 1, // 53+ significant bits: float64 seconds would round
		3*time.Hour + 7*time.Nanosecond,
		0,
	}
	var s Sample
	for _, d := range awkward {
		s.Add(d)
	}
	if got, want := s.Min(), time.Duration(0); got != want {
		t.Errorf("Min = %d, want %d", got, want)
	}
	if got, want := s.Max(), time.Duration(1)<<60-1; got != want {
		t.Errorf("Max = %d, want %d", got, want)
	}
	// P0/P100 and exact-rank percentiles return stored values, not
	// reconstructions.
	if got := s.Percentile(100); got != time.Duration(1)<<60-1 {
		t.Errorf("P100 = %d, want exact max", got)
	}
	if got := s.Percentile(50); got != 123456790*time.Nanosecond {
		t.Errorf("P50 = %d, want the exact middle observation", got)
	}
}

// quick.Check: every added duration is recoverable exactly via the
// percentile at its rank.
func TestSampleRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(raw []int64) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		seen := make(map[time.Duration]bool, len(raw))
		for _, v := range raw {
			if v < 0 {
				v = -v
			}
			s.Add(time.Duration(v))
			seen[time.Duration(v)] = true
		}
		// Min and Max must be members of the sample.
		return seen[s.Min()] && seen[s.Max()]
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatting(t *testing.T) {
	if got := Ms(1500 * time.Microsecond); got != "1.5" {
		t.Errorf("Ms = %q", got)
	}
	if got := Sec(250 * time.Millisecond); got != "0.250" {
		t.Errorf("Sec = %q", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "Fig X", Headers: []string{"n", "time"}}
	tb.AddRow("1", "0.1")
	tb.AddRow("10", "0.25")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fig X", "n ", "time", "--", "10", "0.25"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Headers: []string{"a", "b"}}
	tb.AddRow("1", "2")
	var b strings.Builder
	if err := tb.CSV(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "a,b\n1,2\n" {
		t.Errorf("csv = %q", got)
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tb := Table{Headers: []string{"plain", "with,comma", `with"quote`}}
	tb.AddRow("a,b", `say "hi"`, "line1\nline2")
	var b strings.Builder
	if err := tb.CSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "plain,\"with,comma\",\"with\"\"quote\"\n" +
		"\"a,b\",\"say \"\"hi\"\"\",\"line1\nline2\"\n"
	if got := b.String(); got != want {
		t.Errorf("csv = %q, want %q", got, want)
	}
}

func TestPercentileEmpty(t *testing.T) {
	var s Sample
	if got := s.Percentile(50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
}

func TestPercentileSingle(t *testing.T) {
	var s Sample
	s.Add(42 * time.Millisecond)
	for _, p := range []float64{0, 50, 99, 100} {
		if got := s.Percentile(p); got != 42*time.Millisecond {
			t.Errorf("P%v = %v, want 42ms", p, got)
		}
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var s Sample
	// Insert out of order: Percentile must sort.
	for _, ms := range []int{40, 10, 30, 20} {
		s.Add(time.Duration(ms) * time.Millisecond)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, 10 * time.Millisecond},
		{50, 25 * time.Millisecond}, // halfway between 20 and 30
		{100, 40 * time.Millisecond},
		{-5, 10 * time.Millisecond}, // clamped
		{150, 40 * time.Millisecond},
	}
	for _, c := range cases {
		got := s.Percentile(c.p)
		if diff := got - c.want; diff > time.Microsecond || diff < -time.Microsecond {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	// Percentile must not mutate the sample's insertion order
	// (Min/Max/Mean still correct afterwards).
	if s.Min() != 10*time.Millisecond || s.Max() != 40*time.Millisecond {
		t.Error("Percentile mutated the sample")
	}
}

func TestPercentileMonotone(t *testing.T) {
	if err := quick.Check(func(raw []uint32, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			s.Add(time.Duration(v))
		}
		lo, hi := float64(a%101), float64(b%101)
		if lo > hi {
			lo, hi = hi, lo
		}
		return s.Percentile(lo) <= s.Percentile(hi) &&
			s.Percentile(0) == s.Min() && s.Percentile(100) == s.Max()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileBoundaries(t *testing.T) {
	two := Sample{}
	two.Add(10 * time.Millisecond)
	two.Add(20 * time.Millisecond)
	single := Sample{}
	single.Add(7 * time.Millisecond)
	cases := []struct {
		name string
		s    *Sample
		p    float64
		want time.Duration
	}{
		{"p0 is exactly min", &two, 0, 10 * time.Millisecond},
		{"p100 is exactly max", &two, 100, 20 * time.Millisecond},
		{"NaN clamps to p0", &two, math.NaN(), 10 * time.Millisecond},
		{"negative clamps to p0", &two, -10, 10 * time.Millisecond},
		{"overshoot clamps to p100", &two, 1e9, 20 * time.Millisecond},
		{"just below 100 stays in range", &two, math.Nextafter(100, 0), 20 * time.Millisecond},
		{"n=1 p0", &single, 0, 7 * time.Millisecond},
		{"n=1 p50", &single, 50, 7 * time.Millisecond},
		{"n=1 p100", &single, 100, 7 * time.Millisecond},
		{"n=1 NaN", &single, math.NaN(), 7 * time.Millisecond},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := c.s.Percentile(c.p)
			if diff := got - c.want; diff > time.Microsecond || diff < -time.Microsecond {
				t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
			}
		})
	}
}

func TestSampleMerge(t *testing.T) {
	var a, b Sample
	a.Add(10 * time.Millisecond)
	a.Add(20 * time.Millisecond)
	b.Add(30 * time.Millisecond)
	b.Add(40 * time.Millisecond)
	a.Merge(&b)
	if a.N() != 4 {
		t.Fatalf("merged N = %d, want 4", a.N())
	}
	if a.Min() != 10*time.Millisecond || a.Max() != 40*time.Millisecond {
		t.Errorf("merged range = %v..%v", a.Min(), a.Max())
	}
	if got, want := a.Mean(), 25*time.Millisecond; got != want {
		t.Errorf("merged mean = %v, want %v", got, want)
	}
	// The source sample is left intact, and nil/empty merges are no-ops.
	if b.N() != 2 {
		t.Errorf("source mutated: N = %d", b.N())
	}
	a.Merge(nil)
	a.Merge(&Sample{})
	if a.N() != 4 {
		t.Errorf("no-op merges changed N to %d", a.N())
	}
}

func TestMergeEquivalentToUnion(t *testing.T) {
	if err := quick.Check(func(xs, ys []uint32, p uint8) bool {
		var split, union Sample
		var other Sample
		for _, v := range xs {
			split.Add(time.Duration(v))
			union.Add(time.Duration(v))
		}
		for _, v := range ys {
			other.Add(time.Duration(v))
			union.Add(time.Duration(v))
		}
		split.Merge(&other)
		pf := float64(p % 101)
		return split.N() == union.N() && split.Percentile(pf) == union.Percentile(pf)
	}, nil); err != nil {
		t.Fatal(err)
	}
}
