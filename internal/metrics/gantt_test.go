package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestGanttRender(t *testing.T) {
	g := Gantt{Title: "timeline", Width: 40}
	g.Add("job1", 0, 0, 100*time.Millisecond)
	g.Add("job2", 0, 50*time.Millisecond, 200*time.Millisecond)
	var b strings.Builder
	if err := g.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "timeline") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + 2 bars + axis
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// job2 shows a queued prefix of dots before its run.
	if !strings.Contains(lines[2], ".") || !strings.Contains(lines[2], "#") {
		t.Errorf("job2 row = %q", lines[2])
	}
	// job1 starts at the left edge.
	if !strings.Contains(lines[1], "|#") {
		t.Errorf("job1 row = %q", lines[1])
	}
}

func TestGanttEmpty(t *testing.T) {
	g := Gantt{Title: "none"}
	var b strings.Builder
	if err := g.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "(empty)") {
		t.Errorf("out = %q", b.String())
	}
}

func TestGanttInstantaneousJobStillVisible(t *testing.T) {
	g := Gantt{Width: 20}
	g.Add("blip", 0, 0, 0)
	g.Add("long", 0, 0, time.Second)
	var b strings.Builder
	if err := g.Render(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if !strings.Contains(lines[0], "#") {
		t.Errorf("zero-length bar invisible: %q", lines[0])
	}
}

func TestGanttDefaultWidth(t *testing.T) {
	g := Gantt{}
	g.Add("j", 0, 0, time.Second)
	var b strings.Builder
	if err := g.Render(&b); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(b.String(), "\n")[0]) < 60 {
		t.Errorf("default width not applied: %q", b.String())
	}
}
