// Package telemetry is the deterministic live-metrics layer of the
// simulator: streaming histograms, typed instruments, virtual-time
// scrapes, and SLO evaluation.
//
// Where internal/metrics buffers every observation for post-hoc
// statistics, telemetry maintains running state that can be read *in
// the middle of a run* — the substrate for windowed p50/p99/p999
// series, occupancy ratios, and first-breach SLO timestamps. Every
// piece is virtual-time native (durations come from the sim clock,
// never the wall clock) and deterministic: identical runs produce
// byte-identical scrape files at every parallelism level.
//
// The layer is organized as
//
//   - Histogram: a mergeable fixed-bucket log-scale streaming
//     histogram (this file),
//   - Registry + Counter/Gauge/Occupancy: typed named instruments
//     (registry.go),
//   - Scraper: periodic virtual-time scrapes into windowed series
//     (scrape.go),
//   - Objective/Evaluate: SLO compliance with first-breach virtual
//     timestamps (slo.go),
//   - WriteProm/WriteJSONL: exporters (export.go).
//
// Like the tracer, every instrument is nil-safe: a nil *Registry
// hands out nil instruments whose methods are no-ops, so packages
// instrument unconditionally and pay nothing when telemetry is off.
package telemetry

import (
	"math"
	"math/bits"
	"sync"
	"time"
)

// Bucket geometry: values are integer nanoseconds. The first
// subBucketCount buckets are exact (one bucket per nanosecond); above
// that each power-of-two octave is split into subBucketCount linear
// sub-buckets, so the relative bucket width — and therefore the worst
// quantile error — is bounded by 2^-subBucketBits (3.125%). This is
// the HDR-histogram layout with fixed precision, which keeps Record
// at O(1) with zero allocation and makes Merge a plain integer
// bucket-count addition (associative and commutative by
// construction).
const (
	subBucketBits  = 5
	subBucketCount = 1 << subBucketBits
	// Octave exponents run from subBucketBits to 62 (int64 range), so
	// the table covers every non-negative int64 nanosecond value.
	numBuckets = subBucketCount * (64 - subBucketBits)
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < subBucketCount {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // floor(log2 v), >= subBucketBits
	return subBucketCount*(e-subBucketBits) + int(v>>uint(e-subBucketBits))
}

// bucketHigh returns the largest value the bucket holds — the
// representative Quantile reports, so quantiles never under-report.
func bucketHigh(i int) int64 {
	if i < subBucketCount {
		return int64(i)
	}
	q := i / subBucketCount // octave + 1
	m := int64(i - subBucketCount*(q-1))
	width := int64(1) << uint(q-1)
	return m<<uint(q-1) + width - 1
}

// Histogram is a streaming log-scale histogram over integer-nanosecond
// durations. Record is O(1) and allocation-free; Merge adds bucket
// counts, so merging is associative and commutative and merged
// quantiles equal the quantiles of the union stream. Quantiles are
// deterministic with bounded relative error (the bucket width,
// ≤ 3.125%); Count, Sum, Min, and Max are exact.
//
// A nil *Histogram is a no-op sink: Record does nothing and every
// accessor returns zero. All methods are safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	counts [numBuckets]int64
	count  int64
	sum    int64 // nanoseconds; exact
	min    int64 // valid when count > 0
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Record adds one duration observation. Negative durations clamp to
// zero (virtual-time subtraction can legitimately produce zero-width
// intervals, never truly negative ones).
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the exact sum of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.sum)
}

// Mean reports the exact mean observation (zero when empty).
func (h *Histogram) Mean() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Min reports the exact smallest observation (zero when empty).
func (h *Histogram) Min() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max reports the exact largest observation (zero when empty).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.max)
}

// Quantile returns the q-quantile (q in [0,1]; 0.99 is p99) as the
// upper bound of the bucket holding the ceil(q·count)-th smallest
// observation — deterministic, never under-reporting, within one
// bucket width (≤ 3.125% relative) of the true order statistic. It
// returns zero when empty; out-of-range q clamps.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return quantileLocked(&h.counts, h.count, q)
}

func quantileLocked(counts *[numBuckets]int64, count int64, q float64) time.Duration {
	if count == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(count)))
	if rank < 1 {
		rank = 1
	}
	if rank > count {
		rank = count
	}
	var cum int64
	for i := range counts {
		cum += counts[i]
		if cum >= rank {
			return time.Duration(bucketHigh(i))
		}
	}
	return time.Duration(bucketHigh(numBuckets - 1)) // unreachable: cum == count
}

// Merge adds every observation of o into h, leaving o unchanged.
// Merge is associative and commutative: any merge order over any
// partition of a stream yields byte-identical bucket counts, which is
// what lets per-trial histograms combine into figure-level ones
// without ordering the trials.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	// Lock ordering: snapshot o first, then add under h.mu, so Merge
	// never holds two histogram locks at once.
	snap := o.Clone()
	if snap.count == 0 {
		return
	}
	h.mu.Lock()
	for i, c := range snap.counts {
		h.counts[i] += c
	}
	if h.count == 0 || snap.min < h.min {
		h.min = snap.min
	}
	if snap.max > h.max {
		h.max = snap.max
	}
	h.count += snap.count
	h.sum += snap.sum
	h.mu.Unlock()
}

// Clone returns an independent copy.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{}
	if h == nil {
		return c
	}
	h.mu.Lock()
	c.counts = h.counts
	c.count = h.count
	c.sum = h.sum
	c.min = h.min
	c.max = h.max
	h.mu.Unlock()
	return c
}

// Reset empties the histogram, keeping its storage.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.counts = [numBuckets]int64{}
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
	h.mu.Unlock()
}

// Equal reports whether two histograms hold identical state — the
// bucket counts and exact aggregates all match. Used by the merge
// property tests; nil equals nil and the empty histogram.
func (h *Histogram) Equal(o *Histogram) bool {
	a, b := h.Clone(), o.Clone()
	return a.counts == b.counts && a.count == b.count && a.sum == b.sum &&
		a.min == b.min && a.max == b.max
}

// windowInto writes the delta h−prev into out (bucket-wise count
// subtraction) and copies h into prev for the next window. The delta's
// min/max are bucket bounds, not exact, since cumulative min/max do
// not subtract; quantiles and mean over the delta remain exact at
// bucket precision. Scraper-internal.
func (h *Histogram) windowInto(prev, out *Histogram) {
	if h == nil {
		return
	}
	h.mu.Lock()
	out.count = h.count - prev.count
	out.sum = h.sum - prev.sum
	out.min, out.max = 0, 0
	first := true
	for i := range h.counts {
		d := h.counts[i] - prev.counts[i]
		out.counts[i] = d
		if d > 0 {
			if first {
				out.min = bucketHigh(i)
				first = false
			}
			out.max = bucketHigh(i)
		}
	}
	prev.counts = h.counts
	prev.count = h.count
	prev.sum = h.sum
	prev.min = h.min
	prev.max = h.max
	h.mu.Unlock()
}
