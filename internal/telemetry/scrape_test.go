package telemetry

import (
	"testing"
	"time"
)

// manualClock drives a Scraper without a simulation: Advance moves
// virtual time and fires due timers in schedule order.
type manualClock struct {
	now    time.Duration
	timers []manualTimer
}

type manualTimer struct {
	at time.Duration
	fn func()
}

func (c *manualClock) Now() time.Duration { return c.now }

func (c *manualClock) After(d time.Duration, fn func()) {
	c.timers = append(c.timers, manualTimer{at: c.now + d, fn: fn})
}

func (c *manualClock) Advance(d time.Duration) {
	target := c.now + d
	for {
		idx := -1
		for i, t := range c.timers {
			if t.at <= target && (idx < 0 || t.at < c.timers[idx].at) {
				idx = i
			}
		}
		if idx < 0 {
			break
		}
		t := c.timers[idx]
		c.timers = append(c.timers[:idx], c.timers[idx+1:]...)
		c.now = t.at
		t.fn()
	}
	c.now = target
}

func TestScraperWindows(t *testing.T) {
	reg := New()
	clk := &manualClock{}
	ctr := reg.Counter("pbs.submits")
	g := reg.Gauge("pbs.queue_depth")
	h := reg.Histogram("pbs.dyn_latency")
	occ := reg.Occupancy("maui.occupancy")

	sc := NewScraper(reg, clk, time.Second)
	sc.Start()

	// Window 0: two submits, depth 3, two latencies, 250ms busy.
	ctr.Add(2)
	g.Set(3)
	h.Record(10 * time.Millisecond)
	h.Record(30 * time.Millisecond)
	occ.OnFor(250 * time.Millisecond)
	clk.Advance(time.Second)

	// Window 1: one more submit, depth down to 1, one latency.
	ctr.Inc()
	g.Set(1)
	h.Record(20 * time.Millisecond)
	clk.Advance(time.Second)

	sc.Stop()
	wins := sc.Windows()
	if len(wins) != 2 {
		t.Fatalf("got %d windows, want 2", len(wins))
	}
	w0, w1 := wins[0], wins[1]
	if w0.Start != 0 || w0.End != time.Second || w1.Start != time.Second || w1.End != 2*time.Second {
		t.Fatalf("window bounds wrong: %+v / %+v", w0, w1)
	}

	row := func(w Window, name string) Row {
		r, ok := findRow(w, name)
		if !ok {
			t.Fatalf("window %d missing row %s", w.Index, name)
		}
		return r
	}
	if r := row(w0, "pbs.submits"); r.Total != 2 || r.Delta != 2 {
		t.Errorf("submits w0 = %+v, want total 2 delta 2", r)
	}
	if r := row(w1, "pbs.submits"); r.Total != 3 || r.Delta != 1 {
		t.Errorf("submits w1 = %+v, want total 3 delta 1", r)
	}
	if r := row(w1, "pbs.queue_depth"); r.Total != 1 || r.Delta != -2 {
		t.Errorf("queue_depth w1 = %+v, want total 1 delta -2", r)
	}
	if r := row(w0, "maui.occupancy"); r.Delta != 0.25 {
		t.Errorf("occupancy w0 delta = %v, want 0.25", r.Delta)
	}
	r0 := row(w0, "pbs.dyn_latency")
	if r0.Delta != 2 || r0.Mean != 20*time.Millisecond {
		t.Errorf("hist w0 = %+v, want delta 2 mean 20ms", r0)
	}
	if r0.P50 < 10*time.Millisecond || r0.Max < 30*time.Millisecond {
		t.Errorf("hist w0 quantiles under-report: %+v", r0)
	}
	r1 := row(w1, "pbs.dyn_latency")
	if r1.Delta != 1 || r1.Total != 3 {
		t.Errorf("hist w1 = %+v, want delta 1 total 3", r1)
	}
	if r1.P50 < 20*time.Millisecond || r1.P50 > 21*time.Millisecond {
		t.Errorf("hist w1 p50 = %v, want ~20ms (window-local, not cumulative)", r1.P50)
	}

	// Rows are sorted by name for deterministic output.
	for i := 1; i < len(w0.Rows); i++ {
		if w0.Rows[i-1].Name > w0.Rows[i].Name {
			t.Fatalf("rows not sorted: %q after %q", w0.Rows[i].Name, w0.Rows[i-1].Name)
		}
	}
}

func TestScraperStopTakesPartialWindow(t *testing.T) {
	reg := New()
	clk := &manualClock{}
	ctr := reg.Counter("sim.dispatches")
	sc := NewScraper(reg, clk, time.Second)
	sc.Start()
	clk.Advance(time.Second) // window 0
	ctr.Add(5)
	clk.now += 300 * time.Millisecond // advance without firing the pending tick
	sc.Stop()
	wins := sc.Windows()
	if len(wins) != 2 {
		t.Fatalf("got %d windows, want 2 (periodic + final partial)", len(wins))
	}
	last := wins[1]
	if last.End != 1300*time.Millisecond || last.Rows[0].Delta != 5 {
		t.Fatalf("partial window = %+v, want end 1.3s delta 5", last)
	}
	// Stop is idempotent and the dead timer must be inert.
	sc.Stop()
	clk.Advance(5 * time.Second)
	if len(sc.Windows()) != 2 {
		t.Fatal("stopped scraper kept scraping")
	}
}

func TestScraperMaxWindowsBackstop(t *testing.T) {
	reg := New()
	reg.Counter("sim.dispatches")
	clk := &manualClock{}
	sc := NewScraper(reg, clk, time.Second)
	sc.MaxWindows = 3
	sc.Start()
	clk.Advance(10 * time.Second)
	if got := len(sc.Windows()); got != 3 {
		t.Fatalf("got %d windows, want MaxWindows=3", got)
	}
	if len(clk.timers) != 0 {
		t.Fatal("scraper left a pending timer after hitting MaxWindows")
	}
}

func TestRegistryGetOrCreateAndNil(t *testing.T) {
	reg := New()
	if reg.Counter("a") != reg.Counter("a") {
		t.Fatal("Counter must return the same instrument per name")
	}
	if reg.Histogram("h") != reg.Histogram("h") {
		t.Fatal("Histogram must return the same instrument per name")
	}

	var nilReg *Registry
	c := nilReg.Counter("x")
	g := nilReg.Gauge("x")
	h := nilReg.Histogram("x")
	o := nilReg.Occupancy("x")
	c.Add(1)
	c.Inc()
	g.Set(2)
	g.Add(1)
	h.Record(time.Second)
	o.OnFor(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || o.Busy() != 0 || o.Ratio(time.Second) != 0 {
		t.Fatal("nil instruments must be inert")
	}
	if nilReg.instruments() != nil {
		t.Fatal("nil registry must enumerate empty")
	}
}

func TestGaugeAdd(t *testing.T) {
	g := &Gauge{}
	g.Add(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("Gauge.Add: got %v, want 2", g.Value())
	}
	g.Set(-7.5)
	if g.Value() != -7.5 {
		t.Fatalf("Gauge.Set: got %v, want -7.5", g.Value())
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	c := &Counter{}
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("Counter must ignore negative adds: got %d", c.Value())
	}
}
