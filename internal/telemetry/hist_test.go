package telemetry

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestBucketRoundTrip(t *testing.T) {
	// Every value maps into a bucket whose range contains it, and
	// bucket bounds are monotone.
	values := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, 1<<62 + 7}
	for _, v := range values {
		i := bucketIndex(v)
		hi := bucketHigh(i)
		if v > hi {
			t.Errorf("value %d above its bucket %d upper bound %d", v, i, hi)
		}
		if i > 0 && bucketHigh(i-1) >= v {
			t.Errorf("value %d fits a lower bucket: high(%d)=%d", v, i-1, bucketHigh(i-1))
		}
	}
	for i := 1; i < numBuckets; i++ {
		if bucketHigh(i) <= bucketHigh(i-1) {
			t.Fatalf("bucketHigh not monotone at %d: %d <= %d", i, bucketHigh(i), bucketHigh(i-1))
		}
	}
}

func TestHistogramExactAggregates(t *testing.T) {
	h := NewHistogram()
	ds := []time.Duration{5 * time.Millisecond, 17 * time.Microsecond, 3 * time.Second, 0, -time.Second}
	var sum time.Duration
	for _, d := range ds {
		h.Record(d)
		if d < 0 {
			d = 0
		}
		sum += d
	}
	if h.Count() != int64(len(ds)) {
		t.Fatalf("Count = %d, want %d", h.Count(), len(ds))
	}
	if h.Sum() != sum {
		t.Fatalf("Sum = %v, want %v", h.Sum(), sum)
	}
	if h.Min() != 0 {
		t.Fatalf("Min = %v, want 0 (negative clamps)", h.Min())
	}
	if h.Max() != 3*time.Second {
		t.Fatalf("Max = %v, want 3s", h.Max())
	}
	if h.Mean() != sum/time.Duration(len(ds)) {
		t.Fatalf("Mean = %v, want %v", h.Mean(), sum/time.Duration(len(ds)))
	}
}

func TestQuantilePrecision(t *testing.T) {
	// Quantiles must sit within one bucket (≤ 2^-subBucketBits
	// relative) above the true order statistic, and never below it.
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	var raw []int64
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(int64(10 * time.Second))
		raw = append(raw, v)
		h.Record(time.Duration(v))
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
	for _, q := range []float64{0.01, 0.5, 0.9, 0.99, 0.999, 1} {
		rank := int(q*float64(len(raw))+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		truth := raw[rank]
		got := int64(h.Quantile(q))
		if got < truth {
			t.Errorf("Quantile(%v) = %d under-reports true %d", q, got, truth)
		}
		// Upper bound: the reported bucket top is within one bucket
		// width of the true value's bucket top.
		maxOK := bucketHigh(bucketIndex(truth) + 1)
		if got > maxOK {
			t.Errorf("Quantile(%v) = %d too far above true %d (cap %d)", q, got, truth, maxOK)
		}
	}
	if h.Quantile(0) < time.Duration(raw[0]) {
		t.Errorf("Quantile(0) = %v below min %v", h.Quantile(0), time.Duration(raw[0]))
	}
}

func TestQuantileDeterministic(t *testing.T) {
	build := func() *Histogram {
		h := NewHistogram()
		for i := 0; i < 1000; i++ {
			h.Record(time.Duration(i*i) * time.Microsecond)
		}
		return h
	}
	a, b := build(), build()
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 0.999, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("Quantile(%v) not deterministic: %v vs %v", q, a.Quantile(q), b.Quantile(q))
		}
	}
	if !a.Equal(b) {
		t.Fatal("identical record streams produced unequal histograms")
	}
}

// TestMergeProperties is the satellite property test: merge is
// associative and commutative at the level of exact internal state,
// and merging partitions of a stream equals observing the union.
func TestMergeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func(n int) *Histogram {
		h := NewHistogram()
		for i := 0; i < n; i++ {
			h.Record(time.Duration(rng.Int63n(int64(time.Minute))))
		}
		return h
	}
	a, b, c := mk(400), mk(177), mk(903)

	// Commutative: a+b == b+a.
	ab := a.Clone()
	ab.Merge(b)
	ba := b.Clone()
	ba.Merge(a)
	if !ab.Equal(ba) {
		t.Fatal("merge is not commutative")
	}

	// Associative: (a+b)+c == a+(b+c).
	abc1 := ab.Clone()
	abc1.Merge(c)
	bc := b.Clone()
	bc.Merge(c)
	abc2 := a.Clone()
	abc2.Merge(bc)
	if !abc1.Equal(abc2) {
		t.Fatal("merge is not associative")
	}

	// Union: merging partitions equals one histogram over the whole
	// stream. Replay the same seed into a single histogram.
	rng2 := rand.New(rand.NewSource(7))
	all := NewHistogram()
	for i := 0; i < 400+177+903; i++ {
		all.Record(time.Duration(rng2.Int63n(int64(time.Minute))))
	}
	if !abc1.Equal(all) {
		t.Fatal("merged partitions differ from the union stream")
	}

	// Identity: merging an empty histogram changes nothing.
	id := a.Clone()
	id.Merge(NewHistogram())
	id.Merge(nil)
	if !id.Equal(a) {
		t.Fatal("empty/nil merge is not the identity")
	}
}

func TestHistogramNilAndReset(t *testing.T) {
	var h *Histogram
	h.Record(time.Second) // must not panic
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram accessors must return zero")
	}
	h.Merge(NewHistogram())
	if !h.Equal(NewHistogram()) {
		t.Fatal("nil must equal empty")
	}

	r := NewHistogram()
	r.Record(time.Millisecond)
	r.Reset()
	if !r.Equal(NewHistogram()) {
		t.Fatal("Reset must restore the empty state")
	}
}
