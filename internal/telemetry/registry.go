package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies an instrument.
type Kind string

// Instrument kinds, in the order scrape rows sort within a name.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
	KindOccupancy Kind = "occupancy"
)

// Counter is a monotonically increasing integer instrument (request
// counts, dispatched events, bytes moved). A nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increases the counter by n (negative n is ignored: counters are
// monotone by contract).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time float instrument (queue depth, in-flight
// bytes). A nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta (use ±1 for in-flight tracking).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+delta)) {
			return
		}
	}
}

// Value reports the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Occupancy accumulates busy time for a resource (a scheduler, a
// link, an accelerator class). Callers add each busy interval with
// OnFor; the scraper divides busy-time deltas by the window to get a
// per-window occupancy ratio, and Ratio gives the run-wide one. Busy
// time accrues when the interval *completes*, so a window's ratio can
// exceed 1 when a long interval lands in it; cumulative ratios are
// exact. A nil *Occupancy is a no-op.
type Occupancy struct {
	busy atomic.Int64 // nanoseconds
}

// OnFor records that the resource was busy for d (negative d is
// ignored).
func (o *Occupancy) OnFor(d time.Duration) {
	if o == nil || d <= 0 {
		return
	}
	o.busy.Add(int64(d))
}

// Busy reports the accumulated busy time.
func (o *Occupancy) Busy() time.Duration {
	if o == nil {
		return 0
	}
	return time.Duration(o.busy.Load())
}

// Ratio reports busy time as a fraction of elapsed (zero when elapsed
// is not positive).
func (o *Occupancy) Ratio(elapsed time.Duration) float64 {
	if o == nil || elapsed <= 0 {
		return 0
	}
	return float64(o.Busy()) / float64(elapsed)
}

// Registry is a named set of instruments. Each accessor returns the
// existing instrument of that name or creates it; instrument handles
// are resolved once at component construction and then used lock-free
// on the hot path. Names must be compile-time constants (the daclint
// metricname analyzer enforces this) so cardinality stays bounded and
// scrape output stays diffable across runs.
//
// A nil *Registry hands out nil instruments, whose methods are all
// no-ops — components instrument unconditionally, exactly like the
// nil-tracer pattern.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	occupancy  map[string]*Occupancy
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		occupancy:  make(map[string]*Occupancy),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Occupancy returns the named occupancy accumulator, creating it on
// first use.
func (r *Registry) Occupancy(name string) *Occupancy {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	o := r.occupancy[name]
	if o == nil {
		o = &Occupancy{}
		r.occupancy[name] = o
	}
	return o
}

// instrumentRef is one (name, kind) entry of the sorted enumeration.
type instrumentRef struct {
	name string
	kind Kind
	ctr  *Counter
	gag  *Gauge
	hist *Histogram
	occ  *Occupancy
}

// instruments returns every registered instrument sorted by name then
// kind — the deterministic enumeration scrapes and exports share.
func (r *Registry) instruments() []instrumentRef {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	refs := make([]instrumentRef, 0,
		len(r.counters)+len(r.gauges)+len(r.histograms)+len(r.occupancy))
	for name, c := range r.counters {
		refs = append(refs, instrumentRef{name: name, kind: KindCounter, ctr: c})
	}
	for name, g := range r.gauges {
		refs = append(refs, instrumentRef{name: name, kind: KindGauge, gag: g})
	}
	for name, h := range r.histograms {
		refs = append(refs, instrumentRef{name: name, kind: KindHistogram, hist: h})
	}
	for name, o := range r.occupancy {
		refs = append(refs, instrumentRef{name: name, kind: KindOccupancy, occ: o})
	}
	r.mu.Unlock()
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].name != refs[j].name {
			return refs[i].name < refs[j].name
		}
		return refs[i].kind < refs[j].kind
	})
	return refs
}
