package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteProm writes the registry's cumulative state in the Prometheus
// text exposition format (version 0.0.4): counters and gauges as-is,
// occupancy as a busy-seconds counter plus a ratio gauge over
// elapsed, and histograms as summaries with deterministic
// q=0.5/0.99/0.999 quantiles in seconds. Instrument names are
// sanitized (every non-alphanumeric byte becomes '_'); output is
// sorted, so identical runs export byte-identical pages.
func WriteProm(w io.Writer, reg *Registry, elapsed time.Duration) error {
	bw := bufio.NewWriter(w)
	for _, ref := range reg.instruments() {
		name := promName(ref.name)
		switch ref.kind {
		case KindCounter:
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, ref.ctr.Value())
		case KindGauge:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(ref.gag.Value()))
		case KindOccupancy:
			fmt.Fprintf(bw, "# TYPE %s_busy_seconds_total counter\n%s_busy_seconds_total %s\n",
				name, name, promFloat(ref.occ.Busy().Seconds()))
			fmt.Fprintf(bw, "# TYPE %s_ratio gauge\n%s_ratio %s\n",
				name, name, promFloat(ref.occ.Ratio(elapsed)))
		case KindHistogram:
			h := ref.hist
			fmt.Fprintf(bw, "# TYPE %s summary\n", name)
			for _, q := range [...]float64{0.5, 0.99, 0.999} {
				fmt.Fprintf(bw, "%s{quantile=%q} %s\n", name, promFloat(q), promFloat(h.Quantile(q).Seconds()))
			}
			fmt.Fprintf(bw, "%s_sum %s\n%s_count %d\n", name, promFloat(h.Sum().Seconds()), name, h.Count())
		}
	}
	return bw.Flush()
}

// promName maps an instrument name onto the Prometheus identifier
// charset: [a-zA-Z0-9_], with a leading underscore if the name would
// otherwise start with a digit.
func promName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		if !ok {
			c = '_'
		}
		if i == 0 && c >= '0' && c <= '9' {
			b.WriteByte('_')
		}
		b.WriteByte(c)
	}
	return b.String()
}

// promFloat renders a float the way the exposition format expects:
// shortest round-trip representation, no exponent surprises for the
// common small values.
func promFloat(v float64) string {
	return strings.TrimSuffix(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}

// WriteJSONL writes a scrape series as JSON Lines: one window object
// per line, rows nested. Durations serialize as integer nanoseconds
// (Go's time.Duration JSON form), which keeps the files exact and
// diffable; cmd/dacstat renders them human-readable.
func WriteJSONL(w io.Writer, windows []Window) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, win := range windows {
		if err := enc.Encode(win); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a WriteJSONL stream back into a window series.
// Blank lines are skipped; any malformed line is an error naming its
// line number.
func ReadJSONL(r io.Reader) ([]Window, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Window
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var w Window
		if err := json.Unmarshal([]byte(text), &w); err != nil {
			return nil, fmt.Errorf("scrape line %d: %w", line, err)
		}
		out = append(out, w)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
