package telemetry

import (
	"testing"
	"time"
)

// TestRecordZeroAlloc pins the histogram record path — and every
// other instrument write — at zero allocations per operation, both
// live and through the nil no-op path. This is the same discipline as
// the kernel's alloc gates: telemetry must be free to leave on.
func TestRecordZeroAlloc(t *testing.T) {
	reg := New()
	h := reg.Histogram("pbs.dyn_latency")
	c := reg.Counter("net.msgs")
	g := reg.Gauge("pbs.queue_depth")
	o := reg.Occupancy("maui.occupancy")

	var nilH *Histogram
	var nilC *Counter
	var nilG *Gauge
	var nilO *Occupancy

	cases := []struct {
		name string
		fn   func()
	}{
		{"hist.Record", func() { h.Record(3 * time.Millisecond) }},
		{"counter.Add", func() { c.Add(1) }},
		{"gauge.Set", func() { g.Set(4) }},
		{"gauge.Add", func() { g.Add(-1) }},
		{"occupancy.OnFor", func() { o.OnFor(time.Millisecond) }},
		{"nil hist.Record", func() { nilH.Record(3 * time.Millisecond) }},
		{"nil counter.Add", func() { nilC.Add(1) }},
		{"nil gauge.Set", func() { nilG.Set(4) }},
		{"nil occupancy.OnFor", func() { nilO.OnFor(time.Millisecond) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}
