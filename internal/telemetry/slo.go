package telemetry

import (
	"fmt"
	"time"
)

// Stat names the per-window statistic an SLO objective constrains.
type Stat string

// Statistics an Objective can reference. The time-valued histogram
// statistics (p50/p99/p999/mean/max) are evaluated in seconds; delta
// and total are the Row fields of the same name (so "delta" on an
// occupancy instrument is its per-window busy ratio, and on a counter
// its per-window rate).
const (
	StatP50   Stat = "p50"
	StatP99   Stat = "p99"
	StatP999  Stat = "p999"
	StatMean  Stat = "mean"
	StatMax   Stat = "max"
	StatDelta Stat = "delta"
	StatTotal Stat = "total"
)

// Objective is one service-level objective: a bound on a per-window
// statistic of one instrument. Plain Go structs, no config files —
// experiments declare their SLO set in code.
//
// Max and Min are inclusive bounds in the statistic's native unit
// (seconds for time-valued stats); a zero bound is unused, so the
// common latency objective sets only Max. Windows in which a
// histogram instrument recorded nothing are skipped: an empty window
// says nothing about latency.
type Objective struct {
	Name       string // human label, e.g. "dyn-p99"
	Instrument string // registry instrument name, e.g. "pbs.dyn_latency"
	Stat       Stat
	Max        float64 // upper bound; 0 = unbounded above
	Min        float64 // lower bound; 0 = unbounded below
}

// Target renders the objective's bound for tables ("≤ 400ms" style,
// ASCII to keep CI logs plain).
func (o Objective) Target() string {
	timeValued := o.Stat == StatP50 || o.Stat == StatP99 || o.Stat == StatP999 ||
		o.Stat == StatMean || o.Stat == StatMax
	format := func(v float64) string {
		if timeValued {
			return fmt.Sprintf("%.1fms", v*1e3)
		}
		return fmt.Sprintf("%g", v)
	}
	switch {
	case o.Max != 0 && o.Min != 0:
		return fmt.Sprintf("%s..%s", format(o.Min), format(o.Max))
	case o.Max != 0:
		return "<= " + format(o.Max)
	case o.Min != 0:
		return ">= " + format(o.Min)
	}
	return "(unbounded)"
}

// Compliance is the evaluation of one Objective over a window series.
type Compliance struct {
	Objective Objective
	Windows   int           // windows in which the stat was evaluable
	Breaches  int           // evaluable windows violating the bound
	First     time.Duration // virtual end time of the first breaching window; -1 when none
	Worst     float64       // most-violating observed value (largest for Max bounds, smallest for Min-only)
	Compliant bool          // no breaches over at least one evaluable window
}

// Evaluate checks every objective against a scrape series, reporting
// per-objective compliance and the virtual timestamp of the first
// breach. Results are returned in objective order; evaluation is pure
// and deterministic.
func Evaluate(windows []Window, objectives []Objective) []Compliance {
	out := make([]Compliance, 0, len(objectives))
	for _, o := range objectives {
		c := Compliance{Objective: o, First: -1}
		first := true
		for _, w := range windows {
			row, ok := findRow(w, o.Instrument)
			if !ok {
				continue
			}
			if row.Kind == KindHistogram && row.Delta == 0 {
				continue // nothing observed this window
			}
			v, ok := statValue(row, o.Stat)
			if !ok {
				continue
			}
			c.Windows++
			if first || moreViolating(o, v, c.Worst) {
				c.Worst = v
				first = false
			}
			if (o.Max != 0 && v > o.Max) || (o.Min != 0 && v < o.Min) {
				c.Breaches++
				if c.First < 0 {
					c.First = w.End
				}
			}
		}
		c.Compliant = c.Windows > 0 && c.Breaches == 0
		out = append(out, c)
	}
	return out
}

func findRow(w Window, name string) (Row, bool) {
	for _, r := range w.Rows {
		if r.Name == name {
			return r, true
		}
	}
	return Row{}, false
}

func statValue(r Row, s Stat) (float64, bool) {
	switch s {
	case StatP50:
		return r.P50.Seconds(), r.Kind == KindHistogram
	case StatP99:
		return r.P99.Seconds(), r.Kind == KindHistogram
	case StatP999:
		return r.P999.Seconds(), r.Kind == KindHistogram
	case StatMean:
		return r.Mean.Seconds(), r.Kind == KindHistogram
	case StatMax:
		return r.Max.Seconds(), r.Kind == KindHistogram
	case StatDelta:
		return r.Delta, true
	case StatTotal:
		return r.Total, true
	}
	return 0, false
}

// moreViolating orders candidate "worst" values: with an upper bound
// (or no bound) larger is worse; with only a lower bound smaller is
// worse.
func moreViolating(o Objective, v, worst float64) bool {
	if o.Max == 0 && o.Min != 0 {
		return v < worst
	}
	return v > worst
}
