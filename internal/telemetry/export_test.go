package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestWriteProm(t *testing.T) {
	reg := New()
	reg.Counter("net.msgs").Add(42)
	reg.Gauge("pbs.queue_depth").Set(7)
	reg.Occupancy("maui.occupancy").OnFor(2 * time.Second)
	h := reg.Histogram("pbs.dyn_latency")
	h.Record(100 * time.Millisecond)
	h.Record(300 * time.Millisecond)

	var buf bytes.Buffer
	if err := WriteProm(&buf, reg, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE net_msgs counter\nnet_msgs 42\n",
		"# TYPE pbs_queue_depth gauge\npbs_queue_depth 7\n",
		"maui_occupancy_busy_seconds_total 2\n",
		"maui_occupancy_ratio 0.2\n",
		"# TYPE pbs_dyn_latency summary\n",
		`pbs_dyn_latency{quantile="0.5"}`,
		"pbs_dyn_latency_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Sorted output: identical registries export identical pages.
	var buf2 bytes.Buffer
	if err := WriteProm(&buf2, reg, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("WriteProm is not deterministic")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"pbs.dyn_latency": "pbs_dyn_latency",
		"net msgs/total":  "net_msgs_total",
		"9lives":          "_9lives",
		"ok_name":         "ok_name",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	wins := testSeries()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, wins); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(wins) {
		t.Fatalf("JSONL has %d lines, want one per window (%d)", got, len(wins))
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, wins) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, wins)
	}
}

func TestReadJSONLBadLine(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader("{\"window\":0}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-numbered parse error, got %v", err)
	}
	wins, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || wins != nil {
		t.Fatalf("blank input: got %v, %v", wins, err)
	}
}
