package telemetry

import (
	"testing"
	"time"
)

// series builds a three-window scrape with a latency histogram that
// breaches 100ms in window 2, plus an occupancy row.
func testSeries() []Window {
	win := func(i int, p99 time.Duration, n float64, occ float64) Window {
		rows := []Row{
			{Name: "maui.occupancy", Kind: KindOccupancy, Delta: occ},
			{Name: "pbs.dyn_latency", Kind: KindHistogram, Delta: n, Total: n, P50: p99 / 2, P99: p99, Mean: p99 / 2},
		}
		return Window{
			Index: i,
			Start: time.Duration(i) * time.Second,
			End:   time.Duration(i+1) * time.Second,
			Rows:  rows,
		}
	}
	return []Window{
		win(0, 40*time.Millisecond, 10, 0.2),
		win(1, 90*time.Millisecond, 10, 0.3),
		win(2, 150*time.Millisecond, 10, 0.9),
	}
}

func TestEvaluateFirstBreach(t *testing.T) {
	objs := []Objective{
		{Name: "dyn-p99", Instrument: "pbs.dyn_latency", Stat: StatP99, Max: 0.100},
		{Name: "dyn-p50", Instrument: "pbs.dyn_latency", Stat: StatP50, Max: 1},
		{Name: "sched-occ", Instrument: "maui.occupancy", Stat: StatDelta, Max: 0.5},
		{Name: "missing", Instrument: "no.such", Stat: StatDelta, Max: 1},
	}
	res := Evaluate(testSeries(), objs)
	if len(res) != 4 {
		t.Fatalf("got %d results, want 4", len(res))
	}

	p99 := res[0]
	if p99.Compliant || p99.Breaches != 1 || p99.Windows != 3 {
		t.Fatalf("dyn-p99 = %+v, want 1 breach over 3 windows", p99)
	}
	if p99.First != 3*time.Second {
		t.Fatalf("dyn-p99 first breach = %v, want 3s (end of window 2)", p99.First)
	}
	if p99.Worst != (150 * time.Millisecond).Seconds() {
		t.Fatalf("dyn-p99 worst = %v, want 0.15", p99.Worst)
	}

	if p50 := res[1]; !p50.Compliant || p50.First != -1 || p50.Breaches != 0 {
		t.Fatalf("dyn-p50 = %+v, want compliant with no breach", p50)
	}
	if occ := res[2]; occ.Compliant || occ.Breaches != 1 || occ.First != 3*time.Second {
		t.Fatalf("sched-occ = %+v, want breach in window 2", occ)
	}
	// An objective whose instrument never appears is not compliant:
	// zero evaluable windows prove nothing.
	if miss := res[3]; miss.Compliant || miss.Windows != 0 {
		t.Fatalf("missing = %+v, want 0 windows, not compliant", miss)
	}
}

func TestEvaluateSkipsEmptyHistWindows(t *testing.T) {
	wins := testSeries()
	wins[2].Rows[1].Delta = 0 // nothing observed in the breaching window
	res := Evaluate(wins, []Objective{
		{Name: "dyn-p99", Instrument: "pbs.dyn_latency", Stat: StatP99, Max: 0.100},
	})
	if r := res[0]; !r.Compliant || r.Windows != 2 {
		t.Fatalf("empty hist window must be skipped: %+v", r)
	}
}

func TestEvaluateMinBound(t *testing.T) {
	res := Evaluate(testSeries(), []Objective{
		{Name: "occ-floor", Instrument: "maui.occupancy", Stat: StatDelta, Min: 0.25},
	})
	r := res[0]
	if r.Compliant || r.Breaches != 1 {
		t.Fatalf("occ-floor = %+v, want window-0 breach", r)
	}
	if r.First != time.Second {
		t.Fatalf("occ-floor first breach = %v, want 1s", r.First)
	}
	if r.Worst != 0.2 {
		t.Fatalf("occ-floor worst = %v, want the smallest value 0.2", r.Worst)
	}
}

func TestObjectiveTarget(t *testing.T) {
	cases := []struct {
		o    Objective
		want string
	}{
		{Objective{Stat: StatP99, Max: 0.4}, "<= 400.0ms"},
		{Objective{Stat: StatDelta, Max: 0.5}, "<= 0.5"},
		{Objective{Stat: StatDelta, Min: 0.25}, ">= 0.25"},
		{Objective{Stat: StatDelta}, "(unbounded)"},
	}
	for _, c := range cases {
		if got := c.o.Target(); got != c.want {
			t.Errorf("Target(%+v) = %q, want %q", c.o, got, c.want)
		}
	}
}
