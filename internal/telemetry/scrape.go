package telemetry

import (
	"time"
)

// Clock is the slice of the simulation kernel the scraper needs: the
// virtual clock and one-shot virtual timers. *sim.Simulation satisfies
// it; tests substitute a manual clock. Telemetry deliberately does not
// import the kernel, so the dependency points one way (sim → telemetry
// for the kernel's own instruments).
type Clock interface {
	Now() time.Duration
	After(d time.Duration, fn func())
}

// Row is one instrument's state in one scrape window.
//
// Total is the cumulative value at the window's end; Delta is the
// change within the window. Their meaning follows the kind:
//
//   - counter:   Total = count so far, Delta = increments this window
//   - gauge:     Total = current value, Delta = change this window
//   - histogram: Total = observations so far, Delta = observations
//     this window; P50/P99/P999/Mean/Max describe only this window's
//     observations
//   - occupancy: Total = cumulative busy seconds, Delta = busy time
//     this window divided by the window length (the occupancy ratio)
type Row struct {
	Name  string  `json:"name"`
	Kind  Kind    `json:"kind"`
	Total float64 `json:"total"`
	Delta float64 `json:"delta"`

	P50  time.Duration `json:"p50,omitempty"`
	P99  time.Duration `json:"p99,omitempty"`
	P999 time.Duration `json:"p999,omitempty"`
	Mean time.Duration `json:"mean,omitempty"`
	Max  time.Duration `json:"max,omitempty"`
}

// Window is one scrape: every instrument's Row over [Start, End) of
// virtual time. Rows are sorted by (name, kind), so two runs of the
// same scenario produce byte-identical window series.
type Window struct {
	Index int           `json:"window"`
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
	Rows  []Row         `json:"rows"`
}

// Scraper samples a Registry on a fixed virtual-time interval,
// turning cumulative instrument state into a windowed time-series.
// Create one with NewScraper, call Start once the simulation's actors
// are set up, and Stop before reading Windows — Stop takes a final
// partial window and disarms the timer. MaxWindows bounds the series
// so a forgotten scraper cannot keep an otherwise-idle simulation
// alive forever (each re-arm is a pending event, which would defeat
// the kernel's deadlock detection).
type Scraper struct {
	reg      *Registry
	clk      Clock
	interval time.Duration

	// MaxWindows caps how many periodic windows are taken before the
	// scraper disarms itself (Stop can still add a final partial
	// window). Zero or negative means the DefaultMaxWindows cap.
	MaxWindows int

	windows []Window
	prev    map[string]*prevState // keyed by name+"\x00"+kind
	start   time.Duration         // current window start
	armed   bool
	stopped bool
	scratch Histogram // window-delta workspace, reused across scrapes
}

// prevState is the cumulative snapshot a window is diffed against.
type prevState struct {
	num  float64    // counters, gauges, occupancy busy-seconds
	hist *Histogram // histograms
}

// DefaultMaxWindows bounds a scraper that is never stopped: with the
// default cap the series stays small enough to hold in memory and the
// re-armed timer chain always terminates.
const DefaultMaxWindows = 4096

// NewScraper returns a scraper over reg driven by clk, taking one
// window per interval. The interval must be positive.
func NewScraper(reg *Registry, clk Clock, interval time.Duration) *Scraper {
	if interval <= 0 {
		interval = time.Second
	}
	return &Scraper{
		reg:      reg,
		clk:      clk,
		interval: interval,
		prev:     make(map[string]*prevState),
	}
}

// Start arms the periodic scrape. The first window closes one
// interval from now; instruments created after Start are picked up on
// the window in which they first appear.
func (s *Scraper) Start() {
	if s == nil || s.armed || s.stopped {
		return
	}
	s.armed = true
	s.start = s.clk.Now()
	s.clk.After(s.interval, s.tick)
}

// tick is the periodic scrape callback. It runs on the simulation's
// controller goroutine (sim.After semantics), so it never races actor
// code and must not block.
func (s *Scraper) tick() {
	if s.stopped {
		return
	}
	s.scrapeWindow()
	max := s.MaxWindows
	if max <= 0 {
		max = DefaultMaxWindows
	}
	if len(s.windows) >= max {
		s.stopped = true
		return
	}
	s.clk.After(s.interval, s.tick)
}

// Stop disarms the scraper and, when virtual time has advanced past
// the last window edge, takes one final partial window so the tail of
// the run is not lost. Windows taken so far stay available.
func (s *Scraper) Stop() {
	if s == nil || s.stopped {
		return
	}
	s.stopped = true
	if s.armed && s.clk.Now() > s.start {
		s.scrapeWindow()
	}
}

// ScrapeNow takes one window immediately, independent of the periodic
// timer — the manual-drive entry point for tests and benchmarks.
func (s *Scraper) ScrapeNow() {
	if s == nil || s.stopped {
		return
	}
	s.scrapeWindow()
}

// Windows returns the scrape series taken so far.
func (s *Scraper) Windows() []Window {
	if s == nil {
		return nil
	}
	return s.windows
}

func (s *Scraper) scrapeWindow() {
	now := s.clk.Now()
	w := Window{Index: len(s.windows), Start: s.start, End: now}
	dur := now - s.start
	for _, ref := range s.reg.instruments() {
		key := ref.name + "\x00" + string(ref.kind)
		ps := s.prev[key]
		if ps == nil {
			ps = &prevState{}
			if ref.kind == KindHistogram {
				ps.hist = NewHistogram()
			}
			s.prev[key] = ps
		}
		row := Row{Name: ref.name, Kind: ref.kind}
		switch ref.kind {
		case KindCounter:
			cur := float64(ref.ctr.Value())
			row.Total, row.Delta = cur, cur-ps.num
			ps.num = cur
		case KindGauge:
			cur := ref.gag.Value()
			row.Total, row.Delta = cur, cur-ps.num
			ps.num = cur
		case KindOccupancy:
			cur := ref.occ.Busy().Seconds()
			row.Total = cur
			if dur > 0 {
				row.Delta = (cur - ps.num) / dur.Seconds()
			}
			ps.num = cur
		case KindHistogram:
			d := &s.scratch
			ref.hist.windowInto(ps.hist, d)
			row.Total = float64(ps.hist.count) // cumulative after snapshot
			row.Delta = float64(d.count)
			if d.count > 0 {
				row.P50 = quantileLocked(&d.counts, d.count, 0.50)
				row.P99 = quantileLocked(&d.counts, d.count, 0.99)
				row.P999 = quantileLocked(&d.counts, d.count, 0.999)
				row.Mean = time.Duration(d.sum / d.count)
				row.Max = time.Duration(d.max)
			}
		}
		w.Rows = append(w.Rows, row)
	}
	s.windows = append(s.windows, w)
	s.start = now
}
