package sim

import (
	"sync"
	"testing"
	"time"
)

// The kernel's hot paths — event dispatch, sleep/wake, and gate
// park/signal — must not allocate once storage is warm: event nodes
// live in the queue's reused backing arrays, wake channels and gate
// waiters come from pools, and the dispatch batch is recycled across
// instants. These tests pin that at exactly zero allocations per
// operation so a regression shows up as a test failure, not as a GC
// slope on the scale ladder.

// TestSleepWakeZeroAlloc pins the Sleep park/dispatch/wake round trip
// at zero allocations per operation in steady state.
func TestSleepWakeZeroAlloc(t *testing.T) {
	if raceDetectorOn {
		t.Skip("sync.Pool reuse is disabled under -race; allocs/op is meaningless")
	}
	s := New()
	var allocs float64
	err := s.Run(func() {
		for i := 0; i < 16; i++ { // warm the event queue, batch, and wake pool
			s.Sleep(time.Microsecond)
		}
		allocs = testing.AllocsPerRun(200, func() {
			s.Sleep(time.Microsecond)
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if allocs != 0 {
		t.Fatalf("Sleep steady state: %v allocs/op, want 0", allocs)
	}
}

func bumpCounter(a any) { *(a.(*int))++ }

// TestDispatchZeroAlloc pins closure-free timer dispatch (AfterArg
// scheduling plus controller pop and callback) at zero allocations
// per operation.
func TestDispatchZeroAlloc(t *testing.T) {
	if raceDetectorOn {
		t.Skip("sync.Pool reuse is disabled under -race; allocs/op is meaningless")
	}
	s := New()
	var allocs float64
	hits := new(int)
	err := s.Run(func() {
		for i := 0; i < 16; i++ {
			s.AfterArg(time.Microsecond, bumpCounter, hits)
			s.Sleep(2 * time.Microsecond)
		}
		allocs = testing.AllocsPerRun(200, func() {
			s.AfterArg(time.Microsecond, bumpCounter, hits)
			s.Sleep(2 * time.Microsecond)
		})
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if *hits == 0 {
		t.Fatal("callback never fired")
	}
	if allocs != 0 {
		t.Fatalf("dispatch steady state: %v allocs/op, want 0", allocs)
	}
}

// TestGateWaitSignalZeroAlloc pins the gate park/signal handoff at
// zero allocations per operation: waiters are pooled and the park
// label is precomputed at gate construction.
func TestGateWaitSignalZeroAlloc(t *testing.T) {
	if raceDetectorOn {
		t.Skip("sync.Pool reuse is disabled under -race; allocs/op is meaningless")
	}
	s := New()
	var allocs float64
	err := s.Run(func() {
		g := s.NewGate("zeroalloc")
		var mu sync.Mutex
		// Signal from a timer, not a spawned goroutine: Go allocates a
		// goroutine stack, which would drown the waiter-side
		// measurement. The closure is built once, outside the measured
		// region. The timer cannot fire before the actor parks (virtual
		// time only advances when every actor is parked), so a bare
		// Wait without a predicate is deterministic here.
		sig := func(any) { g.Signal() }
		ping := func() {
			s.AfterArg(time.Microsecond, sig, nil)
			mu.Lock()
			g.Wait(&mu)
			mu.Unlock()
		}
		for i := 0; i < 16; i++ {
			ping()
		}
		allocs = testing.AllocsPerRun(200, ping)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if allocs != 0 {
		t.Fatalf("gate wait/signal steady state: %v allocs/op, want 0", allocs)
	}
}
