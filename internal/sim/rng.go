package sim

import "math"

// RNG is a small deterministic pseudo-random generator (splitmix64)
// used by workload generators and jitter models. It is intentionally
// independent of math/rand so that simulation results are reproducible
// across Go releases.
//
// RNG is not safe for concurrent use; give each actor its own stream
// via Split.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives an independent generator from the current state,
// advancing this one.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed int in [0, n). It panics when
// n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed sample with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	// Inverse transform sampling; clamp u away from 0 to avoid +Inf.
	u := r.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	return -mean * math.Log(1-u)
}

// Norm returns a normally distributed sample via the Box–Muller
// transform (one sample per call; the pair's second value is
// discarded for simplicity).
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}
