package sim

import "time"

// event is a scheduled occurrence: a wake of a parked actor
// (wake != nil), a controller callback (fn != nil), or an argument-
// carrying controller callback (afn != nil). The afn/arg form lets hot
// callers (netsim message delivery) schedule work without allocating a
// fresh closure per event: afn is a long-lived package-level function
// and arg is a pooled pointer, so the event itself carries no heap
// garbage.
type event struct {
	at   time.Duration
	seq  uint64 // FIFO tie-break among events at the same instant
	wake chan struct{}
	fn   func()
	afn  func(any)
	arg  any
}

func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventQueue orders pending events by (at, seq). It is a 4-ary min-heap
// with a same-instant "lane" bolted on: consecutive pushes at one
// virtual instant — scheduler cycles fanning out wakes, daemons all due
// at the same tick — land in the lane with an O(1) append instead of a
// heap sift, and popBatch drains the lane with a single copy. The heap
// is 4-ary rather than binary because dispatch is pop-dominated: halving
// the tree depth cuts sift-down swaps on the hot path, and the wider
// node still fits in a cache line pair.
//
// Invariants: lane entries all have at == laneAt and are in ascending
// seq order (pushes carry a globally increasing seq). The heap may hold
// events at laneAt only when they were pushed while the lane held a
// different instant; popBatch merges the two sources by seq so release
// order is exactly the order events were scheduled.
type eventQueue struct {
	heap   []event
	lane   []event
	laneAt time.Duration
}

func (q *eventQueue) len() int { return len(q.heap) + len(q.lane) }

// nextAt reports the earliest pending instant. Callers must ensure the
// queue is non-empty.
func (q *eventQueue) nextAt() time.Duration {
	if len(q.lane) == 0 {
		return q.heap[0].at
	}
	if len(q.heap) == 0 || q.laneAt <= q.heap[0].at {
		return q.laneAt
	}
	return q.heap[0].at
}

func (q *eventQueue) push(ev event) {
	if len(q.lane) > 0 && ev.at == q.laneAt {
		q.lane = append(q.lane, ev)
		return
	}
	if len(q.lane) == 0 {
		q.laneAt = ev.at
		q.lane = append(q.lane, ev)
		return
	}
	q.heapPush(ev)
}

// popBatch removes every event due at the earliest pending instant and
// appends them to dst in seq (FIFO) order. Drained storage is zeroed so
// the queue never pins dead wake channels or callback closures.
func (q *eventQueue) popBatch(dst []event) []event {
	t := q.nextAt()
	laneDue := len(q.lane) > 0 && q.laneAt == t
	heapDue := len(q.heap) > 0 && q.heap[0].at == t
	switch {
	case laneDue && !heapDue:
		dst = append(dst, q.lane...)
		clear(q.lane)
		q.lane = q.lane[:0]
	case heapDue && !laneDue:
		for len(q.heap) > 0 && q.heap[0].at == t {
			dst = append(dst, q.heapPop())
		}
	default:
		// Both sources hold events at t: merge by seq. Heap pops at a
		// single instant come out in ascending seq, and the lane is
		// already in ascending seq, so this is a two-way sorted merge.
		li := 0
		for len(q.heap) > 0 && q.heap[0].at == t {
			hseq := q.heap[0].seq
			for li < len(q.lane) && q.lane[li].seq < hseq {
				dst = append(dst, q.lane[li])
				li++
			}
			dst = append(dst, q.heapPop())
		}
		dst = append(dst, q.lane[li:]...)
		clear(q.lane)
		q.lane = q.lane[:0]
	}
	return dst
}

func (q *eventQueue) heapPush(ev event) {
	h := append(q.heap, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	q.heap = h
}

func (q *eventQueue) heapPop() event {
	h := q.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	q.heap = h[:n]
	q.heapSiftDown(0)
	return top
}

func (q *eventQueue) heapSiftDown(i int) {
	h := q.heap
	n := len(h)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		smallest := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(h[c], h[smallest]) {
				smallest = c
			}
		}
		if !eventLess(h[smallest], h[i]) {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}
