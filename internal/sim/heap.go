package sim

import "time"

// event is a scheduled occurrence: either a wake of a parked actor
// (wake != nil) or a controller callback (fn != nil).
type event struct {
	at   time.Duration
	seq  uint64 // FIFO tie-break among events at the same instant
	wake chan struct{}
	fn   func()
}

// eventHeap is a binary min-heap ordered by (at, seq). It is hand
// rolled rather than using container/heap to avoid interface
// allocations on the simulation hot path.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = event{}
	*h = old[:n]
	h.siftDown(0)
	return top
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.less(left, smallest) {
			smallest = left
		}
		if right < n && h.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}
