package sim

import (
	"sync"
	"sync/atomic"
	"time"
)

// Gate is a condition variable integrated with the simulation's actor
// accounting: an actor parked in Wait does not count as runnable, so
// the virtual clock can advance past it.
//
// Like sync.Cond, a Gate carries no predicate. The typical pattern is
//
//	mu.Lock()
//	for !ready() {
//	    gate.Wait(&mu)
//	}
//	... consume ...
//	mu.Unlock()
//
// with the producer holding mu around the state change and calling
// Signal or Broadcast afterwards (with or without mu held).
type Gate struct {
	sim   *Simulation
	name  string
	label string // "gate:"+name, precomputed so parking never allocates

	mu      sync.Mutex
	waiters []*gateWaiter
}

// gateWaiter is one parked actor. Waiters are pooled: the actor that
// parked takes its waiter back from whoever woke it (the wake token is
// only sent after the waiter left the gate's list) and returns it to
// waiterPool on resume.
//
// gs packs a generation counter with the waiter's state in the low two
// bits. Exactly one waker wins the armed→fired transition via CAS, and
// the generation — bumped each time the waiter is reused — makes the
// lazily cancelled timeout callback of a previous life a guaranteed
// no-op: its CAS compares against the old generation's armed value,
// which can never be current again.
type gateWaiter struct {
	ch chan struct{} // capacity 1; carries at most one wake token
	gs atomic.Uint64 // generation<<2 | state
}

const (
	wArmed     = 0 // parked, no waker has claimed it
	wSignaled  = 1 // woken by Signal or Broadcast
	wTimed     = 2 // woken by a WaitTimeout deadline
	wStateMask = 3
	wGenStep   = 4 // +1 generation
)

var waiterPool = sync.Pool{New: func() any { return &gateWaiter{ch: make(chan struct{}, 1)} }}

// newWaiter takes a waiter from the pool and re-arms it under a fresh
// generation, invalidating any stale timeout callback from its past.
func newWaiter() *gateWaiter {
	w := waiterPool.Get().(*gateWaiter)
	w.gs.Store((w.gs.Load() &^ wStateMask) + wGenStep)
	return w
}

// fire attempts the armed→state transition. It reports false when
// another waker already claimed the waiter (or, for stale timeout
// callbacks, when the waiter moved on to a new generation).
func (w *gateWaiter) fire(state uint64) bool {
	cur := w.gs.Load()
	if cur&wStateMask != wArmed {
		return false
	}
	return w.gs.CompareAndSwap(cur, cur|state)
}

// NewGate returns a Gate bound to s. The name appears in deadlock
// diagnostics.
func (s *Simulation) NewGate(name string) *Gate {
	return &Gate{sim: s, name: name, label: "gate:" + name}
}

// Wait atomically releases l and parks the calling actor until Signal
// or Broadcast wakes it, then re-acquires l before returning. Spurious
// wakeups do not occur, but callers should still re-check their
// predicate in a loop because another actor may consume the state
// first.
func (g *Gate) Wait(l sync.Locker) {
	w := newWaiter()
	g.mu.Lock()
	g.waiters = append(g.waiters, w)
	g.mu.Unlock()

	g.sim.mu.Lock()
	g.sim.parkLocked(g.label)
	g.sim.mu.Unlock()

	l.Unlock()
	<-w.ch
	waiterPool.Put(w)
	g.sim.unparkNote(g.label)
	l.Lock()
}

// WaitTimeout is Wait with a virtual-time deadline. It reports false
// when the wait timed out before a Signal or Broadcast arrived.
func (g *Gate) WaitTimeout(l sync.Locker, d time.Duration) bool {
	if d <= 0 {
		return false
	}
	w := newWaiter()
	gs := w.gs.Load() // this generation's armed value, captured for expire
	g.mu.Lock()
	g.waiters = append(g.waiters, w)
	g.mu.Unlock()

	g.sim.mu.Lock()
	g.sim.pushLocked(g.sim.now+d, nil, func() { g.expire(w, gs) })
	g.sim.parkLocked(g.label)
	g.sim.mu.Unlock()

	l.Unlock()
	<-w.ch
	timed := w.gs.Load()&wStateMask == wTimed
	// The timeout event may still be pending when a Signal won; it is
	// lazily cancelled — returning w to the pool is safe because the
	// generation bump on reuse defeats the stale callback's CAS.
	waiterPool.Put(w)
	g.sim.unparkNote(g.label)
	l.Lock()
	return !timed
}

// expire runs on the controller when a WaitTimeout deadline fires. The
// CAS claims the waiter if and only if it is still armed in the same
// generation; a waiter already signaled — or recycled into a new wait —
// makes this a no-op.
func (g *Gate) expire(w *gateWaiter, gs uint64) {
	if !w.gs.CompareAndSwap(gs, gs|wTimed) {
		return
	}
	g.mu.Lock()
	ws := g.waiters
	for i, cand := range ws {
		if cand == w {
			copy(ws[i:], ws[i+1:])
			ws[len(ws)-1] = nil
			g.waiters = ws[:len(ws)-1]
			break
		}
	}
	g.mu.Unlock()
	g.sim.markRunnable()
	w.ch <- struct{}{}
}

// Signal wakes one parked waiter in FIFO order. It is a no-op when no
// actor is waiting. Signal may be called from actors or from At
// callbacks.
func (g *Gate) Signal() {
	g.mu.Lock()
	var w *gateWaiter
	ws := g.waiters
	n := 0 // consumed from the front
	for n < len(ws) {
		cand := ws[n]
		n++
		if cand.fire(wSignaled) {
			w = cand
			break
		}
	}
	if n > 0 {
		// Pop by shifting down, not reslicing: the backing array keeps
		// its capacity so steady-state park/signal never reallocates.
		rest := copy(ws, ws[n:])
		clear(ws[rest:])
		g.waiters = ws[:rest]
	}
	g.mu.Unlock()
	if w != nil {
		g.sim.markRunnable()
		w.ch <- struct{}{}
	}
}

// Broadcast wakes every parked waiter.
func (g *Gate) Broadcast() {
	g.mu.Lock()
	ws := g.waiters
	g.waiters = nil
	g.mu.Unlock()
	for _, w := range ws {
		if w.fire(wSignaled) {
			g.sim.markRunnable()
			w.ch <- struct{}{}
		}
	}
	if len(ws) == 0 {
		return
	}
	// Hand the emptied backing array back so the next Wait appends into
	// it instead of growing from nil (unless a new waiter raced in).
	clear(ws)
	g.mu.Lock()
	if g.waiters == nil {
		g.waiters = ws[:0]
	}
	g.mu.Unlock()
}
