package sim

import (
	"sync"
	"time"
)

// Gate is a condition variable integrated with the simulation's actor
// accounting: an actor parked in Wait does not count as runnable, so
// the virtual clock can advance past it.
//
// Like sync.Cond, a Gate carries no predicate. The typical pattern is
//
//	mu.Lock()
//	for !ready() {
//	    gate.Wait(&mu)
//	}
//	... consume ...
//	mu.Unlock()
//
// with the producer holding mu around the state change and calling
// Signal or Broadcast afterwards (with or without mu held).
type Gate struct {
	sim  *Simulation
	name string

	mu      sync.Mutex
	waiters []*gateWaiter
}

type gateWaiter struct {
	ch    chan struct{}
	fired bool // set once by whoever wakes the waiter: Signal or timeout
	timed bool // true when woken by the timeout event
}

// NewGate returns a Gate bound to s. The name appears in deadlock
// diagnostics.
func (s *Simulation) NewGate(name string) *Gate {
	return &Gate{sim: s, name: name}
}

// Wait atomically releases l and parks the calling actor until Signal
// or Broadcast wakes it, then re-acquires l before returning. Spurious
// wakeups do not occur, but callers should still re-check their
// predicate in a loop because another actor may consume the state
// first.
func (g *Gate) Wait(l sync.Locker) {
	w := &gateWaiter{ch: make(chan struct{})}
	g.mu.Lock()
	g.waiters = append(g.waiters, w)
	g.mu.Unlock()

	g.sim.mu.Lock()
	g.sim.parkLocked("gate:" + g.name)
	g.sim.mu.Unlock()

	l.Unlock()
	<-w.ch
	g.sim.unparkNote("gate:" + g.name)
	l.Lock()
}

// WaitTimeout is Wait with a virtual-time deadline. It reports false
// when the wait timed out before a Signal or Broadcast arrived.
func (g *Gate) WaitTimeout(l sync.Locker, d time.Duration) bool {
	if d <= 0 {
		return false
	}
	w := &gateWaiter{ch: make(chan struct{})}
	g.mu.Lock()
	g.waiters = append(g.waiters, w)
	g.mu.Unlock()

	g.sim.mu.Lock()
	g.sim.pushLocked(g.sim.now+d, nil, func() { g.expire(w) })
	g.sim.parkLocked("gate:" + g.name)
	g.sim.mu.Unlock()

	l.Unlock()
	<-w.ch
	g.sim.unparkNote("gate:" + g.name)
	l.Lock()
	g.mu.Lock()
	timed := w.timed
	g.mu.Unlock()
	return !timed
}

// expire runs on the controller when a WaitTimeout deadline fires. If
// a Signal already won the race it is a lazily cancelled no-op;
// otherwise it wakes the waiter, granting it a fresh running slot.
func (g *Gate) expire(w *gateWaiter) {
	g.mu.Lock()
	if w.fired {
		g.mu.Unlock()
		return
	}
	w.fired = true
	w.timed = true
	for i, cand := range g.waiters {
		if cand == w {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			break
		}
	}
	g.mu.Unlock()
	g.sim.markRunnable()
	close(w.ch)
}

// Signal wakes one parked waiter in FIFO order. It is a no-op when no
// actor is waiting. Signal may be called from actors or from At
// callbacks.
func (g *Gate) Signal() {
	g.mu.Lock()
	var w *gateWaiter
	for len(g.waiters) > 0 {
		cand := g.waiters[0]
		g.waiters = g.waiters[1:]
		if !cand.fired {
			cand.fired = true
			w = cand
			break
		}
	}
	g.mu.Unlock()
	if w != nil {
		g.sim.markRunnable()
		close(w.ch)
	}
}

// Broadcast wakes every parked waiter.
func (g *Gate) Broadcast() {
	g.mu.Lock()
	ws := g.waiters
	g.waiters = nil
	g.mu.Unlock()
	for _, w := range ws {
		g.mu.Lock()
		fired := w.fired
		if !fired {
			w.fired = true
		}
		g.mu.Unlock()
		if !fired {
			g.sim.markRunnable()
			close(w.ch)
		}
	}
}
