//go:build race

package sim

// raceDetectorOn reports whether this test binary was built with the
// race detector. The zero-allocation tests skip under it: the race
// runtime disables sync.Pool reuse, so allocs/op is meaningless there.
const raceDetectorOn = true
