package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestWakeChannelReuseStress hammers the pooled wake-channel and gate
// waiter lifecycle from many actors at once: sleeps interleave with
// timed waits, signals, and broadcasts so recycled channels and
// waiters are constantly rearmed while stale timeout callbacks from
// their previous lives are still pending. The test asserts the
// lifecycle invariant documented at pushLocked — a pooled channel is
// always empty when reused — by checking that no sleeper ever wakes
// before its deadline, which is exactly what a leaked stale token
// would cause. Run it with -race and -shuffle=on (scripts/check.sh
// does) to also exercise the memory-ordering side.
func TestWakeChannelReuseStress(t *testing.T) {
	const actors = 16
	const iters = 200
	s := New()
	err := s.Run(func() {
		g := s.NewGate("stress")
		var gmu sync.Mutex
		done := 0
		var dmu sync.Mutex
		joined := s.NewGate("stress-join")
		for a := 0; a < actors; a++ {
			rng := rand.New(rand.NewSource(int64(a) + 1))
			s.Go(fmt.Sprintf("stress%d", a), func() {
				defer func() {
					dmu.Lock()
					done++
					dmu.Unlock()
					joined.Signal()
				}()
				for i := 0; i < iters; i++ {
					switch rng.Intn(4) {
					case 0:
						before := s.Now()
						d := time.Duration(rng.Intn(50)+1) * time.Microsecond
						s.Sleep(d)
						if woke := s.Now(); woke < before+d {
							t.Errorf("sleeper woke at %v, deadline %v: stale wake token on a reused channel", woke, before+d)
							return
						}
					case 1:
						// Timed wait racing against Signal/Broadcast from
						// the other actors: whichever loses leaves a lazily
						// cancelled waker behind for the reuse machinery to
						// defeat.
						gmu.Lock()
						g.WaitTimeout(&gmu, time.Duration(rng.Intn(20)+1)*time.Microsecond)
						gmu.Unlock()
					case 2:
						g.Signal()
						s.Sleep(time.Microsecond)
					default:
						g.Broadcast()
						s.Sleep(time.Microsecond)
					}
				}
			})
		}
		dmu.Lock()
		for done < actors {
			joined.Wait(&dmu)
		}
		dmu.Unlock()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
