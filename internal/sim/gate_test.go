package sim

import (
	"sync"
	"testing"
	"time"
)

func TestGateSignalWakesWaiter(t *testing.T) {
	s := New()
	var woke time.Duration = -1
	err := s.Run(func() {
		gate := s.NewGate("g")
		var mu sync.Mutex
		ready := false
		s.Go("producer", func() {
			s.Sleep(time.Second)
			mu.Lock()
			ready = true
			mu.Unlock()
			gate.Signal()
		})
		mu.Lock()
		for !ready {
			gate.Wait(&mu)
		}
		mu.Unlock()
		woke = s.Now()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woke != time.Second {
		t.Fatalf("woke at %v, want 1s", woke)
	}
}

func TestGateWaitTimeoutExpires(t *testing.T) {
	s := New()
	err := s.Run(func() {
		gate := s.NewGate("g")
		var mu sync.Mutex
		mu.Lock()
		ok := gate.WaitTimeout(&mu, 2*time.Second)
		mu.Unlock()
		if ok {
			t.Error("WaitTimeout reported success with no signal")
		}
		if got := s.Now(); got != 2*time.Second {
			t.Errorf("timed out at %v, want 2s", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestGateWaitTimeoutSignaledFirst(t *testing.T) {
	s := New()
	err := s.Run(func() {
		gate := s.NewGate("g")
		var mu sync.Mutex
		s.Go("producer", func() {
			s.Sleep(time.Second)
			gate.Signal()
		})
		mu.Lock()
		ok := gate.WaitTimeout(&mu, 10*time.Second)
		mu.Unlock()
		if !ok {
			t.Error("WaitTimeout reported timeout despite signal")
		}
		if got := s.Now(); got != time.Second {
			t.Errorf("woke at %v, want 1s", got)
		}
		// Let the lazily cancelled timer fire and return its slot.
		s.Sleep(20 * time.Second)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestGateWaitTimeoutNonPositive(t *testing.T) {
	s := New()
	err := s.Run(func() {
		gate := s.NewGate("g")
		var mu sync.Mutex
		mu.Lock()
		if gate.WaitTimeout(&mu, 0) {
			t.Error("WaitTimeout(0) should report false")
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestGateBroadcastWakesAll(t *testing.T) {
	s := New()
	const n = 5
	err := s.Run(func() {
		gate := s.NewGate("g")
		join := s.NewGate("join")
		var mu sync.Mutex
		go0 := false
		left := n
		for i := 0; i < n; i++ {
			s.Go("waiter", func() {
				mu.Lock()
				for !go0 {
					gate.Wait(&mu)
				}
				left--
				mu.Unlock()
				join.Signal()
			})
		}
		s.Sleep(time.Second)
		mu.Lock()
		go0 = true
		mu.Unlock()
		gate.Broadcast()
		mu.Lock()
		for left > 0 {
			join.Wait(&mu)
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestGateSignalNoWaitersIsNoop(t *testing.T) {
	s := New()
	err := s.Run(func() {
		gate := s.NewGate("g")
		gate.Signal()
		gate.Broadcast()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestGateFIFOOrder(t *testing.T) {
	s := New()
	var order []int
	err := s.Run(func() {
		gate := s.NewGate("g")
		var mu sync.Mutex
		turn := -1
		join := s.NewGate("join")
		left := 3
		for i := 0; i < 3; i++ {
			i := i
			s.Go("waiter", func() {
				// Stagger arrival so the waiter queue order is i = 0,1,2.
				s.Sleep(time.Duration(i+1) * time.Millisecond)
				mu.Lock()
				for turn != i {
					gate.Wait(&mu)
				}
				order = append(order, i)
				left--
				mu.Unlock()
				join.Signal()
			})
		}
		s.Sleep(10 * time.Millisecond)
		for i := 0; i < 3; i++ {
			mu.Lock()
			turn = i
			mu.Unlock()
			gate.Broadcast()
			s.Sleep(time.Millisecond)
		}
		mu.Lock()
		for left > 0 {
			join.Wait(&mu)
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v, want [0 1 2]", order)
	}
}
