package sim

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	s := New()
	var at time.Duration
	start := time.Now()
	err := s.Run(func() {
		s.Sleep(3 * time.Second)
		at = s.Now()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 3*time.Second {
		t.Fatalf("virtual now = %v, want 3s", at)
	}
	if real := time.Since(start); real > 2*time.Second {
		t.Fatalf("virtual sleep took %v of wall time", real)
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	s := New()
	err := s.Run(func() {
		s.Sleep(0)
		s.Sleep(-time.Second)
		if got := s.Now(); got != 0 {
			t.Errorf("now = %v after zero sleeps, want 0", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestParallelSleepersOverlap(t *testing.T) {
	s := New()
	var done [3]time.Duration
	err := s.Run(func() {
		var wg sync.WaitGroup
		gate := s.NewGate("join")
		var mu sync.Mutex
		remaining := 3
		wg.Add(3)
		for i := 0; i < 3; i++ {
			i := i
			s.Go("sleeper", func() {
				defer wg.Done()
				s.Sleep(time.Duration(i+1) * time.Second)
				done[i] = s.Now()
				mu.Lock()
				remaining--
				mu.Unlock()
				gate.Broadcast()
			})
		}
		mu.Lock()
		for remaining > 0 {
			gate.Wait(&mu)
		}
		mu.Unlock()
		wg.Wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, want := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		if done[i] != want {
			t.Errorf("sleeper %d finished at %v, want %v", i, done[i], want)
		}
	}
}

func TestSequentialSleepsAccumulate(t *testing.T) {
	s := New()
	err := s.Run(func() {
		for i := 0; i < 10; i++ {
			s.Sleep(100 * time.Millisecond)
		}
		if got := s.Now(); got != time.Second {
			t.Errorf("now = %v, want 1s", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestAtCallbackRunsAtScheduledTime(t *testing.T) {
	s := New()
	var fired time.Duration = -1
	err := s.Run(func() {
		s.At(500*time.Millisecond, func() { fired = s.Now() })
		s.Sleep(time.Second)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 500*time.Millisecond {
		t.Fatalf("callback fired at %v, want 500ms", fired)
	}
}

func TestAtInThePastClampsToNow(t *testing.T) {
	s := New()
	var fired time.Duration = -1
	err := s.Run(func() {
		s.Sleep(time.Second)
		s.At(200*time.Millisecond, func() { fired = s.Now() })
		s.Sleep(time.Millisecond)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != time.Second {
		t.Fatalf("callback fired at %v, want 1s (clamped)", fired)
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var fired time.Duration = -1
	err := s.Run(func() {
		s.Sleep(time.Second)
		s.After(250*time.Millisecond, func() { fired = s.Now() })
		s.Sleep(time.Second)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 1250*time.Millisecond {
		t.Fatalf("callback fired at %v, want 1.25s", fired)
	}
}

func TestCallbackCanSpawnActor(t *testing.T) {
	s := New()
	var spawned time.Duration = -1
	gate := s.NewGate("done")
	var mu sync.Mutex
	ok := false
	err := s.Run(func() {
		s.At(time.Second, func() {
			s.Go("child", func() {
				s.Sleep(time.Second)
				spawned = s.Now()
				mu.Lock()
				ok = true
				mu.Unlock()
				gate.Signal()
			})
		})
		mu.Lock()
		for !ok {
			gate.Wait(&mu)
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if spawned != 2*time.Second {
		t.Fatalf("child finished at %v, want 2s", spawned)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	err := s.Run(func() {
		gate := s.NewGate("never")
		var mu sync.Mutex
		mu.Lock()
		gate.Wait(&mu) // nobody will ever signal
		mu.Unlock()
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if !strings.Contains(err.Error(), "never") {
		t.Fatalf("deadlock error should name the gate: %v", err)
	}
}

func TestRunTwiceFails(t *testing.T) {
	s := New()
	if err := s.Run(func() {}); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if err := s.Run(func() {}); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestActorPanicIsReported(t *testing.T) {
	s := New()
	err := s.Run(func() {
		s.Go("bomb", func() { panic("boom") })
		s.Sleep(time.Millisecond)
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic report", err)
	}
}

func TestHalted(t *testing.T) {
	s := New()
	if s.Halted() {
		t.Fatal("fresh simulation reports halted")
	}
	if err := s.Run(func() {}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !s.Halted() {
		t.Fatal("finished simulation should report halted")
	}
}

func TestManyActorsDeterministicFinish(t *testing.T) {
	s := New()
	const n = 100
	finish := make([]time.Duration, n)
	err := s.Run(func() {
		var wg sync.WaitGroup
		wg.Add(n)
		gate := s.NewGate("all")
		var mu sync.Mutex
		left := n
		for i := 0; i < n; i++ {
			i := i
			s.Go("worker", func() {
				defer wg.Done()
				s.Sleep(time.Duration(i%10+1) * time.Millisecond)
				s.Sleep(time.Duration(i%7+1) * time.Millisecond)
				finish[i] = s.Now()
				mu.Lock()
				left--
				mu.Unlock()
				gate.Broadcast()
			})
		}
		mu.Lock()
		for left > 0 {
			gate.Wait(&mu)
		}
		mu.Unlock()
		wg.Wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < n; i++ {
		want := time.Duration(i%10+1)*time.Millisecond + time.Duration(i%7+1)*time.Millisecond
		if finish[i] != want {
			t.Errorf("worker %d finished at %v, want %v", i, finish[i], want)
		}
	}
}

func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	times := []time.Duration{5, 1, 3, 2, 4, 1, 5, 0}
	for i, at := range times {
		q.push(event{at: at, seq: uint64(i)})
	}
	var got []time.Duration
	var seqs []uint64
	for q.len() > 0 {
		at := q.nextAt()
		for _, ev := range q.popBatch(nil) {
			if ev.at != at {
				t.Fatalf("batch at %v contains event at %v", at, ev.at)
			}
			got = append(got, ev.at)
			seqs = append(seqs, ev.seq)
		}
	}
	want := []time.Duration{0, 1, 1, 2, 3, 4, 5, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop %d = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	// FIFO among equal timestamps: seq 1 before seq 5, seq 0 before seq 6.
	if seqs[1] != 1 || seqs[2] != 5 {
		t.Errorf("ties not FIFO: seqs=%v", seqs)
	}
	if seqs[6] != 0 || seqs[7] != 6 {
		t.Errorf("ties not FIFO at tail: seqs=%v", seqs)
	}
}

// TestEventQueueLaneHeapMerge drives the queue into the state where the
// heap and the same-instant lane both hold events at one instant — the
// lane held a different instant when the first event was pushed — and
// checks the batch comes out in global seq order.
func TestEventQueueLaneHeapMerge(t *testing.T) {
	var q eventQueue
	q.push(event{at: 1, seq: 1}) // lane starts at t=1
	q.push(event{at: 5, seq: 2}) // different instant: heap
	q.push(event{at: 5, seq: 3}) // still not laneAt: heap
	first := q.popBatch(nil)     // drains t=1, lane now empty
	q.push(event{at: 5, seq: 4}) // lane restarts at t=5
	q.push(event{at: 5, seq: 5}) // lane append
	q.push(event{at: 7, seq: 6}) // heap
	second := q.popBatch(nil)    // t=5: heap (2,3) merged with lane (4,5)
	if len(first) != 1 || first[0].seq != 1 {
		t.Fatalf("first batch = %+v, want the single t=1 event", first)
	}
	var seqs []uint64
	for _, ev := range second {
		if ev.at != 5 {
			t.Fatalf("t=5 batch contains event at %v", ev.at)
		}
		seqs = append(seqs, ev.seq)
	}
	for i, want := range []uint64{2, 3, 4, 5} {
		if seqs[i] != want {
			t.Fatalf("merged batch seqs = %v, want [2 3 4 5]", seqs)
		}
	}
	if rest := q.popBatch(nil); len(rest) != 1 || rest[0].seq != 6 {
		t.Fatalf("final batch = %+v, want the single t=7 event", rest)
	}
	if q.len() != 0 {
		t.Fatalf("queue not drained: %d left", q.len())
	}
}
