package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 collisions between different seeds", same)
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	r := NewRNG(7)
	child := r.Split()
	if r.Uint64() == child.Uint64() {
		t.Fatal("split stream mirrors parent")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	if err := quick.Check(func(n uint16) bool {
		bound := int(n%1000) + 1
		v := r.Intn(bound)
		return v >= 0 && v < bound
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ≈0.5", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(17)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Exp(2.0)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-2.0) > 0.1 {
		t.Fatalf("mean = %v, want ≈2.0", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(19)
	sum, sumsq := 0.0, 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Norm(5, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("mean = %v, want ≈5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.1 {
		t.Fatalf("stddev = %v, want ≈2", math.Sqrt(variance))
	}
}
