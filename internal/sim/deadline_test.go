package sim

import (
	"errors"
	"testing"
	"time"
)

func TestDeadlineStopsRunawaySimulation(t *testing.T) {
	s := New()
	s.SetDeadline(time.Second)
	err := s.Run(func() {
		// A periodic actor that would keep the clock advancing
		// forever.
		s.Go("ticker", func() {
			for {
				s.Sleep(100 * time.Millisecond)
			}
		})
		s.Sleep(time.Hour) // the condition under test never occurs
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if now := s.Now(); now > time.Second {
		t.Fatalf("clock advanced to %v past the cap", now)
	}
}

func TestDeadlineNotHitWhenWorkFinishes(t *testing.T) {
	s := New()
	s.SetDeadline(time.Second)
	err := s.Run(func() {
		s.Sleep(500 * time.Millisecond)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDeadlineExactBoundaryAllowed(t *testing.T) {
	s := New()
	s.SetDeadline(time.Second)
	err := s.Run(func() {
		s.Sleep(time.Second) // event exactly at the cap is fine
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
