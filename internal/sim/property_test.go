package sim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// Property: with arbitrary concurrent sleepers, virtual time at join
// equals the maximum sleep — actors never serialize on the clock.
func TestPropertyParallelSleepersJoinAtMax(t *testing.T) {
	check := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		s := New()
		var max time.Duration
		durs := make([]time.Duration, len(raw))
		for i, r := range raw {
			durs[i] = time.Duration(r%1000+1) * time.Microsecond
			if durs[i] > max {
				max = durs[i]
			}
		}
		var joinedAt time.Duration
		err := s.Run(func() {
			g := s.NewGroup("sleepers")
			for _, d := range durs {
				d := d
				g.Go("sleeper", func() { s.Sleep(d) })
			}
			g.Wait()
			joinedAt = s.Now()
		})
		return err == nil && joinedAt == max
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: sequential sleeps sum exactly (no drift, no rounding).
func TestPropertySequentialSleepsSum(t *testing.T) {
	check := func(raw []uint16) bool {
		if len(raw) > 200 {
			return true
		}
		s := New()
		var want time.Duration
		var got time.Duration
		err := s.Run(func() {
			for _, r := range raw {
				d := time.Duration(r) * time.Nanosecond
				want += d
				s.Sleep(d)
			}
			got = s.Now()
		})
		return err == nil && got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Stress: deep cascades of actors spawning actors keep accounting
// consistent and terminate.
func TestCascadingSpawnStress(t *testing.T) {
	s := New()
	var mu sync.Mutex
	count := 0
	err := s.Run(func() {
		g := s.NewGroup("root")
		var spawn func(depth int)
		spawn = func(depth int) {
			mu.Lock()
			count++
			mu.Unlock()
			s.Sleep(time.Duration(depth+1) * time.Microsecond)
			if depth < 5 {
				for i := 0; i < 2; i++ {
					d := depth + 1
					g.Go("child", func() { spawn(d) })
				}
			}
		}
		g.Go("seed", func() { spawn(0) })
		g.Wait()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 1+2+4+8+16+32 {
		t.Fatalf("spawned %d actors, want 63", count)
	}
}

// Stress: interleaved timers and gates under many actors.
func TestMixedPrimitiveStress(t *testing.T) {
	s := New()
	err := s.Run(func() {
		gate := s.NewGate("pulse")
		var mu sync.Mutex
		woken := 0
		g := s.NewGroup("waiters")
		const n = 32
		for i := 0; i < n; i++ {
			g.Go("waiter", func() {
				mu.Lock()
				for woken == 0 {
					gate.Wait(&mu)
				}
				woken++
				mu.Unlock()
			})
		}
		s.After(time.Millisecond, func() {
			mu.Lock()
			woken = 1
			mu.Unlock()
			gate.Broadcast()
		})
		g.Wait()
		mu.Lock()
		defer mu.Unlock()
		if woken != n+1 {
			t.Errorf("woken = %d", woken)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
