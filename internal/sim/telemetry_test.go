package sim

import (
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

func TestKernelTelemetry(t *testing.T) {
	s := New()
	reg := telemetry.New()
	s.SetTelemetry(reg)
	if s.Telemetry() != reg {
		t.Fatal("Telemetry() must return the installed registry")
	}
	if err := s.Run(func() {
		for i := 0; i < 10; i++ {
			s.Sleep(time.Millisecond)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("sim.dispatches").Value(); got < 10 {
		t.Errorf("sim.dispatches = %d, want >= 10", got)
	}
	// The queue drains by the final advance.
	if got := reg.Gauge("sim.queue_depth").Value(); got != 0 {
		t.Errorf("sim.queue_depth = %v at halt, want 0", got)
	}
}

func TestSetTelemetryNilRemoves(t *testing.T) {
	s := New()
	s.SetTelemetry(telemetry.New())
	s.SetTelemetry(nil)
	if s.Telemetry() != nil {
		t.Fatal("SetTelemetry(nil) must remove the registry")
	}
	if err := s.Run(func() { s.Sleep(time.Millisecond) }); err != nil {
		t.Fatal(err)
	}
}

func TestResetClearsTelemetry(t *testing.T) {
	s := New()
	s.SetTelemetry(telemetry.New())
	if err := s.Run(func() {}); err != nil {
		t.Fatal(err)
	}
	s.reset()
	if s.Telemetry() != nil {
		t.Fatal("reset must drop the telemetry registry with the tracer")
	}
}

// The tracer's ring-buffer drop counter must surface in the telemetry
// registry ("trace.dropped_spans") and match the tracer's own total,
// whichever order the two sinks are installed in.
func TestBridgeTraceDrops(t *testing.T) {
	for _, tracerFirst := range []bool{true, false} {
		s := New()
		tr := trace.New()
		tr.SetLimit(4)
		reg := telemetry.New()
		if tracerFirst {
			s.SetTracer(tr)
			s.SetTelemetry(reg)
		} else {
			s.SetTelemetry(reg)
			s.SetTracer(tr)
		}
		if err := s.Run(func() {
			for i := 0; i < 16; i++ {
				sp := tr.Start("test", "span")
				s.Sleep(time.Millisecond)
				sp.End()
			}
		}); err != nil {
			t.Fatal(err)
		}
		dropped := tr.Dropped()
		if dropped == 0 {
			t.Fatalf("tracerFirst=%v: limit 4 with 16 spans dropped nothing", tracerFirst)
		}
		if got := reg.Counter("trace.dropped_spans").Value(); got != dropped {
			t.Errorf("tracerFirst=%v: trace.dropped_spans = %d, tracer dropped %d", tracerFirst, got, dropped)
		}
	}
}
