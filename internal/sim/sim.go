// Package sim provides a discrete-event simulation kernel with virtual
// time and goroutine-based actors.
//
// The kernel lets ordinary Go code — daemons, schedulers, libraries —
// run as concurrent goroutines while all time-bearing operations
// (sleeps, message latencies, timeouts) advance a shared virtual clock
// instead of the wall clock. A simulation therefore executes in
// microseconds of real time yet reports the sub-second protocol
// latencies the modeled system would exhibit.
//
// # Actor model
//
// Every goroutine that participates in a simulation must be spawned
// through Simulation.Go (or be the main function passed to Run). The
// kernel tracks how many actors are runnable; when all of them are
// parked — sleeping or waiting on a Gate — the controller advances the
// clock to the earliest pending event and wakes its owners. If all
// actors are parked and no event is pending, the simulation is
// deadlocked and Run returns an error naming the blocked actors.
//
// # Discipline
//
// Actors must communicate only through sim-aware primitives (Sleep,
// Gate, and anything layered on them such as netsim mailboxes). An
// actor must never park while holding a lock that the waking actor
// needs. Callbacks scheduled with At run on the controller goroutine
// and must not block.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// ErrDeadlock is wrapped by the error Run returns when every actor is
// parked and no timer event is pending.
var ErrDeadlock = errors.New("sim: deadlock")

// ErrDeadline is wrapped by the error Run returns when virtual time
// passes the cap set with SetDeadline — the runaway-simulation guard.
var ErrDeadline = errors.New("sim: virtual-time deadline exceeded")

// Simulation owns a virtual clock and the set of actors advancing it.
// The zero value is not usable; call New.
type Simulation struct {
	mu   sync.Mutex
	cond *sync.Cond // signaled when running drops to zero or main finishes
	now  time.Duration
	// nowA mirrors now so Now() is lock-free: the hot paths (netsim
	// sends, tracer timestamps, scheduler priorities) read the clock
	// far more often than the controller advances it.
	nowA     atomic.Int64
	running  int // actors currently runnable
	actors   int // live actors (runnable or parked)
	events   eventHeap
	seq      uint64
	parked   map[string]int // actor name -> count, for deadlock diagnostics
	deadline time.Duration  // virtual-time cap; 0 = unlimited
	mainSet  bool
	mainEnd  bool
	halted   bool

	panicMu  sync.Mutex
	panicked []string

	// tracer is the active observability sink; nil (the default)
	// disables tracing. Atomic so the per-message and per-request hot
	// paths read it without taking s.mu.
	tracer atomic.Pointer[trace.Tracer]
}

// New returns an empty simulation at virtual time zero.
func New() *Simulation {
	s := &Simulation{parked: make(map[string]int)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// SetDeadline caps virtual time: Run returns ErrDeadline instead of
// advancing past d. Zero (the default) means unlimited. Use it as a
// guard against runaway scenarios (for example a periodic daemon
// keeping a simulation alive when the condition under test never
// occurs).
func (s *Simulation) SetDeadline(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deadline = d
}

// SetTracer installs (or, with nil, removes) the observability
// tracer and binds its clock to this simulation's virtual time. Every
// component layered on the simulation reads it through Tracer.
func (s *Simulation) SetTracer(t *trace.Tracer) {
	t.SetClock(s.Now)
	s.tracer.Store(t)
}

// Tracer returns the active tracer, or nil when tracing is disabled.
// All trace.Tracer methods are nil-safe, so callers instrument
// unconditionally: s.Tracer().Start(...) is a no-op without a tracer.
func (s *Simulation) Tracer() *trace.Tracer {
	return s.tracer.Load()
}

// Now reports the current virtual time as an offset from the start of
// the simulation. It is safe to call from any goroutine and never
// blocks on the kernel lock.
func (s *Simulation) Now() time.Duration {
	return time.Duration(s.nowA.Load())
}

// Go spawns fn as a new actor. The name is used in deadlock
// diagnostics only. Go may be called before Run or from any actor.
func (s *Simulation) Go(name string, fn func()) {
	s.mu.Lock()
	s.actors++
	s.running++
	s.mu.Unlock()
	go func() {
		defer func() {
			if r := recover(); r != nil {
				s.panicMu.Lock()
				s.panicked = append(s.panicked, fmt.Sprintf("%s: %v", name, r))
				s.panicMu.Unlock()
			}
			s.mu.Lock()
			s.actors--
			s.running--
			if s.running == 0 {
				s.cond.Broadcast()
			}
			s.mu.Unlock()
		}()
		fn()
	}()
}

// Sleep parks the calling actor for d of virtual time. A non-positive
// duration returns immediately. Sleep must only be called from an
// actor goroutine.
func (s *Simulation) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	ch := make(chan struct{})
	s.mu.Lock()
	s.pushLocked(s.now+d, ch, nil)
	s.parkLocked("sleep")
	s.mu.Unlock()
	<-ch
	s.unparkNote("sleep")
}

// At schedules fn to run at virtual time t (an offset from simulation
// start, clamped to the present). fn executes on the controller
// goroutine and must not block; it may spawn actors, signal gates, and
// schedule further callbacks.
func (s *Simulation) At(t time.Duration, fn func()) {
	s.mu.Lock()
	if t < s.now {
		t = s.now
	}
	s.pushLocked(t, nil, fn)
	s.mu.Unlock()
}

// After schedules fn to run d of virtual time from now. See At.
func (s *Simulation) After(d time.Duration, fn func()) {
	s.mu.Lock()
	t := s.now + d
	if d < 0 {
		t = s.now
	}
	s.pushLocked(t, nil, fn)
	s.mu.Unlock()
}

// Run executes main as the root actor and drives the clock until main
// returns. Other actors may still be parked when Run returns; closing
// their communication primitives (for example netsim mailboxes) lets
// them exit. Run returns an error if the simulation deadlocks or if
// any actor panicked.
func (s *Simulation) Run(main func()) error {
	s.mu.Lock()
	if s.mainSet {
		s.mu.Unlock()
		return errors.New("sim: Run called twice")
	}
	s.mainSet = true
	s.mu.Unlock()

	s.Go("main", func() {
		defer func() {
			s.mu.Lock()
			s.mainEnd = true
			s.cond.Broadcast()
			s.mu.Unlock()
		}()
		main()
	})

	for {
		s.mu.Lock()
		for s.running > 0 && !s.mainEnd {
			s.cond.Wait()
		}
		if s.mainEnd {
			s.halted = true
			s.mu.Unlock()
			return s.panicErr()
		}
		if len(s.events) == 0 {
			blocked := s.blockedLocked()
			s.halted = true
			s.mu.Unlock()
			return fmt.Errorf("%w at %v: parked actors: %s", ErrDeadlock, s.now, blocked)
		}
		// Advance to the earliest event time and release every event
		// due at that instant. Each released event counts as runnable
		// before the lock drops so the controller cannot advance past
		// a wake that has not landed yet.
		t := s.events[0].at
		if s.deadline > 0 && t > s.deadline {
			s.halted = true
			s.mu.Unlock()
			return fmt.Errorf("%w: next event at %v, cap %v", ErrDeadline, t, s.deadline)
		}
		var batch []event
		for len(s.events) > 0 && s.events[0].at == t {
			batch = append(batch, s.popLocked())
		}
		s.now = t
		s.nowA.Store(int64(t))
		s.running += len(batch)
		s.mu.Unlock()

		for _, ev := range batch {
			if ev.wake != nil {
				close(ev.wake) // ownership of the running slot passes to the woken actor
				continue
			}
			ev.fn()
			s.mu.Lock()
			s.running--
			if s.running == 0 {
				s.cond.Broadcast()
			}
			s.mu.Unlock()
		}
	}
}

// Halted reports whether Run has returned.
func (s *Simulation) Halted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.halted
}

func (s *Simulation) panicErr() error {
	s.panicMu.Lock()
	defer s.panicMu.Unlock()
	if len(s.panicked) == 0 {
		return nil
	}
	return fmt.Errorf("sim: actor panics: %s", strings.Join(s.panicked, "; "))
}

// parkLocked marks the calling actor idle. Callers hold s.mu.
func (s *Simulation) parkLocked(why string) {
	s.running--
	s.parked[why]++
	if s.running == 0 {
		s.cond.Broadcast()
	}
}

// unparkNote clears the diagnostic note left by parkLocked. The
// running count itself was already transferred by the waker.
func (s *Simulation) unparkNote(why string) {
	s.mu.Lock()
	s.parked[why]--
	if s.parked[why] == 0 {
		delete(s.parked, why)
	}
	s.mu.Unlock()
}

// markRunnable transfers one running slot to an actor about to be
// woken by a Gate signal. Callers must not hold s.mu.
func (s *Simulation) markRunnable() {
	s.mu.Lock()
	s.running++
	s.mu.Unlock()
}

func (s *Simulation) blockedLocked() string {
	var parts []string
	for why, n := range s.parked {
		parts = append(parts, fmt.Sprintf("%s×%d", why, n))
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return "(none)"
	}
	return strings.Join(parts, ", ")
}

func (s *Simulation) pushLocked(at time.Duration, wake chan struct{}, fn func()) {
	s.seq++
	s.events.push(event{at: at, seq: s.seq, wake: wake, fn: fn})
	// A sleeping controller only re-checks after running drops to
	// zero; new events need no extra signal because only running
	// actors (or controller callbacks) create them.
}

func (s *Simulation) popLocked() event {
	return s.events.pop()
}
